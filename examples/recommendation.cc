// Personalized recommendation (paper §I, "Applications"): on a user–movie
// rating network, the significant (α,β)-community of a query user yields
//  - friend candidates: users who give common high ratings with the query,
//  - movie candidates: community movies the query user has not rated yet.
//
// The graph is the planted-community MovieLens-like generator; the query
// user is a fan of "comedy" (genre 0).

#include <algorithm>
#include <cstdio>
#include <set>

#include "core/delta_index.h"
#include "core/scs_peel.h"
#include "graph/generators.h"
#include "models/metrics.h"

int main() {
  abcs::PlantedSpec spec;
  spec.num_genres = 3;
  spec.blocks_per_genre = 2;
  spec.users_per_block = 80;
  spec.movies_per_block = 50;
  spec.binge_users_per_genre = 25;
  spec.casual_users = 800;
  spec.seed = 7;
  abcs::PlantedGraph pg = abcs::MakePlantedCommunities(spec);
  abcs::PlantedGraph slice = abcs::ExtractGenreSlice(pg, /*genre=*/0);
  const abcs::BipartiteGraph& g = slice.graph;
  std::printf("comedy slice: %u users, %u movies, %u ratings\n", g.NumUpper(),
              g.NumLower(), g.NumEdges());

  // Query: the first fan of comedy block 0.
  abcs::VertexId q = abcs::kInvalidVertex;
  for (uint32_t u = 0; u < g.NumUpper(); ++u) {
    if (slice.user_block[u] == 0) {
      q = u;
      break;
    }
  }
  if (q == abcs::kInvalidVertex) {
    std::fprintf(stderr, "no fan found\n");
    return 1;
  }

  const abcs::DeltaIndex index = abcs::DeltaIndex::Build(g);
  const uint32_t t = 25;  // α = β = 25: engaged users, popular movies
  const abcs::Subgraph community = index.QueryCommunity(q, t, t);
  const abcs::ScsResult sc = abcs::ScsPeel(g, community, q, t, t);
  if (!sc.found) {
    std::fprintf(stderr, "no significant community at t=%u\n", t);
    return 1;
  }

  const abcs::SubgraphStats core_stats = abcs::ComputeStats(g, community);
  const abcs::SubgraphStats sc_stats = abcs::ComputeStats(g, sc.community);
  std::printf("(%u,%u)-community: %zu ratings, avg %.2f, min %.1f\n", t, t,
              community.Size(), core_stats.avg_weight,
              core_stats.min_weight);
  std::printf("significant community: %zu ratings, avg %.2f, f(R) = %.1f\n",
              sc.community.Size(), sc_stats.avg_weight, sc.significance);
  std::printf("dislike users: %u in core vs %u in SC\n",
              abcs::CountDislikeUsers(g, community, t),
              abcs::CountDislikeUsers(g, sc.community, t));

  // Friend candidates: community users sharing ≥ 5 highly-rated movies
  // with q. Movie candidates: community movies q has not rated.
  std::set<abcs::VertexId> q_movies;
  for (const abcs::Arc& a : g.Neighbors(q)) {
    if (g.GetWeight(a.eid) >= 4.0) q_movies.insert(a.to);
  }
  std::set<abcs::VertexId> sc_users, movie_candidates;
  for (abcs::EdgeId e : sc.community.edges) {
    const abcs::Edge& ed = g.GetEdge(e);
    if (ed.u != q) sc_users.insert(ed.u);
    if (!q_movies.count(ed.v)) movie_candidates.insert(ed.v);
  }
  uint32_t friends = 0;
  for (abcs::VertexId u : sc_users) {
    uint32_t shared = 0;
    for (const abcs::Arc& a : g.Neighbors(u)) {
      if (g.GetWeight(a.eid) >= 4.0 && q_movies.count(a.to)) ++shared;
    }
    if (shared >= 5) ++friends;
  }
  std::printf("friend candidates (≥5 shared high ratings): %u\n", friends);
  std::printf("movie candidates (unseen community movies): %zu\n",
              movie_candidates.size());
  return 0;
}
