// Quickstart: build a small weighted bipartite graph, index it, retrieve an
// (α,β)-community and its significant (α,β)-community.
//
// This reproduces the paper's Figure 1 user–movie network: querying "Eric"
// with α = 3, β = 2 yields the whole left-hand community under the plain
// (α,β)-core model, while the significant community drops the weak links
// ("Alien" and "Taylor").

#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "core/delta_index.h"
#include "core/scs_peel.h"
#include "graph/graph_builder.h"

namespace {

void PrintCommunity(const abcs::BipartiteGraph& g,
                    const std::vector<std::string>& users,
                    const std::vector<std::string>& movies,
                    const abcs::Subgraph& sub, const char* title) {
  std::printf("%s (%zu edges):\n", title, sub.Size());
  for (abcs::VertexId v : abcs::SubgraphVertexSet(g, sub)) {
    if (g.IsUpper(v)) {
      std::printf("  user  %s\n", users[v].c_str());
    } else {
      std::printf("  movie %s\n", movies[v - g.NumUpper()].c_str());
    }
  }
}

}  // namespace

int main() {
  // Figure 1 of the paper: 6 users × 6 movies with ratings.
  const std::vector<std::string> users = {"Taylor", "Kane", "Eric",
                                          "Andy",   "Emma", "Kelly"};
  const std::vector<std::string> movies = {"X-Men",   "Alien",    "A.I.",
                                           "Titanic", "Star Wars", "Avatar"};
  // (user, movie, rating) — the left community plus the right-hand pair.
  const std::vector<std::tuple<uint32_t, uint32_t, double>> ratings = {
      {0, 0, 2}, {0, 1, 1}, {0, 2, 2}, {0, 4, 2},              // Taylor
      {1, 0, 4}, {1, 1, 2}, {1, 2, 4}, {1, 4, 5}, {1, 5, 4},   // Kane
      {2, 0, 4}, {2, 1, 4}, {2, 2, 5}, {2, 4, 4}, {2, 5, 4},   // Eric
      {3, 0, 5}, {3, 2, 4}, {3, 5, 4},                         // Andy
      {4, 3, 3}, {4, 5, 3},                                    // Emma
      {5, 3, 4}, {5, 4, 3},                                    // Kelly
  };

  abcs::GraphBuilder builder;
  for (const auto& [u, m, r] : ratings) builder.AddEdge(u, m, r);
  abcs::BipartiteGraph g;
  abcs::Status st = builder.Build(&g);
  if (!st.ok()) {
    std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // One-time index construction: O(δ·m) time and space.
  const abcs::DeltaIndex index = abcs::DeltaIndex::Build(g);
  std::printf("graph: %u users, %u movies, %u ratings, degeneracy=%u\n\n",
              g.NumUpper(), g.NumLower(), g.NumEdges(), index.delta());

  // Step 1: the (3,2)-community of Eric — optimal-time retrieval.
  const abcs::VertexId eric = 2;
  const abcs::Subgraph community = index.QueryCommunity(eric, 3, 2);
  PrintCommunity(g, users, movies, community, "(3,2)-community of Eric");

  // Step 2: maximise significance within it.
  const abcs::ScsResult sc = abcs::ScsPeel(g, community, eric, 3, 2);
  std::printf("\nsignificance f(R) = %.1f\n", sc.significance);
  PrintCommunity(g, users, movies, sc.community,
                 "significant (3,2)-community of Eric");
  return 0;
}
