// Dynamic maintenance (paper §III-B discussion): a service keeps serving
// (α,β)-community queries while the rating stream mutates the graph. The
// DynamicDeltaIndex applies each edge insertion/removal with a localized
// re-peel instead of rebuilding the O(δ·m) index.

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "core/maintenance.h"
#include "graph/datasets.h"

int main() {
  abcs::BipartiteGraph g;
  abcs::Status st = abcs::MakeDataset(*abcs::FindDataset("GH"), &g);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  abcs::Timer timer;
  abcs::DynamicDeltaIndex index(g);
  std::printf("seeded dynamic index: %u edges, delta=%u (%.2fs)\n",
              index.NumAliveEdges(), index.delta(), timer.Seconds());

  // Interleave queries with a random update stream.
  abcs::Rng rng(2026);
  const uint32_t alpha = index.delta() / 2, beta = index.delta() / 2;
  uint32_t served = 0, inserted = 0, removed = 0;
  timer.Reset();
  for (int step = 0; step < 200; ++step) {
    const uint32_t dice = static_cast<uint32_t>(rng.NextBounded(100));
    if (dice < 40) {
      // New rating between random endpoints (duplicates are rejected).
      const abcs::VertexId u =
          static_cast<abcs::VertexId>(rng.NextBounded(g.NumUpper()));
      const abcs::VertexId v = static_cast<abcs::VertexId>(
          g.NumUpper() + rng.NextBounded(g.NumLower()));
      if (index.InsertEdge(u, v, 1.0 + rng.NextBounded(100)).ok()) {
        ++inserted;
      }
    } else if (dice < 60) {
      // Retract a random existing rating.
      const abcs::EdgeId e = static_cast<abcs::EdgeId>(
          rng.NextBounded(index.NumAliveEdges()));
      const abcs::Edge& ed = index.GetEdge(e);
      if (index.RemoveEdge(ed.u, ed.v).ok()) ++removed;
    } else {
      const abcs::VertexId q =
          static_cast<abcs::VertexId>(rng.NextBounded(g.NumVertices()));
      const abcs::Subgraph c = index.QueryCommunity(q, alpha, beta);
      served += !c.Empty();
    }
  }
  std::printf(
      "200 mixed operations in %.2fs: %u inserts, %u removals, %u "
      "nonempty (%u,%u)-community answers; delta now %u, %u edges\n",
      timer.Seconds(), inserted, removed, served, alpha, beta,
      index.delta(), index.NumAliveEdges());
  return 0;
}
