// Team formation (paper §I, "Applications"): developers and projects form a
// bipartite graph; the edge weight counts tasks a developer completed for a
// project. Querying a key developer with the significant (α,β)-community
// assembles a team with a proven track record: every member has made at
// least f(R) contributions to every community project they touch.

#include <cstdio>
#include <set>

#include "common/rng.h"
#include "core/delta_index.h"
#include "core/scs_expand.h"
#include "graph/graph_builder.h"

int main() {
  // Three overlapping product areas; each area has a core team that
  // contributes heavily, plus many drive-by contributors.
  const uint32_t kAreas = 3;
  const uint32_t kCorePerArea = 12, kProjectsPerArea = 8;
  const uint32_t kDriveBy = 500;
  abcs::Rng rng(99);
  abcs::GraphBuilder builder;

  uint32_t dev = 0;
  for (uint32_t area = 0; area < kAreas; ++area) {
    for (uint32_t k = 0; k < kCorePerArea; ++k, ++dev) {
      for (uint32_t p = 0; p < kProjectsPerArea; ++p) {
        // Core developers close 10–60 tasks on most area projects.
        if (rng.NextBounded(100) < 85) {
          builder.AddEdge(dev, area * kProjectsPerArea + p,
                          10.0 + rng.NextBounded(51));
        }
      }
      // Occasional cross-area help, smaller contributions.
      builder.AddEdge(dev,
                      static_cast<uint32_t>(
                          rng.NextBounded(kAreas * kProjectsPerArea)),
                      1.0 + rng.NextBounded(5));
    }
  }
  for (uint32_t k = 0; k < kDriveBy; ++k, ++dev) {
    const uint32_t patches = 1 + rng.NextBounded(3);
    for (uint32_t i = 0; i < patches; ++i) {
      builder.AddEdge(dev,
                      static_cast<uint32_t>(
                          rng.NextBounded(kAreas * kProjectsPerArea)),
                      1.0 + rng.NextBounded(4));
    }
  }

  abcs::BipartiteGraph g;
  abcs::Status st =
      builder.Build(&g, abcs::GraphBuilder::DuplicatePolicy::kSum);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("developer-project graph: %u devs, %u projects, %u edges\n",
              g.NumUpper(), g.NumLower(), g.NumEdges());

  // The hiring manager queries developer 0 (a core dev of area 0), asking
  // for a team where each member worked on ≥ 4 common projects and each
  // project has ≥ 4 team members.
  const abcs::VertexId lead = 0;
  const uint32_t alpha = 4, beta = 4;
  const abcs::DeltaIndex index = abcs::DeltaIndex::Build(g);
  const abcs::Subgraph community = index.QueryCommunity(lead, alpha, beta);
  std::printf("(%u,%u)-community around dev0: %zu contribution edges\n",
              alpha, beta, community.Size());

  const abcs::ScsResult team =
      abcs::ScsExpand(g, community, lead, alpha, beta);
  if (!team.found) {
    std::printf("no qualifying team\n");
    return 0;
  }
  std::set<abcs::VertexId> devs, projects;
  for (abcs::EdgeId e : team.community.edges) {
    devs.insert(g.GetEdge(e).u);
    projects.insert(g.GetEdge(e).v);
  }
  std::printf(
      "team: %zu developers over %zu projects; every kept contribution "
      "has ≥ %.0f completed tasks\n",
      devs.size(), projects.size(), team.significance);
  uint32_t core_members = 0;
  for (abcs::VertexId d : devs) core_members += (d < kAreas * kCorePerArea);
  std::printf("planted core developers recovered: %u / %zu team members\n",
              core_members, devs.size());
  return 0;
}
