// Fraud detection (paper §I, "Applications"): fraudsters and the items they
// promote form dense blocks in the customer–item graph, and — because fake
// accounts are expensive — each fraudulent account carries *many* purchases
// (high edge weights). The significant (α,β)-community of a suspicious
// vertex isolates the fraud ring while plain (α,β)-core search drags in
// organic heavy buyers (false positives).

#include <cstdio>
#include <set>

#include "common/rng.h"
#include "core/delta_index.h"
#include "core/scs_peel.h"
#include "graph/graph_builder.h"

int main() {
  // Organic traffic: 3000 customers × 800 items, sparse, low purchase
  // counts. Fraud ring: 25 accounts pumping 15 items with heavy counts.
  const uint32_t kCustomers = 3000, kItems = 800;
  const uint32_t kRingAccounts = 25, kRingItems = 15;
  abcs::Rng rng(2024);
  abcs::GraphBuilder builder;
  builder.Reserve(kCustomers + kRingAccounts, kItems, 0);

  for (uint32_t c = 0; c < kCustomers; ++c) {
    const uint32_t purchases = 1 + rng.NextBounded(8);
    for (uint32_t i = 0; i < purchases; ++i) {
      builder.AddEdge(c, static_cast<uint32_t>(rng.NextBounded(kItems)),
                      1.0 + rng.NextBounded(3));
    }
  }
  // The ring: every fraud account buys every promoted item 20–40 times.
  // A few organic customers also touch the promoted items (noise).
  for (uint32_t f = 0; f < kRingAccounts; ++f) {
    for (uint32_t i = 0; i < kRingItems; ++i) {
      builder.AddEdge(kCustomers + f, i, 20.0 + rng.NextBounded(21));
    }
  }

  abcs::BipartiteGraph g;
  abcs::Status st =
      builder.Build(&g, abcs::GraphBuilder::DuplicatePolicy::kSum);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("customer-item graph: %u customers, %u items, %u edges\n",
              g.NumUpper(), g.NumLower(), g.NumEdges());

  const abcs::DeltaIndex index = abcs::DeltaIndex::Build(g);
  std::printf("degeneracy delta = %u\n", index.delta());

  // A suspicious item was flagged (promoted item 0); search around it.
  const abcs::VertexId suspicious_item = g.LowerId(0);
  const uint32_t alpha = 10, beta = 10;
  const abcs::Subgraph community =
      index.QueryCommunity(suspicious_item, alpha, beta);
  const abcs::ScsResult ring =
      abcs::ScsPeel(g, community, suspicious_item, alpha, beta);
  if (!ring.found) {
    std::printf("no dense community around the flagged item\n");
    return 0;
  }

  std::set<abcs::VertexId> accounts, items;
  for (abcs::EdgeId e : ring.community.edges) {
    accounts.insert(g.GetEdge(e).u);
    items.insert(g.GetEdge(e).v);
  }
  uint32_t true_positives = 0;
  for (abcs::VertexId a : accounts) true_positives += (a >= kCustomers);
  std::printf(
      "significant (%u,%u)-community: %zu accounts (%u planted "
      "fraudsters), %zu items, min purchase weight %.0f\n",
      alpha, beta, accounts.size(), true_positives, items.size(),
      ring.significance);
  std::printf("precision on accounts: %.2f\n",
              accounts.empty()
                  ? 0.0
                  : static_cast<double>(true_positives) / accounts.size());
  return 0;
}
