#include "core/maintenance.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_map>

#include "abcore/offsets.h"
#include "abcore/peel_kernel.h"
#include "graph/graph_builder.h"

namespace abcs {

DynamicDeltaIndex::DynamicDeltaIndex(const BipartiteGraph& g,
                                     const BicoreDecomposition* decomp) {
  num_upper_ = g.NumUpper();
  const uint32_t n = g.NumVertices();
  adj_.resize(n);
  edges_.reserve(g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.GetEdge(e);
    edges_.push_back(ed);
    edge_alive_.push_back(1);
    adj_[ed.u].push_back(Arc{ed.v, e});
    adj_[ed.v].push_back(Arc{ed.u, e});
  }
  num_alive_edges_ = g.NumEdges();

  // The static decomposition is compact (CSR slices); the dynamic tables
  // stay dense per level because updates mutate arbitrary (τ, v) cells —
  // growing a vertex's slice in place would shift the whole arena. A
  // caller-supplied decomposition (typically an opened bundle's mmap'd
  // arenas) is copied on write into those rows — no offset peel at all.
  // A decomposition whose vertex count disagrees with `g` (wrong bundle)
  // cannot be trusted and is recomputed instead of read out of bounds.
  BicoreDecomposition local;
  if (decomp == nullptr || decomp->NumVertices() != n) {
    local = ComputeBicoreDecompositionParallel(g);
    decomp = &local;
  }
  delta_ = decomp->delta;
  sa_.assign(delta_, std::vector<uint32_t>(n, 0));
  sb_.assign(delta_, std::vector<uint32_t>(n, 0));
  // Vertex-outer expansion: one sequential pass over each arena, touching
  // only the Σ Levels(v) nonzero cells (the rows are pre-zeroed).
  for (VertexId v = 0; v < n; ++v) {
    const uint32_t la = decomp->alpha.Levels(v);
    for (uint32_t tau = 1; tau <= la; ++tau) {
      sa_[tau - 1][v] = decomp->alpha.values[decomp->alpha.start[v] + tau - 1];
    }
    const uint32_t lb = decomp->beta.Levels(v);
    for (uint32_t tau = 1; tau <= lb; ++tau) {
      sb_[tau - 1][v] = decomp->beta.values[decomp->beta.start[v] + tau - 1];
    }
  }
}

std::vector<VertexId> DynamicDeltaIndex::CollectScope(
    const std::vector<uint32_t>& value, uint32_t lo, uint32_t hi,
    std::initializer_list<VertexId> seeds) {
  std::vector<VertexId> scope;
  ws_visited_.resize(adj_.size(), 0);
  ws_stack_.clear();
  for (VertexId s : seeds) {
    if (!ws_visited_[s]) {
      ws_visited_[s] = 1;
      ws_stack_.push_back(s);
      scope.push_back(s);
    }
  }
  while (!ws_stack_.empty()) {
    VertexId x = ws_stack_.back();
    ws_stack_.pop_back();
    for (const Arc& a : adj_[x]) {
      VertexId y = a.to;
      if (ws_visited_[y] || value[y] < lo || value[y] > hi) continue;
      ws_visited_[y] = 1;
      ws_stack_.push_back(y);
      scope.push_back(y);
    }
  }
  // The visited set is exactly the scope; clearing it here restores the
  // all-zero invariant in O(|scope|) instead of reallocating O(n).
  for (VertexId x : scope) ws_visited_[x] = 0;
  return scope;
}

void DynamicDeltaIndex::RecomputeScoped(std::vector<uint32_t>& value,
                                        uint32_t tau, bool fix_upper,
                                        const std::vector<VertexId>& scope) {
  const uint32_t n = NumVertices();
  auto is_fixed = [&](VertexId x) { return (x < num_upper_) == fix_upper; };

  // All ws_ arrays hold their between-calls invariant (alive/in_scope
  // all-zero, deg stale-but-unread); only the O(|scope|) slice is touched.
  ws_in_scope_.resize(n, 0);
  ws_deg_.resize(n, 0);
  ws_alive_.resize(n, 0);
  for (VertexId x : scope) ws_in_scope_[x] = 1;

  // Degrees inside the scoped subgraph plus boundary support: an external
  // neighbour with (unchanged) offset V supports scope vertices for every
  // level ≤ V, so it contributes to the degree until level V "expires".
  ws_expiry_.clear();  // (level, target)
  uint32_t max_level = 1;
  for (VertexId x : scope) {
    uint32_t d = 0;
    for (const Arc& a : adj_[x]) {
      VertexId y = a.to;
      if (ws_in_scope_[y]) {
        ++d;
      } else if (value[y] >= 1) {
        ++d;
        ws_expiry_.emplace_back(value[y], x);
        max_level = std::max(max_level, value[y]);
      }
    }
    ws_deg_[x] = d;
    if (!is_fixed(x)) max_level = std::max(max_level, d);
  }
  std::sort(ws_expiry_.begin(), ws_expiry_.end());

  for (VertexId x : scope) ws_alive_[x] = 1;

  // Level-L removal: x leaves the core while moving to level L+1, so its
  // new offset is L (0 if it already fails the (τ,1)-level constraints).
  // Out-of-scope vertices are never alive, so the kernel's alive check
  // subsumes the scope filter.
  LevelPeeler peeler(
      ws_deg_, ws_alive_, tau, max_level,
      [&](VertexId x, auto&& visit) {
        for (const Arc& a : adj_[x]) visit(a.to);
      },
      is_fixed, [&](VertexId x, uint32_t level) { value[x] = level; },
      &ws_peel_);
  peeler.Start(scope);

  std::size_t expiry_ptr = 0;
  // Skip boundary supports that vanished during the initial peel: their
  // holders are dead already, and decrements on dead vertices are ignored
  // anyway, so the pointer can simply start at level 1.
  for (uint32_t level = 1; level <= max_level && peeler.alive_count() > 0;
       ++level) {
    peeler.RunLevel(level);
    // Boundary supports with offset == level expire now; the loss still
    // counts against membership at this level (offset stays `level`).
    while (expiry_ptr < ws_expiry_.size() &&
           ws_expiry_[expiry_ptr].first == level) {
      peeler.Decrement(ws_expiry_[expiry_ptr].second, level);
      ++expiry_ptr;
    }
  }
  // Defensive: anything still alive survived every level we can justify
  // (and must be killed to restore the all-zero alive invariant).
  for (VertexId x : scope) {
    if (ws_alive_[x]) {
      value[x] = max_level;
      ws_alive_[x] = 0;
    }
    ws_in_scope_[x] = 0;
  }
}

void DynamicDeltaIndex::UpdateLevel(std::vector<uint32_t>& value,
                                    uint32_t tau, bool fix_upper, VertexId u,
                                    VertexId v, bool is_insert) {
  const uint32_t k = std::min(value[u], value[v]);
  if (!is_insert && k == 0) {
    return;  // the edge belonged to no level-≥1 core: offsets unchanged
  }
  const uint32_t kMax = std::numeric_limits<uint32_t>::max();
  // Insertion: risers have old offset ≥ K and connect to the edge through
  // vertices with offset ≥ K, so that whole reachable region is recomputed
  // at once (mutually-supporting groups must rise together — a smaller
  // seed grown lazily can get stuck at a lower fixpoint). Removal: every
  // drop is caused by a dropping neighbour with offset in [1, K], so the
  // [1, K]-reachable region suffices as the seed.
  std::vector<VertexId> scope = is_insert
                                    ? CollectScope(value, k, kMax, {u, v})
                                    : CollectScope(value, 1, k, {u, v});

  // Trigger rounds (safety net): recompute the scope against its ORIGINAL
  // offsets and grow it whenever a changed vertex crossed an out-of-scope
  // neighbour's critical threshold — i.e. that neighbour's own offset
  // might move. Terminates because the scope grows strictly; the final
  // fixpoint is exact because every untouched boundary vertex keeps all
  // its supports. ws_update_mark_ is a lent all-zero buffer, restored
  // before every return.
  ws_update_mark_.resize(adj_.size(), 0);
  for (VertexId x : scope) ws_update_mark_[x] = 1;
  auto clear_marks = [&] {
    for (VertexId x : scope) ws_update_mark_[x] = 0;
  };
  std::unordered_map<VertexId, uint32_t> saved;
  for (int round = 0; round < 1024; ++round) {
    for (VertexId x : scope) saved.try_emplace(x, value[x]);
    for (const auto& [x, old] : saved) value[x] = old;
    RecomputeScoped(value, tau, fix_upper, scope);

    bool expanded = false;
    const std::size_t scope_size = scope.size();
    for (std::size_t i = 0; i < scope_size; ++i) {
      const VertexId x = scope[i];
      const uint32_t old = saved[x];
      if (value[x] == old) continue;
      for (const Arc& a : adj_[x]) {
        const VertexId y = a.to;
        if (ws_update_mark_[y]) continue;
        const uint64_t vy = value[y];
        const bool affected = is_insert ? (old < vy + 1 && vy + 1 <= value[x])
                                        : (value[x] < vy && vy <= old);
        if (affected) {
          ws_update_mark_[y] = 1;
          scope.push_back(y);
          expanded = true;
        }
      }
    }
    if (!expanded) {
      clear_marks();
      for (VertexId x : scope) MarkTouched(x);
      return;
    }
  }
  // Pathological expansion (should not happen): fall back to the whole
  // connected region so correctness is never at risk.
  clear_marks();
  for (const auto& [x, old] : saved) value[x] = old;
  std::vector<VertexId> full = CollectScope(value, 0, kMax, {u, v});
  RecomputeScoped(value, tau, fix_upper, full);
  for (VertexId x : full) MarkTouched(x);
}

bool DynamicDeltaIndex::KkCoreNonEmpty(uint32_t k) {
  const uint32_t n = NumVertices();
  // Reuses the scoped-recompute buffers (alive is left dirty here; it is
  // refilled wholesale on every use, unlike the scoped paths' invariant).
  ws_deg_.resize(n);
  ws_alive_.assign(n, 1);
  for (VertexId x = 0; x < n; ++x) {
    ws_deg_[x] = static_cast<uint32_t>(adj_[x].size());
  }
  uint32_t remaining = n;
  ThresholdPeel(
      n, ws_deg_, ws_alive_,
      [&](VertexId x, auto&& visit) {
        for (const Arc& a : adj_[x]) visit(a.to);
      },
      [k](VertexId) { return k; }, [&](VertexId) { --remaining; },
      &ws_stack_);
  std::fill(ws_alive_.begin(), ws_alive_.end(), 0);
  return remaining > 0;
}

void DynamicDeltaIndex::MaybeGrowDelta() {
  while (KkCoreNonEmpty(delta_ + 1)) {
    ++delta_;
    summary_.delta_changed = true;
    const BipartiteGraph snapshot = ExportGraph();
    sa_.push_back(ComputeAlphaOffsets(snapshot, delta_));
    sb_.push_back(ComputeBetaOffsets(snapshot, delta_));
  }
}

void DynamicDeltaIndex::MaybeShrinkDelta() {
  const uint32_t before = delta_;
  while (delta_ >= 1) {
    const std::vector<uint32_t>& top = sa_[delta_ - 1];
    bool nonempty = false;
    for (uint32_t x : top) {
      if (x >= delta_) {
        nonempty = true;
        break;
      }
    }
    if (nonempty) break;
    sa_.pop_back();
    sb_.pop_back();
    --delta_;
  }
  if (delta_ != before) summary_.delta_changed = true;
}

void DynamicDeltaIndex::MarkTouched(VertexId x) {
  summary_touched_.resize(adj_.size(), 0);
  if (summary_touched_[x]) return;
  summary_touched_[x] = 1;
  summary_.touched.push_back(x);
}

UpdateSummary DynamicDeltaIndex::DrainSummary() {
  summary_.epoch = epoch_;
  UpdateSummary out = std::move(summary_);
  summary_ = UpdateSummary{};
  for (VertexId x : out.touched) summary_touched_[x] = 0;
  return out;
}

Status DynamicDeltaIndex::InsertEdge(VertexId u, VertexId v, Weight w) {
  if (u >= num_upper_ || v < num_upper_ || v >= NumVertices()) {
    return Status::InvalidArgument("endpoints must be (upper, lower)");
  }
  for (const Arc& a : adj_[u]) {
    if (a.to == v) return Status::InvalidArgument("edge already exists");
  }
  const EdgeId eid = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, w});
  edge_alive_.push_back(1);
  adj_[u].push_back(Arc{v, eid});
  adj_[v].push_back(Arc{u, eid});
  ++num_alive_edges_;

  for (uint32_t tau = 1; tau <= delta_; ++tau) {
    // The new edge can only enter a (τ,·)-core if its fixed-side endpoint
    // has enough total degree; below that, nothing changes at this τ.
    if (adj_[u].size() >= tau) {
      UpdateLevel(sa_[tau - 1], tau, /*fix_upper=*/true, u, v,
                  /*is_insert=*/true);
    }
    if (adj_[v].size() >= tau) {
      UpdateLevel(sb_[tau - 1], tau, /*fix_upper=*/false, u, v,
                  /*is_insert=*/true);
    }
  }
  MaybeGrowDelta();
  ++epoch_;
  summary_.topology_changed = true;
  MarkTouched(u);
  MarkTouched(v);
  return Status::OK();
}

Status DynamicDeltaIndex::RemoveEdge(VertexId u, VertexId v) {
  if (u >= num_upper_ || v < num_upper_ || v >= NumVertices()) {
    return Status::InvalidArgument("endpoints must be (upper, lower)");
  }
  EdgeId eid = kInvalidEdge;
  for (const Arc& a : adj_[u]) {
    if (a.to == v) {
      eid = a.eid;
      break;
    }
  }
  if (eid == kInvalidEdge) return Status::NotFound("edge does not exist");

  auto erase_arc = [&](VertexId from, VertexId to) {
    auto& list = adj_[from];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].to == to) {
        list[i] = list.back();
        list.pop_back();
        return;
      }
    }
  };
  erase_arc(u, v);
  erase_arc(v, u);
  edge_alive_[eid] = 0;
  --num_alive_edges_;

  for (uint32_t tau = 1; tau <= delta_; ++tau) {
    UpdateLevel(sa_[tau - 1], tau, /*fix_upper=*/true, u, v,
                /*is_insert=*/false);
    UpdateLevel(sb_[tau - 1], tau, /*fix_upper=*/false, u, v,
                /*is_insert=*/false);
  }
  MaybeShrinkDelta();
  ++epoch_;
  summary_.topology_changed = true;
  MarkTouched(u);
  MarkTouched(v);
  return Status::OK();
}

Status DynamicDeltaIndex::UpdateWeight(VertexId u, VertexId v, Weight w) {
  if (u >= num_upper_ || v < num_upper_ || v >= NumVertices()) {
    return Status::InvalidArgument("endpoints must be (upper, lower)");
  }
  for (const Arc& a : adj_[u]) {
    if (a.to == v) {
      edges_[a.eid].w = w;
      ++epoch_;
      summary_.weights_changed = true;
      return Status::OK();
    }
  }
  return Status::NotFound("edge does not exist");
}

Subgraph DynamicDeltaIndex::QueryCommunity(VertexId q, uint32_t alpha,
                                           uint32_t beta) const {
  Subgraph result;
  if (q >= NumVertices() || alpha == 0 || beta == 0) return result;
  if (std::min(alpha, beta) > delta_) return result;

  const bool use_alpha = alpha <= beta;
  const std::vector<uint32_t>& value =
      use_alpha ? sa_[alpha - 1] : sb_[beta - 1];
  const uint32_t need = use_alpha ? beta : alpha;
  if (value[q] < need) return result;

  std::vector<uint8_t> visited(NumVertices(), 0);
  std::deque<VertexId> queue{q};
  visited[q] = 1;
  while (!queue.empty()) {
    VertexId x = queue.front();
    queue.pop_front();
    for (const Arc& a : adj_[x]) {
      if (value[a.to] < need) continue;
      if (x >= num_upper_) result.edges.push_back(a.eid);
      if (!visited[a.to]) {
        visited[a.to] = 1;
        queue.push_back(a.to);
      }
    }
  }
  return result;
}

BipartiteGraph DynamicDeltaIndex::ExportGraph() const {
  GraphBuilder builder;
  builder.Reserve(num_upper_, NumVertices() - num_upper_, num_alive_edges_);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (!edge_alive_[e]) continue;
    builder.AddEdge(edges_[e].u, edges_[e].v - num_upper_, edges_[e].w);
  }
  BipartiteGraph out;
  Status st = builder.Build(&out);
  (void)st;
  return out;
}

BicoreDecomposition DynamicDeltaIndex::ExportDecomposition() const {
  // CSR slice invariant (abcore/offsets.h): v's slice holds levels
  // 1..L(v) where L(v) is the last τ with a nonzero offset, and offsets
  // are non-increasing in τ — so L(v) is the length of the nonzero prefix
  // of v's dense column.
  const uint32_t n = NumVertices();
  BicoreDecomposition d;
  d.delta = delta_;
  const auto pack = [&](const std::vector<std::vector<uint32_t>>& rows,
                        OffsetArena* arena) {
    std::vector<uint32_t>& start = arena->start.Mutable();
    start.assign(n + 1, 0);
    for (VertexId v = 0; v < n; ++v) {
      uint32_t levels = 0;
      while (levels < delta_ && rows[levels][v] >= 1) ++levels;
      start[v + 1] = start[v] + levels;
    }
    std::vector<uint32_t>& values = arena->values.Mutable();
    values.assign(start[n], 0);
    for (VertexId v = 0; v < n; ++v) {
      const uint32_t levels = start[v + 1] - start[v];
      for (uint32_t tau = 0; tau < levels; ++tau) {
        values[start[v] + tau] = rows[tau][v];
      }
    }
  };
  pack(sa_, &d.alpha);
  pack(sb_, &d.beta);
  return d;
}

}  // namespace abcs
