#include "core/bicore_index.h"

#include <algorithm>

namespace abcs {

/// Builds one side arena from the matching decomposition arena,
/// output-sensitively: vertex v contributes exactly its Levels(v) nonzero
/// offsets, so the fill is Σ_v Levels(v) = |entries| — no δ·n sweep over
/// levels where v has offset 0.
void BicoreIndex::BuildSide(const OffsetArena& offsets, uint32_t delta,
                            SideArena* side) {
  const uint32_t n =
      static_cast<uint32_t>(offsets.start.empty() ? 0
                                                  : offsets.start.size() - 1);
  // |List(τ)| = #{v : Levels(v) ≥ τ}, via a histogram of slice lengths.
  std::vector<uint32_t> hist(delta + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++hist[offsets.Levels(v)];
  std::vector<uint32_t>& start = side->start.Mutable();
  std::vector<Entry>& entries = side->entries.Mutable();
  start.assign(delta + 1, 0);
  uint32_t count_ge = 0;
  for (uint32_t tau = delta; tau >= 1; --tau) {
    count_ge += hist[tau];
    start[tau] = count_ge;  // holds |List(τ)| for now
  }
  for (uint32_t tau = 1; tau <= delta; ++tau) {
    start[tau] += start[tau - 1];
  }
  entries.resize(start[delta]);

  std::vector<uint32_t> cursor(start.begin(), start.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    const uint32_t base = offsets.start[v];
    const uint32_t levels = offsets.Levels(v);
    for (uint32_t tau = 1; tau <= levels; ++tau) {
      entries[cursor[tau - 1]++] = Entry{v, offsets.values[base + tau - 1]};
    }
  }
  auto by_offset_desc = [](const Entry& a, const Entry& b) {
    if (a.offset != b.offset) return a.offset > b.offset;
    return a.v < b.v;
  };
  for (uint32_t tau = 1; tau <= delta; ++tau) {
    std::sort(entries.begin() + start[tau - 1], entries.begin() + start[tau],
              by_offset_desc);
  }
}

BicoreIndex BicoreIndex::Build(const BipartiteGraph& g,
                               const BicoreDecomposition* decomp,
                               unsigned num_threads) {
  BicoreDecomposition local;
  if (decomp == nullptr) {
    local = ComputeBicoreDecompositionParallel(g, num_threads);
    decomp = &local;
  }

  BicoreIndex index;
  index.graph_ = &g;
  index.delta_ = decomp->delta;
  BuildSide(decomp->alpha, decomp->delta, &index.alpha_side_);
  BuildSide(decomp->beta, decomp->delta, &index.beta_side_);
  return index;
}

std::vector<VertexId> BicoreIndex::QueryCoreVertices(
    uint32_t alpha, uint32_t beta, QueryStats* stats) const {
  std::vector<VertexId> out;
  if (alpha == 0 || beta == 0) return out;
  const uint32_t tau = std::min(alpha, beta);
  if (tau > delta_) return out;

  // Prefix of the side indexed by min(α,β), thresholded by the other value.
  const bool use_alpha_side = alpha <= beta;
  const SideArena& side = use_alpha_side ? alpha_side_ : beta_side_;
  const uint32_t tau_level = use_alpha_side ? alpha : beta;
  const uint32_t need = use_alpha_side ? beta : alpha;
  for (const Entry* entry = side.ListBegin(tau_level);
       entry != side.ListEnd(tau_level); ++entry) {
    if (stats) ++stats->touched_arcs;
    if (entry->offset < need) break;
    out.push_back(entry->v);
  }
  return out;
}

bool BicoreIndex::CoreContains(const Entry* first, const Entry* last,
                               uint32_t need, VertexId q) {
  const auto prefix_end = std::partition_point(
      first, last, [need](const Entry& e) { return e.offset >= need; });
  auto it = first;
  while (it != prefix_end) {
    const uint32_t o = it->offset;
    // Galloping search for the run end: O(log |run|) per run, so a prefix
    // of mostly-distinct offsets costs O(p) total (like a linear scan)
    // while a flat prefix — one big run — rejects in O(log p).
    auto low = it;
    std::ptrdiff_t width = 1;
    while (prefix_end - low > width && (low + width)->offset == o) {
      low += width;
      width *= 2;
    }
    const auto window_end =
        prefix_end - low > width ? low + width : prefix_end;
    const auto run_end = std::partition_point(
        low, window_end, [o](const Entry& e) { return e.offset == o; });
    const auto hit = std::lower_bound(
        it, run_end, q,
        [](const Entry& e, VertexId v) { return e.v < v; });
    if (hit != run_end && hit->v == q) return true;
    it = run_end;
  }
  return false;
}

void BicoreIndex::QueryCommunity(VertexId q, uint32_t alpha, uint32_t beta,
                                 QueryScratch& scratch, Subgraph* out,
                                 QueryStats* stats) const {
  out->edges.clear();
  if (graph_ == nullptr || alpha == 0 || beta == 0) return;
  const BipartiteGraph& g = *graph_;
  if (q >= g.NumVertices()) return;
  const uint32_t tau = std::min(alpha, beta);
  if (tau > delta_) return;

  // Reject before touching any O(n) or O(|core|) state: q's degree bounds
  // its offset (O(1)), then membership via run-wise binary search.
  if (g.Degree(q) < (g.IsUpper(q) ? alpha : beta)) return;
  const bool use_alpha_side = alpha <= beta;
  const SideArena& side = use_alpha_side ? alpha_side_ : beta_side_;
  const uint32_t tau_level = use_alpha_side ? alpha : beta;
  const uint32_t need = use_alpha_side ? beta : alpha;
  const Entry* first = side.ListBegin(tau_level);
  const Entry* last = side.ListEnd(tau_level);
  if (!CoreContains(first, last, need, q)) return;

  // Stamp the core prefix — O(|V(R_{α,β})|), not O(n).
  scratch.BeginQuery(g.NumVertices());
  scratch.EnsureInCore(g.NumVertices());
  for (const Entry* entry = first; entry != last; ++entry) {
    scratch.CancelTick();
    if (stats) ++stats->touched_arcs;
    if (entry->offset < need) break;
    scratch.MarkInCore(entry->v);
  }
  if (scratch.CancelStopped()) return;

  // BFS from q over the original adjacency; arcs to vertices outside the
  // core are inspected (and counted) but not followed — the overhead Qopt
  // eliminates.
  CollectCommunityBfs(scratch, g, q, out->edges,
                      [&](VertexId v, auto&& visit) {
                        for (const Arc& a : g.Neighbors(v)) {
                          scratch.CancelTick();
                          if (stats) ++stats->touched_arcs;
                          if (!scratch.InCore(a.to)) continue;
                          visit(a.to, a.eid);
                        }
                      });
  if (scratch.CancelStopped()) out->edges.clear();  // drop partial walk
}

Subgraph BicoreIndex::QueryCommunity(VertexId q, uint32_t alpha,
                                     uint32_t beta, QueryStats* stats) const {
  QueryScratch scratch;
  Subgraph result;
  QueryCommunity(q, alpha, beta, scratch, &result, stats);
  return result;
}

std::size_t BicoreIndex::MemoryBytes() const {
  return alpha_side_.Bytes() + beta_side_.Bytes();
}

}  // namespace abcs
