#include "core/bicore_index.h"

#include <algorithm>
#include <deque>

namespace abcs {

BicoreIndex BicoreIndex::Build(const BipartiteGraph& g,
                               const BicoreDecomposition* decomp,
                               unsigned num_threads) {
  BicoreDecomposition local;
  if (decomp == nullptr) {
    local = ComputeBicoreDecompositionParallel(g, num_threads);
    decomp = &local;
  }

  BicoreIndex index;
  index.graph_ = &g;
  index.delta_ = decomp->delta;
  index.alpha_side_.resize(decomp->delta);
  index.beta_side_.resize(decomp->delta);
  const uint32_t n = g.NumVertices();

  for (uint32_t tau = 1; tau <= decomp->delta; ++tau) {
    const std::vector<uint32_t>& sa = decomp->sa[tau - 1];
    const std::vector<uint32_t>& sb = decomp->sb[tau - 1];
    auto& av = index.alpha_side_[tau - 1];
    auto& bv = index.beta_side_[tau - 1];
    for (VertexId v = 0; v < n; ++v) {
      if (sa[v] >= 1) av.push_back(Entry{v, sa[v]});
      if (sb[v] >= 1) bv.push_back(Entry{v, sb[v]});
    }
    auto by_offset_desc = [](const Entry& a, const Entry& b) {
      if (a.offset != b.offset) return a.offset > b.offset;
      return a.v < b.v;
    };
    std::sort(av.begin(), av.end(), by_offset_desc);
    std::sort(bv.begin(), bv.end(), by_offset_desc);
  }
  return index;
}

std::vector<VertexId> BicoreIndex::QueryCoreVertices(
    uint32_t alpha, uint32_t beta, QueryStats* stats) const {
  std::vector<VertexId> out;
  if (alpha == 0 || beta == 0) return out;
  const uint32_t tau = std::min(alpha, beta);
  if (tau > delta_) return out;

  // Prefix of the side indexed by min(α,β), thresholded by the other value.
  const bool use_alpha_side = alpha <= beta;
  const std::vector<Entry>& list =
      use_alpha_side ? alpha_side_[alpha - 1] : beta_side_[beta - 1];
  const uint32_t need = use_alpha_side ? beta : alpha;
  for (const Entry& entry : list) {
    if (stats) ++stats->touched_arcs;
    if (entry.offset < need) break;
    out.push_back(entry.v);
  }
  return out;
}

Subgraph BicoreIndex::QueryCommunity(VertexId q, uint32_t alpha,
                                     uint32_t beta, QueryStats* stats) const {
  Subgraph result;
  const BipartiteGraph& g = *graph_;
  if (q >= g.NumVertices()) return result;

  std::vector<VertexId> core = QueryCoreVertices(alpha, beta, stats);
  std::vector<uint8_t> in_core(g.NumVertices(), 0);
  for (VertexId v : core) in_core[v] = 1;
  if (!in_core[q]) return result;

  // BFS from q over the original adjacency; arcs to vertices outside the
  // core are inspected (and counted) but not followed — the overhead Qopt
  // eliminates.
  std::vector<uint8_t> visited(g.NumVertices(), 0);
  std::deque<VertexId> queue{q};
  visited[q] = 1;
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    for (const Arc& a : g.Neighbors(v)) {
      if (stats) ++stats->touched_arcs;
      if (!in_core[a.to]) continue;
      if (!g.IsUpper(v)) result.edges.push_back(a.eid);
      if (!visited[a.to]) {
        visited[a.to] = 1;
        queue.push_back(a.to);
      }
    }
  }
  return result;
}

std::size_t BicoreIndex::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& side : {&alpha_side_, &beta_side_}) {
    for (const auto& list : *side) bytes += list.size() * sizeof(Entry);
  }
  return bytes;
}

}  // namespace abcs
