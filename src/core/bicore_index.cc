#include "core/bicore_index.h"

#include <algorithm>

namespace abcs {

BicoreIndex BicoreIndex::Build(const BipartiteGraph& g,
                               const BicoreDecomposition* decomp,
                               unsigned num_threads) {
  BicoreDecomposition local;
  if (decomp == nullptr) {
    local = ComputeBicoreDecompositionParallel(g, num_threads);
    decomp = &local;
  }

  BicoreIndex index;
  index.graph_ = &g;
  index.delta_ = decomp->delta;
  index.alpha_side_.resize(decomp->delta);
  index.beta_side_.resize(decomp->delta);
  const uint32_t n = g.NumVertices();

  for (uint32_t tau = 1; tau <= decomp->delta; ++tau) {
    const std::vector<uint32_t>& sa = decomp->sa[tau - 1];
    const std::vector<uint32_t>& sb = decomp->sb[tau - 1];
    auto& av = index.alpha_side_[tau - 1];
    auto& bv = index.beta_side_[tau - 1];
    for (VertexId v = 0; v < n; ++v) {
      if (sa[v] >= 1) av.push_back(Entry{v, sa[v]});
      if (sb[v] >= 1) bv.push_back(Entry{v, sb[v]});
    }
    auto by_offset_desc = [](const Entry& a, const Entry& b) {
      if (a.offset != b.offset) return a.offset > b.offset;
      return a.v < b.v;
    };
    std::sort(av.begin(), av.end(), by_offset_desc);
    std::sort(bv.begin(), bv.end(), by_offset_desc);
  }
  return index;
}

std::vector<VertexId> BicoreIndex::QueryCoreVertices(
    uint32_t alpha, uint32_t beta, QueryStats* stats) const {
  std::vector<VertexId> out;
  if (alpha == 0 || beta == 0) return out;
  const uint32_t tau = std::min(alpha, beta);
  if (tau > delta_) return out;

  // Prefix of the side indexed by min(α,β), thresholded by the other value.
  const bool use_alpha_side = alpha <= beta;
  const std::vector<Entry>& list =
      use_alpha_side ? alpha_side_[alpha - 1] : beta_side_[beta - 1];
  const uint32_t need = use_alpha_side ? beta : alpha;
  for (const Entry& entry : list) {
    if (stats) ++stats->touched_arcs;
    if (entry.offset < need) break;
    out.push_back(entry.v);
  }
  return out;
}

bool BicoreIndex::CoreContains(const std::vector<Entry>& list, uint32_t need,
                               VertexId q) {
  const auto prefix_end = std::partition_point(
      list.begin(), list.end(),
      [need](const Entry& e) { return e.offset >= need; });
  auto it = list.begin();
  while (it != prefix_end) {
    const uint32_t o = it->offset;
    // Galloping search for the run end: O(log |run|) per run, so a prefix
    // of mostly-distinct offsets costs O(p) total (like a linear scan)
    // while a flat prefix — one big run — rejects in O(log p).
    auto low = it;
    std::ptrdiff_t width = 1;
    while (prefix_end - low > width && (low + width)->offset == o) {
      low += width;
      width *= 2;
    }
    const auto window_end =
        prefix_end - low > width ? low + width : prefix_end;
    const auto run_end = std::partition_point(
        low, window_end, [o](const Entry& e) { return e.offset == o; });
    const auto hit = std::lower_bound(
        it, run_end, q,
        [](const Entry& e, VertexId v) { return e.v < v; });
    if (hit != run_end && hit->v == q) return true;
    it = run_end;
  }
  return false;
}

void BicoreIndex::QueryCommunity(VertexId q, uint32_t alpha, uint32_t beta,
                                 QueryScratch& scratch, Subgraph* out,
                                 QueryStats* stats) const {
  out->edges.clear();
  if (graph_ == nullptr || alpha == 0 || beta == 0) return;
  const BipartiteGraph& g = *graph_;
  if (q >= g.NumVertices()) return;
  const uint32_t tau = std::min(alpha, beta);
  if (tau > delta_) return;

  // Reject before touching any O(n) or O(|core|) state: q's degree bounds
  // its offset (O(1)), then membership via run-wise binary search.
  if (g.Degree(q) < (g.IsUpper(q) ? alpha : beta)) return;
  const bool use_alpha_side = alpha <= beta;
  const std::vector<Entry>& list =
      use_alpha_side ? alpha_side_[alpha - 1] : beta_side_[beta - 1];
  const uint32_t need = use_alpha_side ? beta : alpha;
  if (!CoreContains(list, need, q)) return;

  // Stamp the core prefix — O(|V(R_{α,β})|), not O(n).
  scratch.BeginQuery(g.NumVertices());
  scratch.EnsureInCore(g.NumVertices());
  for (const Entry& entry : list) {
    if (stats) ++stats->touched_arcs;
    if (entry.offset < need) break;
    scratch.MarkInCore(entry.v);
  }

  // BFS from q over the original adjacency; arcs to vertices outside the
  // core are inspected (and counted) but not followed — the overhead Qopt
  // eliminates.
  CollectCommunityBfs(scratch, g, q, out->edges,
                      [&](VertexId v, auto&& visit) {
                        for (const Arc& a : g.Neighbors(v)) {
                          if (stats) ++stats->touched_arcs;
                          if (!scratch.InCore(a.to)) continue;
                          visit(a.to, a.eid);
                        }
                      });
}

Subgraph BicoreIndex::QueryCommunity(VertexId q, uint32_t alpha,
                                     uint32_t beta, QueryStats* stats) const {
  QueryScratch scratch;
  Subgraph result;
  QueryCommunity(q, alpha, beta, scratch, &result, stats);
  return result;
}

std::size_t BicoreIndex::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& side : {&alpha_side_, &beta_side_}) {
    for (const auto& list : *side) bytes += list.size() * sizeof(Entry);
  }
  return bytes;
}

}  // namespace abcs
