#ifndef ABCS_CORE_INDEX_IO_H_
#define ABCS_CORE_INDEX_IO_H_

#include <string>

#include "common/status.h"
#include "core/delta_index.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief Binary serialisation of the degeneracy-bounded index `I_δ`.
///
/// Building `I_δ` costs O(δ·m); persisting it lets a service answer
/// community queries immediately after start-up. The format is a flat
/// little-endian dump with a magic header and format version:
///
///     "ABCSIDX1" | delta | nU | nL | m | per-vertex α-half | β-half
///
/// The file embeds the graph's shape (vertex/edge counts) and a topology
/// checksum; `LoadDeltaIndex` fails with `Corruption` when the file does
/// not match the supplied graph, so a stale index cannot silently serve
/// wrong communities.
Status SaveDeltaIndex(const DeltaIndex& index, const BipartiteGraph& g,
                      const std::string& path);

/// Loads an index previously written by SaveDeltaIndex; `g` must be the
/// same graph the index was built from (checked via counts + checksum).
/// The graph must outlive the returned index.
Status LoadDeltaIndex(const std::string& path, const BipartiteGraph& g,
                      DeltaIndex* out);

/// Topology checksum used for index/graph matching (FNV-1a over the edge
/// list; weights are excluded because I_δ stores none).
uint64_t GraphTopologyChecksum(const BipartiteGraph& g);

}  // namespace abcs

#endif  // ABCS_CORE_INDEX_IO_H_
