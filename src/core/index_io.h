#ifndef ABCS_CORE_INDEX_IO_H_
#define ABCS_CORE_INDEX_IO_H_

#include <string>

#include "common/status.h"
#include "core/delta_index.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief Legacy binary serialisation of the degeneracy-bounded index
/// `I_δ` alone (the `ABCSIDX` format family).
///
/// DEPRECATED, kept load-only for existing saved indices: new code should
/// persist the self-contained `ABCSPAK1` bundle (io/index_bundle.h), which
/// carries the graph, the offset decomposition and both index layers with
/// per-section checksums, and opens zero-copy via mmap. The CLI's
/// `--index` flag auto-detects either format by magic.
///
/// The legacy format is a flat little-endian dump:
///
///     "ABCSIDX2" | delta | nU | nL | m | checksum | α-half | β-half
///
/// The file embeds the graph's shape (vertex/edge counts) and a topology
/// checksum; `LoadDeltaIndex` fails with `Corruption` when the file does
/// not match the supplied graph, so a stale index cannot silently serve
/// wrong communities. (It has no weight digest — one of the reasons the
/// bundle format replaced it.)
///
/// `SaveDeltaIndex` remains only so tests can pin the legacy load path
/// and tools can produce fixtures for downgrades; do not use it in new
/// serving code.
Status SaveDeltaIndex(const DeltaIndex& index, const BipartiteGraph& g,
                      const std::string& path);

/// Loads an index previously written by SaveDeltaIndex; `g` must be the
/// same graph the index was built from (checked via counts + checksum).
/// The graph must outlive the returned index.
Status LoadDeltaIndex(const std::string& path, const BipartiteGraph& g,
                      DeltaIndex* out);

/// Topology checksum used for index/graph matching (FNV-1a over the edge
/// list; weights are excluded because I_δ stores none).
uint64_t GraphTopologyChecksum(const BipartiteGraph& g);

/// Weight digest: FNV-1a over the bit patterns of the edge weights, in
/// EdgeId order. Complements GraphTopologyChecksum — the bundle header
/// stores both, so a bundle whose graph kept its topology but changed its
/// significances (re-scored ratings, fresh RWR run) is rejected instead of
/// silently serving wrong BicoreIndex/SCS answers.
uint64_t GraphWeightChecksum(const BipartiteGraph& g);

}  // namespace abcs

#endif  // ABCS_CORE_INDEX_IO_H_
