#ifndef ABCS_CORE_QUERY_STATS_H_
#define ABCS_CORE_QUERY_STATS_H_

#include <cstdint>

namespace abcs {

/// \brief Work counters for community retrieval.
///
/// `touched_arcs` counts adjacency entries examined; the paper's optimality
/// claim (Lemma 3) is that `Qopt` touches Θ(size(C_{α,β}(q))) entries while
/// `Qv` also scans arcs leaving the community and `Qo` scans the whole
/// graph. Tests assert these relationships exactly.
struct QueryStats {
  uint64_t touched_arcs = 0;
};

}  // namespace abcs

#endif  // ABCS_CORE_QUERY_STATS_H_
