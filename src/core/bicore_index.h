#ifndef ABCS_CORE_BICORE_INDEX_H_
#define ABCS_CORE_BICORE_INDEX_H_

#include <cstdint>
#include <vector>

#include "abcore/offsets.h"
#include "core/query_scratch.h"
#include "core/query_stats.h"
#include "core/subgraph.h"
#include "graph/bipartite_graph.h"
#include "io/arena_storage.h"

namespace abcs {

struct BundleAccess;

/// \brief The bicore index `I_v` (Liu et al., WWW'19 — the paper's [15]):
/// vertex-only (α,β)-core membership, organised by the degeneracy bound.
///
/// For every τ ∈ [1, δ] it stores the vertices of the (τ,1)-core sorted by
/// decreasing α-offset and the vertices of the (1,τ)-core sorted by
/// decreasing β-offset, so `V(R_{α,β})` is a prefix of one of the lists and
/// is retrieved in optimal O(|V(R_{α,β})|) time.
///
/// Because only vertex membership is stored, retrieving the
/// *(α,β)-community* (`Qv`, see `QueryCommunity`) must BFS over the
/// original graph and inspect arcs that leave the community — this is the
/// non-optimality the paper's `I_δ` removes.
class BicoreIndex {
 public:
  BicoreIndex() = default;

  /// Builds the index in O(δ·m). If `decomp` is non-null it is used instead
  /// of recomputing the offset table (benches share one decomposition
  /// across index builds); otherwise the 2δ offset peels run on
  /// `num_threads` workers (1 = serial, 0 = hardware concurrency; identical
  /// result). The graph must outlive the index.
  static BicoreIndex Build(const BipartiteGraph& g,
                           const BicoreDecomposition* decomp = nullptr,
                           unsigned num_threads = 1);

  /// Degeneracy of the indexed graph.
  uint32_t delta() const { return delta_; }

  /// Vertex set of the (α,β)-core, in O(|V(R_{α,β})|). Empty when the core
  /// is empty (in particular whenever min(α,β) > δ).
  std::vector<VertexId> QueryCoreVertices(uint32_t alpha, uint32_t beta,
                                          QueryStats* stats = nullptr) const;

  /// `Qv`: the (α,β)-community of `q`, via core vertex retrieval plus BFS
  /// over the graph restricted to core vertices.
  Subgraph QueryCommunity(VertexId q, uint32_t alpha, uint32_t beta,
                          QueryStats* stats = nullptr) const;

  /// Scratch-backed `Qv`: identical result with zero steady-state heap
  /// allocations. Rejects `q` *before* materialising any core state: an
  /// O(1) degree bound, then binary searches over the equal-offset runs of
  /// the sorted entry list — so a rejected query costs O(r·log n) (r =
  /// distinct offsets above the threshold) instead of the old O(n)
  /// `in_core` array build. Accepted queries stamp the core prefix into
  /// `scratch` in O(|V(R_{α,β})|).
  void QueryCommunity(VertexId q, uint32_t alpha, uint32_t beta,
                      QueryScratch& scratch, Subgraph* out,
                      QueryStats* stats = nullptr) const;

  /// Bytes used by the index payload (Fig. 11).
  std::size_t MemoryBytes() const;

 private:
  struct Entry {
    VertexId v;
    uint32_t offset;  ///< s_a(v,τ) or s_b(v,τ)
  };

  /// One side of the index in arena form (the layout `DeltaIndex::Half`
  /// already uses): the δ per-τ entry lists concatenated into one flat
  /// array behind a start table, so the whole side is two allocations and
  /// a query's prefix scan is one contiguous sweep.
  /// `List(τ)` = entries[start[τ-1] .. start[τ]): vertices with offset ≥ 1
  /// at τ, sorted by (offset desc, v asc). Arrays in `ArenaStorage`: owned
  /// by Build, or borrowed from an opened bundle (io/index_bundle.h).
  struct SideArena {
    ArenaStorage<uint32_t> start;  ///< size δ+1
    ArenaStorage<Entry> entries;

    const Entry* ListBegin(uint32_t tau) const {
      return entries.data() + start[tau - 1];
    }
    const Entry* ListEnd(uint32_t tau) const {
      return entries.data() + start[tau];
    }
    std::size_t Bytes() const {
      return start.size() * sizeof(uint32_t) +
             entries.size() * sizeof(Entry);
    }
  };

  /// True iff `q` appears in [first, last) with offset ≥ `need`, i.e. q is
  /// in the queried core. The list is sorted by (offset desc, v asc);
  /// within the qualifying prefix each equal-offset run is binary searched
  /// for q.
  static bool CoreContains(const Entry* first, const Entry* last,
                           uint32_t need, VertexId q);

  /// Fills one side arena from the matching decomposition arena in
  /// Σ_v Levels(v) time (plus the per-τ sorts) — no δ·n sweep.
  static void BuildSide(const OffsetArena& offsets, uint32_t delta,
                        SideArena* side);

  friend struct BundleAccess;

  const BipartiteGraph* graph_ = nullptr;
  uint32_t delta_ = 0;
  SideArena alpha_side_;  ///< per-τ lists of s_a(·,τ)
  SideArena beta_side_;   ///< per-τ lists of s_b(·,τ)
};

}  // namespace abcs

#endif  // ABCS_CORE_BICORE_INDEX_H_
