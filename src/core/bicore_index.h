#ifndef ABCS_CORE_BICORE_INDEX_H_
#define ABCS_CORE_BICORE_INDEX_H_

#include <cstdint>
#include <vector>

#include "abcore/offsets.h"
#include "core/query_scratch.h"
#include "core/query_stats.h"
#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief The bicore index `I_v` (Liu et al., WWW'19 — the paper's [15]):
/// vertex-only (α,β)-core membership, organised by the degeneracy bound.
///
/// For every τ ∈ [1, δ] it stores the vertices of the (τ,1)-core sorted by
/// decreasing α-offset and the vertices of the (1,τ)-core sorted by
/// decreasing β-offset, so `V(R_{α,β})` is a prefix of one of the lists and
/// is retrieved in optimal O(|V(R_{α,β})|) time.
///
/// Because only vertex membership is stored, retrieving the
/// *(α,β)-community* (`Qv`, see `QueryCommunity`) must BFS over the
/// original graph and inspect arcs that leave the community — this is the
/// non-optimality the paper's `I_δ` removes.
class BicoreIndex {
 public:
  BicoreIndex() = default;

  /// Builds the index in O(δ·m). If `decomp` is non-null it is used instead
  /// of recomputing the offset table (benches share one decomposition
  /// across index builds); otherwise the 2δ offset peels run on
  /// `num_threads` workers (1 = serial, 0 = hardware concurrency; identical
  /// result). The graph must outlive the index.
  static BicoreIndex Build(const BipartiteGraph& g,
                           const BicoreDecomposition* decomp = nullptr,
                           unsigned num_threads = 1);

  /// Degeneracy of the indexed graph.
  uint32_t delta() const { return delta_; }

  /// Vertex set of the (α,β)-core, in O(|V(R_{α,β})|). Empty when the core
  /// is empty (in particular whenever min(α,β) > δ).
  std::vector<VertexId> QueryCoreVertices(uint32_t alpha, uint32_t beta,
                                          QueryStats* stats = nullptr) const;

  /// `Qv`: the (α,β)-community of `q`, via core vertex retrieval plus BFS
  /// over the graph restricted to core vertices.
  Subgraph QueryCommunity(VertexId q, uint32_t alpha, uint32_t beta,
                          QueryStats* stats = nullptr) const;

  /// Scratch-backed `Qv`: identical result with zero steady-state heap
  /// allocations. Rejects `q` *before* materialising any core state: an
  /// O(1) degree bound, then binary searches over the equal-offset runs of
  /// the sorted entry list — so a rejected query costs O(r·log n) (r =
  /// distinct offsets above the threshold) instead of the old O(n)
  /// `in_core` array build. Accepted queries stamp the core prefix into
  /// `scratch` in O(|V(R_{α,β})|).
  void QueryCommunity(VertexId q, uint32_t alpha, uint32_t beta,
                      QueryScratch& scratch, Subgraph* out,
                      QueryStats* stats = nullptr) const;

  /// Bytes used by the index payload (Fig. 11).
  std::size_t MemoryBytes() const;

 private:
  struct Entry {
    VertexId v;
    uint32_t offset;  ///< s_a(v,τ) or s_b(v,τ)
  };

  /// True iff `q` appears in `list` with offset ≥ `need`, i.e. q is in the
  /// queried core. The list is sorted by (offset desc, v asc); within the
  /// qualifying prefix each equal-offset run is binary searched for q.
  static bool CoreContains(const std::vector<Entry>& list, uint32_t need,
                           VertexId q);

  const BipartiteGraph* graph_ = nullptr;
  uint32_t delta_ = 0;
  /// alpha_side_[τ-1]: vertices with s_a(·,τ) ≥ 1, sorted by s_a desc.
  std::vector<std::vector<Entry>> alpha_side_;
  /// beta_side_[τ-1]: vertices with s_b(·,τ) ≥ 1, sorted by s_b desc.
  std::vector<std::vector<Entry>> beta_side_;
};

}  // namespace abcs

#endif  // ABCS_CORE_BICORE_INDEX_H_
