#include "core/scs_auto.h"

#include "core/scs_binary.h"
#include "core/scs_expand.h"

namespace abcs {

namespace {

// Planner thresholds, calibrated with bench_scs_throughput and the
// crossover ablation on the registry datasets (see docs/scs_engine.md).
// Below kTinyEdges every kernel finishes in the noise, so the simplest
// wins. kExpandFrac bounds the batch-aligned prefix share under which
// Expand provably touches a small fraction of C: expansion work is
// O(ε · prefix) while any peel-family kernel pays a full O(size(C))
// stabilisation first. Measurements show the rank-based Peel winning
// everywhere else — its single linear stabilise plus back-to-front batch
// kills has the lowest per-edge constant, and Binary's probe diffs
// telescope to the *same* edge work Peel does plus undo overhead — so the
// planner routes the remainder to Peel. Binary stays an explicit choice:
// its value is the O(log W) bound on validations (and the 2–4× win over
// its own pre-PR fresh-peel form), not beating Peel's constants.
constexpr uint32_t kTinyEdges = 512;
constexpr double kExpandFrac = 1.0 / 32.0;

}  // namespace

ScsAlgo PlanScsAlgo(const LocalGraph& lg, VertexId q, uint32_t alpha,
                    uint32_t beta) {
  const uint32_t m = lg.NumEdges();
  const uint32_t lq = lg.LocalId(q);
  if (lq == kInvalidVertex || m <= kTinyEdges || lg.NumDistinctWeights() <= 1) {
    return ScsAlgo::kPeel;
  }
  const uint32_t t = lg.IsUpperLocal(lq) ? alpha : beta;
  const auto arcs = lg.Neighbors(lq);
  // q cannot keep threshold(q) edges: infeasible, and a single
  // stabilisation (Peel's) discovers that with the least machinery.
  if (arcs.size() < t || t == 0) return ScsAlgo::kPeel;
  // Arcs are rank-sorted, so arcs[t-1].pos is the rank of q's t-th
  // strongest edge; any feasible subgraph retains ≥ t edges at q, so the
  // feasible prefix extends at least to the end of that rank's whole
  // batch. This batch-aligned prefix share is the planner's size(R) proxy.
  const uint32_t prefix_end =
      lg.PrefixEnd(lg.DistinctIndexOfRank(arcs[t - 1].pos));
  const double bfrac =
      static_cast<double>(prefix_end) / static_cast<double>(m);
  if (bfrac <= kExpandFrac) return ScsAlgo::kExpand;
  return ScsAlgo::kPeel;
}

void ScsQueryInto(const BipartiteGraph& g, const Subgraph& community,
                  VertexId q, uint32_t alpha, uint32_t beta, ScsAlgo algo,
                  const ScsOptions& options, ScsResult* out, ScsStats* stats,
                  QueryScratch* scratch, ScsWorkspace* workspace) {
  out->community.edges.clear();
  out->significance = 0;
  out->found = false;
  if (community.Empty() || alpha == 0 || beta == 0) {
    if (stats && algo != ScsAlgo::kAuto) stats->algo_used = algo;
    return;
  }
  QueryScratch local_scratch;
  QueryScratch& s = scratch ? *scratch : local_scratch;
  if (s.CancelStopped()) return;  // budget already blown on retrieval
  ScsWorkspace local_ws;
  ScsWorkspace& ws = workspace ? *workspace : local_ws;
  ws.lg.BuildFrom(g, community.edges);
  if (s.CancelStopped()) return;
  if (algo == ScsAlgo::kAuto) algo = PlanScsAlgo(ws.lg, q, alpha, beta);
  switch (algo) {
    case ScsAlgo::kPeel:
      PeelToSignificantInto(ws.lg, q, alpha, beta, out, stats, &s);
      break;
    case ScsAlgo::kExpand:
      ScsExpandOnLocal(ws.lg, q, alpha, beta, options, out, stats, s,
                       ws.expand);
      break;
    case ScsAlgo::kBinary:
      ScsBinaryOnLocal(ws.lg, q, alpha, beta, out, stats, s);
      break;
    case ScsAlgo::kAuto:
      break;  // resolved above
  }
}

ScsResult ScsQuery(const BipartiteGraph& g, const Subgraph& community,
                   VertexId q, uint32_t alpha, uint32_t beta, ScsAlgo algo,
                   const ScsOptions& options, ScsStats* stats,
                   QueryScratch* scratch, ScsWorkspace* workspace) {
  ScsResult result;
  ScsQueryInto(g, community, q, alpha, beta, algo, options, &result, stats,
               scratch, workspace);
  return result;
}

}  // namespace abcs
