#include "core/scs_expand.h"

#include <algorithm>
#include <numeric>

#include "common/dsu.h"

namespace abcs {

namespace {

/// Per-component bookkeeping kept at DSU roots so Lemma 7/8 checks are
/// O(1) per batch.
struct ComponentAgg {
  uint64_t edges = 0;
  uint32_t num_upper = 0;
  uint32_t num_lower = 0;
  uint32_t upper_ok = 0;  ///< upper vertices with deg ≥ α
  uint32_t lower_ok = 0;  ///< lower vertices with deg ≥ β
};

}  // namespace

ScsResult ExpandFromEdges(const BipartiteGraph& g,
                          const std::vector<EdgeId>& pool, VertexId q,
                          uint32_t alpha, uint32_t beta,
                          const ScsOptions& options, ScsStats* stats) {
  ScsResult result;
  if (pool.empty() || alpha == 0 || beta == 0) return result;
  LocalGraph lg(g, pool);
  const uint32_t lq = lg.LocalId(q);
  if (lq == kInvalidVertex) return result;

  const uint32_t n = lg.NumVertices();
  const uint32_t m = lg.NumEdges();
  auto threshold = [&](uint32_t x) {
    return lg.IsUpperLocal(x) ? alpha : beta;
  };

  std::vector<uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return lg.edges()[a].w > lg.edges()[b].w;
  });

  Dsu dsu(n);
  std::vector<uint32_t> deg(n, 0);
  std::vector<ComponentAgg> agg(n);
  std::vector<std::vector<uint32_t>> comp_edges(n);
  QueryScratch scratch;  // shared by every validation peel below

  auto validate = [&]() -> bool {
    if (stats) ++stats->validations;
    const uint32_t r = dsu.Find(lq);
    std::vector<EdgeId> cedges;
    cedges.reserve(comp_edges[r].size());
    for (uint32_t pos : comp_edges[r]) {
      cedges.push_back(lg.edges()[pos].global);
    }
    LocalGraph sub(g, cedges);
    ScsResult candidate =
        PeelToSignificant(sub, q, alpha, beta, stats, &scratch);
    if (candidate.found) {
      result = candidate;
      return true;
    }
    return false;
  };

  uint64_t last_q_edges = 0;
  uint64_t pre_size = 0;
  uint32_t i = 0;
  while (i < m) {
    const Weight wmax = lg.edges()[order[i]].w;
    for (; i < m && lg.edges()[order[i]].w == wmax; ++i) {
      const uint32_t pos = order[i];
      const LocalGraph::LocalEdge& le = lg.edges()[pos];
      if (stats) ++stats->edges_processed;
      for (uint32_t x : {le.u, le.v}) {
        const uint32_t rx = dsu.Find(x);
        if (deg[x] == 0) {
          if (lg.IsUpperLocal(x)) {
            ++agg[rx].num_upper;
          } else {
            ++agg[rx].num_lower;
          }
        }
        ++deg[x];
        if (deg[x] == threshold(x)) {
          if (lg.IsUpperLocal(x)) {
            ++agg[rx].upper_ok;
          } else {
            ++agg[rx].lower_ok;
          }
        }
      }
      const uint32_t ru = dsu.Find(le.u);
      const uint32_t rv = dsu.Find(le.v);
      uint32_t r = ru;
      if (ru != rv) {
        r = dsu.Union(ru, rv);
        const uint32_t other = (r == ru) ? rv : ru;
        agg[r].edges += agg[other].edges;
        agg[r].num_upper += agg[other].num_upper;
        agg[r].num_lower += agg[other].num_lower;
        agg[r].upper_ok += agg[other].upper_ok;
        agg[r].lower_ok += agg[other].lower_ok;
        if (comp_edges[other].size() > comp_edges[r].size()) {
          comp_edges[other].swap(comp_edges[r]);
        }
        comp_edges[r].insert(comp_edges[r].end(), comp_edges[other].begin(),
                             comp_edges[other].end());
        comp_edges[other].clear();
        comp_edges[other].shrink_to_fit();
      }
      comp_edges[r].push_back(pos);
      ++agg[r].edges;
    }

    // A batch of equal-weight edges was added; decide whether to validate.
    if (deg[lq] == 0) continue;
    const ComponentAgg& a = agg[dsu.Find(lq)];
    if (a.edges == last_q_edges) continue;  // C* did not change
    last_q_edges = a.edges;

    // Lemma 7: αβ − α − β ≤ |E(C*)| − |U(C*)| − |L(C*)|.
    const int64_t lhs = static_cast<int64_t>(alpha) * beta - alpha - beta;
    const int64_t rhs = static_cast<int64_t>(a.edges) -
                        static_cast<int64_t>(a.num_upper) -
                        static_cast<int64_t>(a.num_lower);
    if (lhs > rhs) continue;
    // Lemma 8: enough high-degree vertices on each side, q among them.
    if (a.lower_ok < alpha || a.upper_ok < beta) continue;
    if (deg[lq] < threshold(lq)) continue;
    // Geometric check schedule: validate only after ε-fold growth.
    if (static_cast<double>(a.edges) <
        static_cast<double>(pre_size) * options.epsilon) {
      continue;
    }
    pre_size = a.edges;
    if (validate()) return result;
  }

  // All edges added; force a final validation (the ε gate may have skipped
  // the last state, which equals the full pool restricted to q's
  // component).
  if (deg[lq] > 0 && validate()) return result;
  return result;
}

ScsResult ScsExpand(const BipartiteGraph& g, const Subgraph& community,
                    VertexId q, uint32_t alpha, uint32_t beta,
                    const ScsOptions& options, ScsStats* stats) {
  return ExpandFromEdges(g, community.edges, q, alpha, beta, options, stats);
}

}  // namespace abcs
