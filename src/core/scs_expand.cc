#include "core/scs_expand.h"

#include <algorithm>

namespace abcs {

void ScsExpandOnLocal(const LocalGraph& lg, VertexId q, uint32_t alpha,
                      uint32_t beta, const ScsOptions& options, ScsResult* out,
                      ScsStats* stats, QueryScratch& s, ScsExpandAux& aux) {
  out->community.edges.clear();
  out->significance = 0;
  out->found = false;
  if (stats) stats->algo_used = ScsAlgo::kExpand;
  if (alpha == 0 || beta == 0) return;
  const uint32_t lq = lg.LocalId(q);
  if (lq == kInvalidVertex || lg.NumEdges() == 0) return;

  const uint32_t n = lg.NumVertices();
  const uint32_t m = lg.NumEdges();
  auto threshold = [&](uint32_t x) {
    return lg.IsUpperLocal(x) ? alpha : beta;
  };

  std::vector<uint32_t>& deg = s.U32(QueryScratch::kSlotDeg);
  std::vector<uint8_t>& alive = s.U8(QueryScratch::kSlotAlive);
  std::vector<uint32_t>& cascade = s.U32(QueryScratch::kSlotQueue);
  std::vector<uint32_t>& journal = s.U32(QueryScratch::kSlotJournal);
  std::vector<uint32_t>& batch_removed = s.U32(QueryScratch::kSlotBatch);
  deg.assign(n, 0);
  alive.assign(m, 0);
  aux.dsu.Assign(n);
  aux.agg.assign(n, ScsComponentAgg{});

  auto kill = [&](uint32_t r, std::vector<uint32_t>* sink) {
    s.CancelTick();
    const LocalGraph::LocalEdge& le = lg.edges()[r];
    alive[r] = 0;
    sink->push_back(r);
    if (stats) ++stats->edges_processed;
    --deg[le.u];
    --deg[le.v];
    if (deg[le.u] < threshold(le.u)) cascade.push_back(le.u);
    if (deg[le.v] < threshold(le.v)) cascade.push_back(le.v);
  };
  auto run_cascade = [&](std::vector<uint32_t>* sink) {
    while (!cascade.empty()) {
      const uint32_t x = cascade.back();
      cascade.pop_back();
      if (deg[x] >= threshold(x) || deg[x] == 0) continue;
      for (const LocalGraph::LocalArc& a : lg.Neighbors(x)) {
        if (alive[a.pos]) kill(a.pos, sink);
      }
    }
  };
  auto restore = [&](const std::vector<uint32_t>& killed) {
    for (auto it = killed.rbegin(); it != killed.rend(); ++it) {
      const LocalGraph::LocalEdge& le = lg.edges()[*it];
      alive[*it] = 1;
      ++deg[le.u];
      ++deg[le.v];
    }
    if (stats) stats->edges_processed += killed.size();
  };

  // Validation, seeded from the expansion state: the degrees of everything
  // added so far are already in `deg`, so stabilising q's component is just
  // cascading its below-threshold vertices — with every kill journaled so
  // an infeasible round restores the exact expansion state. DSU roots
  // restrict the seeds (and therefore the whole cascade) to q's component;
  // other components' edges never interact with it. Finding the seeds is
  // one O(n) filtered scan per validation — a deliberate trade: the
  // ε-schedule bounds validations to O(log size(C)), and keeping per-root
  // member lists to avoid the scan is exactly the small-to-large vector
  // merging this rework removed.
  auto validate = [&](uint32_t last_di) {
    if (stats) ++stats->incremental_probes;
    const uint32_t qroot = aux.dsu.Find(lq);
    journal.clear();
    cascade.clear();
    for (uint32_t x = 0; x < n; ++x) {
      if (deg[x] > 0 && deg[x] < threshold(x) && aux.dsu.Find(x) == qroot) {
        cascade.push_back(x);
      }
    }
    run_cascade(&journal);
    if (deg[lq] < threshold(lq)) {
      restore(journal);
      return false;
    }
    // q's component is stable: peel minimum-weight batches down from here
    // until q violates; the state at the start of the violating batch,
    // restricted to q's component, is R (Theorem 1). Kills stay inside q's
    // component (DSU roots only coarsen during expansion, never split, so
    // the filter is a sound superset test).
    for (uint32_t di = last_di + 1; di-- > 0;) {
      // Cancel mid-validation: abandon with found=false. The expansion
      // state is torn past repair-worthiness (several committed batch
      // peels deep), but every structure here is per-query scratch that
      // the next query re-`assign`s, so no restore is owed — the caller
      // must check CancelStopped() before trusting the expansion state.
      if (s.CancelStopped()) return false;
      const Weight wmin = lg.DistinctWeight(di);
      batch_removed.clear();
      for (uint32_t r = lg.PrefixBegin(di); r < lg.PrefixEnd(di); ++r) {
        if (!alive[r]) continue;
        if (aux.dsu.Find(lg.edges()[r].u) != qroot) continue;
        kill(r, &batch_removed);
      }
      run_cascade(&batch_removed);
      if (deg[lq] < threshold(lq)) {
        restore(batch_removed);
        ExtractAliveComponent(lg, lq, alive, wmin, s, out);
        return true;
      }
    }
    return false;  // unreachable: q dies at latest with its last edge
  };

  uint64_t last_q_edges = 0;
  uint64_t pre_size = 0;
  const uint32_t num_distinct = lg.NumDistinctWeights();
  for (uint32_t di = 0; di < num_distinct; ++di) {
    if (s.CancelStopped()) return;
    // Add the rank batch of the next distinct weight.
    for (uint32_t r = lg.PrefixBegin(di); r < lg.PrefixEnd(di); ++r) {
      s.CancelTick();
      const LocalGraph::LocalEdge& le = lg.edges()[r];
      alive[r] = 1;
      if (stats) ++stats->edges_processed;
      for (uint32_t x : {le.u, le.v}) {
        const uint32_t rx = aux.dsu.Find(x);
        if (deg[x] == 0) {
          if (lg.IsUpperLocal(x)) {
            ++aux.agg[rx].num_upper;
          } else {
            ++aux.agg[rx].num_lower;
          }
        }
        ++deg[x];
        if (deg[x] == threshold(x)) {
          if (lg.IsUpperLocal(x)) {
            ++aux.agg[rx].upper_ok;
          } else {
            ++aux.agg[rx].lower_ok;
          }
        }
      }
      const uint32_t ru = aux.dsu.Find(le.u);
      const uint32_t rv = aux.dsu.Find(le.v);
      uint32_t root = ru;
      if (ru != rv) {
        root = aux.dsu.Union(ru, rv);
        const uint32_t other = (root == ru) ? rv : ru;
        aux.agg[root].edges += aux.agg[other].edges;
        aux.agg[root].num_upper += aux.agg[other].num_upper;
        aux.agg[root].num_lower += aux.agg[other].num_lower;
        aux.agg[root].upper_ok += aux.agg[other].upper_ok;
        aux.agg[root].lower_ok += aux.agg[other].lower_ok;
      }
      ++aux.agg[root].edges;
    }

    // A batch of equal-weight edges was added; decide whether to validate.
    if (deg[lq] == 0) continue;
    const ScsComponentAgg& a = aux.agg[aux.dsu.Find(lq)];
    if (a.edges == last_q_edges) continue;  // C* did not change
    last_q_edges = a.edges;

    // Lemma 7: αβ − α − β ≤ |E(C*)| − |U(C*)| − |L(C*)|.
    const int64_t lhs = static_cast<int64_t>(alpha) * beta - alpha - beta;
    const int64_t rhs = static_cast<int64_t>(a.edges) -
                        static_cast<int64_t>(a.num_upper) -
                        static_cast<int64_t>(a.num_lower);
    if (lhs > rhs) continue;
    // Lemma 8: enough high-degree vertices on each side, q among them.
    if (a.lower_ok < alpha || a.upper_ok < beta) continue;
    if (deg[lq] < threshold(lq)) continue;
    // Geometric check schedule: validate only after ε-fold growth.
    if (static_cast<double>(a.edges) <
        static_cast<double>(pre_size) * options.epsilon) {
      continue;
    }
    pre_size = a.edges;
    if (validate(di)) return;
    if (s.CancelStopped()) return;  // torn validate state: stop expanding
  }

  // All edges added; force a final validation (the ε gate may have skipped
  // the last state, which equals the full pool restricted to q's
  // component).
  if (deg[lq] > 0 && !s.CancelStopped()) validate(num_distinct - 1);
}

ScsResult ScsExpand(const BipartiteGraph& g, const Subgraph& community,
                    VertexId q, uint32_t alpha, uint32_t beta,
                    const ScsOptions& options, ScsStats* stats,
                    QueryScratch* scratch, ScsWorkspace* workspace) {
  return ExpandFromEdges(g, community.edges, q, alpha, beta, options, stats,
                         scratch, workspace);
}

ScsResult ExpandFromEdges(const BipartiteGraph& g,
                          const std::vector<EdgeId>& pool, VertexId q,
                          uint32_t alpha, uint32_t beta,
                          const ScsOptions& options, ScsStats* stats,
                          QueryScratch* scratch, ScsWorkspace* workspace) {
  ScsResult result;
  if (stats) stats->algo_used = ScsAlgo::kExpand;
  if (pool.empty() || alpha == 0 || beta == 0) return result;
  QueryScratch local_scratch;
  QueryScratch& s = scratch ? *scratch : local_scratch;
  ScsWorkspace local_ws;
  ScsWorkspace& ws = workspace ? *workspace : local_ws;
  ws.lg.BuildFrom(g, pool);
  ScsExpandOnLocal(ws.lg, q, alpha, beta, options, &result, stats, s,
                   ws.expand);
  return result;
}

}  // namespace abcs
