#ifndef ABCS_CORE_CANCEL_H_
#define ABCS_CORE_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace abcs {

/// \brief Cooperative cancellation for in-flight queries: a deadline, an
/// external cancel request and a monotonically increasing work counter,
/// checked every `kCheckInterval` edge-operations inside the kernels.
///
/// The serve tier's admission deadline used to stop mattering the moment
/// a worker dequeued the request — an adversarial (α,β) pair could wedge
/// the worker for the full community size. Threading a token through
/// `QueryScratch` into every kernel turns that deadline into an
/// end-to-end budget and gives the watchdog a lever to free a stuck
/// worker without killing the process.
///
/// Cost contract, pinned by the BENCH_query warn-only check:
///  - *Disarmed* (the offline default): `Tick()` is one relaxed atomic
///    load and a branch. Batch runs without a deadline stay bit-identical
///    and within noise of the pre-token engine.
///  - *Armed*: the fast path additionally bumps a thread-local op count;
///    only every 512th tick reads the clock and publishes the work
///    counter (one relaxed store the watchdog samples).
///
/// Threading contract: exactly one worker thread owns the token and calls
/// `Arm`/`Tick`/`Finish`; any other thread may call `CancelGeneration` or
/// `work()`. Cancellation is *generation-fenced*: `Arm` bumps an atomic
/// generation and a cancel names the generation it observed, so a
/// watchdog racing a worker's re-arm can never kill the next query — a
/// stale cancel is simply ignored.
///
/// Once a stop is observed it is sticky until the next `Arm`: the kernels
/// unwind through many layers and every layer's `Stopped()` check must
/// agree. `reason()` distinguishes a blown deadline from an external
/// cancel so the server can count `deadline_expired` and
/// `stuck_cancelled` separately.
class CancelToken {
 public:
  /// Why an armed query was stopped.
  enum class StopReason : uint8_t {
    kNone = 0,
    kDeadline,   ///< the armed deadline elapsed
    kCancelled,  ///< CancelGeneration() hit the live generation
  };

  /// Ticks between slow-path checks. Power of two; small enough that a
  /// 1ms deadline is honored within tens of microseconds of kernel time,
  /// large enough that the clock read vanishes from profiles.
  static constexpr uint32_t kCheckInterval = 512;

  /// Arms the token for one query. `deadline_ms == 0` means no deadline —
  /// the query can then only be stopped by `CancelGeneration`. Returns
  /// the new generation (hand it to whoever may need to cancel).
  uint64_t Arm(uint32_t deadline_ms) {
    const uint64_t gen =
        generation_.fetch_add(1, std::memory_order_relaxed) + 1;
    stopped_ = false;
    reason_ = StopReason::kNone;
    local_ops_ = 0;
    has_deadline_ = deadline_ms > 0;
    if (has_deadline_) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms);
    }
    // The release pairs with CancelGeneration's acquire load: a cancel
    // that reads this generation targets exactly this query.
    armed_.store(true, std::memory_order_release);
    return gen;
  }

  /// Disarms after the query completes (or unwinds). Ticks between
  /// queries go back to the single-load fast path.
  void Finish() { armed_.store(false, std::memory_order_release); }

  /// The query's work heartbeat *and* stop check, called from the kernels
  /// once per edge-operation. Returns true iff the query must unwind.
  bool Tick() {
    if (!armed_.load(std::memory_order_relaxed)) return false;
    if (stopped_) return true;
    if ((++local_ops_ & (kCheckInterval - 1)) != 0) return false;
    return SlowCheck();
  }

  /// Sticky result of the last slow check — cheap enough for per-level
  /// loop guards that must not consume an op tick.
  bool Stopped() const {
    return armed_.load(std::memory_order_relaxed) && stopped_;
  }

  StopReason reason() const { return reason_; }

  /// Whether a query is currently armed (watchdog side: only an armed
  /// token with a frozen work counter indicates a stuck worker).
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Current generation (watchdog side: sample, then cancel by value).
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Total ops published by armed queries; only advances while the owner
  /// makes progress, which is exactly what the stuck-worker watchdog
  /// samples.
  uint64_t work() const { return work_.load(std::memory_order_relaxed); }

  /// Requests cancellation of generation `gen` specifically. A request
  /// naming any other generation (the query already finished and the
  /// worker re-armed) is a no-op — the race is benign by construction.
  void CancelGeneration(uint64_t gen) {
    cancel_gen_.store(gen, std::memory_order_release);
  }

 private:
  bool SlowCheck() {
    work_.fetch_add(kCheckInterval, std::memory_order_relaxed);
    if (cancel_gen_.load(std::memory_order_acquire) ==
        generation_.load(std::memory_order_relaxed)) {
      stopped_ = true;
      reason_ = StopReason::kCancelled;
      return true;
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      stopped_ = true;
      reason_ = StopReason::kDeadline;
      return true;
    }
    return false;
  }

  // Owner-thread state (no concurrent access).
  uint32_t local_ops_ = 0;
  bool stopped_ = false;
  bool has_deadline_ = false;
  StopReason reason_ = StopReason::kNone;
  std::chrono::steady_clock::time_point deadline_;

  // Shared with watchdog/canceller threads.
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> cancel_gen_{0};
  std::atomic<uint64_t> work_{0};
};

}  // namespace abcs

#endif  // ABCS_CORE_CANCEL_H_
