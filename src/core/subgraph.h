#ifndef ABCS_CORE_SUBGRAPH_H_
#define ABCS_CORE_SUBGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief A subgraph of a `BipartiteGraph`, represented by its edge set.
///
/// This is the result type of every community query: the (α,β)-community
/// `C_{α,β}(q)` returned by the index queries and the significant
/// (α,β)-community `R` returned by the SCS algorithms. The vertex set is
/// implied (endpoints of the edges), matching the paper's convention that
/// communities have no isolated vertices.
struct Subgraph {
  std::vector<EdgeId> edges;

  bool Empty() const { return edges.empty(); }
  /// size(G') in the paper = number of edges.
  std::size_t Size() const { return edges.size(); }
};

/// Summary statistics of a subgraph (used by benches and the effectiveness
/// experiments).
struct SubgraphStats {
  uint32_t num_upper = 0;
  uint32_t num_lower = 0;
  Weight min_weight = 0.0;  ///< f(G') — the community significance
  Weight max_weight = 0.0;
  double avg_weight = 0.0;
};

class QueryScratch;

/// Computes vertex counts and weight statistics of `sub` in a single
/// traversal of its edges. With a `scratch` (see core/query_scratch.h) the
/// endpoint de-duplication uses epoch stamps — no sort, no allocation;
/// without one, endpoints are gathered in the same pass and sort/unique'd.
SubgraphStats ComputeStats(const BipartiteGraph& g, const Subgraph& sub,
                           QueryScratch* scratch = nullptr);

/// Sorted, de-duplicated vertex set of `sub`. With a `scratch`, duplicates
/// are filtered via epoch stamps before the sort, so only |V(sub)| entries
/// are sorted instead of 2·|sub|.
std::vector<VertexId> SubgraphVertexSet(const BipartiteGraph& g,
                                        const Subgraph& sub,
                                        QueryScratch* scratch = nullptr);

/// True iff `a` and `b` contain the same edge set (order-insensitive).
bool SameEdgeSet(const Subgraph& a, const Subgraph& b);

/// \brief Checks Definition 5's constraints 1) and 2): `sub` is connected,
/// contains `q`, every upper vertex has degree ≥ alpha and every lower
/// vertex degree ≥ beta within `sub`. Populates `*why` with the violated
/// condition when returning false (may be null).
bool VerifyCommunity(const BipartiteGraph& g, const Subgraph& sub, VertexId q,
                     uint32_t alpha, uint32_t beta, std::string* why = nullptr);

}  // namespace abcs

#endif  // ABCS_CORE_SUBGRAPH_H_
