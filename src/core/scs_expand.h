#ifndef ABCS_CORE_SCS_EXPAND_H_
#define ABCS_CORE_SCS_EXPAND_H_

#include <vector>

#include "core/scs_common.h"
#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief SCS-Expand (paper Algorithm 5), incremental: grows an empty graph
/// by maximum-weight rank batches of `lg`, maintaining connected components
/// with union–find, until the component of `q` provably may contain R
/// (Lemma 7/8 pruning) and has grown by a factor ε since the last check —
/// then validates.
///
/// Each ε-round's validation is *seeded from the expansion state* instead
/// of a fresh peel: the kernel already holds the degrees of every added
/// edge, so validation just cascades the below-threshold vertices of q's
/// component, journaling every kill. An infeasible round undoes the journal
/// and expansion continues from the exact previous state; a feasible round
/// keeps peeling minimum-weight batches down from the now-stable state
/// until q violates, which is R (Theorem 1) — no per-round LocalGraph
/// construction, degree rebuild or edge re-sort.
///
/// Faster than SCS-Peel when size(R) ≪ size(C_{α,β}(q)) (small α, β).
void ScsExpandOnLocal(const LocalGraph& lg, VertexId q, uint32_t alpha,
                      uint32_t beta, const ScsOptions& options, ScsResult* out,
                      ScsStats* stats, QueryScratch& scratch,
                      ScsExpandAux& aux);

ScsResult ScsExpand(const BipartiteGraph& g, const Subgraph& community,
                    VertexId q, uint32_t alpha, uint32_t beta,
                    const ScsOptions& options = {}, ScsStats* stats = nullptr,
                    QueryScratch* scratch = nullptr,
                    ScsWorkspace* workspace = nullptr);

/// \brief The expansion engine shared by SCS-Expand and SCS-Baseline:
/// expands over an arbitrary edge pool (the community for Expand, the whole
/// graph for Baseline).
ScsResult ExpandFromEdges(const BipartiteGraph& g,
                          const std::vector<EdgeId>& pool, VertexId q,
                          uint32_t alpha, uint32_t beta,
                          const ScsOptions& options, ScsStats* stats = nullptr,
                          QueryScratch* scratch = nullptr,
                          ScsWorkspace* workspace = nullptr);

}  // namespace abcs

#endif  // ABCS_CORE_SCS_EXPAND_H_
