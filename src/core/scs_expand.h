#ifndef ABCS_CORE_SCS_EXPAND_H_
#define ABCS_CORE_SCS_EXPAND_H_

#include <vector>

#include "core/scs_common.h"
#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief SCS-Expand (paper Algorithm 5): grows an empty graph by
/// maximum-weight edge batches from `community` = C_{α,β}(q), maintaining
/// connected components with union–find, until the component of `q`
/// provably may contain R (Lemma 7/8 pruning) and has grown by a factor
/// ε since the last check — then validates by peeling.
///
/// Faster than SCS-Peel when size(R) ≪ size(C_{α,β}(q)) (small α, β).
ScsResult ScsExpand(const BipartiteGraph& g, const Subgraph& community,
                    VertexId q, uint32_t alpha, uint32_t beta,
                    const ScsOptions& options = {}, ScsStats* stats = nullptr);

/// \brief The expansion engine shared by SCS-Expand and SCS-Baseline:
/// expands over an arbitrary edge pool (the community for Expand, the whole
/// graph for Baseline).
ScsResult ExpandFromEdges(const BipartiteGraph& g,
                          const std::vector<EdgeId>& pool, VertexId q,
                          uint32_t alpha, uint32_t beta,
                          const ScsOptions& options, ScsStats* stats);

}  // namespace abcs

#endif  // ABCS_CORE_SCS_EXPAND_H_
