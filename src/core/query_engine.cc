#include "core/query_engine.h"

#include <algorithm>
#include <thread>

#include "common/timer.h"
#include "core/scs_auto.h"
#include "core/work_steal.h"

namespace {

// Nearest-rank percentile over the (sorted in-place) latency vector.
void FillPercentiles(std::vector<double>& latencies, double* p50, double* p99) {
  if (latencies.empty()) return;
  std::sort(latencies.begin(), latencies.end());
  const std::size_t k = latencies.size();
  *p50 = latencies[(k * 50 + 99) / 100 - 1];
  *p99 = latencies[(k * 99 + 99) / 100 - 1];
}

// Runs `body(t, i)` for every i in [0, n), exactly once each, across
// `num_threads` workers. Work-stealing redistributes the indices queued
// behind a slow query; round-robin keeps the legacy static stripe. Which
// worker executes an index never affects the result — `body` writes only
// slot i — so both modes produce bit-identical batches.
template <typename Body>
void DispatchLoop(std::size_t n, unsigned num_threads,
                  abcs::Dispatch dispatch, Body&& body) {
  if (num_threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(0u, i);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  // Declared before the thread spawns so it outlives them through the
  // join below. The packed ranges hold 32-bit bounds; a batch large
  // enough to overflow them (> 4G requests) cannot be materialised anyway.
  abcs::WorkStealingRanges ranges(n, num_threads);
  if (dispatch == abcs::Dispatch::kRoundRobin) {
    for (unsigned t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t i = t; i < n; i += num_threads) body(t, i);
      });
    }
  } else {
    for (unsigned t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t i = ranges.Next(t);
             i != abcs::WorkStealingRanges::kDone; i = ranges.Next(t)) {
          body(t, i);
        }
      });
    }
  }
  for (std::thread& th : threads) th.join();
}

}  // namespace

namespace abcs {

const char* DispatchName(Dispatch dispatch) {
  switch (dispatch) {
    case Dispatch::kWorkStealing:
      return "work-steal";
    case Dispatch::kRoundRobin:
      return "round-robin";
  }
  return "unknown";
}

const char* QueryMethodName(QueryMethod method) {
  switch (method) {
    case QueryMethod::kOnline:
      return "online";
    case QueryMethod::kBicore:
      return "bicore";
    case QueryMethod::kDelta:
      return "delta";
  }
  return "unknown";
}

void QueryEngine::Query(const QueryRequest& request, QueryScratch& scratch,
                        Subgraph* out, QueryStats* stats) const {
  switch (method_) {
    case QueryMethod::kOnline:
      QueryCommunityOnline(*graph_, request.q, request.alpha, request.beta,
                           scratch, out, stats);
      break;
    case QueryMethod::kBicore:
      bicore_->QueryCommunity(request.q, request.alpha, request.beta, scratch,
                              out, stats);
      break;
    case QueryMethod::kDelta:
      delta_->QueryCommunity(request.q, request.alpha, request.beta, scratch,
                             out, stats);
      break;
  }
}

BatchResult QueryEngine::RunBatch(std::span<const QueryRequest> requests,
                                  const BatchOptions& options) const {
  BatchResult result;
  result.outcomes.resize(requests.size());
  if (options.keep_communities) result.communities.resize(requests.size());

  unsigned num_threads =
      options.num_threads ? options.num_threads
                          : std::max(1u, std::thread::hardware_concurrency());
  result.num_threads_used = num_threads;
  if (requests.empty()) return result;
  num_threads = static_cast<unsigned>(
      std::min<std::size_t>(num_threads, requests.size()));
  result.num_threads_used = num_threads;

  // Each executed index writes only its own outcome slot, so no
  // synchronisation is needed and `outcomes[i]` always matches
  // `requests[i]` — results are bit-identical for every thread count and
  // dispatch mode. Worker-local scratch lives in `states[t]`; a slot is
  // only ever touched by thread t.
  struct WorkerState {
    QueryScratch scratch;
    Subgraph out;
    CancelToken token;  ///< deadline budget; disarmed when deadline_ms = 0
  };
  std::vector<WorkerState> states(num_threads);
  auto body = [&](unsigned t, std::size_t i) {
    WorkerState& ws = states[t];
    const bool budgeted = options.deadline_ms > 0;
    if (budgeted) {
      ws.scratch.set_cancel_token(&ws.token);
      ws.token.Arm(options.deadline_ms);
    }
    QueryStats stats;
    Timer timer;
    Query(requests[i], ws.scratch, &ws.out, &stats);
    QueryOutcome& outcome = result.outcomes[i];
    outcome.seconds = timer.Seconds();
    outcome.num_edges = static_cast<uint32_t>(ws.out.edges.size());
    outcome.touched_arcs = stats.touched_arcs;
    if (budgeted) {
      outcome.deadline_exceeded = ws.token.Stopped();
      ws.token.Finish();
      ws.scratch.set_cancel_token(nullptr);
    }
    if (options.keep_communities) result.communities[i] = ws.out;
  };

  Timer wall;
  DispatchLoop(requests.size(), num_threads, options.dispatch, body);
  result.wall_seconds = wall.Seconds();

  BatchStats& stats = result.stats;
  stats.num_queries = requests.size();
  std::vector<double> latencies;
  latencies.reserve(result.outcomes.size());
  for (const QueryOutcome& o : result.outcomes) {
    if (o.num_edges > 0) ++stats.num_nonempty;
    stats.total_edges += o.num_edges;
    stats.touched_arcs += o.touched_arcs;
    stats.total_seconds += o.seconds;
    latencies.push_back(o.seconds);
  }
  FillPercentiles(latencies, &stats.p50_seconds, &stats.p99_seconds);
  return result;
}

ScsBatchResult QueryEngine::RunScsBatch(std::span<const QueryRequest> requests,
                                        const ScsBatchOptions& options) const {
  ScsBatchResult result;
  result.outcomes.resize(requests.size());
  if (options.keep_communities) result.communities.resize(requests.size());

  unsigned num_threads =
      options.num_threads ? options.num_threads
                          : std::max(1u, std::thread::hardware_concurrency());
  if (requests.empty()) {
    result.num_threads_used = num_threads;
    return result;
  }
  num_threads = static_cast<unsigned>(
      std::min<std::size_t>(num_threads, requests.size()));
  result.num_threads_used = num_threads;

  // Same slot ownership as RunBatch; additionally each worker pools one
  // ScsWorkspace (LocalGraph + expand state) and one ScsResult, so after
  // warm-up a worker's queries run allocation-free end to end: retrieval
  // scratch, rank sort buffers, peel state and the R edge vector all
  // reuse capacity.
  struct WorkerState {
    QueryScratch scratch;
    ScsWorkspace workspace;
    Subgraph community;
    ScsResult scs;
    CancelToken token;  ///< deadline budget; disarmed when deadline_ms = 0
  };
  std::vector<WorkerState> states(num_threads);
  auto body = [&](unsigned t, std::size_t i) {
    WorkerState& ws = states[t];
    const QueryRequest& r = requests[i];
    const bool budgeted = options.deadline_ms > 0;
    if (budgeted) {
      ws.scratch.set_cancel_token(&ws.token);
      ws.token.Arm(options.deadline_ms);
    }
    Timer timer;
    Query(r, ws.scratch, &ws.community, nullptr);
    const double retrieve_s = timer.Seconds();
    ScsStats stats;
    ScsQueryInto(*graph_, ws.community, r.q, r.alpha, r.beta, options.algo,
                 options.scs, &ws.scs, &stats, &ws.scratch, &ws.workspace);
    ScsOutcome& o = result.outcomes[i];
    o.seconds = timer.Seconds();
    o.retrieve_seconds = retrieve_s;
    if (budgeted) {
      o.deadline_exceeded = ws.token.Stopped();
      ws.token.Finish();
      ws.scratch.set_cancel_token(nullptr);
      if (o.deadline_exceeded) {
        // "Stopped" is authoritative even when a kernel had already
        // committed a result (the deadline can fire between the final
        // extraction and the outer loop's guard): a budget-blown query
        // always answers empty, so callers never see a possibly
        // suboptimal R from an abandoned probe sequence.
        ws.scs.found = false;
        ws.scs.community.edges.clear();
        ws.scs.significance = 0;
      }
    }
    o.found = ws.scs.found;
    o.community_edges = static_cast<uint32_t>(ws.community.edges.size());
    o.result_edges = static_cast<uint32_t>(ws.scs.community.edges.size());
    o.significance = ws.scs.significance;
    o.algo_used = stats.algo_used;
    o.validations = stats.validations;
    o.incremental_probes = stats.incremental_probes;
    o.edges_processed = stats.edges_processed;
    if (options.keep_communities) result.communities[i] = ws.scs.community;
  };

  Timer wall;
  DispatchLoop(requests.size(), num_threads, options.dispatch, body);
  result.wall_seconds = wall.Seconds();

  ScsBatchStats& stats = result.stats;
  stats.num_queries = requests.size();
  std::vector<double> latencies;
  latencies.reserve(result.outcomes.size());
  for (const ScsOutcome& o : result.outcomes) {
    if (o.found) ++stats.num_found;
    stats.total_community_edges += o.community_edges;
    stats.total_result_edges += o.result_edges;
    stats.validations += o.validations;
    stats.incremental_probes += o.incremental_probes;
    stats.edges_processed += o.edges_processed;
    // Empty retrievals never enter a kernel — keep them out of the
    // planner-decision histogram.
    if (o.community_edges > 0) {
      ++stats.algo_counts[static_cast<std::size_t>(o.algo_used)];
    }
    stats.total_seconds += o.seconds;
    stats.retrieve_seconds += o.retrieve_seconds;
    latencies.push_back(o.seconds);
  }
  FillPercentiles(latencies, &stats.p50_seconds, &stats.p99_seconds);
  return result;
}

}  // namespace abcs
