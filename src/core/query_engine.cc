#include "core/query_engine.h"

#include <algorithm>
#include <thread>

#include "common/timer.h"

namespace abcs {

const char* QueryMethodName(QueryMethod method) {
  switch (method) {
    case QueryMethod::kOnline:
      return "online";
    case QueryMethod::kBicore:
      return "bicore";
    case QueryMethod::kDelta:
      return "delta";
  }
  return "unknown";
}

void QueryEngine::Query(const QueryRequest& request, QueryScratch& scratch,
                        Subgraph* out, QueryStats* stats) const {
  switch (method_) {
    case QueryMethod::kOnline:
      QueryCommunityOnline(*graph_, request.q, request.alpha, request.beta,
                           scratch, out, stats);
      break;
    case QueryMethod::kBicore:
      bicore_->QueryCommunity(request.q, request.alpha, request.beta, scratch,
                              out, stats);
      break;
    case QueryMethod::kDelta:
      delta_->QueryCommunity(request.q, request.alpha, request.beta, scratch,
                             out, stats);
      break;
  }
}

BatchResult QueryEngine::RunBatch(std::span<const QueryRequest> requests,
                                  const BatchOptions& options) const {
  BatchResult result;
  result.outcomes.resize(requests.size());
  if (options.keep_communities) result.communities.resize(requests.size());

  unsigned num_threads =
      options.num_threads ? options.num_threads
                          : std::max(1u, std::thread::hardware_concurrency());
  result.num_threads_used = num_threads;
  if (requests.empty()) return result;
  num_threads = static_cast<unsigned>(
      std::min<std::size_t>(num_threads, requests.size()));
  result.num_threads_used = num_threads;

  // Round-robin work distribution: worker t owns requests t, t+T, t+2T, …
  // Each worker writes only its own outcome slots, so no synchronisation
  // is needed and `outcomes[i]` always matches `requests[i]` — results are
  // bit-identical for every thread count.
  auto worker = [&](unsigned t) {
    QueryScratch scratch;
    Subgraph out;
    for (std::size_t i = t; i < requests.size(); i += num_threads) {
      QueryStats stats;
      Timer timer;
      Query(requests[i], scratch, &out, &stats);
      QueryOutcome& outcome = result.outcomes[i];
      outcome.seconds = timer.Seconds();
      outcome.num_edges = static_cast<uint32_t>(out.edges.size());
      outcome.touched_arcs = stats.touched_arcs;
      if (options.keep_communities) result.communities[i] = out;
    }
  };

  Timer wall;
  if (num_threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
    for (std::thread& th : threads) th.join();
  }
  result.wall_seconds = wall.Seconds();

  BatchStats& stats = result.stats;
  stats.num_queries = requests.size();
  std::vector<double> latencies;
  latencies.reserve(result.outcomes.size());
  for (const QueryOutcome& o : result.outcomes) {
    if (o.num_edges > 0) ++stats.num_nonempty;
    stats.total_edges += o.num_edges;
    stats.touched_arcs += o.touched_arcs;
    stats.total_seconds += o.seconds;
    latencies.push_back(o.seconds);
  }
  std::sort(latencies.begin(), latencies.end());
  // Nearest-rank percentiles: index ceil(q·k) − 1.
  const std::size_t k = latencies.size();
  stats.p50_seconds = latencies[(k * 50 + 99) / 100 - 1];
  stats.p99_seconds = latencies[(k * 99 + 99) / 100 - 1];
  return result;
}

}  // namespace abcs
