#ifndef ABCS_CORE_SCS_PEEL_H_
#define ABCS_CORE_SCS_PEEL_H_

#include "core/scs_common.h"
#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief SCS-Peel (paper Algorithm 4): extracts the significant
/// (α,β)-community of `q` from its (α,β)-community.
///
/// `community` must be C_{α,β}(q) as returned by one of the index queries
/// (or any edge superset of R that satisfies the degree constraints —
/// extra edges are peeled away). Builds the weight-rank LocalGraph (the one
/// sort of the query) and peels: O(sort(C) + size(C)). `scratch` backs the
/// peel's working state and `workspace` pools the LocalGraph buffers; both
/// are reused across calls (e.g. over a significance-profile grid or a
/// query batch).
ScsResult ScsPeel(const BipartiteGraph& g, const Subgraph& community,
                  VertexId q, uint32_t alpha, uint32_t beta,
                  ScsStats* stats = nullptr, QueryScratch* scratch = nullptr,
                  ScsWorkspace* workspace = nullptr);

}  // namespace abcs

#endif  // ABCS_CORE_SCS_PEEL_H_
