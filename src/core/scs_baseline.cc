#include "core/scs_baseline.h"

#include <numeric>

#include "core/scs_expand.h"

namespace abcs {

ScsResult ScsBaseline(const BipartiteGraph& g, VertexId q, uint32_t alpha,
                      uint32_t beta, const ScsOptions& options,
                      ScsStats* stats) {
  std::vector<EdgeId> pool(g.NumEdges());
  std::iota(pool.begin(), pool.end(), 0u);
  return ExpandFromEdges(g, pool, q, alpha, beta, options, stats);
}

}  // namespace abcs
