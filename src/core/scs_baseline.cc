#include "core/scs_baseline.h"

#include <numeric>

#include "core/scs_expand.h"

namespace abcs {

ScsResult ScsBaseline(const BipartiteGraph& g, VertexId q, uint32_t alpha,
                      uint32_t beta, const ScsOptions& options,
                      ScsStats* stats, QueryScratch* scratch,
                      ScsWorkspace* workspace) {
  ScsWorkspace local_ws;
  ScsWorkspace& ws = workspace ? *workspace : local_ws;
  ws.pool.resize(g.NumEdges());
  std::iota(ws.pool.begin(), ws.pool.end(), 0u);
  return ExpandFromEdges(g, ws.pool, q, alpha, beta, options, stats, scratch,
                         &ws);
}

}  // namespace abcs
