#include "core/delta_index.h"

#include <algorithm>

namespace abcs {

DeltaIndex DeltaIndex::Build(const BipartiteGraph& g,
                             const BicoreDecomposition* decomp,
                             unsigned num_threads) {
  BicoreDecomposition local;
  if (decomp == nullptr) {
    local = ComputeBicoreDecompositionParallel(g, num_threads);
    decomp = &local;
  }

  DeltaIndex index;
  index.graph_ = &g;
  index.delta_ = decomp->delta;
  const uint32_t n = g.NumVertices();

  // Level count per vertex: the largest τ ≤ δ with v ∈ (τ,τ)-core; levels
  // are contiguous because (τ,τ)-cores nest.
  std::vector<uint32_t> num_levels(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    uint32_t levels = 0;
    while (levels < decomp->delta && decomp->sa(levels + 1, v) >= levels + 1) {
      ++levels;
    }
    num_levels[v] = levels;
  }

  auto by_offset_desc = [](const Entry& x, const Entry& y) {
    if (x.offset != y.offset) return x.offset > y.offset;
    return x.to < y.to;
  };

  for (const bool alpha_side : {true, false}) {
    Half& half = alpha_side ? index.alpha_half_ : index.beta_half_;
    std::vector<uint32_t>& table_base = half.table_base.Mutable();
    std::vector<uint32_t>& level_start = half.level_start.Mutable();
    std::vector<uint32_t>& self_offset = half.self_offset.Mutable();
    std::vector<Entry>& entries = half.entries.Mutable();
    table_base.reserve(n + 1);
    table_base.push_back(0);
    for (VertexId u = 0; u < n; ++u) {
      for (uint32_t tau = 1; tau <= num_levels[u]; ++tau) {
        const OffsetArena& off = alpha_side ? decomp->alpha : decomp->beta;
        level_start.push_back(static_cast<uint32_t>(entries.size()));
        self_offset.push_back(off.At(tau, u));
        const std::size_t begin = entries.size();
        for (const Arc& arc : g.Neighbors(u)) {
          // α half keeps neighbours with s_a ≥ τ; β half needs s_b > τ
          // (entries at exactly τ can never satisfy a β-side query).
          const uint32_t o = off.At(tau, arc.to);
          if (alpha_side ? (o >= tau) : (o > tau)) {
            entries.push_back(Entry{arc.to, arc.eid, o});
          }
        }
        std::sort(entries.begin() + begin, entries.end(), by_offset_desc);
      }
      level_start.push_back(static_cast<uint32_t>(entries.size()));
      table_base.push_back(static_cast<uint32_t>(level_start.size()));
    }
  }
  return index;
}

void DeltaIndex::QueryImpl(VertexId q, uint32_t level, uint32_t need,
                           const Half& half, QueryScratch& scratch,
                           Subgraph* out, QueryStats* stats) const {
  const BipartiteGraph& g = *graph_;
  if (half.NumLevels(q) < level) return;  // q ∉ (τ,τ)-core
  if (half.self_offset[half.table_base[q] - q + level - 1] < need) {
    return;  // q ∉ (α,β)-core
  }

  scratch.BeginQuery(g.NumVertices());
  uint64_t touched = 0;
  CollectCommunityBfs(
      scratch, g, q, out->edges, [&](VertexId u, auto&& visit) {
        const uint32_t table = half.table_base[u] + level - 1;
        const uint32_t begin = half.level_start[table];
        const uint32_t end = half.level_start[table + 1];
        for (uint32_t i = begin; i < end; ++i) {
          const Entry& entry = half.entries[i];
          scratch.CancelTick();
          ++touched;
          if (entry.offset < need) break;  // sorted: early terminate
          visit(entry.to, entry.eid);
        }
      });
  if (scratch.CancelStopped()) out->edges.clear();  // drop partial walk
  if (stats) stats->touched_arcs += touched;
}

void DeltaIndex::QueryCommunity(VertexId q, uint32_t alpha, uint32_t beta,
                                QueryScratch& scratch, Subgraph* out,
                                QueryStats* stats) const {
  out->edges.clear();
  if (graph_ == nullptr || q >= graph_->NumVertices() || alpha == 0 ||
      beta == 0) {
    return;
  }
  if (std::min(alpha, beta) > delta_) return;  // Lemma 4
  if (alpha <= beta) {
    QueryImpl(q, /*level=*/alpha, /*need=*/beta, alpha_half_, scratch, out,
              stats);
  } else {
    QueryImpl(q, /*level=*/beta, /*need=*/alpha, beta_half_, scratch, out,
              stats);
  }
}

Subgraph DeltaIndex::QueryCommunity(VertexId q, uint32_t alpha, uint32_t beta,
                                    QueryStats* stats) const {
  QueryScratch scratch;
  Subgraph result;
  QueryCommunity(q, alpha, beta, scratch, &result, stats);
  return result;
}

std::size_t DeltaIndex::MemoryBytes() const {
  return alpha_half_.Bytes() + beta_half_.Bytes();
}

}  // namespace abcs
