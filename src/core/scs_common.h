#ifndef ABCS_CORE_SCS_COMMON_H_
#define ABCS_CORE_SCS_COMMON_H_

#include <cstdint>
#include <vector>

#include "core/query_scratch.h"
#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// Options shared by the SCS query algorithms.
struct ScsOptions {
  /// Expansion parameter ε > 1 controlling how often SCS-Expand validates
  /// the growing component (paper §IV-B argues ε = 2 minimises total
  /// validation cost ε/(ε−1)·size(R)).
  double epsilon = 2.0;
};

/// Work counters for the SCS algorithms (ablation benches).
struct ScsStats {
  uint32_t validations = 0;   ///< full peels run on candidate components
  uint64_t edges_processed = 0;  ///< edges peeled or expanded
};

/// Result of a significant (α,β)-community search.
struct ScsResult {
  Subgraph community;       ///< R; empty when no community exists
  Weight significance = 0;  ///< f(R), the maximised minimum edge weight
  bool found = false;
};

/// \brief A compact, mutable view of a subgraph used by the SCS kernels:
/// vertices renumbered densely, CSR adjacency over the subgraph's edges.
///
/// Built in O(size(sub)) time (plus an O(n) id map); the SCS algorithms
/// never touch the full graph again after construction, which is what makes
/// the two-step paradigm pay off.
class LocalGraph {
 public:
  /// An edge of the local graph; `pos` (its index in `edges()`) doubles as
  /// the local edge id.
  struct LocalEdge {
    uint32_t u;  ///< local id of the upper endpoint
    uint32_t v;  ///< local id of the lower endpoint
    Weight w;
    EdgeId global;  ///< EdgeId in the original graph
  };
  struct LocalArc {
    uint32_t to;   ///< local vertex id
    uint32_t pos;  ///< local edge id
  };

  LocalGraph(const BipartiteGraph& g, const std::vector<EdgeId>& edges);

  uint32_t NumVertices() const {
    return static_cast<uint32_t>(global_of_.size());
  }
  uint32_t NumEdges() const { return static_cast<uint32_t>(edges_.size()); }
  const std::vector<LocalEdge>& edges() const { return edges_; }

  /// Local id of a global vertex, or kInvalidVertex if absent.
  uint32_t LocalId(VertexId global) const;
  VertexId GlobalId(uint32_t local) const { return global_of_[local]; }
  bool IsUpperLocal(uint32_t local) const { return is_upper_[local] != 0; }

  std::span<const LocalArc> Neighbors(uint32_t local) const {
    return {arcs_.data() + offsets_[local],
            offsets_[local + 1] - offsets_[local]};
  }

 private:
  std::vector<VertexId> global_of_;
  std::vector<uint8_t> is_upper_;
  std::vector<LocalEdge> edges_;
  std::vector<uint32_t> offsets_;
  std::vector<LocalArc> arcs_;
  // Sparse global→local map (sorted pairs, binary searched).
  std::vector<std::pair<VertexId, uint32_t>> id_map_;
};

/// \brief The peeling kernel (Algorithm 4 lines 3–23, generalised): finds
/// the significant (α,β)-community of `q` *within* the edge set of `lg`.
///
/// First stabilises the input (removes vertices below their degree
/// threshold), then repeatedly deletes minimum-weight edge batches with
/// cascading degree repair until `q` violates its threshold; the state at
/// the start of the violating batch, restricted to q's connected component,
/// is R. Returns found = false when `q` is not in any valid subgraph of
/// `lg`. Used directly by SCS-Peel and as the validation step of
/// SCS-Expand / SCS-Baseline.
///
/// The per-candidate `deg`/`alive`/`order`/cascade/extraction state lives
/// in `scratch` when one is supplied (capacity reused across candidates —
/// SCS-Expand passes one scratch through all of its validations);
/// otherwise a local arena is used.
ScsResult PeelToSignificant(const LocalGraph& lg, VertexId q, uint32_t alpha,
                            uint32_t beta, ScsStats* stats = nullptr,
                            QueryScratch* scratch = nullptr);

/// \brief Reference oracle: tries every distinct weight threshold from the
/// highest down, keeping edges ≥ w and peeling to (α,β); the first
/// threshold where `q` survives yields R (q's connected component of the
/// stable subgraph). O(#weights · m) — test/verification use only.
ScsResult ScsBruteForce(const BipartiteGraph& g, VertexId q, uint32_t alpha,
                        uint32_t beta);

}  // namespace abcs

#endif  // ABCS_CORE_SCS_COMMON_H_
