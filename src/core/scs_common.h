#ifndef ABCS_CORE_SCS_COMMON_H_
#define ABCS_CORE_SCS_COMMON_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/dsu.h"
#include "core/query_scratch.h"
#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// Which SCS kernel answers a query. `kAuto` lets the planner pick from
/// cheap statistics of the weight-rank LocalGraph (see PlanScsAlgo).
enum class ScsAlgo { kAuto, kPeel, kExpand, kBinary };

/// Returns "auto" / "peel" / "expand" / "binary".
const char* ScsAlgoName(ScsAlgo algo);

/// Options shared by the SCS query algorithms.
struct ScsOptions {
  /// Expansion parameter ε > 1 controlling how often SCS-Expand validates
  /// the growing component (paper §IV-B argues ε = 2 minimises total
  /// validation cost ε/(ε−1)·size(R)).
  double epsilon = 2.0;
};

/// Work counters for the SCS algorithms, with one semantics across every
/// kernel so the ablation benches compare like-for-like:
///
///  - `validations` counts candidate stabilisations initialised *from
///    scratch* (degrees rebuilt over the whole working edge set): SCS-Peel's
///    and SCS-Binary's opening peel, and every probe of the fresh-peel
///    binary baseline.
///  - `incremental_probes` counts feasibility checks *seeded from a
///    previous stable state* and journaled for undo: SCS-Binary's
///    binary-search probes and SCS-Expand's per-round validations.
///  - `edges_processed` counts edge state transitions — an edge inserted
///    into the growing graph (Expand), killed by peeling, or restored by a
///    journal undo each count once.
struct ScsStats {
  uint32_t validations = 0;  ///< from-scratch stabilisation peels
  /// journaled probes seeded from a previous stable state
  uint32_t incremental_probes = 0;
  /// edge state transitions (insert / kill / restore)
  uint64_t edges_processed = 0;
  ScsAlgo algo_used = ScsAlgo::kPeel;  ///< kernel that produced the result
};

/// Result of a significant (α,β)-community search.
struct ScsResult {
  Subgraph community;       ///< R; empty when no community exists
  Weight significance = 0;  ///< f(R), the maximised minimum edge weight
  bool found = false;
};

/// \brief A compact, mutable *weight-rank* view of a subgraph shared by all
/// SCS kernels: vertices renumbered densely, edges sorted by significance
/// exactly once per query, CSR adjacency over the rank order.
///
/// The rank order is the substrate of the whole SCS layer. Edges are stored
/// by non-increasing weight (ties broken by pool position, so the order is
/// deterministic); the local edge id of an edge *is* its rank. Consequences
/// the kernels rely on:
///
///  - "the subgraph with w(e) ≥ w" is a contiguous *prefix* of ranks, and
///    the distinct-weight table maps threshold index i to its prefix end;
///  - each vertex's arc list is sorted by ascending rank, so its strongest
///    incident edges are a prefix of `Neighbors()` (the ScsAuto planner
///    reads the rank of q's threshold-th arc as a size(R) proxy);
///  - SCS-Peel consumes ranks back-to-front, SCS-Expand front-to-back and
///    SCS-Binary probes prefix lengths — none of them sorts or copies the
///    edge set again.
///
/// Built in O(size(sub) log size(sub)) once; `BuildFrom` reuses every
/// internal buffer, so a pooled instance (see ScsWorkspace) performs zero
/// steady-state allocations across a batch of queries.
class LocalGraph {
 public:
  /// An edge of the local graph; `pos` (its index in `edges()`) doubles as
  /// the local edge id *and* its weight rank (0 = most significant).
  struct LocalEdge {
    uint32_t u;  ///< local id of the upper endpoint
    uint32_t v;  ///< local id of the lower endpoint
    Weight w;
    EdgeId global;  ///< EdgeId in the original graph
  };
  struct LocalArc {
    uint32_t to;   ///< local vertex id
    uint32_t pos;  ///< local edge id == weight rank
  };

  LocalGraph() = default;
  LocalGraph(const BipartiteGraph& g, const std::vector<EdgeId>& edges);

  /// (Re)builds the view over `edges`, reusing all internal capacity.
  void BuildFrom(const BipartiteGraph& g, std::span<const EdgeId> edges);

  uint32_t NumVertices() const {
    return static_cast<uint32_t>(global_of_.size());
  }
  uint32_t NumEdges() const { return static_cast<uint32_t>(edges_.size()); }
  /// Edges in rank order: non-increasing weight, ties by pool position.
  const std::vector<LocalEdge>& edges() const { return edges_; }

  /// Local id of a global vertex, or kInvalidVertex if absent.
  uint32_t LocalId(VertexId global) const;
  VertexId GlobalId(uint32_t local) const { return global_of_[local]; }
  bool IsUpperLocal(uint32_t local) const { return is_upper_[local] != 0; }

  /// Arcs of `local`, sorted by ascending edge rank (strongest first).
  std::span<const LocalArc> Neighbors(uint32_t local) const {
    return {arcs_.data() + offsets_[local],
            offsets_[local + 1] - offsets_[local]};
  }

  // -- Distinct-weight prefix table (descending weights) --------------------

  uint32_t NumDistinctWeights() const {
    return static_cast<uint32_t>(prefix_end_.size());
  }
  /// i-th distinct weight, strictly decreasing in i.
  Weight DistinctWeight(uint32_t i) const { return distinct_w_[i]; }
  /// Ranks [PrefixBegin(i), PrefixEnd(i)) carry weight DistinctWeight(i);
  /// ranks [0, PrefixEnd(i)) are exactly {e : w(e) ≥ DistinctWeight(i)}.
  uint32_t PrefixBegin(uint32_t i) const {
    return i == 0 ? 0 : prefix_end_[i - 1];
  }
  uint32_t PrefixEnd(uint32_t i) const { return prefix_end_[i]; }
  /// Index of the distinct weight whose batch contains `rank` (O(log W)).
  uint32_t DistinctIndexOfRank(uint32_t rank) const;

 private:
  std::vector<VertexId> global_of_;
  std::vector<uint8_t> is_upper_;
  std::vector<LocalEdge> edges_;  // rank order
  std::vector<uint32_t> offsets_;
  std::vector<LocalArc> arcs_;
  // Epoch-stamped dense global→local map (PR 2's O(1)-reset idiom): vertex
  // v is present iff map_stamp_[v] == map_epoch_. Local ids are assigned in
  // first-encounter order over the pool — deterministic for a given pool.
  std::vector<uint32_t> map_stamp_;
  std::vector<uint32_t> map_local_;
  uint32_t map_epoch_ = 0;
  std::vector<Weight> distinct_w_;
  std::vector<uint32_t> prefix_end_;
  // Build-time pools (kept for capacity reuse).
  std::vector<LocalEdge> build_edges_;
  std::vector<std::pair<uint64_t, uint32_t>> build_rank_;
  std::vector<uint32_t> build_cursor_;
  // Pooled open-address table for the duplicate-heavy counting-sort path:
  // slot i holds a weight key iff ht_stamp_[i] == ht_epoch_.
  std::vector<uint64_t> ht_key_;
  std::vector<uint32_t> ht_val_;
  std::vector<uint32_t> ht_stamp_;
  uint32_t ht_epoch_ = 0;
  std::vector<uint64_t> bucket_key_;
  std::vector<uint32_t> bucket_of_;    // edge pool index → discovered bucket
  std::vector<uint32_t> bucket_rank_;  // discovered bucket → weight rank
  std::vector<uint32_t> bucket_cursor_;
};

/// Per-component aggregates SCS-Expand keeps at DSU roots so its Lemma 7/8
/// pruning checks are O(1) per batch.
struct ScsComponentAgg {
  uint64_t edges = 0;
  uint32_t num_upper = 0;
  uint32_t num_lower = 0;
  uint32_t upper_ok = 0;  ///< upper vertices with deg ≥ α
  uint32_t lower_ok = 0;  ///< lower vertices with deg ≥ β
};

/// SCS-Expand's reusable component-tracking state.
struct ScsExpandAux {
  Dsu dsu{0};
  std::vector<ScsComponentAgg> agg;
};

/// \brief Pooled per-thread working set for the SCS layer: one LocalGraph
/// whose buffers are reused across queries (and profile grid cells), plus
/// the expand kernel's component state and a whole-graph edge pool for
/// baseline-style callers. Pair it with a `QueryScratch`; after warm-up the
/// steady state of a batch performs zero heap allocations.
///
/// Not thread-safe: one instance per thread (see QueryEngine::RunScsBatch).
struct ScsWorkspace {
  LocalGraph lg;
  ScsExpandAux expand;
  std::vector<EdgeId> pool;
};

/// \brief The peeling kernel (Algorithm 4 lines 3–23, generalised): finds
/// the significant (α,β)-community of `q` *within* the edge set of `lg`.
///
/// First stabilises the input (removes vertices below their degree
/// threshold), then deletes rank batches back-to-front (minimum weight
/// first) with cascading degree repair until `q` violates its threshold;
/// the state at the start of the violating batch, restricted to q's
/// connected component, is R (Theorem 1). Returns found = false when `q`
/// is not in any valid subgraph of `lg`. The edge order comes from the
/// weight-rank LocalGraph — nothing is re-sorted here.
///
/// The per-candidate working state lives in `scratch` when one is supplied
/// (capacity reused across candidates); otherwise a local arena is used.
/// `PeelToSignificantInto` reuses `out`'s capacity (zero steady-state
/// allocations); the by-value overload is a convenience wrapper.
void PeelToSignificantInto(const LocalGraph& lg, VertexId q, uint32_t alpha,
                           uint32_t beta, ScsResult* out,
                           ScsStats* stats = nullptr,
                           QueryScratch* scratch = nullptr);
ScsResult PeelToSignificant(const LocalGraph& lg, VertexId q, uint32_t alpha,
                            uint32_t beta, ScsStats* stats = nullptr,
                            QueryScratch* scratch = nullptr);

/// Shared extraction step: DFS over `alive` edges from local vertex `lq`,
/// collecting q's connected component into `out->community` and its minimum
/// weight into `out->significance` (seeded with `fmin_seed`, the feasibility
/// threshold — by maximality the component always contains an edge of that
/// weight). Sets `out->found`.
void ExtractAliveComponent(const LocalGraph& lg, uint32_t lq,
                           const std::vector<uint8_t>& alive, Weight fmin_seed,
                           QueryScratch& scratch, ScsResult* out);

/// \brief Reference oracle: tries every distinct weight threshold from the
/// highest down, keeping edges ≥ w and peeling to (α,β); the first
/// threshold where `q` survives yields R (q's connected component of the
/// stable subgraph). O(#weights · m) — test/verification use only.
ScsResult ScsBruteForce(const BipartiteGraph& g, VertexId q, uint32_t alpha,
                        uint32_t beta);

}  // namespace abcs

#endif  // ABCS_CORE_SCS_COMMON_H_
