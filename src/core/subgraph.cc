#include "core/subgraph.h"

#include <algorithm>
#include <unordered_map>

#include "core/query_scratch.h"

namespace abcs {

SubgraphStats ComputeStats(const BipartiteGraph& g, const Subgraph& sub,
                           QueryScratch* scratch) {
  SubgraphStats stats;
  if (sub.Empty()) return stats;
  stats.min_weight = g.GetWeight(sub.edges.front());
  stats.max_weight = stats.min_weight;
  double sum = 0.0;

  // One traversal: weight statistics and endpoint counting together. With
  // a scratch, endpoints de-duplicate via epoch stamps (`u` is always the
  // upper endpoint, `v` the lower); without one they are gathered here and
  // counted after a sort/unique.
  std::vector<VertexId> verts;
  if (scratch) {
    scratch->BeginQuery(g.NumVertices());
  } else {
    verts.reserve(sub.edges.size() * 2);
  }
  for (EdgeId e : sub.edges) {
    const Edge& ed = g.GetEdge(e);
    stats.min_weight = std::min(stats.min_weight, ed.w);
    stats.max_weight = std::max(stats.max_weight, ed.w);
    sum += ed.w;
    if (scratch) {
      if (scratch->TryVisit(ed.u)) ++stats.num_upper;
      if (scratch->TryVisit(ed.v)) ++stats.num_lower;
    } else {
      verts.push_back(ed.u);
      verts.push_back(ed.v);
    }
  }
  if (!scratch) {
    std::sort(verts.begin(), verts.end());
    verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
    // Upper ids precede lower ids, so the split point yields both counts.
    const auto split =
        std::lower_bound(verts.begin(), verts.end(), g.NumUpper());
    stats.num_upper = static_cast<uint32_t>(split - verts.begin());
    stats.num_lower = static_cast<uint32_t>(verts.end() - split);
  }
  stats.avg_weight = sum / static_cast<double>(sub.edges.size());
  return stats;
}

std::vector<VertexId> SubgraphVertexSet(const BipartiteGraph& g,
                                        const Subgraph& sub,
                                        QueryScratch* scratch) {
  std::vector<VertexId> verts;
  if (scratch) {
    scratch->BeginQuery(g.NumVertices());
    verts.reserve(sub.edges.size() * 2);
    for (EdgeId e : sub.edges) {
      const Edge& ed = g.GetEdge(e);
      if (scratch->TryVisit(ed.u)) verts.push_back(ed.u);
      if (scratch->TryVisit(ed.v)) verts.push_back(ed.v);
    }
    std::sort(verts.begin(), verts.end());
    return verts;
  }
  verts.reserve(sub.edges.size() * 2);
  for (EdgeId e : sub.edges) {
    const Edge& ed = g.GetEdge(e);
    verts.push_back(ed.u);
    verts.push_back(ed.v);
  }
  std::sort(verts.begin(), verts.end());
  verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
  return verts;
}

bool SameEdgeSet(const Subgraph& a, const Subgraph& b) {
  if (a.edges.size() != b.edges.size()) return false;
  std::vector<EdgeId> ea = a.edges, eb = b.edges;
  std::sort(ea.begin(), ea.end());
  std::sort(eb.begin(), eb.end());
  return ea == eb;
}

bool VerifyCommunity(const BipartiteGraph& g, const Subgraph& sub, VertexId q,
                     uint32_t alpha, uint32_t beta, std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  if (sub.Empty()) return fail("subgraph is empty");

  // Local degrees.
  std::unordered_map<VertexId, uint32_t> deg;
  for (EdgeId e : sub.edges) {
    const Edge& ed = g.GetEdge(e);
    ++deg[ed.u];
    ++deg[ed.v];
  }
  if (!deg.count(q)) return fail("query vertex not in subgraph");
  for (const auto& [v, d] : deg) {
    const uint32_t need = g.IsUpper(v) ? alpha : beta;
    if (d < need) {
      return fail("vertex " + std::to_string(v) + " has degree " +
                  std::to_string(d) + " < " + std::to_string(need));
    }
  }

  // Connectivity via union-find over the subgraph's vertices.
  std::unordered_map<VertexId, VertexId> parent;
  for (const auto& [v, d] : deg) parent[v] = v;
  auto find = [&](VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (EdgeId e : sub.edges) {
    const Edge& ed = g.GetEdge(e);
    VertexId ru = find(ed.u), rv = find(ed.v);
    if (ru != rv) parent[ru] = rv;
  }
  const VertexId rq = find(q);
  for (const auto& [v, d] : deg) {
    if (find(v) != rq) return fail("subgraph is not connected");
  }
  return true;
}

}  // namespace abcs
