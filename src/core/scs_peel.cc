#include "core/scs_peel.h"

namespace abcs {

ScsResult ScsPeel(const BipartiteGraph& g, const Subgraph& community,
                  VertexId q, uint32_t alpha, uint32_t beta, ScsStats* stats,
                  QueryScratch* scratch) {
  if (community.Empty()) return ScsResult{};
  LocalGraph lg(g, community.edges);
  return PeelToSignificant(lg, q, alpha, beta, stats, scratch);
}

}  // namespace abcs
