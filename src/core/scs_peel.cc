#include "core/scs_peel.h"

namespace abcs {

ScsResult ScsPeel(const BipartiteGraph& g, const Subgraph& community,
                  VertexId q, uint32_t alpha, uint32_t beta, ScsStats* stats,
                  QueryScratch* scratch, ScsWorkspace* workspace) {
  ScsResult result;
  if (stats) stats->algo_used = ScsAlgo::kPeel;
  if (community.Empty()) return result;
  ScsWorkspace local_ws;
  ScsWorkspace& ws = workspace ? *workspace : local_ws;
  ws.lg.BuildFrom(g, community.edges);
  PeelToSignificantInto(ws.lg, q, alpha, beta, &result, stats, scratch);
  return result;
}

}  // namespace abcs
