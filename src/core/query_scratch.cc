#include "core/query_scratch.h"

#include <algorithm>

namespace abcs {

void QueryScratch::BeginQuery(uint32_t n) {
  if (visited_.size() < n) visited_.resize(n, 0);
  if (epoch_ == std::numeric_limits<uint32_t>::max()) {
    // Wraparound: one full clear, then restart at epoch 1. Stamp 0 never
    // equals a live epoch, so stamps from before the wrap cannot alias.
    std::fill(visited_.begin(), visited_.end(), 0u);
    std::fill(in_core_.begin(), in_core_.end(), 0u);
    epoch_ = 0;
  }
  ++epoch_;
  queue_.clear();
  queue_head_ = 0;
}

std::size_t QueryScratch::CapacityBytes() const {
  std::size_t bytes =
      (visited_.capacity() + in_core_.capacity() + queue_.capacity()) *
      sizeof(uint32_t);
  for (const auto& b : u32_) bytes += b.capacity() * sizeof(uint32_t);
  for (const auto& b : u8_) bytes += b.capacity();
  return bytes;
}

}  // namespace abcs
