#include "core/index_io.h"

#include <bit>
#include <cstring>
#include <fstream>

#include "common/fnv.h"

namespace abcs {

namespace {

// Format version 2: arena layout (four flat arrays per half). Load-only
// legacy — see the header; new indices persist as ABCSPAK1 bundles.
constexpr char kMagic[8] = {'A', 'B', 'C', 'S', 'I', 'D', 'X', '2'};

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
void WriteArr(std::ofstream& out, const ArenaStorage<T>& v) {
  WritePod(out, static_cast<uint64_t>(v.size()));
  if (!v.empty()) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

template <typename T>
bool ReadArr(std::ifstream& in, ArenaStorage<T>* arr, uint64_t sanity_cap) {
  uint64_t size = 0;
  if (!ReadPod(in, &size) || size > sanity_cap) return false;
  std::vector<T>& v = arr->Mutable();
  v.resize(size);
  if (size != 0) {
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(size * sizeof(T)));
  }
  return static_cast<bool>(in);
}

}  // namespace

uint64_t GraphTopologyChecksum(const BipartiteGraph& g) {
  Fnv1a64 fnv;
  fnv.Mix(g.NumUpper());
  fnv.Mix(g.NumLower());
  fnv.Mix(g.NumEdges());
  for (const Edge& e : g.Edges()) {
    fnv.Mix((static_cast<uint64_t>(e.u) << 32) | e.v);
  }
  return fnv.h;
}

uint64_t GraphWeightChecksum(const BipartiteGraph& g) {
  Fnv1a64 fnv;
  fnv.Mix(g.NumEdges());
  // Bit-exact digest: any change a weight model can make (including sign
  // of zero or NaN payloads) changes the digest.
  for (const Edge& e : g.Edges()) fnv.Mix(std::bit_cast<uint64_t>(e.w));
  return fnv.h;
}

Status SaveDeltaIndex(const DeltaIndex& index, const BipartiteGraph& g,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");

  out.write(kMagic, sizeof(kMagic));
  WritePod(out, index.delta_);
  WritePod(out, g.NumUpper());
  WritePod(out, g.NumLower());
  WritePod(out, g.NumEdges());
  WritePod(out, GraphTopologyChecksum(g));
  for (const auto* half : {&index.alpha_half_, &index.beta_half_}) {
    WriteArr(out, half->table_base);
    WriteArr(out, half->level_start);
    WriteArr(out, half->self_offset);
    WriteArr(out, half->entries);
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status LoadDeltaIndex(const std::string& path, const BipartiteGraph& g,
                      DeltaIndex* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);

  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": bad magic / format version");
  }
  DeltaIndex index;
  uint32_t num_upper = 0, num_lower = 0, num_edges = 0;
  uint64_t checksum = 0;
  if (!ReadPod(in, &index.delta_) || !ReadPod(in, &num_upper) ||
      !ReadPod(in, &num_lower) || !ReadPod(in, &num_edges) ||
      !ReadPod(in, &checksum)) {
    return Status::Corruption(path + ": truncated header");
  }
  if (num_upper != g.NumUpper() || num_lower != g.NumLower() ||
      num_edges != g.NumEdges() || checksum != GraphTopologyChecksum(g)) {
    return Status::Corruption(path +
                              ": index was built for a different graph");
  }

  // Arena sizes are bounded by Lemma 5: ≤ 2·δ·m entries per half and
  // (δ+1)·n level-table slots. The caps guard corrupted size fields.
  const uint64_t entry_cap =
      2ull * (index.delta_ + 1ull) * (g.NumEdges() + 1ull);
  const uint64_t table_cap =
      (index.delta_ + 2ull) * (g.NumVertices() + 1ull);
  for (auto* half : {&index.alpha_half_, &index.beta_half_}) {
    if (!ReadArr(in, &half->table_base, table_cap) ||
        half->table_base.size() != g.NumVertices() + 1ull) {
      return Status::Corruption(path + ": bad vertex table");
    }
    if (!ReadArr(in, &half->level_start, table_cap) ||
        !ReadArr(in, &half->self_offset, table_cap) ||
        !ReadArr(in, &half->entries, entry_cap)) {
      return Status::Corruption(path + ": truncated payload");
    }
    // Structural sanity so queries cannot index out of bounds.
    if (half->table_base.back() != half->level_start.size()) {
      return Status::Corruption(path + ": inconsistent level table");
    }
    for (uint32_t ls : half->level_start) {
      if (ls > half->entries.size()) {
        return Status::Corruption(path + ": level bound out of range");
      }
    }
  }
  index.graph_ = &g;
  *out = std::move(index);
  return Status::OK();
}

}  // namespace abcs
