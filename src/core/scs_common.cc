#include "core/scs_common.h"

#include <algorithm>
#include <numeric>

#include "abcore/peel_kernel.h"

namespace abcs {

LocalGraph::LocalGraph(const BipartiteGraph& g,
                       const std::vector<EdgeId>& edges) {
  // Dense renumbering of the endpoints.
  std::vector<VertexId> verts;
  verts.reserve(edges.size() * 2);
  for (EdgeId e : edges) {
    const Edge& ed = g.GetEdge(e);
    verts.push_back(ed.u);
    verts.push_back(ed.v);
  }
  std::sort(verts.begin(), verts.end());
  verts.erase(std::unique(verts.begin(), verts.end()), verts.end());

  global_of_ = verts;
  is_upper_.resize(verts.size());
  id_map_.reserve(verts.size());
  for (uint32_t i = 0; i < verts.size(); ++i) {
    is_upper_[i] = g.IsUpper(verts[i]) ? 1 : 0;
    id_map_.emplace_back(verts[i], i);
  }

  edges_.reserve(edges.size());
  for (EdgeId e : edges) {
    const Edge& ed = g.GetEdge(e);
    edges_.push_back(LocalEdge{LocalId(ed.u), LocalId(ed.v), ed.w, e});
  }

  const uint32_t n = NumVertices();
  offsets_.assign(n + 1, 0);
  for (const LocalEdge& le : edges_) {
    ++offsets_[le.u + 1];
    ++offsets_[le.v + 1];
  }
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());
  arcs_.resize(2 * edges_.size());
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (uint32_t pos = 0; pos < edges_.size(); ++pos) {
    const LocalEdge& le = edges_[pos];
    arcs_[cursor[le.u]++] = LocalArc{le.v, pos};
    arcs_[cursor[le.v]++] = LocalArc{le.u, pos};
  }
}

uint32_t LocalGraph::LocalId(VertexId global) const {
  auto it = std::lower_bound(
      id_map_.begin(), id_map_.end(), global,
      [](const std::pair<VertexId, uint32_t>& p, VertexId v) {
        return p.first < v;
      });
  if (it == id_map_.end() || it->first != global) return kInvalidVertex;
  return it->second;
}

ScsResult PeelToSignificant(const LocalGraph& lg, VertexId q, uint32_t alpha,
                            uint32_t beta, ScsStats* stats,
                            QueryScratch* scratch) {
  ScsResult result;
  const uint32_t lq = lg.LocalId(q);
  if (lq == kInvalidVertex || lg.NumEdges() == 0) return result;

  const uint32_t n = lg.NumVertices();
  const uint32_t m = lg.NumEdges();
  auto threshold = [&](uint32_t x) { return lg.IsUpperLocal(x) ? alpha : beta; };

  QueryScratch local_scratch;
  QueryScratch& s = scratch ? *scratch : local_scratch;

  std::vector<uint32_t>& deg = s.U32(QueryScratch::kSlotDeg);
  deg.assign(n, 0);
  for (const LocalGraph::LocalEdge& le : lg.edges()) {
    ++deg[le.u];
    ++deg[le.v];
  }
  std::vector<uint8_t>& alive = s.U8(QueryScratch::kSlotAlive);
  alive.assign(m, 1);

  std::vector<uint32_t>& cascade = s.U32(QueryScratch::kSlotQueue);
  cascade.clear();
  auto kill_edges_of = [&](uint32_t x, std::vector<uint32_t>* sink) {
    for (const LocalGraph::LocalArc& a : lg.Neighbors(x)) {
      if (!alive[a.pos]) continue;
      alive[a.pos] = 0;
      if (sink) sink->push_back(a.pos);
      if (stats) ++stats->edges_processed;
      --deg[x];
      --deg[a.to];
      if (deg[a.to] < threshold(a.to)) cascade.push_back(a.to);
    }
  };
  auto run_cascade = [&](std::vector<uint32_t>* sink) {
    while (!cascade.empty()) {
      uint32_t x = cascade.back();
      cascade.pop_back();
      if (deg[x] >= threshold(x) || deg[x] == 0) continue;
      kill_edges_of(x, sink);
    }
  };

  // Stabilise the input: peel vertices below threshold (no restore — these
  // edges belong to no candidate community).
  for (uint32_t x = 0; x < n; ++x) {
    if (deg[x] < threshold(x)) cascade.push_back(x);
  }
  run_cascade(nullptr);
  if (deg[lq] < threshold(lq)) return result;

  // Edge positions sorted by non-decreasing weight.
  std::vector<uint32_t>& order = s.U32(QueryScratch::kSlotOrder);
  order.resize(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return lg.edges()[a].w < lg.edges()[b].w;
  });

  std::vector<uint32_t>& batch_removed =
      s.U32(QueryScratch::kSlotBatch);  // the paper's edge set S
  batch_removed.clear();
  uint32_t i = 0;
  while (i < m) {
    // Find the next batch: all alive edges of the minimal remaining weight.
    while (i < m && !alive[order[i]]) ++i;
    if (i >= m) break;
    const Weight wmin = lg.edges()[order[i]].w;
    batch_removed.clear();
    uint32_t j = i;
    while (j < m && lg.edges()[order[j]].w == wmin) {
      const uint32_t pos = order[j];
      ++j;
      if (!alive[pos]) continue;
      const LocalGraph::LocalEdge& le = lg.edges()[pos];
      alive[pos] = 0;
      batch_removed.push_back(pos);
      if (stats) ++stats->edges_processed;
      --deg[le.u];
      --deg[le.v];
      if (deg[le.u] < threshold(le.u)) cascade.push_back(le.u);
      if (deg[le.v] < threshold(le.v)) cascade.push_back(le.v);
    }
    run_cascade(&batch_removed);
    i = j;

    if (deg[lq] < threshold(lq)) {
      // q no longer satisfies the constraint: the state at the start of
      // this batch is the last valid graph. Restore S and extract q's
      // connected component — that is R (Theorem 1).
      for (uint32_t pos : batch_removed) {
        alive[pos] = 1;
        ++deg[lg.edges()[pos].u];
        ++deg[lg.edges()[pos].v];
      }
      s.BeginQuery(n);
      s.TryVisit(lq);
      std::vector<uint32_t>& stack = s.U32(QueryScratch::kSlotStack);
      stack.assign(1, lq);
      Weight fmin = wmin;
      while (!stack.empty()) {
        uint32_t x = stack.back();
        stack.pop_back();
        for (const LocalGraph::LocalArc& a : lg.Neighbors(x)) {
          if (!alive[a.pos]) continue;
          if (!lg.IsUpperLocal(x)) {
            result.community.edges.push_back(lg.edges()[a.pos].global);
            fmin = std::min(fmin, lg.edges()[a.pos].w);
          }
          if (s.TryVisit(a.to)) stack.push_back(a.to);
        }
      }
      result.significance = fmin;
      result.found = true;
      if (stats) ++stats->validations;
      return result;
    }
  }
  return result;  // q was eliminated during stabilisation — no community
}

ScsResult ScsBruteForce(const BipartiteGraph& g, VertexId q, uint32_t alpha,
                        uint32_t beta) {
  ScsResult result;
  if (q >= g.NumVertices()) return result;

  std::vector<Weight> weights;
  weights.reserve(g.NumEdges());
  for (const Edge& e : g.Edges()) weights.push_back(e.w);
  std::sort(weights.begin(), weights.end(), std::greater<>());
  weights.erase(std::unique(weights.begin(), weights.end()), weights.end());

  const uint32_t n = g.NumVertices();

  // Degrees of the ≥w subgraph, maintained incrementally as the threshold
  // sweeps down: each edge is counted exactly once over the whole sweep
  // (when its weight crosses the threshold) instead of every edge being
  // re-scanned at every distinct weight. The per-weight working copy the
  // peel mutates is a memcpy of `base_deg`, so the values entering the
  // kernel are identical to the old per-weight rebuild.
  std::vector<EdgeId> by_weight(g.NumEdges());
  std::iota(by_weight.begin(), by_weight.end(), 0u);
  std::sort(by_weight.begin(), by_weight.end(), [&](EdgeId a, EdgeId b) {
    return g.GetWeight(a) > g.GetWeight(b);
  });
  std::vector<uint32_t> base_deg(n, 0);
  std::size_t next_edge = 0;
  std::vector<uint32_t> deg;

  for (Weight w : weights) {
    // Keep edges with weight >= w; peel vertices below threshold via the
    // shared kernel with a weight-filtered adjacency.
    while (next_edge < by_weight.size() &&
           g.GetWeight(by_weight[next_edge]) >= w) {
      const Edge& e = g.GetEdge(by_weight[next_edge]);
      ++base_deg[e.u];
      ++base_deg[e.v];
      ++next_edge;
    }
    deg = base_deg;
    std::vector<uint8_t> alive(n, 1);
    auto threshold = [&](VertexId x) { return g.IsUpper(x) ? alpha : beta; };
    ThresholdPeel(
        n, deg, alive,
        [&](VertexId x, auto&& visit) {
          for (const Arc& a : g.Neighbors(x)) {
            if (g.GetWeight(a.eid) >= w) visit(a.to);
          }
        },
        threshold, [](VertexId) {});
    if (!alive[q]) continue;

    // q survives: its connected component over surviving edges is R.
    std::vector<uint8_t> visited(n, 0);
    std::vector<VertexId> stack{q};
    visited[q] = 1;
    Weight fmin = 0;
    bool first = true;
    while (!stack.empty()) {
      VertexId x = stack.back();
      stack.pop_back();
      for (const Arc& a : g.Neighbors(x)) {
        if (!alive[a.to] || g.GetWeight(a.eid) < w) continue;
        if (!g.IsUpper(x)) {
          result.community.edges.push_back(a.eid);
          const Weight we = g.GetWeight(a.eid);
          fmin = first ? we : std::min(fmin, we);
          first = false;
        }
        if (!visited[a.to]) {
          visited[a.to] = 1;
          stack.push_back(a.to);
        }
      }
    }
    result.significance = fmin;
    result.found = true;
    return result;
  }
  return result;
}

}  // namespace abcs
