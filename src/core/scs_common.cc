#include "core/scs_common.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "abcore/peel_kernel.h"

namespace abcs {

namespace {

// Integer key that orders like the weight *descending* (ties broken by pool
// position elsewhere): the standard IEEE-754 total-order transform,
// inverted. −0.0 is normalised to +0.0 first so equal weights can never map
// to two keys.
uint64_t DescendingWeightKey(Weight w) {
  uint64_t b = std::bit_cast<uint64_t>(w == 0.0 ? 0.0 : w);
  b = (b & 0x8000000000000000ULL) ? ~b : (b | 0x8000000000000000ULL);
  return ~b;
}

// Counting-sort eligibility: with at most this many distinct weights the
// rank order is built in O(m + W log W) instead of a comparison sort —
// the duplicate-heavy regime the incremental kernels target.
constexpr uint32_t kMaxCountingDistinct = 128;
constexpr uint32_t kHashTableSize = 512;  // power of two, ≥ 4× the cap

std::size_t HashWeightKey(uint64_t key) {
  return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >>
                                  (64 - 9)) &
         (kHashTableSize - 1);
}

}  // namespace

const char* ScsAlgoName(ScsAlgo algo) {
  switch (algo) {
    case ScsAlgo::kAuto:
      return "auto";
    case ScsAlgo::kPeel:
      return "peel";
    case ScsAlgo::kExpand:
      return "expand";
    case ScsAlgo::kBinary:
      return "binary";
  }
  return "unknown";
}

LocalGraph::LocalGraph(const BipartiteGraph& g,
                       const std::vector<EdgeId>& edges) {
  BuildFrom(g, edges);
}

void LocalGraph::BuildFrom(const BipartiteGraph& g,
                           std::span<const EdgeId> edge_ids) {
  // Dense renumbering of the endpoints in one pass: the epoch-stamped map
  // replaces the old sort + per-endpoint binary searches — at typical
  // community sizes that was the single most expensive part of a query.
  if (map_stamp_.size() < g.NumVertices()) {
    map_stamp_.assign(g.NumVertices(), 0);
    map_local_.resize(g.NumVertices());
    map_epoch_ = 0;
  }
  if (++map_epoch_ == 0) {  // wraparound: one O(n) clear every 2^32 builds
    std::fill(map_stamp_.begin(), map_stamp_.end(), 0u);
    map_epoch_ = 1;
  }

  global_of_.clear();
  build_edges_.clear();
  build_edges_.reserve(edge_ids.size());
  auto local_of = [&](VertexId v) {
    if (map_stamp_[v] != map_epoch_) {
      map_stamp_[v] = map_epoch_;
      map_local_[v] = static_cast<uint32_t>(global_of_.size());
      global_of_.push_back(v);
    }
    return map_local_[v];
  };
  for (EdgeId e : edge_ids) {
    const Edge& ed = g.GetEdge(e);
    build_edges_.push_back(
        LocalEdge{local_of(ed.u), local_of(ed.v), ed.w, e});
  }

  const uint32_t n = NumVertices();
  is_upper_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    is_upper_[i] = g.IsUpper(global_of_[i]) ? 1 : 0;
  }

  // The weight-rank order: non-increasing weight, ties by pool position.
  // Duplicate-heavy pools (≤ kMaxCountingDistinct distinct weights, found
  // with a pooled stamped hash table) take an O(m) counting sort over the
  // distinct values; everything else falls back to a comparison sort over
  // packed (descending-key, pos) pairs — the tie-break is deterministic
  // either way and both paths produce the identical order.
  const uint32_t m = static_cast<uint32_t>(build_edges_.size());
  edges_.resize(m);
  if (ht_stamp_.size() != kHashTableSize) {
    ht_stamp_.assign(kHashTableSize, 0);
    ht_key_.resize(kHashTableSize);
    ht_val_.resize(kHashTableSize);
    ht_epoch_ = 0;
  }
  if (++ht_epoch_ == 0) {
    std::fill(ht_stamp_.begin(), ht_stamp_.end(), 0u);
    ht_epoch_ = 1;
  }
  bucket_key_.clear();
  bucket_of_.resize(m);
  bool counting = true;
  for (uint32_t i = 0; i < m && counting; ++i) {
    const uint64_t key = DescendingWeightKey(build_edges_[i].w);
    std::size_t slot = HashWeightKey(key);
    for (;;) {
      if (ht_stamp_[slot] != ht_epoch_) {
        if (bucket_key_.size() == kMaxCountingDistinct) {
          counting = false;
          break;
        }
        ht_stamp_[slot] = ht_epoch_;
        ht_key_[slot] = key;
        ht_val_[slot] = static_cast<uint32_t>(bucket_key_.size());
        bucket_key_.push_back(key);
      }
      if (ht_key_[slot] == key) {
        bucket_of_[i] = ht_val_[slot];
        break;
      }
      slot = (slot + 1) & (kHashTableSize - 1);
    }
  }
  if (counting) {
    // Rank the ≤128 distinct keys, then scatter edges bucket by bucket in
    // pool order — stable within a bucket, so the result matches the
    // comparison sort bit for bit.
    const uint32_t nb = static_cast<uint32_t>(bucket_key_.size());
    build_rank_.resize(nb);
    for (uint32_t b = 0; b < nb; ++b) build_rank_[b] = {bucket_key_[b], b};
    std::sort(build_rank_.begin(), build_rank_.end());
    bucket_rank_.resize(nb);
    bucket_cursor_.assign(nb + 1, 0);
    for (uint32_t r = 0; r < nb; ++r) {
      bucket_rank_[build_rank_[r].second] = r;
    }
    for (uint32_t i = 0; i < m; ++i) {
      ++bucket_cursor_[bucket_rank_[bucket_of_[i]] + 1];
    }
    std::partial_sum(bucket_cursor_.begin(), bucket_cursor_.end(),
                     bucket_cursor_.begin());
    for (uint32_t i = 0; i < m; ++i) {
      edges_[bucket_cursor_[bucket_rank_[bucket_of_[i]]]++] = build_edges_[i];
    }
  } else {
    build_rank_.resize(m);
    for (uint32_t i = 0; i < m; ++i) {
      build_rank_[i] = {DescendingWeightKey(build_edges_[i].w), i};
    }
    std::sort(build_rank_.begin(), build_rank_.end());
    for (uint32_t r = 0; r < m; ++r) {
      edges_[r] = build_edges_[build_rank_[r].second];
    }
  }

  // Distinct-weight prefix table.
  distinct_w_.clear();
  prefix_end_.clear();
  for (uint32_t r = 0; r < m; ++r) {
    if (r == 0 || edges_[r].w != edges_[r - 1].w) {
      if (r != 0) prefix_end_.push_back(r);
      distinct_w_.push_back(edges_[r].w);
    }
  }
  if (m != 0) prefix_end_.push_back(m);

  // CSR over the rank order; filling in rank order leaves every vertex's
  // arc list sorted by ascending rank.
  offsets_.assign(n + 1, 0);
  for (const LocalEdge& le : edges_) {
    ++offsets_[le.u + 1];
    ++offsets_[le.v + 1];
  }
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());
  arcs_.resize(2 * static_cast<std::size_t>(m));
  build_cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (uint32_t pos = 0; pos < m; ++pos) {
    const LocalEdge& le = edges_[pos];
    arcs_[build_cursor_[le.u]++] = LocalArc{le.v, pos};
    arcs_[build_cursor_[le.v]++] = LocalArc{le.u, pos};
  }
}

uint32_t LocalGraph::DistinctIndexOfRank(uint32_t rank) const {
  return static_cast<uint32_t>(
      std::upper_bound(prefix_end_.begin(), prefix_end_.end(), rank) -
      prefix_end_.begin());
}

uint32_t LocalGraph::LocalId(VertexId global) const {
  if (global >= map_stamp_.size() || map_stamp_[global] != map_epoch_) {
    return kInvalidVertex;
  }
  return map_local_[global];
}

void ExtractAliveComponent(const LocalGraph& lg, uint32_t lq,
                           const std::vector<uint8_t>& alive, Weight fmin_seed,
                           QueryScratch& s, ScsResult* out) {
  s.BeginQuery(lg.NumVertices());
  s.TryVisit(lq);
  std::vector<uint32_t>& stack = s.U32(QueryScratch::kSlotStack);
  stack.assign(1, lq);
  Weight fmin = fmin_seed;
  while (!stack.empty()) {
    uint32_t x = stack.back();
    stack.pop_back();
    for (const LocalGraph::LocalArc& a : lg.Neighbors(x)) {
      if (!alive[a.pos]) continue;
      if (!lg.IsUpperLocal(x)) {
        out->community.edges.push_back(lg.edges()[a.pos].global);
        fmin = std::min(fmin, lg.edges()[a.pos].w);
      }
      if (s.TryVisit(a.to)) stack.push_back(a.to);
    }
  }
  out->significance = fmin;
  out->found = true;
}

void PeelToSignificantInto(const LocalGraph& lg, VertexId q, uint32_t alpha,
                           uint32_t beta, ScsResult* out, ScsStats* stats,
                           QueryScratch* scratch) {
  out->community.edges.clear();
  out->significance = 0;
  out->found = false;
  if (stats) stats->algo_used = ScsAlgo::kPeel;
  const uint32_t lq = lg.LocalId(q);
  if (lq == kInvalidVertex || lg.NumEdges() == 0) return;

  const uint32_t n = lg.NumVertices();
  const uint32_t m = lg.NumEdges();
  auto threshold = [&](uint32_t x) {
    return lg.IsUpperLocal(x) ? alpha : beta;
  };

  QueryScratch local_scratch;
  QueryScratch& s = scratch ? *scratch : local_scratch;

  std::vector<uint32_t>& deg = s.U32(QueryScratch::kSlotDeg);
  deg.assign(n, 0);
  for (const LocalGraph::LocalEdge& le : lg.edges()) {
    ++deg[le.u];
    ++deg[le.v];
  }
  std::vector<uint8_t>& alive = s.U8(QueryScratch::kSlotAlive);
  alive.assign(m, 1);

  std::vector<uint32_t>& cascade = s.U32(QueryScratch::kSlotQueue);
  cascade.clear();
  auto kill_edges_of = [&](uint32_t x, std::vector<uint32_t>* sink) {
    for (const LocalGraph::LocalArc& a : lg.Neighbors(x)) {
      s.CancelTick();
      if (!alive[a.pos]) continue;
      alive[a.pos] = 0;
      if (sink) sink->push_back(a.pos);
      if (stats) ++stats->edges_processed;
      --deg[x];
      --deg[a.to];
      if (deg[a.to] < threshold(a.to)) cascade.push_back(a.to);
    }
  };
  auto run_cascade = [&](std::vector<uint32_t>* sink) {
    while (!cascade.empty()) {
      uint32_t x = cascade.back();
      cascade.pop_back();
      if (deg[x] >= threshold(x) || deg[x] == 0) continue;
      kill_edges_of(x, sink);
    }
  };

  // Stabilise the input: peel vertices below threshold (no restore — these
  // edges belong to no candidate community). One from-scratch validation.
  for (uint32_t x = 0; x < n; ++x) {
    if (deg[x] < threshold(x)) cascade.push_back(x);
  }
  run_cascade(nullptr);
  if (stats) ++stats->validations;
  if (s.CancelStopped()) return;  // deg/alive are re-assigned per query
  if (deg[lq] < threshold(lq)) return;

  // Remove rank batches back-to-front (minimum weight first); each batch is
  // the contiguous rank range of one distinct weight.
  std::vector<uint32_t>& batch_removed =
      s.U32(QueryScratch::kSlotBatch);  // the paper's edge set S
  for (uint32_t di = lg.NumDistinctWeights(); di-- > 0;) {
    if (s.CancelStopped()) return;  // abandon: answer not found
    const Weight wmin = lg.DistinctWeight(di);
    batch_removed.clear();
    for (uint32_t r = lg.PrefixBegin(di); r < lg.PrefixEnd(di); ++r) {
      // At low thresholds cascades are rare and this loop carries nearly
      // every edge-op, so it must heartbeat too or a budgeted peel could
      // run an entire batch sweep blind to its deadline.
      s.CancelTick();
      if (!alive[r]) continue;
      const LocalGraph::LocalEdge& le = lg.edges()[r];
      alive[r] = 0;
      batch_removed.push_back(r);
      if (stats) ++stats->edges_processed;
      --deg[le.u];
      --deg[le.v];
      if (deg[le.u] < threshold(le.u)) cascade.push_back(le.u);
      if (deg[le.v] < threshold(le.v)) cascade.push_back(le.v);
    }
    run_cascade(&batch_removed);

    if (deg[lq] < threshold(lq)) {
      // q no longer satisfies the constraint: the state at the start of
      // this batch is the last valid graph. Restore S and extract q's
      // connected component — that is R (Theorem 1).
      for (uint32_t pos : batch_removed) {
        alive[pos] = 1;
        ++deg[lg.edges()[pos].u];
        ++deg[lg.edges()[pos].v];
      }
      if (stats) stats->edges_processed += batch_removed.size();
      ExtractAliveComponent(lg, lq, alive, wmin, s, out);
      return;
    }
  }
  // Unreachable when q survived stabilisation (removing q's last edge
  // always violates its threshold), kept as a safe default.
}

ScsResult PeelToSignificant(const LocalGraph& lg, VertexId q, uint32_t alpha,
                            uint32_t beta, ScsStats* stats,
                            QueryScratch* scratch) {
  ScsResult result;
  PeelToSignificantInto(lg, q, alpha, beta, &result, stats, scratch);
  return result;
}

ScsResult ScsBruteForce(const BipartiteGraph& g, VertexId q, uint32_t alpha,
                        uint32_t beta) {
  ScsResult result;
  if (q >= g.NumVertices()) return result;

  std::vector<Weight> weights;
  weights.reserve(g.NumEdges());
  for (const Edge& e : g.Edges()) weights.push_back(e.w);
  std::sort(weights.begin(), weights.end(), std::greater<>());
  weights.erase(std::unique(weights.begin(), weights.end()), weights.end());

  const uint32_t n = g.NumVertices();

  // Degrees of the ≥w subgraph, maintained incrementally as the threshold
  // sweeps down: each edge is counted exactly once over the whole sweep
  // (when its weight crosses the threshold) instead of every edge being
  // re-scanned at every distinct weight. The per-weight working copy the
  // peel mutates is a memcpy of `base_deg`, so the values entering the
  // kernel are identical to the old per-weight rebuild.
  std::vector<EdgeId> by_weight(g.NumEdges());
  std::iota(by_weight.begin(), by_weight.end(), 0u);
  std::sort(by_weight.begin(), by_weight.end(), [&](EdgeId a, EdgeId b) {
    return g.GetWeight(a) > g.GetWeight(b);
  });
  std::vector<uint32_t> base_deg(n, 0);
  std::size_t next_edge = 0;
  std::vector<uint32_t> deg;

  for (Weight w : weights) {
    // Keep edges with weight >= w; peel vertices below threshold via the
    // shared kernel with a weight-filtered adjacency.
    while (next_edge < by_weight.size() &&
           g.GetWeight(by_weight[next_edge]) >= w) {
      const Edge& e = g.GetEdge(by_weight[next_edge]);
      ++base_deg[e.u];
      ++base_deg[e.v];
      ++next_edge;
    }
    deg = base_deg;
    std::vector<uint8_t> alive(n, 1);
    auto threshold = [&](VertexId x) { return g.IsUpper(x) ? alpha : beta; };
    ThresholdPeel(
        n, deg, alive,
        [&](VertexId x, auto&& visit) {
          for (const Arc& a : g.Neighbors(x)) {
            if (g.GetWeight(a.eid) >= w) visit(a.to);
          }
        },
        threshold, [](VertexId) {});
    if (!alive[q]) continue;

    // q survives: its connected component over surviving edges is R.
    std::vector<uint8_t> visited(n, 0);
    std::vector<VertexId> stack{q};
    visited[q] = 1;
    Weight fmin = 0;
    bool first = true;
    while (!stack.empty()) {
      VertexId x = stack.back();
      stack.pop_back();
      for (const Arc& a : g.Neighbors(x)) {
        if (!alive[a.to] || g.GetWeight(a.eid) < w) continue;
        if (!g.IsUpper(x)) {
          result.community.edges.push_back(a.eid);
          const Weight we = g.GetWeight(a.eid);
          fmin = first ? we : std::min(fmin, we);
          first = false;
        }
        if (!visited[a.to]) {
          visited[a.to] = 1;
          stack.push_back(a.to);
        }
      }
    }
    result.significance = fmin;
    result.found = true;
    return result;
  }
  return result;
}

}  // namespace abcs
