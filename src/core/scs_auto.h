#ifndef ABCS_CORE_SCS_AUTO_H_
#define ABCS_CORE_SCS_AUTO_H_

#include "core/scs_common.h"
#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief The ScsAuto planner: picks the kernel for one query from
/// statistics the weight-rank LocalGraph already holds — no extra pass
/// over the edges.
///
/// Signals (O(log W) to read): m = size(C), W = distinct-weight count (the
/// rank table's length), and the *batch-aligned prefix* of q's
/// threshold-th strongest incident edge — any feasible subgraph keeps ≥
/// threshold(q) edges at q, so the feasible prefix extends at least
/// through that edge's whole equal-weight batch; its share of m is a
/// lower-bound proxy for size(R)/size(C).
///
/// Decision (calibrated against bench_scs_throughput + the crossover
/// ablation, see docs/scs_engine.md): a provably-thin prefix routes to
/// Expand, whose ε-schedule touches O(ε·prefix) edges while every
/// peel-family kernel pays a full O(size(C)) stabilisation first;
/// everything else routes to Peel, whose single linear stabilise + ordered
/// batch kills carries the lowest constants — measured across the registry
/// datasets, Binary's probe diffs telescope to the same edge work Peel
/// performs plus undo overhead, so it never beats a correctly-routed Peel
/// and remains an explicit `--algo binary` choice (its log W validation
/// bound and its 2–4× win over the pre-PR fresh-peel form stand on their
/// own).
ScsAlgo PlanScsAlgo(const LocalGraph& lg, VertexId q, uint32_t alpha,
                    uint32_t beta);

/// \brief One entry point for the whole SCS layer: builds (or reuses, via
/// `workspace`) the weight-rank LocalGraph of `community`, resolves `algo`
/// (kAuto → PlanScsAlgo) and runs the kernel. `stats->algo_used` records
/// the resolved kernel. The Into form reuses `out`'s capacity — with a
/// pooled workspace and scratch the steady state allocates nothing.
void ScsQueryInto(const BipartiteGraph& g, const Subgraph& community,
                  VertexId q, uint32_t alpha, uint32_t beta, ScsAlgo algo,
                  const ScsOptions& options, ScsResult* out,
                  ScsStats* stats = nullptr, QueryScratch* scratch = nullptr,
                  ScsWorkspace* workspace = nullptr);
ScsResult ScsQuery(const BipartiteGraph& g, const Subgraph& community,
                   VertexId q, uint32_t alpha, uint32_t beta,
                   ScsAlgo algo = ScsAlgo::kAuto,
                   const ScsOptions& options = {}, ScsStats* stats = nullptr,
                   QueryScratch* scratch = nullptr,
                   ScsWorkspace* workspace = nullptr);

}  // namespace abcs

#endif  // ABCS_CORE_SCS_AUTO_H_
