#ifndef ABCS_CORE_SCS_BASELINE_H_
#define ABCS_CORE_SCS_BASELINE_H_

#include "core/scs_common.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief SCS-Baseline (paper §V-A): expansion over the *whole graph*
/// instead of C_{α,β}(q).
///
/// Identical machinery to SCS-Expand, but the edge pool is E(G), so the
/// search space is the connected component of `q` in G rather than its
/// (α,β)-community — the cost the two-step paradigm avoids. `workspace`,
/// when supplied, pools the whole-graph edge list and LocalGraph buffers
/// across calls.
ScsResult ScsBaseline(const BipartiteGraph& g, VertexId q, uint32_t alpha,
                      uint32_t beta, const ScsOptions& options = {},
                      ScsStats* stats = nullptr,
                      QueryScratch* scratch = nullptr,
                      ScsWorkspace* workspace = nullptr);

}  // namespace abcs

#endif  // ABCS_CORE_SCS_BASELINE_H_
