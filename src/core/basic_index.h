#ifndef ABCS_CORE_BASIC_INDEX_H_
#define ABCS_CORE_BASIC_INDEX_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"
#include "core/query_stats.h"
#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// Which of the paper's two basic indexes to build: `Iα_bs` organises
/// adjacency lists by α (levels α = 1..αmax), `Iβ_bs` by β.
enum class BasicIndexSide { kAlpha, kBeta };

/// Options bounding index construction. The paper terminates builds after
/// 10⁴ seconds and reports the *expected* size instead (Fig. 10/11);
/// `EstimateEntries` provides that number exactly.
struct BasicIndexBuildOptions {
  double max_seconds = std::numeric_limits<double>::infinity();
  std::size_t max_entries = std::numeric_limits<std::size_t>::max();
};

/// \brief One of the basic indexes `Iα_bs` / `Iβ_bs` (paper §III-A,
/// Algorithm 1).
///
/// For every vertex `u` and level ℓ (α for the α-side, β for the β-side)
/// where `u` belongs to the (ℓ,1)- resp. (1,ℓ)-core, stores `u`'s
/// neighbours that are also in that core, sorted by decreasing offset.
/// Queries (Algorithm 2) run in optimal O(size(C_{α,β}(q))) time, but the
/// index needs O(αmax·m) resp. O(βmax·m) space — infeasible on graphs with
/// high-degree hubs, which is exactly the weakness `I_δ` fixes.
class BasicIndex {
 public:
  BasicIndex() = default;

  /// Builds the index; fails with `NotSupported` when the budget in
  /// `options` is exhausted (partial state is discarded). The graph must
  /// outlive the index.
  static Status Build(const BipartiteGraph& g, BasicIndexSide side,
                      const BasicIndexBuildOptions& options, BasicIndex* out);

  /// Exact number of index entries Build would create, computed in O(m)
  /// without building (used to report expected sizes for DNF datasets).
  static std::size_t EstimateEntries(const BipartiteGraph& g,
                                     BasicIndexSide side);

  BasicIndexSide side() const { return side_; }
  /// Number of levels (αmax or βmax).
  uint32_t max_level() const { return max_level_; }

  /// The (α,β)-community of `q` in optimal time (Algorithm 2).
  Subgraph QueryCommunity(VertexId q, uint32_t alpha, uint32_t beta,
                          QueryStats* stats = nullptr) const;

  /// Bytes used by the index payload (Fig. 11).
  std::size_t MemoryBytes() const;

  /// Total number of stored adjacency entries (= EstimateEntries exactly).
  std::size_t NumEntries() const;

 private:
  struct Entry {
    VertexId to;
    EdgeId eid;
    uint32_t offset;  ///< s_a(to, level) or s_b(to, level)
  };

  /// Per-vertex leveled adjacency. Level ℓ of vertex v occupies
  /// entries[level_start[ℓ-1] .. level_start[ℓ]); levels above
  /// `level_start.size()-1` do not exist for v.
  struct VertexLists {
    std::vector<uint32_t> level_start;  // size = #levels + 1
    /// The vertex's own offset at each level, used to test whether the
    /// query vertex itself belongs to the (α,β)-core before BFS.
    std::vector<uint32_t> self_offset;  // size = #levels
    std::vector<Entry> entries;
  };

  const BipartiteGraph* graph_ = nullptr;
  BasicIndexSide side_ = BasicIndexSide::kAlpha;
  uint32_t max_level_ = 0;
  std::vector<VertexLists> lists_;  // indexed by VertexId
};

}  // namespace abcs

#endif  // ABCS_CORE_BASIC_INDEX_H_
