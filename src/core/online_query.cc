#include "core/online_query.h"

#include "abcore/peeling.h"

namespace abcs {

void QueryCommunityOnline(const BipartiteGraph& g, VertexId q, uint32_t alpha,
                          uint32_t beta, QueryScratch& scratch, Subgraph* out,
                          QueryStats* stats) {
  out->edges.clear();
  if (q >= g.NumVertices()) return;

  const uint32_t n = g.NumVertices();
  scratch.BeginQuery(n);
  std::vector<uint32_t>& deg = scratch.U32(QueryScratch::kSlotDeg);
  deg.resize(n);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.Degree(v);
  std::vector<uint8_t>& alive = scratch.U8(QueryScratch::kSlotAlive);
  alive.assign(n, 1);
  PeelInPlace(g, alpha, beta, deg, alive, /*removed=*/nullptr,
              &scratch.U32(QueryScratch::kSlotQueue), scratch.cancel_token());
  if (stats) stats->touched_arcs += 2ull * g.NumEdges();  // full peel cost
  if (scratch.CancelStopped()) return;  // torn peel state: answer nothing
  if (!alive[q]) return;

  // BFS from q within the core; collect each edge from its lower endpoint.
  CollectCommunityBfs(scratch, g, q, out->edges,
                      [&](VertexId v, auto&& visit) {
                        for (const Arc& a : g.Neighbors(v)) {
                          scratch.CancelTick();
                          if (stats) ++stats->touched_arcs;
                          if (!alive[a.to]) continue;
                          visit(a.to, a.eid);
                        }
                      });
  if (scratch.CancelStopped()) out->edges.clear();  // drop partial walk
}

Subgraph QueryCommunityOnline(const BipartiteGraph& g, VertexId q,
                              uint32_t alpha, uint32_t beta,
                              QueryStats* stats) {
  QueryScratch scratch;
  Subgraph result;
  QueryCommunityOnline(g, q, alpha, beta, scratch, &result, stats);
  return result;
}

}  // namespace abcs
