#include "core/online_query.h"

#include <deque>

#include "abcore/peeling.h"

namespace abcs {

Subgraph QueryCommunityOnline(const BipartiteGraph& g, VertexId q,
                              uint32_t alpha, uint32_t beta,
                              QueryStats* stats) {
  Subgraph result;
  if (q >= g.NumVertices()) return result;

  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> deg(n);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.Degree(v);
  std::vector<uint8_t> alive(n, 1);
  PeelInPlace(g, alpha, beta, deg, alive);
  if (stats) stats->touched_arcs += 2ull * g.NumEdges();  // full peel cost
  if (!alive[q]) return result;

  // BFS from q within the core; collect each edge from its lower endpoint.
  std::vector<uint8_t> visited(n, 0);
  std::deque<VertexId> queue{q};
  visited[q] = 1;
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    for (const Arc& a : g.Neighbors(v)) {
      if (stats) ++stats->touched_arcs;
      if (!alive[a.to]) continue;
      if (!g.IsUpper(v)) result.edges.push_back(a.eid);
      if (!visited[a.to]) {
        visited[a.to] = 1;
        queue.push_back(a.to);
      }
    }
  }
  return result;
}

}  // namespace abcs
