#ifndef ABCS_CORE_QUERY_SCRATCH_H_
#define ABCS_CORE_QUERY_SCRATCH_H_

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/cancel.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief Reusable per-thread scratch arena for community queries.
///
/// The paper's headline result is output-sensitive retrieval: query time
/// proportional to size(C_{α,β}(q)), not to the graph. Allocating and
/// zeroing O(n) `visited` / `in_core` arrays per query silently re-inserts
/// an O(n) term; this arena removes it:
///
///  - *Epoch-stamped sets.* `visited`/`in_core` are `uint32_t` stamp
///    arrays compared against a per-query epoch. `BeginQuery` bumps the
///    epoch instead of clearing, so membership reset is O(1). When the
///    epoch counter would wrap around, both arrays are zeroed once and the
///    epoch restarts at 1 — a stale stamp can therefore never collide with
///    a live epoch (stamp 0 is never a valid epoch).
///  - *Flat BFS queue.* A `std::vector<VertexId>` with a head cursor
///    replaces the per-query `std::deque` (each vertex enters the queue at
///    most once, so the buffer never wraps and its capacity is bounded by
///    the largest community seen).
///  - *Named buffer slots.* Peeling-style callers (online query,
///    `PeelToSignificant`) borrow `uint32_t`/`uint8_t` vectors that keep
///    their capacity across queries.
///
/// After warm-up (the first query at a given graph size), steady-state
/// queries through a `QueryScratch` perform zero heap allocations; the
/// engine test asserts this with a counting global allocator.
///
/// Not thread-safe: use one instance per thread (see `QueryEngine`).
class QueryScratch {
 public:
  // Named `uint32_t` buffer slots. A single algorithm must use distinct
  // slots for buffers that are live at the same time.
  enum U32Slot : std::size_t {
    kSlotDeg = 0,    ///< per-vertex degrees
    kSlotQueue,      ///< peel work queue
    kSlotBatch,      ///< batch-removed edge positions
    kSlotStack,      ///< DFS stack for component extraction
    kSlotJournal,    ///< killed-edge undo journal (incremental SCS probes)
    kNumU32Slots,
  };
  enum U8Slot : std::size_t {
    kSlotAlive = 0,  ///< per-vertex or per-edge liveness
    kNumU8Slots,
  };

  /// Begins a query over the id space [0, n): lazily grows the stamp
  /// arrays, advances the epoch (wraparound-safe) and resets the BFS queue.
  void BeginQuery(uint32_t n);

  /// Marks `v` visited; returns true iff this is the first visit this
  /// query.
  bool TryVisit(uint32_t v) {
    if (visited_[v] == epoch_) return false;
    visited_[v] = epoch_;
    return true;
  }
  bool Visited(uint32_t v) const { return visited_[v] == epoch_; }

  /// Sizes the in-core stamp set. Kept separate from `BeginQuery` so paths
  /// that never mark core membership (Qopt, Qo) don't grow or clear it —
  /// call once before the first `MarkInCore`/`InCore` of a query.
  void EnsureInCore(uint32_t n) {
    if (in_core_.size() < n) in_core_.resize(n, 0);
  }
  void MarkInCore(uint32_t v) { in_core_[v] = epoch_; }
  bool InCore(uint32_t v) const { return in_core_[v] == epoch_; }

  // Flat FIFO over the current query's vertices.
  void Push(uint32_t v) { queue_.push_back(v); }
  bool QueueEmpty() const { return queue_head_ == queue_.size(); }
  uint32_t Pop() { return queue_[queue_head_++]; }

  /// Borrowable buffers; contents are unspecified on entry (callers
  /// `assign`/`resize`+fill), capacity persists across queries.
  std::vector<uint32_t>& U32(std::size_t slot) { return u32_[slot]; }
  std::vector<uint8_t>& U8(std::size_t slot) { return u8_[slot]; }

  /// Current epoch (test/diagnostic use).
  uint32_t epoch() const { return epoch_; }

  /// Test hook: jumps the epoch *forward* (e.g. near the wraparound
  /// boundary). Jumping backward would fabricate a state — stamps larger
  /// than the epoch — that cannot arise in real use.
  void SetEpochForTest(uint32_t epoch) { epoch_ = epoch; }

  /// Total bytes of owned capacity. Snapshot it after warm-up and compare
  /// after more queries to prove the steady state allocates nothing.
  std::size_t CapacityBytes() const;

  /// Attaches (or detaches, with nullptr) a cooperative cancel token. The
  /// scratch is how a token reaches the scratch-taking kernels without a
  /// signature change on every retrieval path; the owner arms/disarms it.
  void set_cancel_token(CancelToken* token) { cancel_ = token; }
  CancelToken* cancel_token() const { return cancel_; }

  /// Kernel-side stop check: one relaxed load when no token is attached
  /// or the token is disarmed. True means unwind now.
  bool CancelTick() { return cancel_ != nullptr && cancel_->Tick(); }
  /// Sticky variant for loop guards that must not consume an op tick.
  bool CancelStopped() const {
    return cancel_ != nullptr && cancel_->Stopped();
  }

 private:
  uint32_t epoch_ = 0;
  CancelToken* cancel_ = nullptr;  ///< borrowed; null = never cancelled
  std::vector<uint32_t> visited_;
  std::vector<uint32_t> in_core_;
  std::vector<uint32_t> queue_;
  std::size_t queue_head_ = 0;
  std::array<std::vector<uint32_t>, kNumU32Slots> u32_;
  std::array<std::vector<uint8_t>, kNumU8Slots> u8_;
};

/// \brief The shared BFS-collect kernel behind all three community
/// retrieval paths (`Qopt` over I_δ entries, `Qv` over core-filtered
/// adjacency, `Qo` over peel-survivor adjacency).
///
/// Starting from `q`, visits q's component breadth-first with
/// scratch-stamped membership. For each frontier vertex `u`,
/// `neighbors(u, visit)` must call `visit(to, eid)` once per admissible
/// arc — the functor owns filtering, early termination and work counting;
/// the kernel owns edge emission (each community edge is collected from
/// its lower endpoint, the library-wide convention) and frontier
/// expansion. `scratch.BeginQuery` must have been called by the caller.
///
/// Cancellation: an attached armed token stops the walk at the next
/// frontier pop; the caller observes the partial result through
/// `CancelStopped()` and must discard it.
template <typename NeighborsFn>
void CollectCommunityBfs(QueryScratch& scratch, const BipartiteGraph& g,
                         VertexId q, std::vector<EdgeId>& out_edges,
                         NeighborsFn&& neighbors) {
  scratch.TryVisit(q);
  scratch.Push(q);
  while (!scratch.QueueEmpty()) {
    if (scratch.CancelStopped()) return;
    const VertexId u = scratch.Pop();
    const bool emit = !g.IsUpper(u);
    neighbors(u, [&](VertexId to, EdgeId eid) {
      if (emit) out_edges.push_back(eid);
      if (scratch.TryVisit(to)) scratch.Push(to);
    });
  }
}

}  // namespace abcs

#endif  // ABCS_CORE_QUERY_SCRATCH_H_
