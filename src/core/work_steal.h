#ifndef ABCS_CORE_WORK_STEAL_H_
#define ABCS_CORE_WORK_STEAL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace abcs {

/// \brief Lock-free work-stealing partition of the index range [0, n).
///
/// Replaces the old static round-robin split in `QueryEngine` batches,
/// where one slow query stalled every request striped behind it on the
/// same worker (the online-method p99 cliff in BENCH_query: p50 0.78 ms
/// vs p99 12.8 ms at 4 threads). Here every worker starts with one
/// contiguous chunk of the batch; a worker that drains its chunk steals
/// the upper half of the largest remaining victim chunk, so queued work
/// behind a long-running query is redistributed instead of waiting.
///
/// Each worker's remaining range is packed into one 64-bit word
/// (`begin` in the low half, `end` in the high half) so both the owner's
/// pop-front and a thief's split-in-half are single compare-exchanges on
/// the same word — linearizable, ABA-free (begin is monotone within a
/// slot between installs), and clean under ThreadSanitizer. Every index
/// in [0, n) is returned exactly once across all workers, so batch
/// results stay bit-identical to the round-robin dispatch for any thread
/// count: `outcomes[i]` is written by whichever worker executes `i`.
///
/// The only non-atomic ordering subtlety: a thief holds the stolen range
/// "in hand" between detaching it from the victim and installing it into
/// its own slot. A concurrent scanner can momentarily observe all slots
/// empty and retire — that worker merely stops early; the holder still
/// executes the range, so no index is lost or duplicated.
class WorkStealingRanges {
 public:
  static constexpr std::size_t kDone = static_cast<std::size_t>(-1);

  /// Splits [0, n) into `workers` contiguous chunks (chunk w ends where
  /// chunk w+1 begins; sizes differ by at most one).
  WorkStealingRanges(std::size_t n, unsigned workers)
      : slots_(workers), num_workers_(workers) {
    const std::size_t base = n / workers;
    const std::size_t extra = n % workers;
    std::size_t begin = 0;
    for (unsigned w = 0; w < workers; ++w) {
      const std::size_t len = base + (w < extra ? 1 : 0);
      slots_[w].range.store(Pack(begin, begin + len),
                            std::memory_order_relaxed);
      begin += len;
    }
  }

  /// Returns the next index for worker `t`, or `kDone` when no work is
  /// visible anywhere. Pops the front of the own chunk; on empty, steals
  /// the upper half of the largest victim chunk.
  std::size_t Next(unsigned t) {
    for (;;) {
      std::size_t idx;
      if (PopFront(slots_[t], &idx)) return idx;
      if (!StealInto(t)) return kDone;
    }
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> range{0};
  };

  static uint64_t Pack(std::size_t begin, std::size_t end) {
    return (static_cast<uint64_t>(end) << 32) | static_cast<uint64_t>(begin);
  }
  static uint32_t Begin(uint64_t r) { return static_cast<uint32_t>(r); }
  static uint32_t End(uint64_t r) { return static_cast<uint32_t>(r >> 32); }

  bool PopFront(Slot& slot, std::size_t* idx) {
    uint64_t r = slot.range.load(std::memory_order_acquire);
    while (Begin(r) < End(r)) {
      if (slot.range.compare_exchange_weak(r, Pack(Begin(r) + 1, End(r)),
                                           std::memory_order_acq_rel)) {
        *idx = Begin(r);
        return true;
      }
    }
    return false;
  }

  /// Detaches the upper half of the largest victim range and installs it
  /// as worker `t`'s own chunk. Installing into the own slot is safe
  /// because thieves never touch a slot they observed empty, and the own
  /// slot is empty whenever this runs.
  bool StealInto(unsigned t) {
    for (unsigned step = 1; step < num_workers_; ++step) {
      Slot& victim = slots_[(t + step) % num_workers_];
      uint64_t r = victim.range.load(std::memory_order_acquire);
      while (Begin(r) < End(r)) {
        const uint32_t mid =
            Begin(r) + (End(r) - Begin(r)) / 2;  // lower half stays
        if (victim.range.compare_exchange_weak(r, Pack(Begin(r), mid),
                                               std::memory_order_acq_rel)) {
          slots_[t].range.store(Pack(mid, End(r)), std::memory_order_release);
          return true;
        }
      }
    }
    return false;
  }

  std::vector<Slot> slots_;
  unsigned num_workers_;
};

}  // namespace abcs

#endif  // ABCS_CORE_WORK_STEAL_H_
