#include "core/basic_index.h"

#include <algorithm>
#include <deque>

#include "abcore/offsets.h"
#include "common/timer.h"

namespace abcs {

Status BasicIndex::Build(const BipartiteGraph& g, BasicIndexSide side,
                         const BasicIndexBuildOptions& options,
                         BasicIndex* out) {
  Timer timer;
  BasicIndex index;
  index.graph_ = &g;
  index.side_ = side;
  index.max_level_ = (side == BasicIndexSide::kAlpha) ? g.MaxUpperDegree()
                                                      : g.MaxLowerDegree();
  const uint32_t n = g.NumVertices();
  index.lists_.resize(n);
  for (VertexLists& vl : index.lists_) vl.level_start.push_back(0);

  std::size_t total_entries = 0;
  for (uint32_t level = 1; level <= index.max_level_; ++level) {
    const std::vector<uint32_t> offset =
        (side == BasicIndexSide::kAlpha) ? ComputeAlphaOffsets(g, level)
                                         : ComputeBetaOffsets(g, level);
    bool any = false;
    for (VertexId u = 0; u < n; ++u) {
      if (offset[u] < 1) continue;
      any = true;
      VertexLists& vl = index.lists_[u];
      // Levels are contiguous (cores nest), so this level extends the list.
      const uint32_t begin = vl.level_start.back();
      for (const Arc& a : g.Neighbors(u)) {
        if (offset[a.to] >= 1) {
          vl.entries.push_back(Entry{a.to, a.eid, offset[a.to]});
        }
      }
      std::sort(vl.entries.begin() + begin, vl.entries.end(),
                [](const Entry& x, const Entry& y) {
                  if (x.offset != y.offset) return x.offset > y.offset;
                  return x.to < y.to;
                });
      vl.level_start.push_back(static_cast<uint32_t>(vl.entries.size()));
      vl.self_offset.push_back(offset[u]);
      total_entries += vl.entries.size() - begin;
    }
    if (!any) break;  // all higher levels are empty too
    if (timer.Seconds() > options.max_seconds) {
      return Status::NotSupported("basic index build exceeded time budget");
    }
    if (total_entries > options.max_entries) {
      return Status::NotSupported("basic index build exceeded entry budget");
    }
  }
  *out = std::move(index);
  return Status::OK();
}

std::size_t BasicIndex::EstimateEntries(const BipartiteGraph& g,
                                        BasicIndexSide side) {
  // An arc (u → v) is stored at every level ℓ where both endpoints are in
  // the (ℓ,1)-core (α side) resp. (1,ℓ)-core (β side); the largest such ℓ
  // per vertex is its offset at the other parameter fixed to 1.
  const std::vector<uint32_t> reach = (side == BasicIndexSide::kAlpha)
                                          ? ComputeBetaOffsets(g, 1)
                                          : ComputeAlphaOffsets(g, 1);
  std::size_t total = 0;
  for (const Edge& e : g.Edges()) {
    total += 2ull * std::min(reach[e.u], reach[e.v]);
  }
  return total;
}

Subgraph BasicIndex::QueryCommunity(VertexId q, uint32_t alpha, uint32_t beta,
                                    QueryStats* stats) const {
  Subgraph result;
  const BipartiteGraph& g = *graph_;
  if (q >= g.NumVertices()) return result;

  const uint32_t level = (side_ == BasicIndexSide::kAlpha) ? alpha : beta;
  const uint32_t need = (side_ == BasicIndexSide::kAlpha) ? beta : alpha;
  if (level == 0 || need == 0 || level > max_level_) return result;

  auto has_level = [&](VertexId v) {
    return lists_[v].level_start.size() > level;
  };
  if (!has_level(q) || lists_[q].self_offset[level - 1] < need) {
    return result;  // q is not in the (α,β)-core
  }

  std::vector<uint8_t> visited(g.NumVertices(), 0);
  std::deque<VertexId> queue{q};
  visited[q] = 1;
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    const VertexLists& vl = lists_[u];
    const uint32_t begin = vl.level_start[level - 1];
    const uint32_t end = vl.level_start[level];
    for (uint32_t i = begin; i < end; ++i) {
      const Entry& entry = vl.entries[i];
      if (stats) ++stats->touched_arcs;
      if (entry.offset < need) break;  // sorted: rest is below threshold
      if (!g.IsUpper(u)) result.edges.push_back(entry.eid);
      if (!visited[entry.to]) {
        visited[entry.to] = 1;
        queue.push_back(entry.to);
      }
    }
  }
  return result;
}

std::size_t BasicIndex::NumEntries() const {
  std::size_t total = 0;
  for (const VertexLists& vl : lists_) total += vl.entries.size();
  return total;
}

std::size_t BasicIndex::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const VertexLists& vl : lists_) {
    bytes += vl.entries.size() * sizeof(Entry);
    bytes += vl.level_start.size() * sizeof(uint32_t);
    bytes += vl.self_offset.size() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace abcs
