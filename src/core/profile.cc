#include "core/profile.h"

#include "core/scs_auto.h"

namespace abcs {

SignificanceProfile ComputeSignificanceProfile(const BipartiteGraph& g,
                                               const DeltaIndex& index,
                                               VertexId q, uint32_t max_alpha,
                                               uint32_t max_beta) {
  SignificanceProfile profile;
  profile.max_alpha = max_alpha;
  profile.max_beta = max_beta;
  profile.values.assign(static_cast<std::size_t>(max_alpha) * max_beta, 0.0);
  profile.exists.assign(profile.values.size(), 0);
  // One scratch + one community buffer + one SCS workspace serve the whole
  // grid: the O(αβ) cells reuse capacity (including the LocalGraph's rank
  // sort buffers) instead of allocating O(n) state per cell, and the
  // planner picks the cheapest kernel per cell.
  QueryScratch scratch;
  ScsWorkspace workspace;
  Subgraph c;
  ScsResult r;
  for (uint32_t alpha = 1; alpha <= max_alpha; ++alpha) {
    for (uint32_t beta = 1; beta <= max_beta; ++beta) {
      index.QueryCommunity(q, alpha, beta, scratch, &c);
      if (c.Empty()) continue;  // all larger β are empty too, but cheap
      ScsQueryInto(g, c, q, alpha, beta, ScsAlgo::kAuto, {}, &r, nullptr,
                   &scratch, &workspace);
      if (!r.found) continue;
      const std::size_t cell =
          static_cast<std::size_t>(alpha - 1) * max_beta + (beta - 1);
      profile.values[cell] = r.significance;
      profile.exists[cell] = 1;
    }
  }
  return profile;
}

}  // namespace abcs
