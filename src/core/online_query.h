#ifndef ABCS_CORE_ONLINE_QUERY_H_
#define ABCS_CORE_ONLINE_QUERY_H_

#include "core/query_scratch.h"
#include "core/query_stats.h"
#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief The index-free query algorithm `Qo` (Ding et al., CIKM'17 — the
/// paper's [16]): peel `g` to its (α,β)-core, then BFS from `q` inside the
/// core collecting the (α,β)-community.
///
/// O(m) per query regardless of the community size — the baseline the
/// indexes beat. Returns an empty subgraph when `q` is not in the core.
Subgraph QueryCommunityOnline(const BipartiteGraph& g, VertexId q,
                              uint32_t alpha, uint32_t beta,
                              QueryStats* stats = nullptr);

/// Scratch-backed `Qo`: identical result; the peel's deg/alive/work-queue
/// buffers and the BFS state live in `scratch`, the edges go into `*out`
/// (cleared first, capacity reused). Still O(m) work per query, but zero
/// steady-state heap allocations.
void QueryCommunityOnline(const BipartiteGraph& g, VertexId q, uint32_t alpha,
                          uint32_t beta, QueryScratch& scratch, Subgraph* out,
                          QueryStats* stats = nullptr);

}  // namespace abcs

#endif  // ABCS_CORE_ONLINE_QUERY_H_
