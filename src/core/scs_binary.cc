#include "core/scs_binary.h"

#include <algorithm>

#include "abcore/peel_kernel.h"

namespace abcs {

namespace {

/// Peels the subgraph {edges of lg with weight >= w} to (α,β) stability.
/// Returns true and fills `alive_edges`/`deg` iff q survives (`deg` is
/// meaningful only for vertices that survive the peel).
///
/// Runs the shared threshold kernel with an edge-killing adjacency: a
/// removed vertex's live edges die with it, and only live edges count as
/// arcs, so a live edge never points at a dead vertex.
bool FeasibleAt(const LocalGraph& lg, uint32_t lq, uint32_t alpha,
                uint32_t beta, Weight w, std::vector<uint8_t>* alive_edges,
                std::vector<uint32_t>* deg, ScsStats* stats) {
  const uint32_t n = lg.NumVertices();
  const uint32_t m = lg.NumEdges();
  auto threshold = [&](uint32_t x) {
    return lg.IsUpperLocal(x) ? alpha : beta;
  };
  alive_edges->assign(m, 0);
  deg->assign(n, 0);
  for (uint32_t pos = 0; pos < m; ++pos) {
    const LocalGraph::LocalEdge& le = lg.edges()[pos];
    if (le.w >= w) {
      (*alive_edges)[pos] = 1;
      ++(*deg)[le.u];
      ++(*deg)[le.v];
    }
  }
  std::vector<uint8_t> alive(n, 1);
  ThresholdPeel(
      n, *deg, alive,
      [&](uint32_t x, auto&& visit) {
        for (const LocalGraph::LocalArc& a : lg.Neighbors(x)) {
          if (!(*alive_edges)[a.pos]) continue;
          (*alive_edges)[a.pos] = 0;
          if (stats) ++stats->edges_processed;
          --(*deg)[x];
          visit(a.to);
        }
      },
      threshold, [](uint32_t) {});
  if (stats) ++stats->validations;
  return alive[lq] && (*deg)[lq] >= threshold(lq);
}

}  // namespace

ScsResult ScsBinary(const BipartiteGraph& g, const Subgraph& community,
                    VertexId q, uint32_t alpha, uint32_t beta,
                    ScsStats* stats) {
  ScsResult result;
  if (community.Empty() || alpha == 0 || beta == 0) return result;
  LocalGraph lg(g, community.edges);
  const uint32_t lq = lg.LocalId(q);
  if (lq == kInvalidVertex) return result;

  std::vector<Weight> weights;
  weights.reserve(lg.NumEdges());
  for (const LocalGraph::LocalEdge& le : lg.edges()) weights.push_back(le.w);
  std::sort(weights.begin(), weights.end());
  weights.erase(std::unique(weights.begin(), weights.end()), weights.end());

  std::vector<uint8_t> alive;
  std::vector<uint32_t> deg;

  // Invariant: feasible at weights[lo] (or infeasible everywhere).
  if (!FeasibleAt(lg, lq, alpha, beta, weights.front(), &alive, &deg,
                  stats)) {
    return result;  // even the whole community does not support q
  }
  std::size_t lo = 0, hi = weights.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    std::vector<uint8_t> alive_mid;
    std::vector<uint32_t> deg_mid;
    if (FeasibleAt(lg, lq, alpha, beta, weights[mid], &alive_mid, &deg_mid,
                   stats)) {
      lo = mid;
      alive = std::move(alive_mid);
      deg = std::move(deg_mid);
    } else {
      hi = mid - 1;
    }
  }

  // Extract q's connected component of the stable subgraph at weights[lo].
  const uint32_t n = lg.NumVertices();
  std::vector<uint8_t> visited(n, 0);
  std::vector<uint32_t> stack{lq};
  visited[lq] = 1;
  Weight fmin = weights[lo];
  bool first = true;
  while (!stack.empty()) {
    uint32_t x = stack.back();
    stack.pop_back();
    for (const LocalGraph::LocalArc& a : lg.Neighbors(x)) {
      if (!alive[a.pos]) continue;
      if (!lg.IsUpperLocal(x)) {
        result.community.edges.push_back(lg.edges()[a.pos].global);
        const Weight we = lg.edges()[a.pos].w;
        fmin = first ? we : std::min(fmin, we);
        first = false;
      }
      if (!visited[a.to]) {
        visited[a.to] = 1;
        stack.push_back(a.to);
      }
    }
  }
  result.significance = fmin;
  result.found = true;
  return result;
}

}  // namespace abcs
