#include "core/scs_binary.h"

#include <algorithm>
#include <numeric>

#include "abcore/peel_kernel.h"

namespace abcs {

namespace {

// ----------------------------------------------------------------------
// The pre-PR implementation, preserved for ScsBinaryFreshPeel: the old
// LocalGraph (input-order edges, endpoint sort + binary-searched id map,
// no rank table) and the old FeasibleAt, exactly as they ran before the
// weight-rank rework. They exist so the benches and tests can compare the
// incremental machinery against the real historical cost model.
// ----------------------------------------------------------------------

class LegacyLocalGraph {
 public:
  struct LocalEdge {
    uint32_t u;
    uint32_t v;
    Weight w;
    EdgeId global;
  };
  struct LocalArc {
    uint32_t to;
    uint32_t pos;
  };

  LegacyLocalGraph(const BipartiteGraph& g, const std::vector<EdgeId>& edges) {
    std::vector<VertexId> verts;
    verts.reserve(edges.size() * 2);
    for (EdgeId e : edges) {
      const Edge& ed = g.GetEdge(e);
      verts.push_back(ed.u);
      verts.push_back(ed.v);
    }
    std::sort(verts.begin(), verts.end());
    verts.erase(std::unique(verts.begin(), verts.end()), verts.end());

    global_of_ = verts;
    is_upper_.resize(verts.size());
    id_map_.reserve(verts.size());
    for (uint32_t i = 0; i < verts.size(); ++i) {
      is_upper_[i] = g.IsUpper(verts[i]) ? 1 : 0;
      id_map_.emplace_back(verts[i], i);
    }

    edges_.reserve(edges.size());
    for (EdgeId e : edges) {
      const Edge& ed = g.GetEdge(e);
      edges_.push_back(LocalEdge{LocalId(ed.u), LocalId(ed.v), ed.w, e});
    }

    const uint32_t n = NumVertices();
    offsets_.assign(n + 1, 0);
    for (const LocalEdge& le : edges_) {
      ++offsets_[le.u + 1];
      ++offsets_[le.v + 1];
    }
    std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());
    arcs_.resize(2 * edges_.size());
    std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (uint32_t pos = 0; pos < edges_.size(); ++pos) {
      const LocalEdge& le = edges_[pos];
      arcs_[cursor[le.u]++] = LocalArc{le.v, pos};
      arcs_[cursor[le.v]++] = LocalArc{le.u, pos};
    }
  }

  uint32_t NumVertices() const {
    return static_cast<uint32_t>(global_of_.size());
  }
  uint32_t NumEdges() const { return static_cast<uint32_t>(edges_.size()); }
  const std::vector<LocalEdge>& edges() const { return edges_; }

  uint32_t LocalId(VertexId global) const {
    auto it = std::lower_bound(
        id_map_.begin(), id_map_.end(), global,
        [](const std::pair<VertexId, uint32_t>& p, VertexId v) {
          return p.first < v;
        });
    if (it == id_map_.end() || it->first != global) return kInvalidVertex;
    return it->second;
  }
  bool IsUpperLocal(uint32_t local) const { return is_upper_[local] != 0; }

  std::span<const LocalArc> Neighbors(uint32_t local) const {
    return {arcs_.data() + offsets_[local],
            offsets_[local + 1] - offsets_[local]};
  }

 private:
  std::vector<VertexId> global_of_;
  std::vector<uint8_t> is_upper_;
  std::vector<LocalEdge> edges_;
  std::vector<uint32_t> offsets_;
  std::vector<LocalArc> arcs_;
  std::vector<std::pair<VertexId, uint32_t>> id_map_;
};

/// The pre-PR feasibility probe: peels {edges of lg with weight >= w} to
/// (α,β) stability with freshly built degrees and liveness.
bool LegacyFeasibleAt(const LegacyLocalGraph& lg, uint32_t lq, uint32_t alpha,
                      uint32_t beta, Weight w,
                      std::vector<uint8_t>* alive_edges,
                      std::vector<uint32_t>* deg, ScsStats* stats) {
  const uint32_t n = lg.NumVertices();
  const uint32_t m = lg.NumEdges();
  auto threshold = [&](uint32_t x) {
    return lg.IsUpperLocal(x) ? alpha : beta;
  };
  alive_edges->assign(m, 0);
  deg->assign(n, 0);
  for (uint32_t pos = 0; pos < m; ++pos) {
    const LegacyLocalGraph::LocalEdge& le = lg.edges()[pos];
    if (le.w >= w) {
      (*alive_edges)[pos] = 1;
      ++(*deg)[le.u];
      ++(*deg)[le.v];
    }
  }
  std::vector<uint8_t> alive(n, 1);
  ThresholdPeel(
      n, *deg, alive,
      [&](uint32_t x, auto&& visit) {
        for (const LegacyLocalGraph::LocalArc& a : lg.Neighbors(x)) {
          if (!(*alive_edges)[a.pos]) continue;
          (*alive_edges)[a.pos] = 0;
          if (stats) ++stats->edges_processed;
          --(*deg)[x];
          visit(a.to);
        }
      },
      threshold, [](uint32_t) {});
  if (stats) ++stats->validations;
  return alive[lq] && (*deg)[lq] >= threshold(lq);
}

/// From-scratch stable peel of the rank prefix [0, prefix_end): fills
/// `alive` (per-rank) and `deg` and returns whether q survives. The
/// fresh-peel baseline path; the incremental path never calls this.
bool FreshPeelPrefix(const LocalGraph& lg, uint32_t lq, uint32_t alpha,
                     uint32_t beta, uint32_t prefix_end,
                     std::vector<uint8_t>* alive, std::vector<uint32_t>* deg,
                     ScsStats* stats) {
  const uint32_t n = lg.NumVertices();
  const uint32_t m = lg.NumEdges();
  auto threshold = [&](uint32_t x) {
    return lg.IsUpperLocal(x) ? alpha : beta;
  };
  alive->assign(m, 0);
  deg->assign(n, 0);
  for (uint32_t r = 0; r < prefix_end; ++r) {
    const LocalGraph::LocalEdge& le = lg.edges()[r];
    (*alive)[r] = 1;
    ++(*deg)[le.u];
    ++(*deg)[le.v];
  }
  std::vector<uint32_t> cascade;
  for (uint32_t x = 0; x < n; ++x) {
    if ((*deg)[x] > 0 && (*deg)[x] < threshold(x)) cascade.push_back(x);
  }
  while (!cascade.empty()) {
    const uint32_t x = cascade.back();
    cascade.pop_back();
    if ((*deg)[x] >= threshold(x) || (*deg)[x] == 0) continue;
    for (const LocalGraph::LocalArc& a : lg.Neighbors(x)) {
      if (!(*alive)[a.pos]) continue;
      (*alive)[a.pos] = 0;
      if (stats) ++stats->edges_processed;
      --(*deg)[x];
      --(*deg)[a.to];
      if ((*deg)[a.to] < threshold(a.to)) cascade.push_back(a.to);
    }
  }
  if (stats) ++stats->validations;
  return (*deg)[lq] >= threshold(lq);
}

}  // namespace

void ScsBinaryOnLocal(const LocalGraph& lg, VertexId q, uint32_t alpha,
                      uint32_t beta, ScsResult* out, ScsStats* stats,
                      QueryScratch& s, std::vector<ScsProbe>* probe_log) {
  out->community.edges.clear();
  out->significance = 0;
  out->found = false;
  if (stats) stats->algo_used = ScsAlgo::kBinary;
  if (alpha == 0 || beta == 0) return;
  const uint32_t lq = lg.LocalId(q);
  if (lq == kInvalidVertex || lg.NumEdges() == 0) return;

  const uint32_t n = lg.NumVertices();
  const uint32_t m = lg.NumEdges();
  auto threshold = [&](uint32_t x) {
    return lg.IsUpperLocal(x) ? alpha : beta;
  };

  std::vector<uint32_t>& deg = s.U32(QueryScratch::kSlotDeg);
  std::vector<uint8_t>& alive = s.U8(QueryScratch::kSlotAlive);
  std::vector<uint32_t>& cascade = s.U32(QueryScratch::kSlotQueue);
  std::vector<uint32_t>& journal = s.U32(QueryScratch::kSlotJournal);

  // Opening stabilisation of the full community — the only from-scratch
  // peel of the whole search.
  deg.assign(n, 0);
  for (const LocalGraph::LocalEdge& le : lg.edges()) {
    ++deg[le.u];
    ++deg[le.v];
  }
  alive.assign(m, 1);
  cascade.clear();
  auto kill = [&](uint32_t r, std::vector<uint32_t>* sink) {
    s.CancelTick();
    const LocalGraph::LocalEdge& le = lg.edges()[r];
    alive[r] = 0;
    if (sink) sink->push_back(r);
    if (stats) ++stats->edges_processed;
    --deg[le.u];
    --deg[le.v];
    if (deg[le.u] < threshold(le.u)) cascade.push_back(le.u);
    if (deg[le.v] < threshold(le.v)) cascade.push_back(le.v);
  };
  auto run_cascade = [&](std::vector<uint32_t>* sink) {
    while (!cascade.empty()) {
      const uint32_t x = cascade.back();
      cascade.pop_back();
      if (deg[x] >= threshold(x) || deg[x] == 0) continue;
      for (const LocalGraph::LocalArc& a : lg.Neighbors(x)) {
        if (alive[a.pos]) kill(a.pos, sink);
      }
    }
  };
  for (uint32_t x = 0; x < n; ++x) {
    if (deg[x] < threshold(x)) cascade.push_back(x);
  }
  run_cascade(nullptr);
  if (stats) ++stats->validations;
  if (s.CancelStopped()) return;  // per-query state: abandonment is free
  if (deg[lq] < threshold(lq)) return;  // infeasible even on the whole pool

  // Binary search over distinct-weight indices (descending weights, so
  // larger index = longer prefix = more feasible). Invariant: the working
  // state is the stable peel of prefix `cur_end` = PrefixEnd(hi), and hi is
  // feasible. A probe at a shorter prefix peels down from that state with
  // every kill journaled: commit on feasible, undo on infeasible.
  uint32_t cur_end = m;
  auto probe = [&](uint32_t target_end) {
    journal.clear();
    for (uint32_t r = target_end; r < cur_end; ++r) {
      if (alive[r]) kill(r, &journal);
    }
    run_cascade(&journal);
    const bool feasible = deg[lq] >= threshold(lq);
    if (stats) ++stats->incremental_probes;
    if (probe_log) probe_log->push_back(ScsProbe{target_end, feasible});
    if (feasible) {
      cur_end = target_end;
    } else {
      for (auto it = journal.rbegin(); it != journal.rend(); ++it) {
        const LocalGraph::LocalEdge& le = lg.edges()[*it];
        alive[*it] = 1;
        ++deg[le.u];
        ++deg[le.v];
      }
      if (stats) stats->edges_processed += journal.size();
    }
    return feasible;
  };

  uint32_t lo = 0, hi = lg.NumDistinctWeights() - 1;
  while (lo < hi) {
    // A cancel mid-probe abandons the search with `found = false`; every
    // peel structure here is a per-query scratch slot (re-`assign`ed on
    // the next query), so no unwind beyond the probe's own journal is
    // needed and the workspace stays reusable bit-identically.
    if (s.CancelStopped()) return;
    const uint32_t mid = lo + (hi - lo) / 2;  // mid < hi
    if (probe(lg.PrefixEnd(mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (s.CancelStopped()) return;
  ExtractAliveComponent(lg, lq, alive, lg.DistinctWeight(hi), s, out);
}

ScsResult ScsBinary(const BipartiteGraph& g, const Subgraph& community,
                    VertexId q, uint32_t alpha, uint32_t beta, ScsStats* stats,
                    QueryScratch* scratch, ScsWorkspace* workspace) {
  ScsResult result;
  if (community.Empty() || alpha == 0 || beta == 0) return result;
  QueryScratch local_scratch;
  QueryScratch& s = scratch ? *scratch : local_scratch;
  ScsWorkspace local_ws;
  ScsWorkspace& ws = workspace ? *workspace : local_ws;
  ws.lg.BuildFrom(g, community.edges);
  ScsBinaryOnLocal(ws.lg, q, alpha, beta, &result, stats, s);
  return result;
}

bool ScsFeasibleFreshPeel(const LocalGraph& lg, VertexId q, uint32_t alpha,
                          uint32_t beta, uint32_t prefix_end) {
  const uint32_t lq = lg.LocalId(q);
  if (lq == kInvalidVertex || alpha == 0 || beta == 0) return false;
  std::vector<uint8_t> alive;
  std::vector<uint32_t> deg;
  return FreshPeelPrefix(lg, lq, alpha, beta, prefix_end, &alive, &deg,
                         nullptr);
}

ScsResult ScsBinaryFreshPeel(const BipartiteGraph& g, const Subgraph& community,
                             VertexId q, uint32_t alpha, uint32_t beta,
                             ScsStats* stats) {
  // This is the pre-incremental implementation preserved verbatim (modulo
  // the legacy LocalGraph being inlined below) in behaviour *and* cost
  // model: the pre-rework local view rebuilt per call — endpoint sort +
  // binary-searched id map, input-order edges, no rank table — a per-call
  // weight collection + sort, and one from-scratch FeasibleAt peel (freshly
  // allocated alive/deg arrays, full edge rescan) per binary-search step.
  // Do not "improve" it; BENCH_scs.json measures the incremental kernel
  // against exactly this.
  ScsResult result;
  if (stats) stats->algo_used = ScsAlgo::kBinary;
  if (community.Empty() || alpha == 0 || beta == 0) return result;
  const LegacyLocalGraph lg(g, community.edges);
  const uint32_t lq = lg.LocalId(q);
  if (lq == kInvalidVertex) return result;

  std::vector<Weight> weights;
  weights.reserve(lg.NumEdges());
  for (const LegacyLocalGraph::LocalEdge& le : lg.edges()) {
    weights.push_back(le.w);
  }
  std::sort(weights.begin(), weights.end());
  weights.erase(std::unique(weights.begin(), weights.end()), weights.end());

  std::vector<uint8_t> alive;
  std::vector<uint32_t> deg;
  // Invariant: feasible at weights[lo] (or infeasible everywhere).
  if (!LegacyFeasibleAt(lg, lq, alpha, beta, weights.front(), &alive, &deg,
                        stats)) {
    return result;  // even the whole community does not support q
  }
  std::size_t lo = 0, hi = weights.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    std::vector<uint8_t> alive_mid;
    std::vector<uint32_t> deg_mid;
    if (LegacyFeasibleAt(lg, lq, alpha, beta, weights[mid], &alive_mid,
                         &deg_mid, stats)) {
      lo = mid;
      alive = std::move(alive_mid);
      deg = std::move(deg_mid);
    } else {
      hi = mid - 1;
    }
  }

  // Extract q's connected component of the stable subgraph at weights[lo].
  const uint32_t n = lg.NumVertices();
  std::vector<uint8_t> visited(n, 0);
  std::vector<uint32_t> stack{lq};
  visited[lq] = 1;
  Weight fmin = weights[lo];
  bool first = true;
  while (!stack.empty()) {
    uint32_t x = stack.back();
    stack.pop_back();
    for (const LegacyLocalGraph::LocalArc& a : lg.Neighbors(x)) {
      if (!alive[a.pos]) continue;
      if (!lg.IsUpperLocal(x)) {
        result.community.edges.push_back(lg.edges()[a.pos].global);
        const Weight we = lg.edges()[a.pos].w;
        fmin = first ? we : std::min(fmin, we);
        first = false;
      }
      if (!visited[a.to]) {
        visited[a.to] = 1;
        stack.push_back(a.to);
      }
    }
  }
  result.significance = fmin;
  result.found = true;
  return result;
}

}  // namespace abcs
