#ifndef ABCS_CORE_SCS_BINARY_H_
#define ABCS_CORE_SCS_BINARY_H_

#include <vector>

#include "core/scs_common.h"
#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// One feasibility probe of the binary search (test/diagnostic record).
struct ScsProbe {
  uint32_t prefix_end = 0;  ///< rank prefix length probed
  bool feasible = false;    ///< did q survive the (α,β)-peel of that prefix
};

/// \brief SCS-Binary (paper §IV-B remark), incremental: binary search over
/// the distinct edge weights of `lg` with feasibility probes that *share
/// surviving degrees* across steps.
///
/// feasible(w) := q survives peeling {e : w(e) ≥ w} to (α,β); monotone in
/// w. The search maintains the stable peel state of its current feasible
/// prefix. Moving the threshold up (shorter prefix) peels down from that
/// state, journaling every kill; a feasible probe commits the new state, an
/// infeasible one undoes the journal. Total work is therefore proportional
/// to the edges that actually change state per probe — after the single
/// opening stabilisation, no probe rebuilds degrees or rescans the edge
/// set, which on duplicate-weight-heavy inputs collapses the classic
/// O(size(C)·log W) to O(size(C)).
///
/// `probe_log`, when supplied, records every (prefix_end, feasible) pair in
/// probe order — the stress tests replay it against from-scratch peels.
void ScsBinaryOnLocal(const LocalGraph& lg, VertexId q, uint32_t alpha,
                      uint32_t beta, ScsResult* out, ScsStats* stats,
                      QueryScratch& scratch,
                      std::vector<ScsProbe>* probe_log = nullptr);

/// Convenience wrapper: builds (or reuses, via `workspace`) the weight-rank
/// LocalGraph of `community` and runs the incremental search.
ScsResult ScsBinary(const BipartiteGraph& g, const Subgraph& community,
                    VertexId q, uint32_t alpha, uint32_t beta,
                    ScsStats* stats = nullptr, QueryScratch* scratch = nullptr,
                    ScsWorkspace* workspace = nullptr);

/// From-scratch feasibility at a rank prefix: peels {ranks < prefix_end} to
/// (α,β) with freshly built degrees. Reference for the incremental probes
/// (tests) and the building block of `ScsBinaryFreshPeel`.
bool ScsFeasibleFreshPeel(const LocalGraph& lg, VertexId q, uint32_t alpha,
                          uint32_t beta, uint32_t prefix_end);

/// \brief The pre-incremental SCS-Binary: every binary-search step re-peels
/// its threshold subgraph from scratch (O(size(C)) per probe, O(size(C)·
/// log W) total). Kept as the like-for-like baseline for BENCH_scs.json and
/// the equivalence tests; results are bit-identical to `ScsBinary`.
ScsResult ScsBinaryFreshPeel(const BipartiteGraph& g, const Subgraph& community,
                             VertexId q, uint32_t alpha, uint32_t beta,
                             ScsStats* stats = nullptr);

}  // namespace abcs

#endif  // ABCS_CORE_SCS_BINARY_H_
