#ifndef ABCS_CORE_SCS_BINARY_H_
#define ABCS_CORE_SCS_BINARY_H_

#include "core/scs_common.h"
#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief SCS-Binary (paper §IV-B remark): binary search over the distinct
/// edge weights of C_{α,β}(q).
///
/// feasible(w) := q survives peeling the subgraph {e ∈ C : w(e) ≥ w} to
/// (α,β); feasibility is monotone in w, so the maximal feasible weight w*
/// is found with O(log W) peels of O(size(C)) each, and R is q's component
/// of the stable subgraph at w*. The paper reports 0.86×–1.08× the running
/// time of SCS-Expand; it shines when few distinct weights exist.
ScsResult ScsBinary(const BipartiteGraph& g, const Subgraph& community,
                    VertexId q, uint32_t alpha, uint32_t beta,
                    ScsStats* stats = nullptr);

}  // namespace abcs

#endif  // ABCS_CORE_SCS_BINARY_H_
