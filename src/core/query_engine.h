#ifndef ABCS_CORE_QUERY_ENGINE_H_
#define ABCS_CORE_QUERY_ENGINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "core/online_query.h"
#include "core/query_scratch.h"
#include "core/query_stats.h"
#include "core/scs_common.h"
#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// Which retrieval algorithm serves a query: the index-free baseline `Qo`,
/// the bicore-index `Qv`, or the degeneracy-bounded `Qopt`.
enum class QueryMethod { kOnline, kBicore, kDelta };

/// Returns "online" / "bicore" / "delta".
const char* QueryMethodName(QueryMethod method);

/// How a batch is split across worker threads.
///
///  - `kWorkStealing` (default): workers start with contiguous chunks and
///    steal half of the largest remaining chunk when theirs drains (see
///    core/work_steal.h). One slow query no longer stalls every request
///    queued behind it on the same lane — this is what flattens the
///    online-method p99 cliff (p50 0.78 ms vs p99 12.8 ms @4 threads in
///    BENCH_query.baseline.json).
///  - `kRoundRobin`: the pre-serve static stripe (worker t owns t, t+T,
///    t+2T, …). Kept as the bench/test baseline for the scheduler
///    comparison; results are bit-identical either way.
enum class Dispatch { kWorkStealing, kRoundRobin };

/// Returns "work-steal" / "round-robin".
const char* DispatchName(Dispatch dispatch);

/// One community retrieval request.
struct QueryRequest {
  VertexId q = 0;
  uint32_t alpha = 1;
  uint32_t beta = 1;
};

/// Deterministic per-query outcome (latency excluded from determinism).
struct QueryOutcome {
  uint32_t num_edges = 0;      ///< size(C_{α,β}(q))
  uint64_t touched_arcs = 0;   ///< work counter (see QueryStats)
  double seconds = 0.0;        ///< per-query latency
  /// The per-query deadline fired mid-execution: the query unwound
  /// cooperatively and answered empty. Always false when
  /// `BatchOptions::deadline_ms` is 0 (the default), so undeadlined
  /// batches stay bit-identical to the pre-cancellation engine.
  bool deadline_exceeded = false;
};

/// Aggregates over one batch.
struct BatchStats {
  uint64_t num_queries = 0;
  uint64_t num_nonempty = 0;
  uint64_t total_edges = 0;    ///< Σ size(C)
  uint64_t touched_arcs = 0;   ///< Σ per-query touched arcs
  double total_seconds = 0.0;  ///< Σ per-query latencies (CPU-side)
  double p50_seconds = 0.0;    ///< median per-query latency
  double p99_seconds = 0.0;    ///< 99th-percentile per-query latency
};

/// Options for `QueryEngine::RunBatch`.
struct BatchOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = serial (default).
  unsigned num_threads = 1;
  /// Work distribution across the workers (identical results either way).
  Dispatch dispatch = Dispatch::kWorkStealing;
  /// Retain every community's edge set in `BatchResult::communities`
  /// (costs one allocation per non-empty result; off for throughput runs).
  bool keep_communities = false;
  /// Per-query execution budget in milliseconds, enforced cooperatively
  /// inside the kernels (`CancelToken` through `QueryScratch`). 0 (the
  /// default) disarms the token entirely — one relaxed load per edge-op,
  /// bit-identical results. An overrunning query stops, answers empty and
  /// sets `QueryOutcome::deadline_exceeded`.
  uint32_t deadline_ms = 0;
};

/// Result of a batch run. `outcomes[i]` corresponds to `requests[i]`
/// regardless of the thread count, so everything except latencies is
/// deterministic.
struct BatchResult {
  std::vector<QueryOutcome> outcomes;
  std::vector<Subgraph> communities;  ///< filled iff keep_communities
  BatchStats stats;
  double wall_seconds = 0.0;
  unsigned num_threads_used = 0;  ///< resolved worker count

  double QueriesPerSecond() const {
    return wall_seconds > 0.0
               ? static_cast<double>(stats.num_queries) / wall_seconds
               : 0.0;
  }
};

/// Options for `QueryEngine::RunScsBatch`.
struct ScsBatchOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = serial (default).
  unsigned num_threads = 1;
  /// Work distribution across the workers (identical results either way).
  Dispatch dispatch = Dispatch::kWorkStealing;
  /// Kernel selection; kAuto lets the planner decide per query.
  ScsAlgo algo = ScsAlgo::kAuto;
  ScsOptions scs;
  /// Retain every R edge set in `ScsBatchResult::communities`.
  bool keep_communities = false;
  /// Per-query budget over retrieval + SCS together (see
  /// `BatchOptions::deadline_ms`). 0 = disarmed.
  uint32_t deadline_ms = 0;
};

/// Deterministic per-query SCS outcome (latency excluded from determinism).
struct ScsOutcome {
  bool found = false;
  uint32_t community_edges = 0;  ///< size(C_{α,β}(q)), the SCS input
  uint32_t result_edges = 0;     ///< size(R)
  Weight significance = 0;       ///< f(R)
  ScsAlgo algo_used = ScsAlgo::kPeel;  ///< planner decision (deterministic)
  uint32_t validations = 0;
  uint32_t incremental_probes = 0;
  uint64_t edges_processed = 0;
  double seconds = 0.0;           ///< retrieval + SCS latency
  double retrieve_seconds = 0.0;  ///< retrieval share of `seconds`
  /// The per-query deadline fired mid-execution (see QueryOutcome).
  bool deadline_exceeded = false;
};

/// Aggregates over one SCS batch.
struct ScsBatchStats {
  uint64_t num_queries = 0;
  uint64_t num_found = 0;
  uint64_t total_community_edges = 0;  ///< Σ size(C)
  uint64_t total_result_edges = 0;     ///< Σ size(R)
  uint64_t validations = 0;
  uint64_t incremental_probes = 0;
  uint64_t edges_processed = 0;
  /// Resolved-kernel histogram, indexed by ScsAlgo (kAuto slot unused).
  uint64_t algo_counts[4] = {0, 0, 0, 0};
  double total_seconds = 0.0;
  double retrieve_seconds = 0.0;  ///< Σ retrieval latencies
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// Result of an SCS batch. `outcomes[i]` matches `requests[i]` for every
/// thread count; only latencies vary.
struct ScsBatchResult {
  std::vector<ScsOutcome> outcomes;
  std::vector<Subgraph> communities;  ///< R per request iff keep_communities
  ScsBatchStats stats;
  double wall_seconds = 0.0;
  unsigned num_threads_used = 0;

  double QueriesPerSecond() const {
    return wall_seconds > 0.0
               ? static_cast<double>(stats.num_queries) / wall_seconds
               : 0.0;
  }
};

/// \brief Batched, multithreaded community-query driver.
///
/// Wraps the three retrieval paths behind one submission API: requests are
/// distributed over `num_threads` workers through a shared work-stealing
/// partition (or the legacy round-robin stripe, see `Dispatch`), each
/// worker owns a `QueryScratch` and a reusable output `Subgraph`, so the
/// steady state of a batch performs zero heap allocations per query (the
/// paper's output-sensitive bound with no hidden O(n) clearing). The
/// indexes are immutable after construction, so concurrent queries need no
/// locking, and `outcomes[i]` is written by exactly one worker regardless
/// of who executes it — results are bit-identical for every thread count
/// and either dispatch mode.
class QueryEngine {
 public:
  /// The engine borrows `g` and the indexes; they must outlive it. The
  /// index matching `method` must be non-null (`kOnline` needs neither).
  QueryEngine(const BipartiteGraph& g, QueryMethod method,
              const DeltaIndex* delta = nullptr,
              const BicoreIndex* bicore = nullptr)
      : graph_(&g), method_(method), delta_(delta), bicore_(bicore) {}

  QueryMethod method() const { return method_; }

  /// Runs one query through the configured path into caller-owned scratch
  /// and output (zero allocations after warm-up).
  void Query(const QueryRequest& request, QueryScratch& scratch,
             Subgraph* out, QueryStats* stats = nullptr) const;

  /// Runs `requests` round-robin over the configured worker count.
  BatchResult RunBatch(std::span<const QueryRequest> requests,
                       const BatchOptions& options = {}) const;

  /// Runs the full two-step paradigm per request — retrieve C_{α,β}(q)
  /// through the configured path, then extract the significant community
  /// with the selected SCS kernel (kAuto = per-query planner). Each worker
  /// owns one `QueryScratch` + `ScsWorkspace` + output buffers, so the
  /// steady state of a batch allocates nothing and results are
  /// bit-identical for every thread count.
  ScsBatchResult RunScsBatch(std::span<const QueryRequest> requests,
                             const ScsBatchOptions& options = {}) const;

 private:
  const BipartiteGraph* graph_;
  QueryMethod method_;
  const DeltaIndex* delta_;
  const BicoreIndex* bicore_;
};

}  // namespace abcs

#endif  // ABCS_CORE_QUERY_ENGINE_H_
