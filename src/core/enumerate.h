#ifndef ABCS_CORE_ENUMERATE_H_
#define ABCS_CORE_ENUMERATE_H_

#include <vector>

#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief All (α,β)-connected components of `g` (Definition 2) — every
/// (α,β)-community without fixing a query vertex.
///
/// One peel + one DSU pass: O(m + n). Components are returned in
/// ascending order of their smallest vertex id; each Subgraph lists the
/// component's edges. Useful for whole-graph analyses (e.g. counting
/// communities per parameter setting) and as a test oracle for the
/// query-based retrieval.
std::vector<Subgraph> EnumerateCommunities(const BipartiteGraph& g,
                                           uint32_t alpha, uint32_t beta);

}  // namespace abcs

#endif  // ABCS_CORE_ENUMERATE_H_
