#ifndef ABCS_CORE_PROFILE_H_
#define ABCS_CORE_PROFILE_H_

#include <cstdint>
#include <vector>

#include "core/delta_index.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief The significance profile of a query vertex: f(R) for every
/// (α,β) in [1, max_alpha] × [1, max_beta].
///
/// `values[(alpha-1) * max_beta + (beta-1)]` holds f(R) for that cell, and
/// `exists[...]` records whether a community exists at all. Because any
/// subgraph feasible at (α,β) is feasible at (α′,β′) with α′ ≤ α, β′ ≤ β,
/// the profile is non-increasing along both axes — a useful sanity check
/// and a guide for picking thresholds in applications (e.g. the strongest
/// (α,β) for which a team/community of the desired strength exists).
struct SignificanceProfile {
  uint32_t max_alpha = 0;
  uint32_t max_beta = 0;
  std::vector<Weight> values;
  std::vector<uint8_t> exists;

  Weight At(uint32_t alpha, uint32_t beta) const {
    return values[(alpha - 1) * max_beta + (beta - 1)];
  }
  bool ExistsAt(uint32_t alpha, uint32_t beta) const {
    return exists[(alpha - 1) * max_beta + (beta - 1)] != 0;
  }
};

/// Computes the profile by running SCS-Peel per cell (cells with empty
/// communities short-circuit via the index). O(max_alpha · max_beta ·
/// (sort(C) + size(C))) worst case.
SignificanceProfile ComputeSignificanceProfile(const BipartiteGraph& g,
                                               const DeltaIndex& index,
                                               VertexId q, uint32_t max_alpha,
                                               uint32_t max_beta);

}  // namespace abcs

#endif  // ABCS_CORE_PROFILE_H_
