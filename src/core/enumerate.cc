#include "core/enumerate.h"

#include <algorithm>
#include <unordered_map>

#include "abcore/peeling.h"
#include "common/dsu.h"

namespace abcs {

std::vector<Subgraph> EnumerateCommunities(const BipartiteGraph& g,
                                           uint32_t alpha, uint32_t beta) {
  const CoreResult core = ComputeAlphaBetaCore(g, alpha, beta);
  std::vector<Subgraph> out;
  if (core.Empty()) return out;

  Dsu dsu(g.NumVertices());
  for (const Edge& e : g.Edges()) {
    if (core.alive[e.u] && core.alive[e.v]) dsu.Union(e.u, e.v);
  }

  // Components keyed by root, ordered by first appearance over the edge
  // scan below; re-sorted by smallest member id for a stable API.
  std::unordered_map<uint32_t, std::size_t> slot_of_root;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& ed = g.GetEdge(e);
    if (!core.alive[ed.u] || !core.alive[ed.v]) continue;
    const uint32_t root = dsu.Find(ed.u);
    auto [it, inserted] = slot_of_root.emplace(root, out.size());
    if (inserted) out.emplace_back();
    out[it->second].edges.push_back(e);
  }
  std::sort(out.begin(), out.end(), [](const Subgraph& a, const Subgraph& b) {
    return a.edges.front() < b.edges.front();
  });
  return out;
}

}  // namespace abcs
