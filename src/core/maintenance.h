#ifndef ABCS_CORE_MAINTENANCE_H_
#define ABCS_CORE_MAINTENANCE_H_

#include <cstdint>
#include <initializer_list>
#include <utility>
#include <vector>

#include "abcore/offsets.h"
#include "abcore/peel_kernel.h"
#include "common/status.h"
#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief Dynamically maintained degeneracy-bounded index (paper §III-B,
/// "Discussion of index maintenance").
///
/// Holds a mutable copy of the graph plus the offset tables s_a(·,τ) and
/// s_b(·,τ) for every τ ≤ δ. Edge insertions and removals update the
/// offsets *locally* instead of rebuilding:
///
///  - Only (τ,β)-cores whose vertex set contains *both* endpoints of the
///    updated edge can change, so every affected vertex is reachable from
///    the edge through vertices with offset ≥ K (insertion,
///    K = min(offset(u), offset(v))) resp. ≥ 1 (removal) — the paper's
///    S⁺/S⁻ sets, found by a localized BFS.
///  - The scope is then re-peeled level by level; out-of-scope neighbours
///    act as boundary supports that expire once the level exceeds their
///    (provably unchanged) offset, making the local recomputation exact.
///    Note the classic "±1 per update" k-core bound does NOT hold here:
///    a fixed-side vertex (threshold τ at every level) can jump multiple
///    levels when it gains or loses a single high-offset neighbour, which
///    is why a full scoped re-peel is used instead of a promote/demote
///    pass.
///
/// δ itself may grow or shrink by one per update; growing triggers a full
/// offset computation for the single new level.
///
/// Queries run like `Qopt` but filter neighbours through the offset arrays
/// (touching all arcs of community vertices, not the sorted-list optimal
/// form — the static `DeltaIndex` keeps that; this class trades a small
/// query overhead for updatability).
///
/// Correctness of the incremental rules is enforced by property tests that
/// replay random update streams against full recomputation
/// (tests/maintenance_test.cc).
/// \brief A drained account of everything a `DynamicDeltaIndex` mutated
/// since the previous drain — the contract the serve memo's selective
/// invalidation relies on (src/serve/memo.h).
///
/// `touched` is a deduplicated superset of every vertex whose offsets may
/// have changed: the update endpoints plus every vertex of every scoped
/// re-peel. Any vertex absent from `touched` provably kept all its offset
/// values, hence its community memberships, for every (α,β).
struct UpdateSummary {
  uint64_t epoch = 0;             ///< index epoch at drain time
  bool topology_changed = false;  ///< any insert/remove applied
  bool weights_changed = false;   ///< any weight update applied
  bool delta_changed = false;     ///< δ grew or shrank (global effect)
  std::vector<VertexId> touched;
};

class DynamicDeltaIndex {
 public:
  /// Seeds the dynamic index from `g` (the graph is copied; `g` need not
  /// outlive the index). When `decomp` is non-null it is copied-on-write
  /// into the mutable per-level rows instead of being recomputed — the
  /// restart path: open a bundle (io/index_bundle.h) and seed updates from
  /// its mmap'd arenas without a single offset peel. A decomposition whose
  /// vertex count does not match `g` is ignored (recomputed) rather than
  /// trusted. Neither `g` nor `decomp` needs to outlive the index.
  explicit DynamicDeltaIndex(const BipartiteGraph& g,
                             const BicoreDecomposition* decomp = nullptr);

  uint32_t delta() const { return delta_; }
  uint32_t NumUpper() const { return num_upper_; }
  uint32_t NumVertices() const { return static_cast<uint32_t>(adj_.size()); }
  /// Number of currently alive edges.
  uint32_t NumAliveEdges() const { return num_alive_edges_; }

  /// Inserts edge (u, v) with weight `w`; `u` must be an upper vertex and
  /// `v` a lower vertex (unified ids). Fails if the edge already exists.
  Status InsertEdge(VertexId u, VertexId v, Weight w);

  /// Removes edge (u, v). Fails if absent.
  Status RemoveEdge(VertexId u, VertexId v);

  /// Re-weights existing edge (u, v) to `w`. Offsets are topology-only so
  /// no re-peel runs; only the weight table and the epoch advance. Fails
  /// if the edge is absent.
  Status UpdateWeight(VertexId u, VertexId v, Weight w);

  /// Monotone version counter: starts at 0, +1 per successful mutation.
  /// Cheap enough to poll on every query admission.
  uint64_t Epoch() const { return epoch_; }

  /// Returns the accumulated change summary and resets the accumulator.
  /// Called by the serve writer at each publish boundary.
  UpdateSummary DrainSummary();

  /// The (α,β)-community of q in the current graph. Edge ids refer to this
  /// index's internal edge table (see `GetEdge`).
  Subgraph QueryCommunity(VertexId q, uint32_t alpha, uint32_t beta) const;

  /// Internal edge lookup for ids returned by QueryCommunity.
  const Edge& GetEdge(EdgeId e) const { return edges_[e]; }

  /// Current offset values (1-based τ ≤ delta()); exposed for tests.
  uint32_t OffsetAlpha(uint32_t tau, VertexId v) const {
    return sa_[tau - 1][v];
  }
  uint32_t OffsetBeta(uint32_t tau, VertexId v) const {
    return sb_[tau - 1][v];
  }

  /// Compacts the alive edges into an immutable snapshot (fresh edge ids,
  /// same vertex ids). Used by tests to cross-check against full rebuilds.
  BipartiteGraph ExportGraph() const;

  /// Packs the maintained dense offset rows into the compact CSR arena
  /// form — the publish path's free ride: snapshots and compaction bundles
  /// reuse the incrementally maintained decomposition instead of re-peeling
  /// 2δ levels from scratch. Bit-identical to a fresh
  /// ComputeBicoreDecomposition of ExportGraph().
  BicoreDecomposition ExportDecomposition() const;

 private:
  /// Updates one offset table after inserting/removing edge (u, v): finds
  /// the affected scope (the paper's S⁺/S⁻) and re-peels it with boundary
  /// support from unchanged neighbours.
  void UpdateLevel(std::vector<uint32_t>& value, uint32_t tau, bool fix_upper,
                   VertexId u, VertexId v, bool is_insert);
  /// Exact level-wise re-peel of the scoped subgraph; out-of-scope
  /// neighbours support scope vertices until the level passes their
  /// (unchanged) offset.
  void RecomputeScoped(std::vector<uint32_t>& value, uint32_t tau,
                       bool fix_upper, const std::vector<VertexId>& scope);
  /// Initial scope of an edge update: the seeds plus every vertex
  /// reachable through vertices whose offset lies in [lo, hi].
  std::vector<VertexId> CollectScope(const std::vector<uint32_t>& value,
                                     uint32_t lo, uint32_t hi,
                                     std::initializer_list<VertexId> seeds);
  void MaybeGrowDelta();
  void MaybeShrinkDelta();
  /// Adds `x` to the pending summary's touched set (deduplicated).
  void MarkTouched(VertexId x);
  /// True iff the (k,k)-core of the current graph is nonempty.
  bool KkCoreNonEmpty(uint32_t k);

  uint32_t num_upper_ = 0;
  uint32_t num_alive_edges_ = 0;
  std::vector<std::vector<Arc>> adj_;
  std::vector<Edge> edges_;        // slot per EdgeId ever created
  std::vector<uint8_t> edge_alive_;
  uint32_t delta_ = 0;
  std::vector<std::vector<uint32_t>> sa_;  // [τ-1][v]
  std::vector<std::vector<uint32_t>> sb_;

  uint64_t epoch_ = 0;
  UpdateSummary summary_;                  ///< accumulating, see DrainSummary
  std::vector<uint8_t> summary_touched_;   ///< membership bitmap for dedup

  // Lent buffers for the per-level scoped recomputes: one update touches
  // up to 2δ levels, and each used to allocate 3×O(n) arrays plus a BFS
  // visited map — these persist instead, and the scoped code restores
  // their invariant (alive / in_scope / update_mark / visited all-zero;
  // deg stale-but-unread) in O(|scope|) after each use.
  std::vector<uint32_t> ws_deg_;
  std::vector<uint8_t> ws_alive_;
  std::vector<uint8_t> ws_in_scope_;
  std::vector<uint8_t> ws_update_mark_;
  std::vector<uint8_t> ws_visited_;
  std::vector<std::pair<uint32_t, VertexId>> ws_expiry_;
  std::vector<VertexId> ws_stack_;
  LevelPeelScratch ws_peel_;
};

}  // namespace abcs

#endif  // ABCS_CORE_MAINTENANCE_H_
