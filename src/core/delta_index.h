#ifndef ABCS_CORE_DELTA_INDEX_H_
#define ABCS_CORE_DELTA_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "abcore/offsets.h"
#include "common/status.h"
#include "core/query_scratch.h"
#include "core/query_stats.h"
#include "core/subgraph.h"
#include "graph/bipartite_graph.h"
#include "io/arena_storage.h"

namespace abcs {

class DeltaIndex;
struct BundleAccess;

/// Declared in core/index_io.h; friends of DeltaIndex for serialisation.
Status SaveDeltaIndex(const DeltaIndex& index, const BipartiteGraph& g,
                      const std::string& path);
Status LoadDeltaIndex(const std::string& path, const BipartiteGraph& g,
                      DeltaIndex* out);

/// \brief The degeneracy-bounded index `I_δ` (paper §III-B, Algorithm 3)
/// and its optimal community query `Qopt`.
///
/// Two halves cover all (α,β)-communities (Lemma 4: min(α,β) ≤ δ):
///  - `Iα_δ[u][τ]` for τ ≤ δ where u ∈ (τ,τ)-core: u's neighbours v with
///    s_a(v,τ) ≥ τ, sorted by decreasing s_a — serves queries with α ≤ β.
///  - `Iβ_δ[u][τ]`: neighbours with s_b(v,τ) > τ, sorted by decreasing
///    s_b — serves queries with β < α (strict `>` because those queries
///    filter with α > τ, so entries at exactly τ can never qualify).
///
/// Construction: O(δ·m) time, O(δ·m) space (Lemmas 5–6). Queries touch
/// exactly the arcs of C_{α,β}(q) plus one sentinel per visited vertex
/// (Lemma 3's optimality).
///
/// Storage is arena-based: each half keeps one flat entry array plus
/// per-vertex slices of a shared level table, so a query's inner loop is a
/// contiguous scan with two array lookups per visited vertex — no
/// per-vertex allocations or pointer chasing. Every array lives in
/// `ArenaStorage`, so an index is either self-owning (Build) or a
/// zero-copy view into an opened bundle (io/index_bundle.h).
class DeltaIndex {
 public:
  DeltaIndex() = default;

  /// Builds the index in O(δ·m). If `decomp` is non-null it is used
  /// instead of recomputing the offsets; otherwise the 2δ offset peels run
  /// on `num_threads` workers (1 = serial, 0 = hardware concurrency; the
  /// result is identical either way). The graph must outlive the index.
  static DeltaIndex Build(const BipartiteGraph& g,
                          const BicoreDecomposition* decomp = nullptr,
                          unsigned num_threads = 1);

  /// Degeneracy δ of the indexed graph.
  uint32_t delta() const { return delta_; }

  /// `Qopt`: the (α,β)-community of `q` in O(size(C_{α,β}(q))) time.
  Subgraph QueryCommunity(VertexId q, uint32_t alpha, uint32_t beta,
                          QueryStats* stats = nullptr) const;

  /// Scratch-backed `Qopt`: identical result, but all per-query state
  /// (visited stamps, BFS queue) lives in `scratch` and the edges are
  /// written into `*out` (cleared first, capacity reused), so steady-state
  /// queries perform zero heap allocations.
  void QueryCommunity(VertexId q, uint32_t alpha, uint32_t beta,
                      QueryScratch& scratch, Subgraph* out,
                      QueryStats* stats = nullptr) const;

  /// Bytes used by the index payload (Fig. 11).
  std::size_t MemoryBytes() const;

 private:
  friend Status SaveDeltaIndex(const DeltaIndex&, const BipartiteGraph&,
                               const std::string&);
  friend Status LoadDeltaIndex(const std::string&, const BipartiteGraph&,
                               DeltaIndex*);
  friend struct BundleAccess;

  struct Entry {
    VertexId to;
    EdgeId eid;
    uint32_t offset;  ///< s_a(to, τ) in the α half, s_b(to, τ) in the β half
  };

  /// One half of the index in arena form. Vertex v owns
  ///   levels   τ = 1 .. NumLevels(v)
  ///   level τ's entries: entries[level_start[table_base[v] + τ - 1]
  ///                              .. level_start[table_base[v] + τ])
  ///   its own offset at τ: self_offset[table_base[v] - v + τ - 1]
  /// (`table_base` has one extra slot per vertex for the trailing
  /// level_start bound, hence the `- v` when indexing self_offset).
  struct Half {
    ArenaStorage<uint32_t> table_base;   // size n+1
    ArenaStorage<uint32_t> level_start;  // concatenated (L(v)+1 per vertex)
    ArenaStorage<uint32_t> self_offset;  // concatenated (L(v) per vertex)
    ArenaStorage<Entry> entries;

    uint32_t NumLevels(VertexId v) const {
      return table_base[v + 1] - table_base[v] - 1;
    }
    std::size_t Bytes() const {
      return table_base.size() * sizeof(uint32_t) +
             level_start.size() * sizeof(uint32_t) +
             self_offset.size() * sizeof(uint32_t) +
             entries.size() * sizeof(Entry);
    }
  };

  void QueryImpl(VertexId q, uint32_t level, uint32_t need, const Half& half,
                 QueryScratch& scratch, Subgraph* out,
                 QueryStats* stats) const;

  const BipartiteGraph* graph_ = nullptr;
  uint32_t delta_ = 0;
  Half alpha_half_;
  Half beta_half_;
};

}  // namespace abcs

#endif  // ABCS_CORE_DELTA_INDEX_H_
