#ifndef ABCS_GRAPH_BIPARTITE_GRAPH_H_
#define ABCS_GRAPH_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "io/arena_storage.h"

namespace abcs {

struct BundleAccess;

/// Vertex identifier. Vertices live in a unified id space: upper-layer
/// vertices occupy `[0, NumUpper())` and lower-layer vertices occupy
/// `[NumUpper(), NumVertices())`.
using VertexId = uint32_t;

/// Edge identifier in `[0, NumEdges())`. Each undirected edge has one id
/// shared by both of its CSR arcs, so per-edge state (weights, deletion
/// marks) is stored once.
using EdgeId = uint32_t;

/// Edge weight ("significance" in the paper). Ratings, purchase counts and
/// RWR relevance scores all fit a double.
using Weight = double;

inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// One undirected weighted edge; `u` is always the upper endpoint and `v`
/// the lower endpoint, both in unified ids.
struct Edge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  Weight w = 0.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// One adjacency entry: the neighbour on the other layer plus the shared
/// edge id (used to look up the weight and per-edge algorithm state).
struct Arc {
  VertexId to = kInvalidVertex;
  EdgeId eid = kInvalidEdge;
};

/// \brief Immutable weighted bipartite graph in CSR form.
///
/// Construction goes through `GraphBuilder` (see graph_builder.h), which
/// deduplicates parallel edges and drops isolated vertices on request. Once
/// built, the graph is immutable; peeling algorithms keep their own
/// `deg`/`alive` state layered over the CSR (see abcore/peel_kernel.h).
///
/// The three flat arrays live in `ArenaStorage`, so a graph is either
/// self-owning (built by GraphBuilder) or a zero-copy view into an opened
/// index bundle (io/index_bundle.h) — same type, same query code.
class BipartiteGraph {
 public:
  /// Creates an empty graph (0 vertices, 0 edges).
  BipartiteGraph() = default;

  BipartiteGraph(const BipartiteGraph&) = default;
  BipartiteGraph& operator=(const BipartiteGraph&) = default;
  BipartiteGraph(BipartiteGraph&&) = default;
  BipartiteGraph& operator=(BipartiteGraph&&) = default;

  /// Number of upper-layer vertices |U(G)|.
  uint32_t NumUpper() const { return num_upper_; }
  /// Number of lower-layer vertices |L(G)|.
  uint32_t NumLower() const { return num_lower_; }
  /// Total number of vertices n = |U| + |L|.
  uint32_t NumVertices() const { return num_upper_ + num_lower_; }
  /// Number of undirected edges m = |E(G)| (= size(G) in the paper).
  uint32_t NumEdges() const { return static_cast<uint32_t>(edges_.size()); }

  /// True iff `v` lies in the upper layer.
  bool IsUpper(VertexId v) const { return v < num_upper_; }
  /// Unified id of the i-th lower vertex.
  VertexId LowerId(uint32_t i) const { return num_upper_ + i; }

  /// Degree of `v` in G.
  uint32_t Degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Adjacency of `v` (arcs to the other layer).
  std::span<const Arc> Neighbors(VertexId v) const {
    return {arcs_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// The undirected edge with id `e`.
  const Edge& GetEdge(EdgeId e) const { return edges_[e]; }
  /// Weight of edge `e`.
  Weight GetWeight(EdgeId e) const { return edges_[e].w; }
  /// All edges, indexed by EdgeId (iterable, element-wise comparable).
  const ArenaStorage<Edge>& Edges() const { return edges_; }

  /// Maximum vertex degree within the upper layer (paper's αmax upper
  /// bound) — the largest α for which an (α,1)-core can exist.
  uint32_t MaxUpperDegree() const;
  /// Maximum vertex degree within the lower layer.
  uint32_t MaxLowerDegree() const;

  /// Returns a copy of this graph with the same topology but new weights.
  /// `weights[e]` replaces the weight of EdgeId `e`; used by the weight
  /// models (graph/weights.h) and the Table III experiment.
  BipartiteGraph WithWeights(const std::vector<Weight>& weights) const;

 private:
  friend class GraphBuilder;
  friend struct BundleAccess;

  uint32_t num_upper_ = 0;
  uint32_t num_lower_ = 0;
  ArenaStorage<uint32_t> offsets_;  // size NumVertices()+1
  ArenaStorage<Arc> arcs_;          // size 2m
  ArenaStorage<Edge> edges_;        // size m, indexed by EdgeId
};

}  // namespace abcs

#endif  // ABCS_GRAPH_BIPARTITE_GRAPH_H_
