#include "graph/graph_io.h"

#include <fstream>
#include <sstream>

#include "graph/graph_builder.h"

namespace abcs {

Status LoadEdgeList(const std::string& path, BipartiteGraph* out,
                    bool zero_based) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  GraphBuilder builder;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '%' || line[0] == '#') continue;
    std::istringstream ss(line);
    long long u = 0, v = 0;
    double w = 1.0;
    if (!(ss >> u >> v)) {
      return Status::Corruption(path + ":" + std::to_string(lineno) +
                                ": malformed edge line");
    }
    ss >> w;  // optional
    if (!zero_based) {
      --u;
      --v;
    }
    if (u < 0 || v < 0) {
      return Status::Corruption(path + ":" + std::to_string(lineno) +
                                ": negative vertex id");
    }
    builder.AddEdge(static_cast<uint32_t>(u), static_cast<uint32_t>(v), w);
  }
  return builder.Build(out);
}

Status SaveEdgeList(const BipartiteGraph& g, const std::string& path) {
  std::ofstream outf(path);
  if (!outf) return Status::IOError("cannot open " + path + " for writing");
  // Full round-trip precision for weights (ratings survive exactly; RWR
  // scores survive to the last bit).
  outf.precision(17);
  outf << "% abcs bipartite edge list: u v w (0-based layer-local ids)\n";
  for (const Edge& e : g.Edges()) {
    outf << e.u << ' ' << (e.v - g.NumUpper()) << ' ' << e.w << '\n';
  }
  if (!outf) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace abcs
