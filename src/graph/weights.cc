#include "graph/weights.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace abcs {

std::string WeightModelName(WeightModel model) {
  switch (model) {
    case WeightModel::kAllEqual:
      return "AE";
    case WeightModel::kUniform:
      return "UF";
    case WeightModel::kSkewNormal:
      return "SK";
    case WeightModel::kRandomWalk:
      return "RW";
  }
  return "?";
}

std::vector<double> RandomWalkScores(const BipartiteGraph& g, double restart,
                                     int iters) {
  const uint32_t n = g.NumVertices();
  if (n == 0) return {};
  std::vector<double> score(n, 1.0 / n);
  std::vector<double> next(n);
  for (int it = 0; it < iters; ++it) {
    std::fill(next.begin(), next.end(), restart / n);
    for (VertexId v = 0; v < n; ++v) {
      const uint32_t deg = g.Degree(v);
      if (deg == 0) continue;
      const double share = (1.0 - restart) * score[v] / deg;
      for (const Arc& a : g.Neighbors(v)) next[a.to] += share;
    }
    score.swap(next);
  }
  return score;
}

BipartiteGraph ApplyWeightModel(const BipartiteGraph& g, WeightModel model,
                                uint64_t seed) {
  const uint32_t m = g.NumEdges();
  std::vector<Weight> w(m, 1.0);
  switch (model) {
    case WeightModel::kAllEqual:
      break;
    case WeightModel::kUniform: {
      Rng rng(seed);
      for (EdgeId e = 0; e < m; ++e) w[e] = rng.NextUniform(1.0, 100.0);
      break;
    }
    case WeightModel::kSkewNormal: {
      Rng rng(seed);
      for (EdgeId e = 0; e < m; ++e) {
        double x = 50.0 + 15.0 * rng.NextSkewNormal(5.0);
        w[e] = std::max(0.5, x);
      }
      break;
    }
    case WeightModel::kRandomWalk: {
      std::vector<double> score = RandomWalkScores(g, 0.15, 30);
      double lo = 1e300, hi = -1e300;
      std::vector<double> raw(m);
      for (EdgeId e = 0; e < m; ++e) {
        const Edge& ed = g.GetEdge(e);
        raw[e] = score[ed.u] + score[ed.v];
        lo = std::min(lo, raw[e]);
        hi = std::max(hi, raw[e]);
      }
      const double span = (hi > lo) ? (hi - lo) : 1.0;
      for (EdgeId e = 0; e < m; ++e) {
        w[e] = 1.0 + 99.0 * (raw[e] - lo) / span;
      }
      break;
    }
  }
  return g.WithWeights(w);
}

}  // namespace abcs
