#include "graph/graph_builder.h"

#include <algorithm>
#include <numeric>

namespace abcs {

void GraphBuilder::Reserve(uint32_t num_upper, uint32_t num_lower,
                           std::size_t num_edges) {
  num_upper_ = std::max(num_upper_, num_upper);
  num_lower_ = std::max(num_lower_, num_lower);
  us_.reserve(num_edges);
  vs_.reserve(num_edges);
  ws_.reserve(num_edges);
}

void GraphBuilder::AddEdge(uint32_t u, uint32_t v, Weight w) {
  num_upper_ = std::max(num_upper_, u + 1);
  num_lower_ = std::max(num_lower_, v + 1);
  us_.push_back(u);
  vs_.push_back(v);
  ws_.push_back(w);
}

Status GraphBuilder::Build(BipartiteGraph* out,
                           DuplicatePolicy policy) const {
  const std::size_t raw = us_.size();

  // Sort edge indices by (u, v) to group duplicates.
  std::vector<uint32_t> order(raw);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (us_[a] != us_[b]) return us_[a] < us_[b];
    return vs_[a] < vs_[b];
  });

  std::vector<Edge> edges;
  edges.reserve(raw);
  for (std::size_t i = 0; i < raw;) {
    const uint32_t u = us_[order[i]];
    const uint32_t v = vs_[order[i]];
    Weight w = ws_[order[i]];
    std::size_t j = i + 1;
    while (j < raw && us_[order[j]] == u && vs_[order[j]] == v) {
      switch (policy) {
        case DuplicatePolicy::kKeepMax:
          w = std::max(w, ws_[order[j]]);
          break;
        case DuplicatePolicy::kKeepLast:
          if (order[j] > order[i]) w = ws_[order[j]];
          break;
        case DuplicatePolicy::kSum:
          w += ws_[order[j]];
          break;
        case DuplicatePolicy::kError:
          return Status::InvalidArgument("duplicate edge (" +
                                         std::to_string(u) + ", " +
                                         std::to_string(v) + ")");
      }
      ++j;
    }
    edges.push_back(Edge{u, num_upper_ + v, w});
    i = j;
  }

  BipartiteGraph g;
  g.num_upper_ = num_upper_;
  g.num_lower_ = num_lower_;

  const uint32_t n = num_upper_ + num_lower_;
  const std::size_t m = edges.size();
  std::vector<uint32_t> offsets(n + 1, 0);
  for (const Edge& e : edges) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  std::partial_sum(offsets.begin(), offsets.end(), offsets.begin());

  std::vector<Arc> arcs(2 * m);
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& ed = edges[e];
    arcs[cursor[ed.u]++] = Arc{ed.v, e};
    arcs[cursor[ed.v]++] = Arc{ed.u, e};
  }

  g.offsets_ = std::move(offsets);
  g.arcs_ = std::move(arcs);
  g.edges_ = std::move(edges);
  *out = std::move(g);
  return Status::OK();
}

void GraphBuilder::Clear() {
  num_upper_ = 0;
  num_lower_ = 0;
  us_.clear();
  vs_.clear();
  ws_.clear();
}

}  // namespace abcs
