#ifndef ABCS_GRAPH_DATASETS_H_
#define ABCS_GRAPH_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/bipartite_graph.h"
#include "graph/weights.h"

namespace abcs {

/// \brief Specification of one synthetic stand-in for a KONECT dataset from
/// the paper's Table I.
///
/// The originals range from 433K to 137M edges; offline and at laptop scale
/// we regenerate each with the same layer-size ratios and heavy-tailed
/// degree distributions at 1/10–1/500 scale (DESIGN.md §5). `name` matches
/// the paper's abbreviation (BS, GH, SO, LS, DT, AR, PA, ML, DUI, EN, DTI).
struct DatasetSpec {
  std::string name;
  uint32_t num_upper = 0;
  uint32_t num_lower = 0;
  uint32_t num_edges = 0;
  double skew_upper = 2.1;  ///< power-law exponent, upper layer
  double skew_lower = 2.1;  ///< power-law exponent, lower layer
  WeightModel weights = WeightModel::kUniform;
  uint64_t seed = 1;
  std::string paper_note;  ///< original |E|,|U|,|L|,δ for EXPERIMENTS.md
};

/// The 11 dataset specs, in the paper's Table I order.
const std::vector<DatasetSpec>& AllDatasets();

/// Spec lookup by paper abbreviation; nullptr if unknown.
const DatasetSpec* FindDataset(const std::string& name);

/// Generates the dataset (Chung–Lu topology + weight model). Deterministic
/// for a given spec.
Status MakeDataset(const DatasetSpec& spec, BipartiteGraph* out);

}  // namespace abcs

#endif  // ABCS_GRAPH_DATASETS_H_
