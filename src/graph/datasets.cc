#include "graph/datasets.h"

#include "graph/generators.h"

namespace abcs {

const std::vector<DatasetSpec>& AllDatasets() {
  // Layer ratios follow Table I; edge counts are scaled so the full bench
  // suite runs in minutes on a laptop. Skews are tuned per dataset family:
  // smaller exponent = heavier tail = larger αmax/βmax, mirroring e.g.
  // EN's αmax of 1.9M vs PA's 951.
  static const std::vector<DatasetSpec>* kDatasets =
      new std::vector<DatasetSpec>{
          {"BS", 7800, 18600, 43000, 2.2, 2.3, WeightModel::kUniform, 101,
           "orig |E|=433K |U|=77.8K |L|=186K delta=13"},
          {"GH", 5650, 12100, 44000, 2.4, 2.1, WeightModel::kUniform, 102,
           "orig |E|=440K |U|=56.5K |L|=121K delta=39"},
          {"SO", 27250, 4830, 65000, 2.1, 2.0, WeightModel::kUniform, 103,
           "orig |E|=1.30M |U|=545K |L|=96.6K delta=22"},
          {"LS", 99, 10800, 44000, 3.0, 2.1, WeightModel::kUniform, 104,
           "orig |E|=4.41M |U|=992 |L|=1.08M delta=164"},
          {"DT", 16200, 77, 57000, 2.2, 3.0, WeightModel::kRandomWalk, 105,
           "orig |E|=5.74M |U|=1.62M |L|=383 delta=73 (RW weights)"},
          {"AR", 21500, 12300, 57000, 2.1, 2.2, WeightModel::kUniform, 106,
           "orig |E|=5.74M |U|=2.15M |L|=1.23M delta=26"},
          {"PA", 14300, 40000, 86000, 2.6, 2.8, WeightModel::kRandomWalk, 107,
           "orig |E|=8.65M |U|=1.43M |L|=4.00M delta=10 (RW weights)"},
          {"ML", 1620, 590, 160000, 1.9, 1.9, WeightModel::kUniform, 108,
           "orig |E|=25.0M |U|=162K |L|=59.0K delta=636"},
          {"DUI", 1666, 67600, 204000, 2.0, 2.2, WeightModel::kUniform, 109,
           "orig |E|=102M |U|=833K |L|=33.8M delta=183"},
          {"EN", 7640, 43000, 244000, 1.8, 2.0, WeightModel::kUniform, 110,
           "orig |E|=122M |U|=3.82M |L|=21.5M delta=254"},
          {"DTI", 9020, 67600, 274000, 1.9, 2.2, WeightModel::kUniform, 111,
           "orig |E|=137M |U|=4.51M |L|=33.8M delta=180"},
      };
  return *kDatasets;
}

const DatasetSpec* FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasets()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

Status MakeDataset(const DatasetSpec& spec, BipartiteGraph* out) {
  BipartiteGraph topo;
  ABCS_RETURN_NOT_OK(GenChungLuBipartite(spec.num_upper, spec.num_lower,
                                         spec.num_edges, spec.skew_upper,
                                         spec.skew_lower, spec.seed, &topo));
  *out = ApplyWeightModel(topo, spec.weights, spec.seed * 7919 + 13);
  return Status::OK();
}

}  // namespace abcs
