#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/rng.h"
#include "graph/graph_builder.h"

namespace abcs {

namespace {

/// Packs (u, v) into one 64-bit key for duplicate rejection.
uint64_t PairKey(uint32_t u, uint32_t v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

/// Cumulative distribution over power-law expected-degree weights; sampling
/// is a binary search over the prefix sums.
class PowerLawSampler {
 public:
  PowerLawSampler(uint32_t n, double skew) : cdf_(n) {
    const double exponent = 1.0 / (skew - 1.0);
    double acc = 0.0;
    for (uint32_t i = 0; i < n; ++i) {
      acc += std::pow(static_cast<double>(i) + 1.0, -exponent);
      cdf_[i] = acc;
    }
  }

  uint32_t Sample(Rng& rng) const {
    double x = rng.NextDouble() * cdf_.back();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
    return static_cast<uint32_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// Snaps a rating to the half-star grid and clamps to [0.5, 5.0].
Weight HalfStar(double x) {
  double snapped = std::round(x * 2.0) / 2.0;
  return std::clamp(snapped, 0.5, 5.0);
}

}  // namespace

Status GenErdosRenyiBipartite(uint32_t num_upper, uint32_t num_lower,
                              uint32_t num_edges, uint64_t seed,
                              BipartiteGraph* out) {
  if (num_upper == 0 || num_lower == 0) {
    return Status::InvalidArgument("layers must be nonempty");
  }
  const uint64_t capacity =
      static_cast<uint64_t>(num_upper) * static_cast<uint64_t>(num_lower);
  if (num_edges > capacity) {
    return Status::InvalidArgument("num_edges exceeds |U|*|L|");
  }
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  GraphBuilder builder;
  builder.Reserve(num_upper, num_lower, num_edges);
  while (seen.size() < num_edges) {
    uint32_t u = static_cast<uint32_t>(rng.NextBounded(num_upper));
    uint32_t v = static_cast<uint32_t>(rng.NextBounded(num_lower));
    if (seen.insert(PairKey(u, v)).second) builder.AddEdge(u, v, 1.0);
  }
  return builder.Build(out);
}

Status GenChungLuBipartite(uint32_t num_upper, uint32_t num_lower,
                           uint32_t num_edges, double skew_upper,
                           double skew_lower, uint64_t seed,
                           BipartiteGraph* out) {
  if (num_upper == 0 || num_lower == 0) {
    return Status::InvalidArgument("layers must be nonempty");
  }
  if (skew_upper <= 1.0 || skew_lower <= 1.0) {
    return Status::InvalidArgument("skew exponents must be > 1");
  }
  const uint64_t capacity =
      static_cast<uint64_t>(num_upper) * static_cast<uint64_t>(num_lower);
  if (num_edges > capacity / 2) {
    return Status::InvalidArgument(
        "num_edges too close to |U|*|L| for rejection sampling");
  }

  Rng rng(seed);
  PowerLawSampler upper(num_upper, skew_upper);
  PowerLawSampler lower(num_lower, skew_lower);

  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  GraphBuilder builder;
  builder.Reserve(num_upper, num_lower, num_edges);
  // With heavy skew the hottest pairs saturate; cap the rejection loop and
  // fall back to uniform pairs for the residue so generation always ends.
  uint64_t attempts = 0;
  const uint64_t max_attempts = static_cast<uint64_t>(num_edges) * 64;
  while (seen.size() < num_edges && attempts < max_attempts) {
    ++attempts;
    uint32_t u = upper.Sample(rng);
    uint32_t v = lower.Sample(rng);
    if (seen.insert(PairKey(u, v)).second) builder.AddEdge(u, v, 1.0);
  }
  while (seen.size() < num_edges) {
    uint32_t u = static_cast<uint32_t>(rng.NextBounded(num_upper));
    uint32_t v = static_cast<uint32_t>(rng.NextBounded(num_lower));
    if (seen.insert(PairKey(u, v)).second) builder.AddEdge(u, v, 1.0);
  }
  return builder.Build(out);
}

PlantedGraph MakePlantedCommunities(const PlantedSpec& spec) {
  Rng rng(spec.seed);
  PlantedGraph pg;

  const uint32_t num_blocks = spec.num_genres * spec.blocks_per_genre;
  const uint32_t fan_users = num_blocks * spec.users_per_block;
  const uint32_t binge_users = spec.num_genres * spec.binge_users_per_genre;
  const uint32_t num_users = fan_users + binge_users + spec.casual_users;
  const uint32_t num_movies = num_blocks * spec.movies_per_block;

  pg.user_block.assign(num_users, -1);
  pg.user_genre.assign(num_users, -1);
  pg.movie_block.assign(num_movies, -1);
  pg.movie_genre.assign(num_movies, -1);

  GraphBuilder builder;
  builder.Reserve(num_users, num_movies, 0);

  auto block_of = [&](uint32_t genre, uint32_t b) {
    return genre * spec.blocks_per_genre + b;
  };
  auto movie_id = [&](uint32_t block, uint32_t i) {
    return block * spec.movies_per_block + i;
  };

  for (uint32_t block = 0; block < num_blocks; ++block) {
    const int32_t genre = static_cast<int32_t>(block / spec.blocks_per_genre);
    for (uint32_t i = 0; i < spec.movies_per_block; ++i) {
      pg.movie_block[movie_id(block, i)] = static_cast<int32_t>(block);
      pg.movie_genre[movie_id(block, i)] = genre;
    }
  }

  // Fans: dense high-rating blocks, plus a few cross-block genre ratings.
  uint32_t user = 0;
  for (uint32_t block = 0; block < num_blocks; ++block) {
    const uint32_t genre = block / spec.blocks_per_genre;
    for (uint32_t k = 0; k < spec.users_per_block; ++k, ++user) {
      pg.user_block[user] = static_cast<int32_t>(block);
      pg.user_genre[user] = static_cast<int32_t>(genre);
      // Rate a random `intra_fraction` subset of the block's movies
      // highly; the planted dense core of block 0 is rated completely.
      const bool in_dense_core = block == 0 && k < spec.dense_core;
      for (uint32_t i = 0; i < spec.movies_per_block; ++i) {
        const bool forced = in_dense_core && i < spec.dense_core;
        if (forced || rng.NextDouble() < spec.intra_fraction) {
          Weight r = HalfStar(4.5 + 0.6 * rng.NextGaussian());
          builder.AddEdge(user, movie_id(block, i), std::max(r, Weight{4.0}));
        }
      }
      // Cross-block ratings inside the genre (mid-high, keeps slice
      // connected without joining the significant community). Always to a
      // *different* block so intra-block ratings stay uniformly high.
      if (spec.blocks_per_genre > 1) {
        for (uint32_t c = 0; c < spec.cross_block_ratings; ++c) {
          uint32_t offset = 1 + static_cast<uint32_t>(
                                    rng.NextBounded(spec.blocks_per_genre - 1));
          uint32_t other = block_of(
              genre, (block % spec.blocks_per_genre + offset) %
                         spec.blocks_per_genre);
          uint32_t mi =
              static_cast<uint32_t>(rng.NextBounded(spec.movies_per_block));
          builder.AddEdge(user, movie_id(other, mi),
                          HalfStar(3.5 + 0.8 * rng.NextGaussian()));
        }
      }
    }
  }

  // Binge users: fan-like degree inside one block, but low ratings. They
  // survive the (α,β)-core degree constraint yet drag f(R) down, so the
  // significant community excludes them (paper Fig. 6(b)'s dislike users).
  // They also spray `binge_ratings` extra ratings across their genre.
  for (uint32_t g = 0; g < spec.num_genres; ++g) {
    for (uint32_t k = 0; k < spec.binge_users_per_genre; ++k, ++user) {
      pg.user_genre[user] = static_cast<int32_t>(g);
      const uint32_t home = block_of(
          g, static_cast<uint32_t>(rng.NextBounded(spec.blocks_per_genre)));
      for (uint32_t i = 0; i < spec.movies_per_block; ++i) {
        if (rng.NextDouble() < spec.intra_fraction) {
          builder.AddEdge(user, movie_id(home, i),
                          HalfStar(2.75 + 0.5 * rng.NextGaussian()));
        }
      }
      const uint32_t genre_movies =
          spec.blocks_per_genre * spec.movies_per_block;
      for (uint32_t c = 0; c < spec.binge_ratings; ++c) {
        uint32_t mi = static_cast<uint32_t>(rng.NextBounded(genre_movies));
        uint32_t movie =
            g * spec.blocks_per_genre * spec.movies_per_block + mi;
        builder.AddEdge(user, movie,
                        HalfStar(2.75 + 0.5 * rng.NextGaussian()));
      }
    }
  }

  // Casual users: a few ratings on random movies, mixed quality.
  for (uint32_t k = 0; k < spec.casual_users; ++k, ++user) {
    for (uint32_t c = 0; c < spec.casual_ratings; ++c) {
      uint32_t movie = static_cast<uint32_t>(rng.NextBounded(num_movies));
      builder.AddEdge(user, movie, HalfStar(0.5 + 4.5 * rng.NextDouble()));
    }
  }

  Status st = builder.Build(&pg.graph);
  (void)st;  // generation from valid parameters cannot fail
  return pg;
}

PlantedGraph ExtractGenreSlice(const PlantedGraph& pg, int32_t genre) {
  const BipartiteGraph& g = pg.graph;
  std::vector<uint32_t> user_map(g.NumUpper(), kInvalidVertex);
  std::vector<uint32_t> movie_map(g.NumLower(), kInvalidVertex);

  PlantedGraph out;
  GraphBuilder builder;
  uint32_t next_user = 0, next_movie = 0;
  for (const Edge& e : g.Edges()) {
    const uint32_t movie_local = e.v - g.NumUpper();
    if (pg.movie_genre[movie_local] != genre) continue;
    if (user_map[e.u] == kInvalidVertex) {
      user_map[e.u] = next_user++;
      out.user_block.push_back(pg.user_block[e.u]);
      out.user_genre.push_back(pg.user_genre[e.u]);
    }
    if (movie_map[movie_local] == kInvalidVertex) {
      movie_map[movie_local] = next_movie++;
      out.movie_block.push_back(pg.movie_block[movie_local]);
      out.movie_genre.push_back(pg.movie_genre[movie_local]);
    }
    builder.AddEdge(user_map[e.u], movie_map[movie_local], e.w);
  }
  Status st = builder.Build(&out.graph);
  (void)st;
  return out;
}

}  // namespace abcs
