#include "graph/bipartite_graph.h"

#include <algorithm>

namespace abcs {

uint32_t BipartiteGraph::MaxUpperDegree() const {
  uint32_t best = 0;
  for (VertexId u = 0; u < num_upper_; ++u) best = std::max(best, Degree(u));
  return best;
}

uint32_t BipartiteGraph::MaxLowerDegree() const {
  uint32_t best = 0;
  for (VertexId v = num_upper_; v < NumVertices(); ++v) {
    best = std::max(best, Degree(v));
  }
  return best;
}

BipartiteGraph BipartiteGraph::WithWeights(
    const std::vector<Weight>& weights) const {
  BipartiteGraph out = *this;
  // Mutable() detaches borrowed (bundle-backed) arrays by copying, so the
  // result is fully self-owning: reweighting never writes through a
  // mapping, and the returned graph may outlive the bundle it came from.
  // For an already-owned graph these are no-ops (the copy above paid).
  out.offsets_.Mutable();
  out.arcs_.Mutable();
  std::vector<Edge>& edges = out.edges_.Mutable();
  for (EdgeId e = 0; e < out.NumEdges() && e < weights.size(); ++e) {
    edges[e].w = weights[e];
  }
  return out;
}

}  // namespace abcs
