#ifndef ABCS_GRAPH_GENERATORS_H_
#define ABCS_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief Uniform random bipartite graph: `num_edges` distinct pairs drawn
/// uniformly from U × L. Weights are 1.0 (attach a model via
/// `ApplyWeightModel`).
Status GenErdosRenyiBipartite(uint32_t num_upper, uint32_t num_lower,
                              uint32_t num_edges, uint64_t seed,
                              BipartiteGraph* out);

/// \brief Chung–Lu bipartite graph with two-sided power-law expected
/// degrees.
///
/// Vertex i on a layer gets expected-degree weight `(i+1)^(-1/(skew-1))`
/// (so `skew` plays the role of the power-law exponent γ; real bipartite
/// networks have γ ≈ 1.8–2.5). Endpoints of each edge are sampled
/// independently proportional to these weights; duplicate pairs are
/// rejected until `num_edges` distinct edges exist. This matches the heavy
/// tails of the KONECT datasets in the paper's Table I (see DESIGN.md §5).
Status GenChungLuBipartite(uint32_t num_upper, uint32_t num_lower,
                           uint32_t num_edges, double skew_upper,
                           double skew_lower, uint64_t seed,
                           BipartiteGraph* out);

/// Parameters for the planted-community user–movie generator used by the
/// effectiveness experiments (paper Fig. 6 / Table II on MovieLens).
struct PlantedSpec {
  uint32_t num_genres = 4;        ///< genre 0 plays the role of "comedy"
  uint32_t blocks_per_genre = 3;  ///< fan communities per genre
  uint32_t users_per_block = 120;
  uint32_t movies_per_block = 80;
  /// Fraction of its block's movies a fan rates (drives the core degrees).
  double intra_fraction = 0.85;
  /// The first `dense_core` fans of block 0 rate *all* of its first
  /// `dense_core` movies, planting a complete biclique (the paper's Table
  /// II compares against a ≥45-per-layer maximal biclique). 0 disables.
  uint32_t dense_core = 50;
  /// Fans also rate this many movies from sibling blocks of the same genre,
  /// keeping the genre slice connected.
  uint32_t cross_block_ratings = 12;
  /// Heavy-degree users who watch many movies of a genre but rate them
  /// poorly (2.0–3.5). They survive the (α,β)-core but not the significant
  /// community — the paper's "dislike users" (Fig. 6(b)).
  uint32_t binge_users_per_genre = 40;
  uint32_t binge_ratings = 90;
  /// Light users rating a few random popular movies with mixed ratings
  /// (the C4* noise population).
  uint32_t casual_users = 1500;
  uint32_t casual_ratings = 6;
  uint64_t seed = 42;
};

/// A planted graph plus its ground-truth labels. Users are upper vertices,
/// movies lower vertices; labels use layer-local indices. Block/genre id
/// `-1` marks background (binge/casual) vertices.
struct PlantedGraph {
  BipartiteGraph graph;
  std::vector<int32_t> user_block;
  std::vector<int32_t> user_genre;
  std::vector<int32_t> movie_block;
  std::vector<int32_t> movie_genre;
};

/// Generates the planted-community rating graph. Ratings are half-star
/// values in [0.5, 5.0]: fans rate their own genre 4.0–5.0, binge users
/// 2.0–3.5, casual users uniformly.
PlantedGraph MakePlantedCommunities(const PlantedSpec& spec);

/// Extracts the subgraph induced by all movies of `genre` (the paper's
/// "comedy slice"): keeps every rating whose movie has that genre, and
/// reindexes vertices densely. Label vectors are sliced accordingly.
PlantedGraph ExtractGenreSlice(const PlantedGraph& pg, int32_t genre);

}  // namespace abcs

#endif  // ABCS_GRAPH_GENERATORS_H_
