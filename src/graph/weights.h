#ifndef ABCS_GRAPH_WEIGHTS_H_
#define ABCS_GRAPH_WEIGHTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/bipartite_graph.h"

namespace abcs {

/// Edge-weight models from the paper's Table III experiment, plus the
/// random-walk-with-restart model used to synthesise weights for the
/// unweighted datasets (DT, PA) in Table I.
enum class WeightModel {
  kAllEqual,    ///< AE: every weight is 1.0
  kUniform,     ///< UF: uniform in [1, 100]
  kSkewNormal,  ///< SK: skew-normal (mean 50, sd 15, shape 5), clamped > 0
  kRandomWalk,  ///< RW: node relevance via random walk with restart [23]
};

/// Human-readable name ("AE", "UF", "SK", "RW").
std::string WeightModelName(WeightModel model);

/// \brief Returns a copy of `g` whose weights follow `model`.
///
/// For `kRandomWalk`, vertex relevance scores are computed by power
/// iteration of a degree-normalised random walk with restart probability
/// 0.15 (Tong et al., ICDM'06 — the paper's reference [23]); the weight of
/// edge (u, v) is the min-max-normalised sum of its endpoints' scores,
/// scaled to [1, 100]. This mirrors the paper's use of RWR node relevance
/// to weight unweighted KONECT graphs.
BipartiteGraph ApplyWeightModel(const BipartiteGraph& g, WeightModel model,
                                uint64_t seed);

/// Raw RWR relevance scores per vertex (exposed for tests and examples).
/// `restart` is the teleport probability; `iters` power-iteration rounds.
std::vector<double> RandomWalkScores(const BipartiteGraph& g, double restart,
                                     int iters);

}  // namespace abcs

#endif  // ABCS_GRAPH_WEIGHTS_H_
