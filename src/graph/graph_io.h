#ifndef ABCS_GRAPH_GRAPH_IO_H_
#define ABCS_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief Loads a weighted bipartite edge list.
///
/// Format: one edge per line, `u v [w]`, whitespace separated. Lines
/// starting with `%` or `#` are comments (KONECT `out.*` files use `%`).
/// Ids are `zero_based ? 0-based : 1-based` (KONECT is 1-based). Missing
/// weights default to 1.0.
Status LoadEdgeList(const std::string& path, BipartiteGraph* out,
                    bool zero_based = false);

/// Writes `g` as a 0-based `u v w` edge list readable by LoadEdgeList.
Status SaveEdgeList(const BipartiteGraph& g, const std::string& path);

}  // namespace abcs

#endif  // ABCS_GRAPH_GRAPH_IO_H_
