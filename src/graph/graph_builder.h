#ifndef ABCS_GRAPH_GRAPH_BUILDER_H_
#define ABCS_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief Accumulates weighted edges and materialises an immutable
/// `BipartiteGraph` in CSR form.
///
/// Edges are added with *layer-local* ids: upper ids in `[0, num_upper)`
/// and lower ids in `[0, num_lower)`; `Build()` translates lower ids into
/// the unified id space. Parallel edges are resolved per `DuplicatePolicy`.
class GraphBuilder {
 public:
  /// What to do when the same (u, v) pair is added twice.
  enum class DuplicatePolicy {
    kKeepMax,   ///< keep the largest weight (default; matches rating data)
    kKeepLast,  ///< last write wins
    kSum,       ///< accumulate weights (purchase counts)
    kError,     ///< Build() fails with InvalidArgument
  };

  GraphBuilder() = default;

  /// Pre-sizes the id space. Vertices above the ids actually used by edges
  /// still exist (with degree 0) unless `drop_isolated` is set at Build.
  void Reserve(uint32_t num_upper, uint32_t num_lower, std::size_t num_edges);

  /// Adds edge (upper `u`, lower `v`) with weight `w`. Grows the layer
  /// sizes as needed.
  void AddEdge(uint32_t u, uint32_t v, Weight w);

  /// Number of raw (pre-dedup) edges added so far.
  std::size_t NumPendingEdges() const { return us_.size(); }

  /// Materialises the CSR graph. On success `*out` holds the graph and the
  /// builder may be reused after `Clear()`.
  Status Build(BipartiteGraph* out,
               DuplicatePolicy policy = DuplicatePolicy::kKeepMax) const;

  /// Discards all pending edges.
  void Clear();

 private:
  uint32_t num_upper_ = 0;
  uint32_t num_lower_ = 0;
  std::vector<uint32_t> us_;
  std::vector<uint32_t> vs_;
  std::vector<Weight> ws_;
};

}  // namespace abcs

#endif  // ABCS_GRAPH_GRAPH_BUILDER_H_
