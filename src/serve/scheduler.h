#ifndef ABCS_SERVE_SCHEDULER_H_
#define ABCS_SERVE_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace abcs::serve {

/// \brief Bounded work-stealing task queue for the resident daemon.
///
/// One deque per worker: `Push` appends to the hinted worker's deque
/// (connection affinity keeps a client's pipelined requests in order of
/// execution *start*, and its per-worker scratch warm); `Pop` takes the
/// owner's front, and — in `kWorkStealing` mode — steals from the *back*
/// of the longest other deque when the own one is empty. Stealing from
/// the back takes the newest enqueued work, leaving the victim's oldest
/// (front) requests to their owner so per-connection FIFO start order is
/// preserved exactly when no steal happens and approximately under load.
///
/// `kRoundRobin` disables stealing — each worker only ever sees its own
/// deque, reproducing the head-of-line blocking of the pre-serve
/// QueryEngine stripe. It exists for the scheduler A/B in
/// bench_serve_sustained, not for production use.
///
/// Everything is guarded by one mutex: at community-query service rates
/// (≤ a few hundred k ops/s) a single uncontended lock is nanoseconds,
/// and the simplicity keeps the daemon trivially ThreadSanitizer-clean.
/// Total pending work is bounded by `max_pending`; `Push` fails instead
/// of blocking when full, which the server surfaces as a clean
/// kOverloaded response (admission control, not buffer bloat).
enum class StealMode { kWorkStealing, kRoundRobin };

template <typename T>
class TaskScheduler {
 public:
  TaskScheduler(unsigned workers, std::size_t max_pending,
                StealMode mode = StealMode::kWorkStealing)
      : queues_(workers), max_pending_(max_pending), mode_(mode) {}

  /// Enqueues onto worker `hint % workers`. Returns false when
  /// `max_pending` tasks are already queued (overload) or the scheduler
  /// is closed (shutdown).
  bool Push(T task, unsigned hint) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || pending_ >= max_pending_) return false;
      queues_[hint % queues_.size()].push_back(std::move(task));
      ++pending_;
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until a task is available for worker `t` or the scheduler is
  /// closed *and drained*. Returns false only in the latter case, so
  /// closing never drops accepted work — this is the drain guarantee
  /// behind graceful SIGTERM shutdown.
  bool Pop(unsigned t, T* out) {
    std::unique_lock lock(mu_);
    for (;;) {
      if (TryTakeLocked(t, out)) return true;
      if (closed_) return false;
      cv_.wait(lock);
    }
  }

  /// Stops accepting pushes and wakes every popper; queued tasks are
  /// still handed out until drained.
  void Close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t Pending() const {
    std::lock_guard lock(mu_);
    return pending_;
  }

 private:
  bool TryTakeLocked(unsigned t, T* out) {
    std::deque<T>& own = queues_[t % queues_.size()];
    if (!own.empty()) {
      *out = std::move(own.front());
      own.pop_front();
      --pending_;
      return true;
    }
    if (mode_ != StealMode::kWorkStealing) return false;
    std::deque<T>* victim = nullptr;
    for (std::deque<T>& q : queues_) {
      if (!q.empty() && (victim == nullptr || q.size() > victim->size())) {
        victim = &q;
      }
    }
    if (victim == nullptr) return false;
    *out = std::move(victim->back());
    victim->pop_back();
    --pending_;
    return true;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<T>> queues_;
  std::size_t pending_ = 0;
  const std::size_t max_pending_;
  const StealMode mode_;
  bool closed_ = false;
};

}  // namespace abcs::serve

#endif  // ABCS_SERVE_SCHEDULER_H_
