#ifndef ABCS_SERVE_CLIENT_H_
#define ABCS_SERVE_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/frame.h"
#include "serve/protocol.h"

namespace abcs::serve {

/// Transport knobs for Client. Defaults suit an interactive CLI: bounded
/// waits everywhere, a few transparent retries for idempotent calls.
struct ClientOptions {
  /// Non-blocking connect + poll; a blackholed host fails after this.
  uint32_t connect_timeout_ms = 5000;
  /// Per-call I/O deadline: each send burst and each awaited response
  /// must make progress to completion within this. 0 waits forever.
  uint32_t io_timeout_ms = 30000;
  /// Total tries for idempotent calls (queries, pings, health); 1
  /// disables retry. Updates never use this (see Call).
  uint32_t max_attempts = 4;
  /// Capped exponential backoff between retries: attempt k sleeps
  /// roughly backoff_base_ms * 2^(k-1), capped and jittered down by up
  /// to half to avoid thundering herds.
  uint32_t backoff_base_ms = 20;
  uint32_t backoff_max_ms = 1000;
  /// Seed for the deterministic backoff jitter.
  uint64_t jitter_seed = 1;
  /// When nonzero, shrink SO_RCVBUF before connecting (chaos tooling:
  /// a tiny receive window makes a non-reading client back-pressure the
  /// server quickly).
  uint32_t so_rcvbuf = 0;
};

/// Transport-level telemetry, monotone over the client's lifetime.
struct ClientStats {
  uint64_t connects = 0;    ///< successful connection establishments
  uint64_t reconnects = 0;  ///< connects after the first (retry path)
  uint64_t retries = 0;     ///< idempotent attempts after a failure
  uint64_t timeouts = 0;    ///< connect/send/recv deadline expiries
};

/// \brief Blocking client for the `abcs serve` wire protocol with
/// production transport semantics.
///
/// One TCP connection, synchronous calls. Every socket operation runs
/// non-blocking under a poll deadline (`io_timeout_ms`), retries EINTR,
/// and surfaces failures as typed Status — a Client call can never hang
/// forever and never returns a torn frame.
///
/// Retry policy: queries, pings and health probes are read-only and
/// idempotent, so `Call`/`CallAll` transparently reconnect (capped
/// exponential backoff + jitter) and re-send unanswered requests.
/// Updates are NOT idempotent: once an update frame may have reached the
/// server, the outcome is unknown (the ack is the only boundary), so
/// update calls are never auto-retried — the transport error comes back
/// to the caller, mirroring how kConflict surfaces semantic collisions.
///
/// `SendAll` + `ReceiveAll` remain the raw single-attempt pipelining
/// primitives; `CallAll` is the retrying batch driver built on them.
///
/// Not thread-safe; use one Client per thread (they are cheap).
class Client {
 public:
  Client() = default;
  explicit Client(const ClientOptions& options) : options_(options) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept
      : options_(other.options_),
        stats_(other.stats_),
        host_(std::move(other.host_)),
        port_(other.port_),
        fd_(other.fd_),
        reader_(std::move(other.reader_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      options_ = other.options_;
      stats_ = other.stats_;
      host_ = std::move(other.host_);
      port_ = other.port_;
      fd_ = other.fd_;
      reader_ = std::move(other.reader_);
      other.fd_ = -1;
    }
    return *this;
  }

  /// Remembers the endpoint (for reconnects) and connects, bounded by
  /// connect_timeout_ms.
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One request, one response. Idempotent types retry transparently;
  /// kUpdate gets exactly one transport attempt (see class comment).
  Status Call(const WireRequest& req, WireResponse* resp);

  /// Pipelines the whole batch with transparent resume: on a transport
  /// failure mid-batch, reconnects and re-sends only the unanswered
  /// suffix. Rejects batches containing kUpdate frames. `out` holds the
  /// responses in request order.
  Status CallAll(std::span<const WireRequest> requests,
                 std::vector<WireResponse>* out);

  /// Writes every request as one framed burst (pipelining). Single
  /// attempt on the current connection.
  Status SendAll(std::span<const WireRequest> requests);

  /// Reads exactly `n` responses, in request order. Single attempt.
  Status ReceiveAll(std::size_t n, std::vector<WireResponse>* out);

  /// Liveness probe: a kPing round trip. `epoch`, when non-null, receives
  /// the server's current snapshot epoch.
  Status Ping(uint64_t* epoch = nullptr);

  /// Health probe: a kHealth round trip answered with the watchdog's
  /// snapshot (state, queue depth, inflight, epoch, memo stats).
  Status Health(WireHealth* out);

  /// One live-update round trip. `u`/`v` are layer-local ids (upper,
  /// lower); `weight` is ignored for remove/commit. The wire status
  /// (kOk / kConflict / kOverloaded / ...) comes back in `resp->status`;
  /// the Status return only reports transport failures — which are never
  /// auto-retried for updates (the outcome may have been applied).
  Status Update(UpdateOp op, uint32_t u, uint32_t v, double weight,
                WireResponse* resp);

  /// Publishes everything applied since the last commit; on success
  /// `*epoch` (when non-null) is the newly visible epoch.
  Status Commit(uint64_t* epoch = nullptr);

  const ClientStats& stats() const { return stats_; }
  const ClientOptions& options() const { return options_; }

 private:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// steady_clock::time_point::max() when `ms` is 0 (wait forever).
  static TimePoint DeadlineIn(uint32_t ms);

  Status ConnectNow();
  /// Runs `once` (connect included) up to max_attempts times with
  /// backoff; only for idempotent traffic.
  Status RetryIdempotent(const std::function<Status()>& once);
  void BackoffSleep(uint32_t attempt);
  /// Polls `fd_` for `events` until ready or `deadline`; EINTR-correct.
  Status WaitFd(short events, TimePoint deadline, const char* what);
  Status SendBytes(std::span<const std::byte> bytes);
  /// Reads one frame payload into `payload` under the I/O deadline.
  Status ReceiveFrame(std::vector<std::byte>* payload);
  Status ReceiveOne(WireResponse* resp);

  ClientOptions options_;
  ClientStats stats_;
  std::string host_;
  uint16_t port_ = 0;
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace abcs::serve

#endif  // ABCS_SERVE_CLIENT_H_
