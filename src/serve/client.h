#ifndef ABCS_SERVE_CLIENT_H_
#define ABCS_SERVE_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/frame.h"
#include "serve/protocol.h"

namespace abcs::serve {

/// \brief Small blocking client for the `abcs serve` wire protocol.
///
/// One TCP connection, synchronous calls. `Call` is one round trip;
/// `SendAll` + `ReceiveAll` pipeline a whole batch in two syscall bursts —
/// the server's per-connection sequencer guarantees responses come back
/// in request order, so response i answers request i.
///
/// Not thread-safe; use one Client per thread (they are cheap).
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept
      : fd_(other.fd_), reader_(std::move(other.reader_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      reader_ = std::move(other.reader_);
      other.fd_ = -1;
    }
    return *this;
  }

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One request, one response.
  Status Call(const WireRequest& req, WireResponse* resp);

  /// Writes every request as one framed burst (pipelining).
  Status SendAll(std::span<const WireRequest> requests);

  /// Reads exactly `n` responses, in request order.
  Status ReceiveAll(std::size_t n, std::vector<WireResponse>* out);

  /// Liveness probe: a kPing round trip. `epoch`, when non-null, receives
  /// the server's current snapshot epoch.
  Status Ping(uint64_t* epoch = nullptr);

  /// One live-update round trip. `u`/`v` are layer-local ids (upper,
  /// lower); `weight` is ignored for remove/commit. The wire status
  /// (kOk / kConflict / kOverloaded / ...) comes back in `resp->status`;
  /// the Status return only reports transport failures.
  Status Update(UpdateOp op, uint32_t u, uint32_t v, double weight,
                WireResponse* resp);

  /// Publishes everything applied since the last commit; on success
  /// `*epoch` (when non-null) is the newly visible epoch.
  Status Commit(uint64_t* epoch = nullptr);

 private:
  Status ReceiveOne(WireResponse* resp);

  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace abcs::serve

#endif  // ABCS_SERVE_CLIENT_H_
