#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>

#include "core/scs_auto.h"
#include "io/fault_inject.h"
#include "io/index_bundle.h"
#include "serve/net_ops.h"

namespace abcs::serve {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

ScsAlgo ScsAlgoOf(WireMethod method) {
  switch (method) {
    case WireMethod::kScsPeel:
      return ScsAlgo::kPeel;
    case WireMethod::kScsExpand:
      return ScsAlgo::kExpand;
    case WireMethod::kScsBinary:
      return ScsAlgo::kBinary;
    default:
      return ScsAlgo::kAuto;
  }
}

}  // namespace

/// Per-connection state. The reader thread is the only producer of
/// sequence numbers; responses may be completed by any worker, so the
/// write side is a sequencer: completions park in `out_of_order` until
/// every earlier sequence number has been written, which keeps pipelined
/// responses in request order no matter how stealing reorders execution.
struct Server::Connection {
  int fd = -1;
  uint64_t id = 0;
  std::thread reader;
  std::atomic<bool> reader_done{false};
  uint32_t assigned_seq = 0;  ///< touched only by the reader thread

  std::mutex write_mu;
  uint32_t next_seq = 0;  ///< guarded by write_mu
  std::map<uint32_t, std::vector<std::byte>> out_of_order;  ///< ditto
  bool dead = false;  ///< shed or write-failed; drop later writes. ditto

  // Bounded output buffer for bytes the non-blocking socket would not
  // take immediately: [out_off, outbuf.size()) is unsent. All guarded by
  // write_mu; the flusher thread drains it and enforces the write
  // deadline, so a slow peer never blocks a worker.
  std::vector<std::byte> outbuf;
  std::size_t out_off = 0;
  /// When the current backlog began (outbuf went nonempty); the write
  /// deadline counts from here and resets only on a full drain.
  std::chrono::steady_clock::time_point out_since;
  bool in_flusher = false;  ///< queued for the flusher thread

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

Server::Server(const BipartiteGraph& g, const DeltaIndex* delta,
               const BicoreIndex* bicore, const ServerOptions& options)
    : graph_(&g),
      delta_(delta),
      bicore_(bicore),
      options_(options),
      resolved_threads_(options.num_threads
                            ? options.num_threads
                            : std::max(1u,
                                       std::thread::hardware_concurrency())),
      memo_(options.memo_max_entries),
      scheduler_(resolved_threads_, options.max_queue,
                 StealMode::kWorkStealing) {
  SnapshotManagerOptions smo;
  smo.update_queue = options.update_queue;
  smo.compact_path = options.compact_path;
  smo.compact_every = options.compact_every;
  smo.publish_threads =
      options.publish_threads ? options.publish_threads : resolved_threads_;
  snapshots_ = std::make_unique<SnapshotManager>(g, delta, bicore,
                                                 options.seed_decomp, smo);
  worker_states_.reserve(resolved_threads_);
  for (unsigned t = 0; t < resolved_threads_; ++t) {
    worker_states_.push_back(std::make_unique<WorkerState>());
  }
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IOError(ErrnoMessage("socket"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("cannot parse host " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st = Status::IOError(ErrnoMessage("bind"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) != 0) {
    const Status st = Status::IOError(ErrnoMessage("listen"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    const Status st = Status::IOError(ErrnoMessage("getsockname"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(addr.sin_port);

  // Align the memo with the seed snapshot before any worker can probe it.
  memo_.SetEpoch(snapshots_->Epoch());
  if (options_.enable_updates) {
    snapshots_->set_publish_hook(
        [this](const Snapshot& snap, const UpdateSummary& summary,
               const std::vector<uint8_t>& touched) {
          // δ growth/shrink re-bins every offset row: nothing survives.
          memo_.AdvanceEpoch(snap.epoch(), summary.topology_changed,
                             /*flush_all=*/summary.delta_changed, touched);
        });
    const Status st = snapshots_->Start();
    if (!st.ok()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return st;
    }
  }

  if (::pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) != 0) {
    const Status st = Status::IOError(ErrnoMessage("pipe2"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  if (options_.scrub_interval_ms > 0) {
    // The scrubber republishes through PublishRecovery, which must never
    // race the update writer's own Publish.
    if (options_.bundle_path.empty()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::InvalidArgument("scrubbing requires a bundle path");
    }
    if (options_.enable_updates) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::InvalidArgument(
          "scrubbing requires static serving (updates disabled)");
    }
  }

  started_ = true;
  accepting_.store(true);
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  workers_.reserve(resolved_threads_);
  for (unsigned t = 0; t < resolved_threads_; ++t) {
    workers_.emplace_back(&Server::WorkerLoop, this, t);
  }
  flusher_ = std::thread(&Server::FlusherLoop, this);
  if (options_.watchdog_interval_ms > 0) {
    watchdog_ = std::thread(&Server::WatchdogLoop, this);
  }
  if (options_.scrub_interval_ms > 0) {
    scrub_path_ = options_.bundle_path;
    scrubber_ = std::thread(&Server::ScrubberLoop, this);
  }
  return Status::OK();
}

void Server::Shutdown() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // 1. Refuse new work: no new connections, readers answer kShuttingDown.
  draining_.store(true);
  accepting_.store(false);
  if (accept_thread_.joinable()) accept_thread_.join();
  // 2. Half-close every read side; blocked recv()s wake with EOF and the
  //    readers exit after flushing already-buffered frames.
  {
    std::lock_guard lock(conns_mu_);
    for (const auto& c : conns_) ::shutdown(c->fd, SHUT_RD);
    for (const auto& c : conns_) {
      if (c->reader.joinable()) c->reader.join();
    }
  }
  // 3. Drain the update writer: every admitted update is applied, the
  //    uncommitted tail is published and compacted, and each completion
  //    flushes its response through the still-open connections. Readers
  //    are joined, so no op can slip in behind the drain.
  snapshots_->Drain();
  // 4. Drain the query pool: every admitted request still gets executed
  //    and its response written before the workers exit
  //    (TaskScheduler::Close hands out queued tasks until empty). With
  //    fast_drain the backlog is answered kDeadlineExceeded instead —
  //    every admitted request still gets *a* response, just not a
  //    computed one.
  if (options_.fast_drain) fast_drain_.store(true);
  counters_.drained_tasks.store(scheduler_.Pending());
  scheduler_.Close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // 5. Final flush: no thread can submit frames anymore, so the flusher
  //    drains every pending output buffer (bounded — a peer that still
  //    won't read is shed by the write deadline) and exits.
  flusher_stop_.store(true);
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  }
  if (flusher_.joinable()) flusher_.join();
  {
    std::lock_guard lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  {
    std::lock_guard lock(scrub_mu_);
    scrub_stop_ = true;
  }
  scrub_cv_.notify_all();
  if (scrubber_.joinable()) scrubber_.join();
  // 6. Tear down. Connection fds close when the last reference drops —
  //    all workers and the flusher have joined, so that is here.
  {
    std::lock_guard lock(conns_mu_);
    conns_.clear();
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

ServeStats Server::Stats() const {
  ServeStats s;
  s.connections_accepted = counters_.connections_accepted.load();
  s.connections_rejected = counters_.connections_rejected.load();
  s.requests = counters_.requests.load();
  s.responses_ok = counters_.responses_ok.load();
  s.responses_error = counters_.responses_error.load();
  s.memo_hits = counters_.memo_hits.load();
  s.deadline_expired = counters_.deadline_expired.load();
  s.stuck_cancelled = counters_.stuck_cancelled.load();
  s.overloaded = counters_.overloaded.load();
  s.protocol_errors = counters_.protocol_errors.load();
  s.slow_client_dropped = counters_.slow_client_dropped.load();
  s.health_probes = counters_.health_probes.load();
  s.drained_tasks = counters_.drained_tasks.load();
  s.scrub_passes = counters_.scrub_passes.load();
  s.scrub_corruptions = counters_.scrub_corruptions.load();
  s.scrub_recoveries = counters_.scrub_recoveries.load();
  const UpdateStats us = snapshots_->Stats();
  s.updates_applied = us.applied;
  s.update_conflicts = us.conflicts;
  s.epochs_published = us.commits;
  s.compactions = us.compactions;
  s.update_overflows = us.overflows;
  return s;
}

void Server::AcceptLoop() {
  while (accepting_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    // A negative return here is EINTR or a transient kernel hiccup;
    // either way the right move is the same as a timeout: reap and
    // re-poll, never exit the accept loop.
    const int ready = NetPoll(&pfd, 1, /*timeout_ms=*/100, "net.accept_poll");
    {
      std::lock_guard lock(conns_mu_);
      ReapConnectionsLocked();
    }
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    // Non-blocking from birth: responses go through the bounded output
    // buffer + flusher, and a ready-reported but already-lost connection
    // cannot hang the accept thread.
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) continue;
    std::lock_guard lock(conns_mu_);
    if (draining_.load() || conns_.size() >= options_.max_connections) {
      counters_.connections_rejected.fetch_add(1);
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.so_sndbuf > 0) {
      const int sz = static_cast<int>(options_.so_sndbuf);
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sz, sizeof(sz));
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    counters_.connections_accepted.fetch_add(1);
    active_conns_.fetch_add(1);
    conn->reader = std::thread(&Server::ReaderLoop, this, conn);
    conns_.push_back(std::move(conn));
  }
}

void Server::ReapConnectionsLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->reader_done.load()) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      // In-flight tasks keep the Connection alive through their
      // shared_ptr; the fd closes when the last response is delivered.
      active_conns_.fetch_sub(1);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  FrameReader reader;
  std::byte buf[4096];
  for (;;) {
    // The socket is non-blocking, so pace reads with poll; the timeout
    // doubles as the exit check for shed connections (shutdown(2) on the
    // fd turns the next recv into EOF).
    pollfd pfd{conn->fd, POLLIN, 0};
    const int ready = NetPoll(&pfd, 1, /*timeout_ms=*/100,
                              "net.server_recv_poll");
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const ssize_t n = NetRecv(conn->fd, buf, sizeof(buf), "net.server_recv");
    if (n == 0) break;
    if (n < 0) {
      // EINTR/EAGAIN are re-pollable, not connection death (the bug this
      // loop used to share with the response writer).
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      break;
    }
    if (!reader.Append({buf, static_cast<std::size_t>(n)}).ok()) {
      counters_.protocol_errors.fetch_add(1);
      break;  // framing is unrecoverable: kill the connection
    }
    std::span<const std::byte> payload;
    while (reader.Next(&payload)) HandleFrame(conn, payload);
    if (reader.Poisoned()) {
      counters_.protocol_errors.fetch_add(1);
      break;
    }
  }
  if (reader.PendingBytes() > 0) {
    // EOF mid-frame: the peer truncated its last request.
    counters_.protocol_errors.fetch_add(1);
  }
  conn->reader_done.store(true);
}

void Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         std::span<const std::byte> payload) {
  const uint32_t seq = conn->assigned_seq++;
  counters_.requests.fetch_add(1);
  WireRequest req;
  WireResponse resp;
  const Status st = DecodeRequest(payload, &req);
  if (!st.ok()) {
    // The frame boundary held, so the stream stays usable; only this
    // request is rejected.
    counters_.protocol_errors.fetch_add(1);
    resp.status = WireStatus::kBadRequest;
    Respond(conn, seq, resp);
    return;
  }
  resp.type = req.type;
  if (req.type == MessageType::kPing) {
    resp.epoch = snapshots_->Epoch();
    Respond(conn, seq, resp);
    return;
  }
  if (req.type == MessageType::kHealth) {
    // Answered inline like ping, but with the watchdog's extended frame.
    counters_.health_probes.fetch_add(1);
    counters_.responses_ok.fetch_add(1);
    std::vector<std::byte> payload;
    EncodeHealthResponse(BuildHealth(), &payload);
    std::vector<std::byte> framed;
    AppendFrame(payload, &framed);
    SubmitFrame(conn, seq, std::move(framed));
    return;
  }
  if (req.type == MessageType::kUpdate) {
    resp.epoch = snapshots_->Epoch();
    if (!options_.enable_updates) {
      resp.status = WireStatus::kUpdatesDisabled;
      Respond(conn, seq, resp);
      return;
    }
    if (draining_.load()) {
      resp.status = WireStatus::kShuttingDown;
      Respond(conn, seq, resp);
      return;
    }
    // Vertex universes are fixed across epochs (updates rewire edges, not
    // vertex sets), so shape checks against the seed graph stay valid.
    if (req.op != UpdateOp::kCommit &&
        (req.u >= graph_->NumUpper() || req.v >= graph_->NumLower())) {
      resp.status = WireStatus::kInvalidVertex;
      Respond(conn, seq, resp);
      return;
    }
    // The done callback fires exactly once: on the writer thread after
    // application, or synchronously on rejection (queue full / draining).
    const MessageType type = req.type;
    snapshots_->Enqueue(req.op, req.u, req.v, req.weight,
                        [this, conn, seq, type](WireStatus ws,
                                                uint64_t epoch) {
                          WireResponse r;
                          r.type = type;
                          r.status = ws;
                          r.epoch = epoch;
                          Respond(conn, seq, r);
                        });
    return;
  }
  const uint32_t layer_size =
      req.lower_side ? graph_->NumLower() : graph_->NumUpper();
  if (req.q >= layer_size) {
    resp.status = WireStatus::kInvalidVertex;
    Respond(conn, seq, resp);
    return;
  }
  if (req.method == WireMethod::kBicore && bicore_ == nullptr) {
    resp.status = WireStatus::kBadRequest;
    Respond(conn, seq, resp);
    return;
  }
  if (draining_.load()) {
    resp.status = WireStatus::kShuttingDown;
    Respond(conn, seq, resp);
    return;
  }
  Task task;
  task.conn = conn;
  task.seq = seq;
  task.req = req;
  task.arrival = std::chrono::steady_clock::now();
  // Pin the epoch at admission: the whole request executes against this
  // frozen snapshot even if the writer publishes midway.
  task.snap = snapshots_->Current();
  if (!scheduler_.Push(std::move(task), static_cast<unsigned>(conn->id))) {
    counters_.overloaded.fetch_add(1);
    resp.status = WireStatus::kOverloaded;
    Respond(conn, seq, resp);
  }
}

void Server::WorkerLoop(unsigned t) {
  Task task;
  WorkerState& ws = *worker_states_[t];
  while (scheduler_.Pop(t, &task)) {
    inflight_.fetch_add(1);
    const Snapshot& snap = *task.snap;
    WireResponse resp;
    resp.type = MessageType::kQuery;
    resp.epoch = snap.epoch();
    const uint32_t deadline_ms = task.req.deadline_ms
                                     ? task.req.deadline_ms
                                     : options_.default_deadline_ms;
    const auto waited = std::chrono::steady_clock::now() - task.arrival;
    const bool expired_in_queue =
        deadline_ms > 0 && waited > std::chrono::milliseconds(deadline_ms);
    if (expired_in_queue || fast_drain_.load(std::memory_order_acquire)) {
      counters_.deadline_expired.fetch_add(1);
      resp.status = WireStatus::kDeadlineExceeded;
      Respond(task.conn, task.seq, resp);
      inflight_.fetch_sub(1);
      continue;
    }
    const VertexId q = task.req.lower_side
                           ? snap.graph().NumUpper() + task.req.q
                           : task.req.q;
    MemoValue value;
    if (options_.enable_memo &&
        memo_.Lookup(task.req.method, task.req.alpha, task.req.beta, q,
                     &value, snap.epoch())) {
      counters_.memo_hits.fetch_add(1);
      resp.found = value.found;
      resp.num_edges = value.num_edges;
      resp.result_edges = value.result_edges;
      resp.kernel = value.kernel;
      resp.significance = value.significance;
      resp.memo_hit = true;
    } else {
      // Arm the worker's token around the execution: the queue wait
      // already consumed part of the budget, so the kernels get only the
      // remainder. Armed even without a deadline (remaining_ms = 0 means
      // deadline-free) so the watchdog can always cancel a stuck query.
      uint32_t remaining_ms = 0;
      if (deadline_ms > 0) {
        const auto left = std::chrono::milliseconds(deadline_ms) - waited;
        remaining_ms = static_cast<uint32_t>(std::max<int64_t>(
            1, std::chrono::duration_cast<std::chrono::milliseconds>(left)
                   .count()));
      }
      ws.scratch.set_cancel_token(&ws.token);
      ws.token.Arm(remaining_ms);
      Execute(task.req, snap, t, &resp);
      const bool stopped = ws.token.Stopped();
      const CancelToken::StopReason reason = ws.token.reason();
      ws.token.Finish();
      ws.scratch.set_cancel_token(nullptr);
      if (stopped) {
        // The kernels unwound mid-query: the partial answer is meaningless
        // and must not poison the memo. Count by who pulled the trigger.
        if (reason == CancelToken::StopReason::kCancelled) {
          counters_.stuck_cancelled.fetch_add(1);
        } else {
          counters_.deadline_expired.fetch_add(1);
        }
        resp = WireResponse{};
        resp.type = MessageType::kQuery;
        resp.epoch = snap.epoch();
        resp.status = WireStatus::kDeadlineExceeded;
      } else if (options_.enable_memo) {
        value = MemoValue{resp.found, resp.num_edges, resp.result_edges,
                          resp.kernel, resp.significance};
        memo_.Insert(task.req.method, task.req.alpha, task.req.beta, q,
                     snap.graph(), ws.community, value, snap.epoch());
      }
    }
    Respond(task.conn, task.seq, resp);
    inflight_.fetch_sub(1);
  }
}

void Server::Execute(const WireRequest& req, const Snapshot& snap, unsigned t,
                     WireResponse* resp) {
  WorkerState& ws = *worker_states_[t];
  const BipartiteGraph& g = snap.graph();
  const VertexId q = req.lower_side ? g.NumUpper() + req.q : req.q;
  const QueryRequest qr{q, req.alpha, req.beta};
  // Retrieval first: the three plain methods answer with C itself, the
  // SCS methods retrieve C through I_δ exactly like `abcs query --batch
  // --method scs-*` before extracting R.
  switch (req.method) {
    case WireMethod::kOnline:
      snap.online_engine().Query(qr, ws.scratch, &ws.community);
      break;
    case WireMethod::kBicore:
      snap.bicore_engine().Query(qr, ws.scratch, &ws.community);
      break;
    default:
      snap.delta_engine().Query(qr, ws.scratch, &ws.community);
      break;
  }
  resp->num_edges = static_cast<uint32_t>(ws.community.edges.size());
  if (IsScsMethod(req.method)) {
    ScsStats stats;
    ScsQueryInto(g, ws.community, q, req.alpha, req.beta,
                 ScsAlgoOf(req.method), ScsOptions{}, &ws.scs, &stats,
                 &ws.scratch, &ws.workspace);
    resp->found = ws.scs.found;
    resp->result_edges = static_cast<uint32_t>(ws.scs.community.edges.size());
    resp->significance = ws.scs.significance;
    resp->kernel = static_cast<uint8_t>(stats.algo_used);
  } else {
    resp->found = !ws.community.Empty();
  }
}

void Server::Respond(const std::shared_ptr<Connection>& conn, uint32_t seq,
                     const WireResponse& resp) {
  if (resp.status == WireStatus::kOk) {
    counters_.responses_ok.fetch_add(1);
  } else {
    counters_.responses_error.fetch_add(1);
  }
  std::vector<std::byte> payload;
  EncodeResponse(resp, &payload);
  std::vector<std::byte> framed;
  AppendFrame(payload, &framed);
  SubmitFrame(conn, seq, std::move(framed));
}

void Server::SubmitFrame(const std::shared_ptr<Connection>& conn,
                         uint32_t seq, std::vector<std::byte> framed) {
  bool enqueue = false;
  {
    std::lock_guard lock(conn->write_mu);
    conn->out_of_order[seq] = std::move(framed);
    // Move the in-order prefix into the output buffer. Dead connections
    // still advance the sequencer (the map must drain); their bytes are
    // simply dropped.
    auto it = conn->out_of_order.begin();
    while (it != conn->out_of_order.end() && it->first == conn->next_seq) {
      if (!conn->dead) {
        if (conn->out_off == conn->outbuf.size()) {
          conn->outbuf.clear();
          conn->out_off = 0;
          conn->out_since = std::chrono::steady_clock::now();
        }
        conn->outbuf.insert(conn->outbuf.end(), it->second.begin(),
                            it->second.end());
      }
      it = conn->out_of_order.erase(it);
      ++conn->next_seq;
    }
    if (!conn->dead) FlushLocked(conn.get());
    enqueue = !conn->dead && conn->out_off < conn->outbuf.size() &&
              !conn->in_flusher;
    if (enqueue) conn->in_flusher = true;
  }
  if (enqueue) {
    {
      std::lock_guard lock(flush_mu_);
      flush_pending_.push_back(conn);
    }
    const char byte = 1;
    [[maybe_unused]] const ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::FlushLocked(Connection* conn) {
  while (conn->out_off < conn->outbuf.size()) {
    const ssize_t n =
        NetSend(conn->fd, conn->outbuf.data() + conn->out_off,
                conn->outbuf.size() - conn->out_off, "net.server_send");
    if (n > 0) {
      conn->out_off += static_cast<std::size_t>(n);
      continue;
    }
    // EINTR used to mark the connection dead here, dropping every
    // remaining in-order response; it is just a retry.
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    KillLocked(conn);
    return;
  }
  if (conn->out_off == conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->out_off = 0;
    return;
  }
  if (conn->outbuf.size() - conn->out_off > options_.max_output_buffer) {
    counters_.slow_client_dropped.fetch_add(1);
    KillLocked(conn);
  }
}

void Server::KillLocked(Connection* conn) {
  if (conn->dead) return;
  conn->dead = true;
  conn->outbuf.clear();
  conn->out_off = 0;
  // Wakes the reader (its next recv sees EOF) and tells the peer.
  ::shutdown(conn->fd, SHUT_RDWR);
}

void Server::FlusherLoop() {
  std::vector<std::shared_ptr<Connection>> watched;
  std::vector<pollfd> fds;
  for (;;) {
    {
      std::lock_guard lock(flush_mu_);
      for (auto& c : flush_pending_) watched.push_back(std::move(c));
      flush_pending_.clear();
    }
    if (watched.empty() && flusher_stop_.load()) {
      // No submitter is alive once the stop flag is set, so an empty
      // watch set is final.
      std::lock_guard lock(flush_mu_);
      if (flush_pending_.empty()) break;
      continue;
    }
    fds.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const auto& c : watched) fds.push_back({c->fd, POLLOUT, 0});
    // The 50ms cap bounds how late a write-deadline check can run.
    const int ready = NetPoll(fds.data(), static_cast<nfds_t>(fds.size()),
                              /*timeout_ms=*/50, "net.flush_poll");
    if (ready < 0) continue;  // EINTR: re-build and re-poll
    if ((fds[0].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    const auto now = std::chrono::steady_clock::now();
    // write_deadline_ms = 0 disables shedding while serving, but the
    // final drain must stay bounded: a peer that won't read during
    // shutdown is shed after 1s so Shutdown() cannot hang.
    uint32_t deadline_ms = options_.write_deadline_ms;
    if (flusher_stop_.load() && deadline_ms == 0) deadline_ms = 1000;
    const auto deadline = std::chrono::milliseconds(deadline_ms);
    for (std::size_t i = 0; i < watched.size();) {
      Connection* conn = watched[i].get();
      bool done;
      {
        std::lock_guard lock(conn->write_mu);
        if (!conn->dead) FlushLocked(conn);
        if (!conn->dead && conn->out_off < conn->outbuf.size() &&
            deadline_ms > 0 && now - conn->out_since > deadline) {
          // The peer stopped reading: shed it rather than buffer forever.
          counters_.slow_client_dropped.fetch_add(1);
          KillLocked(conn);
        }
        done = conn->dead || conn->out_off >= conn->outbuf.size();
        if (done) conn->in_flusher = false;
      }
      if (done) {
        watched[i] = std::move(watched.back());
        watched.pop_back();
      } else {
        ++i;
      }
    }
  }
}

void Server::WatchdogLoop() {
  uint64_t last_completed = 0;
  // Per-worker progress samples: a worker whose token stays armed on the
  // same generation with a frozen work counter across one full interval
  // is executing a query that makes no kernel progress — cancel exactly
  // that generation (a finished-and-rearmed query has a new one, so the
  // race is benign) and degrade health until it unwinds.
  struct WorkerSample {
    uint64_t gen = 0;
    uint64_t work = 0;
    uint64_t cancelled_gen = 0;  ///< last generation we escalated
    bool armed = false;
  };
  std::vector<WorkerSample> last(worker_states_.size());
  std::unique_lock lock(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.watchdog_interval_ms));
    if (watchdog_stop_) break;
    const uint64_t completed =
        counters_.responses_ok.load() + counters_.responses_error.load();
    // Stall = admitted work exists but nothing completed all interval.
    stalled_.store(scheduler_.Pending() > 0 && completed == last_completed);
    last_completed = completed;
    bool any_stuck = false;
    for (std::size_t t = 0; t < worker_states_.size(); ++t) {
      CancelToken& token = worker_states_[t]->token;
      const bool armed = token.armed();
      const uint64_t gen = token.generation();
      const uint64_t work = token.work();
      WorkerSample& s = last[t];
      if (armed && s.armed && gen == s.gen && work == s.work) {
        any_stuck = true;
        if (s.cancelled_gen != gen) {
          // Counted at escalation, once per query; the worker's own
          // unwind path answers the client kDeadlineExceeded.
          token.CancelGeneration(gen);
          s.cancelled_gen = gen;
          counters_.stuck_cancelled.fetch_add(1);
        }
      }
      s.gen = gen;
      s.work = work;
      s.armed = armed;
    }
    stuck_.store(any_stuck);
  }
}

void Server::ScrubberLoop() {
  std::unique_lock lock(scrub_mu_);
  while (!scrub_stop_) {
    scrub_cv_.wait_for(lock,
                       std::chrono::milliseconds(options_.scrub_interval_ms));
    if (scrub_stop_) break;
    lock.unlock();
    ScrubPass();
    lock.lock();
  }
}

void Server::ScrubPass() {
  // Deterministic corruption seam for the chaos harness: the scrubber
  // damages its *own* file right before verifying it, so detection and
  // recovery run on a real on-disk fault with no timing dependence.
  const NetFaultInjector::Decision d = NetFaultPoint("scrub.before_pass");
  if (d.kind == NetFaultInjector::ActionKind::kFlipByte) {
    const int fd = ::open(scrub_path_.c_str(), O_RDWR);
    if (fd >= 0) {
      std::byte b{};
      if (::pread(fd, &b, 1, static_cast<off_t>(d.arg)) == 1) {
        b ^= std::byte{0xff};
        [[maybe_unused]] const ssize_t w =
            ::pwrite(fd, &b, 1, static_cast<off_t>(d.arg));
      }
      ::close(fd);
    }
  } else if (d.kind == NetFaultInjector::ActionKind::kTruncate) {
    [[maybe_unused]] const int rc =
        ::truncate(scrub_path_.c_str(), static_cast<off_t>(d.arg));
  }

  counters_.scrub_passes.fetch_add(1);
  // kRead, not kMmap: a concurrently truncated file then fails with a
  // clean Corruption/IOError instead of a SIGBUS on a vanished page.
  BundleOpenOptions verify_opts;
  verify_opts.mode = BundleOpenMode::kRead;
  verify_opts.verify_checksums = true;
  std::unique_ptr<IndexBundle> probe;
  const Status st = OpenIndexBundle(scrub_path_, &probe, verify_opts);
  if (st.ok()) {
    scrub_corrupt_.store(false);
    return;
  }
  counters_.scrub_corruptions.fetch_add(1);
  scrub_corrupt_.store(true);
  std::fprintf(stderr, "# scrub: %s failed verification: %s\n",
               scrub_path_.c_str(), st.ToString().c_str());

  // Quarantine the damaged file (the rename moves the name, not the
  // inode — readers pinned on the old epoch keep their mapping and drain
  // untouched), then recover the newest verifiable epoch via the same
  // `.prev` fallback the startup path uses.
  const std::string quarantine = scrub_path_ + ".quarantined";
  if (std::rename(scrub_path_.c_str(), quarantine.c_str()) != 0) {
    std::fprintf(stderr, "# scrub: quarantine rename failed: %s\n",
                 std::strerror(errno));
  }
  std::unique_ptr<IndexBundle> recovered;
  std::string diagnostic;
  const Status rst = OpenBundleWithFallback(options_.bundle_path, &recovered,
                                            BundleOpenOptions{}, &diagnostic);
  if (!rst.ok()) {
    // No verifiable epoch on disk: stay degraded, keep serving the pinned
    // in-memory state, retry next pass.
    std::fprintf(stderr, "# scrub: recovery failed: %s\n",
                 rst.ToString().c_str());
    return;
  }
  std::shared_ptr<const IndexBundle> owner(std::move(recovered));
  const BipartiteGraph& g = owner->graph();
  const DeltaIndex* delta = &owner->delta_index();
  const BicoreIndex* bicore = &owner->bicore_index();
  const uint64_t epoch = snapshots_->PublishRecovery(
      std::shared_ptr<const void>(owner), g, delta, bicore);
  // The recovered epoch may be an older commit than the corrupted one:
  // nothing cached is trustworthy, flush everything and re-align.
  memo_.Invalidate();
  memo_.SetEpoch(epoch);
  scrub_path_ = options_.bundle_path + ".prev";
  counters_.scrub_recoveries.fetch_add(1);
  scrub_corrupt_.store(false);
  std::fprintf(stderr, "# scrub: recovered epoch %llu from %s (%s)\n",
               static_cast<unsigned long long>(epoch), scrub_path_.c_str(),
               diagnostic.c_str());
}

WireHealth Server::BuildHealth() {
  WireHealth h;
  const std::size_t depth = scheduler_.Pending();
  h.queue_depth = static_cast<uint32_t>(
      std::min<std::size_t>(depth, std::numeric_limits<uint32_t>::max()));
  h.inflight = static_cast<uint32_t>(inflight_.load());
  h.connections = static_cast<uint32_t>(active_conns_.load());
  h.slow_client_dropped =
      static_cast<uint32_t>(counters_.slow_client_dropped.load());
  h.epoch = snapshots_->Epoch();
  h.memo_hits = memo_.hits();
  h.requests = counters_.requests.load();
  if (draining_.load()) {
    h.state = HealthState::kDraining;
  } else if (stalled_.load() || stuck_.load() || scrub_corrupt_.load() ||
             depth > options_.max_queue / 2) {
    h.state = HealthState::kDegraded;
  } else {
    h.state = HealthState::kLive;
  }
  return h;
}

}  // namespace abcs::serve
