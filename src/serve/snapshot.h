#ifndef ABCS_SERVE_SNAPSHOT_H_
#define ABCS_SERVE_SNAPSHOT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "abcore/offsets.h"
#include "common/status.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "core/maintenance.h"
#include "core/query_engine.h"
#include "graph/bipartite_graph.h"
#include "serve/protocol.h"

namespace abcs::serve {

/// \brief One immutable epoch of the served state: graph + decomposition +
/// both index layers + the three pre-wired query engines, all frozen at a
/// commit boundary.
///
/// Reclamation is refcount RCU: readers pin an epoch by copying the
/// manager's `shared_ptr<const Snapshot>` at admission and hold it for the
/// life of the request; the writer publishes a successor and drops its own
/// reference; the snapshot retires (frees) exactly when the last pinned
/// reader releases it — never while pinned, never needing a grace period.
///
/// Structural sharing: a weights-only batch publishes a snapshot that
/// reuses the predecessor's `BicoreDecomposition` (offsets are
/// topology-only), so the expensive part of the chain is copy-on-write at
/// commit granularity.
class Snapshot {
 public:
  /// Borrowed form — the static-serving epoch 1. Caller guarantees the
  /// graph and indexes outlive every pin (the daemon's startup state).
  Snapshot(uint64_t epoch, const BipartiteGraph& g, const DeltaIndex* delta,
           const BicoreIndex* bicore);

  /// Owned form — published by the writer; members keep each other alive
  /// (`delta`/`bicore` were built against `*graph`).
  Snapshot(uint64_t epoch, std::shared_ptr<const BipartiteGraph> graph,
           std::shared_ptr<const BicoreDecomposition> decomp,
           std::shared_ptr<const DeltaIndex> delta,
           std::shared_ptr<const BicoreIndex> bicore);

  /// Keepalive form — borrowed serving pointers whose backing storage is a
  /// type-erased owner (the scrubber's recovered `IndexBundle`): the bundle
  /// stays mapped until the last pinned reader releases this epoch.
  Snapshot(uint64_t epoch, std::shared_ptr<const void> keepalive,
           const BipartiteGraph& g, const DeltaIndex* delta,
           const BicoreIndex* bicore);

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  uint64_t epoch() const { return epoch_; }
  const BipartiteGraph& graph() const { return *graph_; }
  const DeltaIndex* delta_index() const { return delta_; }
  const BicoreIndex* bicore_index() const { return bicore_; }
  /// Non-null only for owned snapshots (compaction's input).
  const BicoreDecomposition* decomposition() const { return decomp_.get(); }

  const QueryEngine& online_engine() const { return online_engine_; }
  const QueryEngine& bicore_engine() const { return bicore_engine_; }
  const QueryEngine& delta_engine() const { return delta_engine_; }

 private:
  uint64_t epoch_;
  // Keep-alives (null in the borrowed form).
  std::shared_ptr<const void> keepalive_;  ///< recovered-bundle owner
  std::shared_ptr<const BipartiteGraph> owned_graph_;
  std::shared_ptr<const BicoreDecomposition> decomp_;
  std::shared_ptr<const DeltaIndex> owned_delta_;
  std::shared_ptr<const BicoreIndex> owned_bicore_;
  // Serving pointers, valid in both forms.
  const BipartiteGraph* graph_;
  const DeltaIndex* delta_;
  const BicoreIndex* bicore_;
  QueryEngine online_engine_;
  QueryEngine bicore_engine_;
  QueryEngine delta_engine_;
};

struct SnapshotManagerOptions {
  /// Bounded writer queue; a full queue answers kOverloaded (reads are
  /// never affected by writer backpressure).
  std::size_t update_queue = 1024;
  /// When nonempty, compaction rewrites a fresh bundle here (atomic
  /// temp+rename with `keep_previous` rotation).
  std::string compact_path;
  /// Compact after every N commits (0 = only at drain). Ignored without a
  /// compact_path.
  uint32_t compact_every = 0;
  /// Threads for the index rebuilds at publish (0 = hardware).
  unsigned publish_threads = 1;
};

/// Monotonic writer-side counters.
struct UpdateStats {
  uint64_t applied = 0;      ///< successful insert/remove/reweight ops
  uint64_t conflicts = 0;    ///< duplicate insert / missing-edge remove
  uint64_t commits = 0;      ///< published epochs (explicit + drain)
  uint64_t compactions = 0;  ///< bundles rewritten
  uint64_t overflows = 0;    ///< ops rejected by the full queue
};

/// \brief The single-writer epoch chain: drains a bounded update queue
/// through `DynamicDeltaIndex` maintenance and publishes immutable
/// snapshots.
///
/// Threading contract:
///  - Any thread calls `Current()` (epoch pin) and `Enqueue()`.
///  - Exactly one internal writer thread applies ops, answers their
///    completion callbacks, and publishes; completion callbacks run on
///    the writer thread and must not block on it.
///  - `Drain()` stops admission, applies everything already queued,
///    publishes uncommitted work as a final epoch and compacts — the
///    SIGTERM guarantee: an admitted update is fully applied and
///    compacted; a late one is cleanly rejected.
class SnapshotManager {
 public:
  /// (status, epoch): for mutations the currently *visible* epoch (the op
  /// itself becomes visible at the next commit); for kCommit the newly
  /// published epoch.
  using DoneFn = std::function<void(WireStatus, uint64_t)>;
  /// Runs on the writer thread at every publish, BEFORE the new snapshot
  /// becomes Current: (new snapshot, drained summary, touched bitmap
  /// already one-hop-expanded in the new graph). The server's memo
  /// invalidation hook.
  using PublishHook = std::function<void(
      const Snapshot&, const UpdateSummary&, const std::vector<uint8_t>&)>;

  /// Seeds epoch 1 as a borrowed snapshot of `g` + indexes (all must
  /// outlive the manager). `decomp`, when non-null, seeds the writer's
  /// DynamicDeltaIndex without re-peeling (the bundle restart path).
  SnapshotManager(const BipartiteGraph& g, const DeltaIndex* delta,
                  const BicoreIndex* bicore, const BicoreDecomposition* decomp,
                  SnapshotManagerOptions options);
  ~SnapshotManager();

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  void set_publish_hook(PublishHook hook);  ///< before Start only

  /// Spawns the writer thread (seeding the dynamic index happens here —
  /// the one O(n·δ) copy of the maintained state).
  Status Start();

  /// Graceful writer shutdown (idempotent): reject new ops, apply the
  /// backlog, publish uncommitted work, compact when configured, join.
  void Drain();

  /// Pins the current epoch: the returned snapshot stays valid (and its
  /// arenas mapped/allocated) until the caller drops the pointer.
  std::shared_ptr<const Snapshot> Current() const;

  uint64_t Epoch() const { return epoch_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Admits one op; `done` fires on the writer thread after application
  /// (or immediately here with kShuttingDown/kOverloaded on rejection —
  /// the return value is false only for those rejections).
  bool Enqueue(UpdateOp op, uint32_t u_upper, uint32_t v_lower, double weight,
               DoneFn done);

  /// Publishes a keepalive snapshot over a recovered bundle and returns
  /// its epoch — the scrubber's quarantine path. Readers pinned on the
  /// corrupt epoch keep their (already-validated) mapping until they
  /// drain; new admissions pin the recovered state. Only valid while live
  /// updates are disabled (the writer thread was never started), so it
  /// never races `Publish()`.
  uint64_t PublishRecovery(std::shared_ptr<const void> keepalive,
                           const BipartiteGraph& g, const DeltaIndex* delta,
                           const BicoreIndex* bicore);

  UpdateStats Stats() const;

 private:
  struct PendingOp {
    UpdateOp op;
    uint32_t u;  ///< upper layer-local
    uint32_t v;  ///< lower layer-local
    double weight;
    DoneFn done;
  };

  void WriterLoop();
  void Apply(PendingOp& op);
  /// Builds + publishes a new snapshot from the writer state; returns its
  /// epoch.
  uint64_t Publish();
  void MaybeCompact(bool at_drain);

  const BipartiteGraph* seed_graph_;
  const DeltaIndex* seed_delta_;
  const BicoreIndex* seed_bicore_;
  const BicoreDecomposition* seed_decomp_;
  const SnapshotManagerOptions options_;
  PublishHook publish_hook_;

  std::unique_ptr<DynamicDeltaIndex> dyn_;  ///< writer thread only
  std::shared_ptr<const BicoreDecomposition> last_decomp_;  ///< ditto
  uint64_t ops_since_publish_ = 0;                          ///< ditto
  uint64_t commits_since_compact_ = 0;                      ///< ditto
  bool dirty_since_compact_ = false;                        ///< ditto

  mutable std::mutex current_mu_;
  std::shared_ptr<const Snapshot> current_;  ///< guarded by current_mu_
  std::atomic<uint64_t> epoch_{1};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingOp> queue_;  ///< guarded by queue_mu_
  std::atomic<bool> draining_{false};
  bool started_ = false;
  bool joined_ = false;
  std::thread writer_;

  struct AtomicStats {
    std::atomic<uint64_t> applied{0};
    std::atomic<uint64_t> conflicts{0};
    std::atomic<uint64_t> commits{0};
    std::atomic<uint64_t> compactions{0};
    std::atomic<uint64_t> overflows{0};
  } counters_;
};

}  // namespace abcs::serve

#endif  // ABCS_SERVE_SNAPSHOT_H_
