#include "serve/memo.h"

#include <algorithm>
#include <mutex>

namespace abcs::serve {

bool QueryMemo::Lookup(WireMethod method, uint32_t alpha, uint32_t beta,
                       VertexId q, MemoValue* out) const {
  const Key vkey{static_cast<uint8_t>(method), alpha, beta, q};
  {
    std::shared_lock lock(mu_);
    const auto root_it = roots_.find(vkey);
    if (root_it != roots_.end()) {
      const Key rkey{static_cast<uint8_t>(method), alpha, beta,
                     root_it->second};
      const auto it = results_.find(rkey);
      if (it != results_.end()) {
        *out = it->second;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void QueryMemo::Insert(WireMethod method, uint32_t alpha, uint32_t beta,
                       VertexId q, const BipartiteGraph& g,
                       const Subgraph& community, const MemoValue& value) {
  // Sharing across the component is only sound for retrieval answers;
  // SCS answers depend on q (see the class comment), and oversized
  // communities are capped to bound insert cost.
  const bool share = !IsScsMethod(method) && !community.Empty() &&
                     community.edges.size() <= kMaxRegisterEdges;
  uint32_t root = q;
  if (share) {
    // Canonical root: the smallest vertex id in C. Upper ids precede
    // lower ids in the unified space, so the minimum over upper
    // endpoints suffices.
    root = g.GetEdge(community.edges[0]).u;
    for (const EdgeId e : community.edges) {
      root = std::min(root, g.GetEdge(e).u);
    }
  }

  std::unique_lock lock(mu_);
  if (roots_.size() >= max_entries_) {
    // Flush-on-pressure: a warm cache earns no complexity budget for an
    // eviction policy; steady traffic re-fills it within seconds.
    roots_.clear();
    results_.clear();
  }
  results_[{static_cast<uint8_t>(method), alpha, beta, root}] = value;
  if (share) {
    for (const EdgeId e : community.edges) {
      const Edge& ed = g.GetEdge(e);
      roots_[{static_cast<uint8_t>(method), alpha, beta, ed.u}] = root;
      roots_[{static_cast<uint8_t>(method), alpha, beta, ed.v}] = root;
    }
  } else {
    roots_[{static_cast<uint8_t>(method), alpha, beta, q}] = root;
  }
}

void QueryMemo::Invalidate() {
  std::unique_lock lock(mu_);
  roots_.clear();
  results_.clear();
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace abcs::serve
