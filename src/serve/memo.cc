#include "serve/memo.h"

#include <algorithm>
#include <mutex>
#include <unordered_set>

namespace abcs::serve {

bool QueryMemo::Lookup(WireMethod method, uint32_t alpha, uint32_t beta,
                       VertexId q, MemoValue* out, uint64_t epoch) const {
  const Key vkey{static_cast<uint8_t>(method), alpha, beta, q};
  {
    std::shared_lock lock(mu_);
    if (epoch == aligned_epoch_) {
      const auto root_it = roots_.find(vkey);
      if (root_it != roots_.end()) {
        const Key rkey{static_cast<uint8_t>(method), alpha, beta,
                       root_it->second};
        const auto it = results_.find(rkey);
        if (it != results_.end()) {
          *out = it->second.value;
          hits_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void QueryMemo::Insert(WireMethod method, uint32_t alpha, uint32_t beta,
                       VertexId q, const BipartiteGraph& g,
                       const Subgraph& community, const MemoValue& value,
                       uint64_t epoch) {
  // Sharing across the component is only sound for retrieval answers;
  // SCS answers depend on q (see the class comment), and oversized
  // communities are capped to bound insert cost.
  EntryKind kind;
  if (IsScsMethod(method)) {
    kind = EntryKind::kScs;
  } else if (community.Empty()) {
    kind = EntryKind::kEmpty;
  } else if (community.edges.size() > kMaxRegisterEdges) {
    kind = EntryKind::kOversized;
  } else {
    kind = EntryKind::kShared;
  }
  const bool share = kind == EntryKind::kShared;
  uint32_t root = q;
  if (share) {
    // Canonical root: the smallest vertex id in C. Upper ids precede
    // lower ids in the unified space, so the minimum over upper
    // endpoints suffices.
    root = g.GetEdge(community.edges[0]).u;
    for (const EdgeId e : community.edges) {
      root = std::min(root, g.GetEdge(e).u);
    }
  }

  std::unique_lock lock(mu_);
  // A worker that computed against an already-retired snapshot must not
  // poison the published epoch's table; its (still correct) answer was
  // flushed to the wire, only the cache write is dropped.
  if (epoch != aligned_epoch_) return;
  if (roots_.size() >= max_entries_) {
    // Flush-on-pressure: a warm cache earns no complexity budget for an
    // eviction policy; steady traffic re-fills it within seconds.
    roots_.clear();
    results_.clear();
  }
  results_[{static_cast<uint8_t>(method), alpha, beta, root}] =
      Entry{value, kind};
  if (share) {
    for (const EdgeId e : community.edges) {
      const Edge& ed = g.GetEdge(e);
      roots_[{static_cast<uint8_t>(method), alpha, beta, ed.u}] = root;
      roots_[{static_cast<uint8_t>(method), alpha, beta, ed.v}] = root;
    }
  } else {
    roots_[{static_cast<uint8_t>(method), alpha, beta, q}] = root;
  }
}

void QueryMemo::Invalidate() {
  std::unique_lock lock(mu_);
  roots_.clear();
  results_.clear();
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

void QueryMemo::SetEpoch(uint64_t epoch) {
  std::unique_lock lock(mu_);
  aligned_epoch_ = epoch;
}

void QueryMemo::AdvanceEpoch(uint64_t new_epoch, bool topology_changed,
                             bool flush_all,
                             const std::vector<uint8_t>& touched) {
  std::unique_lock lock(mu_);
  aligned_epoch_ = new_epoch;
  epoch_.fetch_add(1, std::memory_order_relaxed);
  if (flush_all) {
    roots_.clear();
    results_.clear();
    return;
  }

  std::unordered_set<Key, KeyHash> dropped;
  if (topology_changed) {
    // A touched registered member witnesses every way a shared answer can
    // go stale (membership changes, component merges/splits, edges between
    // surviving members): `touched` already includes the one-hop expansion
    // covering vertices that *join* a community of untouched members.
    for (const auto& [vkey, root] : roots_) {
      if (vkey.vertex < touched.size() && touched[vkey.vertex]) {
        dropped.insert(Key{vkey.method, vkey.alpha, vkey.beta, root});
      }
    }
  }
  for (auto it = results_.begin(); it != results_.end();) {
    const EntryKind kind = it->second.kind;
    const bool drop =
        kind == EntryKind::kScs ||  // reads weights and q's arcs: any batch
        (topology_changed &&
         (kind == EntryKind::kOversized ||  // members unknown, unverifiable
          dropped.count(it->first) != 0));
    it = drop ? results_.erase(it) : ++it;
  }
  // Sweep root registrations whose result is gone so they cannot revive a
  // dropped answer through a future insert under the same root.
  for (auto it = roots_.begin(); it != roots_.end();) {
    const Key rkey{it->first.method, it->first.alpha, it->first.beta,
                   it->second};
    it = results_.count(rkey) == 0 ? roots_.erase(it) : ++it;
  }
}

}  // namespace abcs::serve
