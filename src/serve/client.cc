#include "serve/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <thread>

#include "common/rng.h"
#include "serve/net_ops.h"

namespace abcs::serve {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

int RemainingMs(std::chrono::steady_clock::time_point deadline) {
  if (deadline == std::chrono::steady_clock::time_point::max()) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  if (left.count() <= 0) return 0;
  return static_cast<int>(
      std::min<int64_t>(left.count(), std::numeric_limits<int>::max()));
}

}  // namespace

Client::~Client() { Close(); }

Client::TimePoint Client::DeadlineIn(uint32_t ms) {
  if (ms == 0) return TimePoint::max();
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

Status Client::Connect(const std::string& host, uint16_t port) {
  host_ = host;
  port_ = port;
  return ConnectNow();
}

Status Client::ConnectNow() {
  Close();
  // The fd stays non-blocking for its whole life: connect, send and recv
  // all wait through poll with explicit deadlines, which is what makes
  // every call bounded and EINTR-correct.
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) return Status::IOError(ErrnoMessage("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("cannot parse host " + host_);
  }
  if (options_.so_rcvbuf > 0) {
    // Must land before connect so the advertised window reflects it.
    const int sz = static_cast<int>(options_.so_rcvbuf);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &sz, sizeof(sz));
  }
  const TimePoint deadline = DeadlineIn(options_.connect_timeout_ms);
  for (;;) {
    const int rc = NetConnect(fd_, reinterpret_cast<sockaddr*>(&addr),
                              sizeof(addr), "net.client_connect");
    if (rc == 0 || errno == EISCONN) break;
    if (errno == EINTR) {
      if (RemainingMs(deadline) == 0) {
        ++stats_.timeouts;
        Close();
        return Status::IOError("connect timed out after " +
                               std::to_string(options_.connect_timeout_ms) +
                               "ms");
      }
      continue;
    }
    if (errno == EINPROGRESS || errno == EALREADY) {
      ABCS_RETURN_NOT_OK(WaitFd(POLLOUT, deadline, "connect"));
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err == 0) break;
      errno = err;
    }
    const Status st = Status::IOError(ErrnoMessage("connect"));
    Close();
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  reader_ = FrameReader();
  ++stats_.connects;
  if (stats_.connects > 1) ++stats_.reconnects;
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::WaitFd(short events, TimePoint deadline, const char* what) {
  for (;;) {
    pollfd pfd{fd_, events, 0};
    const int remaining = RemainingMs(deadline);
    const int rc = NetPoll(&pfd, 1, remaining, "net.client_poll");
    if (rc > 0) return Status::OK();  // ready, error or hangup: let the
                                      // next syscall report which
    if (rc == 0) {
      ++stats_.timeouts;
      const Status st =
          Status::IOError(std::string(what) + " timed out after " +
                          std::to_string(options_.io_timeout_ms) + "ms");
      Close();
      return st;
    }
    if (errno == EINTR) continue;
    const Status st = Status::IOError(ErrnoMessage("poll"));
    Close();
    return st;
  }
}

Status Client::SendBytes(std::span<const std::byte> bytes) {
  const TimePoint deadline = DeadlineIn(options_.io_timeout_ms);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = NetSend(fd_, bytes.data() + sent, bytes.size() - sent,
                              "net.client_send");
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      ABCS_RETURN_NOT_OK(WaitFd(POLLOUT, deadline, "send"));
      continue;
    }
    const Status st = Status::IOError(ErrnoMessage("send"));
    Close();  // mid-burst failure: the stream position is unknown
    return st;
  }
  return Status::OK();
}

Status Client::Call(const WireRequest& req, WireResponse* resp) {
  if (req.type == MessageType::kUpdate) {
    // Updates are not idempotent; once the frame may have reached the
    // server, retrying could apply it twice. Exactly one transport
    // attempt — the caller decides what an unknown outcome means.
    if (!connected()) ABCS_RETURN_NOT_OK(ConnectNow());
    Status st = SendAll({&req, 1});
    if (st.ok()) st = ReceiveOne(resp);
    if (!st.ok()) {
      Close();
      return Status::IOError(st.message() +
                             " (update outcome unknown; not auto-retried)");
    }
    return Status::OK();
  }
  return RetryIdempotent([&]() -> Status {
    ABCS_RETURN_NOT_OK(SendAll({&req, 1}));
    return ReceiveOne(resp);
  });
}

Status Client::RetryIdempotent(const std::function<Status()>& once) {
  const uint32_t attempts = std::max<uint32_t>(1, options_.max_attempts);
  Status last;
  for (uint32_t attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      ++stats_.retries;
      BackoffSleep(attempt - 1);
    }
    if (!connected()) {
      last = ConnectNow();
      if (!last.ok()) continue;
    }
    last = once();
    if (last.ok()) return last;
    Close();  // poison-safe: never reuse a stream after a failure
  }
  return last;
}

void Client::BackoffSleep(uint32_t retry) {
  const uint64_t base = std::max<uint64_t>(1, options_.backoff_base_ms);
  const uint64_t cap = std::max<uint64_t>(base, options_.backoff_max_ms);
  const uint64_t exp = std::min<uint32_t>(retry > 0 ? retry - 1 : 0, 20);
  const uint64_t full = std::min(cap, base << exp);
  // Deterministic decorrelation: jitter shaves up to half the interval.
  Rng rng(options_.jitter_seed * 0x9e3779b97f4a7c15ull + stats_.retries);
  const uint64_t ms = full - rng.NextBounded(full / 2 + 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

Status Client::CallAll(std::span<const WireRequest> requests,
                       std::vector<WireResponse>* out) {
  out->clear();
  out->reserve(requests.size());
  for (const WireRequest& req : requests) {
    if (req.type == MessageType::kUpdate) {
      return Status::InvalidArgument(
          "CallAll is for idempotent traffic; send updates via Update");
    }
  }
  const uint32_t attempts = std::max<uint32_t>(1, options_.max_attempts);
  uint32_t failures_since_progress = 0;
  Status last;
  while (out->size() < requests.size()) {
    if (failures_since_progress > 0) {
      ++stats_.retries;
      BackoffSleep(failures_since_progress);
    }
    if (!connected()) {
      last = ConnectNow();
      if (!last.ok()) {
        if (++failures_since_progress >= attempts) return last;
        continue;
      }
    }
    // Resume: only the unanswered suffix is (re-)sent; answered
    // responses stay, so a retried batch is bit-identical to an
    // uninterrupted one.
    const std::size_t done_before = out->size();
    last = SendAll(requests.subspan(done_before));
    while (last.ok() && out->size() < requests.size()) {
      WireResponse resp;
      last = ReceiveOne(&resp);
      if (last.ok()) out->push_back(resp);
    }
    if (out->size() == requests.size()) return Status::OK();
    Close();
    failures_since_progress =
        out->size() > done_before ? 1 : failures_since_progress + 1;
    if (failures_since_progress >= attempts) return last;
  }
  return Status::OK();
}

Status Client::SendAll(std::span<const WireRequest> requests) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  std::vector<std::byte> payload;
  std::vector<std::byte> framed;
  framed.reserve(requests.size() * (kRequestWireBytes + 4));
  for (const WireRequest& req : requests) {
    payload.clear();
    EncodeRequest(req, &payload);
    AppendFrame(payload, &framed);
  }
  return SendBytes(framed);
}

Status Client::ReceiveAll(std::size_t n, std::vector<WireResponse>* out) {
  out->clear();
  out->reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    WireResponse resp;
    ABCS_RETURN_NOT_OK(ReceiveOne(&resp));
    out->push_back(resp);
  }
  return Status::OK();
}

Status Client::Ping(uint64_t* epoch) {
  WireRequest req;
  req.type = MessageType::kPing;
  WireResponse resp;
  ABCS_RETURN_NOT_OK(Call(req, &resp));
  if (resp.type != MessageType::kPing || resp.status != WireStatus::kOk) {
    return Status::Corruption("unexpected ping response");
  }
  if (epoch != nullptr) *epoch = resp.epoch;
  return Status::OK();
}

Status Client::Health(WireHealth* out) {
  WireRequest req;
  req.type = MessageType::kHealth;
  return RetryIdempotent([&]() -> Status {
    ABCS_RETURN_NOT_OK(SendAll({&req, 1}));
    std::vector<std::byte> payload;
    ABCS_RETURN_NOT_OK(ReceiveFrame(&payload));
    return DecodeHealthResponse(payload, out);
  });
}

Status Client::Update(UpdateOp op, uint32_t u, uint32_t v, double weight,
                      WireResponse* resp) {
  WireRequest req;
  req.type = MessageType::kUpdate;
  req.op = op;
  req.u = u;
  req.v = v;
  // Remove/commit encode weight bits as zero on the wire.
  req.weight =
      (op == UpdateOp::kInsertEdge || op == UpdateOp::kReweightEdge) ? weight
                                                                     : 0.0;
  return Call(req, resp);
}

Status Client::Commit(uint64_t* epoch) {
  WireResponse resp;
  ABCS_RETURN_NOT_OK(Update(UpdateOp::kCommit, 0, 0, 0.0, &resp));
  if (resp.status != WireStatus::kOk) {
    return Status::InvalidArgument(std::string("commit rejected: ") +
                                   WireStatusName(resp.status));
  }
  if (epoch != nullptr) *epoch = resp.epoch;
  return Status::OK();
}

Status Client::ReceiveFrame(std::vector<std::byte>* payload) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  const TimePoint deadline = DeadlineIn(options_.io_timeout_ms);
  std::byte buf[4096];
  for (;;) {
    std::span<const std::byte> view;
    if (reader_.Next(&view)) {
      payload->assign(view.begin(), view.end());
      return Status::OK();
    }
    if (reader_.Poisoned()) {
      return Status::Corruption("response stream poisoned");
    }
    const ssize_t n = NetRecv(fd_, buf, sizeof(buf), "net.client_recv");
    if (n == 0) {
      return Status::IOError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        ABCS_RETURN_NOT_OK(WaitFd(POLLIN, deadline, "recv"));
        continue;
      }
      return Status::IOError(ErrnoMessage("recv"));
    }
    ABCS_RETURN_NOT_OK(reader_.Append({buf, static_cast<std::size_t>(n)}));
  }
}

Status Client::ReceiveOne(WireResponse* resp) {
  std::vector<std::byte> payload;
  ABCS_RETURN_NOT_OK(ReceiveFrame(&payload));
  return DecodeResponse(payload, resp);
}

}  // namespace abcs::serve
