#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace abcs::serve {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Client::~Client() { Close(); }

Status Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::IOError(ErrnoMessage("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("cannot parse host " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Status::IOError(ErrnoMessage("connect"));
    Close();
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  reader_ = FrameReader();
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Call(const WireRequest& req, WireResponse* resp) {
  ABCS_RETURN_NOT_OK(SendAll({&req, 1}));
  return ReceiveOne(resp);
}

Status Client::SendAll(std::span<const WireRequest> requests) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  std::vector<std::byte> payload;
  std::vector<std::byte> framed;
  framed.reserve(requests.size() * (kRequestWireBytes + 4));
  for (const WireRequest& req : requests) {
    payload.clear();
    EncodeRequest(req, &payload);
    AppendFrame(payload, &framed);
  }
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return Status::IOError(ErrnoMessage("send"));
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status Client::ReceiveAll(std::size_t n, std::vector<WireResponse>* out) {
  out->clear();
  out->reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    WireResponse resp;
    ABCS_RETURN_NOT_OK(ReceiveOne(&resp));
    out->push_back(resp);
  }
  return Status::OK();
}

Status Client::Ping(uint64_t* epoch) {
  WireRequest req;
  req.type = MessageType::kPing;
  WireResponse resp;
  ABCS_RETURN_NOT_OK(Call(req, &resp));
  if (resp.type != MessageType::kPing || resp.status != WireStatus::kOk) {
    return Status::Corruption("unexpected ping response");
  }
  if (epoch != nullptr) *epoch = resp.epoch;
  return Status::OK();
}

Status Client::Update(UpdateOp op, uint32_t u, uint32_t v, double weight,
                      WireResponse* resp) {
  WireRequest req;
  req.type = MessageType::kUpdate;
  req.op = op;
  req.u = u;
  req.v = v;
  // Remove/commit encode weight bits as zero on the wire.
  req.weight =
      (op == UpdateOp::kInsertEdge || op == UpdateOp::kReweightEdge) ? weight
                                                                     : 0.0;
  return Call(req, resp);
}

Status Client::Commit(uint64_t* epoch) {
  WireResponse resp;
  ABCS_RETURN_NOT_OK(Update(UpdateOp::kCommit, 0, 0, 0.0, &resp));
  if (resp.status != WireStatus::kOk) {
    return Status::InvalidArgument(std::string("commit rejected: ") +
                                   WireStatusName(resp.status));
  }
  if (epoch != nullptr) *epoch = resp.epoch;
  return Status::OK();
}

Status Client::ReceiveOne(WireResponse* resp) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  std::byte buf[4096];
  for (;;) {
    std::span<const std::byte> payload;
    if (reader_.Next(&payload)) return DecodeResponse(payload, resp);
    if (reader_.Poisoned()) {
      return Status::Corruption("response stream poisoned");
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::IOError("connection closed by server");
    }
    if (n < 0) return Status::IOError(ErrnoMessage("recv"));
    ABCS_RETURN_NOT_OK(reader_.Append({buf, static_cast<std::size_t>(n)}));
  }
}

}  // namespace abcs::serve
