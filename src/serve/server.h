#ifndef ABCS_SERVE_SERVER_H_
#define ABCS_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/bicore_index.h"
#include "core/cancel.h"
#include "core/delta_index.h"
#include "core/query_engine.h"
#include "core/scs_common.h"
#include "graph/bipartite_graph.h"
#include "serve/frame.h"
#include "serve/memo.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/snapshot.h"

namespace abcs::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read the bound one back via `port()`.
  uint16_t port = 0;
  /// Worker threads; 0 = hardware concurrency.
  unsigned num_threads = 0;
  /// Connections beyond this are accepted and immediately closed.
  unsigned max_connections = 64;
  /// Admission-queue bound; a full queue answers kOverloaded.
  std::size_t max_queue = 4096;
  /// Applied when a request carries deadline_ms = 0. 0 = no deadline.
  uint32_t default_deadline_ms = 0;
  bool enable_memo = true;
  std::size_t memo_max_entries = 1 << 16;
  /// Accept kUpdate frames and publish new epochs (the live-update path).
  /// Off, every update answers kUpdatesDisabled and serving is static.
  bool enable_updates = false;
  /// Bounded update-writer queue; a full queue answers kOverloaded.
  std::size_t update_queue = 1024;
  /// When nonempty, compaction rewrites the serving bundle here (atomic
  /// temp+rename, previous bundle kept as `.prev`).
  std::string compact_path;
  /// Compact after every N published epochs (0 = only at drain).
  uint32_t compact_every = 0;
  /// Threads for the index rebuilds at publish (0 = worker count).
  unsigned publish_threads = 1;
  /// Optional decomposition matching the seed graph; lets the update
  /// writer seed its maintained state without re-peeling (the bundle
  /// restart path). Must outlive the server.
  const BicoreDecomposition* seed_decomp = nullptr;
  /// Slow-client protection: a connection whose oldest buffered response
  /// byte stays unsent this long is shed (never blocks a worker).
  uint32_t write_deadline_ms = 5000;
  /// Per-connection cap on buffered unsent response bytes; exceeding it
  /// sheds the connection immediately.
  std::size_t max_output_buffer = 4u << 20;
  /// Watchdog sampling period for the health state (0 disables the
  /// thread; health probes then never report a stall).
  uint32_t watchdog_interval_ms = 500;
  /// When nonzero, shrink SO_SNDBUF on accepted connections (chaos
  /// tooling: a small kernel buffer makes slow-client back-pressure
  /// reach the flusher's deadline quickly).
  uint32_t so_sndbuf = 0;
  /// Fast drain: at shutdown, admitted-but-unstarted queries answer
  /// kDeadlineExceeded instead of executing. Off by default — the
  /// graceful-drain guarantee (every admitted request is fully executed)
  /// stays intact unless the operator opts into a bounded-latency exit.
  bool fast_drain = false;
  /// Path of the bundle this daemon serves from; enables the background
  /// scrubber together with scrub_interval_ms.
  std::string bundle_path;
  /// Cadence for re-verifying the serving bundle's section checksums on
  /// disk (0 disables the scrubber thread). Requires bundle_path and
  /// static serving (enable_updates off): on corruption the damaged file
  /// is quarantined and the rotated `.prev` epoch is re-opened and
  /// published, while readers pinned on the old epoch drain untouched.
  uint32_t scrub_interval_ms = 0;
};

/// Monotonic counters, snapshotted for the shutdown summary and tests.
struct ServeStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  uint64_t requests = 0;          ///< decoded frames, pings included
  uint64_t responses_ok = 0;
  uint64_t responses_error = 0;   ///< any non-kOk status
  uint64_t memo_hits = 0;
  uint64_t deadline_expired = 0;
  uint64_t stuck_cancelled = 0;   ///< in-flight queries the watchdog killed
  uint64_t overloaded = 0;
  uint64_t protocol_errors = 0;   ///< bad frames or payloads
  uint64_t slow_client_dropped = 0;  ///< connections shed by the write
                                     ///< deadline or output-buffer cap
  uint64_t health_probes = 0;     ///< kHealth frames answered
  uint64_t drained_tasks = 0;     ///< queue depth when shutdown began
  uint64_t updates_applied = 0;   ///< successful insert/remove/reweight
  uint64_t update_conflicts = 0;  ///< dup insert / missing-edge remove
  uint64_t epochs_published = 0;  ///< commits that produced a snapshot
  uint64_t compactions = 0;       ///< bundles rewritten by the writer
  uint64_t update_overflows = 0;  ///< updates rejected by the full queue
  uint64_t scrub_passes = 0;       ///< completed bundle verification passes
  uint64_t scrub_corruptions = 0;  ///< passes that found the bundle corrupt
  uint64_t scrub_recoveries = 0;   ///< successful `.prev` recovery publishes
};

/// \brief The `abcs serve` resident daemon: accepts length-prefixed
/// query frames over TCP and serves them from snapshot-versioned graph +
/// indexes through a shared work-stealing worker pool with a warm
/// (α,β) memo in front.
///
/// Serving is epoch-based RCU even when updates are disabled: every
/// admitted query pins the current `Snapshot` (a shared_ptr copy) and
/// executes against that frozen state, so a concurrent publish can never
/// shear a reader — each response is computed entirely against the epoch
/// it reports in `WireResponse::epoch`. With `enable_updates` a
/// SnapshotManager writer thread applies kUpdate frames through
/// incremental maintenance and publishes successor snapshots at commit
/// boundaries; the memo is invalidated selectively per publish.
///
/// Threading model: one accept thread, one reader thread per connection
/// (bounded by max_connections), `num_threads` query workers, one
/// flusher and one watchdog. Readers decode frames and push tasks onto
/// the TaskScheduler with connection affinity; workers own a
/// QueryScratch/ScsWorkspace each and execute with zero steady-state
/// allocations; responses flow back through a per-connection sequencer
/// so pipelined requests are answered strictly in order even when
/// stealing reorders their execution.
///
/// Slow-client protection: connection sockets are non-blocking; a
/// response the socket won't take immediately lands in a bounded
/// per-connection output buffer owned by the flusher thread, which
/// polls for writability and sheds any connection whose oldest unsent
/// byte outlives `write_deadline_ms` (or whose buffer exceeds
/// `max_output_buffer`) — so one stalled peer can never wedge a worker
/// or delay other connections. The watchdog samples progress each
/// interval and exports live/degraded/draining through kHealth probes.
///
/// Lifecycle: `Start` binds and spawns; `Shutdown` drains gracefully —
/// stop accepting, half-close every connection's read side, let workers
/// finish every admitted request and flush its response, then join and
/// close. `RequestShutdown` only sets an atomic flag (safe from a signal
/// handler); the owner observes it via `WaitForShutdownRequest` and
/// calls `Shutdown` from a normal thread.
class Server {
 public:
  /// Borrows everything; graph and indexes must outlive the server.
  /// `delta` must be non-null (it also serves SCS retrieval); `bicore`
  /// may be null, in which case the bicore method answers kBadRequest.
  Server(const BipartiteGraph& g, const DeltaIndex* delta,
         const BicoreIndex* bicore, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the accept + worker threads.
  Status Start();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Flags the server for shutdown; async-signal-safe (one atomic store).
  void RequestShutdown() { shutdown_requested_.store(true); }
  bool ShutdownRequested() const { return shutdown_requested_.load(); }

  /// Polls the shutdown flag (signal handlers cannot notify a condvar).
  void WaitForShutdownRequest() {
    while (!shutdown_requested_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  /// Graceful drain; idempotent, callable from any non-worker thread.
  void Shutdown();

  ServeStats Stats() const;
  QueryMemo& memo() { return memo_; }
  /// The snapshot chain (always present; static serving is epoch 1).
  SnapshotManager& snapshots() { return *snapshots_; }

 private:
  struct Connection;
  struct Task {
    std::shared_ptr<Connection> conn;
    uint32_t seq = 0;
    WireRequest req;
    std::chrono::steady_clock::time_point arrival;
    /// The epoch pin: keeps the snapshot (graph, indexes, engines) alive
    /// until this task's response is computed.
    std::shared_ptr<const Snapshot> snap;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop(unsigned t);
  /// Polls pending output buffers and sheds connections that miss the
  /// write deadline or overflow the buffer cap.
  void FlusherLoop();
  /// Samples progress each interval; flags a stall (queued work but no
  /// completions) for the health state, and escalates per-worker: a
  /// worker whose armed token made zero kernel progress across a full
  /// interval gets its generation cancelled (`stuck_cancelled`).
  void WatchdogLoop();
  /// Re-verifies the serving bundle's section checksums each interval;
  /// quarantines a corrupt file and republishes from `.prev`.
  void ScrubberLoop();
  void ScrubPass();
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   std::span<const std::byte> payload);
  /// Encodes, frames and hands `resp` to the connection's sequencer.
  void Respond(const std::shared_ptr<Connection>& conn, uint32_t seq,
               const WireResponse& resp);
  /// Sequencer tail shared by responses and health frames: parks the
  /// framed bytes under `seq`, appends the in-order prefix to the output
  /// buffer, flushes what the socket accepts and hands the rest to the
  /// flusher thread.
  void SubmitFrame(const std::shared_ptr<Connection>& conn, uint32_t seq,
                   std::vector<std::byte> framed);
  /// Non-blocking drain of conn->outbuf (requires conn->write_mu).
  void FlushLocked(Connection* conn);
  /// Marks the connection dead and wakes its reader (ditto).
  void KillLocked(Connection* conn);
  WireHealth BuildHealth();
  void Execute(const WireRequest& req, const Snapshot& snap, unsigned t,
               WireResponse* resp);
  void ReapConnectionsLocked();

  const BipartiteGraph* graph_;
  const DeltaIndex* delta_;
  const BicoreIndex* bicore_;
  ServerOptions options_;
  unsigned resolved_threads_ = 1;

  std::unique_ptr<SnapshotManager> snapshots_;

  QueryMemo memo_;
  TaskScheduler<Task> scheduler_;

  // Per-worker pooled query state, indexed by worker id (each slot is
  // touched by exactly one thread).
  struct WorkerState {
    QueryScratch scratch;
    ScsWorkspace workspace;
    Subgraph community;
    ScsResult scs;
    /// Armed around every Execute (with the request's remaining budget,
    /// or deadline-free so the watchdog can still cancel). Sampled by the
    /// watchdog for stuck detection; owned by worker thread t otherwise.
    CancelToken token;
  };
  std::vector<std::unique_ptr<WorkerState>> worker_states_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 0;

  // Slow-client flusher: connections with unsent response bytes queue
  // here; the flusher polls them for writability and enforces the write
  // deadline. The pipe wakes its poll when a new connection arrives.
  std::thread flusher_;
  std::mutex flush_mu_;
  std::vector<std::shared_ptr<Connection>> flush_pending_;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> flusher_stop_{false};

  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;      ///< guarded by watchdog_mu_
  std::atomic<bool> stalled_{false};
  std::atomic<bool> stuck_{false};  ///< a worker is armed with no progress

  std::thread scrubber_;
  std::mutex scrub_mu_;
  std::condition_variable scrub_cv_;
  bool scrub_stop_ = false;  ///< guarded by scrub_mu_
  /// The file the scrubber verifies; starts at bundle_path, moves to the
  /// `.prev` epoch after a recovery. Scrubber thread only.
  std::string scrub_path_;
  std::atomic<bool> scrub_corrupt_{false};  ///< detected, not yet recovered

  std::atomic<bool> fast_drain_{false};

  std::atomic<uint64_t> inflight_{0};
  std::atomic<uint64_t> active_conns_{0};

  std::atomic<bool> accepting_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_requested_{false};
  bool started_ = false;
  bool stopped_ = false;

  struct AtomicStats {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_rejected{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> responses_ok{0};
    std::atomic<uint64_t> responses_error{0};
    std::atomic<uint64_t> memo_hits{0};
    std::atomic<uint64_t> deadline_expired{0};
    std::atomic<uint64_t> stuck_cancelled{0};
    std::atomic<uint64_t> overloaded{0};
    std::atomic<uint64_t> protocol_errors{0};
    std::atomic<uint64_t> slow_client_dropped{0};
    std::atomic<uint64_t> health_probes{0};
    std::atomic<uint64_t> drained_tasks{0};
    std::atomic<uint64_t> scrub_passes{0};
    std::atomic<uint64_t> scrub_corruptions{0};
    std::atomic<uint64_t> scrub_recoveries{0};
  } counters_;
};

}  // namespace abcs::serve

#endif  // ABCS_SERVE_SERVER_H_
