#ifndef ABCS_SERVE_FRAME_H_
#define ABCS_SERVE_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace abcs::serve {

/// Hard ceiling on one frame's payload. Requests and responses are both
/// fixed-size structs two orders of magnitude below this; anything larger
/// is a corrupt or hostile length prefix and kills the connection before
/// a single byte of it is buffered.
inline constexpr uint32_t kMaxFramePayload = 1u << 16;

/// Appends one length-prefixed frame (`u32 LE payload length` + payload)
/// to `out`. The caller batches multiple frames into one buffer for
/// pipelined writes.
void AppendFrame(std::span<const std::byte> payload,
                 std::vector<std::byte>* out);

/// \brief Incremental decoder for a stream of length-prefixed frames.
///
/// Feed arbitrary byte chunks exactly as they come off the socket with
/// `Append` — a frame may arrive split at any byte boundary, or many
/// frames may land in one chunk — then drain complete frames with `Next`.
/// The reader is strict: a length prefix above `kMaxFramePayload` poisons
/// the stream (every later call fails), because once a length lies there
/// is no way to resynchronise. This is the surface the
/// `fuzz_frame_parser` harness hammers.
class FrameReader {
 public:
  /// Buffers `chunk`. Returns `Corruption` iff the stream is (or just
  /// became) poisoned by an oversized length prefix.
  Status Append(std::span<const std::byte> chunk);

  /// Points `*payload` at the next complete frame's payload and returns
  /// true, or returns false when no complete frame is buffered. The span
  /// is valid until the next `Append`/`Next` call.
  bool Next(std::span<const std::byte>* payload);

  /// True once an oversized length prefix poisoned the stream.
  bool Poisoned() const { return poisoned_; }

  /// Bytes buffered but not yet returned — nonzero at connection EOF
  /// means the peer sent a truncated final frame.
  std::size_t PendingBytes() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::byte> buffer_;
  std::size_t consumed_ = 0;  ///< bytes of fully-drained frames
  bool poisoned_ = false;
};

}  // namespace abcs::serve

#endif  // ABCS_SERVE_FRAME_H_
