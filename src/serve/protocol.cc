#include "serve/protocol.h"

#include <cmath>
#include <cstring>

namespace abcs::serve {

namespace {

void PutU16(uint16_t v, std::vector<std::byte>* out) {
  out->push_back(static_cast<std::byte>(v & 0xff));
  out->push_back(static_cast<std::byte>((v >> 8) & 0xff));
}

void PutU32(uint32_t v, std::vector<std::byte>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::vector<std::byte>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

uint16_t GetU16(const std::byte* p) {
  return static_cast<uint16_t>(static_cast<uint16_t>(p[0]) |
                               (static_cast<uint16_t>(p[1]) << 8));
}

uint32_t GetU32(const std::byte* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t GetU64(const std::byte* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "ok";
    case WireStatus::kBadRequest:
      return "bad-request";
    case WireStatus::kInvalidVertex:
      return "invalid-vertex";
    case WireStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case WireStatus::kOverloaded:
      return "overloaded";
    case WireStatus::kShuttingDown:
      return "shutting-down";
    case WireStatus::kUpdatesDisabled:
      return "updates-disabled";
    case WireStatus::kConflict:
      return "conflict";
  }
  return "unknown";
}

const char* UpdateOpName(UpdateOp op) {
  switch (op) {
    case UpdateOp::kInsertEdge:
      return "insert";
    case UpdateOp::kRemoveEdge:
      return "remove";
    case UpdateOp::kReweightEdge:
      return "reweight";
    case UpdateOp::kCommit:
      return "commit";
  }
  return nullptr;
}

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kLive:
      return "live";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kDraining:
      return "draining";
  }
  return "unknown";
}

const char* WireMethodName(WireMethod method) {
  switch (method) {
    case WireMethod::kOnline:
      return "online";
    case WireMethod::kBicore:
      return "bicore";
    case WireMethod::kDelta:
      return "delta";
    case WireMethod::kScsAuto:
      return "scs-auto";
    case WireMethod::kScsPeel:
      return "scs-peel";
    case WireMethod::kScsExpand:
      return "scs-expand";
    case WireMethod::kScsBinary:
      return "scs-binary";
  }
  return nullptr;
}

bool ParseWireMethod(const char* name, WireMethod* out) {
  for (uint8_t m = 0; m < kNumWireMethods; ++m) {
    const WireMethod method = static_cast<WireMethod>(m);
    if (std::strcmp(name, WireMethodName(method)) == 0) {
      *out = method;
      return true;
    }
  }
  return false;
}

void EncodeRequest(const WireRequest& req, std::vector<std::byte>* out) {
  out->reserve(out->size() + kRequestWireBytes);
  PutU16(kRequestMagic, out);
  out->push_back(static_cast<std::byte>(kWireVersion));
  out->push_back(static_cast<std::byte>(req.type));
  if (req.type == MessageType::kUpdate) {
    out->push_back(static_cast<std::byte>(req.op));
    out->push_back(static_cast<std::byte>(0));  // reserved
    PutU16(0, out);                             // reserved
    PutU32(req.u, out);
    PutU32(req.v, out);
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(req.weight));
    std::memcpy(&bits, &req.weight, sizeof(bits));
    PutU64(bits, out);
    return;
  }
  out->push_back(static_cast<std::byte>(req.method));
  out->push_back(static_cast<std::byte>(req.lower_side ? 1 : 0));
  PutU16(0, out);  // reserved
  PutU32(req.q, out);
  PutU32(req.alpha, out);
  PutU32(req.beta, out);
  PutU32(req.deadline_ms, out);
}

Status DecodeRequest(std::span<const std::byte> payload, WireRequest* out) {
  if (payload.size() != kRequestWireBytes) {
    return Status::Corruption("request payload has wrong size");
  }
  const std::byte* p = payload.data();
  if (GetU16(p) != kRequestMagic) {
    return Status::Corruption("bad request magic");
  }
  if (static_cast<uint8_t>(p[2]) != kWireVersion) {
    return Status::NotSupported("unsupported protocol version");
  }
  const uint8_t type = static_cast<uint8_t>(p[3]);
  if (type != static_cast<uint8_t>(MessageType::kQuery) &&
      type != static_cast<uint8_t>(MessageType::kPing) &&
      type != static_cast<uint8_t>(MessageType::kUpdate) &&
      type != static_cast<uint8_t>(MessageType::kHealth)) {
    return Status::Corruption("unknown message type");
  }
  if (type == static_cast<uint8_t>(MessageType::kUpdate)) {
    const uint8_t op = static_cast<uint8_t>(p[4]);
    if (op >= kNumUpdateOps) return Status::Corruption("unknown update op");
    if (static_cast<uint8_t>(p[5]) != 0 || GetU16(p + 6) != 0) {
      return Status::Corruption("nonzero reserved bytes");
    }
    out->type = MessageType::kUpdate;
    out->op = static_cast<UpdateOp>(op);
    out->u = GetU32(p + 8);
    out->v = GetU32(p + 12);
    const uint64_t bits = GetU64(p + 16);
    std::memcpy(&out->weight, &bits, sizeof(out->weight));
    if (out->op == UpdateOp::kRemoveEdge || out->op == UpdateOp::kCommit) {
      if (bits != 0) return Status::Corruption("weight must be 0 for this op");
    } else if (!std::isfinite(out->weight)) {
      return Status::Corruption("weight must be finite");
    }
    if (out->op == UpdateOp::kCommit && (out->u != 0 || out->v != 0)) {
      return Status::Corruption("commit carries no endpoints");
    }
    return Status::OK();
  }
  const uint8_t method = static_cast<uint8_t>(p[4]);
  if (method >= kNumWireMethods) {
    return Status::Corruption("unknown query method");
  }
  const uint8_t side = static_cast<uint8_t>(p[5]);
  if (side > 1) return Status::Corruption("bad side byte");
  if (GetU16(p + 6) != 0) {
    return Status::Corruption("nonzero reserved bytes");
  }
  out->type = static_cast<MessageType>(type);
  out->method = static_cast<WireMethod>(method);
  out->lower_side = side == 1;
  out->q = GetU32(p + 8);
  out->alpha = GetU32(p + 12);
  out->beta = GetU32(p + 16);
  out->deadline_ms = GetU32(p + 20);
  if (out->type == MessageType::kQuery &&
      (out->alpha == 0 || out->beta == 0)) {
    return Status::Corruption("alpha and beta must be >= 1");
  }
  return Status::OK();
}

void EncodeResponse(const WireResponse& resp, std::vector<std::byte>* out) {
  out->reserve(out->size() + kResponseWireBytes);
  PutU16(kResponseMagic, out);
  out->push_back(static_cast<std::byte>(kWireVersion));
  out->push_back(static_cast<std::byte>(resp.status));
  out->push_back(static_cast<std::byte>(resp.type));
  out->push_back(static_cast<std::byte>(resp.kernel));
  out->push_back(static_cast<std::byte>(resp.found ? 1 : 0));
  out->push_back(static_cast<std::byte>(resp.memo_hit ? 1 : 0));
  PutU32(resp.num_edges, out);
  PutU32(resp.result_edges, out);
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(resp.significance));
  std::memcpy(&bits, &resp.significance, sizeof(bits));
  PutU64(bits, out);
  PutU64(resp.epoch, out);
}

Status DecodeResponse(std::span<const std::byte> payload, WireResponse* out) {
  if (payload.size() != kResponseWireBytes) {
    return Status::Corruption("response payload has wrong size");
  }
  const std::byte* p = payload.data();
  if (GetU16(p) != kResponseMagic) {
    return Status::Corruption("bad response magic");
  }
  if (static_cast<uint8_t>(p[2]) != kWireVersion) {
    return Status::NotSupported("unsupported protocol version");
  }
  const uint8_t status = static_cast<uint8_t>(p[3]);
  if (status > static_cast<uint8_t>(WireStatus::kConflict)) {
    return Status::Corruption("unknown response status");
  }
  const uint8_t type = static_cast<uint8_t>(p[4]);
  if (type != static_cast<uint8_t>(MessageType::kQuery) &&
      type != static_cast<uint8_t>(MessageType::kPing) &&
      type != static_cast<uint8_t>(MessageType::kUpdate)) {
    return Status::Corruption("unknown message type");
  }
  const uint8_t found = static_cast<uint8_t>(p[6]);
  const uint8_t memo = static_cast<uint8_t>(p[7]);
  if (found > 1 || memo > 1) return Status::Corruption("bad flag byte");
  out->status = static_cast<WireStatus>(status);
  out->type = static_cast<MessageType>(type);
  out->kernel = static_cast<uint8_t>(p[5]);
  out->found = found == 1;
  out->memo_hit = memo == 1;
  out->num_edges = GetU32(p + 8);
  out->result_edges = GetU32(p + 12);
  const uint64_t bits = GetU64(p + 16);
  std::memcpy(&out->significance, &bits, sizeof(out->significance));
  out->epoch = GetU64(p + 24);
  return Status::OK();
}

void EncodeHealthResponse(const WireHealth& health,
                          std::vector<std::byte>* out) {
  out->reserve(out->size() + kHealthWireBytes);
  PutU16(kResponseMagic, out);
  out->push_back(static_cast<std::byte>(kWireVersion));
  out->push_back(static_cast<std::byte>(WireStatus::kOk));
  out->push_back(static_cast<std::byte>(MessageType::kHealth));
  out->push_back(static_cast<std::byte>(health.state));
  PutU16(0, out);  // reserved
  PutU32(health.queue_depth, out);
  PutU32(health.inflight, out);
  PutU32(health.connections, out);
  PutU32(health.slow_client_dropped, out);
  PutU64(health.epoch, out);
  PutU64(health.memo_hits, out);
  PutU64(health.requests, out);
}

Status DecodeHealthResponse(std::span<const std::byte> payload,
                            WireHealth* out) {
  if (payload.size() != kHealthWireBytes) {
    return Status::Corruption("health payload has wrong size");
  }
  const std::byte* p = payload.data();
  if (GetU16(p) != kResponseMagic) {
    return Status::Corruption("bad response magic");
  }
  if (static_cast<uint8_t>(p[2]) != kWireVersion) {
    return Status::NotSupported("unsupported protocol version");
  }
  if (static_cast<uint8_t>(p[3]) != static_cast<uint8_t>(WireStatus::kOk)) {
    return Status::Corruption("health response must carry status ok");
  }
  if (static_cast<uint8_t>(p[4]) !=
      static_cast<uint8_t>(MessageType::kHealth)) {
    return Status::Corruption("unknown message type");
  }
  const uint8_t state = static_cast<uint8_t>(p[5]);
  if (state > static_cast<uint8_t>(HealthState::kDraining)) {
    return Status::Corruption("unknown health state");
  }
  if (GetU16(p + 6) != 0) {
    return Status::Corruption("nonzero reserved bytes");
  }
  out->state = static_cast<HealthState>(state);
  out->queue_depth = GetU32(p + 8);
  out->inflight = GetU32(p + 12);
  out->connections = GetU32(p + 16);
  out->slow_client_dropped = GetU32(p + 20);
  out->epoch = GetU64(p + 24);
  out->memo_hits = GetU64(p + 32);
  out->requests = GetU64(p + 40);
  return Status::OK();
}

}  // namespace abcs::serve
