#include "serve/frame.h"

#include <cstring>

namespace abcs::serve {

void AppendFrame(std::span<const std::byte> payload,
                 std::vector<std::byte>* out) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const std::size_t at = out->size();
  out->resize(at + 4 + payload.size());
  std::byte* p = out->data() + at;
  p[0] = static_cast<std::byte>(len & 0xff);
  p[1] = static_cast<std::byte>((len >> 8) & 0xff);
  p[2] = static_cast<std::byte>((len >> 16) & 0xff);
  p[3] = static_cast<std::byte>((len >> 24) & 0xff);
  if (!payload.empty()) {
    std::memcpy(p + 4, payload.data(), payload.size());
  }
}

Status FrameReader::Append(std::span<const std::byte> chunk) {
  if (poisoned_) {
    return Status::Corruption("frame stream poisoned by bad length prefix");
  }
  // Compact drained bytes before growing; keeps the buffer bounded by one
  // in-flight frame plus whatever the last chunk carried.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
  // Validate the visible length prefix eagerly so a hostile 4-byte header
  // is rejected without waiting for (or buffering) its claimed payload.
  if (buffer_.size() >= 4) {
    const uint32_t len = static_cast<uint32_t>(buffer_[0]) |
                         (static_cast<uint32_t>(buffer_[1]) << 8) |
                         (static_cast<uint32_t>(buffer_[2]) << 16) |
                         (static_cast<uint32_t>(buffer_[3]) << 24);
    if (len > kMaxFramePayload) {
      poisoned_ = true;
      return Status::Corruption("frame length prefix exceeds limit");
    }
  }
  return Status::OK();
}

bool FrameReader::Next(std::span<const std::byte>* payload) {
  if (poisoned_) return false;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < 4) return false;
  const std::byte* p = buffer_.data() + consumed_;
  const uint32_t len = static_cast<uint32_t>(p[0]) |
                       (static_cast<uint32_t>(p[1]) << 8) |
                       (static_cast<uint32_t>(p[2]) << 16) |
                       (static_cast<uint32_t>(p[3]) << 24);
  if (len > kMaxFramePayload) {
    // Interior frames are validated here (Append only sees the first
    // prefix of each chunk); Poisoned() makes the failure sticky.
    poisoned_ = true;
    return false;
  }
  if (avail < 4 + static_cast<std::size_t>(len)) return false;
  *payload = {p + 4, len};
  consumed_ += 4 + len;
  return true;
}

}  // namespace abcs::serve
