#ifndef ABCS_SERVE_MEMO_H_
#define ABCS_SERVE_MEMO_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "core/subgraph.h"
#include "graph/bipartite_graph.h"
#include "serve/protocol.h"

namespace abcs::serve {

/// What the memo can answer without running a query: exactly the semantic
/// fields of a WireResponse.
struct MemoValue {
  bool found = false;
  uint32_t num_edges = 0;     ///< |C|
  uint32_t result_edges = 0;  ///< |R| (SCS methods)
  uint8_t kernel = 0xff;      ///< resolved ScsAlgo (SCS methods)
  double significance = 0.0;  ///< f(R) (SCS methods)
};

/// \brief Warm result memo keyed by (method, α, β, community root).
///
/// The paper's community semantics make repeat traffic memoizable:
/// C_{α,β}(q) is the connected component of the (α,β)-core containing q,
/// so *every* vertex of that component has the same community. The memo
/// exploits this with two levels:
///
///  - `roots_` maps (method, α, β, vertex) → the community's canonical
///    root (its minimum vertex id). On a miss that retrieved community C,
///    all of C's vertices are registered, so a later query for any of
///    them — not just the same q — is a hash hit.
///  - `results_` maps (method, α, β, root) → the shared MemoValue.
///
/// Sharing is only valid where the answer is q-invariant. That holds for
/// the three retrieval methods (the answer is C itself). It does NOT hold
/// for the SCS methods: R maximises significance *subject to containing
/// q*, and the planner's kernel choice also reads q's arcs — so SCS
/// entries are registered under root = q and only exact repeats hit.
/// Either way a hit is bit-identical to what a fresh query would answer
/// on the wire.
///
/// Vertices whose community is empty (q outside the (α,β)-core) are
/// likewise registered under root = q: emptiness says nothing about the
/// rest of the component.
///
/// Invalidation under live updates is *selective* by snapshot epoch
/// (`AdvanceEpoch`): a publish drops only the entries an update batch
/// could have affected — every SCS entry (significance reads weights and
/// q's arcs), every oversized entry (members unknown, unverifiable) and
/// every shared entry with a registered member in the publisher's
/// one-hop-expanded touched set — and keeps the rest warm. Weights-only
/// publishes keep all retrieval entries (community membership is
/// topology-only). Entries are epoch-aligned: a lookup or insert carries
/// the requester's pinned snapshot epoch and is ignored unless it matches
/// the memo's — a worker still executing against a retired snapshot can
/// neither read nor poison results for the published one. `Invalidate()`
/// remains the unconditional flush. Capacity is bounded by flushing
/// everything when the root table outgrows `max_entries` — a warm cache,
/// not a database; the next wave of traffic re-fills it.
///
/// Thread-safe: lookups take a shared lock, inserts/invalidation an
/// exclusive one. Concurrent inserts of the same key are idempotent
/// (queries are deterministic, both writers carry identical values).
class QueryMemo {
 public:
  explicit QueryMemo(std::size_t max_entries = 1 << 16)
      : max_entries_(max_entries) {}

  /// Returns true and fills `*out` when (method, α, β, q) is covered by a
  /// cached result and `epoch` matches the memo's aligned epoch (static
  /// servers leave both at 0).
  bool Lookup(WireMethod method, uint32_t alpha, uint32_t beta, VertexId q,
              MemoValue* out, uint64_t epoch = 0) const;

  /// Registers the result of a fresh query computed against snapshot
  /// `epoch`; dropped unless that is still the memo's aligned epoch.
  /// `community` is the retrieved C (used to register the component's
  /// vertices; pass the empty subgraph for empty results). For SCS
  /// methods only q is registered.
  void Insert(WireMethod method, uint32_t alpha, uint32_t beta, VertexId q,
              const BipartiteGraph& g, const Subgraph& community,
              const MemoValue& value, uint64_t epoch = 0);

  /// Drops every entry and bumps the epoch.
  void Invalidate();

  /// Publish-time selective invalidation. Realigns the memo to
  /// `new_epoch`, then drops exactly the entries the batch could have
  /// affected. `touched` marks every vertex whose offsets may have
  /// changed, already expanded by one hop in the NEW graph (a community
  /// can gain a vertex whose own offsets changed while its members'
  /// didn't; the expansion catches the member it attaches to). With
  /// `flush_all` (δ changed, or no summary available) everything goes.
  void AdvanceEpoch(uint64_t new_epoch, bool topology_changed,
                    bool flush_all, const std::vector<uint8_t>& touched);

  /// Aligns the memo with the serving snapshot's epoch at startup.
  void SetEpoch(uint64_t epoch);

  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Key {
    uint8_t method;
    uint32_t alpha;
    uint32_t beta;
    uint32_t vertex;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // FNV-1a over the packed fields; cheap and well-mixed for the
      // dense small-integer key space.
      uint64_t h = 1469598103934665603ull;
      auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
      };
      mix(k.method);
      mix((static_cast<uint64_t>(k.alpha) << 32) | k.beta);
      mix(k.vertex);
      return static_cast<std::size_t>(h);
    }
  };

  // Communities larger than this register only q itself — bounding the
  // per-miss insert cost and the table's growth on huge components while
  // keeping exact-repeat hits.
  static constexpr std::size_t kMaxRegisterEdges = 4096;

  /// How an entry was registered — which is exactly what selective
  /// invalidation needs to know to decide survivability.
  enum class EntryKind : uint8_t {
    kShared,     ///< retrieval, every member registered in roots_
    kEmpty,      ///< retrieval, empty answer, registered under q only
    kOversized,  ///< retrieval > kMaxRegisterEdges, members unregistered
    kScs,        ///< SCS answer, valid only for exact (q, weights) repeats
  };
  struct Entry {
    MemoValue value;
    EntryKind kind = EntryKind::kShared;
  };

  const std::size_t max_entries_;
  mutable std::shared_mutex mu_;
  std::unordered_map<Key, uint32_t, KeyHash> roots_;
  std::unordered_map<Key, Entry, KeyHash> results_;
  uint64_t aligned_epoch_ = 0;  ///< guarded by mu_
  std::atomic<uint64_t> epoch_{1};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace abcs::serve

#endif  // ABCS_SERVE_MEMO_H_
