#ifndef ABCS_SERVE_MEMO_H_
#define ABCS_SERVE_MEMO_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "core/subgraph.h"
#include "graph/bipartite_graph.h"
#include "serve/protocol.h"

namespace abcs::serve {

/// What the memo can answer without running a query: exactly the semantic
/// fields of a WireResponse.
struct MemoValue {
  bool found = false;
  uint32_t num_edges = 0;     ///< |C|
  uint32_t result_edges = 0;  ///< |R| (SCS methods)
  uint8_t kernel = 0xff;      ///< resolved ScsAlgo (SCS methods)
  double significance = 0.0;  ///< f(R) (SCS methods)
};

/// \brief Warm result memo keyed by (method, α, β, community root).
///
/// The paper's community semantics make repeat traffic memoizable:
/// C_{α,β}(q) is the connected component of the (α,β)-core containing q,
/// so *every* vertex of that component has the same community. The memo
/// exploits this with two levels:
///
///  - `roots_` maps (method, α, β, vertex) → the community's canonical
///    root (its minimum vertex id). On a miss that retrieved community C,
///    all of C's vertices are registered, so a later query for any of
///    them — not just the same q — is a hash hit.
///  - `results_` maps (method, α, β, root) → the shared MemoValue.
///
/// Sharing is only valid where the answer is q-invariant. That holds for
/// the three retrieval methods (the answer is C itself). It does NOT hold
/// for the SCS methods: R maximises significance *subject to containing
/// q*, and the planner's kernel choice also reads q's arcs — so SCS
/// entries are registered under root = q and only exact repeats hit.
/// Either way a hit is bit-identical to what a fresh query would answer
/// on the wire.
///
/// Vertices whose community is empty (q outside the (α,β)-core) are
/// likewise registered under root = q: emptiness says nothing about the
/// rest of the component.
///
/// Invalidation is epoch-based: `Invalidate()` bumps the epoch and drops
/// every entry, so a snapshot swap (the next ROADMAP item) costs one
/// counter bump. Capacity is bounded by flushing everything when the
/// root table outgrows `max_entries` — a warm cache, not a database; the
/// next wave of traffic re-fills it.
///
/// Thread-safe: lookups take a shared lock, inserts/invalidation an
/// exclusive one. Concurrent inserts of the same key are idempotent
/// (queries are deterministic, both writers carry identical values).
class QueryMemo {
 public:
  explicit QueryMemo(std::size_t max_entries = 1 << 16)
      : max_entries_(max_entries) {}

  /// Returns true and fills `*out` when (method, α, β, q) is covered by a
  /// cached result of the current epoch.
  bool Lookup(WireMethod method, uint32_t alpha, uint32_t beta, VertexId q,
              MemoValue* out) const;

  /// Registers the result of a fresh query. `community` is the retrieved
  /// C (used to register the component's vertices; pass the empty
  /// subgraph for empty results). For SCS methods only q is registered.
  void Insert(WireMethod method, uint32_t alpha, uint32_t beta, VertexId q,
              const BipartiteGraph& g, const Subgraph& community,
              const MemoValue& value);

  /// Drops every entry and bumps the epoch.
  void Invalidate();

  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Key {
    uint8_t method;
    uint32_t alpha;
    uint32_t beta;
    uint32_t vertex;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // FNV-1a over the packed fields; cheap and well-mixed for the
      // dense small-integer key space.
      uint64_t h = 1469598103934665603ull;
      auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
      };
      mix(k.method);
      mix((static_cast<uint64_t>(k.alpha) << 32) | k.beta);
      mix(k.vertex);
      return static_cast<std::size_t>(h);
    }
  };

  // Communities larger than this register only q itself — bounding the
  // per-miss insert cost and the table's growth on huge components while
  // keeping exact-repeat hits.
  static constexpr std::size_t kMaxRegisterEdges = 4096;

  const std::size_t max_entries_;
  mutable std::shared_mutex mu_;
  std::unordered_map<Key, uint32_t, KeyHash> roots_;
  std::unordered_map<Key, MemoValue, KeyHash> results_;
  std::atomic<uint64_t> epoch_{1};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace abcs::serve

#endif  // ABCS_SERVE_MEMO_H_
