#ifndef ABCS_SERVE_NET_OPS_H_
#define ABCS_SERVE_NET_OPS_H_

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <cstddef>

namespace abcs::serve {

/// \brief Fault-injectable veneers over the serve tier's socket calls.
///
/// Every send/recv/poll/connect on the wire path goes through these
/// wrappers instead of the raw syscalls so the NetFaultInjector (see
/// io/fault_inject.h) can deterministically perturb them: fail with
/// ECONNRESET, truncate the attempted length, return EINTR without doing
/// the call, or sleep first. Disarmed, each wrapper costs one relaxed
/// atomic load on top of the syscall.
///
/// `point` names the call site for the injector ("net.client_send",
/// "net.server_recv", ...). Callers keep their normal errno handling —
/// an injected failure is indistinguishable from a real one, which is
/// the point.

/// send(fd, buf, len, MSG_NOSIGNAL | flags) behind the `point` seam.
ssize_t NetSend(int fd, const void* buf, std::size_t len, const char* point);

/// recv(fd, buf, len, 0) behind the `point` seam.
ssize_t NetRecv(int fd, void* buf, std::size_t len, const char* point);

/// poll(fds, nfds, timeout_ms) behind the `point` seam (reset/short do
/// not apply to poll and are ignored).
int NetPoll(pollfd* fds, nfds_t nfds, int timeout_ms, const char* point);

/// connect(fd, addr, len) behind the `point` seam; an injected reset
/// surfaces as ECONNREFUSED (the realistic connect-time failure).
int NetConnect(int fd, const sockaddr* addr, socklen_t len,
               const char* point);

}  // namespace abcs::serve

#endif  // ABCS_SERVE_NET_OPS_H_
