#include "serve/net_ops.h"

#include <cerrno>
#include <chrono>
#include <thread>

#include "io/fault_inject.h"

namespace abcs::serve {

namespace {

using Decision = NetFaultInjector::Decision;
using ActionKind = NetFaultInjector::ActionKind;

void MaybeSleep(const Decision& d) {
  if (d.kind == ActionKind::kDelay && d.arg > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(d.arg));
  }
}

}  // namespace

ssize_t NetSend(int fd, const void* buf, std::size_t len, const char* point) {
  const Decision d = NetFaultPoint(point);
  switch (d.kind) {
    case ActionKind::kReset:
      errno = ECONNRESET;
      return -1;
    case ActionKind::kEintr:
      errno = EINTR;
      return -1;
    case ActionKind::kShort:
      // Truncating the attempted length (never below one byte) forces the
      // caller's continuation loop to run; the peer still receives every
      // byte eventually, so a correct loop yields untorn frames.
      if (d.arg < len) len = d.arg;
      break;
    default:
      MaybeSleep(d);
      break;
  }
  return ::send(fd, buf, len, MSG_NOSIGNAL);
}

ssize_t NetRecv(int fd, void* buf, std::size_t len, const char* point) {
  const Decision d = NetFaultPoint(point);
  switch (d.kind) {
    case ActionKind::kReset:
      errno = ECONNRESET;
      return -1;
    case ActionKind::kEintr:
      errno = EINTR;
      return -1;
    case ActionKind::kShort:
      if (d.arg < len) len = d.arg;
      break;
    default:
      MaybeSleep(d);
      break;
  }
  return ::recv(fd, buf, len, 0);
}

int NetPoll(pollfd* fds, nfds_t nfds, int timeout_ms, const char* point) {
  const Decision d = NetFaultPoint(point);
  if (d.kind == ActionKind::kEintr) {
    errno = EINTR;
    return -1;
  }
  MaybeSleep(d);
  return ::poll(fds, nfds, timeout_ms);
}

int NetConnect(int fd, const sockaddr* addr, socklen_t len,
               const char* point) {
  const Decision d = NetFaultPoint(point);
  switch (d.kind) {
    case ActionKind::kReset:
      errno = ECONNREFUSED;
      return -1;
    case ActionKind::kEintr:
      errno = EINTR;
      return -1;
    default:
      MaybeSleep(d);
      break;
  }
  return ::connect(fd, addr, len);
}

}  // namespace abcs::serve
