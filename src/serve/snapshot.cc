#include "serve/snapshot.h"

#include <cstdio>
#include <utility>

#include "io/index_bundle.h"

namespace abcs::serve {

Snapshot::Snapshot(uint64_t epoch, const BipartiteGraph& g,
                   const DeltaIndex* delta, const BicoreIndex* bicore)
    : epoch_(epoch),
      graph_(&g),
      delta_(delta),
      bicore_(bicore),
      online_engine_(g, QueryMethod::kOnline),
      bicore_engine_(g, QueryMethod::kBicore, nullptr, bicore),
      delta_engine_(g, QueryMethod::kDelta, delta) {}

Snapshot::Snapshot(uint64_t epoch, std::shared_ptr<const BipartiteGraph> graph,
                   std::shared_ptr<const BicoreDecomposition> decomp,
                   std::shared_ptr<const DeltaIndex> delta,
                   std::shared_ptr<const BicoreIndex> bicore)
    : epoch_(epoch),
      owned_graph_(std::move(graph)),
      decomp_(std::move(decomp)),
      owned_delta_(std::move(delta)),
      owned_bicore_(std::move(bicore)),
      graph_(owned_graph_.get()),
      delta_(owned_delta_.get()),
      bicore_(owned_bicore_.get()),
      online_engine_(*graph_, QueryMethod::kOnline),
      bicore_engine_(*graph_, QueryMethod::kBicore, nullptr, bicore_),
      delta_engine_(*graph_, QueryMethod::kDelta, delta_) {}

Snapshot::Snapshot(uint64_t epoch, std::shared_ptr<const void> keepalive,
                   const BipartiteGraph& g, const DeltaIndex* delta,
                   const BicoreIndex* bicore)
    : epoch_(epoch),
      keepalive_(std::move(keepalive)),
      graph_(&g),
      delta_(delta),
      bicore_(bicore),
      online_engine_(g, QueryMethod::kOnline),
      bicore_engine_(g, QueryMethod::kBicore, nullptr, bicore),
      delta_engine_(g, QueryMethod::kDelta, delta) {}

SnapshotManager::SnapshotManager(const BipartiteGraph& g,
                                 const DeltaIndex* delta,
                                 const BicoreIndex* bicore,
                                 const BicoreDecomposition* decomp,
                                 SnapshotManagerOptions options)
    : seed_graph_(&g),
      seed_delta_(delta),
      seed_bicore_(bicore),
      seed_decomp_(decomp),
      options_(std::move(options)) {
  current_ = std::make_shared<const Snapshot>(1, g, delta, bicore);
}

SnapshotManager::~SnapshotManager() { Drain(); }

void SnapshotManager::set_publish_hook(PublishHook hook) {
  publish_hook_ = std::move(hook);
}

Status SnapshotManager::Start() {
  if (started_) return Status::InvalidArgument("manager already started");
  // The one O(n·δ + m) fork of the served state into the writer's mutable
  // copy; with a decomposition in hand (the bundle restart path) this is
  // copies only, no peels.
  dyn_ = std::make_unique<DynamicDeltaIndex>(*seed_graph_, seed_decomp_);
  started_ = true;
  writer_ = std::thread(&SnapshotManager::WriterLoop, this);
  return Status::OK();
}

void SnapshotManager::Drain() {
  if (!started_ || joined_) return;
  draining_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  joined_ = true;
}

std::shared_ptr<const Snapshot> SnapshotManager::Current() const {
  std::lock_guard<std::mutex> lock(current_mu_);
  return current_;
}

bool SnapshotManager::Enqueue(UpdateOp op, uint32_t u_upper, uint32_t v_lower,
                              double weight, DoneFn done) {
  WireStatus reject = WireStatus::kOk;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (draining_.load(std::memory_order_acquire) || !started_) {
      reject = WireStatus::kShuttingDown;
    } else if (queue_.size() >= options_.update_queue) {
      counters_.overflows.fetch_add(1, std::memory_order_relaxed);
      reject = WireStatus::kOverloaded;
    } else {
      queue_.push_back(
          PendingOp{op, u_upper, v_lower, weight, std::move(done)});
    }
  }
  if (reject != WireStatus::kOk) {
    if (done) done(reject, Epoch());
    return false;
  }
  queue_cv_.notify_one();
  return true;
}

uint64_t SnapshotManager::PublishRecovery(std::shared_ptr<const void> keepalive,
                                          const BipartiteGraph& g,
                                          const DeltaIndex* delta,
                                          const BicoreIndex* bicore) {
  const uint64_t epoch = Epoch() + 1;
  auto snap = std::make_shared<const Snapshot>(epoch, std::move(keepalive), g,
                                               delta, bicore);
  {
    std::lock_guard<std::mutex> lock(current_mu_);
    current_ = std::move(snap);
  }
  epoch_.store(epoch, std::memory_order_release);
  return epoch;
}

UpdateStats SnapshotManager::Stats() const {
  UpdateStats s;
  s.applied = counters_.applied.load(std::memory_order_relaxed);
  s.conflicts = counters_.conflicts.load(std::memory_order_relaxed);
  s.commits = counters_.commits.load(std::memory_order_relaxed);
  s.compactions = counters_.compactions.load(std::memory_order_relaxed);
  s.overflows = counters_.overflows.load(std::memory_order_relaxed);
  return s;
}

void SnapshotManager::WriterLoop() {
  for (;;) {
    PendingOp op;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] {
        return !queue_.empty() || draining_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) break;  // draining and fully applied
      op = std::move(queue_.front());
      queue_.pop_front();
    }
    Apply(op);
  }
  // SIGTERM guarantee: everything admitted above was applied; publish the
  // uncommitted tail so it is never silently lost, then persist.
  if (ops_since_publish_ > 0) Publish();
  MaybeCompact(/*at_drain=*/true);
}

void SnapshotManager::Apply(PendingOp& op) {
  WireStatus ws = WireStatus::kOk;
  uint64_t epoch = Epoch();
  const uint32_t num_upper = dyn_->NumUpper();
  const uint32_t num_lower = dyn_->NumVertices() - num_upper;
  if (op.op != UpdateOp::kCommit &&
      (op.u >= num_upper || op.v >= num_lower)) {
    ws = WireStatus::kInvalidVertex;
  } else {
    switch (op.op) {
      case UpdateOp::kInsertEdge: {
        const Status st = dyn_->InsertEdge(op.u, num_upper + op.v, op.weight);
        ws = st.ok() ? WireStatus::kOk : WireStatus::kConflict;
        break;
      }
      case UpdateOp::kRemoveEdge: {
        const Status st = dyn_->RemoveEdge(op.u, num_upper + op.v);
        ws = st.ok() ? WireStatus::kOk : WireStatus::kConflict;
        break;
      }
      case UpdateOp::kReweightEdge: {
        const Status st = dyn_->UpdateWeight(op.u, num_upper + op.v, op.weight);
        ws = st.ok() ? WireStatus::kOk : WireStatus::kConflict;
        break;
      }
      case UpdateOp::kCommit: {
        if (ops_since_publish_ > 0) {
          epoch = Publish();
        }
        // An empty commit is a cheap no-op answering the current epoch.
        break;
      }
    }
    if (op.op != UpdateOp::kCommit) {
      if (ws == WireStatus::kOk) {
        ++ops_since_publish_;
        counters_.applied.fetch_add(1, std::memory_order_relaxed);
      } else if (ws == WireStatus::kConflict) {
        counters_.conflicts.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (op.done) op.done(ws, epoch);
}

uint64_t SnapshotManager::Publish() {
  UpdateSummary summary = dyn_->DrainSummary();
  auto graph = std::make_shared<const BipartiteGraph>(dyn_->ExportGraph());
  // Structural sharing: offsets are topology-only, so a weights-only batch
  // republishes the previous decomposition untouched.
  std::shared_ptr<const BicoreDecomposition> decomp;
  const bool topology =
      summary.topology_changed || summary.delta_changed || !last_decomp_;
  if (topology) {
    decomp = std::make_shared<const BicoreDecomposition>(
        dyn_->ExportDecomposition());
  } else {
    decomp = last_decomp_;
  }
  last_decomp_ = decomp;
  auto delta = std::make_shared<const DeltaIndex>(
      DeltaIndex::Build(*graph, decomp.get(), options_.publish_threads));
  auto bicore = std::make_shared<const BicoreIndex>(
      BicoreIndex::Build(*graph, decomp.get(), options_.publish_threads));

  const uint64_t epoch = Epoch() + 1;
  auto snap = std::make_shared<const Snapshot>(epoch, std::move(graph),
                                               std::move(decomp),
                                               std::move(delta),
                                               std::move(bicore));

  // One-hop expansion in the NEW graph: a vertex can join a community
  // whose members' own offsets never changed; the member it attaches to
  // is a neighbour of a touched vertex.
  const BipartiteGraph& g = snap->graph();
  std::vector<uint8_t> touched(g.NumVertices(), 0);
  for (const VertexId x : summary.touched) {
    if (x < touched.size()) touched[x] = 1;
  }
  for (const VertexId x : summary.touched) {
    if (x >= g.NumVertices()) continue;
    for (const Arc& a : g.Neighbors(x)) touched[a.to] = 1;
  }

  // Memo invalidation runs before the swap; epoch-gated lookups make
  // either order safe, this one just minimises the stale-miss window.
  if (publish_hook_) publish_hook_(*snap, summary, touched);
  {
    std::lock_guard<std::mutex> lock(current_mu_);
    current_ = std::move(snap);
  }
  epoch_.store(epoch, std::memory_order_release);
  counters_.commits.fetch_add(1, std::memory_order_relaxed);
  ops_since_publish_ = 0;
  dirty_since_compact_ = true;
  ++commits_since_compact_;
  if (options_.compact_every != 0 &&
      commits_since_compact_ >= options_.compact_every) {
    MaybeCompact(/*at_drain=*/false);
  }
  return epoch;
}

void SnapshotManager::MaybeCompact(bool at_drain) {
  (void)at_drain;
  if (options_.compact_path.empty() || !dirty_since_compact_) return;
  const std::shared_ptr<const Snapshot> snap = Current();
  if (snap->decomposition() == nullptr) return;  // still the borrowed seed
  SaveBundleOptions save_opts;
  save_opts.keep_previous = true;
  const Status st = SaveIndexBundle(snap->graph(), *snap->decomposition(),
                                    *snap->delta_index(),
                                    *snap->bicore_index(),
                                    options_.compact_path, save_opts);
  if (st.ok()) {
    counters_.compactions.fetch_add(1, std::memory_order_relaxed);
    dirty_since_compact_ = false;
    commits_since_compact_ = 0;
  } else {
    // Compaction is best-effort durability, never availability: log and
    // keep serving; the next commit retries.
    std::fprintf(stderr, "# compaction failed: %s\n", st.ToString().c_str());
  }
}

}  // namespace abcs::serve
