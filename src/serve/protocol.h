#ifndef ABCS_SERVE_PROTOCOL_H_
#define ABCS_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace abcs::serve {

/// Protocol version carried in every request and response.
inline constexpr uint8_t kWireVersion = 1;

/// First two payload bytes, little-endian: "AQ" for requests, "AS" for
/// responses. A frame whose magic is wrong is a protocol error.
inline constexpr uint16_t kRequestMagic = 0x5141;   // 'A' 'Q'
inline constexpr uint16_t kResponseMagic = 0x5341;  // 'A' 'S'

enum class MessageType : uint8_t {
  kQuery = 1,   ///< one community / SCS query
  kPing = 2,    ///< liveness + drain probe; echoed as an empty OK response
  kUpdate = 3,  ///< one live-update operation (see UpdateOp)
  kHealth = 4,  ///< health probe; answered with the extended health frame
};

/// Live-update operations carried by kUpdate frames. Values are part of
/// the protocol — append only. Mutations accumulate invisibly in the
/// writer's state and become visible to queries atomically at the next
/// kCommit, which publishes a new epoch.
enum class UpdateOp : uint8_t {
  kInsertEdge = 0,    ///< add edge (u, v) with the given weight
  kRemoveEdge = 1,    ///< delete edge (u, v)
  kReweightEdge = 2,  ///< set edge (u, v)'s weight
  kCommit = 3,        ///< publish all applied mutations as a new epoch
};
inline constexpr uint8_t kNumUpdateOps = 4;

/// The seven CLI batch methods, numbered for the wire. Values are part of
/// the protocol — append only.
enum class WireMethod : uint8_t {
  kOnline = 0,
  kBicore = 1,
  kDelta = 2,
  kScsAuto = 3,
  kScsPeel = 4,
  kScsExpand = 5,
  kScsBinary = 6,
};
inline constexpr uint8_t kNumWireMethods = 7;

/// True for the methods that run the full two-step SCS paradigm.
inline bool IsScsMethod(WireMethod m) {
  return static_cast<uint8_t>(m) >= static_cast<uint8_t>(WireMethod::kScsAuto);
}

/// Per-response status. Values are part of the protocol — append only.
enum class WireStatus : uint8_t {
  kOk = 0,
  kBadRequest = 1,       ///< malformed payload the framing survived
  kInvalidVertex = 2,    ///< q outside the served graph's layer
  kDeadlineExceeded = 3, ///< expired in queue before a worker picked it up
  kOverloaded = 4,       ///< admission/update queue full; retry with backoff
  kShuttingDown = 5,     ///< server draining; connection closes after this
  kUpdatesDisabled = 6,  ///< daemon not started with --enable-updates
  kConflict = 7,         ///< insert of existing edge / remove of missing one
};

/// Returns a stable lowercase name ("ok", "overloaded", …).
const char* WireStatusName(WireStatus status);

/// Returns a stable lowercase name ("insert", "remove", "reweight",
/// "commit"); null for out-of-range values.
const char* UpdateOpName(UpdateOp op);

/// One query request. `q` is a layer-local id; `lower_side` selects the
/// layer, exactly like the CLI's batch-file lines — the client never needs
/// to know the unified id space of the served graph.
///
/// Wire layout (little-endian, fixed 24 bytes):
///   off size field
///   0   2    magic "AQ"
///   2   1    version
///   3   1    type (MessageType)
///   4   1    method (WireMethod; 0 for ping)
///   5   1    side (0 = upper, 1 = lower)
///   6   2    reserved, must be 0
///   8   4    q (layer-local vertex id)
///   12  4    alpha
///   16  4    beta
///   20  4    deadline_ms (0 = server default)
///
/// kUpdate frames reuse the same fixed 24 bytes with a different middle:
///   off size field
///   0   2    magic "AQ"
///   2   1    version
///   3   1    type (MessageType::kUpdate)
///   4   1    op (UpdateOp)
///   5   1    reserved, must be 0
///   6   2    reserved, must be 0
///   8   4    u (upper layer-local id; 0 for kCommit)
///   12  4    v (lower layer-local id; 0 for kCommit)
///   16  8    weight as IEEE-754 bits (must be 0 for kRemoveEdge/kCommit;
///            must be finite otherwise)
struct WireRequest {
  MessageType type = MessageType::kQuery;
  WireMethod method = WireMethod::kDelta;
  bool lower_side = false;
  uint32_t q = 0;
  uint32_t alpha = 1;
  uint32_t beta = 1;
  /// End-to-end budget: queue wait counts against it at pickup, and the
  /// remainder is armed on the worker's CancelToken so an overrunning
  /// execution unwinds cooperatively mid-kernel. Either way the request
  /// is answered kDeadlineExceeded with an empty result — never a
  /// partial. 0 defers to the server's configured default.
  /// Queries only — updates are answered by the writer in arrival order.
  uint32_t deadline_ms = 0;

  // kUpdate fields (ignored for kQuery/kPing).
  UpdateOp op = UpdateOp::kInsertEdge;
  uint32_t u = 0;       ///< upper layer-local endpoint
  uint32_t v = 0;       ///< lower layer-local endpoint
  double weight = 0.0;  ///< kInsertEdge / kReweightEdge only
};

inline constexpr std::size_t kRequestWireBytes = 24;

/// One response. Carries the semantic result only — counts, significance,
/// resolved kernel — never internal work counters (a memo hit does no
/// work, so echoing the original computation's counters would lie).
///
/// Wire layout (little-endian, fixed 32 bytes):
///   off size field
///   0   2    magic "AS"
///   2   1    version
///   3   1    status (WireStatus)
///   4   1    type (echoes the request's MessageType)
///   5   1    kernel (resolved ScsAlgo for SCS methods; 0xff otherwise)
///   6   1    found (SCS: R exists; retrieval: community nonempty)
///   7   1    memo_hit (diagnostic: answer came from the warm memo)
///   8   4    num_edges (|C|)
///   12  4    result_edges (|R| for SCS methods; 0 otherwise)
///   16  8    significance f(R) as IEEE-754 bits (SCS methods; 0 otherwise)
///   24  8    epoch (the snapshot epoch that answered; on kCommit the
///            newly published epoch — 0 only from pre-update daemons,
///            whose responses carried reserved zeros here)
struct WireResponse {
  WireStatus status = WireStatus::kOk;
  MessageType type = MessageType::kQuery;
  uint8_t kernel = 0xff;
  bool found = false;
  bool memo_hit = false;
  uint32_t num_edges = 0;
  uint32_t result_edges = 0;
  double significance = 0.0;
  uint64_t epoch = 0;
};

inline constexpr std::size_t kResponseWireBytes = 32;

/// Appends the 24-byte request payload (unframed) to `out`.
void EncodeRequest(const WireRequest& req, std::vector<std::byte>* out);

/// Strict bounds-checked parse of one frame payload. Rejects wrong size,
/// magic, version, unknown type/method, bad side byte and nonzero
/// reserved bytes — nothing about the payload is trusted.
Status DecodeRequest(std::span<const std::byte> payload, WireRequest* out);

/// Appends the 32-byte response payload (unframed) to `out`.
void EncodeResponse(const WireResponse& resp, std::vector<std::byte>* out);

/// Strict bounds-checked parse of one response payload (client side).
Status DecodeResponse(std::span<const std::byte> payload, WireResponse* out);

/// Server condition reported by a health response. Values are part of
/// the protocol — append only.
enum class HealthState : uint8_t {
  kLive = 0,      ///< accepting and keeping up
  kDegraded = 1,  ///< serving, but the queue is deep or progress stalled
  kDraining = 2,  ///< shutdown in progress; finish and reconnect elsewhere
};

/// Returns a stable lowercase name ("live", "degraded", "draining").
const char* HealthStateName(HealthState state);

/// The watchdog's exported snapshot, answered to kHealth probes. Its own
/// 48-byte layout (distinguished from WireResponse by size and type byte)
/// keeps the hot 32-byte response untouched; like every other payload it
/// is parsed strictly — exact size, no don't-care bytes.
///
/// Wire layout (little-endian, fixed 48 bytes):
///   off size field
///   0   2    magic "AS"
///   2   1    version
///   3   1    status (WireStatus)
///   4   1    type (MessageType::kHealth)
///   5   1    state (HealthState)
///   6   2    reserved, must be 0
///   8   4    queue_depth (tasks admitted but not yet picked up)
///   12  4    inflight (tasks currently executing on workers)
///   16  4    connections (live client connections)
///   20  4    slow_client_dropped (connections shed by the write deadline)
///   24  8    epoch (current snapshot epoch)
///   32  8    memo_hits (warm-memo hits since start)
///   40  8    requests (decoded frames since start, probes included)
struct WireHealth {
  HealthState state = HealthState::kLive;
  uint32_t queue_depth = 0;
  uint32_t inflight = 0;
  uint32_t connections = 0;
  uint32_t slow_client_dropped = 0;
  uint64_t epoch = 0;
  uint64_t memo_hits = 0;
  uint64_t requests = 0;
};

inline constexpr std::size_t kHealthWireBytes = 48;

/// Appends the 48-byte health payload (unframed) to `out`.
void EncodeHealthResponse(const WireHealth& health,
                          std::vector<std::byte>* out);

/// Strict bounds-checked parse of one health payload (client side).
Status DecodeHealthResponse(std::span<const std::byte> payload,
                            WireHealth* out);

/// Wire name of a method ("online", …, "scs-binary"), matching the CLI's
/// --method spellings; null for out-of-range values.
const char* WireMethodName(WireMethod method);

/// Parses a CLI --method spelling into a WireMethod. Returns false for
/// unknown names.
bool ParseWireMethod(const char* name, WireMethod* out);

}  // namespace abcs::serve

#endif  // ABCS_SERVE_PROTOCOL_H_
