#ifndef ABCS_MODELS_BITRUSS_H_
#define ABCS_MODELS_BITRUSS_H_

#include <cstdint>
#include <vector>

#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief Full bitruss decomposition (Zou, DASFAA'16 / Wang et al.,
/// ICDE'20 — the paper's [17][18]): `result[e]` is the bitruss number
/// φ(e), the maximal k such that edge `e` belongs to the k-bitruss (the
/// maximal subgraph where every edge lies in ≥ k butterflies).
///
/// Support peeling with bucket queues; on each edge removal the supports of
/// the other three edges of every butterfly through it are decremented.
std::vector<uint64_t> BitrussNumbers(const BipartiteGraph& g);

/// \brief The connected component of `q` in the k-bitruss of `g`
/// (the bitruss community baseline of the paper's effectiveness study,
/// used with k = α·β). Empty when q is not in the k-bitruss.
Subgraph QueryBitrussCommunity(const BipartiteGraph& g, VertexId q,
                               uint64_t k);

}  // namespace abcs

#endif  // ABCS_MODELS_BITRUSS_H_
