#include "models/cstar.h"

#include <vector>

namespace abcs {

Subgraph QueryCStarCommunity(const BipartiteGraph& g, VertexId q,
                             Weight threshold) {
  Subgraph result;
  if (q >= g.NumVertices()) return result;

  // Keep lower vertices with average incident weight >= threshold.
  std::vector<uint8_t> keep(g.NumVertices(), 0);
  for (VertexId v = g.NumUpper(); v < g.NumVertices(); ++v) {
    double sum = 0.0;
    for (const Arc& a : g.Neighbors(v)) sum += g.GetWeight(a.eid);
    const uint32_t d = g.Degree(v);
    if (d > 0 && sum / d >= threshold) keep[v] = 1;
  }
  // Upper vertices survive if they touch any kept movie.
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    for (const Arc& a : g.Neighbors(u)) {
      if (keep[a.to]) {
        keep[u] = 1;
        break;
      }
    }
  }
  if (!keep[q]) return result;

  std::vector<uint8_t> visited(g.NumVertices(), 0);
  std::vector<VertexId> stack{q};
  visited[q] = 1;
  while (!stack.empty()) {
    VertexId x = stack.back();
    stack.pop_back();
    for (const Arc& a : g.Neighbors(x)) {
      if (!keep[a.to]) continue;
      // An edge belongs to the induced subgraph iff its movie is kept.
      const VertexId movie = g.IsUpper(x) ? a.to : x;
      if (!keep[movie]) continue;
      if (!g.IsUpper(x)) result.edges.push_back(a.eid);
      if (!visited[a.to]) {
        visited[a.to] = 1;
        stack.push_back(a.to);
      }
    }
  }
  return result;
}

}  // namespace abcs
