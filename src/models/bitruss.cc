#include "models/bitruss.h"

#include <algorithm>
#include <unordered_map>

#include "models/butterfly.h"

namespace abcs {

namespace {

uint64_t PairKey(VertexId u, VertexId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

/// O(1) lookup of the edge id between two vertices (or kInvalidEdge).
class EdgeLookup {
 public:
  explicit EdgeLookup(const BipartiteGraph& g) {
    map_.reserve(g.NumEdges() * 2);
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      const Edge& ed = g.GetEdge(e);
      map_.emplace(PairKey(ed.u, ed.v), e);
    }
  }
  EdgeId Find(VertexId u, VertexId v) const {
    auto it = map_.find(PairKey(u, v));
    return it == map_.end() ? kInvalidEdge : it->second;
  }

 private:
  std::unordered_map<uint64_t, EdgeId> map_;
};

/// Decrements the supports of the other three edges of every butterfly
/// containing (u, v), where u is upper and v lower. `on_decrement(e)` is
/// called once per decrement.
template <typename Fn>
void ForEachButterflyMate(const BipartiteGraph& g, const EdgeLookup& lookup,
                          const std::vector<uint8_t>& alive, VertexId u,
                          VertexId v, Fn on_decrement) {
  for (const Arc& av : g.Neighbors(v)) {
    const VertexId u2 = av.to;  // another upper vertex rating v
    if (u2 == u || !alive[av.eid]) continue;
    for (const Arc& au : g.Neighbors(u)) {
      const VertexId v2 = au.to;  // another lower vertex of u
      if (v2 == v || !alive[au.eid]) continue;
      const EdgeId cross = lookup.Find(u2, v2);
      if (cross == kInvalidEdge || !alive[cross]) continue;
      // Butterfly {(u,v), (u,v2), (u2,v), (u2,v2)} loses (u,v).
      on_decrement(av.eid);
      on_decrement(au.eid);
      on_decrement(cross);
    }
  }
}

}  // namespace

std::vector<uint64_t> BitrussNumbers(const BipartiteGraph& g) {
  const uint32_t m = g.NumEdges();
  std::vector<uint64_t> sup64 = CountButterfliesPerEdge(g);
  std::vector<uint64_t> phi(m, 0);
  if (m == 0) return phi;
  EdgeLookup lookup(g);

  uint64_t max_sup = 0;
  for (uint64_t s : sup64) max_sup = std::max(max_sup, s);
  std::vector<std::vector<EdgeId>> buckets(max_sup + 1);
  for (EdgeId e = 0; e < m; ++e) buckets[sup64[e]].push_back(e);

  std::vector<uint8_t> alive(m, 1);
  for (uint64_t level = 0; level <= max_sup; ++level) {
    auto& bucket = buckets[level];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const EdgeId e = bucket[i];
      if (!alive[e] || sup64[e] != level) continue;  // stale entry
      alive[e] = 0;
      phi[e] = level;
      const Edge& ed = g.GetEdge(e);
      ForEachButterflyMate(g, lookup, alive, ed.u, ed.v, [&](EdgeId other) {
        // Clamp at the current level (classic truss-decomposition trick so
        // already-reached levels never regress).
        if (sup64[other] > level) {
          --sup64[other];
          if (sup64[other] <= level) {
            sup64[other] = level;
            bucket.push_back(other);
          } else {
            buckets[sup64[other]].push_back(other);
          }
        }
      });
    }
    bucket.clear();
  }
  return phi;
}

Subgraph QueryBitrussCommunity(const BipartiteGraph& g, VertexId q,
                               uint64_t k) {
  Subgraph result;
  const uint32_t m = g.NumEdges();
  if (m == 0 || q >= g.NumVertices()) return result;

  // Targeted peel: drop edges with support < k until stable.
  std::vector<uint64_t> sup = CountButterfliesPerEdge(g);
  EdgeLookup lookup(g);
  // Kill edges one at a time (when popped, not when enqueued) so butterfly
  // enumeration sees a consistent alive set and supports are decremented
  // exactly once per destroyed butterfly.
  std::vector<uint8_t> alive(m, 1);
  std::vector<EdgeId> queue;
  for (EdgeId e = 0; e < m; ++e) {
    if (sup[e] < k) queue.push_back(e);
  }
  while (!queue.empty()) {
    const EdgeId e = queue.back();
    queue.pop_back();
    if (!alive[e]) continue;
    alive[e] = 0;
    const Edge& ed = g.GetEdge(e);
    ForEachButterflyMate(g, lookup, alive, ed.u, ed.v, [&](EdgeId other) {
      if (sup[other] > 0) {
        --sup[other];
        if (sup[other] < k) queue.push_back(other);
      }
    });
  }

  // BFS from q over surviving edges.
  std::vector<uint8_t> visited(g.NumVertices(), 0);
  std::vector<VertexId> stack{q};
  visited[q] = 1;
  while (!stack.empty()) {
    VertexId x = stack.back();
    stack.pop_back();
    for (const Arc& a : g.Neighbors(x)) {
      if (!alive[a.eid]) continue;
      if (!g.IsUpper(x)) result.edges.push_back(a.eid);
      if (!visited[a.to]) {
        visited[a.to] = 1;
        stack.push_back(a.to);
      }
    }
  }
  return result;
}

}  // namespace abcs
