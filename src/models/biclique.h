#ifndef ABCS_MODELS_BICLIQUE_H_
#define ABCS_MODELS_BICLIQUE_H_

#include <cstdint>

#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief Finds a maximal biclique containing `q` with at least `min_side`
/// vertices on each layer (the paper's Table II uses min_side = 45),
/// returned as its edge set. Empty subgraph if none is found.
///
/// Greedy construction (a substitution for the exact enumeration of Zhang
/// et al. [20], which is exponential in the worst case): order q's
/// neighbours by degree, sweep prefix sets S_t computing the common
/// neighbourhood, keep the t maximising min(t, |common(S_t)|), then extend
/// both sides to maximality. Guaranteed to return a *maximal* biclique
/// containing q (no single vertex can be added), though not necessarily the
/// maximum one — sufficient for the effectiveness comparison, where only
/// representative statistics of "a large biclique around q" are reported.
Subgraph QueryBicliqueCommunity(const BipartiteGraph& g, VertexId q,
                                uint32_t min_side);

}  // namespace abcs

#endif  // ABCS_MODELS_BICLIQUE_H_
