#ifndef ABCS_MODELS_METRICS_H_
#define ABCS_MODELS_METRICS_H_

#include <cstdint>

#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// Bipartite graph density d(G') = |E| / sqrt(|U|·|L|) (Kannan & Vinay —
/// the paper's [26]); 0 for an empty subgraph.
double BipartiteDensity(const BipartiteGraph& g, const Subgraph& sub);

/// \brief Number of "dislike users" in `sub` (paper Fig. 6(b)): upper
/// vertices with fewer than `0.6·alpha` incident sub-edges of weight
/// ≥ `good_threshold` (a rating of 4.0 in the paper).
uint32_t CountDislikeUsers(const BipartiteGraph& g, const Subgraph& sub,
                           uint32_t alpha, Weight good_threshold = 4.0);

/// Jaccard similarity of the vertex sets of two subgraphs (Table II's
/// `Sim` column). 1.0 when both are empty.
double JaccardVertexSimilarity(const BipartiteGraph& g, const Subgraph& a,
                               const Subgraph& b);

/// Average number of lower vertices an upper vertex touches within `sub`
/// (Table II's `Mavg`): |E(sub)| / |U(sub)|.
double AverageUpperDegree(const BipartiteGraph& g, const Subgraph& sub);

}  // namespace abcs

#endif  // ABCS_MODELS_METRICS_H_
