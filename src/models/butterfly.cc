#include "models/butterfly.h"

namespace abcs {

std::vector<uint64_t> CountButterfliesPerEdge(const BipartiteGraph& g) {
  const uint32_t m = g.NumEdges();
  std::vector<uint64_t> bf(m, 0);
  const uint32_t n = g.NumVertices();

  // For each upper vertex u, count wedges u—v—u' (shared lower neighbours
  // with every other upper vertex u'), then distribute over u's edges.
  std::vector<uint32_t> common(n, 0);
  std::vector<VertexId> touched;
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    touched.clear();
    for (const Arc& a : g.Neighbors(u)) {
      for (const Arc& b : g.Neighbors(a.to)) {
        if (b.to == u) continue;
        if (common[b.to]++ == 0) touched.push_back(b.to);
      }
    }
    // bf(u,v) = Σ_{u' ∈ N(v)\{u}} (common[u'] − 1).
    for (const Arc& a : g.Neighbors(u)) {
      uint64_t count = 0;
      for (const Arc& b : g.Neighbors(a.to)) {
        if (b.to == u) continue;
        count += common[b.to] - 1;
      }
      bf[a.eid] = count;
    }
    for (VertexId x : touched) common[x] = 0;
  }
  return bf;
}

uint64_t CountButterflies(const BipartiteGraph& g) {
  uint64_t total = 0;
  for (uint64_t c : CountButterfliesPerEdge(g)) total += c;
  return total / 4;
}

}  // namespace abcs
