#include "models/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace abcs {

double BipartiteDensity(const BipartiteGraph& g, const Subgraph& sub) {
  if (sub.Empty()) return 0.0;
  const SubgraphStats stats = ComputeStats(g, sub);
  const double denom = std::sqrt(static_cast<double>(stats.num_upper) *
                                 static_cast<double>(stats.num_lower));
  return denom > 0 ? static_cast<double>(sub.Size()) / denom : 0.0;
}

uint32_t CountDislikeUsers(const BipartiteGraph& g, const Subgraph& sub,
                           uint32_t alpha, Weight good_threshold) {
  std::unordered_map<VertexId, uint32_t> good_count;
  std::unordered_map<VertexId, uint32_t> present;
  for (EdgeId e : sub.edges) {
    const Edge& ed = g.GetEdge(e);
    ++present[ed.u];
    if (ed.w >= good_threshold) ++good_count[ed.u];
  }
  const double required = 0.6 * static_cast<double>(alpha);
  uint32_t dislike = 0;
  for (const auto& [u, cnt] : present) {
    (void)cnt;
    const auto it = good_count.find(u);
    const uint32_t good = (it == good_count.end()) ? 0 : it->second;
    if (static_cast<double>(good) < required) ++dislike;
  }
  return dislike;
}

double JaccardVertexSimilarity(const BipartiteGraph& g, const Subgraph& a,
                               const Subgraph& b) {
  std::vector<VertexId> va = SubgraphVertexSet(g, a);
  std::vector<VertexId> vb = SubgraphVertexSet(g, b);
  if (va.empty() && vb.empty()) return 1.0;
  std::vector<VertexId> inter;
  std::set_intersection(va.begin(), va.end(), vb.begin(), vb.end(),
                        std::back_inserter(inter));
  const std::size_t uni = va.size() + vb.size() - inter.size();
  return uni == 0 ? 1.0
                  : static_cast<double>(inter.size()) /
                        static_cast<double>(uni);
}

double AverageUpperDegree(const BipartiteGraph& g, const Subgraph& sub) {
  if (sub.Empty()) return 0.0;
  const SubgraphStats stats = ComputeStats(g, sub);
  return stats.num_upper == 0 ? 0.0
                              : static_cast<double>(sub.Size()) /
                                    static_cast<double>(stats.num_upper);
}

}  // namespace abcs
