#ifndef ABCS_MODELS_BUTTERFLY_H_
#define ABCS_MODELS_BUTTERFLY_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief Per-edge butterfly (2×2-biclique) counts.
///
/// `result[e]` is the number of butterflies containing edge `e`, computed
/// by wedge aggregation: bf(u,v) = Σ_{u'∈N(v)\{u}} (|N(u)∩N(u')| − 1).
/// O(Σ_v deg(v)²) over the sparser layer — fine at the effectiveness-study
/// scale where the bitruss baseline is used.
std::vector<uint64_t> CountButterfliesPerEdge(const BipartiteGraph& g);

/// Total number of butterflies in `g` (= Σ_e bf(e) / 4, each butterfly has
/// four edges).
uint64_t CountButterflies(const BipartiteGraph& g);

}  // namespace abcs

#endif  // ABCS_MODELS_BUTTERFLY_H_
