#include "models/biclique.h"

#include <algorithm>
#include <vector>

namespace abcs {

namespace {

/// True iff `needle` appears in v's (sorted) adjacency.
bool HasNeighbor(const BipartiteGraph& g, VertexId v, VertexId needle) {
  auto nbrs = g.Neighbors(v);
  auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), needle,
      [](const Arc& a, VertexId x) { return a.to < x; });
  return it != nbrs.end() && it->to == needle;
}

/// True iff `v` is adjacent to every vertex in `set` (set.size() probes of
/// v's sorted adjacency).
bool AdjacentToAll(const BipartiteGraph& g, VertexId v,
                   const std::vector<VertexId>& set) {
  for (VertexId x : set) {
    if (!HasNeighbor(g, v, x)) return false;
  }
  return true;
}

}  // namespace

namespace {

/// One prefix sweep over `order`: for every prefix S_t computes the common
/// neighbourhood (vertices adjacent to all of S_t), keeping the prefix
/// that maximises min(t, |common|). Returns that score and fills
/// `side_a`/`side_b`.
uint32_t SweepPrefixes(const BipartiteGraph& g,
                       const std::vector<VertexId>& order,
                       std::vector<VertexId>* side_a,
                       std::vector<VertexId>* side_b) {
  std::vector<VertexId> common;
  for (const Arc& a : g.Neighbors(order[0])) common.push_back(a.to);
  std::sort(common.begin(), common.end());

  uint32_t best_t = 1;
  uint32_t best_min = std::min<uint32_t>(1, common.size());
  std::vector<VertexId> best_common = common;
  std::vector<VertexId> scratch;
  for (uint32_t t = 2; t <= order.size() && common.size() > 1; ++t) {
    // Intersect `common` with N(order[t-1]) (both sorted).
    scratch.clear();
    auto nbrs = g.Neighbors(order[t - 1]);
    std::size_t i = 0, j = 0;
    while (i < common.size() && j < nbrs.size()) {
      if (common[i] < nbrs[j].to) {
        ++i;
      } else if (common[i] > nbrs[j].to) {
        ++j;
      } else {
        scratch.push_back(common[i]);
        ++i;
        ++j;
      }
    }
    common.swap(scratch);
    const uint32_t score = std::min<uint32_t>(t, common.size());
    if (score > best_min) {
      best_min = score;
      best_t = t;
      best_common = common;
    }
  }
  *side_a = best_common;
  side_b->assign(order.begin(), order.begin() + best_t);
  std::sort(side_b->begin(), side_b->end());
  return best_min;
}

}  // namespace

Subgraph QueryBicliqueCommunity(const BipartiteGraph& g, VertexId q,
                                uint32_t min_side) {
  Subgraph result;
  if (q >= g.NumVertices() || g.Degree(q) == 0) return result;

  // Round 0: B ⊆ N(q) ordered by degree (high-degree first — most likely
  // to have large common neighbourhoods).
  std::vector<VertexId> nq;
  for (const Arc& a : g.Neighbors(q)) nq.push_back(a.to);
  std::sort(nq.begin(), nq.end(), [&](VertexId a, VertexId b) {
    if (g.Degree(a) != g.Degree(b)) return g.Degree(a) > g.Degree(b);
    return a < b;
  });

  std::vector<VertexId> side_a, side_b;
  uint32_t best = SweepPrefixes(g, nq, &side_a, &side_b);

  // Second start: seed with q's strongest co-neighbours (same-layer
  // vertices sharing the most neighbours with q — the natural "block
  // around q"), rank N(q) by adjacency into that seed and sweep. This
  // recovers planted blocks that degree ordering interleaves with hubs.
  {
    std::vector<uint32_t> shared(g.NumVertices(), 0);
    for (const Arc& a : g.Neighbors(q)) {
      for (const Arc& b : g.Neighbors(a.to)) ++shared[b.to];
    }
    std::vector<std::pair<uint32_t, VertexId>> peers;
    for (VertexId x = 0; x < g.NumVertices(); ++x) {
      if (x != q && shared[x] > 0 && g.IsUpper(x) == g.IsUpper(q)) {
        peers.emplace_back(shared[x], x);
      }
    }
    std::sort(peers.begin(), peers.end(), std::greater<>());
    std::vector<VertexId> seed{q};
    for (std::size_t i = 0; i < peers.size() && seed.size() < 64; ++i) {
      seed.push_back(peers[i].second);
    }
    std::sort(seed.begin(), seed.end());
    std::vector<std::pair<uint32_t, VertexId>> ranked;
    for (VertexId y : nq) {
      uint32_t hits = 0;
      for (VertexId x : seed) hits += HasNeighbor(g, y, x);
      ranked.emplace_back(hits, y);
    }
    std::sort(ranked.begin(), ranked.end(), std::greater<>());
    std::vector<VertexId> order;
    for (const auto& [hits, y] : ranked) order.push_back(y);
    std::vector<VertexId> cand_a, cand_b;
    const uint32_t score = SweepPrefixes(g, order, &cand_a, &cand_b);
    if (score > best) {
      best = score;
      side_a.swap(cand_a);
      side_b.swap(cand_b);
    }
  }

  // Local improvement: re-rank q's neighbours by adjacency to the current
  // A side and re-sweep — this pulls the members of a dense block to the
  // front even when global degrees interleave them with outsiders.
  for (int round = 0; round < 4; ++round) {
    std::vector<std::pair<uint32_t, VertexId>> ranked;
    ranked.reserve(nq.size());
    for (VertexId y : nq) {
      uint32_t hits = 0;
      for (VertexId x : side_a) hits += HasNeighbor(g, y, x);
      ranked.emplace_back(hits, y);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    std::vector<VertexId> order;
    order.reserve(nq.size());
    for (const auto& [hits, y] : ranked) order.push_back(y);
    std::vector<VertexId> cand_a, cand_b;
    const uint32_t score = SweepPrefixes(g, order, &cand_a, &cand_b);
    if (score <= best) break;
    best = score;
    side_a.swap(cand_a);
    side_b.swap(cand_b);
  }

  // Extend both sides to maximality (no single vertex can be added).
  bool grew = true;
  while (grew) {
    grew = false;
    // Candidates for B must be adjacent to q, i.e. in N(q).
    for (VertexId y : nq) {
      if (std::binary_search(side_b.begin(), side_b.end(), y)) continue;
      if (AdjacentToAll(g, y, side_a)) {
        side_b.insert(
            std::lower_bound(side_b.begin(), side_b.end(), y), y);
        grew = true;
      }
    }
    // Candidates for A must be adjacent to some b; scan the smallest b.
    VertexId pivot = side_b[0];
    for (VertexId b : side_b) {
      if (g.Degree(b) < g.Degree(pivot)) pivot = b;
    }
    for (const Arc& a : g.Neighbors(pivot)) {
      VertexId x = a.to;
      if (std::binary_search(side_a.begin(), side_a.end(), x)) continue;
      if (AdjacentToAll(g, x, side_b)) {
        side_a.insert(
            std::lower_bound(side_a.begin(), side_a.end(), x), x);
        grew = true;
      }
    }
  }

  if (side_a.size() < min_side || side_b.size() < min_side) return result;

  // Collect the biclique's edges.
  std::vector<uint8_t> in_b(g.NumVertices(), 0);
  for (VertexId b : side_b) in_b[b] = 1;
  for (VertexId a : side_a) {
    for (const Arc& arc : g.Neighbors(a)) {
      if (in_b[arc.to]) result.edges.push_back(arc.eid);
    }
  }
  return result;
}

}  // namespace abcs
