#ifndef ABCS_MODELS_CSTAR_H_
#define ABCS_MODELS_CSTAR_H_

#include "core/subgraph.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief The paper's `C4*` baseline: the connected component of `q` in the
/// subgraph induced by all lower vertices (movies) whose *average* incident
/// edge weight is at least `threshold` (4.0 stars in the paper).
///
/// No structure cohesiveness is enforced — one high-rated common movie
/// suffices to connect two users — which is exactly the weakness the
/// effectiveness study (Fig. 6, Table II) demonstrates.
Subgraph QueryCStarCommunity(const BipartiteGraph& g, VertexId q,
                             Weight threshold);

}  // namespace abcs

#endif  // ABCS_MODELS_CSTAR_H_
