#ifndef ABCS_IO_INDEX_BUNDLE_H_
#define ABCS_IO_INDEX_BUNDLE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "abcore/offsets.h"
#include "common/status.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "graph/bipartite_graph.h"
#include "io/codec.h"
#include "io/mapped_file.h"

namespace abcs {

/// \brief One versioned container file (`ABCSPAK2`; v1 `ABCSPAK1` files
/// stay readable) holding everything a serving process needs: graph CSR +
/// weights, the δ-bounded offset decomposition, and both index layers
/// (I_δ and I_v).
///
/// Layout (little-endian, all sections 8-byte aligned; full spec in
/// docs/bundle_format.md):
///
///     "ABCSPAK2" | BundleHeader | TOC (named section records) | payloads
///
/// The header carries the graph shape, δ, a topology checksum AND a weight
/// digest (so a bundle whose significances went stale cannot silently
/// serve wrong SCS answers), plus a meta checksum over header+TOC. Every
/// v2 section record carries a byte range, a codec tag (`SectionCodec`),
/// both the stored (encoded) and decoded byte counts, and a content
/// checksum over the *stored* bytes — corruption is caught before any
/// decode runs.
///
/// `OpenIndexBundle` wires the in-memory structures as *borrowed*
/// `ArenaStorage` spans. Raw sections point straight into the backing
/// bytes — the mmap'd region (`kMmap`, zero per-array copies, pages fault
/// in lazily) or one owned buffer read eagerly (`kRead`). Encoded sections
/// are decoded once into a single pooled, 8-aligned scratch arena owned by
/// the bundle (one allocation for all sections, no per-section mallocs).
/// Queries served from an opened bundle are bit-identical to queries from
/// a fresh in-memory build, compressed or not.
enum class BundleOpenMode {
  kMmap,  ///< map the file; spans view the mapping (zero-copy, lazy pages)
  kRead,  ///< read the file into one owned buffer; spans view the buffer
};

struct BundleOpenOptions {
  BundleOpenMode mode = BundleOpenMode::kMmap;
  /// Verify every section checksum and the deep structural bounds on open.
  /// Defaults on: a corrupted bundle then fails with a clean Status before
  /// any query can follow a bad offset. Turning it off skips the O(file)
  /// content scan (trusted local restarts chasing the last bit of startup
  /// latency); the header, TOC and array-shape checks still run.
  bool verify_checksums = true;
};

/// Per-section shape of an opened bundle, for `abcs inspect` and tests:
/// which codec the writer picked and what it bought.
struct BundleSectionInfo {
  std::string name;
  SectionCodec codec = SectionCodec::kRaw;
  uint64_t stored_bytes = 0;   ///< encoded bytes on disk (excl. padding)
  uint64_t decoded_bytes = 0;  ///< bytes after decode (== stored for raw)
};

/// An opened bundle: owns the backing bytes (mapping or buffer), the
/// pooled decode arena for encoded sections, and the
/// graph/decomposition/index structures viewing them. Immovable — the
/// indexes hold pointers to the member graph — so it lives on the heap
/// behind a unique_ptr (see OpenIndexBundle).
class IndexBundle {
 public:
  IndexBundle(const IndexBundle&) = delete;
  IndexBundle& operator=(const IndexBundle&) = delete;
  IndexBundle(IndexBundle&&) = delete;
  IndexBundle& operator=(IndexBundle&&) = delete;

  const BipartiteGraph& graph() const { return graph_; }
  const BicoreDecomposition& decomposition() const { return decomp_; }
  const DeltaIndex& delta_index() const { return delta_index_; }
  const BicoreIndex& bicore_index() const { return bicore_index_; }
  uint32_t delta() const { return decomp_.delta; }

  BundleOpenMode mode() const { return mode_; }
  /// Total bytes of the backing file.
  std::size_t FileBytes() const { return backing_size_; }
  /// On-disk format version: 1 for legacy `ABCSPAK1`, 2 for `ABCSPAK2`.
  uint32_t FormatVersion() const { return format_version_; }
  /// Every section in TOC order: name, codec tag, stored/decoded bytes.
  const std::vector<BundleSectionInfo>& Sections() const { return sections_; }
  /// Bytes of the pooled decode arena (0 for an all-raw bundle).
  std::size_t DecodePoolBytes() const {
    return pool_.size() * sizeof(uint64_t);
  }
  /// True iff every persistent array of every layer is a borrowed span
  /// into the backing bytes (no per-array copies were made on open).
  /// Encoded sections decode into the owned pool, so a compressed bundle
  /// reports false by design; raw bundles stay fully zero-copy.
  bool ZeroCopy() const;

 private:
  friend struct BundleAccess;
  friend Status OpenIndexBundle(const std::string& path,
                                std::unique_ptr<IndexBundle>* out,
                                const BundleOpenOptions& options);
  IndexBundle() = default;

  BundleOpenMode mode_ = BundleOpenMode::kMmap;
  MappedFile map_;                  ///< backing for kMmap
  std::vector<std::byte> buffer_;   ///< backing for kRead
  const std::byte* backing_ = nullptr;
  std::size_t backing_size_ = 0;
  uint32_t format_version_ = 0;
  uint64_t topology_checksum_ = 0;  ///< from the header, for match checks
  uint64_t weight_digest_ = 0;      ///< from the header, for match checks
  /// One pooled decode arena for every encoded section (u64-backed so
  /// every AlignUp(8) slice is 8-aligned); sized once from the TOC's
  /// decoded lengths, then sliced per section — no per-section mallocs.
  std::vector<uint64_t> pool_;
  std::vector<BundleSectionInfo> sections_;

  BipartiteGraph graph_;
  BicoreDecomposition decomp_;
  DeltaIndex delta_index_;
  BicoreIndex bicore_index_;
};

/// Section compression policy for `SaveIndexBundle`. Whatever the level,
/// the writer measures each candidate codec's actual encoded size and
/// keeps a section raw unless the win is real (≥ ~12% smaller), so a
/// compressed save can never produce a larger bundle than a raw one.
enum class BundleCompression {
  kNone,  ///< every section raw: fully zero-copy mmap serving (default)
  kFast,  ///< bit-pack only: one pass per section, cheapest decode
  kMax,   ///< try bit-pack AND delta-varint per section, keep the smaller
};

const char* BundleCompressionName(BundleCompression level);

struct SaveBundleOptions {
  /// Before renaming the fresh bundle into place, hard-link the current
  /// one to `<path>.prev` so recovery retains a complete verified
  /// fallback epoch even if the main file is later damaged in place
  /// (see OpenBundleWithFallback). The save itself is always atomic —
  /// write temp, fsync, rename, fsync dir — with or without rotation.
  bool keep_previous = false;
  /// Per-section codec policy (see BundleCompression). The default keeps
  /// every section raw so existing zero-copy serving paths are unchanged.
  BundleCompression compression = BundleCompression::kNone;
};

/// Writes the self-contained bundle. `decomp`, `delta` and `bicore` must
/// all have been built from `g` (the saver embeds `g`'s topology checksum
/// and weight digest; `OpenIndexBundle` re-verifies them). Crash-safe: a
/// process killed at any instant leaves `path` either untouched or fully
/// replaced, never torn (tests/crash_recovery_test.cc sweeps every
/// injection point in this path).
Status SaveIndexBundle(const BipartiteGraph& g,
                       const BicoreDecomposition& decomp,
                       const DeltaIndex& delta, const BicoreIndex& bicore,
                       const std::string& path,
                       const SaveBundleOptions& options = {});

/// The named crash points inside the bundle save path, in program order —
/// the sweep axis of the crash-matrix recovery test.
const std::vector<const char*>& BundleSaveFaultPoints();

/// Opens a bundle written by SaveIndexBundle. On success `*out` serves
/// queries immediately: graph, decomposition and both indexes are wired
/// and self-consistent. Corrupted or truncated files fail with
/// `Corruption`, unreadable files with `IOError`.
Status OpenIndexBundle(const std::string& path,
                       std::unique_ptr<IndexBundle>* out,
                       const BundleOpenOptions& options = {});

/// Opens `path`, and when that bundle is corrupt or unreadable falls back
/// to the rotated `<path>.prev` epoch written by compaction with
/// `keep_previous` (the newest verifiable epoch on disk). On fallback
/// success returns OK and, when `diagnostic` is non-null, stores a
/// human-readable account of what was wrong with the primary. Fails only
/// when no verifiable epoch exists.
Status OpenBundleWithFallback(const std::string& path,
                              std::unique_ptr<IndexBundle>* out,
                              const BundleOpenOptions& options = {},
                              std::string* diagnostic = nullptr);

/// Checks that `bundle` was built from exactly `g`: shape, topology
/// checksum and weight digest must all match. Detects both a stale
/// topology and the silent killer the plain topology checksum misses —
/// same edges, re-weighted significances.
Status VerifyBundleMatchesGraph(const IndexBundle& bundle,
                                const BipartiteGraph& g);

/// True iff `path` starts with an ABCSPAK magic (v1 or v2) — the format
/// sniff the CLI's `--index` auto-detection uses to dispatch between the
/// bundle opener and the legacy ABCSIDX loader. Kept next to the format so
/// the magic lives in exactly one translation unit.
bool LooksLikeIndexBundle(const std::string& path);

/// The checksum used for bundle sections and the header/TOC meta record:
/// FNV-1a over the bytes chunked into little-endian 64-bit words (tail
/// word zero-padded). Word-wise so verifying a multi-hundred-MB bundle
/// costs a fraction of the build it replaces. Exposed for tests that
/// craft corrupt-but-self-consistent files.
uint64_t BundleChecksum(const void* data, std::size_t size);

}  // namespace abcs

#endif  // ABCS_IO_INDEX_BUNDLE_H_
