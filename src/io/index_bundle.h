#ifndef ABCS_IO_INDEX_BUNDLE_H_
#define ABCS_IO_INDEX_BUNDLE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "abcore/offsets.h"
#include "common/status.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "graph/bipartite_graph.h"
#include "io/mapped_file.h"

namespace abcs {

/// \brief One versioned container file (`ABCSPAK1`) holding everything a
/// serving process needs: graph CSR + weights, the δ-bounded offset
/// decomposition, and both index layers (I_δ and I_v).
///
/// Layout (little-endian, all sections 8-byte aligned; full spec in
/// docs/bundle_format.md):
///
///     "ABCSPAK1" | BundleHeader | TOC (named section records) | payloads
///
/// The header carries the graph shape, δ, a topology checksum AND a weight
/// digest (so a bundle whose significances went stale cannot silently
/// serve wrong SCS answers), plus a meta checksum over header+TOC; every
/// section record carries a byte range and a content checksum.
///
/// `OpenIndexBundle` wires the in-memory structures as *borrowed*
/// `ArenaStorage` spans pointing straight into the backing bytes — the
/// mmap'd region (`kMmap`, zero per-array copies, pages fault in lazily)
/// or one owned buffer read eagerly (`kRead`). Queries served from an
/// opened bundle are bit-identical to queries from a fresh in-memory
/// build.
enum class BundleOpenMode {
  kMmap,  ///< map the file; spans view the mapping (zero-copy, lazy pages)
  kRead,  ///< read the file into one owned buffer; spans view the buffer
};

struct BundleOpenOptions {
  BundleOpenMode mode = BundleOpenMode::kMmap;
  /// Verify every section checksum and the deep structural bounds on open.
  /// Defaults on: a corrupted bundle then fails with a clean Status before
  /// any query can follow a bad offset. Turning it off skips the O(file)
  /// content scan (trusted local restarts chasing the last bit of startup
  /// latency); the header, TOC and array-shape checks still run.
  bool verify_checksums = true;
};

/// An opened bundle: owns the backing bytes (mapping or buffer) and the
/// graph/decomposition/index structures viewing them. Immovable — the
/// indexes hold pointers to the member graph — so it lives on the heap
/// behind a unique_ptr (see OpenIndexBundle).
class IndexBundle {
 public:
  IndexBundle(const IndexBundle&) = delete;
  IndexBundle& operator=(const IndexBundle&) = delete;
  IndexBundle(IndexBundle&&) = delete;
  IndexBundle& operator=(IndexBundle&&) = delete;

  const BipartiteGraph& graph() const { return graph_; }
  const BicoreDecomposition& decomposition() const { return decomp_; }
  const DeltaIndex& delta_index() const { return delta_index_; }
  const BicoreIndex& bicore_index() const { return bicore_index_; }
  uint32_t delta() const { return decomp_.delta; }

  BundleOpenMode mode() const { return mode_; }
  /// Total bytes of the backing file.
  std::size_t FileBytes() const { return backing_size_; }
  /// True iff every persistent array of every layer is a borrowed span
  /// into the backing bytes (no per-array copies were made on open).
  bool ZeroCopy() const;

 private:
  friend struct BundleAccess;
  friend Status OpenIndexBundle(const std::string& path,
                                std::unique_ptr<IndexBundle>* out,
                                const BundleOpenOptions& options);
  IndexBundle() = default;

  BundleOpenMode mode_ = BundleOpenMode::kMmap;
  MappedFile map_;                  ///< backing for kMmap
  std::vector<std::byte> buffer_;   ///< backing for kRead
  const std::byte* backing_ = nullptr;
  std::size_t backing_size_ = 0;
  uint64_t topology_checksum_ = 0;  ///< from the header, for match checks
  uint64_t weight_digest_ = 0;      ///< from the header, for match checks

  BipartiteGraph graph_;
  BicoreDecomposition decomp_;
  DeltaIndex delta_index_;
  BicoreIndex bicore_index_;
};

struct SaveBundleOptions {
  /// Before renaming the fresh bundle into place, hard-link the current
  /// one to `<path>.prev` so recovery retains a complete verified
  /// fallback epoch even if the main file is later damaged in place
  /// (see OpenBundleWithFallback). The save itself is always atomic —
  /// write temp, fsync, rename, fsync dir — with or without rotation.
  bool keep_previous = false;
};

/// Writes the self-contained bundle. `decomp`, `delta` and `bicore` must
/// all have been built from `g` (the saver embeds `g`'s topology checksum
/// and weight digest; `OpenIndexBundle` re-verifies them). Crash-safe: a
/// process killed at any instant leaves `path` either untouched or fully
/// replaced, never torn (tests/crash_recovery_test.cc sweeps every
/// injection point in this path).
Status SaveIndexBundle(const BipartiteGraph& g,
                       const BicoreDecomposition& decomp,
                       const DeltaIndex& delta, const BicoreIndex& bicore,
                       const std::string& path,
                       const SaveBundleOptions& options = {});

/// The named crash points inside the bundle save path, in program order —
/// the sweep axis of the crash-matrix recovery test.
const std::vector<const char*>& BundleSaveFaultPoints();

/// Opens a bundle written by SaveIndexBundle. On success `*out` serves
/// queries immediately: graph, decomposition and both indexes are wired
/// and self-consistent. Corrupted or truncated files fail with
/// `Corruption`, unreadable files with `IOError`.
Status OpenIndexBundle(const std::string& path,
                       std::unique_ptr<IndexBundle>* out,
                       const BundleOpenOptions& options = {});

/// Opens `path`, and when that bundle is corrupt or unreadable falls back
/// to the rotated `<path>.prev` epoch written by compaction with
/// `keep_previous` (the newest verifiable epoch on disk). On fallback
/// success returns OK and, when `diagnostic` is non-null, stores a
/// human-readable account of what was wrong with the primary. Fails only
/// when no verifiable epoch exists.
Status OpenBundleWithFallback(const std::string& path,
                              std::unique_ptr<IndexBundle>* out,
                              const BundleOpenOptions& options = {},
                              std::string* diagnostic = nullptr);

/// Checks that `bundle` was built from exactly `g`: shape, topology
/// checksum and weight digest must all match. Detects both a stale
/// topology and the silent killer the plain topology checksum misses —
/// same edges, re-weighted significances.
Status VerifyBundleMatchesGraph(const IndexBundle& bundle,
                                const BipartiteGraph& g);

/// True iff `path` starts with the ABCSPAK1 magic — the format sniff the
/// CLI's `--index` auto-detection uses to dispatch between the bundle
/// opener and the legacy ABCSIDX loader. Kept next to the format so the
/// magic lives in exactly one translation unit.
bool LooksLikeIndexBundle(const std::string& path);

/// The checksum used for bundle sections and the header/TOC meta record:
/// FNV-1a over the bytes chunked into little-endian 64-bit words (tail
/// word zero-padded). Word-wise so verifying a multi-hundred-MB bundle
/// costs a fraction of the build it replaces. Exposed for tests that
/// craft corrupt-but-self-consistent files.
uint64_t BundleChecksum(const void* data, std::size_t size);

}  // namespace abcs

#endif  // ABCS_IO_INDEX_BUNDLE_H_
