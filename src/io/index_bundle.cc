#include "io/index_bundle.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <type_traits>

#include "common/fnv.h"
#include "core/index_io.h"
#include "io/fault_inject.h"

namespace abcs {

namespace {

// "ABCSPAK2": the versioned multi-section container, successor of the
// single-structure "ABCSIDX" dumps. v2 added per-section codec tags and
// encoded/decoded lengths to the TOC; v1 files (all-raw 40-byte records)
// remain readable on the same verified-mmap fast path. The trailing magic
// character tracks the header's version field — readers check both agree.
constexpr char kMagicV1[8] = {'A', 'B', 'C', 'S', 'P', 'A', 'K', '1'};
constexpr char kMagicV2[8] = {'A', 'B', 'C', 'S', 'P', 'A', 'K', '2'};
constexpr uint32_t kFormatVersionV1 = 1;
constexpr uint32_t kFormatVersionV2 = 2;
constexpr uint64_t kAlign = 8;     ///< section payload alignment
constexpr uint32_t kMaxSections = 64;
constexpr uint64_t kAnyCount = ~0ull;
constexpr std::size_t kMagicBytes = sizeof(kMagicV2);

static_assert(std::endian::native == std::endian::little,
              "ABCSPAK1 bundles are little-endian; big-endian hosts would "
              "need byte-swapping shims");

/// Fixed-size header right after the magic. POD, written verbatim.
struct BundleHeader {
  uint32_t version = 0;
  uint32_t section_count = 0;
  uint32_t num_upper = 0;
  uint32_t num_lower = 0;
  uint32_t num_edges = 0;
  uint32_t delta = 0;
  uint64_t topology_checksum = 0;  ///< GraphTopologyChecksum of the graph
  uint64_t weight_digest = 0;      ///< GraphWeightChecksum of the graph
  uint64_t meta_checksum = 0;      ///< BundleChecksum(header w/ this 0 ‖ TOC)
};
static_assert(sizeof(BundleHeader) == 48);
static_assert(std::is_trivially_copyable_v<BundleHeader>);

/// One v1 TOC entry: a named byte range plus a content checksum. All v1
/// sections are raw.
struct SectionRecordV1 {
  char name[16] = {};
  uint64_t offset = 0;    ///< absolute file offset, kAlign-aligned
  uint64_t length = 0;    ///< payload bytes (excludes padding)
  uint64_t checksum = 0;  ///< BundleChecksum of the payload
};
static_assert(sizeof(SectionRecordV1) == 40);
static_assert(std::is_trivially_copyable_v<SectionRecordV1>);

/// One v2 TOC entry: the byte range now carries the *stored* (possibly
/// encoded) length, the codec tag, and the decoded length — the checksum
/// covers the stored bytes, so corruption is caught before decode.
struct SectionRecordV2 {
  char name[16] = {};
  uint64_t offset = 0;          ///< absolute file offset, kAlign-aligned
  uint64_t stored_length = 0;   ///< bytes on disk (excludes padding)
  uint64_t decoded_length = 0;  ///< bytes after decode (== stored for raw)
  uint64_t checksum = 0;        ///< BundleChecksum of the stored bytes
  uint32_t codec = 0;           ///< SectionCodec tag
  uint32_t reserved = 0;        ///< must be 0
};
static_assert(sizeof(SectionRecordV2) == 56);
static_assert(std::is_trivially_copyable_v<SectionRecordV2>);

/// A TOC record normalised across format versions, plus the pooled decode
/// destination assigned to encoded sections.
struct SectionMeta {
  char name[16] = {};
  uint64_t offset = 0;
  uint64_t stored_length = 0;
  uint64_t decoded_length = 0;
  uint64_t checksum = 0;
  SectionCodec codec = SectionCodec::kRaw;
  std::byte* decode_dst = nullptr;  ///< pool slice; null for raw sections
};

/// `name` fields are NUL-padded but a crafted file can fill all 16 bytes;
/// never assume termination when building a diagnostic.
std::string SectionName(const char (&name)[16]) {
  return std::string(name, strnlen(name, sizeof(name)));
}

constexpr uint64_t AlignUp(uint64_t x) {
  return (x + kAlign - 1) & ~(kAlign - 1);
}

/// Shared context of the per-section mapping steps on open.
struct OpenCtx {
  const std::byte* base = nullptr;
  uint64_t file_size = 0;
  std::vector<SectionMeta> toc;
  const std::string* path = nullptr;
  bool verify = true;

  Status Corrupt(const std::string& what) const {
    return Status::Corruption(*path + ": " + what);
  }
};

/// Locates section `name` and wires `*out` as a borrowed span over its
/// payload: raw sections view the backing bytes in place; encoded sections
/// decode once into their pre-assigned pool slice and the span views that.
/// `expect_count` pins the element count (kAnyCount skips; the caller then
/// validates against sibling sections). Byte ranges were bounds-checked
/// against the file when the TOC was parsed, so neither the checksum scan
/// nor the decoder can read past the backing region.
template <typename T>
Status MapSection(const OpenCtx& ctx, const char* name, uint64_t expect_count,
                  ArenaStorage<T>* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(alignof(T) <= kAlign);
  const SectionMeta* rec = nullptr;
  for (const SectionMeta& r : ctx.toc) {
    if (std::strncmp(r.name, name, sizeof(r.name)) == 0) {
      rec = &r;
      break;
    }
  }
  if (rec == nullptr) {
    return ctx.Corrupt(std::string("missing section ") + name);
  }
  if (rec->decoded_length % sizeof(T) != 0) {
    return ctx.Corrupt(std::string("section ") + name +
                       " is not a whole number of elements");
  }
  const uint64_t count = rec->decoded_length / sizeof(T);
  if (expect_count != kAnyCount && count != expect_count) {
    return ctx.Corrupt(std::string("section ") + name +
                       " has the wrong element count");
  }
  // The content checksum always covers the stored bytes: for an encoded
  // section a flipped disk byte is rejected here, before the decoder ever
  // sees the stream.
  if (ctx.verify && BundleChecksum(ctx.base + rec->offset,
                                   rec->stored_length) != rec->checksum) {
    return ctx.Corrupt(std::string("checksum mismatch in section ") + name);
  }
  if (rec->codec == SectionCodec::kRaw) {
    *out = ArenaStorage<T>::Borrowed(
        reinterpret_cast<const T*>(ctx.base + rec->offset), count);
    return Status::OK();
  }
  if constexpr (sizeof(T) % 4 != 0) {
    return ctx.Corrupt(std::string("section ") + name +
                       " cannot carry a codec (element size not a multiple "
                       "of 4)");
  } else {
    const Status st = DecodeU32Section(
        rec->codec, ctx.base + rec->offset, rec->stored_length,
        sizeof(T) / 4, rec->decode_dst, rec->decoded_length);
    if (!st.ok()) {
      return ctx.Corrupt(std::string("section ") + name + " (" +
                         SectionCodecName(rec->codec) +
                         "): " + std::string(st.message()));
    }
    *out = ArenaStorage<T>::Borrowed(
        reinterpret_cast<const T*>(rec->decode_dst), count);
    return Status::OK();
  }
}

/// `start`-style arrays must begin at 0 and be non-decreasing for the
/// slice arithmetic (and the spans derived from it) to stay in bounds.
Status CheckStartArray(const OpenCtx& ctx, const char* name,
                       const ArenaStorage<uint32_t>& start) {
  if (start.empty() || start[0] != 0) {
    return ctx.Corrupt(std::string(name) + " does not start at 0");
  }
  for (std::size_t i = 1; i < start.size(); ++i) {
    if (start[i] < start[i - 1]) {
      return ctx.Corrupt(std::string(name) + " is not non-decreasing");
    }
  }
  return Status::OK();
}

}  // namespace

uint64_t BundleChecksum(const void* data, std::size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  Fnv1a64 fnv;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    fnv.Mix(w);
  }
  if (i < size) {
    uint64_t w = 0;
    std::memcpy(&w, p + i, size - i);
    fnv.Mix(w);
  }
  fnv.Mix(size);  // zero-padded tail ≠ genuinely longer zero run
  return fnv.h;
}

bool LooksLikeIndexBundle(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[kMagicBytes] = {};
  in.read(magic, sizeof(magic));
  return in && (std::memcmp(magic, kMagicV2, kMagicBytes) == 0 ||
                std::memcmp(magic, kMagicV1, kMagicBytes) == 0);
}

const char* BundleCompressionName(BundleCompression level) {
  switch (level) {
    case BundleCompression::kNone:
      return "none";
    case BundleCompression::kFast:
      return "fast";
    case BundleCompression::kMax:
      return "max";
  }
  return "compression-?";
}

/// Private-member bridge: the one type befriended by BipartiteGraph,
/// DeltaIndex and BicoreIndex, so (de)serialisation code can reach their
/// arenas without widening any public API.
struct BundleAccess {
  static Status Save(const BipartiteGraph& g, const BicoreDecomposition& d,
                     const DeltaIndex& di, const BicoreIndex& bi,
                     const std::string& path, const SaveBundleOptions& opts);
  static Status Open(const std::string& path, const BundleOpenOptions& opts,
                     IndexBundle* b);
  static bool ZeroCopy(const IndexBundle& b);

  /// The one enumeration of every persisted array, visited as
  /// (section name, ArenaStorage). Save and ZeroCopy both consume it, so
  /// a future section cannot be serialised yet silently dropped from the
  /// zero-copy assertion (Open's per-section validation stays bespoke —
  /// each section's count derives from its siblings).
  template <typename Fn>
  static void ForEachSection(const BipartiteGraph& g,
                             const BicoreDecomposition& d,
                             const DeltaIndex& di, const BicoreIndex& bi,
                             Fn&& fn) {
    fn("g.offsets", g.offsets_);
    fn("g.arcs", g.arcs_);
    fn("g.edges", g.edges_);
    fn("dc.a.start", d.alpha.start);
    fn("dc.a.values", d.alpha.values);
    fn("dc.b.start", d.beta.start);
    fn("dc.b.values", d.beta.values);
    fn("id.a.tbase", di.alpha_half_.table_base);
    fn("id.a.lstart", di.alpha_half_.level_start);
    fn("id.a.selfoff", di.alpha_half_.self_offset);
    fn("id.a.entries", di.alpha_half_.entries);
    fn("id.b.tbase", di.beta_half_.table_base);
    fn("id.b.lstart", di.beta_half_.level_start);
    fn("id.b.selfoff", di.beta_half_.self_offset);
    fn("id.b.entries", di.beta_half_.entries);
    fn("iv.a.start", bi.alpha_side_.start);
    fn("iv.a.entries", bi.alpha_side_.entries);
    fn("iv.b.start", bi.beta_side_.start);
    fn("iv.b.entries", bi.beta_side_.entries);
  }

  // Header digests retained on the bundle for VerifyBundleMatchesGraph.
  static uint64_t Topology(const IndexBundle& b) {
    return b.topology_checksum_;
  }
  static uint64_t Weights(const IndexBundle& b) { return b.weight_digest_; }
};

namespace {

/// Loops ::write until `bytes` are on the fd. `point` labels the write for
/// the short-write fault seam: an armed fault truncates the write to its
/// byte budget and kills the process, modelling a torn write + crash.
Status WriteFully(int fd, const void* data, uint64_t bytes,
                  const char* point) {
  const uint64_t budget = FaultWriteBudget(point, bytes);
  const char* p = static_cast<const char*>(data);
  uint64_t done = 0;
  while (done < budget) {
    const ssize_t n = ::write(fd, p + done, budget - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write failed: ") +
                             std::strerror(errno));
    }
    done += static_cast<uint64_t>(n);
  }
  if (budget < bytes) FaultInjector::Instance().CrashNow();
  return Status::OK();
}

/// fsyncs the directory containing `path` so a following crash cannot
/// lose the rename itself. Best-effort on filesystems without dirsync.
void SyncParentDir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).has_parent_path()
          ? std::filesystem::path(path).parent_path()
          : std::filesystem::path(".");
  const int dfd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

Status BundleAccess::Save(const BipartiteGraph& g,
                          const BicoreDecomposition& d, const DeltaIndex& di,
                          const BicoreIndex& bi, const std::string& path,
                          const SaveBundleOptions& opts) {
  if (di.delta() != d.delta || bi.delta() != d.delta ||
      d.NumVertices() != g.NumVertices()) {
    return Status::InvalidArgument(
        "bundle parts disagree (index/decomposition not built from this "
        "graph?)");
  }

  struct Sec {
    const char* name;
    const void* data;
    uint64_t bytes;      ///< decoded (in-memory) size
    uint32_t lanes;      ///< u32 columns per element; 0 → never encode
    SectionCodec codec = SectionCodec::kRaw;
    std::vector<std::byte> encoded;  ///< stored bytes when codec != kRaw
  };
  std::vector<Sec> secs;
  ForEachSection(g, d, di, bi, [&secs](const char* name, const auto& arr) {
    using T = typename std::decay_t<decltype(arr)>::value_type;
    constexpr uint32_t lanes = sizeof(T) % 4 == 0 ? sizeof(T) / 4 : 0;
    secs.push_back(Sec{name, arr.data(), arr.SizeBytes(), lanes});
  });

  // Compression policy: for each candidate codec of the requested level,
  // measure the actual encoded size and keep the smallest — but only when
  // the win is real (≥ raw/8 saved). Tiny sections and losing codecs stay
  // raw, so a compressed save can never produce a larger bundle.
  if (opts.compression != BundleCompression::kNone) {
    std::vector<SectionCodec> candidates = {SectionCodec::kBitPack};
    if (opts.compression == BundleCompression::kMax) {
      candidates.push_back(SectionCodec::kDeltaVarint);
    }
    for (Sec& sec : secs) {
      if (sec.lanes == 0 || sec.bytes < 64) continue;
      std::vector<std::byte> trial;
      for (const SectionCodec codec : candidates) {
        const Status st =
            EncodeU32Section(codec, sec.data, sec.bytes, sec.lanes, &trial);
        if (!st.ok()) continue;  // shape mismatch: leave the section raw
        const uint64_t best =
            sec.codec == SectionCodec::kRaw ? sec.bytes : sec.encoded.size();
        if (trial.size() <= sec.bytes - sec.bytes / 8 &&
            trial.size() < best) {
          sec.codec = codec;
          sec.encoded = std::move(trial);
          trial = {};
        }
      }
    }
  }

  const auto stored_bytes = [](const Sec& sec) {
    return sec.codec == SectionCodec::kRaw ? sec.bytes
                                           : uint64_t{sec.encoded.size()};
  };
  const auto stored_data = [](const Sec& sec) {
    return sec.codec == SectionCodec::kRaw
               ? sec.data
               : static_cast<const void*>(sec.encoded.data());
  };

  const uint32_t count = static_cast<uint32_t>(secs.size());
  std::vector<SectionRecordV2> toc(count);
  uint64_t cursor =
      kMagicBytes + sizeof(BundleHeader) + count * sizeof(SectionRecordV2);
  for (uint32_t i = 0; i < count; ++i) {
    SectionRecordV2& rec = toc[i];
    std::strncpy(rec.name, secs[i].name, sizeof(rec.name) - 1);
    rec.offset = cursor;
    rec.stored_length = stored_bytes(secs[i]);
    rec.decoded_length = secs[i].bytes;
    rec.checksum = BundleChecksum(stored_data(secs[i]), rec.stored_length);
    rec.codec = static_cast<uint32_t>(secs[i].codec);
    cursor += AlignUp(rec.stored_length);
  }

  BundleHeader hdr;
  hdr.version = kFormatVersionV2;
  hdr.section_count = count;
  hdr.num_upper = g.NumUpper();
  hdr.num_lower = g.NumLower();
  hdr.num_edges = g.NumEdges();
  hdr.delta = d.delta;
  hdr.topology_checksum = GraphTopologyChecksum(g);
  hdr.weight_digest = GraphWeightChecksum(g);
  {
    std::vector<unsigned char> meta(sizeof(hdr) +
                                    count * sizeof(SectionRecordV2));
    std::memcpy(meta.data(), &hdr, sizeof(hdr));
    std::memcpy(meta.data() + sizeof(hdr), toc.data(),
                count * sizeof(SectionRecordV2));
    hdr.meta_checksum = BundleChecksum(meta.data(), meta.size());
  }

  // Write-then-fsync-then-rename so a crash, torn write or full disk at
  // ANY instant leaves `path` either absent, the complete previous bundle
  // or the complete new one — never a torn hybrid. The named FaultPoint /
  // WriteFully seams below are the crash matrix the recovery test sweeps.
  const std::string tmp_path = path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                        S_IRUSR | S_IWUSR | S_IRGRP | S_IROTH);
  if (fd < 0) {
    return Status::IOError("cannot open " + tmp_path + " for writing: " +
                           std::strerror(errno));
  }
  FaultPoint("bundle_save.open_tmp");
  const auto fail = [&](Status st) {
    ::close(fd);
    std::remove(tmp_path.c_str());
    return st;
  };
  {
    // Magic + header + TOC written as one buffer so a short meta write
    // models a torn header.
    std::vector<char> meta(kMagicBytes + sizeof(hdr) +
                           count * sizeof(SectionRecordV2));
    std::memcpy(meta.data(), kMagicV2, kMagicBytes);
    std::memcpy(meta.data() + kMagicBytes, &hdr, sizeof(hdr));
    std::memcpy(meta.data() + kMagicBytes + sizeof(hdr), toc.data(),
                count * sizeof(SectionRecordV2));
    Status st = WriteFully(fd, meta.data(), meta.size(), "bundle_save.meta");
    if (!st.ok()) return fail(std::move(st));
  }
  FaultPoint("bundle_save.after_meta");
  const char pad[kAlign] = {};
  for (const Sec& sec : secs) {
    const uint64_t bytes = stored_bytes(sec);
    if (bytes != 0) {
      Status st =
          WriteFully(fd, stored_data(sec), bytes, "bundle_save.sections");
      if (!st.ok()) return fail(std::move(st));
    }
    const uint64_t padding = AlignUp(bytes) - bytes;
    if (padding != 0) {
      Status st = WriteFully(fd, pad, padding, "bundle_save.sections");
      if (!st.ok()) return fail(std::move(st));
    }
  }
  FaultPoint("bundle_save.before_fsync");
  if (::fsync(fd) != 0) {
    return fail(Status::IOError("fsync failed: " + tmp_path + ": " +
                                std::strerror(errno)));
  }
  ::close(fd);
  FaultPoint("bundle_save.after_fsync");

  if (opts.keep_previous && std::filesystem::exists(path)) {
    // Rotate the current bundle to `path.prev` via a hard link: `path`
    // itself stays a complete bundle through every instant of the
    // rotation, and recovery gains a verified fallback should the main
    // file later be damaged in place.
    const std::string prev_path = path + ".prev";
    std::remove(prev_path.c_str());
    FaultPoint("bundle_save.prev_rotate");
    if (::link(path.c_str(), prev_path.c_str()) != 0 && errno != ENOENT) {
      // Cross-device or linkless filesystems: fall back to a copy; a
      // failure here only costs the fallback, never the save.
      std::error_code copy_ec;
      std::filesystem::copy_file(
          path, prev_path, std::filesystem::copy_options::overwrite_existing,
          copy_ec);
    }
  }

  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot move " + tmp_path + " over " + path +
                           ": " + ec.message());
  }
  FaultPoint("bundle_save.after_rename");
  SyncParentDir(path);
  return Status::OK();
}

Status BundleAccess::Open(const std::string& path,
                          const BundleOpenOptions& opts, IndexBundle* b) {
  b->mode_ = opts.mode;
  if (opts.mode == BundleOpenMode::kMmap) {
    const Status st = MappedFile::Open(path, &b->map_);
    if (st.code() == Status::Code::kNotSupported) {
      // Platforms without mmap fall back to the one-buffer read path —
      // same wiring, just eager bytes.
      b->mode_ = BundleOpenMode::kRead;
    } else if (!st.ok()) {
      return st;
    }
  }
  if (b->mode_ == BundleOpenMode::kMmap) {
    b->backing_ = b->map_.data();
    b->backing_size_ = b->map_.size();
  } else {
    // Pin down a regular file first: ifstream happily "opens" a directory
    // on some platforms and tellg() then reports a colossal bogus size —
    // resize() would abort on bad_alloc instead of returning a Status.
    std::error_code ec;
    if (!std::filesystem::is_regular_file(path, ec)) {
      return Status::IOError("cannot open " + path + " (not a regular file)");
    }
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) return Status::IOError("cannot open " + path);
    const std::streamoff size = in.tellg();
    if (size < 0) return Status::IOError("cannot size " + path);
    in.seekg(0);
    b->buffer_.resize(static_cast<std::size_t>(size));
    if (size > 0) {
      in.read(reinterpret_cast<char*>(b->buffer_.data()), size);
    }
    if (!in) return Status::IOError("short read: " + path);
    b->backing_ = b->buffer_.data();
    b->backing_size_ = b->buffer_.size();
  }

  OpenCtx ctx;
  ctx.base = b->backing_;
  ctx.file_size = b->backing_size_;
  ctx.path = &path;
  ctx.verify = opts.verify_checksums;

  if (ctx.file_size < kMagicBytes + sizeof(BundleHeader)) {
    return ctx.Corrupt("truncated header");
  }
  uint32_t magic_version = 0;
  if (std::memcmp(ctx.base, kMagicV2, kMagicBytes) == 0) {
    magic_version = kFormatVersionV2;
  } else if (std::memcmp(ctx.base, kMagicV1, kMagicBytes) == 0) {
    magic_version = kFormatVersionV1;
  } else {
    return ctx.Corrupt("bad magic (not an ABCSPAK bundle)");
  }
  BundleHeader hdr;
  std::memcpy(&hdr, ctx.base + kMagicBytes, sizeof(hdr));
  if (hdr.version != magic_version) {
    return ctx.Corrupt("unsupported format version " +
                       std::to_string(hdr.version) +
                       " (magic and header disagree)");
  }
  if (hdr.section_count == 0 || hdr.section_count > kMaxSections) {
    return ctx.Corrupt("implausible section count");
  }
  const uint64_t record_bytes = hdr.version == kFormatVersionV1
                                    ? sizeof(SectionRecordV1)
                                    : sizeof(SectionRecordV2);
  const uint64_t toc_end = kMagicBytes + sizeof(BundleHeader) +
                           uint64_t{hdr.section_count} * record_bytes;
  if (toc_end > ctx.file_size) return ctx.Corrupt("truncated TOC");

  // The meta checksum covers the header (with its own field zeroed) and
  // the TOC, so a flipped byte anywhere in the metadata — including a
  // tampered section range or codec tag — is caught before any range is
  // trusted.
  {
    std::vector<unsigned char> meta(toc_end - kMagicBytes);
    std::memcpy(meta.data(), ctx.base + kMagicBytes, meta.size());
    BundleHeader zeroed = hdr;
    zeroed.meta_checksum = 0;
    std::memcpy(meta.data(), &zeroed, sizeof(zeroed));
    if (BundleChecksum(meta.data(), meta.size()) != hdr.meta_checksum) {
      return ctx.Corrupt("header/TOC checksum mismatch");
    }
  }

  // Normalise both TOC layouts into SectionMeta (a v1 record is a raw
  // section whose stored and decoded lengths coincide).
  ctx.toc.resize(hdr.section_count);
  const std::byte* toc_base = ctx.base + kMagicBytes + sizeof(BundleHeader);
  for (uint32_t i = 0; i < hdr.section_count; ++i) {
    SectionMeta& meta = ctx.toc[i];
    if (hdr.version == kFormatVersionV1) {
      SectionRecordV1 rec;
      std::memcpy(&rec, toc_base + i * sizeof(rec), sizeof(rec));
      std::memcpy(meta.name, rec.name, sizeof(meta.name));
      meta.offset = rec.offset;
      meta.stored_length = rec.length;
      meta.decoded_length = rec.length;
      meta.checksum = rec.checksum;
      meta.codec = SectionCodec::kRaw;
    } else {
      SectionRecordV2 rec;
      std::memcpy(&rec, toc_base + i * sizeof(rec), sizeof(rec));
      std::memcpy(meta.name, rec.name, sizeof(meta.name));
      meta.offset = rec.offset;
      meta.stored_length = rec.stored_length;
      meta.decoded_length = rec.decoded_length;
      meta.checksum = rec.checksum;
      if (rec.codec >= kNumSectionCodecs || rec.reserved != 0) {
        return ctx.Corrupt("section " + SectionName(rec.name) +
                           " claims an unknown codec tag " +
                           std::to_string(rec.codec));
      }
      meta.codec = static_cast<SectionCodec>(rec.codec);
      if (meta.codec == SectionCodec::kRaw &&
          meta.stored_length != meta.decoded_length) {
        return ctx.Corrupt("section " + SectionName(rec.name) +
                           " is raw but its stored and decoded lengths "
                           "disagree");
      }
      // An encoded stream cannot legitimately expand by more than the
      // worst-case codec blowup; an absurd decoded length in a crafted
      // TOC must not be able to demand an arbitrarily large pool.
      if (meta.decoded_length > meta.stored_length * 64 + 1024) {
        return ctx.Corrupt("section " + SectionName(rec.name) +
                           " claims an implausible decoded length");
      }
    }
    // Byte-range sanity before anything is mapped: a section must lie
    // after the TOC and inside the file (overflow-safe).
    if (meta.offset % kAlign != 0) {
      return ctx.Corrupt("section " + SectionName(meta.name) +
                         " has a misaligned payload");
    }
    if (meta.offset < toc_end || meta.offset > ctx.file_size ||
        meta.stored_length > ctx.file_size - meta.offset) {
      return ctx.Corrupt("section " + SectionName(meta.name) +
                         " range outside file (TOC overrun)");
    }
  }

  // One pooled arena for every encoded section: sized once from the TOC's
  // decoded lengths, u64-backed so each AlignUp slice is 8-aligned, then
  // handed out as decode destinations — no per-section mallocs.
  uint64_t pool_bytes = 0;
  for (const SectionMeta& meta : ctx.toc) {
    if (meta.codec != SectionCodec::kRaw) {
      pool_bytes += AlignUp(meta.decoded_length);
    }
  }
  b->format_version_ = hdr.version;
  b->pool_.assign(pool_bytes / sizeof(uint64_t), 0);
  {
    std::byte* slice = reinterpret_cast<std::byte*>(b->pool_.data());
    b->sections_.clear();
    b->sections_.reserve(ctx.toc.size());
    for (SectionMeta& meta : ctx.toc) {
      if (meta.codec != SectionCodec::kRaw) {
        meta.decode_dst = slice;
        slice += AlignUp(meta.decoded_length);
      }
      b->sections_.push_back(BundleSectionInfo{SectionName(meta.name),
                                               meta.codec, meta.stored_length,
                                               meta.decoded_length});
    }
  }

  const uint64_t n64 = uint64_t{hdr.num_upper} + hdr.num_lower;
  if (n64 > std::numeric_limits<uint32_t>::max()) {
    return ctx.Corrupt("vertex count overflow");
  }
  const uint64_t n = n64;
  const uint64_t m = hdr.num_edges;

  // --- graph -----------------------------------------------------------
  BipartiteGraph& g = b->graph_;
  g.num_upper_ = hdr.num_upper;
  g.num_lower_ = hdr.num_lower;
  ABCS_RETURN_NOT_OK(MapSection(ctx, "g.offsets", n + 1, &g.offsets_));
  ABCS_RETURN_NOT_OK(MapSection(ctx, "g.arcs", 2 * m, &g.arcs_));
  ABCS_RETURN_NOT_OK(MapSection(ctx, "g.edges", m, &g.edges_));
  ABCS_RETURN_NOT_OK(CheckStartArray(ctx, "g.offsets", g.offsets_));
  if (g.offsets_.back() != 2 * m) {
    return ctx.Corrupt("CSR offsets do not cover the arc array");
  }
  if (ctx.verify) {
    for (const Arc& a : g.arcs_) {
      if (a.to >= n || a.eid >= m) {
        return ctx.Corrupt("arc endpoint out of range");
      }
    }
    for (const Edge& e : g.edges_) {
      if (e.u >= hdr.num_upper || e.v < hdr.num_upper || e.v >= n) {
        return ctx.Corrupt("edge endpoint out of range");
      }
    }
    if (GraphTopologyChecksum(g) != hdr.topology_checksum) {
      return ctx.Corrupt("edge payload does not match header topology "
                         "checksum");
    }
    if (GraphWeightChecksum(g) != hdr.weight_digest) {
      return ctx.Corrupt("weights do not match the header weight digest "
                         "(stale significances?)");
    }
  }
  b->topology_checksum_ = hdr.topology_checksum;
  b->weight_digest_ = hdr.weight_digest;

  // --- decomposition ---------------------------------------------------
  BicoreDecomposition& d = b->decomp_;
  d.delta = hdr.delta;
  struct ArenaSec {
    const char* start_name;
    const char* values_name;
    OffsetArena* arena;
  };
  for (const ArenaSec& as :
       {ArenaSec{"dc.a.start", "dc.a.values", &d.alpha},
        ArenaSec{"dc.b.start", "dc.b.values", &d.beta}}) {
    ABCS_RETURN_NOT_OK(MapSection(ctx, as.start_name, n + 1,
                                  &as.arena->start));
    ABCS_RETURN_NOT_OK(CheckStartArray(ctx, as.start_name, as.arena->start));
    // No vertex can own more than δ offset levels; consumers size their
    // dense tables by δ and trust it (DynamicDeltaIndex seeds its per-τ
    // rows from these slices), so an oversized slice must die here.
    for (uint64_t v = 0; v < n; ++v) {
      if (as.arena->start[v + 1] - as.arena->start[v] > hdr.delta) {
        return ctx.Corrupt(std::string(as.start_name) +
                           " has a slice longer than delta");
      }
    }
    ABCS_RETURN_NOT_OK(MapSection(ctx, as.values_name,
                                  as.arena->start.back(),
                                  &as.arena->values));
  }

  // --- I_δ -------------------------------------------------------------
  DeltaIndex& di = b->delta_index_;
  di.graph_ = &b->graph_;
  di.delta_ = hdr.delta;
  struct HalfSec {
    const char* tbase;
    const char* lstart;
    const char* selfoff;
    const char* entries;
    DeltaIndex::Half* half;
  };
  for (const HalfSec& hs :
       {HalfSec{"id.a.tbase", "id.a.lstart", "id.a.selfoff", "id.a.entries",
                &di.alpha_half_},
        HalfSec{"id.b.tbase", "id.b.lstart", "id.b.selfoff", "id.b.entries",
                &di.beta_half_}}) {
    ABCS_RETURN_NOT_OK(MapSection(ctx, hs.tbase, n + 1, &hs.half->table_base));
    const ArenaStorage<uint32_t>& tb = hs.half->table_base;
    // Every vertex owns NumLevels(v)+1 ≥ 1 level-table slots, so the base
    // table must be *strictly* increasing: a zero-width slot would make
    // NumLevels underflow and send self_offset/level_start lookups far
    // outside the mapping.
    if (tb[0] != 0) {
      return ctx.Corrupt(std::string(hs.tbase) + " does not start at 0");
    }
    for (uint64_t v = 0; v < n; ++v) {
      if (tb[v + 1] <= tb[v]) {
        return ctx.Corrupt(std::string(hs.tbase) +
                           " has a zero-width vertex slot");
      }
    }
    const uint64_t table_slots = tb.back();
    ABCS_RETURN_NOT_OK(MapSection(ctx, hs.lstart, table_slots,
                                  &hs.half->level_start));
    ABCS_RETURN_NOT_OK(MapSection(ctx, hs.selfoff, table_slots - n,
                                  &hs.half->self_offset));
    ABCS_RETURN_NOT_OK(MapSection(ctx, hs.entries, kAnyCount,
                                  &hs.half->entries));
    // Queries index entries[level_start[i] .. level_start[i+1]); every
    // bound must stay inside the entry arena or a BFS could walk off the
    // mapping.
    const ArenaStorage<uint32_t>& ls = hs.half->level_start;
    if (table_slots != 0 && ls.back() != hs.half->entries.size()) {
      return ctx.Corrupt(std::string(hs.entries) +
                         " does not end at the last level bound");
    }
    // Monotone bounds (with the back()==size check above this pins every
    // slice inside the entry arena). Unconditional — it is an array-shape
    // check, a tiny fraction of the payload scan verify_checksums gates,
    // and the one that keeps a query's slice arithmetic inside the map.
    for (std::size_t i = 1; i < ls.size(); ++i) {
      if (ls[i] < ls[i - 1]) {
        return ctx.Corrupt(std::string(hs.lstart) +
                           " level bounds are not non-decreasing");
      }
    }
    if (ctx.verify) {
      // Every entry in a level-τ list must reference a vertex that
      // *owns* level τ: the query BFS hops to entry.to and reads its
      // level-τ slice unchecked (construction guarantees this; a crafted
      // bundle must not be able to break it).
      for (uint64_t v = 0; v < n; ++v) {
        const uint32_t levels = tb[v + 1] - tb[v] - 1;
        for (uint32_t tau = 1; tau <= levels; ++tau) {
          const uint32_t table = tb[v] + tau - 1;
          for (uint32_t i = ls[table]; i < ls[table + 1]; ++i) {
            const DeltaIndex::Entry& e = hs.half->entries[i];
            if (e.to >= n || e.eid >= m) {
              return ctx.Corrupt(std::string(hs.entries) +
                                 " references a vertex or edge out of range");
            }
            if (tb[e.to + 1] - tb[e.to] - 1 < tau) {
              return ctx.Corrupt(std::string(hs.entries) +
                                 " references a vertex without that level");
            }
          }
        }
      }
    }
  }

  // --- I_v -------------------------------------------------------------
  BicoreIndex& bi = b->bicore_index_;
  bi.graph_ = &b->graph_;
  bi.delta_ = hdr.delta;
  struct SideSec {
    const char* start_name;
    const char* entries_name;
    BicoreIndex::SideArena* side;
  };
  for (const SideSec& ss :
       {SideSec{"iv.a.start", "iv.a.entries", &bi.alpha_side_},
        SideSec{"iv.b.start", "iv.b.entries", &bi.beta_side_}}) {
    ABCS_RETURN_NOT_OK(MapSection(ctx, ss.start_name,
                                  uint64_t{hdr.delta} + 1, &ss.side->start));
    ABCS_RETURN_NOT_OK(CheckStartArray(ctx, ss.start_name, ss.side->start));
    ABCS_RETURN_NOT_OK(MapSection(ctx, ss.entries_name, ss.side->start.back(),
                                  &ss.side->entries));
    if (ctx.verify) {
      for (const BicoreIndex::Entry& e : ss.side->entries) {
        if (e.v >= n) {
          return ctx.Corrupt(std::string(ss.entries_name) +
                             " references a vertex out of range");
        }
      }
    }
  }

  return Status::OK();
}

bool BundleAccess::ZeroCopy(const IndexBundle& b) {
  const std::byte* lo = b.backing_;
  const std::byte* hi = b.backing_ + b.backing_size_;
  bool all = true;
  ForEachSection(b.graph_, b.decomp_, b.delta_index_, b.bicore_index_,
                 [&](const char*, const auto& arr) {
                   if (!arr.borrowed()) {
                     all = false;
                     return;
                   }
                   if (arr.empty()) return;  // empty spans carry no payload
                   const std::byte* p =
                       reinterpret_cast<const std::byte*>(arr.data());
                   all = all && p >= lo && p + arr.SizeBytes() <= hi;
                 });
  return all;
}

bool IndexBundle::ZeroCopy() const { return BundleAccess::ZeroCopy(*this); }

Status SaveIndexBundle(const BipartiteGraph& g,
                       const BicoreDecomposition& decomp,
                       const DeltaIndex& delta, const BicoreIndex& bicore,
                       const std::string& path,
                       const SaveBundleOptions& options) {
  return BundleAccess::Save(g, decomp, delta, bicore, path, options);
}

const std::vector<const char*>& BundleSaveFaultPoints() {
  // Every FaultPoint() in BundleAccess::Save, in program order. The
  // crash-matrix test sweeps each one (plus short writes at the two
  // WriteFully labels) and asserts recovery.
  static const std::vector<const char*> kPoints = {
      "bundle_save.open_tmp",     "bundle_save.after_meta",
      "bundle_save.before_fsync", "bundle_save.after_fsync",
      "bundle_save.prev_rotate",  "bundle_save.after_rename",
  };
  return kPoints;
}

Status OpenBundleWithFallback(const std::string& path,
                              std::unique_ptr<IndexBundle>* out,
                              const BundleOpenOptions& options,
                              std::string* diagnostic) {
  const Status primary = OpenIndexBundle(path, out, options);
  if (primary.ok()) return primary;
  // Only a damaged-but-present bundle triggers the fallback; a plain
  // missing file is an honest answer the caller should see as-is.
  const std::string prev_path = path + ".prev";
  if (!std::filesystem::exists(prev_path)) return primary;
  const Status fallback = OpenIndexBundle(prev_path, out, options);
  if (!fallback.ok()) {
    return Status::Corruption("bundle " + path + " unusable (" +
                              primary.message() + ") and fallback " +
                              prev_path + " unusable (" + fallback.message() +
                              ")");
  }
  if (diagnostic != nullptr) {
    *diagnostic = "bundle " + path + " unusable (" + primary.message() +
                  "); recovered from previous epoch " + prev_path;
  }
  return Status::OK();
}

Status OpenIndexBundle(const std::string& path,
                       std::unique_ptr<IndexBundle>* out,
                       const BundleOpenOptions& options) {
  // The bundle is immovable (its indexes point at its graph member), so it
  // is built in place on the heap and only released to the caller once
  // every section is wired and verified.
  std::unique_ptr<IndexBundle> bundle(new IndexBundle());
  ABCS_RETURN_NOT_OK(BundleAccess::Open(path, options, bundle.get()));
  *out = std::move(bundle);
  return Status::OK();
}

Status VerifyBundleMatchesGraph(const IndexBundle& bundle,
                                const BipartiteGraph& g) {
  const BipartiteGraph& bg = bundle.graph();
  if (bg.NumUpper() != g.NumUpper() || bg.NumLower() != g.NumLower() ||
      bg.NumEdges() != g.NumEdges()) {
    return Status::Corruption("bundle was built for a different graph shape");
  }
  if (BundleAccess::Topology(bundle) != GraphTopologyChecksum(g)) {
    return Status::Corruption("bundle topology does not match this graph");
  }
  if (BundleAccess::Weights(bundle) != GraphWeightChecksum(g)) {
    return Status::Corruption(
        "bundle weights do not match this graph (stale significances — "
        "rebuild the bundle)");
  }
  return Status::OK();
}

}  // namespace abcs
