#include "io/mapped_file.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define ABCS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define ABCS_HAVE_MMAP 0
#endif

namespace abcs {

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Close();
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

#if ABCS_HAVE_MMAP

Status MappedFile::Open(const std::string& path, MappedFile* out) {
  out->Close();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  void* addr = nullptr;
  if (size > 0) {
    addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      return Status::IOError("cannot mmap " + path);
    }
  }
  ::close(fd);  // the mapping keeps the pages alive
  out->addr_ = addr;
  out->size_ = size;
  out->mapped_ = true;
  return Status::OK();
}

void MappedFile::Close() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
  addr_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

#else  // !ABCS_HAVE_MMAP

Status MappedFile::Open(const std::string& path, MappedFile* out) {
  (void)out;
  return Status::NotSupported("mmap unavailable on this platform; open the "
                              "bundle with BundleOpenMode::kRead instead (" +
                              path + ")");
}

void MappedFile::Close() {
  addr_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

#endif  // ABCS_HAVE_MMAP

}  // namespace abcs
