#ifndef ABCS_IO_ARENA_STORAGE_H_
#define ABCS_IO_ARENA_STORAGE_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace abcs {

/// \brief Flat-array storage that is either *owning* (a `std::vector<T>`)
/// or *borrowed* (a read-only span over memory owned by someone else,
/// typically an mmap'd index bundle).
///
/// Every persistent flat array of the index layers (graph CSR, offset
/// arenas, index entry arenas) is held through this class, so the same
/// query code serves both an in-memory build and a zero-copy mapped
/// bundle: reads go through the const accessors, which dispatch on one
/// perfectly-predictable branch; writers obtain the owning vector via
/// `Mutable()`, which detaches borrowed storage by copying first
/// (copy-on-write) — the mutability contract of the old plain vectors is
/// preserved, only now "mutate" on a mapped array means "own your copy".
///
/// A borrowed ArenaStorage never outlives its backing region by contract:
/// the `IndexBundle` that created the borrow owns both the mapping and the
/// structures viewing it, and is itself immovable.
template <typename T>
class ArenaStorage {
 public:
  using value_type = T;

  ArenaStorage() = default;

  /// Owning storage, adopted from a vector (the builder path).
  /*implicit*/ ArenaStorage(std::vector<T> v) : owned_(std::move(v)) {}
  ArenaStorage& operator=(std::vector<T> v) {
    owned_ = std::move(v);
    borrowed_ = false;
    view_ = {};
    return *this;
  }

  /// Borrowed storage over `[data, data + size)`; the region must outlive
  /// this object (and every copy of it).
  static ArenaStorage Borrowed(const T* data, std::size_t size) {
    ArenaStorage s;
    s.borrowed_ = true;
    s.view_ = std::span<const T>(data, size);
    return s;
  }

  bool borrowed() const { return borrowed_; }

  // Read interface — valid in both states. Deliberately a branch per
  // access rather than a cached data_/size_ pair: Mutable() hands out the
  // owning vector by reference and builders grow it freely (push_back →
  // realloc), so any cached pointer would go stale silently. The branch
  // is on a field that never changes between mutations — perfectly
  // predicted in query loops — and hot kernels that want raw pointers
  // hoist data() once (see offsets.cc's chain builder).
  std::size_t size() const { return borrowed_ ? view_.size() : owned_.size(); }
  bool empty() const { return size() == 0; }
  const T* data() const { return borrowed_ ? view_.data() : owned_.data(); }
  const T& operator[](std::size_t i) const { return data()[i]; }
  const T& back() const { return data()[size() - 1]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  std::span<const T> view() const { return {data(), size()}; }
  std::size_t SizeBytes() const { return size() * sizeof(T); }

  /// The owning vector, for builders and loaders. Borrowed storage is
  /// detached first by copying the viewed elements (copy-on-write).
  std::vector<T>& Mutable() {
    if (borrowed_) {
      owned_.assign(view_.begin(), view_.end());
      borrowed_ = false;
      view_ = {};
    }
    return owned_;
  }

  /// Element-wise equality regardless of ownership.
  friend bool operator==(const ArenaStorage& a, const ArenaStorage& b) {
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::vector<T> owned_;
  std::span<const T> view_;
  bool borrowed_ = false;
};

}  // namespace abcs

#endif  // ABCS_IO_ARENA_STORAGE_H_
