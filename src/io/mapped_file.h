#ifndef ABCS_IO_MAPPED_FILE_H_
#define ABCS_IO_MAPPED_FILE_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace abcs {

/// \brief Read-only memory mapping of a whole file (POSIX mmap).
///
/// The index bundle opener maps the file once and hands out borrowed
/// `ArenaStorage` spans into the mapping, so opening an index is O(1)
/// copies: pages fault in lazily as queries touch them. Movable so it can
/// be stored inside the (heap-allocated) `IndexBundle`; the mapping's
/// address is stable across moves, only the handle transfers.
///
/// On platforms without mmap the build falls back to `ReadWholeFile`
/// (one owned buffer, same span wiring) — the bundle opener selects the
/// path, callers never see the difference beyond open latency.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { Close(); }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;

  /// Maps `path` read-only. Fails with IOError if the file cannot be
  /// opened or mapped (an empty file maps to a valid zero-length mapping).
  static Status Open(const std::string& path, MappedFile* out);

  /// True between a successful Open and Close (an empty file yields a
  /// valid zero-length mapping).
  bool valid() const { return mapped_; }
  const std::byte* data() const {
    return static_cast<const std::byte*>(addr_);
  }
  std::size_t size() const { return size_; }

  void Close();

 private:
  void* addr_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;  ///< distinguishes "never opened" from "empty file"
};

}  // namespace abcs

#endif  // ABCS_IO_MAPPED_FILE_H_
