#include "io/codec.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <string>

namespace abcs {

namespace {

/// Zigzag-fold a signed 64-bit delta into an unsigned varint payload.
/// Deltas of u32 values span (-2³², 2³²), so the folded value fits 33 bits
/// and a varint never legitimately exceeds 5 bytes.
constexpr uint64_t ZigzagEncode(int64_t d) {
  return (static_cast<uint64_t>(d) << 1) ^ static_cast<uint64_t>(d >> 63);
}
constexpr int64_t ZigzagDecode(uint64_t z) {
  return static_cast<int64_t>(z >> 1) ^ -static_cast<int64_t>(z & 1);
}
constexpr uint32_t kMaxVarintBytes = 5;  ///< 33 significant bits max

void PutVarint(uint64_t z, std::vector<std::byte>* out) {
  while (z >= 0x80) {
    out->push_back(static_cast<std::byte>((z & 0x7f) | 0x80));
    z >>= 7;
  }
  out->push_back(static_cast<std::byte>(z));
}

/// Little-endian bit writer over a byte vector; lanes are flushed to a
/// byte boundary so each lane's stream is independently addressable.
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::byte>* out) : out_(out) {}
  void Put(uint32_t v, uint32_t width) {
    acc_ |= static_cast<uint64_t>(v) << nbits_;
    nbits_ += width;
    while (nbits_ >= 8) {
      out_->push_back(static_cast<std::byte>(acc_ & 0xff));
      acc_ >>= 8;
      nbits_ -= 8;
    }
  }
  void Flush() {
    if (nbits_ > 0) {
      out_->push_back(static_cast<std::byte>(acc_ & 0xff));
      acc_ = 0;
      nbits_ = 0;
    }
  }

 private:
  std::vector<std::byte>* out_;
  uint64_t acc_ = 0;  ///< nbits_ < 8 before Put, width ≤ 32 → never overflows
  uint32_t nbits_ = 0;
};

/// Bounds-checked little-endian bit reader; Refill never reads past
/// `end`, so crafted streams can only under-run (reported), never overrun.
class BitReader {
 public:
  BitReader(const std::byte* data, std::size_t size)
      : p_(data), end_(data + size) {}
  bool Get(uint32_t width, uint32_t* out) {
    while (nbits_ < width) {
      if (p_ == end_) return false;
      acc_ |= static_cast<uint64_t>(*p_++) << nbits_;
      nbits_ += 8;
    }
    const uint64_t mask =
        width == 32 ? 0xffffffffull : (uint64_t{1} << width) - 1;
    *out = static_cast<uint32_t>(acc_ & mask);
    acc_ >>= width;
    nbits_ -= width;
    return true;
  }
  /// Drops the sub-byte remainder at a lane boundary; the padding bits
  /// must be zero (a canonical-form check that doubles as tamper noise
  /// detection on unverified opens).
  bool AlignToByte() {
    const uint32_t drop = nbits_ & 7;
    if (drop != 0 && (acc_ & ((1ull << drop) - 1)) != 0) return false;
    acc_ >>= drop;
    nbits_ -= drop;
    return true;
  }
  std::size_t Remaining() const { return (end_ - p_) + nbits_ / 8; }

 private:
  const std::byte* p_;
  const std::byte* end_;
  uint64_t acc_ = 0;
  uint32_t nbits_ = 0;
};

Status CheckShape(std::size_t decoded_bytes, uint32_t lanes) {
  if (lanes == 0) {
    return Status::InvalidArgument("codec: lane count must be nonzero");
  }
  if (decoded_bytes % (std::size_t{4} * lanes) != 0) {
    return Status::InvalidArgument(
        "codec: payload is not a whole number of " + std::to_string(lanes) +
        "-lane elements");
  }
  return Status::OK();
}

// ---------------------------------------------------------- delta-varint --

void EncodeDeltaVarint(const uint32_t* values, std::size_t count,
                       uint32_t lanes, std::vector<std::byte>* out) {
  for (uint32_t lane = 0; lane < lanes; ++lane) {
    uint32_t prev = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const uint32_t v = values[i * lanes + lane];
      PutVarint(ZigzagEncode(static_cast<int64_t>(v) - prev), out);
      prev = v;
    }
  }
}

Status DecodeDeltaVarint(const std::byte* enc, std::size_t enc_bytes,
                         uint32_t lanes, uint32_t* out, std::size_t count) {
  const std::byte* p = enc;
  const std::byte* end = enc + enc_bytes;
  for (uint32_t lane = 0; lane < lanes; ++lane) {
    int64_t prev = 0;
    for (std::size_t i = 0; i < count; ++i) {
      uint64_t z = 0;
      uint32_t shift = 0, nbytes = 0;
      for (;;) {
        if (p == end) {
          return Status::Corruption("varint overruns the encoded payload");
        }
        const uint8_t b = static_cast<uint8_t>(*p++);
        z |= static_cast<uint64_t>(b & 0x7f) << shift;
        shift += 7;
        if (++nbytes > kMaxVarintBytes) {
          return Status::Corruption("varint longer than a u32 delta allows");
        }
        if ((b & 0x80) == 0) break;
      }
      const int64_t v = prev + ZigzagDecode(z);
      if (v < 0 || v > 0xffffffffll) {
        return Status::Corruption("delta-varint value outside u32 range");
      }
      out[i * lanes + lane] = static_cast<uint32_t>(v);
      prev = v;
    }
  }
  if (p != end) {
    return Status::Corruption("trailing bytes after the encoded payload");
  }
  return Status::OK();
}

// -------------------------------------------------------------- bit-pack --

void EncodeBitPack(const uint32_t* values, std::size_t count, uint32_t lanes,
                   std::vector<std::byte>* out) {
  // Header: one width byte per lane; then each lane's bitstream, padded to
  // a byte boundary, in lane order.
  for (uint32_t lane = 0; lane < lanes; ++lane) {
    uint32_t max = 0;
    for (std::size_t i = 0; i < count; ++i) {
      max = std::max(max, values[i * lanes + lane]);
    }
    out->push_back(static_cast<std::byte>(BitWidthFor(max)));
  }
  for (uint32_t lane = 0; lane < lanes; ++lane) {
    const uint32_t width = static_cast<uint32_t>((*out)[lane]);
    if (width == 0) continue;
    BitWriter writer(out);
    for (std::size_t i = 0; i < count; ++i) {
      writer.Put(values[i * lanes + lane], width);
    }
    writer.Flush();
  }
}

Status DecodeBitPack(const std::byte* enc, std::size_t enc_bytes,
                     uint32_t lanes, uint32_t* out, std::size_t count) {
  if (enc_bytes < lanes) {
    return Status::Corruption("bit-pack header truncated");
  }
  std::size_t expect = lanes;
  for (uint32_t lane = 0; lane < lanes; ++lane) {
    const uint32_t width = static_cast<uint32_t>(enc[lane]);
    if (width > 32) {
      return Status::Corruption("bit-pack lane width exceeds 32 bits");
    }
    expect += BitPackedBytes(count, width);
  }
  if (expect != enc_bytes) {
    return Status::Corruption(
        "bit-pack payload size does not match its lane widths");
  }
  const std::byte* p = enc + lanes;
  for (uint32_t lane = 0; lane < lanes; ++lane) {
    const uint32_t width = static_cast<uint32_t>(enc[lane]);
    const std::size_t lane_bytes = BitPackedBytes(count, width);
    if (width == 0) {
      for (std::size_t i = 0; i < count; ++i) out[i * lanes + lane] = 0;
      continue;
    }
    BitReader reader(p, lane_bytes);
    for (std::size_t i = 0; i < count; ++i) {
      uint32_t v = 0;
      if (!reader.Get(width, &v)) {
        return Status::Corruption("bit-pack lane underruns its bitstream");
      }
      out[i * lanes + lane] = v;
    }
    p += lane_bytes;
  }
  return Status::OK();
}

}  // namespace

const char* SectionCodecName(SectionCodec codec) {
  switch (codec) {
    case SectionCodec::kRaw:
      return "raw";
    case SectionCodec::kDeltaVarint:
      return "delta-varint";
    case SectionCodec::kBitPack:
      return "bit-pack";
  }
  return "codec-?";
}

uint32_t BitWidthFor(uint32_t max_value) {
  return static_cast<uint32_t>(std::bit_width(max_value));
}

Status EncodeU32Section(SectionCodec codec, const void* data,
                        std::size_t decoded_bytes, uint32_t lanes,
                        std::vector<std::byte>* out) {
  ABCS_RETURN_NOT_OK(CheckShape(decoded_bytes, lanes));
  out->clear();
  const std::size_t count = decoded_bytes / (std::size_t{4} * lanes);
  // The payload may be an array of structs with 8-byte alignment (Edge);
  // copy-free u32 access is valid because 4 divides every element size.
  const uint32_t* values = static_cast<const uint32_t*>(data);
  switch (codec) {
    case SectionCodec::kDeltaVarint:
      out->reserve(decoded_bytes / 2);
      EncodeDeltaVarint(values, count, lanes, out);
      return Status::OK();
    case SectionCodec::kBitPack:
      out->reserve(decoded_bytes / 2);
      EncodeBitPack(values, count, lanes, out);
      return Status::OK();
    case SectionCodec::kRaw:
      break;
  }
  return Status::InvalidArgument("cannot encode under codec tag " +
                                 std::to_string(static_cast<uint32_t>(codec)));
}

Status DecodeU32Section(SectionCodec codec, const std::byte* encoded,
                        std::size_t encoded_bytes, uint32_t lanes, void* out,
                        std::size_t decoded_bytes) {
  ABCS_RETURN_NOT_OK(CheckShape(decoded_bytes, lanes));
  const std::size_t count = decoded_bytes / (std::size_t{4} * lanes);
  uint32_t* values = static_cast<uint32_t*>(out);
  switch (codec) {
    case SectionCodec::kDeltaVarint:
      return DecodeDeltaVarint(encoded, encoded_bytes, lanes, values, count);
    case SectionCodec::kBitPack:
      return DecodeBitPack(encoded, encoded_bytes, lanes, values, count);
    case SectionCodec::kRaw:
      if (encoded_bytes != decoded_bytes) {
        return Status::Corruption(
            "raw codec encoded/decoded byte counts disagree");
      }
      std::memcpy(out, encoded, decoded_bytes);
      return Status::OK();
  }
  return Status::Corruption("unknown codec tag " +
                            std::to_string(static_cast<uint32_t>(codec)));
}

void PackedU32Array::Assign(const uint32_t* values, std::size_t count) {
  uint32_t max = 0;
  for (std::size_t i = 0; i < count; ++i) max = std::max(max, values[i]);
  width_ = BitWidthFor(max);
  mask_ = width_ == 32 ? ~uint64_t{0} >> 32 : (uint64_t{1} << width_) - 1;
  size_ = count;
  // +1 guard word keeps the straddling Get/Set unconditionalised at the
  // tail; the guard stays zero.
  words_.assign((count * width_ + 63) / 64 + 1, 0);
  for (std::size_t i = 0; i < count; ++i) Set(i, values[i]);
}

void PackedU32Array::GetBatch(std::size_t first, std::size_t n,
                              uint32_t* out) const {
  if (width_ == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  std::size_t bit = first * width_;
  for (std::size_t i = 0; i < n; ++i, bit += width_) {
    const std::size_t word = bit >> 6;
    const uint32_t shift = static_cast<uint32_t>(bit & 63);
    uint64_t v = words_[word] >> shift;
    if (shift + width_ > 64) v |= words_[word + 1] << (64 - shift);
    out[i] = static_cast<uint32_t>(v & mask_);
  }
}

}  // namespace abcs
