#ifndef ABCS_IO_CODEC_H_
#define ABCS_IO_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace abcs {

/// \brief Per-section codecs for the ABCSPAK2 index bundle.
///
/// Every bundle section is a flat array of trivially-copyable elements
/// whose size is a multiple of 4 bytes, so the codecs view a payload as
/// `lanes = element_size / 4` interleaved little-endian u32 columns and
/// encode each column independently — the `to` lane of an entry array
/// bit-packs to ⌈log₂ n⌉ bits while its `eid` lane gets its own width,
/// instead of both paying for the larger of the two.
///
/// Encoded streams are self-contained given (lanes, decoded byte count):
/// both are recorded in the bundle TOC, so a decoder never trusts the
/// stream for its own shape. Decoding arbitrary bytes under any tag is
/// memory-safe and returns a clean `Status` (fuzzed by
/// fuzz/fuzz_section_codec.cc).
enum class SectionCodec : uint32_t {
  kRaw = 0,          ///< verbatim bytes, served zero-copy from the mapping
  kDeltaVarint = 1,  ///< per-lane zigzag delta + LEB128 varint (sorted and
                     ///< slowly-varying columns: start arrays, level bounds,
                     ///< sorted neighbour ids)
  kBitPack = 2,      ///< per-lane fixed-width bit packing (bounded columns:
                     ///< vertex/edge ids, offset levels, degrees)
};
inline constexpr uint32_t kNumSectionCodecs = 3;

/// Stable lower-case name for CLI/json output ("raw", "delta-varint",
/// "bit-pack"); "codec-N" for out-of-range values.
const char* SectionCodecName(SectionCodec codec);

/// Encodes `decoded_bytes` bytes of `data` (an array whose elements span
/// `lanes` u32 columns) under `codec` into `*out` (cleared first).
/// `codec` must not be `kRaw` (raw sections are written verbatim without a
/// codec buffer). Fails with `InvalidArgument` when `decoded_bytes` is not
/// a multiple of `4 * lanes` or `lanes` is 0.
Status EncodeU32Section(SectionCodec codec, const void* data,
                        std::size_t decoded_bytes, uint32_t lanes,
                        std::vector<std::byte>* out);

/// Decodes `encoded_bytes` bytes of `encoded` into exactly `decoded_bytes`
/// bytes at `out` (caller-allocated, 4-byte aligned). Total over arbitrary
/// input: every malformed stream — truncation, varint overrun past the
/// buffer, implausible bit widths, trailing garbage, values outside u32
/// range — fails with `Corruption` before any out-of-bounds access, and
/// `out` is fully written only on OK.
Status DecodeU32Section(SectionCodec codec, const std::byte* encoded,
                        std::size_t encoded_bytes, uint32_t lanes, void* out,
                        std::size_t decoded_bytes);

/// Smallest width (0..32) holding `max_value`.
uint32_t BitWidthFor(uint32_t max_value);

/// Bytes of one bit-packed lane of `count` values at `width` bits each.
constexpr std::size_t BitPackedBytes(std::size_t count, uint32_t width) {
  return (count * width + 7) / 8;
}

/// \brief A fixed-width bit-packed u32 array — the decoded-side twin of a
/// `kBitPack` lane, and the "packed form" the batch-decrement peel kernel
/// consumes directly (abcore/peel_kernel.h, ThresholdPeelPacked).
///
/// Values live `width` bits apart in a u64 word array; `Get`/`Set` are
/// branch-light shift/mask read-modify-writes. A degree array packed at
/// ⌈log₂(maxdeg+1)⌉ bits is 3–6× smaller than a u32 vector, so a whole
/// peel's working set often fits a cache level it otherwise misses.
class PackedU32Array {
 public:
  PackedU32Array() = default;

  /// Packs `values[0, count)` at the tightest width covering their max.
  void Assign(const uint32_t* values, std::size_t count);

  std::size_t size() const { return size_; }
  uint32_t width() const { return width_; }
  /// Bytes held by the word array (the packed footprint).
  std::size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  uint32_t Get(std::size_t i) const {
    const std::size_t bit = i * width_;
    const std::size_t word = bit >> 6;
    const uint32_t shift = static_cast<uint32_t>(bit & 63);
    // One guard word is always allocated, so the straddling read is safe.
    uint64_t v = words_[word] >> shift;
    if (shift + width_ > 64) v |= words_[word + 1] << (64 - shift);
    return static_cast<uint32_t>(v & mask_);
  }

  /// `v` must fit in `width()` bits (guaranteed for degree counters, which
  /// only ever decrease from the packed maximum).
  void Set(std::size_t i, uint32_t v) {
    const std::size_t bit = i * width_;
    const std::size_t word = bit >> 6;
    const uint32_t shift = static_cast<uint32_t>(bit & 63);
    words_[word] = (words_[word] & ~(mask_ << shift)) |
                   (static_cast<uint64_t>(v) << shift);
    if (shift + width_ > 64) {
      const uint32_t spill = 64 - shift;
      words_[word + 1] = (words_[word + 1] & ~(mask_ >> spill)) |
                         (static_cast<uint64_t>(v) >> spill);
    }
  }

  /// Decrements element `i` by one and returns the new value. The packed
  /// peel kernel's inner decrement: one RMW, no unpack round trip.
  uint32_t Decrement(std::size_t i) {
    const uint32_t v = Get(i) - 1;
    Set(i, v);
    return v;
  }

  /// Unpacks `[first, first + n)` into `out` — the batch form the packed
  /// peel kernel's seed scan uses (word-at-a-time, amortised shifts).
  void GetBatch(std::size_t first, std::size_t n, uint32_t* out) const;

 private:
  std::vector<uint64_t> words_;  ///< packed bits + one guard word
  std::size_t size_ = 0;
  uint32_t width_ = 0;
  uint64_t mask_ = 0;  ///< (1 << width_) - 1, cached for Get/Set
};

}  // namespace abcs

#endif  // ABCS_IO_CODEC_H_
