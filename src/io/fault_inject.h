#ifndef ABCS_IO_FAULT_INJECT_H_
#define ABCS_IO_FAULT_INJECT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace abcs {

/// \brief Runtime-armed crash/short-write injection for the durability
/// paths (bundle save, compaction, mapped open).
///
/// The seam is always compiled in but costs a single relaxed atomic-bool
/// branch per point while disarmed, so production binaries pay nothing
/// measurable. Tests arm one point at a time — programmatically (the
/// crash-matrix test arms inside a fork()ed child) or via the
/// `ABCS_FAULT_INJECT` environment variable for external kill-testing:
///
///     ABCS_FAULT_INJECT="bundle_save.after_fsync"          # crash there
///     ABCS_FAULT_INJECT="bundle_save.sections=short:17"    # write 17
///                                                  # bytes, then crash
///
/// A triggered fault terminates the process immediately with
/// `_exit(kFaultCrashExitCode)` — no atexit handlers, no flushes — which
/// is exactly the torn state a SIGKILL mid-save leaves behind.
class FaultInjector {
 public:
  enum class Action : uint8_t {
    kCrash,           ///< _exit at the named point
    kShortWrite,      ///< truncate the labelled write, then _exit
  };

  static FaultInjector& Instance();

  /// Arms a single fault. `short_bytes` is the byte budget for
  /// kShortWrite (how much of the labelled write survives).
  void Arm(const std::string& point, Action action, uint64_t short_bytes = 0);

  /// Parses ABCS_FAULT_INJECT (see class comment). No-op when unset.
  void ArmFromEnv();

  void Disarm();

  /// Crash seam: terminates the process iff armed with kCrash at `point`.
  void Hit(const char* point);

  /// Short-write seam: the caller is about to write `want` bytes under
  /// label `point`. Returns `want` unless armed with kShortWrite at this
  /// point, in which case the (smaller) armed budget comes back and the
  /// caller must write exactly that prefix and then call CrashNow().
  uint64_t WriteBudget(const char* point, uint64_t want);

  [[noreturn]] void CrashNow();

  bool armed() const;

 private:
  FaultInjector() = default;

  mutable std::mutex mu_;
  std::string point_;
  Action action_ = Action::kCrash;
  uint64_t short_bytes_ = 0;
};

/// Exit status of a process killed by a triggered fault; the crash-matrix
/// test uses it to tell an injected death from an ordinary failure.
inline constexpr int kFaultCrashExitCode = 86;

namespace fault_detail {
extern std::atomic<bool> g_enabled;
}  // namespace fault_detail

/// Zero-cost-when-disarmed crash point.
inline void FaultPoint(const char* point) {
  if (fault_detail::g_enabled.load(std::memory_order_relaxed)) {
    FaultInjector::Instance().Hit(point);
  }
}

/// Zero-cost-when-disarmed short-write point (see WriteBudget).
inline uint64_t FaultWriteBudget(const char* point, uint64_t want) {
  if (fault_detail::g_enabled.load(std::memory_order_relaxed)) {
    return FaultInjector::Instance().WriteBudget(point, want);
  }
  return want;
}

}  // namespace abcs

#endif  // ABCS_IO_FAULT_INJECT_H_
