#ifndef ABCS_IO_FAULT_INJECT_H_
#define ABCS_IO_FAULT_INJECT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace abcs {

/// \brief Runtime-armed crash/short-write injection for the durability
/// paths (bundle save, compaction, mapped open).
///
/// The seam is always compiled in but costs a single relaxed atomic-bool
/// branch per point while disarmed, so production binaries pay nothing
/// measurable. Tests arm one point at a time — programmatically (the
/// crash-matrix test arms inside a fork()ed child) or via the
/// `ABCS_FAULT_INJECT` environment variable for external kill-testing:
///
///     ABCS_FAULT_INJECT="bundle_save.after_fsync"          # crash there
///     ABCS_FAULT_INJECT="bundle_save.sections=short:17"    # write 17
///                                                  # bytes, then crash
///
/// A triggered fault terminates the process immediately with
/// `_exit(kFaultCrashExitCode)` — no atexit handlers, no flushes — which
/// is exactly the torn state a SIGKILL mid-save leaves behind.
class FaultInjector {
 public:
  enum class Action : uint8_t {
    kCrash,           ///< _exit at the named point
    kShortWrite,      ///< truncate the labelled write, then _exit
  };

  static FaultInjector& Instance();

  /// Arms a single fault. `short_bytes` is the byte budget for
  /// kShortWrite (how much of the labelled write survives).
  void Arm(const std::string& point, Action action, uint64_t short_bytes = 0);

  /// Parses ABCS_FAULT_INJECT (see class comment). No-op when unset.
  void ArmFromEnv();

  void Disarm();

  /// Crash seam: terminates the process iff armed with kCrash at `point`.
  void Hit(const char* point);

  /// Short-write seam: the caller is about to write `want` bytes under
  /// label `point`. Returns `want` unless armed with kShortWrite at this
  /// point, in which case the (smaller) armed budget comes back and the
  /// caller must write exactly that prefix and then call CrashNow().
  uint64_t WriteBudget(const char* point, uint64_t want);

  [[noreturn]] void CrashNow();

  bool armed() const;

 private:
  FaultInjector() = default;

  mutable std::mutex mu_;
  std::string point_;
  Action action_ = Action::kCrash;
  uint64_t short_bytes_ = 0;
};

/// Exit status of a process killed by a triggered fault; the crash-matrix
/// test uses it to tell an injected death from an ordinary failure.
inline constexpr int kFaultCrashExitCode = 86;

namespace fault_detail {
extern std::atomic<bool> g_enabled;
}  // namespace fault_detail

/// Zero-cost-when-disarmed crash point.
inline void FaultPoint(const char* point) {
  if (fault_detail::g_enabled.load(std::memory_order_relaxed)) {
    FaultInjector::Instance().Hit(point);
  }
}

/// Zero-cost-when-disarmed short-write point (see WriteBudget).
inline uint64_t FaultWriteBudget(const char* point, uint64_t want) {
  if (fault_detail::g_enabled.load(std::memory_order_relaxed)) {
    return FaultInjector::Instance().WriteBudget(point, want);
  }
  return want;
}

/// \brief Non-crashing socket-fault injection for the serve tier's wire
/// path (`net.*` points in client.cc / server.cc via serve/net_ops.h).
///
/// Where FaultInjector kills the process to emulate power loss, this seam
/// perturbs individual socket calls to emulate a hostile network:
/// connection resets, short send/recv, EINTR storms and injected delays —
/// all deterministic, so chaos tests can assert exact recovery behavior.
///
/// Armed through the same `ABCS_FAULT_INJECT` environment variable
/// (specs whose point starts with "net." route here; comma-separated
/// specs arm several points at once) or programmatically via ArmSpec:
///
///     net.server_send=short:7@3     # every 3rd send truncated to 7 bytes
///     net.client_recv=eintr:2@5     # every 5th recv starts a 2-EINTR storm
///     net.client_send=reset@17      # every 17th send dies with ECONNRESET
///     net.server_send=delay:250     # sleep 250ms before every send
///     scrub.before_pass=flipbyte:4096@2  # 2nd scrub pass: flip byte 4096
///     scrub.before_pass=truncate:64      # truncate the bundle to 64 bytes
///
/// "scrub." points route here too: the daemon's bundle scrubber consults
/// them before each verification pass and corrupts its own file on disk,
/// so the detect → quarantine → `.prev` recovery path runs deterministically
/// under test (see server.cc ScrubberLoop).
///
/// `@N` fires the action on every Nth visit of that point (default 1).
/// Multiple specs may target distinct points; the registry consults them
/// all. Disarmed cost is one relaxed atomic-bool load per point.
class NetFaultInjector {
 public:
  enum class ActionKind : uint8_t {
    kNone,   ///< no fault at this visit
    kReset,  ///< fail the call with ECONNRESET (ECONNREFUSED for connect)
    kShort,  ///< truncate the attempted send/recv length to `arg` bytes
    kEintr,  ///< fail the call (and the next arg-1 visits) with EINTR
    kDelay,  ///< sleep `arg` milliseconds, then perform the call normally
    kFlipByte,  ///< scrub points: XOR the byte at file offset `arg`
    kTruncate,  ///< scrub points: truncate the file to `arg` bytes
  };

  struct Decision {
    ActionKind kind = ActionKind::kNone;
    uint64_t arg = 0;
  };

  static NetFaultInjector& Instance();

  /// Parses and arms one `point=action[:arg][@everyN]` spec (additive —
  /// call repeatedly to arm several points). The point should carry the
  /// conventional "net." prefix so env routing finds it.
  Status ArmSpec(const std::string& spec);

  /// Drops every armed fault.
  void Disarm();

  /// Counts a visit of `point` and returns the action to apply, if any.
  Decision Consult(const char* point);

  /// How many times a fault at `point` has actually fired (tests).
  uint64_t fired(const std::string& point) const;

 private:
  NetFaultInjector() = default;

  struct Fault {
    std::string point;
    ActionKind kind = ActionKind::kNone;
    uint64_t arg = 0;
    uint64_t every = 1;
    uint64_t visits = 0;
    uint64_t storm_left = 0;  ///< remaining EINTRs in the current storm
    uint64_t fired = 0;
  };

  mutable std::mutex mu_;
  std::vector<Fault> faults_;
};

namespace fault_detail {
extern std::atomic<bool> g_net_enabled;
}  // namespace fault_detail

/// Zero-cost-when-disarmed socket fault point (see NetFaultInjector).
inline NetFaultInjector::Decision NetFaultPoint(const char* point) {
  if (fault_detail::g_net_enabled.load(std::memory_order_relaxed)) {
    return NetFaultInjector::Instance().Consult(point);
  }
  return {};
}

}  // namespace abcs

#endif  // ABCS_IO_FAULT_INJECT_H_
