#include "io/fault_inject.h"

#include <unistd.h>

#include <cstdlib>
#include <cstring>

namespace abcs {

namespace fault_detail {
std::atomic<bool> g_enabled{false};
}  // namespace fault_detail

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const std::string& point, Action action,
                        uint64_t short_bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    point_ = point;
    action_ = action;
    short_bytes_ = short_bytes;
  }
  fault_detail::g_enabled.store(true, std::memory_order_release);
}

void FaultInjector::ArmFromEnv() {
  const char* spec = std::getenv("ABCS_FAULT_INJECT");
  if (spec == nullptr || *spec == '\0') return;
  const std::string s(spec);
  const std::size_t eq = s.find('=');
  if (eq == std::string::npos) {
    Arm(s, Action::kCrash);
    return;
  }
  const std::string point = s.substr(0, eq);
  const std::string what = s.substr(eq + 1);
  if (what.rfind("short:", 0) == 0) {
    Arm(point, Action::kShortWrite,
        std::strtoull(what.c_str() + 6, nullptr, 10));
  } else {
    Arm(point, Action::kCrash);
  }
}

void FaultInjector::Disarm() {
  fault_detail::g_enabled.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  point_.clear();
}

void FaultInjector::Hit(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (action_ == Action::kCrash && point_ == point) {
    ::_exit(kFaultCrashExitCode);
  }
}

uint64_t FaultInjector::WriteBudget(const char* point, uint64_t want) {
  std::lock_guard<std::mutex> lock(mu_);
  if (action_ == Action::kShortWrite && point_ == point &&
      short_bytes_ < want) {
    return short_bytes_;
  }
  return want;
}

void FaultInjector::CrashNow() { ::_exit(kFaultCrashExitCode); }

bool FaultInjector::armed() const {
  return fault_detail::g_enabled.load(std::memory_order_acquire);
}

}  // namespace abcs
