#include "io/fault_inject.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace abcs {

namespace fault_detail {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_net_enabled{false};
}  // namespace fault_detail

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const std::string& point, Action action,
                        uint64_t short_bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    point_ = point;
    action_ = action;
    short_bytes_ = short_bytes;
  }
  fault_detail::g_enabled.store(true, std::memory_order_release);
}

void FaultInjector::ArmFromEnv() {
  const char* env = std::getenv("ABCS_FAULT_INJECT");
  if (env == nullptr || *env == '\0') return;
  // Comma-separated specs; "net."- and "scrub."-prefixed points arm the
  // (non-crashing) counting injector, anything else the crash injector.
  // The crash injector holds a single fault, so the last non-net spec wins.
  const std::string all(env);
  std::size_t start = 0;
  while (start <= all.size()) {
    std::size_t comma = all.find(',', start);
    if (comma == std::string::npos) comma = all.size();
    const std::string s = all.substr(start, comma - start);
    start = comma + 1;
    if (s.empty()) continue;
    if (s.rfind("net.", 0) == 0 || s.rfind("scrub.", 0) == 0) {
      // A malformed net spec is a test-harness bug; fail loudly rather
      // than silently running the chaos soak with nothing armed.
      const Status st = NetFaultInjector::Instance().ArmSpec(s);
      if (!st.ok()) {
        std::fprintf(stderr, "ABCS_FAULT_INJECT: %s\n", st.ToString().c_str());
        ::_exit(2);
      }
      continue;
    }
    const std::size_t eq = s.find('=');
    if (eq == std::string::npos) {
      Arm(s, Action::kCrash);
      continue;
    }
    const std::string point = s.substr(0, eq);
    const std::string what = s.substr(eq + 1);
    if (what.rfind("short:", 0) == 0) {
      Arm(point, Action::kShortWrite,
          std::strtoull(what.c_str() + 6, nullptr, 10));
    } else {
      Arm(point, Action::kCrash);
    }
  }
}

void FaultInjector::Disarm() {
  fault_detail::g_enabled.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  point_.clear();
}

void FaultInjector::Hit(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (action_ == Action::kCrash && point_ == point) {
    ::_exit(kFaultCrashExitCode);
  }
}

uint64_t FaultInjector::WriteBudget(const char* point, uint64_t want) {
  std::lock_guard<std::mutex> lock(mu_);
  if (action_ == Action::kShortWrite && point_ == point &&
      short_bytes_ < want) {
    return short_bytes_;
  }
  return want;
}

void FaultInjector::CrashNow() { ::_exit(kFaultCrashExitCode); }

bool FaultInjector::armed() const {
  return fault_detail::g_enabled.load(std::memory_order_acquire);
}

NetFaultInjector& NetFaultInjector::Instance() {
  static NetFaultInjector* instance = new NetFaultInjector();
  return *instance;
}

Status NetFaultInjector::ArmSpec(const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("net fault spec needs point=action: " +
                                   spec);
  }
  Fault f;
  f.point = spec.substr(0, eq);
  std::string action = spec.substr(eq + 1);
  const std::size_t at = action.find('@');
  if (at != std::string::npos) {
    char* end = nullptr;
    f.every = std::strtoull(action.c_str() + at + 1, &end, 10);
    if (f.every == 0 || end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad @every in net fault spec: " + spec);
    }
    action.resize(at);
  }
  const std::size_t colon = action.find(':');
  std::string name = action.substr(0, colon);
  uint64_t arg = 0;
  if (colon != std::string::npos) {
    char* end = nullptr;
    arg = std::strtoull(action.c_str() + colon + 1, &end, 10);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad argument in net fault spec: " +
                                     spec);
    }
  }
  if (name == "reset") {
    f.kind = ActionKind::kReset;
  } else if (name == "short") {
    f.kind = ActionKind::kShort;
    f.arg = arg ? arg : 1;
  } else if (name == "eintr") {
    f.kind = ActionKind::kEintr;
    f.arg = arg ? arg : 1;
  } else if (name == "delay") {
    f.kind = ActionKind::kDelay;
    f.arg = arg;
  } else if (name == "flipbyte") {
    f.kind = ActionKind::kFlipByte;
    f.arg = arg;
  } else if (name == "truncate") {
    f.kind = ActionKind::kTruncate;
    f.arg = arg;
  } else {
    return Status::InvalidArgument("unknown net fault action: " + spec);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    faults_.push_back(std::move(f));
  }
  fault_detail::g_net_enabled.store(true, std::memory_order_release);
  return Status::OK();
}

void NetFaultInjector::Disarm() {
  fault_detail::g_net_enabled.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
}

NetFaultInjector::Decision NetFaultInjector::Consult(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Fault& f : faults_) {
    if (f.point != point) continue;
    ++f.visits;
    if (f.storm_left > 0) {
      --f.storm_left;
      ++f.fired;
      return {ActionKind::kEintr, 0};
    }
    if (f.visits % f.every != 0) continue;
    ++f.fired;
    if (f.kind == ActionKind::kEintr) {
      f.storm_left = f.arg - 1;  // this visit is the storm's first EINTR
      return {ActionKind::kEintr, 0};
    }
    return {f.kind, f.arg};
  }
  return {};
}

uint64_t NetFaultInjector::fired(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const Fault& f : faults_) {
    if (f.point == point) n += f.fired;
  }
  return n;
}

}  // namespace abcs
