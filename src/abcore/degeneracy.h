#ifndef ABCS_ABCORE_DEGENERACY_H_
#define ABCS_ABCORE_DEGENERACY_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief Unipartite k-core numbers of every vertex, computed by the O(m)
/// bin-sort peeling algorithm of Khaouid et al. (the paper's [21]).
///
/// Because both layers of a (τ,τ)-core carry the same degree threshold τ,
/// the (τ,τ)-core of a bipartite graph equals its unipartite τ-core, so
/// `core[v] ≥ τ  ⇔  v ∈ (τ,τ)-core`.
std::vector<uint32_t> KCoreNumbers(const BipartiteGraph& g);

/// The degeneracy δ of `g` (Definition 7): the largest τ with a nonempty
/// (τ,τ)-core, i.e. the maximum k-core number. 0 for an empty graph.
uint32_t Degeneracy(const BipartiteGraph& g);

}  // namespace abcs

#endif  // ABCS_ABCORE_DEGENERACY_H_
