#include "abcore/offset_oracle.h"

#include <algorithm>

namespace abcs {

uint32_t OffsetOracle::AlphaOffset(VertexId v, uint32_t alpha) const {
  if (alpha == 0) return 0;
  const uint32_t delta = decomp_->delta;
  if (delta == 0) return 0;
  if (alpha <= delta) return decomp_->sa(alpha, v);
  // α > δ: the answer is the largest stored β with s_b(v,β) ≥ α; the
  // predicate is monotone (non-increasing in β), so binary search.
  uint32_t lo = 1, hi = delta, best = 0;
  while (lo <= hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (decomp_->sb(mid, v) >= alpha) {
      best = mid;
      lo = mid + 1;
    } else {
      if (mid == 1) break;
      hi = mid - 1;
    }
  }
  return best;
}

uint32_t OffsetOracle::BetaOffset(VertexId v, uint32_t beta) const {
  if (beta == 0) return 0;
  const uint32_t delta = decomp_->delta;
  if (delta == 0) return 0;
  if (beta <= delta) return decomp_->sb(beta, v);
  uint32_t lo = 1, hi = delta, best = 0;
  while (lo <= hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (decomp_->sa(mid, v) >= beta) {
      best = mid;
      lo = mid + 1;
    } else {
      if (mid == 1) break;
      hi = mid - 1;
    }
  }
  return best;
}

bool OffsetOracle::InCore(VertexId v, uint32_t alpha, uint32_t beta) const {
  if (alpha == 0 || beta == 0) return false;
  if (std::min(alpha, beta) > decomp_->delta) return false;  // Lemma 4
  if (alpha <= beta) return AlphaOffset(v, alpha) >= beta;
  return BetaOffset(v, beta) >= alpha;
}

std::vector<std::pair<uint32_t, uint32_t>> OffsetOracle::Skyline(
    VertexId v) const {
  // Walk α upward while v is in some (α,1)-core; s_a(v,·) is
  // non-increasing, so maximal pairs are exactly where it strictly drops.
  std::vector<std::pair<uint32_t, uint32_t>> skyline;
  const uint32_t amax = BetaOffset(v, 1);  // largest α with v ∈ (α,1)-core
  uint32_t alpha = 1;
  while (alpha <= amax) {
    const uint32_t beta = AlphaOffset(v, alpha);
    if (beta == 0) break;
    // Find the largest α' with the same s_a value (galloping then binary
    // search keeps this O(k log amax) for a k-point skyline).
    uint32_t lo = alpha, hi = amax;
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo + 1) / 2;
      if (AlphaOffset(v, mid) == beta) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    skyline.emplace_back(lo, beta);
    alpha = lo + 1;
  }
  return skyline;
}

}  // namespace abcs
