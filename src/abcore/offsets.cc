#include "abcore/offsets.h"

#include <algorithm>
#include <atomic>
#include <ranges>
#include <thread>

#include "abcore/degeneracy.h"
#include "abcore/peel_kernel.h"

namespace abcs {

namespace {

/// Offset computation on top of the shared level-wise kernel.
///
/// One side of the bipartition is *fixed*: its vertices must keep degree
/// ≥ k throughout (upper for α-offsets, lower for β-offsets). The other
/// side is *ranked*: peeling proceeds in levels L = 1, 2, ... and the level
/// at which a vertex dies is its offset — the maximal second core parameter
/// for which it is still in the core. Fixed-side deaths during level L also
/// record offset L. Vertices eliminated while establishing the initial
/// (k,1)- or (1,k)-core get offset 0. O(m).
std::vector<uint32_t> ComputeOffsetsImpl(const BipartiteGraph& g, uint32_t k,
                                         bool fix_upper,
                                         const std::vector<uint8_t>* scope) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> offset(n, 0);
  std::vector<uint8_t> alive(n, 1);
  std::vector<uint32_t> deg(n, 0);

  auto in_scope = [&](VertexId v) { return scope == nullptr || (*scope)[v]; };
  auto is_fixed = [&](VertexId v) { return g.IsUpper(v) == fix_upper; };

  uint32_t max_ranked_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (!in_scope(v)) {
      alive[v] = 0;
      continue;
    }
    uint32_t d = 0;
    if (scope == nullptr) {
      d = g.Degree(v);
    } else {
      for (const Arc& a : g.Neighbors(v)) {
        if ((*scope)[a.to]) ++d;
      }
    }
    deg[v] = d;
    if (!is_fixed(v)) max_ranked_deg = std::max(max_ranked_deg, d);
  }

  LevelPeeler peeler(
      deg, alive, k, max_ranked_deg, GraphNeighbors(g), is_fixed,
      [&](VertexId v, uint32_t level) { offset[v] = level; });
  peeler.Start(std::views::iota(VertexId{0}, n));
  for (uint32_t level = 1; level <= max_ranked_deg && peeler.alive_count() > 0;
       ++level) {
    peeler.RunLevel(level);
  }
  return offset;
}

}  // namespace

std::vector<uint32_t> ComputeAlphaOffsets(const BipartiteGraph& g,
                                          uint32_t alpha) {
  return ComputeOffsetsImpl(g, alpha, /*fix_upper=*/true, nullptr);
}

std::vector<uint32_t> ComputeBetaOffsets(const BipartiteGraph& g,
                                         uint32_t beta) {
  return ComputeOffsetsImpl(g, beta, /*fix_upper=*/false, nullptr);
}

std::vector<uint32_t> ComputeAlphaOffsetsScoped(
    const BipartiteGraph& g, uint32_t alpha,
    const std::vector<uint8_t>& scope) {
  return ComputeOffsetsImpl(g, alpha, /*fix_upper=*/true, &scope);
}

std::vector<uint32_t> ComputeBetaOffsetsScoped(
    const BipartiteGraph& g, uint32_t beta,
    const std::vector<uint8_t>& scope) {
  return ComputeOffsetsImpl(g, beta, /*fix_upper=*/false, &scope);
}

BicoreDecomposition ComputeBicoreDecomposition(const BipartiteGraph& g) {
  return ComputeBicoreDecompositionParallel(g, 1);
}

BicoreDecomposition ComputeBicoreDecompositionParallel(
    const BipartiteGraph& g, unsigned num_threads) {
  BicoreDecomposition d;
  uint32_t delta = 0;
  for (uint32_t c : KCoreNumbers(g)) delta = std::max(delta, c);
  d.delta = delta;
  d.sa.resize(delta);
  d.sb.resize(delta);
  if (delta == 0) return d;

  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  num_threads = std::max(1u, std::min(num_threads, 2 * delta));

  // 2δ independent tasks: task 2k computes sa at τ=k+1, task 2k+1 sb.
  std::atomic<uint32_t> next_task{0};
  auto worker = [&]() {
    for (;;) {
      const uint32_t task = next_task.fetch_add(1);
      if (task >= 2 * delta) return;
      const uint32_t tau = task / 2 + 1;
      if (task % 2 == 0) {
        d.sa[tau - 1] = ComputeAlphaOffsets(g, tau);
      } else {
        d.sb[tau - 1] = ComputeBetaOffsets(g, tau);
      }
    }
  };
  if (num_threads == 1) {
    worker();  // inline on the caller: no spawn, paper-faithful timing
    return d;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return d;
}

}  // namespace abcs
