#include "abcore/offsets.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "abcore/degeneracy.h"

namespace abcs {

namespace {

/// Shared level-wise peeling kernel.
///
/// One side of the bipartition is *fixed*: its vertices must keep degree
/// ≥ k throughout (upper for α-offsets, lower for β-offsets). The other
/// side is *ranked*: peeling proceeds in levels L = 1, 2, ... and the level
/// at which a vertex dies is its offset — the maximal second core parameter
/// for which it is still in the core. Fixed-side deaths during level L also
/// record offset L. Vertices eliminated while establishing the initial
/// (k,1)- or (1,k)-core get offset 0.
///
/// Runs in O(m) using degree buckets with lazy (re-push on decrement)
/// entries.
std::vector<uint32_t> ComputeOffsetsImpl(const BipartiteGraph& g, uint32_t k,
                                         bool fix_upper,
                                         const std::vector<uint8_t>* scope) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> offset(n, 0);
  std::vector<uint8_t> alive(n, 1);
  std::vector<uint32_t> deg(n, 0);

  auto in_scope = [&](VertexId v) { return scope == nullptr || (*scope)[v]; };
  auto is_fixed = [&](VertexId v) { return g.IsUpper(v) == fix_upper; };

  uint32_t alive_count = 0;
  uint32_t max_ranked_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (!in_scope(v)) {
      alive[v] = 0;
      continue;
    }
    uint32_t d = 0;
    if (scope == nullptr) {
      d = g.Degree(v);
    } else {
      for (const Arc& a : g.Neighbors(v)) {
        if ((*scope)[a.to]) ++d;
      }
    }
    deg[v] = d;
    ++alive_count;
    if (!is_fixed(v)) max_ranked_deg = std::max(max_ranked_deg, d);
  }

  // Initial peel: fixed side needs deg >= k, ranked side needs deg >= 1.
  std::vector<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    if (!alive[v]) continue;
    const uint32_t need = is_fixed(v) ? k : 1;
    if (deg[v] < need) {
      alive[v] = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    VertexId v = queue.back();
    queue.pop_back();
    --alive_count;
    for (const Arc& a : g.Neighbors(v)) {
      VertexId w = a.to;
      if (!alive[w]) continue;
      --deg[w];
      const uint32_t need = is_fixed(w) ? k : 1;
      if (deg[w] < need) {
        alive[w] = 0;
        queue.push_back(w);
      }
    }
  }

  // Bucket the surviving ranked-side vertices by current degree.
  std::vector<std::vector<VertexId>> buckets(max_ranked_deg + 2);
  for (VertexId v = 0; v < n; ++v) {
    if (alive[v] && !is_fixed(v)) buckets[deg[v]].push_back(v);
  }

  for (uint32_t level = 1; level <= max_ranked_deg && alive_count > 0;
       ++level) {
    // Invariant: every alive ranked vertex has deg >= level, so removal
    // candidates sit exactly in buckets[level] (stale entries are skipped).
    for (std::size_t i = 0; i < buckets[level].size(); ++i) {
      VertexId v = buckets[level][i];
      if (!alive[v] || deg[v] != level) continue;
      alive[v] = 0;
      offset[v] = level;
      queue.push_back(v);
      while (!queue.empty()) {
        VertexId x = queue.back();
        queue.pop_back();
        --alive_count;
        for (const Arc& a : g.Neighbors(x)) {
          VertexId w = a.to;
          if (!alive[w]) continue;
          --deg[w];
          if (is_fixed(w)) {
            if (deg[w] < k) {
              alive[w] = 0;
              offset[w] = level;
              queue.push_back(w);
            }
          } else if (deg[w] <= level) {
            alive[w] = 0;
            offset[w] = level;
            queue.push_back(w);
          } else {
            buckets[deg[w]].push_back(w);
          }
        }
      }
    }
    buckets[level].clear();
  }
  return offset;
}

}  // namespace

std::vector<uint32_t> ComputeAlphaOffsets(const BipartiteGraph& g,
                                          uint32_t alpha) {
  return ComputeOffsetsImpl(g, alpha, /*fix_upper=*/true, nullptr);
}

std::vector<uint32_t> ComputeBetaOffsets(const BipartiteGraph& g,
                                         uint32_t beta) {
  return ComputeOffsetsImpl(g, beta, /*fix_upper=*/false, nullptr);
}

std::vector<uint32_t> ComputeAlphaOffsetsScoped(
    const BipartiteGraph& g, uint32_t alpha,
    const std::vector<uint8_t>& scope) {
  return ComputeOffsetsImpl(g, alpha, /*fix_upper=*/true, &scope);
}

std::vector<uint32_t> ComputeBetaOffsetsScoped(
    const BipartiteGraph& g, uint32_t beta,
    const std::vector<uint8_t>& scope) {
  return ComputeOffsetsImpl(g, beta, /*fix_upper=*/false, &scope);
}

BicoreDecomposition ComputeBicoreDecomposition(const BipartiteGraph& g) {
  BicoreDecomposition d;
  uint32_t delta = 0;
  for (uint32_t c : KCoreNumbers(g)) delta = std::max(delta, c);
  d.delta = delta;
  d.sa.reserve(delta);
  d.sb.reserve(delta);
  for (uint32_t tau = 1; tau <= delta; ++tau) {
    d.sa.push_back(ComputeAlphaOffsets(g, tau));
    d.sb.push_back(ComputeBetaOffsets(g, tau));
  }
  return d;
}

BicoreDecomposition ComputeBicoreDecompositionParallel(
    const BipartiteGraph& g, unsigned num_threads) {
  BicoreDecomposition d;
  uint32_t delta = 0;
  for (uint32_t c : KCoreNumbers(g)) delta = std::max(delta, c);
  d.delta = delta;
  d.sa.resize(delta);
  d.sb.resize(delta);
  if (delta == 0) return d;

  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  num_threads = std::max(1u, std::min(num_threads, 2 * delta));

  // 2δ independent tasks: task 2k computes sa at τ=k+1, task 2k+1 sb.
  std::atomic<uint32_t> next_task{0};
  auto worker = [&]() {
    for (;;) {
      const uint32_t task = next_task.fetch_add(1);
      if (task >= 2 * delta) return;
      const uint32_t tau = task / 2 + 1;
      if (task % 2 == 0) {
        d.sa[tau - 1] = ComputeAlphaOffsets(g, tau);
      } else {
        d.sb[tau - 1] = ComputeBetaOffsets(g, tau);
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return d;
}

}  // namespace abcs
