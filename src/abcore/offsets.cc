#include "abcore/offsets.h"

#include <algorithm>
#include <atomic>
#include <ranges>
#include <thread>

#include "abcore/degeneracy.h"
#include "abcore/peel_kernel.h"

namespace abcs {

namespace {

/// Offset computation on top of the shared level-wise kernel.
///
/// One side of the bipartition is *fixed*: its vertices must keep degree
/// ≥ k throughout (upper for α-offsets, lower for β-offsets). The other
/// side is *ranked*: peeling proceeds in levels L = 1, 2, ... and the level
/// at which a vertex dies is its offset — the maximal second core parameter
/// for which it is still in the core. Fixed-side deaths during level L also
/// record offset L. Vertices eliminated while establishing the initial
/// (k,1)- or (1,k)-core get offset 0. O(m). All per-call state lives in
/// `ws`; the result is `ws.offset`.
void ComputeOffsetsInto(const BipartiteGraph& g, uint32_t k, bool fix_upper,
                        const std::vector<uint8_t>* scope,
                        OffsetWorkspace& ws) {
  const uint32_t n = g.NumVertices();
  ws.offset.assign(n, 0);
  ws.alive.assign(n, 1);
  ws.deg.assign(n, 0);

  auto in_scope = [&](VertexId v) { return scope == nullptr || (*scope)[v]; };
  auto is_fixed = [&](VertexId v) { return g.IsUpper(v) == fix_upper; };

  uint32_t max_ranked_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (!in_scope(v)) {
      ws.alive[v] = 0;
      continue;
    }
    uint32_t d = 0;
    if (scope == nullptr) {
      d = g.Degree(v);
    } else {
      for (const Arc& a : g.Neighbors(v)) {
        if ((*scope)[a.to]) ++d;
      }
    }
    ws.deg[v] = d;
    if (!is_fixed(v)) max_ranked_deg = std::max(max_ranked_deg, d);
  }

  LevelPeeler peeler(
      ws.deg, ws.alive, k, max_ranked_deg, GraphNeighbors(g), is_fixed,
      [&](VertexId v, uint32_t level) { ws.offset[v] = level; }, &ws.peel);
  peeler.Start(std::views::iota(VertexId{0}, n));
  for (uint32_t level = 1; level <= max_ranked_deg && peeler.alive_count() > 0;
       ++level) {
    peeler.RunLevel(level);
  }
}

std::vector<uint32_t> ComputeOffsetsImpl(const BipartiteGraph& g, uint32_t k,
                                         bool fix_upper,
                                         const std::vector<uint8_t>* scope) {
  OffsetWorkspace ws;
  ComputeOffsetsInto(g, k, fix_upper, scope, ws);
  return std::move(ws.offset);
}

// ------------------------------------------------- incremental chains --

/// Per-worker state for one side's τ-chain (or a contiguous chunk of it).
///
/// `deg`/`alive`/`frontier` hold the *persistent* (τ,1)-core: tightening
/// from τ to τ+1 only removes the vertices that newly violate the fixed
/// constraint, cascading through the shared ThresholdPeelRange kernel, so
/// carrying the core forward costs O(removed vertices + their arcs)
/// instead of a fresh O(m) peel. Each level's ranked peel is destructive,
/// so it runs on the `work_*` copies — restored in O(|core|) per τ, not
/// O(n): `work_alive` returns to all-zero by itself because every frontier
/// vertex dies during the ranked peel.
struct ChainState {
  std::vector<uint32_t> deg;
  std::vector<uint8_t> alive;
  std::vector<VertexId> frontier;
  std::vector<uint32_t> work_deg;
  std::vector<uint8_t> work_alive;
  std::vector<VertexId> queue;
  LevelPeelScratch peel;
};

/// Runs levels [tau_lo, tau_hi] of one chain, writing each level's offsets
/// into the pre-laid-out arena slices. The arena layout already encodes
/// chain membership — Levels(v) ≥ τ ⇔ v ∈ (τ,1)-core (the slice lengths
/// come from the τ = 1 offsets of the opposite side) — so the chunk seeds
/// its starting core *directly from the layout* in O(n + vol(core_lo))
/// instead of peeling the whole graph down, then runs incrementally;
/// total work is the seed plus Σ_τ |E(core_τ)|.
void RunChainChunk(const BipartiteGraph& g, bool fix_upper, uint32_t tau_lo,
                   uint32_t tau_hi, const OffsetArena& arena,
                   uint32_t* arena_values, ChainState& st) {
  const uint32_t n = g.NumVertices();
  auto is_fixed = [&](VertexId v) { return g.IsUpper(v) == fix_upper; };
  // Build-time arenas are always owned; hoist the raw pointer (like
  // arena_values) so the hot peel callback skips the ownership branch.
  const uint32_t* const arena_start = arena.start.data();

  const auto levels = [arena_start](VertexId v) {
    return arena_start[v + 1] - arena_start[v];
  };
  st.alive.assign(n, 0);
  st.deg.resize(n);
  st.work_deg.resize(n);
  st.work_alive.assign(n, 0);
  st.frontier.clear();
  for (VertexId v = 0; v < n; ++v) {
    if (levels(v) >= tau_lo) {
      st.alive[v] = 1;
      st.frontier.push_back(v);
    }
  }
  for (const VertexId v : st.frontier) {
    uint32_t d = 0;
    for (const Arc& a : g.Neighbors(v)) {
      if (levels(a.to) >= tau_lo) ++d;
    }
    st.deg[v] = d;
  }

  for (uint32_t tau = tau_lo; tau <= tau_hi; ++tau) {
    // Tighten the carried core to the (τ,1)-core (resp. (1,τ)): only the
    // frontier needs scanning, and only newly-failing vertices cascade.
    ThresholdPeelRange(
        st.frontier, st.deg, st.alive, GraphNeighbors(g),
        [&](VertexId v) { return is_fixed(v) ? tau : 1u; }, [](VertexId) {},
        &st.queue);
    std::erase_if(st.frontier, [&](VertexId v) { return !st.alive[v]; });
    if (st.frontier.empty()) break;

    // Ranked peel on a copy of the surviving core; the removal level of a
    // vertex is its offset at this τ. Frontier vertices satisfy the base
    // constraints exactly, so every recorded offset is ≥ 1 and lands
    // inside the vertex's arena slice (slice length ≥ τ by construction).
    uint32_t max_ranked_deg = 0;
    for (const VertexId v : st.frontier) {
      st.work_deg[v] = st.deg[v];
      st.work_alive[v] = 1;
      if (!is_fixed(v)) max_ranked_deg = std::max(max_ranked_deg, st.deg[v]);
    }
    LevelPeeler peeler(
        st.work_deg, st.work_alive, tau, max_ranked_deg, GraphNeighbors(g),
        is_fixed,
        [&](VertexId v, uint32_t level) {
          arena_values[arena_start[v] + tau - 1] = level;
        },
        &st.peel);
    peeler.Start(st.frontier);
    for (uint32_t level = 1;
         level <= max_ranked_deg && peeler.alive_count() > 0; ++level) {
      peeler.RunLevel(level);
    }
  }
}

/// CSR layout from per-vertex slice lengths: `len(v)` values per vertex.
template <typename SliceLen>
void LayoutArena(uint32_t n, SliceLen&& len, OffsetArena* arena) {
  std::vector<uint32_t>& start = arena->start.Mutable();
  start.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    start[v + 1] = start[v] + len(v);
  }
  arena->values.Mutable().assign(start[n], 0);
}

/// Shared frame of all three builds: δ, the two O(m) seed peels at τ = 1
/// (which both bound the arena layout — v's α-side slice ends at the last
/// τ with v ∈ (τ,1)-core, i.e. s_b(v,1) — and ARE the τ = 1 slices), and
/// the laid-out arenas with level 1 filled.
BicoreDecomposition LayoutDecomposition(const BipartiteGraph& g) {
  BicoreDecomposition d;
  uint32_t delta = 0;
  for (uint32_t c : KCoreNumbers(g)) delta = std::max(delta, c);
  d.delta = delta;
  const uint32_t n = g.NumVertices();
  if (delta == 0) {
    LayoutArena(n, [](VertexId) { return 0u; }, &d.alpha);
    LayoutArena(n, [](VertexId) { return 0u; }, &d.beta);
    return d;
  }

  const std::vector<uint32_t> sa1 = ComputeAlphaOffsets(g, 1);
  const std::vector<uint32_t> sb1 = ComputeBetaOffsets(g, 1);
  LayoutArena(
      n, [&](VertexId v) { return std::min(delta, sb1[v]); }, &d.alpha);
  LayoutArena(
      n, [&](VertexId v) { return std::min(delta, sa1[v]); }, &d.beta);
  std::vector<uint32_t>& alpha_values = d.alpha.values.Mutable();
  std::vector<uint32_t>& beta_values = d.beta.values.Mutable();
  for (VertexId v = 0; v < n; ++v) {
    if (d.alpha.Levels(v) >= 1) alpha_values[d.alpha.start[v]] = sa1[v];
    if (d.beta.Levels(v) >= 1) beta_values[d.beta.start[v]] = sb1[v];
  }
  return d;
}

}  // namespace

std::vector<uint32_t> ComputeAlphaOffsets(const BipartiteGraph& g,
                                          uint32_t alpha) {
  return ComputeOffsetsImpl(g, alpha, /*fix_upper=*/true, nullptr);
}

std::vector<uint32_t> ComputeBetaOffsets(const BipartiteGraph& g,
                                         uint32_t beta) {
  return ComputeOffsetsImpl(g, beta, /*fix_upper=*/false, nullptr);
}

std::vector<uint32_t> ComputeAlphaOffsetsScoped(
    const BipartiteGraph& g, uint32_t alpha,
    const std::vector<uint8_t>& scope) {
  return ComputeOffsetsImpl(g, alpha, /*fix_upper=*/true, &scope);
}

std::vector<uint32_t> ComputeBetaOffsetsScoped(
    const BipartiteGraph& g, uint32_t beta,
    const std::vector<uint8_t>& scope) {
  return ComputeOffsetsImpl(g, beta, /*fix_upper=*/false, &scope);
}

const std::vector<uint32_t>& ComputeAlphaOffsetsScoped(
    const BipartiteGraph& g, uint32_t alpha, const std::vector<uint8_t>& scope,
    OffsetWorkspace& ws) {
  ComputeOffsetsInto(g, alpha, /*fix_upper=*/true, &scope, ws);
  return ws.offset;
}

const std::vector<uint32_t>& ComputeBetaOffsetsScoped(
    const BipartiteGraph& g, uint32_t beta, const std::vector<uint8_t>& scope,
    OffsetWorkspace& ws) {
  ComputeOffsetsInto(g, beta, /*fix_upper=*/false, &scope, ws);
  return ws.offset;
}

const std::vector<uint32_t>& ComputeAlphaOffsets(const BipartiteGraph& g,
                                                 uint32_t alpha,
                                                 OffsetWorkspace& ws) {
  ComputeOffsetsInto(g, alpha, /*fix_upper=*/true, nullptr, ws);
  return ws.offset;
}

const std::vector<uint32_t>& ComputeBetaOffsets(const BipartiteGraph& g,
                                                uint32_t beta,
                                                OffsetWorkspace& ws) {
  ComputeOffsetsInto(g, beta, /*fix_upper=*/false, nullptr, ws);
  return ws.offset;
}

BicoreDecomposition ComputeBicoreDecomposition(const BipartiteGraph& g) {
  return ComputeBicoreDecompositionParallel(g, 1);
}

BicoreDecomposition ComputeBicoreDecompositionParallel(
    const BipartiteGraph& g, unsigned num_threads) {
  BicoreDecomposition d = LayoutDecomposition(g);
  if (d.delta <= 1) return d;  // τ = 1 already filled by the layout peels

  // Levels [2, δ] of each chain, split into contiguous chunks. Each chunk
  // seeds from scratch (one O(m) tighten) then runs incrementally, so the
  // chunk count trades seeding overhead against parallelism: one chunk per
  // worker and chain keeps the total seeding cost at 2·T·O(m).
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  num_threads = std::max(1u, num_threads);
  const uint32_t span = d.delta - 1;  // τ ∈ [2, δ]
  const uint32_t chunks = std::min<uint32_t>(num_threads, span);

  struct Chunk {
    bool fix_upper;
    uint32_t lo, hi;
    OffsetArena* arena;
    uint32_t* values;  ///< mutable value array, materialised pre-spawn
  };
  // Freshly laid-out arenas are owned, so Mutable() is allocation-free
  // here; taking the pointers on this thread keeps the workers read-only
  // on the ArenaStorage itself.
  uint32_t* const alpha_values = d.alpha.values.Mutable().data();
  uint32_t* const beta_values = d.beta.values.Mutable().data();
  std::vector<Chunk> tasks;
  tasks.reserve(2 * chunks);
  for (uint32_t c = 0; c < chunks; ++c) {
    const uint32_t lo = 2 + c * span / chunks;
    const uint32_t hi = 2 + (c + 1) * span / chunks - 1;
    // Interleave the sides so the heavy low-τ chunks are claimed first.
    tasks.push_back({true, lo, hi, &d.alpha, alpha_values});
    tasks.push_back({false, lo, hi, &d.beta, beta_values});
  }

  // Chunks write disjoint (τ, v) arena cells, so workers share nothing but
  // the task counter; the result is the mathematical offset table and thus
  // bit-identical for every thread count.
  std::atomic<uint32_t> next_task{0};
  auto worker = [&]() {
    ChainState st;
    for (;;) {
      const uint32_t i = next_task.fetch_add(1);
      if (i >= tasks.size()) return;
      const Chunk& task = tasks[i];
      RunChainChunk(g, task.fix_upper, task.lo, task.hi, *task.arena,
                    task.values, st);
    }
  };
  const unsigned spawn =
      std::min<unsigned>(num_threads, static_cast<unsigned>(tasks.size()));
  if (spawn == 1) {
    worker();  // inline on the caller: no spawn, paper-faithful timing
    return d;
  }
  std::vector<std::thread> threads;
  threads.reserve(spawn);
  for (unsigned t = 0; t < spawn; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return d;
}

BicoreDecomposition ComputeBicoreDecompositionNaive(const BipartiteGraph& g) {
  BicoreDecomposition d = LayoutDecomposition(g);
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t>& alpha_values = d.alpha.values.Mutable();
  std::vector<uint32_t>& beta_values = d.beta.values.Mutable();
  OffsetWorkspace ws;
  for (uint32_t tau = 2; tau <= d.delta; ++tau) {
    const std::vector<uint32_t>& sa = ComputeAlphaOffsets(g, tau, ws);
    for (VertexId v = 0; v < n; ++v) {
      if (d.alpha.Levels(v) >= tau) {
        alpha_values[d.alpha.start[v] + tau - 1] = sa[v];
      }
    }
    const std::vector<uint32_t>& sb = ComputeBetaOffsets(g, tau, ws);
    for (VertexId v = 0; v < n; ++v) {
      if (d.beta.Levels(v) >= tau) {
        beta_values[d.beta.start[v] + tau - 1] = sb[v];
      }
    }
  }
  return d;
}

}  // namespace abcs
