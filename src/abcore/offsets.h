#ifndef ABCS_ABCORE_OFFSETS_H_
#define ABCS_ABCORE_OFFSETS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "abcore/peel_kernel.h"
#include "graph/bipartite_graph.h"
#include "io/arena_storage.h"

namespace abcs {

/// \brief α-offsets `s_a(·, α)` for a fixed α (Definition 6).
///
/// `result[v]` is the maximal β such that `v` is contained in the
/// (α,β)-core, or 0 if `v` is not even in the (α,1)-core. Defined for
/// vertices of *both* layers. Computed by level-wise peeling of the
/// (α,1)-core in O(m).
std::vector<uint32_t> ComputeAlphaOffsets(const BipartiteGraph& g,
                                          uint32_t alpha);

/// β-offsets `s_b(·, β)` for a fixed β: `result[v]` is the maximal α such
/// that `v` is in the (α,β)-core (0 if not in the (1,β)-core).
std::vector<uint32_t> ComputeBetaOffsets(const BipartiteGraph& g,
                                         uint32_t beta);

/// \brief Lent buffers for the offset peels: the O(n) offset/degree/alive
/// arrays, the threshold-peel work queue and the level-peel bucket pool.
/// Callers running many peels keep one instance so repeated recomputes
/// stop allocating 3×O(n) arrays per call (capacity is retained across
/// uses) — e.g. the naive decomposition baseline's 2δ peels.
/// `DynamicDeltaIndex` applies the same pattern to its scoped recomputes
/// through its own member buffers (its peel needs boundary-expiry state
/// these plain entry points don't model).
struct OffsetWorkspace {
  std::vector<uint32_t> offset;
  std::vector<uint32_t> deg;
  std::vector<uint8_t> alive;
  std::vector<VertexId> queue;
  LevelPeelScratch peel;
};

/// \brief α-offsets restricted to a vertex subset (`scope[v]` nonzero):
/// computes `s_a(·, α)` of the subgraph induced by the scope. Used by
/// component-local index maintenance. Vertices outside the scope keep
/// offset value 0 (callers pass their previously known offsets
/// separately).
std::vector<uint32_t> ComputeAlphaOffsetsScoped(const BipartiteGraph& g,
                                                uint32_t alpha,
                                                const std::vector<uint8_t>& scope);

/// Scoped variant of ComputeBetaOffsets (see ComputeAlphaOffsetsScoped).
std::vector<uint32_t> ComputeBetaOffsetsScoped(const BipartiteGraph& g,
                                               uint32_t beta,
                                               const std::vector<uint8_t>& scope);

/// Workspace forms: identical results, computed into `ws.offset` (returned
/// by reference, valid until the next call on `ws`) with zero steady-state
/// heap allocations.
const std::vector<uint32_t>& ComputeAlphaOffsetsScoped(
    const BipartiteGraph& g, uint32_t alpha, const std::vector<uint8_t>& scope,
    OffsetWorkspace& ws);
const std::vector<uint32_t>& ComputeBetaOffsetsScoped(
    const BipartiteGraph& g, uint32_t beta, const std::vector<uint8_t>& scope,
    OffsetWorkspace& ws);
const std::vector<uint32_t>& ComputeAlphaOffsets(const BipartiteGraph& g,
                                                 uint32_t alpha,
                                                 OffsetWorkspace& ws);
const std::vector<uint32_t>& ComputeBetaOffsets(const BipartiteGraph& g,
                                                uint32_t beta,
                                                OffsetWorkspace& ws);

/// \brief One side of the decomposition in compact CSR form: vertex `v`
/// owns the slice `values[start[v] .. start[v+1])` holding s(v, τ) for
/// τ = 1 .. Levels(v), where Levels(v) is v's last level with a nonzero
/// offset (clamped to δ). Offsets are non-increasing in τ and every stored
/// value is ≥ 1, so `At` answers any τ exactly: past-the-slice levels are
/// 0 by definition. Total size Σ_v Levels(v) instead of the dense δ·n.
/// Both arrays live in `ArenaStorage`: owned by a fresh build, or borrowed
/// zero-copy views into an opened index bundle (io/index_bundle.h).
struct OffsetArena {
  ArenaStorage<uint32_t> start;   ///< size n+1
  ArenaStorage<uint32_t> values;  ///< concatenated per-vertex slices

  uint32_t Levels(VertexId v) const { return start[v + 1] - start[v]; }
  uint32_t At(uint32_t tau, VertexId v) const {
    const uint32_t base = start[v];
    return (tau >= 1 && tau <= start[v + 1] - base) ? values[base + tau - 1]
                                                    : 0;
  }
  std::size_t Bytes() const {
    return start.size() * sizeof(uint32_t) + values.size() * sizeof(uint32_t);
  }
  friend bool operator==(const OffsetArena&, const OffsetArena&) = default;
};

/// \brief The degeneracy-bounded bicore decomposition: α- and β-offsets for
/// every τ ∈ [1, δ], stored as two compact offset arenas.
///
/// By Lemma 4 every nonempty (α,β)-core has min(α,β) ≤ δ, so this table
/// determines membership of *any* (α,β)-core:
/// `v ∈ (α,β)-core ⇔ (α ≤ β ? sa(α, v) ≥ β : sb(β, v) ≥ α)` whenever
/// min(α,β) ≤ δ, and the core is empty otherwise. This is the shared
/// substrate of the bicore index I_v and the degeneracy-bounded index I_δ.
struct BicoreDecomposition {
  uint32_t delta = 0;
  OffsetArena alpha;  ///< s_a(·, τ) slices
  OffsetArena beta;   ///< s_b(·, τ) slices

  /// s_a(v, τ) for any τ ≥ 1 (exact for τ ≤ δ; 0 beyond a vertex's slice).
  uint32_t sa(uint32_t tau, VertexId v) const { return alpha.At(tau, v); }
  /// s_b(v, τ), symmetrically.
  uint32_t sb(uint32_t tau, VertexId v) const { return beta.At(tau, v); }

  uint32_t NumVertices() const {
    return static_cast<uint32_t>(alpha.start.empty() ? 0
                                                     : alpha.start.size() - 1);
  }
  /// Retained bytes of the offset table (the Fig. 11 memory axis).
  std::size_t MemoryBytes() const { return alpha.Bytes() + beta.Bytes(); }
  friend bool operator==(const BicoreDecomposition&,
                         const BicoreDecomposition&) = default;
};

/// Bytes the pre-arena representation used for the same table: 2δ dense
/// n-arrays of uint32_t. The compaction baseline reported by the benches.
constexpr std::size_t DenseDecompositionBytes(uint32_t delta, uint32_t n) {
  return static_cast<std::size_t>(2) * delta * n * sizeof(uint32_t);
}

/// Peak transient working set of the incremental decomposition build on
/// top of the retained arenas: the two O(n) layout seed arrays plus each
/// worker's chain state (persistent deg/alive and their ranked-peel work
/// copies). The frontier/queue lists and bucket queues are excluded — they
/// are O(|core|), not O(n), and dwarfed by the n-arrays on every registry
/// dataset. For comparison, the old dense build retained 2δ·n·4 bytes
/// (`DenseDecompositionBytes`) *plus* a 9n-byte peel workspace.
constexpr std::size_t DecompositionBuildTransientBytes(uint32_t n,
                                                       unsigned workers) {
  const std::size_t seed = 2u * n * sizeof(uint32_t);
  const std::size_t per_worker =
      static_cast<std::size_t>(n) *
      (2 * sizeof(uint32_t) + 2 * sizeof(uint8_t));
  return seed + workers * per_worker;
}

/// Computes the full δ-bounded decomposition (Algorithm 3's offset phase),
/// output-sensitively: within each side the (τ+1,1)-core is obtained from
/// the (τ,1)-core by an incremental tighten instead of a fresh O(m) peel,
/// so total work is O(m + Σ_τ |E((τ,1)-core)| + |E((1,τ)-core)|) rather
/// than the naive 2δ·m.
BicoreDecomposition ComputeBicoreDecomposition(const BipartiteGraph& g);

/// Parallel variant: each side's τ-chain is split into contiguous τ-chunks
/// distributed over `num_threads` worker threads (0 = hardware
/// concurrency; an effective count of 1 runs inline with no thread
/// spawned). Each chunk seeds its first core from scratch and then runs
/// incrementally, so multicore scaling composes with the output-sensitive
/// win. Bit-identical to the serial (and naive) result.
BicoreDecomposition ComputeBicoreDecompositionParallel(
    const BipartiteGraph& g, unsigned num_threads = 0);

/// Reference build: the naive 2δ independent full-graph peels, one per
/// (side, τ). Same result, Θ(δ·m) work — kept as the equivalence-test
/// oracle and the BENCH_build.json baseline.
BicoreDecomposition ComputeBicoreDecompositionNaive(const BipartiteGraph& g);

}  // namespace abcs

#endif  // ABCS_ABCORE_OFFSETS_H_
