#ifndef ABCS_ABCORE_OFFSETS_H_
#define ABCS_ABCORE_OFFSETS_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief α-offsets `s_a(·, α)` for a fixed α (Definition 6).
///
/// `result[v]` is the maximal β such that `v` is contained in the
/// (α,β)-core, or 0 if `v` is not even in the (α,1)-core. Defined for
/// vertices of *both* layers. Computed by level-wise peeling of the
/// (α,1)-core in O(m).
std::vector<uint32_t> ComputeAlphaOffsets(const BipartiteGraph& g,
                                          uint32_t alpha);

/// β-offsets `s_b(·, β)` for a fixed β: `result[v]` is the maximal α such
/// that `v` is in the (α,β)-core (0 if not in the (1,β)-core).
std::vector<uint32_t> ComputeBetaOffsets(const BipartiteGraph& g,
                                         uint32_t beta);

/// \brief α-offsets restricted to a vertex subset (`scope[v]` nonzero):
/// computes `s_a(·, α)` of the subgraph induced by the scope. Used by
/// component-local index maintenance. Vertices outside the scope keep
/// offset value `keep_out` (callers pass their previously known offsets
/// separately; this function returns offsets only for in-scope vertices,
/// with out-of-scope entries set to 0).
std::vector<uint32_t> ComputeAlphaOffsetsScoped(const BipartiteGraph& g,
                                                uint32_t alpha,
                                                const std::vector<uint8_t>& scope);

/// Scoped variant of ComputeBetaOffsets (see ComputeAlphaOffsetsScoped).
std::vector<uint32_t> ComputeBetaOffsetsScoped(const BipartiteGraph& g,
                                               uint32_t beta,
                                               const std::vector<uint8_t>& scope);

/// \brief The degeneracy-bounded bicore decomposition: α- and β-offsets for
/// every τ ∈ [1, δ].
///
/// By Lemma 4 every nonempty (α,β)-core has min(α,β) ≤ δ, so this table
/// determines membership of *any* (α,β)-core:
/// `v ∈ (α,β)-core ⇔ (α ≤ β ? sa[α-1][v] ≥ β : sb[β-1][v] ≥ α)` whenever
/// min(α,β) ≤ δ, and the core is empty otherwise. Computed in O(δ·m); this
/// is the shared substrate of the bicore index I_v and the
/// degeneracy-bounded index I_δ.
struct BicoreDecomposition {
  uint32_t delta = 0;
  /// sa[τ-1][v] = s_a(v, τ) for τ ∈ [1, δ].
  std::vector<std::vector<uint32_t>> sa;
  /// sb[τ-1][v] = s_b(v, τ) for τ ∈ [1, δ].
  std::vector<std::vector<uint32_t>> sb;
};

/// Computes the full δ-bounded decomposition (Algorithm 3's offset phase).
BicoreDecomposition ComputeBicoreDecomposition(const BipartiteGraph& g);

/// Parallel variant: the 2δ per-level peels are independent, so they are
/// distributed over `num_threads` worker threads (0 = hardware
/// concurrency; an effective count of 1 runs inline with no thread
/// spawned). Bit-identical to the serial result.
BicoreDecomposition ComputeBicoreDecompositionParallel(
    const BipartiteGraph& g, unsigned num_threads = 0);

}  // namespace abcs

#endif  // ABCS_ABCORE_OFFSETS_H_
