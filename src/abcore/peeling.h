#ifndef ABCS_ABCORE_PEELING_H_
#define ABCS_ABCORE_PEELING_H_

#include <cstdint>
#include <vector>

#include "core/cancel.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// Result of an (α,β)-core computation: per-vertex membership plus summary
/// counts. `alive[v]` is 1 iff `v` belongs to the core.
struct CoreResult {
  std::vector<uint8_t> alive;
  uint32_t num_upper = 0;  ///< |U(R_{α,β})|
  uint32_t num_lower = 0;  ///< |L(R_{α,β})|
  uint32_t num_edges = 0;  ///< size(R_{α,β})

  bool Empty() const { return num_upper == 0 && num_lower == 0; }
};

/// \brief Computes the (α,β)-core of `g` by iterative peeling
/// (Definition 1): repeatedly delete upper vertices with degree < α and
/// lower vertices with degree < β until a fixed point. O(m).
CoreResult ComputeAlphaBetaCore(const BipartiteGraph& g, uint32_t alpha,
                                uint32_t beta);

/// \brief In-place peeling over caller-owned state, used by algorithms that
/// repeatedly shrink a working subgraph (SCS-Peel, maintenance).
///
/// On entry `deg[v]` must be the degree of `v` in the subgraph induced by
/// `alive`. Peels until every alive upper vertex has deg ≥ alpha and every
/// alive lower vertex has deg ≥ beta; updates `deg`/`alive` and appends the
/// removed vertices to `removed` if non-null. `queue_storage`, when
/// non-null, lends the internal work-queue buffer so repeated peels reuse
/// its capacity (allocation-free steady state). An armed `cancel` token
/// stops the peel mid-cascade; `deg`/`alive` are then torn and must be
/// discarded (per-query callers re-assign both anyway).
void PeelInPlace(const BipartiteGraph& g, uint32_t alpha, uint32_t beta,
                 std::vector<uint32_t>& deg, std::vector<uint8_t>& alive,
                 std::vector<VertexId>* removed = nullptr,
                 std::vector<VertexId>* queue_storage = nullptr,
                 CancelToken* cancel = nullptr);

}  // namespace abcs

#endif  // ABCS_ABCORE_PEELING_H_
