#include "abcore/peeling.h"

#include "abcore/peel_kernel.h"

namespace abcs {

void PeelInPlace(const BipartiteGraph& g, uint32_t alpha, uint32_t beta,
                 std::vector<uint32_t>& deg, std::vector<uint8_t>& alive,
                 std::vector<VertexId>* removed,
                 std::vector<VertexId>* queue_storage, CancelToken* cancel) {
  ThresholdPeel(
      g.NumVertices(), deg, alive, GraphNeighbors(g),
      [&](VertexId v) { return g.IsUpper(v) ? alpha : beta; },
      [&](VertexId v) {
        if (removed) removed->push_back(v);
      },
      queue_storage, cancel);
}

CoreResult ComputeAlphaBetaCore(const BipartiteGraph& g, uint32_t alpha,
                                uint32_t beta) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> deg(n);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.Degree(v);
  CoreResult result;
  result.alive.assign(n, 1);
  PeelInPlace(g, alpha, beta, deg, result.alive);

  for (VertexId v = 0; v < n; ++v) {
    if (!result.alive[v]) continue;
    if (g.IsUpper(v)) {
      ++result.num_upper;
      result.num_edges += deg[v];
    } else {
      ++result.num_lower;
    }
  }
  return result;
}

}  // namespace abcs
