#include "abcore/peeling.h"

namespace abcs {

void PeelInPlace(const BipartiteGraph& g, uint32_t alpha, uint32_t beta,
                 std::vector<uint32_t>& deg, std::vector<uint8_t>& alive,
                 std::vector<VertexId>* removed) {
  const uint32_t n = g.NumVertices();
  std::vector<VertexId> queue;
  queue.reserve(64);
  auto threshold = [&](VertexId v) { return g.IsUpper(v) ? alpha : beta; };

  for (VertexId v = 0; v < n; ++v) {
    if (alive[v] && deg[v] < threshold(v)) {
      alive[v] = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    VertexId v = queue.back();
    queue.pop_back();
    if (removed) removed->push_back(v);
    for (const Arc& a : g.Neighbors(v)) {
      if (!alive[a.to]) continue;
      if (--deg[a.to] < threshold(a.to)) {
        alive[a.to] = 0;
        queue.push_back(a.to);
      }
    }
  }
}

CoreResult ComputeAlphaBetaCore(const BipartiteGraph& g, uint32_t alpha,
                                uint32_t beta) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> deg(n);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.Degree(v);
  CoreResult result;
  result.alive.assign(n, 1);
  PeelInPlace(g, alpha, beta, deg, result.alive);

  for (VertexId v = 0; v < n; ++v) {
    if (!result.alive[v]) continue;
    if (g.IsUpper(v)) {
      ++result.num_upper;
      result.num_edges += deg[v];
    } else {
      ++result.num_lower;
    }
  }
  return result;
}

}  // namespace abcs
