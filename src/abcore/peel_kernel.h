#ifndef ABCS_ABCORE_PEEL_KERNEL_H_
#define ABCS_ABCORE_PEEL_KERNEL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <ranges>
#include <utility>
#include <vector>

#include "core/cancel.h"
#include "graph/bipartite_graph.h"
#include "io/codec.h"

namespace abcs {

/// \brief The shared peeling kernels. Every peel loop in the library —
/// (α,β)-core peels, offset/level decompositions, k-core numbers, scoped
/// index maintenance, and the weight-filtered SCS peels — is one of the two
/// shapes below, parameterised over an adjacency functor so the same code
/// runs on `BipartiteGraph` CSR arcs, the maintenance adjacency lists and
/// the SCS `LocalGraph` (with caller-side edge-alive bookkeeping).
///
/// `for_each(v, visit)` must call `visit(w)` once for every *countable*
/// neighbour `w` of `v` — the functor owns any filtering (scope, edge
/// weight, edge liveness) and any side effects of deleting the arc.
/// The kernels own `deg`/`alive`: `deg[v]` is the countable degree of `v`,
/// kept exact for alive vertices; `alive[v]` flips to 0 exactly once, at
/// removal time, before `on_remove` fires.

/// \brief Cascade peel to per-vertex degree thresholds (Definition 1
/// generalised): repeatedly remove alive vertices with
/// `deg[v] < threshold(v)` until a fixed point. O(m) — every arc is visited
/// at most once from each side.
///
/// The seed scan covers `vertices` only; every alive vertex violating its
/// threshold must appear there (cascades then reach any vertex through the
/// adjacency). Incremental callers — e.g. the nested-core decomposition
/// tightening the (τ,1)-core to the (τ+1,1)-core — pass the surviving
/// frontier instead of re-scanning all of [0, n).
///
/// `cancel` (optional) is ticked once per seed-scan vertex and once per
/// cascaded arc; an armed stop abandons the peel mid-fixed-point, leaving
/// `deg`/`alive` in a torn state the caller must discard (the query paths
/// re-assign both per query, so abandonment is free).
template <typename VertexRange, typename ForEachNeighbor, typename Threshold,
          typename OnRemove>
void ThresholdPeelRange(const VertexRange& vertices,
                        std::vector<uint32_t>& deg,
                        std::vector<uint8_t>& alive,
                        ForEachNeighbor&& for_each, Threshold&& threshold,
                        OnRemove&& on_remove,
                        std::vector<VertexId>* queue_storage = nullptr,
                        CancelToken* cancel = nullptr) {
  // Callers on an allocation-free steady state (QueryScratch) lend the
  // work-queue buffer; everyone else gets a local one.
  std::vector<VertexId> local_queue;
  std::vector<VertexId>& queue = queue_storage ? *queue_storage : local_queue;
  queue.clear();
  queue.reserve(64);
  for (const VertexId v : vertices) {
    if (cancel != nullptr && cancel->Tick()) return;
    if (alive[v] && deg[v] < threshold(v)) {
      alive[v] = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    if (cancel != nullptr && cancel->Stopped()) return;
    const VertexId v = queue.back();
    queue.pop_back();
    on_remove(v);
    for_each(v, [&](VertexId w) {
      if (cancel != nullptr) cancel->Tick();
      if (!alive[w]) return;
      if (--deg[w] < threshold(w)) {
        alive[w] = 0;
        queue.push_back(w);
      }
    });
  }
}

/// Whole-graph form: seeds from every vertex in [0, num_vertices).
template <typename ForEachNeighbor, typename Threshold, typename OnRemove>
void ThresholdPeel(uint32_t num_vertices, std::vector<uint32_t>& deg,
                   std::vector<uint8_t>& alive, ForEachNeighbor&& for_each,
                   Threshold&& threshold, OnRemove&& on_remove,
                   std::vector<VertexId>* queue_storage = nullptr,
                   CancelToken* cancel = nullptr) {
  ThresholdPeelRange(std::views::iota(VertexId{0}, num_vertices), deg, alive,
                     std::forward<ForEachNeighbor>(for_each),
                     std::forward<Threshold>(threshold),
                     std::forward<OnRemove>(on_remove), queue_storage, cancel);
}

/// \brief Packed-form whole-graph threshold peel: identical fixed point to
/// `ThresholdPeel`, but the degree array stays in its bit-packed form
/// (`PackedU32Array`, ⌈log₂(maxdeg+1)⌉ bits per vertex) for the entire
/// peel — no unpack round trip. The seed scan unpacks in batches (word-at-
/// a-time, amortised shifts); the cascade decrements in place, one
/// read-modify-write per arc. A packed degree array is 3–6× smaller than a
/// u32 vector, so on large graphs the peel's hottest random-access array
/// fits a cache level the unpacked kernel misses
/// (bench/bench_peel_kernel.cc measures both forms side by side).
template <typename ForEachNeighbor, typename Threshold, typename OnRemove>
void ThresholdPeelPacked(uint32_t num_vertices, PackedU32Array& deg,
                         std::vector<uint8_t>& alive,
                         ForEachNeighbor&& for_each, Threshold&& threshold,
                         OnRemove&& on_remove,
                         std::vector<VertexId>* queue_storage = nullptr,
                         CancelToken* cancel = nullptr) {
  std::vector<VertexId> local_queue;
  std::vector<VertexId>& queue = queue_storage ? *queue_storage : local_queue;
  queue.clear();
  queue.reserve(64);
  constexpr std::size_t kSeedBatch = 256;
  uint32_t degs[kSeedBatch];
  for (uint32_t base = 0; base < num_vertices;
       base += static_cast<uint32_t>(kSeedBatch)) {
    // One tick per unpacked seed batch keeps the packed scan's word-at-a-
    // time cadence; 256 ops of slack is well inside the check interval.
    if (cancel != nullptr && cancel->Tick()) return;
    const std::size_t n =
        std::min<std::size_t>(kSeedBatch, num_vertices - base);
    deg.GetBatch(base, n, degs);
    for (std::size_t i = 0; i < n; ++i) {
      const VertexId v = base + static_cast<VertexId>(i);
      if (alive[v] && degs[i] < threshold(v)) {
        alive[v] = 0;
        queue.push_back(v);
      }
    }
  }
  while (!queue.empty()) {
    if (cancel != nullptr && cancel->Stopped()) return;
    const VertexId v = queue.back();
    queue.pop_back();
    on_remove(v);
    for_each(v, [&](VertexId w) {
      if (cancel != nullptr) cancel->Tick();
      if (!alive[w]) return;
      if (deg.Decrement(w) < threshold(w)) {
        alive[w] = 0;
        queue.push_back(w);
      }
    });
  }
}

/// \brief Lent working storage for `LevelPeeler`: the degree bucket queue
/// and the cascade stack. A caller that runs many peels (scoped index
/// maintenance, the per-τ ranked peels of the nested-core decomposition)
/// keeps one instance and stops paying an O(max_degree) bucket-vector
/// allocation per peel; capacity is retained across uses.
struct LevelPeelScratch {
  std::vector<std::vector<VertexId>> buckets;
  std::vector<VertexId> cascade;
  /// Buckets [0, used) may hold stale entries from the previous peel;
  /// everything beyond is clean. Lets the next peel reset only what the
  /// last one touched — a small scoped peel after one huge peel must not
  /// pay an O(max degree) bucket sweep forever after.
  std::size_t used = 0;
};

/// \brief Level-wise bucket-queue peel: degree buckets with lazy re-push on
/// decrement, no per-level rescans. O(m + max_level) total.
///
/// Vertices come in two roles decided by `is_fixed`:
///  - *fixed* vertices must keep `deg ≥ fixed_need` at all times;
///  - *ranked* vertices die level by level — at level L every alive ranked
///    vertex with `deg ≤ L` is removed (with full cascade through both
///    roles), so a ranked vertex's removal level is its offset / core
///    number.
/// `on_remove(v, level)` fires once per vertex; level 0 covers the initial
/// peel to the base constraint (fixed: `fixed_need`, ranked: degree ≥ 1).
///
/// With `is_fixed ≡ false` this is exactly the bucket k-core algorithm
/// (removal level = core number); with `is_fixed = IsUpper` (resp. lower)
/// and `fixed_need = α` (resp. β) it computes β-offsets at fixed α (resp.
/// α-offsets at fixed β), Definition 6.
///
/// Driving sequence: `Start(vertices)` once, then `RunLevel(level)` for
/// `level = 1, 2, …` strictly increasing; `Decrement` may be interleaved
/// (between or after `RunLevel` calls at the current level) for external
/// degree-support changes, e.g. boundary expiries in scoped maintenance.
template <typename ForEachNeighbor, typename IsFixed, typename OnRemove>
class LevelPeeler {
 public:
  /// `deg`/`alive` are caller-owned and must be consistent on entry:
  /// `deg[v]` = countable degree of every alive vertex. `max_level` bounds
  /// both the ranked degrees and every level later passed in. A non-null
  /// `scratch` lends the bucket/cascade storage (reset here, capacity
  /// kept) so repeated peels allocate nothing in steady state.
  LevelPeeler(std::vector<uint32_t>& deg, std::vector<uint8_t>& alive,
              uint32_t fixed_need, uint32_t max_level,
              ForEachNeighbor for_each, IsFixed is_fixed, OnRemove on_remove,
              LevelPeelScratch* scratch = nullptr)
      : deg_(deg),
        alive_(alive),
        fixed_need_(fixed_need),
        for_each_(std::move(for_each)),
        is_fixed_(std::move(is_fixed)),
        on_remove_(std::move(on_remove)),
        scratch_(scratch ? scratch : &owned_scratch_),
        buckets_(scratch_->buckets),
        cascade_(scratch_->cascade) {
    // An early-terminated previous peel (alive_count hit 0) can leave
    // stale entries behind; reset exactly the slots it may have dirtied
    // (its `used` watermark), never the whole historical capacity.
    const std::size_t need = static_cast<std::size_t>(max_level) + 2;
    if (buckets_.size() < need) buckets_.resize(need);
    const std::size_t dirty = std::min(scratch_->used, buckets_.size());
    for (std::size_t i = 0; i < dirty; ++i) buckets_[i].clear();
    scratch_->used = need;
    cascade_.clear();
  }

  /// Runs the level-0 peel over `vertices` (every alive vertex that fails
  /// its base constraint, with cascade), then buckets the ranked survivors
  /// by degree. `vertices` must cover every alive vertex.
  template <typename VertexRange>
  uint32_t Start(const VertexRange& vertices) {
    for (const VertexId v : vertices) {
      if (alive_[v]) ++alive_count_;
    }
    for (const VertexId v : vertices) {
      if (!alive_[v]) continue;
      const uint32_t need = is_fixed_(v) ? fixed_need_ : 1;
      if (deg_[v] < need) Remove(v, 0);
    }
    Cascade(0);
    for (const VertexId v : vertices) {
      if (alive_[v] && !is_fixed_(v)) buckets_[deg_[v]].push_back(v);
    }
    return alive_count_;
  }

  /// Removes every ranked vertex at exactly this level (stale lazy entries
  /// are skipped), cascading each removal.
  void RunLevel(uint32_t level) {
    std::vector<VertexId>& bucket = buckets_[level];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const VertexId v = bucket[i];
      if (!alive_[v] || deg_[v] != level) continue;
      Remove(v, level);
      Cascade(level);
    }
    bucket.clear();
  }

  /// External degree decrement of `v` attributed to `level` (e.g. a
  /// boundary support expiring in scoped maintenance), cascading if `v`
  /// falls below its constraint.
  void Decrement(VertexId v, uint32_t level) {
    if (!alive_[v]) return;
    --deg_[v];
    if (Violates(v, level)) {
      Remove(v, level);
      Cascade(level);
    } else if (!is_fixed_(v)) {
      buckets_[deg_[v]].push_back(v);
    }
  }

  uint32_t alive_count() const { return alive_count_; }

 private:
  bool Violates(VertexId v, uint32_t level) const {
    return is_fixed_(v) ? deg_[v] < fixed_need_ : deg_[v] <= level;
  }

  void Remove(VertexId v, uint32_t level) {
    alive_[v] = 0;
    on_remove_(v, level);
    cascade_.push_back(v);
  }

  void Cascade(uint32_t level) {
    while (!cascade_.empty()) {
      const VertexId x = cascade_.back();
      cascade_.pop_back();
      --alive_count_;
      for_each_(x, [&](VertexId w) {
        if (!alive_[w]) return;
        --deg_[w];
        if (Violates(w, level)) {
          Remove(w, level);
        } else if (!is_fixed_(w)) {
          buckets_[deg_[w]].push_back(w);
        }
      });
    }
  }

  std::vector<uint32_t>& deg_;
  std::vector<uint8_t>& alive_;
  const uint32_t fixed_need_;
  ForEachNeighbor for_each_;
  IsFixed is_fixed_;
  OnRemove on_remove_;
  LevelPeelScratch owned_scratch_;
  LevelPeelScratch* scratch_;
  std::vector<std::vector<VertexId>>& buckets_;
  std::vector<VertexId>& cascade_;
  uint32_t alive_count_ = 0;
};

/// Adjacency functor over `BipartiteGraph` CSR arcs (the common case).
inline auto GraphNeighbors(const BipartiteGraph& g) {
  return [&g](VertexId v, auto&& visit) {
    for (const Arc& a : g.Neighbors(v)) visit(a.to);
  };
}

}  // namespace abcs

#endif  // ABCS_ABCORE_PEEL_KERNEL_H_
