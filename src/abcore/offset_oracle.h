#ifndef ABCS_ABCORE_OFFSET_ORACLE_H_
#define ABCS_ABCORE_OFFSET_ORACLE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "abcore/offsets.h"
#include "graph/bipartite_graph.h"

namespace abcs {

/// \brief Constant-space-per-query answers to "is v in the (α,β)-core?"
/// and "what is s_a(v,α) / s_b(v,β)?" for *arbitrary* α, β — not just the
/// τ ≤ δ levels stored in the decomposition.
///
/// The duality behind it (paper Fig. 4): for α > δ every nonempty
/// (α,β)-core has β ≤ δ, so
///
///     s_a(v, α) = max{ β ≤ δ : s_b(v, β) ≥ α }      (α > δ)
///
/// and s_b(v,β) ≥ α is non-increasing in β, so the max is found by binary
/// search over the stored β levels in O(log δ). Symmetrically for s_b.
class OffsetOracle {
 public:
  /// The decomposition must outlive the oracle.
  explicit OffsetOracle(const BicoreDecomposition* decomp)
      : decomp_(decomp) {}

  uint32_t delta() const { return decomp_->delta; }

  /// s_a(v, α) for any α ≥ 1 (0 when v is in no (α,·)-core).
  uint32_t AlphaOffset(VertexId v, uint32_t alpha) const;

  /// s_b(v, β) for any β ≥ 1.
  uint32_t BetaOffset(VertexId v, uint32_t beta) const;

  /// True iff v belongs to the (α,β)-core.
  bool InCore(VertexId v, uint32_t alpha, uint32_t beta) const;

  /// The vertex's core skyline: maximal (α,β) pairs such that v is in the
  /// (α,β)-core but in neither the (α+1,β)- nor (α,β+1)-core. Sorted by
  /// increasing α. Characterises every core v belongs to.
  std::vector<std::pair<uint32_t, uint32_t>> Skyline(VertexId v) const;

 private:
  const BicoreDecomposition* decomp_;
};

}  // namespace abcs

#endif  // ABCS_ABCORE_OFFSET_ORACLE_H_
