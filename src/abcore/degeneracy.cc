#include "abcore/degeneracy.h"

#include <algorithm>
#include <ranges>

#include "abcore/peel_kernel.h"

namespace abcs {

std::vector<uint32_t> KCoreNumbers(const BipartiteGraph& g) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> core(n, 0);
  if (n == 0) return core;

  std::vector<uint32_t> deg(n);
  std::vector<uint8_t> alive(n, 1);
  uint32_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = g.Degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }

  // With every vertex ranked (no fixed side) the shared level-wise kernel
  // is exactly the bucket k-core algorithm: a vertex's removal level is its
  // core number.
  LevelPeeler peeler(
      deg, alive, /*fixed_need=*/0, max_deg, GraphNeighbors(g),
      [](VertexId) { return false; },
      [&](VertexId v, uint32_t level) { core[v] = level; });
  peeler.Start(std::views::iota(VertexId{0}, n));
  for (uint32_t level = 1; level <= max_deg && peeler.alive_count() > 0;
       ++level) {
    peeler.RunLevel(level);
  }
  return core;
}

uint32_t Degeneracy(const BipartiteGraph& g) {
  uint32_t delta = 0;
  for (uint32_t c : KCoreNumbers(g)) delta = std::max(delta, c);
  return delta;
}

}  // namespace abcs
