#include "abcore/degeneracy.h"

#include <algorithm>

namespace abcs {

std::vector<uint32_t> KCoreNumbers(const BipartiteGraph& g) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> deg(n), core(n, 0);
  uint32_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = g.Degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  if (n == 0) return core;

  // Bin-sort vertices by degree (Batagelj–Zaveršnik layout).
  std::vector<uint32_t> bin(max_deg + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[deg[v]];
  uint32_t start = 0;
  for (uint32_t d = 0; d <= max_deg; ++d) {
    uint32_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<VertexId> order(n);
  std::vector<uint32_t> pos(n);
  for (VertexId v = 0; v < n; ++v) {
    pos[v] = bin[deg[v]];
    order[pos[v]] = v;
    ++bin[deg[v]];
  }
  for (uint32_t d = max_deg; d >= 1; --d) bin[d] = bin[d - 1];
  bin[0] = 0;

  for (uint32_t i = 0; i < n; ++i) {
    VertexId v = order[i];
    core[v] = deg[v];
    for (const Arc& a : g.Neighbors(v)) {
      VertexId w = a.to;
      if (deg[w] <= deg[v]) continue;
      // Swap w to the front of its degree bucket, then shrink its degree.
      const uint32_t dw = deg[w];
      const uint32_t pw = pos[w];
      const uint32_t pfirst = bin[dw];
      const VertexId first = order[pfirst];
      if (first != w) {
        order[pfirst] = w;
        order[pw] = first;
        pos[w] = pfirst;
        pos[first] = pw;
      }
      ++bin[dw];
      --deg[w];
    }
  }
  return core;
}

uint32_t Degeneracy(const BipartiteGraph& g) {
  uint32_t delta = 0;
  for (uint32_t c : KCoreNumbers(g)) delta = std::max(delta, c);
  return delta;
}

}  // namespace abcs
