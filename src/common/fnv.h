#ifndef ABCS_COMMON_FNV_H_
#define ABCS_COMMON_FNV_H_

#include <cstdint>

namespace abcs {

/// FNV-1a over a stream of 64-bit values: the one hash behind the graph
/// topology checksum, the weight digest and the bundle section checksums,
/// so the constants live in exactly one place.
struct Fnv1a64 {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis

  void Mix(uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;  // FNV prime
  }
};

}  // namespace abcs

#endif  // ABCS_COMMON_FNV_H_
