#ifndef ABCS_COMMON_RNG_H_
#define ABCS_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace abcs {

/// \brief Deterministic 64-bit RNG (xoshiro256** seeded via splitmix64).
///
/// Every generator and query sampler in the library takes an explicit seed
/// so experiments are reproducible bit-for-bit across runs and platforms;
/// `std::mt19937` distributions are implementation-defined, so we implement
/// the few distributions we need ourselves.
class Rng {
 public:
  /// Seeds the state deterministically from `seed` via splitmix64.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in `[0, bound)`. `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in `[0, 1)`.
  double NextDouble();

  /// Uniform double in `[lo, hi)`.
  double NextUniform(double lo, double hi);

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// Skew-normal deviate with shape parameter `alpha` (Azzalini
  /// construction). The skew-normal's skewness approaches 0.995 as
  /// `alpha` → ∞; we use alpha = 5 (skewness ≈ 0.85) to approximate the
  /// paper's "skewed normal with skewness = 1.02" SK weight model.
  double NextSkewNormal(double alpha);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = NextBounded(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool have_gauss_ = false;
  double gauss_cache_ = 0.0;
};

}  // namespace abcs

#endif  // ABCS_COMMON_RNG_H_
