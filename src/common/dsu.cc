#include "common/dsu.h"

#include <numeric>

namespace abcs {

Dsu::Dsu(std::size_t n) : parent_(n), size_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), 0u);
}

uint32_t Dsu::Find(uint32_t x) {
  uint32_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    uint32_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

uint32_t Dsu::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return ra;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return ra;
}

void Dsu::Reset() {
  std::iota(parent_.begin(), parent_.end(), 0u);
  std::fill(size_.begin(), size_.end(), 1u);
  num_sets_ = parent_.size();
}

void Dsu::Assign(std::size_t n) {
  parent_.resize(n);
  size_.resize(n);
  Reset();
}

}  // namespace abcs
