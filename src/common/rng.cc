#include "common/rng.h"

#include <cmath>

namespace abcs {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  for (auto& s : s_) s = SplitMix64(seed);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless method would be overkill; simple rejection
  // sampling keeps the distribution exactly uniform.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_gauss_) {
    have_gauss_ = false;
    return gauss_cache_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  gauss_cache_ = r * std::sin(theta);
  have_gauss_ = true;
  return r * std::cos(theta);
}

double Rng::NextSkewNormal(double alpha) {
  // Azzalini (1985): if (X0, X1) are iid N(0,1) and d = alpha/sqrt(1+a^2),
  // then d*|X0| + sqrt(1-d^2)*X1 is skew-normal with shape alpha.
  double d = alpha / std::sqrt(1.0 + alpha * alpha);
  double x0 = NextGaussian();
  double x1 = NextGaussian();
  return d * std::fabs(x0) + std::sqrt(1.0 - d * d) * x1;
}

}  // namespace abcs
