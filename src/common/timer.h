#ifndef ABCS_COMMON_TIMER_H_
#define ABCS_COMMON_TIMER_H_

#include <chrono>

namespace abcs {

/// \brief Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace abcs

#endif  // ABCS_COMMON_TIMER_H_
