#ifndef ABCS_COMMON_STATUS_H_
#define ABCS_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace abcs {

/// \brief Result of a fallible operation (RocksDB-style, no exceptions).
///
/// Library code never throws; operations that can fail (IO, malformed input,
/// out-of-range query vertices) return a `Status`. The common idiom is
///
///     ABCS_RETURN_NOT_OK(DoSomething());
///
/// which propagates the first error upward.
class Status {
 public:
  /// Error taxonomy. Keep small; callers branch on it rarely.
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kCorruption,
    kNotSupported,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers; each carries a human-readable message.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>", for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define ABCS_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::abcs::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (false)

}  // namespace abcs

#endif  // ABCS_COMMON_STATUS_H_
