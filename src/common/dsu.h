#ifndef ABCS_COMMON_DSU_H_
#define ABCS_COMMON_DSU_H_

#include <cstdint>
#include <vector>

namespace abcs {

/// \brief Disjoint-set union (union–find) with union by size and full path
/// compression.
///
/// Used by SCS-Expand (paper §IV-B) to maintain the connected subgraphs of
/// the growing graph `G*` in amortised near-constant time, and by the
/// generators/tests for connectivity checks.
class Dsu {
 public:
  /// Creates `n` singleton sets `{0}, {1}, ..., {n-1}`.
  explicit Dsu(std::size_t n);

  /// Returns the representative of `x`'s set (with path compression).
  uint32_t Find(uint32_t x);

  /// Merges the sets of `a` and `b`. Returns the surviving root, or the
  /// common root if they were already merged.
  uint32_t Union(uint32_t a, uint32_t b);

  /// True iff `a` and `b` are in the same set.
  bool Same(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  /// Number of elements in `x`'s set.
  uint32_t SizeOf(uint32_t x) { return size_[Find(x)]; }

  /// Number of disjoint sets remaining.
  std::size_t num_sets() const { return num_sets_; }

  /// Resets every element to a singleton (reusing allocations).
  void Reset();

  /// Resizes to `n` singleton sets, reusing capacity (pooled workspaces).
  void Assign(std::size_t n);

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  std::size_t num_sets_;
};

}  // namespace abcs

#endif  // ABCS_COMMON_DSU_H_
