#include <gtest/gtest.h>

#include <algorithm>

#include "abcore/offset_oracle.h"
#include "abcore/peeling.h"
#include "test_util.h"

namespace abcs {
namespace {

using ::abcs::testing::MakeGraph;
using ::abcs::testing::RandomWeightedGraph;

class OracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleTest, MatchesDirectOffsetsForAllAlpha) {
  BipartiteGraph g = RandomWeightedGraph(20, 20, 150, GetParam());
  const BicoreDecomposition decomp = ComputeBicoreDecomposition(g);
  const OffsetOracle oracle(&decomp);
  const uint32_t amax = std::max(g.MaxUpperDegree(), g.MaxLowerDegree());
  for (uint32_t alpha = 1; alpha <= amax + 1; ++alpha) {
    const std::vector<uint32_t> sa = ComputeAlphaOffsets(g, alpha);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_EQ(oracle.AlphaOffset(v, alpha), sa[v])
          << "v=" << v << " alpha=" << alpha;
    }
  }
  for (uint32_t beta = 1; beta <= amax + 1; ++beta) {
    const std::vector<uint32_t> sb = ComputeBetaOffsets(g, beta);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_EQ(oracle.BetaOffset(v, beta), sb[v])
          << "v=" << v << " beta=" << beta;
    }
  }
}

TEST_P(OracleTest, InCoreMatchesPeeling) {
  BipartiteGraph g = RandomWeightedGraph(18, 18, 120, GetParam() + 50);
  const BicoreDecomposition decomp = ComputeBicoreDecomposition(g);
  const OffsetOracle oracle(&decomp);
  const uint32_t hi = std::max(g.MaxUpperDegree(), g.MaxLowerDegree()) + 1;
  for (uint32_t alpha = 1; alpha <= hi; ++alpha) {
    for (uint32_t beta = 1; beta <= hi; ++beta) {
      const CoreResult core = ComputeAlphaBetaCore(g, alpha, beta);
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        EXPECT_EQ(oracle.InCore(v, alpha, beta), core.alive[v] != 0)
            << "v=" << v << " a=" << alpha << " b=" << beta;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleTest, ::testing::Values(801, 802));

TEST(OracleTest, SkylineCharacterizesAllCores) {
  BipartiteGraph g = RandomWeightedGraph(15, 15, 100, 66);
  const BicoreDecomposition decomp = ComputeBicoreDecomposition(g);
  const OffsetOracle oracle(&decomp);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto skyline = oracle.Skyline(v);
    // Strictly increasing α, strictly decreasing β.
    for (std::size_t i = 1; i < skyline.size(); ++i) {
      EXPECT_LT(skyline[i - 1].first, skyline[i].first);
      EXPECT_GT(skyline[i - 1].second, skyline[i].second);
    }
    // Each point is maximal: in the (α,β)-core, not in (α+1,β) or (α,β+1).
    for (const auto& [a, b] : skyline) {
      EXPECT_TRUE(oracle.InCore(v, a, b));
      EXPECT_FALSE(oracle.InCore(v, a + 1, b));
      EXPECT_FALSE(oracle.InCore(v, a, b + 1));
    }
    // Membership is exactly domination by some skyline point.
    for (uint32_t a = 1; a <= 6; ++a) {
      for (uint32_t b = 1; b <= 6; ++b) {
        bool dominated = false;
        for (const auto& [sa, sb] : skyline) {
          if (a <= sa && b <= sb) dominated = true;
        }
        EXPECT_EQ(oracle.InCore(v, a, b), dominated)
            << "v=" << v << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(OracleTest, EmptyAndDegenerateGraphs) {
  BipartiteGraph g = MakeGraph({{0, 0, 1.0}});
  const BicoreDecomposition decomp = ComputeBicoreDecomposition(g);
  const OffsetOracle oracle(&decomp);
  EXPECT_EQ(oracle.delta(), 1u);
  EXPECT_TRUE(oracle.InCore(0, 1, 1));
  EXPECT_FALSE(oracle.InCore(0, 2, 1));
  EXPECT_FALSE(oracle.InCore(0, 0, 1));
  const auto skyline = oracle.Skyline(0);
  ASSERT_EQ(skyline.size(), 1u);
  EXPECT_EQ(skyline[0], (std::pair<uint32_t, uint32_t>{1, 1}));
}

}  // namespace
}  // namespace abcs
