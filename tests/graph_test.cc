#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "graph/bipartite_graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "test_util.h"

namespace abcs {
namespace {

using ::abcs::testing::MakeGraph;

TEST(BipartiteGraphTest, EmptyGraph) {
  BipartiteGraph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphBuilderTest, BasicConstruction) {
  BipartiteGraph g = MakeGraph({{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 3.0}});
  EXPECT_EQ(g.NumUpper(), 2u);
  EXPECT_EQ(g.NumLower(), 2u);
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_TRUE(g.IsUpper(0));
  EXPECT_TRUE(g.IsUpper(1));
  EXPECT_FALSE(g.IsUpper(2));
  EXPECT_EQ(g.LowerId(0), 2u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.Degree(2), 2u);
  EXPECT_EQ(g.Degree(3), 1u);
}

TEST(GraphBuilderTest, EdgeIdsSharedAcrossArcs) {
  BipartiteGraph g = MakeGraph({{0, 0, 1.5}, {0, 1, 2.5}});
  // Every arc's eid must resolve to an edge containing its endpoint.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Arc& a : g.Neighbors(v)) {
      const Edge& e = g.GetEdge(a.eid);
      EXPECT_TRUE(e.u == v || e.v == v);
      EXPECT_TRUE(e.u == a.to || e.v == a.to);
    }
  }
  EXPECT_DOUBLE_EQ(g.GetWeight(0), 1.5);
}

TEST(GraphBuilderTest, AdjacencyIsSortedByNeighbor) {
  // The biclique model relies on sorted adjacency for binary search.
  BipartiteGraph g = testing::RandomWeightedGraph(30, 40, 200, 7);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.Neighbors(v);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LT(nbrs[i - 1].to, nbrs[i].to);
    }
  }
}

TEST(GraphBuilderTest, DuplicateKeepMax) {
  GraphBuilder b;
  b.AddEdge(0, 0, 2.0);
  b.AddEdge(0, 0, 5.0);
  b.AddEdge(0, 0, 3.0);
  BipartiteGraph g;
  ASSERT_TRUE(b.Build(&g, GraphBuilder::DuplicatePolicy::kKeepMax).ok());
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.GetWeight(0), 5.0);
}

TEST(GraphBuilderTest, DuplicateSum) {
  GraphBuilder b;
  b.AddEdge(0, 0, 2.0);
  b.AddEdge(0, 0, 5.0);
  BipartiteGraph g;
  ASSERT_TRUE(b.Build(&g, GraphBuilder::DuplicatePolicy::kSum).ok());
  EXPECT_DOUBLE_EQ(g.GetWeight(0), 7.0);
}

TEST(GraphBuilderTest, DuplicateKeepLast) {
  GraphBuilder b;
  b.AddEdge(0, 0, 2.0);
  b.AddEdge(0, 0, 5.0);
  b.AddEdge(0, 0, 3.0);
  BipartiteGraph g;
  ASSERT_TRUE(b.Build(&g, GraphBuilder::DuplicatePolicy::kKeepLast).ok());
  EXPECT_DOUBLE_EQ(g.GetWeight(0), 3.0);
}

TEST(GraphBuilderTest, DuplicateError) {
  GraphBuilder b;
  b.AddEdge(0, 0, 2.0);
  b.AddEdge(0, 0, 5.0);
  BipartiteGraph g;
  Status st = b.Build(&g, GraphBuilder::DuplicatePolicy::kError);
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
}

TEST(GraphBuilderTest, ReserveCreatesIsolatedVertices) {
  GraphBuilder b;
  b.Reserve(5, 7, 1);
  b.AddEdge(0, 0, 1.0);
  BipartiteGraph g;
  ASSERT_TRUE(b.Build(&g).ok());
  EXPECT_EQ(g.NumUpper(), 5u);
  EXPECT_EQ(g.NumLower(), 7u);
  EXPECT_EQ(g.Degree(4), 0u);
}

TEST(GraphBuilderTest, ClearResets) {
  GraphBuilder b;
  b.AddEdge(0, 0, 1.0);
  b.Clear();
  EXPECT_EQ(b.NumPendingEdges(), 0u);
  b.AddEdge(0, 0, 2.0);
  BipartiteGraph g;
  ASSERT_TRUE(b.Build(&g).ok());
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.GetWeight(0), 2.0);
}

TEST(BipartiteGraphTest, MaxDegrees) {
  BipartiteGraph g =
      MakeGraph({{0, 0, 1}, {0, 1, 1}, {0, 2, 1}, {1, 0, 1}, {2, 0, 1}});
  EXPECT_EQ(g.MaxUpperDegree(), 3u);
  EXPECT_EQ(g.MaxLowerDegree(), 3u);
}

TEST(BipartiteGraphTest, WithWeightsReplacesWeights) {
  BipartiteGraph g = MakeGraph({{0, 0, 1.0}, {0, 1, 2.0}});
  BipartiteGraph g2 = g.WithWeights({9.0, 8.0});
  EXPECT_DOUBLE_EQ(g2.GetWeight(0), 9.0);
  EXPECT_DOUBLE_EQ(g2.GetWeight(1), 8.0);
  // Topology unchanged; original untouched.
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  EXPECT_DOUBLE_EQ(g.GetWeight(0), 1.0);
}

// -------------------------------------------------------------------- IO --

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/abcs_io_test.txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(GraphIoTest, SaveLoadRoundTrip) {
  BipartiteGraph g = testing::RandomWeightedGraph(20, 30, 120, 3);
  ASSERT_TRUE(SaveEdgeList(g, path_).ok());
  BipartiteGraph g2;
  ASSERT_TRUE(LoadEdgeList(path_, &g2, /*zero_based=*/true).ok());
  ASSERT_EQ(g2.NumEdges(), g.NumEdges());
  ASSERT_EQ(g2.NumUpper(), g.NumUpper());
  std::set<std::tuple<VertexId, VertexId, Weight>> a, b;
  for (const Edge& e : g.Edges()) a.insert({e.u, e.v, e.w});
  for (const Edge& e : g2.Edges()) b.insert({e.u, e.v, e.w});
  EXPECT_EQ(a, b);
}

TEST_F(GraphIoTest, KonectOneBasedAndComments) {
  {
    std::ofstream out(path_);
    out << "% bip weighted\n";
    out << "# another comment\n";
    out << "1 1 4.5\n";
    out << "1 2 3.0\n";
    out << "2 1\n";  // missing weight -> 1.0
  }
  BipartiteGraph g;
  ASSERT_TRUE(LoadEdgeList(path_, &g, /*zero_based=*/false).ok());
  EXPECT_EQ(g.NumUpper(), 2u);
  EXPECT_EQ(g.NumLower(), 2u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_DOUBLE_EQ(g.GetEdge(0).w, 4.5);
  EXPECT_DOUBLE_EQ(g.GetEdge(2).w, 1.0);
}

TEST_F(GraphIoTest, MissingFileIsIOError) {
  BipartiteGraph g;
  Status st = LoadEdgeList("/nonexistent/path/graph.txt", &g);
  EXPECT_EQ(st.code(), Status::Code::kIOError);
}

TEST_F(GraphIoTest, MalformedLineIsCorruption) {
  {
    std::ofstream out(path_);
    out << "not numbers here\n";
  }
  BipartiteGraph g;
  Status st = LoadEdgeList(path_, &g);
  EXPECT_EQ(st.code(), Status::Code::kCorruption);
}

TEST_F(GraphIoTest, NegativeIdIsCorruption) {
  {
    std::ofstream out(path_);
    out << "0 5 1.0\n";  // 1-based parse makes this -1
  }
  BipartiteGraph g;
  Status st = LoadEdgeList(path_, &g, /*zero_based=*/false);
  EXPECT_EQ(st.code(), Status::Code::kCorruption);
}

}  // namespace
}  // namespace abcs
