#include <gtest/gtest.h>

#include <algorithm>

#include "abcore/degeneracy.h"
#include "abcore/peeling.h"
#include "core/basic_index.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "core/online_query.h"
#include "test_util.h"

namespace abcs {
namespace {

using ::abcs::testing::MakeGraph;
using ::abcs::testing::PaperFigure2Graph;
using ::abcs::testing::RandomWeightedGraph;

/// Independent reference for C_{α,β}(q): fixpoint core + DFS over the core.
Subgraph NaiveCommunity(const BipartiteGraph& g, VertexId q, uint32_t alpha,
                        uint32_t beta) {
  const uint32_t n = g.NumVertices();
  std::vector<uint8_t> alive(n, 1);
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      uint32_t d = 0;
      for (const Arc& a : g.Neighbors(v)) d += alive[a.to];
      if (d < (g.IsUpper(v) ? alpha : beta)) {
        alive[v] = 0;
        changed = true;
      }
    }
  }
  Subgraph out;
  if (q >= n || !alive[q]) return out;
  std::vector<uint8_t> visited(n, 0);
  std::vector<VertexId> stack{q};
  visited[q] = 1;
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    for (const Arc& a : g.Neighbors(v)) {
      if (!alive[a.to]) continue;
      if (!g.IsUpper(v)) out.edges.push_back(a.eid);
      if (!visited[a.to]) {
        visited[a.to] = 1;
        stack.push_back(a.to);
      }
    }
  }
  return out;
}

// ------------------------------------------------- cross-query agreement --

class QueryAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryAgreementTest, AllQueryAlgorithmsAgree) {
  BipartiteGraph g = RandomWeightedGraph(30, 35, 260, GetParam());
  const BicoreIndex iv = BicoreIndex::Build(g);
  const DeltaIndex idelta = DeltaIndex::Build(g);
  BasicIndex ia, ib;
  ASSERT_TRUE(
      BasicIndex::Build(g, BasicIndexSide::kAlpha, {}, &ia).ok());
  ASSERT_TRUE(BasicIndex::Build(g, BasicIndexSide::kBeta, {}, &ib).ok());

  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 40; ++trial) {
    const VertexId q =
        static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const uint32_t alpha = 1 + static_cast<uint32_t>(rng.NextBounded(6));
    const uint32_t beta = 1 + static_cast<uint32_t>(rng.NextBounded(6));

    const Subgraph ref = NaiveCommunity(g, q, alpha, beta);
    const Subgraph qo = QueryCommunityOnline(g, q, alpha, beta);
    const Subgraph qv = iv.QueryCommunity(q, alpha, beta);
    const Subgraph qopt = idelta.QueryCommunity(q, alpha, beta);
    const Subgraph qa = ia.QueryCommunity(q, alpha, beta);
    const Subgraph qb = ib.QueryCommunity(q, alpha, beta);

    EXPECT_TRUE(SameEdgeSet(ref, qo)) << "Qo  q=" << q << " a=" << alpha
                                      << " b=" << beta;
    EXPECT_TRUE(SameEdgeSet(ref, qv)) << "Qv  q=" << q << " a=" << alpha
                                      << " b=" << beta;
    EXPECT_TRUE(SameEdgeSet(ref, qopt)) << "Qopt q=" << q << " a=" << alpha
                                        << " b=" << beta;
    EXPECT_TRUE(SameEdgeSet(ref, qa)) << "Ia  q=" << q << " a=" << alpha
                                      << " b=" << beta;
    EXPECT_TRUE(SameEdgeSet(ref, qb)) << "Ib  q=" << q << " a=" << alpha
                                      << " b=" << beta;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryAgreementTest,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

TEST(QueryAgreementTest, HeavyTailedTopology) {
  // Chung–Lu hubs stress the per-level adjacency lists (many levels for
  // hub vertices, none for the tail).
  BipartiteGraph topo;
  ASSERT_TRUE(GenChungLuBipartite(120, 120, 1400, 1.9, 2.3, 33, &topo).ok());
  Rng wr(5);
  std::vector<Weight> w(topo.NumEdges());
  for (auto& x : w) x = 1.0 + static_cast<double>(wr.NextBounded(9));
  const BipartiteGraph g = topo.WithWeights(w);

  const BicoreIndex iv = BicoreIndex::Build(g);
  const DeltaIndex idelta = DeltaIndex::Build(g);
  BasicIndex ia;
  ASSERT_TRUE(BasicIndex::Build(g, BasicIndexSide::kAlpha, {}, &ia).ok());

  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    const VertexId q =
        static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    // Mix small, asymmetric and above-δ parameters.
    const uint32_t alpha = 1 + static_cast<uint32_t>(rng.NextBounded(12));
    const uint32_t beta = 1 + static_cast<uint32_t>(rng.NextBounded(12));
    const Subgraph ref = NaiveCommunity(g, q, alpha, beta);
    EXPECT_TRUE(SameEdgeSet(ref, iv.QueryCommunity(q, alpha, beta)));
    EXPECT_TRUE(SameEdgeSet(ref, idelta.QueryCommunity(q, alpha, beta)));
    EXPECT_TRUE(SameEdgeSet(ref, ia.QueryCommunity(q, alpha, beta)));
  }
}

// ------------------------------------------------------------ BicoreIndex --

TEST(BicoreIndexTest, CoreVerticesMatchPeeling) {
  BipartiteGraph g = RandomWeightedGraph(25, 25, 200, 7);
  const BicoreIndex iv = BicoreIndex::Build(g);
  for (uint32_t alpha = 1; alpha <= 5; ++alpha) {
    for (uint32_t beta = 1; beta <= 5; ++beta) {
      CoreResult core = ComputeAlphaBetaCore(g, alpha, beta);
      std::vector<VertexId> verts = iv.QueryCoreVertices(alpha, beta);
      std::vector<uint8_t> in(g.NumVertices(), 0);
      for (VertexId v : verts) in[v] = 1;
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        EXPECT_EQ(in[v] != 0, core.alive[v] != 0)
            << "v=" << v << " a=" << alpha << " b=" << beta;
      }
    }
  }
}

TEST(BicoreIndexTest, CoreVertexRetrievalIsOutputLinear) {
  BipartiteGraph g = RandomWeightedGraph(50, 50, 500, 8);
  const BicoreIndex iv = BicoreIndex::Build(g);
  for (uint32_t alpha = 1; alpha <= 4; ++alpha) {
    QueryStats stats;
    std::vector<VertexId> verts = iv.QueryCoreVertices(alpha, 3, &stats);
    // Touches exactly |result| entries plus at most one sentinel.
    EXPECT_LE(stats.touched_arcs, verts.size() + 1);
  }
}

TEST(BicoreIndexTest, EmptyAboveDelta) {
  BipartiteGraph g = RandomWeightedGraph(20, 20, 120, 9);
  const BicoreIndex iv = BicoreIndex::Build(g);
  const uint32_t d = iv.delta();
  EXPECT_EQ(d, Degeneracy(g));
  EXPECT_TRUE(iv.QueryCoreVertices(d + 1, d + 1).empty());
  EXPECT_TRUE(iv.QueryCommunity(0, d + 1, d + 1).Empty());
}

// ------------------------------------------------------------- DeltaIndex --

TEST(DeltaIndexTest, OptimalTouchedArcsProportionalToResult) {
  // Lemma 3: Qopt touches exactly the arcs of C plus ≤1 sentinel per
  // visited vertex; Qv additionally scans arcs leaving the community.
  BipartiteGraph g = PaperFigure2Graph();
  const DeltaIndex idelta = DeltaIndex::Build(g);
  const BicoreIndex iv = BicoreIndex::Build(g);

  QueryStats opt_stats, v_stats;
  const Subgraph copt = idelta.QueryCommunity(2, 2, 2, &opt_stats);
  const Subgraph cv = iv.QueryCommunity(2, 2, 2, &v_stats);
  ASSERT_TRUE(SameEdgeSet(copt, cv));
  ASSERT_EQ(copt.Size(), 16u);  // u1..u4 × v1..v4

  const std::size_t num_vertices = SubgraphVertexSet(g, copt).size();
  // Each community edge is seen from both endpoints; plus one early-break
  // sentinel per vertex at most.
  EXPECT_LE(opt_stats.touched_arcs, 2 * copt.Size() + num_vertices);
  EXPECT_GE(opt_stats.touched_arcs, 2 * copt.Size());
}

TEST(DeltaIndexTest, QueryVertexNotInCore) {
  BipartiteGraph g = PaperFigure2Graph();
  const DeltaIndex idelta = DeltaIndex::Build(g);
  // Chain vertices are not in any (2,2)-core.
  EXPECT_TRUE(idelta.QueryCommunity(10, 2, 2).Empty());
  // Invalid arguments.
  EXPECT_TRUE(idelta.QueryCommunity(0, 0, 2).Empty());
  EXPECT_TRUE(idelta.QueryCommunity(g.NumVertices() + 5, 2, 2).Empty());
}

TEST(DeltaIndexTest, AsymmetricParametersUseBothHalves) {
  BipartiteGraph g = RandomWeightedGraph(40, 15, 300, 10);
  const DeltaIndex idelta = DeltaIndex::Build(g);
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const VertexId q =
        static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    // Force β < α (β half) and α < β (α half) cases beyond δ of one side.
    for (auto [alpha, beta] : {std::pair<uint32_t, uint32_t>{7, 2},
                               {2, 7},
                               {idelta.delta(), 1},
                               {1, idelta.delta()}}) {
      EXPECT_TRUE(SameEdgeSet(NaiveCommunity(g, q, alpha, beta),
                              idelta.QueryCommunity(q, alpha, beta)))
          << "q=" << q << " a=" << alpha << " b=" << beta;
    }
  }
}

TEST(DeltaIndexTest, SharedDecompositionGivesSameIndex) {
  BipartiteGraph g = RandomWeightedGraph(25, 25, 200, 11);
  BicoreDecomposition decomp = ComputeBicoreDecomposition(g);
  const DeltaIndex a = DeltaIndex::Build(g, &decomp);
  const DeltaIndex b = DeltaIndex::Build(g);
  EXPECT_EQ(a.delta(), b.delta());
  EXPECT_EQ(a.MemoryBytes(), b.MemoryBytes());
}

// ------------------------------------------------------------- BasicIndex --

TEST(BasicIndexTest, EstimateMatchesActualEntryCount) {
  for (uint64_t seed : {21, 22, 23}) {
    BipartiteGraph g = RandomWeightedGraph(20, 20, 150, seed);
    for (BasicIndexSide side :
         {BasicIndexSide::kAlpha, BasicIndexSide::kBeta}) {
      BasicIndex index;
      ASSERT_TRUE(BasicIndex::Build(g, side, {}, &index).ok());
      EXPECT_EQ(BasicIndex::EstimateEntries(g, side), index.NumEntries())
          << "seed=" << seed;
    }
  }
}

TEST(BasicIndexTest, BuildBudgetExceededReturnsNotSupported) {
  BipartiteGraph g = RandomWeightedGraph(50, 50, 600, 24);
  BasicIndexBuildOptions options;
  options.max_entries = 10;  // absurdly small
  BasicIndex index;
  Status st = BasicIndex::Build(g, BasicIndexSide::kAlpha, options, &index);
  EXPECT_EQ(st.code(), Status::Code::kNotSupported);
}

TEST(BasicIndexTest, MaxLevelEqualsMaxDegree) {
  BipartiteGraph g = RandomWeightedGraph(20, 30, 150, 25);
  BasicIndex ia, ib;
  ASSERT_TRUE(BasicIndex::Build(g, BasicIndexSide::kAlpha, {}, &ia).ok());
  ASSERT_TRUE(BasicIndex::Build(g, BasicIndexSide::kBeta, {}, &ib).ok());
  EXPECT_EQ(ia.max_level(), g.MaxUpperDegree());
  EXPECT_EQ(ib.max_level(), g.MaxLowerDegree());
  EXPECT_EQ(ia.side(), BasicIndexSide::kAlpha);
  EXPECT_EQ(ib.side(), BasicIndexSide::kBeta);
}

TEST(BasicIndexTest, QueryAboveMaxLevelIsEmpty) {
  BipartiteGraph g = RandomWeightedGraph(10, 10, 40, 26);
  BasicIndex ia;
  ASSERT_TRUE(BasicIndex::Build(g, BasicIndexSide::kAlpha, {}, &ia).ok());
  EXPECT_TRUE(ia.QueryCommunity(0, ia.max_level() + 1, 1).Empty());
  EXPECT_TRUE(ia.QueryCommunity(0, 0, 1).Empty());
}

// ------------------------------------------------------- index size order --

TEST(IndexSizeTest, DeltaIndexSmallerThanBasicOnSkewedGraph) {
  // A hub-heavy graph: Iα_bs replicates the hub's adjacency once per level
  // while I_δ stores at most δ levels (the paper's Fig. 11 relationship).
  BipartiteGraph g;
  ASSERT_TRUE(GenChungLuBipartite(200, 200, 2500, 1.9, 2.2, 5, &g).ok());
  BasicIndex ia;
  ASSERT_TRUE(BasicIndex::Build(g, BasicIndexSide::kAlpha, {}, &ia).ok());
  const DeltaIndex idelta = DeltaIndex::Build(g);
  const BicoreIndex iv = BicoreIndex::Build(g);
  EXPECT_LT(idelta.MemoryBytes(), ia.MemoryBytes());
  EXPECT_LT(iv.MemoryBytes(), idelta.MemoryBytes());
}

TEST(IndexTest, PaperFigure2Community) {
  // Figure 2(b): the (2,2)-community of u3 is the 4×4 block.
  BipartiteGraph g = PaperFigure2Graph();
  const DeltaIndex idelta = DeltaIndex::Build(g);
  const Subgraph c = idelta.QueryCommunity(2, 2, 2);  // u3 has id 2
  EXPECT_EQ(c.Size(), 16u);
  std::vector<VertexId> verts = SubgraphVertexSet(g, c);
  ASSERT_EQ(verts.size(), 8u);
  for (VertexId v : verts) {
    if (g.IsUpper(v)) {
      EXPECT_LT(v, 4u);
    } else {
      EXPECT_LT(v - g.NumUpper(), 4u);
    }
  }
}

}  // namespace
}  // namespace abcs
