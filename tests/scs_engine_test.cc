// The SCS engine suite: the weight-rank substrate, the incremental
// feasibility machinery and the planner must be indistinguishable from the
// brute-force oracle on every workload shape — continuous weights,
// duplicate-heavy weights, serial, pooled and threaded-batch execution —
// and the steady state must not allocate.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/delta_index.h"
#include "core/query_engine.h"
#include "core/scs_auto.h"
#include "core/scs_baseline.h"
#include "core/scs_binary.h"
#include "core/scs_expand.h"
#include "core/scs_peel.h"
#include "graph/generators.h"
#include "graph/weights.h"
#include "test_util.h"

// --------------------------------------------------- counting allocator --
// Global operator new/delete with an allocation counter, so the
// zero-allocation guarantee is asserted directly rather than inferred from
// capacity snapshots alone.

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace abcs {
namespace {

using ::abcs::testing::RandomWeightedGraph;

// One test instance: a topology × weight distribution pair. `max_weight`
// == 0 applies a continuous model; otherwise weights are integers in
// [1, max_weight] — small values make duplicate-heavy batches the norm.
struct WeightVariant {
  const char* name;
  WeightModel model;
  uint32_t max_weight;
};

constexpr WeightVariant kVariants[] = {
    {"uniform", WeightModel::kUniform, 0},
    {"skewnormal", WeightModel::kSkewNormal, 0},
    {"dup4", WeightModel::kUniform, 4},
    {"dup2", WeightModel::kUniform, 2},
};

BipartiteGraph MakeVariantGraph(const BipartiteGraph& topo,
                                const WeightVariant& variant, uint64_t seed) {
  if (variant.max_weight == 0) {
    return ApplyWeightModel(topo, variant.model, seed);
  }
  Rng rng(seed);
  std::vector<Weight> w(topo.NumEdges());
  for (auto& x : w) {
    x = 1.0 + static_cast<double>(rng.NextBounded(variant.max_weight));
  }
  return topo.WithWeights(w);
}

void ExpectSameResult(const ScsResult& got, const ScsResult& want,
                      const char* context) {
  ASSERT_EQ(got.found, want.found) << context;
  if (!want.found) return;
  EXPECT_DOUBLE_EQ(got.significance, want.significance) << context;
  EXPECT_TRUE(SameEdgeSet(got.community, want.community)) << context;
}

// ------------------------------------------------ oracle agreement -------

TEST(ScsEngineTest, AllKernelsMatchBruteForceAcrossWeightModels) {
  BipartiteGraph topo;
  ASSERT_TRUE(GenErdosRenyiBipartite(60, 60, 650, 41, &topo).ok());
  // Shared pooled state across every query and kernel: a stale-state bug
  // in the workspace or scratch reuse would surface as a mismatch here.
  QueryScratch scratch;
  ScsWorkspace ws;
  for (const WeightVariant& variant : kVariants) {
    const BipartiteGraph g = MakeVariantGraph(topo, variant, 1000);
    const DeltaIndex index = DeltaIndex::Build(g);
    Rng rng(7);
    int nontrivial = 0;
    for (int trial = 0; trial < 25; ++trial) {
      const VertexId q =
          static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
      const uint32_t alpha = 1 + static_cast<uint32_t>(rng.NextBounded(5));
      const uint32_t beta = 1 + static_cast<uint32_t>(rng.NextBounded(5));
      const Subgraph c = index.QueryCommunity(q, alpha, beta);
      const ScsResult ref = ScsBruteForce(g, q, alpha, beta);
      ASSERT_EQ(ref.found, !c.Empty()) << variant.name;
      for (const ScsAlgo algo : {ScsAlgo::kAuto, ScsAlgo::kPeel,
                                 ScsAlgo::kExpand, ScsAlgo::kBinary}) {
        const ScsResult got =
            ScsQuery(g, c, q, alpha, beta, algo, {}, nullptr, &scratch, &ws);
        ExpectSameResult(got, ref, variant.name);
      }
      ExpectSameResult(ScsBinaryFreshPeel(g, c, q, alpha, beta), ref,
                       variant.name);
      if (trial < 5) {
        ExpectSameResult(
            ScsBaseline(g, q, alpha, beta, {}, nullptr, &scratch, &ws), ref,
            variant.name);
      }
      if (ref.found) ++nontrivial;
    }
    EXPECT_GT(nontrivial, 5) << variant.name << ": instance too sparse";
  }
}

TEST(ScsEngineTest, KernelsAgreeOnChungLuTopology) {
  BipartiteGraph topo;
  ASSERT_TRUE(GenChungLuBipartite(250, 250, 3200, 2.1, 2.1, 17, &topo).ok());
  QueryScratch scratch;
  ScsWorkspace ws;
  for (const WeightVariant& variant : kVariants) {
    const BipartiteGraph g = MakeVariantGraph(topo, variant, 2000);
    const DeltaIndex index = DeltaIndex::Build(g);
    Rng rng(9);
    for (int trial = 0; trial < 15; ++trial) {
      const VertexId q =
          static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
      const uint32_t t = 2 + static_cast<uint32_t>(rng.NextBounded(4));
      const Subgraph c = index.QueryCommunity(q, t, t);
      const ScsResult peel =
          ScsQuery(g, c, q, t, t, ScsAlgo::kPeel, {}, nullptr, &scratch, &ws);
      for (const ScsAlgo algo :
           {ScsAlgo::kAuto, ScsAlgo::kExpand, ScsAlgo::kBinary}) {
        const ScsResult got =
            ScsQuery(g, c, q, t, t, algo, {}, nullptr, &scratch, &ws);
        ExpectSameResult(got, peel, variant.name);
      }
    }
  }
}

// ------------------------------------- incremental probe equivalence -----

TEST(ScsEngineTest, IncrementalProbesMatchFreshPeelFeasibility) {
  BipartiteGraph topo;
  ASSERT_TRUE(GenErdosRenyiBipartite(50, 50, 550, 43, &topo).ok());
  QueryScratch scratch;
  for (const WeightVariant& variant : kVariants) {
    const BipartiteGraph g = MakeVariantGraph(topo, variant, 3000);
    const DeltaIndex index = DeltaIndex::Build(g);
    Rng rng(11);
    int probes_checked = 0;
    for (int trial = 0; trial < 20; ++trial) {
      const VertexId q =
          static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
      const uint32_t t = 1 + static_cast<uint32_t>(rng.NextBounded(4));
      const Subgraph c = index.QueryCommunity(q, t, t);
      if (c.Empty()) continue;
      LocalGraph lg(g, c.edges);
      std::vector<ScsProbe> probes;
      ScsResult incremental;
      ScsBinaryOnLocal(lg, q, t, t, &incremental, nullptr, scratch, &probes);
      // Every journaled probe must answer exactly what a from-scratch peel
      // of the same rank prefix answers.
      for (const ScsProbe& p : probes) {
        EXPECT_EQ(ScsFeasibleFreshPeel(lg, q, t, t, p.prefix_end), p.feasible)
            << variant.name << " q=" << q << " t=" << t
            << " prefix=" << p.prefix_end;
        ++probes_checked;
      }
      ExpectSameResult(incremental, ScsBinaryFreshPeel(g, c, q, t, t),
                       variant.name);
    }
    EXPECT_GT(probes_checked, 0) << variant.name;
  }
}

// --------------------------------------------------- batched execution ---

std::vector<QueryRequest> MixedRequests(const BipartiteGraph& g,
                                        std::size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<QueryRequest> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    requests.push_back(QueryRequest{
        static_cast<VertexId>(rng.NextBounded(g.NumVertices())),
        1 + static_cast<uint32_t>(rng.NextBounded(6)),
        1 + static_cast<uint32_t>(rng.NextBounded(6))});
  }
  return requests;
}

TEST(ScsEngineTest, BatchesDeterministicAcrossThreadCountsAndMatchSerial) {
  const BipartiteGraph g = RandomWeightedGraph(80, 80, 1100, 23, 6);
  const DeltaIndex delta = DeltaIndex::Build(g);
  const QueryEngine engine(g, QueryMethod::kDelta, &delta);
  const std::vector<QueryRequest> requests = MixedRequests(g, 60, 3);

  for (const ScsAlgo algo : {ScsAlgo::kAuto, ScsAlgo::kPeel, ScsAlgo::kExpand,
                             ScsAlgo::kBinary}) {
    ScsBatchOptions options;
    options.algo = algo;
    options.keep_communities = true;
    options.num_threads = 1;
    const ScsBatchResult serial = engine.RunScsBatch(requests, options);
    ASSERT_EQ(serial.outcomes.size(), requests.size());

    // Serial batch == direct per-query calls.
    QueryScratch scratch;
    ScsWorkspace ws;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const QueryRequest& r = requests[i];
      const Subgraph c = delta.QueryCommunity(r.q, r.alpha, r.beta);
      ScsStats stats;
      const ScsResult direct = ScsQuery(g, c, r.q, r.alpha, r.beta, algo, {},
                                        &stats, &scratch, &ws);
      EXPECT_EQ(serial.outcomes[i].found, direct.found) << i;
      EXPECT_EQ(serial.outcomes[i].community_edges, c.edges.size()) << i;
      EXPECT_EQ(serial.outcomes[i].result_edges, direct.community.edges.size())
          << i;
      EXPECT_DOUBLE_EQ(serial.outcomes[i].significance, direct.significance)
          << i;
      EXPECT_EQ(serial.outcomes[i].algo_used, stats.algo_used) << i;
      // The worker's per-query extraction takes the same code path, so the
      // retained community is byte-identical, not merely set-equal.
      EXPECT_EQ(serial.communities[i].edges, direct.community.edges) << i;
    }

    for (const unsigned threads : {2u, 5u}) {
      options.num_threads = threads;
      const ScsBatchResult mt = engine.RunScsBatch(requests, options);
      ASSERT_EQ(mt.outcomes.size(), serial.outcomes.size());
      for (std::size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ(mt.outcomes[i].found, serial.outcomes[i].found);
        EXPECT_EQ(mt.outcomes[i].result_edges, serial.outcomes[i].result_edges);
        EXPECT_DOUBLE_EQ(mt.outcomes[i].significance,
                         serial.outcomes[i].significance);
        EXPECT_EQ(mt.outcomes[i].algo_used, serial.outcomes[i].algo_used);
        EXPECT_EQ(mt.outcomes[i].validations, serial.outcomes[i].validations);
        EXPECT_EQ(mt.outcomes[i].incremental_probes,
                  serial.outcomes[i].incremental_probes);
        EXPECT_EQ(mt.outcomes[i].edges_processed,
                  serial.outcomes[i].edges_processed);
        EXPECT_EQ(mt.communities[i].edges, serial.communities[i].edges);
      }
      // Aggregates over identical outcomes are identical too.
      EXPECT_EQ(mt.stats.num_found, serial.stats.num_found);
      EXPECT_EQ(mt.stats.total_result_edges, serial.stats.total_result_edges);
      EXPECT_EQ(mt.stats.edges_processed, serial.stats.edges_processed);
    }
  }
}

// ----------------------------------------------- zero-allocation steady --

TEST(ScsEngineTest, ZeroAllocationsSteadyState) {
  const BipartiteGraph g = RandomWeightedGraph(60, 60, 700, 29, 5);
  const DeltaIndex delta = DeltaIndex::Build(g);
  const QueryEngine engine(g, QueryMethod::kDelta, &delta);
  const std::vector<QueryRequest> requests = MixedRequests(g, 150, 13);

  for (const ScsAlgo algo : {ScsAlgo::kAuto, ScsAlgo::kPeel, ScsAlgo::kExpand,
                             ScsAlgo::kBinary}) {
    QueryScratch scratch;
    ScsWorkspace ws;
    Subgraph community;
    ScsResult out;
    auto run_all = [&]() {
      for (const QueryRequest& r : requests) {
        engine.Query(r, scratch, &community);
        ScsQueryInto(g, community, r.q, r.alpha, r.beta, algo, {}, &out,
                     nullptr, &scratch, &ws);
      }
    };
    run_all();  // warm-up: grow every pooled buffer to its high-water mark
    const uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed);
    run_all();  // steady state
    EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), allocs)
        << "algo=" << ScsAlgoName(algo);
  }
}

// ------------------------------------------------------- planner shape ---

TEST(ScsEngineTest, PlannerRoutesPlantedTinyPrefixToExpand) {
  // A small high-weight block planted inside a big low-weight blob: q's
  // threshold-th strongest edge sits in the tiny top batch, so the
  // batch-aligned prefix proxy is far below the Expand threshold — the
  // regime where Expand touches O(ε·size(R)) edges while Peel and Binary
  // pay a full O(size(C)) stabilisation.
  GraphBuilder builder;
  Rng rng(77);
  const uint32_t kBlob = 300;
  for (uint32_t u = 0; u < kBlob; ++u) {
    for (int k = 0; k < 6; ++k) {
      builder.AddEdge(u, static_cast<uint32_t>(rng.NextBounded(kBlob)),
                      1.0 + rng.NextBounded(5));
    }
  }
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = 0; j < 4; ++j) builder.AddEdge(i, j, 100.0);
  }
  BipartiteGraph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  const DeltaIndex index = DeltaIndex::Build(g);
  const Subgraph c = index.QueryCommunity(0, 3, 3);
  ASSERT_FALSE(c.Empty());
  LocalGraph lg(g, c.edges);
  ASSERT_GT(lg.NumEdges(), 512u);
  EXPECT_EQ(PlanScsAlgo(lg, 0, 3, 3), ScsAlgo::kExpand);
}

TEST(ScsEngineTest, PlannerDefaultsToPeelWhenPrefixIsNotThin) {
  // Uniform small-integer weights: q's threshold-th edge lands in a batch
  // covering a large share of C, so the cheap-constant Peel is the pick.
  const BipartiteGraph g = RandomWeightedGraph(80, 80, 1400, 31, 4);
  const DeltaIndex index = DeltaIndex::Build(g);
  Rng rng(8);
  int checked = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const VertexId q = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const Subgraph c = index.QueryCommunity(q, 2, 2);
    if (c.Empty()) continue;
    LocalGraph lg(g, c.edges);
    if (lg.NumEdges() <= 512) continue;
    // With ≤ 4 distinct weights every batch holds ≳ m/4 edges, so the
    // batch-aligned prefix can never look thin.
    EXPECT_EQ(PlanScsAlgo(lg, q, 2, 2), ScsAlgo::kPeel);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(ScsEngineTest, PlannerFallsBackToPeelOnTinyCommunities) {
  const BipartiteGraph g = RandomWeightedGraph(20, 20, 150, 31, 4);
  const DeltaIndex index = DeltaIndex::Build(g);
  const Subgraph c = index.QueryCommunity(0, 2, 2);
  if (c.Empty()) GTEST_SKIP();
  LocalGraph lg(g, c.edges);
  ASSERT_LE(lg.NumEdges(), 512u);
  EXPECT_EQ(PlanScsAlgo(lg, 0, 2, 2), ScsAlgo::kPeel);
}

}  // namespace
}  // namespace abcs
