// Snapshot-versioned live serving: RCU epoch pinning, the single-writer
// update queue, selective memo invalidation across publishes, and the
// mixed read/write stress where every reader response must be consistent
// with exactly the committed prefix its epoch names. The whole suite is
// tsan-able — readers, writer and publisher race by design.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "abcore/offsets.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "core/maintenance.h"
#include "io/index_bundle.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "test_util.h"

namespace abcs::serve {
namespace {

using ::abcs::testing::MakeGraph;

// K_{3,3} (upper 0-2 x lower 0-2) plus `spares` two-vertex components
// u_{3+k} — v_{3+k}. Inserting (u_{3+k}, v_0) merges spare k into the big
// component, growing C_{1,1}(u_0) by exactly 2 edges per merge — the
// arithmetic every stress reader checks against its response epoch.
BipartiteGraph StressGraph(uint32_t spares) {
  std::vector<std::tuple<uint32_t, uint32_t, Weight>> triples;
  for (uint32_t u = 0; u < 3; ++u) {
    for (uint32_t v = 0; v < 3; ++v) triples.emplace_back(u, v, 1.0);
  }
  for (uint32_t k = 0; k < spares; ++k) {
    triples.emplace_back(3 + k, 3 + k, 1.0);
  }
  return MakeGraph(triples);
}

struct ManagerHarness {
  BipartiteGraph graph;
  DeltaIndex delta;
  BicoreIndex bicore;
  std::unique_ptr<SnapshotManager> manager;

  explicit ManagerHarness(const BipartiteGraph& g,
                          SnapshotManagerOptions options = {})
      : graph(g),
        delta(DeltaIndex::Build(graph)),
        bicore(BicoreIndex::Build(graph)) {
    manager = std::make_unique<SnapshotManager>(graph, &delta, &bicore,
                                                nullptr, options);
  }

  // Blocking op: returns the wire status the writer answered.
  WireStatus Apply(UpdateOp op, uint32_t u, uint32_t v, double w,
                   uint64_t* epoch = nullptr) {
    std::promise<std::pair<WireStatus, uint64_t>> done;
    auto fut = done.get_future();
    manager->Enqueue(op, u, v, w, [&done](WireStatus ws, uint64_t e) {
      done.set_value({ws, e});
    });
    const auto [ws, e] = fut.get();
    if (epoch != nullptr) *epoch = e;
    return ws;
  }
};

TEST(SnapshotManagerTest, CommitPublishesAndPinsRetireSafely) {
  ManagerHarness h(StressGraph(4));
  ASSERT_TRUE(h.manager->Start().ok());
  ASSERT_EQ(h.manager->Epoch(), 1u);

  // Pin epoch 1 before any update exists.
  std::shared_ptr<const Snapshot> pinned = h.manager->Current();
  ASSERT_EQ(pinned->epoch(), 1u);
  const uint32_t before = pinned->graph().NumEdges();

  EXPECT_EQ(h.Apply(UpdateOp::kInsertEdge, 3, 0, 1.0), WireStatus::kOk);
  uint64_t epoch = 0;
  EXPECT_EQ(h.Apply(UpdateOp::kCommit, 0, 0, 0.0, &epoch), WireStatus::kOk);
  EXPECT_EQ(epoch, 2u);
  EXPECT_EQ(h.manager->Epoch(), 2u);

  // The published snapshot sees the new edge; the pinned one never does —
  // and stays fully usable after further publishes retire its successors.
  std::shared_ptr<const Snapshot> fresh = h.manager->Current();
  EXPECT_EQ(fresh->graph().NumEdges(), before + 1);
  for (uint32_t k = 1; k < 4; ++k) {
    ASSERT_EQ(h.Apply(UpdateOp::kInsertEdge, 3 + k, 0, 1.0), WireStatus::kOk);
    ASSERT_EQ(h.Apply(UpdateOp::kCommit, 0, 0, 0.0), WireStatus::kOk);
  }
  // ASan proves the pinned arenas were not freed under us.
  EXPECT_EQ(pinned->graph().NumEdges(), before);
  QueryScratch scratch;
  Subgraph community;
  pinned->delta_engine().Query(QueryRequest{0, 1, 1}, scratch, &community);
  EXPECT_EQ(community.edges.size(), 9u);
  fresh = h.manager->Current();
  fresh->delta_engine().Query(QueryRequest{0, 1, 1}, scratch, &community);
  EXPECT_EQ(community.edges.size(), 9u + 2 * 4);
}

TEST(SnapshotManagerTest, ConflictsAndEmptyCommitsAreCheap) {
  ManagerHarness h(StressGraph(2));
  ASSERT_TRUE(h.manager->Start().ok());

  // Duplicate insert and missing-edge remove answer kConflict and do not
  // dirty the batch: the following commit is an empty no-op.
  EXPECT_EQ(h.Apply(UpdateOp::kInsertEdge, 0, 0, 1.0), WireStatus::kConflict);
  EXPECT_EQ(h.Apply(UpdateOp::kRemoveEdge, 3, 0, 0.0), WireStatus::kConflict);
  EXPECT_EQ(h.Apply(UpdateOp::kReweightEdge, 3, 0, 9.0),
            WireStatus::kConflict);
  uint64_t epoch = 0;
  EXPECT_EQ(h.Apply(UpdateOp::kCommit, 0, 0, 0.0, &epoch), WireStatus::kOk);
  EXPECT_EQ(epoch, 1u) << "empty commit must not publish";

  const UpdateStats stats = h.manager->Stats();
  EXPECT_EQ(stats.applied, 0u);
  EXPECT_EQ(stats.conflicts, 3u);
  EXPECT_EQ(stats.commits, 0u);
}

TEST(SnapshotManagerTest, WeightsOnlyPublishSharesDecomposition) {
  ManagerHarness h(StressGraph(2));
  ASSERT_TRUE(h.manager->Start().ok());

  // First publish is topological by construction (no prior export).
  ASSERT_EQ(h.Apply(UpdateOp::kReweightEdge, 0, 0, 7.5), WireStatus::kOk);
  ASSERT_EQ(h.Apply(UpdateOp::kCommit, 0, 0, 0.0), WireStatus::kOk);
  const std::shared_ptr<const Snapshot> snap2 = h.manager->Current();
  ASSERT_NE(snap2->decomposition(), nullptr);

  // A weights-only batch must reuse the predecessor's decomposition
  // object — structural sharing, not a rebuild.
  ASSERT_EQ(h.Apply(UpdateOp::kReweightEdge, 0, 1, 3.25), WireStatus::kOk);
  ASSERT_EQ(h.Apply(UpdateOp::kCommit, 0, 0, 0.0), WireStatus::kOk);
  const std::shared_ptr<const Snapshot> snap3 = h.manager->Current();
  EXPECT_EQ(snap3->decomposition(), snap2->decomposition());

  // A topological batch gets a fresh one, equal to a from-scratch peel.
  ASSERT_EQ(h.Apply(UpdateOp::kInsertEdge, 3, 0, 1.0), WireStatus::kOk);
  ASSERT_EQ(h.Apply(UpdateOp::kCommit, 0, 0, 0.0), WireStatus::kOk);
  const std::shared_ptr<const Snapshot> snap4 = h.manager->Current();
  EXPECT_NE(snap4->decomposition(), snap3->decomposition());
  EXPECT_EQ(*snap4->decomposition(),
            ComputeBicoreDecomposition(snap4->graph()));
}

TEST(SnapshotManagerTest, DrainPublishesUncommittedTail) {
  ManagerHarness h(StressGraph(3));
  ASSERT_TRUE(h.manager->Start().ok());
  for (uint32_t k = 0; k < 3; ++k) {
    ASSERT_EQ(h.Apply(UpdateOp::kInsertEdge, 3 + k, 0, 1.0), WireStatus::kOk);
  }
  // No commit — SIGTERM semantics: Drain applies and publishes the tail.
  h.manager->Drain();
  const std::shared_ptr<const Snapshot> snap = h.manager->Current();
  EXPECT_EQ(snap->epoch(), 2u);
  EXPECT_EQ(snap->graph().NumEdges(), h.graph.NumEdges() + 3);
  // Late ops are cleanly rejected, never silently dropped.
  std::atomic<int> status{-1};
  EXPECT_FALSE(h.manager->Enqueue(
      UpdateOp::kInsertEdge, 0, 0, 1.0,
      [&](WireStatus ws, uint64_t) { status = static_cast<int>(ws); }));
  EXPECT_EQ(status.load(), static_cast<int>(WireStatus::kShuttingDown));
}

TEST(SnapshotManagerTest, FullQueueAnswersOverloaded) {
  SnapshotManagerOptions options;
  options.update_queue = 2;
  ManagerHarness h(StressGraph(2), options);
  ASSERT_TRUE(h.manager->Start().ok());

  // Park the writer inside the first op's completion callback so the
  // queue depth is under test control.
  std::promise<void> writer_busy;
  std::promise<void> release_writer;
  std::shared_future<void> release = release_writer.get_future().share();
  ASSERT_TRUE(h.manager->Enqueue(UpdateOp::kReweightEdge, 0, 0, 2.0,
                                 [&, release](WireStatus, uint64_t) {
                                   writer_busy.set_value();
                                   release.wait();
                                 }));
  writer_busy.get_future().wait();

  // Queue capacity 2 while the writer is parked: two admits, then reject.
  ASSERT_TRUE(
      h.manager->Enqueue(UpdateOp::kReweightEdge, 0, 1, 2.0, nullptr));
  ASSERT_TRUE(
      h.manager->Enqueue(UpdateOp::kReweightEdge, 0, 2, 2.0, nullptr));
  std::atomic<int> status{-1};
  EXPECT_FALSE(h.manager->Enqueue(
      UpdateOp::kReweightEdge, 1, 0, 2.0,
      [&](WireStatus ws, uint64_t) { status = static_cast<int>(ws); }));
  EXPECT_EQ(status.load(), static_cast<int>(WireStatus::kOverloaded));

  release_writer.set_value();
  h.manager->Drain();
  EXPECT_EQ(h.manager->Stats().overflows, 1u);
  EXPECT_EQ(h.manager->Stats().applied, 3u);
}

TEST(SnapshotManagerTest, CompactionWritesVerifiableBundle) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "abcs_snapshot_compact_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string bundle_path = (dir / "serve.abcs").string();

  SnapshotManagerOptions options;
  options.compact_path = bundle_path;
  options.compact_every = 1;  // compact at every publish
  ManagerHarness h(StressGraph(2), options);
  ASSERT_TRUE(h.manager->Start().ok());
  ASSERT_EQ(h.Apply(UpdateOp::kInsertEdge, 3, 0, 1.0), WireStatus::kOk);
  ASSERT_EQ(h.Apply(UpdateOp::kCommit, 0, 0, 0.0), WireStatus::kOk);
  h.manager->Drain();
  EXPECT_GE(h.manager->Stats().compactions, 1u);

  // The bundle on disk opens, verifies and matches the served graph.
  std::unique_ptr<IndexBundle> bundle;
  ASSERT_TRUE(OpenIndexBundle(bundle_path, &bundle).ok());
  const std::shared_ptr<const Snapshot> snap = h.manager->Current();
  ASSERT_TRUE(VerifyBundleMatchesGraph(*bundle, snap->graph()).ok());
  EXPECT_EQ(bundle->graph().NumEdges(), snap->graph().NumEdges());
  std::filesystem::remove_all(dir);
}

// --------------------------------------------------------- server level --

struct ServeHarness {
  BipartiteGraph graph;
  DeltaIndex delta;
  BicoreIndex bicore;
  std::unique_ptr<Server> server;

  explicit ServeHarness(const BipartiteGraph& g, ServerOptions options = {})
      : graph(g),
        delta(DeltaIndex::Build(graph)),
        bicore(BicoreIndex::Build(graph)) {
    options.enable_updates = true;
    server = std::make_unique<Server>(graph, &delta, &bicore, options);
    const Status st = server->Start();
    if (!st.ok()) ADD_FAILURE() << "server start failed: " << st.ToString();
  }

  ~ServeHarness() {
    if (server != nullptr) server->Shutdown();
  }

  Client Connect() {
    Client client;
    const Status st = client.Connect("127.0.0.1", server->port());
    if (!st.ok()) ADD_FAILURE() << "connect failed: " << st.ToString();
    return client;
  }
};

WireRequest Query(uint32_t q, uint32_t alpha, uint32_t beta,
                  WireMethod method = WireMethod::kDelta) {
  WireRequest req;
  req.method = method;
  req.q = q;
  req.alpha = alpha;
  req.beta = beta;
  return req;
}

TEST(SnapshotServingTest, UpdatesDisabledServerRejectsButStillServes) {
  BipartiteGraph g = StressGraph(1);
  DeltaIndex delta = DeltaIndex::Build(g);
  BicoreIndex bicore = BicoreIndex::Build(g);
  Server server(g, &delta, &bicore, ServerOptions{});  // updates off
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  WireResponse resp;
  ASSERT_TRUE(
      client.Update(UpdateOp::kInsertEdge, 3, 0, 1.0, &resp).ok());
  EXPECT_EQ(resp.status, WireStatus::kUpdatesDisabled);
  ASSERT_TRUE(client.Call(Query(0, 1, 1), &resp).ok());
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(resp.epoch, 1u);
  EXPECT_EQ(resp.num_edges, 9u);
  server.Shutdown();
}

TEST(SnapshotServingTest, CommittedUpdatesChangeAnswersAndEpochs) {
  ServeHarness h(StressGraph(2));
  Client client = h.Connect();

  WireResponse resp;
  ASSERT_TRUE(client.Call(Query(0, 1, 1), &resp).ok());
  ASSERT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(resp.epoch, 1u);
  EXPECT_EQ(resp.num_edges, 9u);

  // Insert + commit through the wire; the publish is visible by the time
  // the commit response lands (the writer publishes before answering).
  ASSERT_TRUE(
      client.Update(UpdateOp::kInsertEdge, 3, 0, 1.0, &resp).ok());
  ASSERT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(resp.epoch, 1u) << "mutation answers the visible epoch";
  uint64_t epoch = 0;
  ASSERT_TRUE(client.Commit(&epoch).ok());
  EXPECT_EQ(epoch, 2u);

  ASSERT_TRUE(client.Call(Query(0, 1, 1), &resp).ok());
  ASSERT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(resp.epoch, 2u);
  EXPECT_EQ(resp.num_edges, 11u);  // merged the spare component

  // Bad updates answer per-op statuses without killing the stream.
  ASSERT_TRUE(
      client.Update(UpdateOp::kInsertEdge, 3, 0, 1.0, &resp).ok());
  EXPECT_EQ(resp.status, WireStatus::kConflict);
  ASSERT_TRUE(
      client.Update(UpdateOp::kRemoveEdge, 99, 0, 0.0, &resp).ok());
  EXPECT_EQ(resp.status, WireStatus::kInvalidVertex);
  ASSERT_TRUE(client.Ping(&epoch).ok());
  EXPECT_EQ(epoch, 2u);
}

// The satellite regression: a publish that touches one component leaves
// the other component's memo entries warm — observable as memo_hit=true
// across the epoch boundary.
TEST(SnapshotServingTest, PublishKeepsUntouchedComponentMemoWarm) {
  // Components A = u{0,1} x v{0,1}, B = u{2,3} x v{2,3}, spare u4—v4.
  std::vector<std::tuple<uint32_t, uint32_t, Weight>> triples;
  for (uint32_t u : {0u, 1u}) {
    for (uint32_t v : {0u, 1u}) triples.emplace_back(u, v, 1.0);
  }
  for (uint32_t u : {2u, 3u}) {
    for (uint32_t v : {2u, 3u}) triples.emplace_back(u, v, 1.0);
  }
  triples.emplace_back(4, 4, 1.0);
  ServerOptions options;
  options.num_threads = 1;  // deterministic memo fill
  ServeHarness h(MakeGraph(triples), options);
  Client client = h.Connect();

  // Warm both components.
  WireResponse resp;
  for (const uint32_t q : {0u, 2u}) {
    ASSERT_TRUE(client.Call(Query(q, 2, 2), &resp).ok());
    ASSERT_EQ(resp.status, WireStatus::kOk);
    EXPECT_FALSE(resp.memo_hit);
    EXPECT_EQ(resp.num_edges, 4u);
    ASSERT_TRUE(client.Call(Query(q, 2, 2), &resp).ok());
    EXPECT_TRUE(resp.memo_hit) << "q=" << q;
  }

  // Touch component A only: u4—v0 attaches near A, then commit.
  ASSERT_TRUE(
      client.Update(UpdateOp::kInsertEdge, 4, 0, 1.0, &resp).ok());
  ASSERT_EQ(resp.status, WireStatus::kOk);
  ASSERT_TRUE(client.Commit(nullptr).ok());

  // B stays warm across the publish; A was dropped and recomputes.
  ASSERT_TRUE(client.Call(Query(2, 2, 2), &resp).ok());
  EXPECT_TRUE(resp.memo_hit) << "untouched component must survive publish";
  EXPECT_EQ(resp.epoch, 2u);
  ASSERT_TRUE(client.Call(Query(0, 2, 2), &resp).ok());
  EXPECT_FALSE(resp.memo_hit) << "touched component must be invalidated";
  EXPECT_EQ(resp.num_edges, 4u);  // u4/v4 still fail the (2,2) degree bar
}

// Mixed read/write stress: concurrent readers + one committing writer.
// Every response pins an epoch, and |C_{1,1}(u0)| at epoch e is exactly
// 9 + 2(e-1) — any torn or cross-epoch read breaks the equation.
TEST(SnapshotServingTest, StressReadersObservePrefixConsistentEpochs) {
  constexpr uint32_t kSpares = 24;
  ServerOptions options;
  options.num_threads = 4;
  ServeHarness h(StressGraph(kSpares), options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      Client client;
      if (!client.Connect("127.0.0.1", h.server->port()).ok()) {
        ADD_FAILURE() << "reader connect failed";
        return;
      }
      WireResponse resp;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!client.Call(Query(0, 1, 1), &resp).ok()) {
          ADD_FAILURE() << "reader transport error";
          return;
        }
        if (resp.status != WireStatus::kOk) continue;  // shutdown race
        ASSERT_GE(resp.epoch, 1u);
        ASSERT_LE(resp.epoch, 1u + kSpares);
        ASSERT_EQ(resp.num_edges, 9u + 2 * (resp.epoch - 1))
            << "epoch " << resp.epoch << " answered a torn state";
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Client updater = h.Connect();
  for (uint32_t k = 0; k < kSpares; ++k) {
    WireResponse resp;
    ASSERT_TRUE(
        updater.Update(UpdateOp::kInsertEdge, 3 + k, 0, 1.0, &resp).ok());
    ASSERT_EQ(resp.status, WireStatus::kOk) << "insert " << k;
    uint64_t epoch = 0;
    ASSERT_TRUE(updater.Commit(&epoch).ok());
    ASSERT_EQ(epoch, 2u + k);
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);

  // Final state sanity through a fresh connection.
  Client client = h.Connect();
  WireResponse resp;
  ASSERT_TRUE(client.Call(Query(0, 1, 1), &resp).ok());
  EXPECT_EQ(resp.epoch, 1u + kSpares);
  EXPECT_EQ(resp.num_edges, 9u + 2 * kSpares);
  const ServeStats stats = h.server->Stats();
  EXPECT_EQ(stats.updates_applied, kSpares);
  EXPECT_EQ(stats.epochs_published, kSpares);
  EXPECT_EQ(stats.update_conflicts, 0u);
}

// ----------------------------------------------------- dynamic index ----

TEST(DynamicDeltaIndexTest, EpochAndSummaryTrackMutations) {
  const BipartiteGraph g = StressGraph(2);
  DynamicDeltaIndex dyn(g);
  EXPECT_EQ(dyn.Epoch(), 0u);

  ASSERT_TRUE(dyn.InsertEdge(3, g.NumUpper() + 0, 1.0).ok());
  EXPECT_EQ(dyn.Epoch(), 1u);
  ASSERT_TRUE(dyn.UpdateWeight(0, g.NumUpper() + 0, 4.5).ok());
  EXPECT_EQ(dyn.Epoch(), 2u);
  EXPECT_FALSE(dyn.UpdateWeight(4, g.NumUpper() + 0, 1.0).ok())
      << "reweighting an absent edge must fail";

  UpdateSummary summary = dyn.DrainSummary();
  EXPECT_EQ(summary.epoch, 2u);
  EXPECT_TRUE(summary.topology_changed);
  EXPECT_TRUE(summary.weights_changed);
  // Both endpoints of the inserted edge are in the touched set.
  std::vector<uint8_t> touched(g.NumVertices(), 0);
  for (const VertexId x : summary.touched) touched[x] = 1;
  EXPECT_TRUE(touched[3]);
  EXPECT_TRUE(touched[g.NumUpper() + 0]);

  // Drained: the next summary starts clean.
  summary = dyn.DrainSummary();
  EXPECT_FALSE(summary.topology_changed);
  EXPECT_FALSE(summary.weights_changed);
  EXPECT_TRUE(summary.touched.empty());

  // Weights-only mutation reports weights_changed but not topology.
  ASSERT_TRUE(dyn.UpdateWeight(0, g.NumUpper() + 1, 2.25).ok());
  summary = dyn.DrainSummary();
  EXPECT_FALSE(summary.topology_changed);
  EXPECT_TRUE(summary.weights_changed);

  // The exported graph carries the reweights.
  const BipartiteGraph out = dyn.ExportGraph();
  bool found = false;
  for (const Arc& a : out.Neighbors(0)) {
    if (a.to == out.NumUpper() + 0) {
      EXPECT_EQ(out.GetEdge(a.eid).w, 4.5);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DynamicDeltaIndexTest, ExportDecompositionMatchesFreshPeel) {
  const BipartiteGraph g = StressGraph(3);
  DynamicDeltaIndex dyn(g);
  ASSERT_TRUE(dyn.InsertEdge(3, g.NumUpper() + 0, 1.0).ok());
  ASSERT_TRUE(dyn.InsertEdge(4, g.NumUpper() + 1, 1.0).ok());
  ASSERT_TRUE(dyn.RemoveEdge(5, g.NumUpper() + 5).ok());
  const BipartiteGraph out = dyn.ExportGraph();
  EXPECT_EQ(dyn.ExportDecomposition(), ComputeBicoreDecomposition(out));
}

}  // namespace
}  // namespace abcs::serve
