// Crash-safe compaction: a fork()ed child is killed at every named fault
// point of the bundle save path (plus short-write variants), and the
// survivor on disk must always open as a fully verified old-or-new
// bundle — never a torn one. Also covers truncation rejection and the
// `.prev` fallback with its logged diagnostic.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "abcore/offsets.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "io/fault_inject.h"
#include "io/index_bundle.h"
#include "test_util.h"

namespace abcs {
namespace {

using ::abcs::testing::MakeGraph;

/// Everything a SaveIndexBundle call needs, built once per graph.
struct Artifacts {
  BipartiteGraph graph;
  BicoreDecomposition decomp;
  DeltaIndex delta;
  BicoreIndex bicore;

  explicit Artifacts(BipartiteGraph g)
      : graph(std::move(g)),
        decomp(ComputeBicoreDecomposition(graph)),
        delta(DeltaIndex::Build(graph, &decomp)),
        bicore(BicoreIndex::Build(graph, &decomp)) {}

  Status Save(const std::string& path, bool keep_previous) const {
    SaveBundleOptions options;
    options.keep_previous = keep_previous;
    return SaveIndexBundle(graph, decomp, delta, bicore, path, options);
  }
};

BipartiteGraph GraphV1() {
  std::vector<std::tuple<uint32_t, uint32_t, Weight>> triples;
  for (uint32_t u = 0; u < 4; ++u) {
    for (uint32_t v = 0; v < 4; ++v) triples.emplace_back(u, v, 1.0 + u + v);
  }
  return MakeGraph(triples);
}

BipartiteGraph GraphV2() {
  std::vector<std::tuple<uint32_t, uint32_t, Weight>> triples;
  for (uint32_t u = 0; u < 4; ++u) {
    for (uint32_t v = 0; v < 4; ++v) triples.emplace_back(u, v, 2.0 + u + v);
  }
  triples.emplace_back(4, 0, 7.0);  // different topology AND weights
  return MakeGraph(triples);
}

class CrashMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("abcs_crash_matrix_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "bundle.abcs").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Forks; the child arms the fault, saves v2 over v1 and dies (or
  /// exits 0 when the fault never fires). Returns the child exit code.
  int CrashingSave(const Artifacts& v2, const std::string& point,
                   FaultInjector::Action action, uint64_t short_bytes) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      FaultInjector::Instance().Arm(point, action, short_bytes);
      const Status st = v2.Save(path_, /*keep_previous=*/true);
      ::_exit(st.ok() ? 0 : 1);
    }
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
    return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
  }

  /// The survivor invariant: whatever is on disk opens (directly or via
  /// `.prev` fallback) and verifies as exactly the old or the new state.
  void ExpectOldOrNew(const Artifacts& v1, const Artifacts& v2,
                      const char* context) {
    std::unique_ptr<IndexBundle> bundle;
    std::string diagnostic;
    ASSERT_TRUE(OpenBundleWithFallback(path_, &bundle, {}, &diagnostic).ok())
        << context << ": survivor did not open";
    const uint32_t edges = bundle->graph().NumEdges();
    if (edges == v2.graph.NumEdges()) {
      EXPECT_TRUE(VerifyBundleMatchesGraph(*bundle, v2.graph).ok())
          << context << ": new-state survivor failed verification";
    } else {
      ASSERT_EQ(edges, v1.graph.NumEdges())
          << context << ": survivor is neither old nor new";
      EXPECT_TRUE(VerifyBundleMatchesGraph(*bundle, v1.graph).ok())
          << context << ": old-state survivor failed verification";
    }
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(CrashMatrixTest, KillAtEveryFaultPointRecoversOldOrNew) {
  const Artifacts v1(GraphV1());
  const Artifacts v2(GraphV2());
  for (const char* point : BundleSaveFaultPoints()) {
    // Fresh old state for every kill point.
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    ASSERT_TRUE(v1.Save(path_, /*keep_previous=*/false).ok());

    const int code =
        CrashingSave(v2, point, FaultInjector::Action::kCrash, 0);
    ASSERT_EQ(code, kFaultCrashExitCode)
        << "fault point " << point << " never fired";
    ExpectOldOrNew(v1, v2, point);
  }
}

TEST_F(CrashMatrixTest, ShortWriteThenKillRecoversOldOrNew) {
  const Artifacts v1(GraphV1());
  const Artifacts v2(GraphV2());
  const struct {
    const char* label;
    uint64_t bytes;
  } cases[] = {
      {"bundle_save.meta", 0},       // nothing lands
      {"bundle_save.meta", 7},       // torn magic/header
      {"bundle_save.meta", 55},      // header survives, TOC torn
      {"bundle_save.sections", 0},   // meta only
      {"bundle_save.sections", 33},  // first section torn mid-payload
  };
  for (const auto& c : cases) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    ASSERT_TRUE(v1.Save(path_, /*keep_previous=*/false).ok());

    const int code = CrashingSave(v2, c.label,
                                  FaultInjector::Action::kShortWrite, c.bytes);
    ASSERT_EQ(code, kFaultCrashExitCode)
        << c.label << "=" << c.bytes << " never fired";
    // A short write dies inside the tmp file: the live bundle is intact,
    // so this must always recover the OLD state.
    std::unique_ptr<IndexBundle> bundle;
    ASSERT_TRUE(OpenBundleWithFallback(path_, &bundle, {}, nullptr).ok());
    EXPECT_EQ(bundle->graph().NumEdges(), v1.graph.NumEdges())
        << c.label << "=" << c.bytes;
    EXPECT_TRUE(VerifyBundleMatchesGraph(*bundle, v1.graph).ok());
    ExpectOldOrNew(v1, v2, c.label);
  }
}

TEST_F(CrashMatrixTest, TruncatedBundleIsRejectedNotMisread) {
  const Artifacts v1(GraphV1());
  ASSERT_TRUE(v1.Save(path_, /*keep_previous=*/false).ok());
  const auto full = std::filesystem::file_size(path_);
  for (const std::uintmax_t keep :
       {std::uintmax_t{0}, std::uintmax_t{7}, full / 2, full - 1}) {
    std::filesystem::resize_file(path_, keep);
    std::unique_ptr<IndexBundle> bundle;
    EXPECT_FALSE(OpenIndexBundle(path_, &bundle).ok()) << "keep=" << keep;
    // No .prev exists either: the fallback opener must fail loudly too.
    EXPECT_FALSE(OpenBundleWithFallback(path_, &bundle, {}, nullptr).ok());
    ASSERT_TRUE(v1.Save(path_, /*keep_previous=*/false).ok());
  }
}

TEST_F(CrashMatrixTest, CorruptBundleFallsBackToPrevWithDiagnostic) {
  const Artifacts v1(GraphV1());
  const Artifacts v2(GraphV2());
  // v1 live, then v2 over it with rotation: path = v2, path.prev = v1.
  ASSERT_TRUE(v1.Save(path_, /*keep_previous=*/false).ok());
  ASSERT_TRUE(v2.Save(path_, /*keep_previous=*/true).ok());
  ASSERT_TRUE(std::filesystem::exists(path_ + ".prev"));

  // Intact: opens the new state, no diagnostic.
  {
    std::unique_ptr<IndexBundle> bundle;
    std::string diagnostic;
    ASSERT_TRUE(OpenBundleWithFallback(path_, &bundle, {}, &diagnostic).ok());
    EXPECT_TRUE(diagnostic.empty());
    EXPECT_EQ(bundle->graph().NumEdges(), v2.graph.NumEdges());
  }

  // Corrupt the live bundle: falls back to the previous epoch, says so.
  std::filesystem::resize_file(path_, std::filesystem::file_size(path_) / 2);
  {
    std::unique_ptr<IndexBundle> bundle;
    std::string diagnostic;
    ASSERT_TRUE(OpenBundleWithFallback(path_, &bundle, {}, &diagnostic).ok());
    EXPECT_FALSE(diagnostic.empty());
    EXPECT_NE(diagnostic.find("recovered from previous epoch"),
              std::string::npos)
        << diagnostic;
    EXPECT_EQ(bundle->graph().NumEdges(), v1.graph.NumEdges());
    EXPECT_TRUE(VerifyBundleMatchesGraph(*bundle, v1.graph).ok());
  }

  // Both torn: the composed error names both casualties.
  std::filesystem::resize_file(path_ + ".prev", 9);
  std::unique_ptr<IndexBundle> bundle;
  std::string diagnostic;
  EXPECT_FALSE(OpenBundleWithFallback(path_, &bundle, {}, &diagnostic).ok());
}

TEST(FaultInjectorTest, DisarmedSeamsAreTransparent) {
  FaultInjector& fi = FaultInjector::Instance();
  fi.Disarm();
  EXPECT_FALSE(fi.armed());
  FaultPoint("bundle_save.after_meta");  // must not crash
  EXPECT_EQ(FaultWriteBudget("bundle_save.meta", 128u), 128u);

  // Armed at a different point: still transparent here.
  fi.Arm("bundle_save.sections", FaultInjector::Action::kShortWrite, 5);
  EXPECT_TRUE(fi.armed());
  EXPECT_EQ(FaultWriteBudget("bundle_save.meta", 128u), 128u);
  EXPECT_EQ(FaultWriteBudget("bundle_save.sections", 128u), 5u);
  fi.Disarm();
  EXPECT_EQ(FaultWriteBudget("bundle_save.sections", 128u), 128u);
}

}  // namespace
}  // namespace abcs
