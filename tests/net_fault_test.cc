// Unit tests for the non-crashing socket fault injector: spec parsing,
// @every cadence, EINTR storms, env routing ("net." prefix) and the
// disarmed fast path. The end-to-end behavior of the injected faults is
// covered by serve_stress_test.cc and scripts/serve_chaos.sh.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "io/fault_inject.h"

namespace abcs {
namespace {

using ActionKind = NetFaultInjector::ActionKind;

// The injector is a process-wide singleton; every test starts and ends
// disarmed so ordering cannot leak faults across tests.
class NetFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { NetFaultInjector::Instance().Disarm(); }
  void TearDown() override {
    NetFaultInjector::Instance().Disarm();
    FaultInjector::Instance().Disarm();
  }
};

TEST_F(NetFaultTest, DisarmedConsultsAreFree) {
  EXPECT_EQ(NetFaultPoint("net.client_send").kind, ActionKind::kNone);
  EXPECT_EQ(NetFaultInjector::Instance().fired("net.client_send"), 0u);
}

TEST_F(NetFaultTest, RejectsMalformedSpecs) {
  NetFaultInjector& inj = NetFaultInjector::Instance();
  const char* bad[] = {
      "net.client_send",            // no '='
      "=reset",                     // empty point
      "net.client_send=",           // empty action
      "net.client_send=explode",    // unknown action
      "net.client_send=reset@0",    // every must be >= 1
      "net.client_send=reset@",     // empty every
      "net.client_send=reset@3x",   // trailing junk in every
      "net.client_send=short:3x",   // trailing junk in arg
  };
  for (const char* spec : bad) {
    EXPECT_FALSE(inj.ArmSpec(spec).ok()) << spec;
  }
  // Nothing was armed by the rejects.
  EXPECT_EQ(NetFaultPoint("net.client_send").kind, ActionKind::kNone);
}

TEST_F(NetFaultTest, EveryNFiresOnExactCadence) {
  NetFaultInjector& inj = NetFaultInjector::Instance();
  ASSERT_TRUE(inj.ArmSpec("net.t=reset@3").ok());
  std::vector<ActionKind> got;
  for (int i = 0; i < 9; ++i) got.push_back(NetFaultPoint("net.t").kind);
  const std::vector<ActionKind> want = {
      ActionKind::kNone,  ActionKind::kNone, ActionKind::kReset,
      ActionKind::kNone,  ActionKind::kNone, ActionKind::kReset,
      ActionKind::kNone,  ActionKind::kNone, ActionKind::kReset};
  EXPECT_EQ(got, want);
  EXPECT_EQ(inj.fired("net.t"), 3u);
}

TEST_F(NetFaultTest, ShortCarriesItsByteBudget) {
  NetFaultInjector& inj = NetFaultInjector::Instance();
  ASSERT_TRUE(inj.ArmSpec("net.a=short:7").ok());
  ASSERT_TRUE(inj.ArmSpec("net.b=short").ok());  // budget defaults to 1
  const NetFaultInjector::Decision a = NetFaultPoint("net.a");
  EXPECT_EQ(a.kind, ActionKind::kShort);
  EXPECT_EQ(a.arg, 7u);
  const NetFaultInjector::Decision b = NetFaultPoint("net.b");
  EXPECT_EQ(b.kind, ActionKind::kShort);
  EXPECT_EQ(b.arg, 1u);
}

TEST_F(NetFaultTest, EintrStormSpansConsecutiveVisits) {
  NetFaultInjector& inj = NetFaultInjector::Instance();
  ASSERT_TRUE(inj.ArmSpec("net.s=eintr:3@5").ok());
  std::vector<ActionKind> got;
  for (int i = 0; i < 10; ++i) got.push_back(NetFaultPoint("net.s").kind);
  // Visits 5,6,7 are one 3-EINTR storm; the cadence then resumes and
  // visit 10 starts the next storm.
  const std::vector<ActionKind> want = {
      ActionKind::kNone,  ActionKind::kNone,  ActionKind::kNone,
      ActionKind::kNone,  ActionKind::kEintr, ActionKind::kEintr,
      ActionKind::kEintr, ActionKind::kNone,  ActionKind::kNone,
      ActionKind::kEintr};
  EXPECT_EQ(got, want);
  EXPECT_EQ(inj.fired("net.s"), 4u);
}

TEST_F(NetFaultTest, PointsAreIndependent) {
  NetFaultInjector& inj = NetFaultInjector::Instance();
  ASSERT_TRUE(inj.ArmSpec("net.x=reset").ok());
  ASSERT_TRUE(inj.ArmSpec("net.y=delay:250").ok());
  EXPECT_EQ(NetFaultPoint("net.other").kind, ActionKind::kNone);
  EXPECT_EQ(NetFaultPoint("net.x").kind, ActionKind::kReset);
  const NetFaultInjector::Decision y = NetFaultPoint("net.y");
  EXPECT_EQ(y.kind, ActionKind::kDelay);
  EXPECT_EQ(y.arg, 250u);
  EXPECT_EQ(inj.fired("net.x"), 1u);
  EXPECT_EQ(inj.fired("net.y"), 1u);
}

TEST_F(NetFaultTest, DisarmDropsEverything) {
  NetFaultInjector& inj = NetFaultInjector::Instance();
  ASSERT_TRUE(inj.ArmSpec("net.x=reset").ok());
  EXPECT_EQ(NetFaultPoint("net.x").kind, ActionKind::kReset);
  inj.Disarm();
  EXPECT_EQ(NetFaultPoint("net.x").kind, ActionKind::kNone);
  EXPECT_EQ(inj.fired("net.x"), 0u);
}

// ABCS_FAULT_INJECT routing: "net."-prefixed specs arm the socket
// injector without enabling the crash injector, and several
// comma-separated specs arm together.
TEST_F(NetFaultTest, EnvRoutesNetSpecsWithoutArmingCrashInjector) {
  ::setenv("ABCS_FAULT_INJECT", "net.e1=reset@2,net.e2=short:9", 1);
  FaultInjector::Instance().ArmFromEnv();
  ::unsetenv("ABCS_FAULT_INJECT");
  EXPECT_FALSE(FaultInjector::Instance().armed());
  EXPECT_EQ(NetFaultPoint("net.e1").kind, ActionKind::kNone);
  EXPECT_EQ(NetFaultPoint("net.e1").kind, ActionKind::kReset);
  const NetFaultInjector::Decision d = NetFaultPoint("net.e2");
  EXPECT_EQ(d.kind, ActionKind::kShort);
  EXPECT_EQ(d.arg, 9u);
}

}  // namespace
}  // namespace abcs
