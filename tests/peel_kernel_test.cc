// Pins the shared peeling kernel (abcore/peel_kernel.h) against brute-force
// definitional references on random graphs: the kernel is the single peel
// implementation under offsets, degeneracy, (α,β)-cores and the SCS peels,
// so definitional drift here would corrupt every index.

#include <gtest/gtest.h>

#include <algorithm>
#include <ranges>

#include "abcore/degeneracy.h"
#include "abcore/offsets.h"
#include "abcore/peel_kernel.h"
#include "abcore/peeling.h"
#include "test_util.h"

namespace abcs {
namespace {

/// O(n·m) reference: repeatedly rescan all vertices until no vertex is
/// below its threshold.
std::vector<uint8_t> NaiveCore(const BipartiteGraph& g, uint32_t alpha,
                               uint32_t beta) {
  const uint32_t n = g.NumVertices();
  std::vector<uint8_t> alive(n, 1);
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      uint32_t d = 0;
      for (const Arc& a : g.Neighbors(v)) d += alive[a.to];
      if (d < (g.IsUpper(v) ? alpha : beta)) {
        alive[v] = 0;
        changed = true;
      }
    }
  }
  return alive;
}

/// Definitional offsets: s_a(v, α) = max β with v ∈ (α,β)-core.
std::vector<uint32_t> NaiveAlphaOffsets(const BipartiteGraph& g,
                                        uint32_t alpha) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> offset(n, 0);
  for (uint32_t beta = 1;; ++beta) {
    const std::vector<uint8_t> alive = NaiveCore(g, alpha, beta);
    bool any = false;
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v]) {
        offset[v] = beta;
        any = true;
      }
    }
    if (!any) return offset;
  }
}

TEST(PeelKernelTest, ThresholdPeelMatchesNaiveCore) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const BipartiteGraph g = testing::RandomWeightedGraph(30, 40, 220, seed);
    for (uint32_t alpha = 1; alpha <= 4; ++alpha) {
      for (uint32_t beta = 1; beta <= 4; ++beta) {
        const CoreResult got = ComputeAlphaBetaCore(g, alpha, beta);
        EXPECT_EQ(got.alive, NaiveCore(g, alpha, beta))
            << "seed=" << seed << " alpha=" << alpha << " beta=" << beta;
      }
    }
  }
}

TEST(PeelKernelTest, LevelPeelerMatchesDefinitionalOffsets) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const BipartiteGraph g = testing::RandomWeightedGraph(25, 35, 180, seed);
    for (uint32_t alpha = 1; alpha <= 4; ++alpha) {
      EXPECT_EQ(ComputeAlphaOffsets(g, alpha), NaiveAlphaOffsets(g, alpha))
          << "seed=" << seed << " alpha=" << alpha;
    }
  }
}

TEST(PeelKernelTest, KCoreNumbersMatchSymmetricCoreMembership) {
  // core[v] ≥ τ ⇔ v ∈ (τ,τ)-core (degeneracy.h): the all-ranked kernel
  // run must agree with the threshold kernel at every τ.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const BipartiteGraph g = testing::RandomWeightedGraph(30, 30, 250, seed);
    const std::vector<uint32_t> core = KCoreNumbers(g);
    uint32_t delta = 0;
    for (uint32_t c : core) delta = std::max(delta, c);
    for (uint32_t tau = 1; tau <= delta + 1; ++tau) {
      const CoreResult r = ComputeAlphaBetaCore(g, tau, tau);
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        EXPECT_EQ(core[v] >= tau, r.alive[v] != 0)
            << "seed=" << seed << " tau=" << tau << " v=" << v;
      }
    }
  }
}

TEST(PeelKernelTest, ThresholdPeelOnRemoveSeesEveryRemoval) {
  const BipartiteGraph g = testing::RandomWeightedGraph(20, 20, 120, 7);
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> deg(n);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.Degree(v);
  std::vector<uint8_t> alive(n, 1);
  std::vector<VertexId> removed;
  PeelInPlace(g, 3, 3, deg, alive, &removed);
  uint32_t dead = 0;
  for (VertexId v = 0; v < n; ++v) dead += alive[v] == 0;
  EXPECT_EQ(removed.size(), dead);
  // Each survivor really satisfies its threshold within the core.
  for (VertexId v = 0; v < n; ++v) {
    if (!alive[v]) continue;
    uint32_t d = 0;
    for (const Arc& a : g.Neighbors(v)) d += alive[a.to];
    EXPECT_EQ(d, deg[v]);
    EXPECT_GE(d, 3u);
  }
}

TEST(PeelKernelTest, PackedPeelMatchesUnpackedOnEveryThreshold) {
  // The bit-packed kernel must reach the identical fixed point as the
  // u32-vector kernel — same survivors, same final degrees — for every
  // (α,β) over random graphs, including widths of 1–2 bits (sparse) and
  // the empty-result regime (thresholds above max degree).
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const BipartiteGraph g = testing::RandomWeightedGraph(30, 40, 220, seed);
    const uint32_t n = g.NumVertices();
    std::vector<uint32_t> base_deg(n);
    for (VertexId v = 0; v < n; ++v) base_deg[v] = g.Degree(v);
    for (uint32_t alpha = 1; alpha <= 5; ++alpha) {
      for (uint32_t beta = 1; beta <= 5; ++beta) {
        const auto threshold = [&](VertexId v) {
          return g.IsUpper(v) ? alpha : beta;
        };
        std::vector<uint32_t> deg = base_deg;
        std::vector<uint8_t> alive(n, 1);
        ThresholdPeel(n, deg, alive, GraphNeighbors(g), threshold,
                      [](VertexId) {});

        PackedU32Array packed;
        packed.Assign(base_deg.data(), n);
        std::vector<uint8_t> packed_alive(n, 1);
        std::vector<VertexId> removed;
        ThresholdPeelPacked(n, packed, packed_alive, GraphNeighbors(g),
                            threshold,
                            [&](VertexId v) { removed.push_back(v); });

        ASSERT_EQ(packed_alive, alive)
            << "seed=" << seed << " alpha=" << alpha << " beta=" << beta;
        uint32_t dead = 0;
        for (VertexId v = 0; v < n; ++v) {
          dead += packed_alive[v] == 0;
          if (packed_alive[v]) {
            ASSERT_EQ(packed.Get(v), deg[v]) << "v=" << v << " seed=" << seed;
          }
        }
        ASSERT_EQ(removed.size(), dead);
      }
    }
  }
}

TEST(PeelKernelTest, LevelPeelerExternalDecrement) {
  // A 3-regular-ish toy: u0..u2 complete to v0..v2 (all degrees 3), plus a
  // pendant v3-u0. With fixed upper need 1, ranked (lower) levels equal
  // β-offsets at α=1; externally decrementing a lower vertex mid-run must
  // demote it at the current level.
  const BipartiteGraph g = testing::MakeGraph({
      {0, 0, 1.0}, {0, 1, 1.0}, {0, 2, 1.0},
      {1, 0, 1.0}, {1, 1, 1.0}, {1, 2, 1.0},
      {2, 0, 1.0}, {2, 1, 1.0}, {2, 2, 1.0},
      {0, 3, 1.0},
  });
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> deg(n);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.Degree(v);
  std::vector<uint8_t> alive(n, 1);
  std::vector<uint32_t> level_of(n, 0);
  LevelPeeler peeler(
      deg, alive, /*fixed_need=*/1, /*max_level=*/4, GraphNeighbors(g),
      [&](VertexId v) { return g.IsUpper(v); },
      [&](VertexId v, uint32_t level) { level_of[v] = level; });
  peeler.Start(std::views::iota(VertexId{0}, n));
  peeler.RunLevel(1);
  // v0 (unified id 3) loses one support out of band at level 1: it now has
  // effective degree 2 > 1, so it survives with a lazy re-bucket …
  peeler.Decrement(3, 1);
  EXPECT_EQ(alive[3], 1);
  peeler.RunLevel(2);
  // … and dies at level 2 (deg 2 ≤ 2) instead of its undisturbed level 3.
  EXPECT_EQ(alive[3], 0);
  EXPECT_EQ(level_of[3], 2u);
  peeler.RunLevel(3);
  EXPECT_EQ(peeler.alive_count(), 0u);
}

}  // namespace
}  // namespace abcs
