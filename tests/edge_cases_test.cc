// Cross-module edge cases: degenerate graphs, boundary parameters, and
// inputs that exercise rarely-taken branches.

#include <gtest/gtest.h>

#include <fstream>

#include "abcore/degeneracy.h"
#include "abcore/offsets.h"
#include "abcore/peeling.h"
#include "core/delta_index.h"
#include "core/online_query.h"
#include "core/scs_common.h"
#include "core/scs_peel.h"
#include "graph/graph_io.h"
#include "models/bitruss.h"
#include "models/butterfly.h"
#include "test_util.h"

namespace abcs {
namespace {

using ::abcs::testing::MakeGraph;

TEST(EdgeCaseTest, SingleEdgeGraph) {
  BipartiteGraph g = MakeGraph({{0, 0, 3.0}});
  EXPECT_EQ(Degeneracy(g), 1u);
  const DeltaIndex index = DeltaIndex::Build(g);
  const Subgraph c = index.QueryCommunity(0, 1, 1);
  ASSERT_EQ(c.Size(), 1u);
  const ScsResult r = ScsPeel(g, c, 0, 1, 1);
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.significance, 3.0);
  EXPECT_EQ(r.community.Size(), 1u);
}

TEST(EdgeCaseTest, StarGraphHasNoButterflies) {
  std::vector<std::tuple<uint32_t, uint32_t, Weight>> t;
  for (uint32_t j = 0; j < 10; ++j) t.push_back({0, j, 1.0});
  BipartiteGraph g = MakeGraph(t);
  EXPECT_EQ(CountButterflies(g), 0u);
  for (uint64_t phi : BitrussNumbers(g)) EXPECT_EQ(phi, 0u);
  EXPECT_TRUE(QueryBitrussCommunity(g, 0, 1).Empty());
  // But the (10,1)-core is the whole star.
  EXPECT_FALSE(ComputeAlphaBetaCore(g, 10, 1).Empty());
  EXPECT_TRUE(ComputeAlphaBetaCore(g, 11, 1).Empty());
}

TEST(EdgeCaseTest, PathGraphUnravelsAtTwoTwo) {
  // u0—v0—u1—v1—u2: a path; every (2,2)-core is empty.
  BipartiteGraph g =
      MakeGraph({{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {2, 1, 1}});
  EXPECT_TRUE(ComputeAlphaBetaCore(g, 2, 2).Empty());
  EXPECT_EQ(Degeneracy(g), 1u);
  // (1,2)-core keeps the middle: v0 and v1 need two upper neighbours.
  const CoreResult c = ComputeAlphaBetaCore(g, 1, 2);
  EXPECT_EQ(c.num_lower, 2u);
  EXPECT_EQ(c.num_upper, 3u);
}

TEST(EdgeCaseTest, AlphaOffsetsAtExtremeParameters) {
  BipartiteGraph g = testing::RandomWeightedGraph(15, 15, 80, 91);
  // α beyond the maximal upper degree: everything gets offset 0.
  const std::vector<uint32_t> sa =
      ComputeAlphaOffsets(g, g.MaxUpperDegree() + 1);
  for (uint32_t x : sa) EXPECT_EQ(x, 0u);
  // α = 1: every non-isolated vertex has offset >= 1.
  const std::vector<uint32_t> sa1 = ComputeAlphaOffsets(g, 1);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (g.Degree(v) > 0) {
      EXPECT_GE(sa1[v], 1u) << v;
    }
  }
}

TEST(EdgeCaseTest, PeelToSignificantStabilizesInvalidInput) {
  // Input violating the degree constraints: the kernel must first peel to
  // stability, then maximise. Here (u0,v0) + (u0,v1) + (u1,v0): with
  // (2,1) thresholds, u1 (degree 1... wait u1 has degree 1 < 2) and its
  // edge must be peeled away before weight maximisation.
  BipartiteGraph g = MakeGraph({{0, 0, 5.0}, {0, 1, 9.0}, {1, 0, 1.0}});
  LocalGraph lg(g, {0, 1, 2});
  const ScsResult r = PeelToSignificant(lg, /*q=*/0, /*alpha=*/2, /*beta=*/1);
  ASSERT_TRUE(r.found);
  // u1's weak edge is gone in stabilisation; R = u0's two edges, f = 5.
  EXPECT_EQ(r.community.Size(), 2u);
  EXPECT_DOUBLE_EQ(r.significance, 5.0);
}

TEST(EdgeCaseTest, QueryWithZeroParametersIsEmpty) {
  BipartiteGraph g = MakeGraph({{0, 0, 1.0}});
  const DeltaIndex index = DeltaIndex::Build(g);
  EXPECT_TRUE(index.QueryCommunity(0, 0, 1).Empty());
  EXPECT_TRUE(index.QueryCommunity(0, 1, 0).Empty());
}

TEST(EdgeCaseTest, OnlineQueryOutOfRangeVertex) {
  BipartiteGraph g = MakeGraph({{0, 0, 1.0}});
  EXPECT_TRUE(QueryCommunityOnline(g, 99, 1, 1).Empty());
}

TEST(EdgeCaseTest, KonectFourColumnFormat) {
  // KONECT "out.*" files may carry a timestamp as the fourth column.
  const std::string path = ::testing::TempDir() + "/abcs_konect4.txt";
  {
    std::ofstream out(path);
    out << "% bip weighted posweighted\n";
    out << "1 1 4.5 1094763304\n";
    out << "2 1 3.0 1094763305\n";
  }
  BipartiteGraph g;
  ASSERT_TRUE(LoadEdgeList(path, &g, /*zero_based=*/false).ok());
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_DOUBLE_EQ(g.GetEdge(0).w, 4.5);
  std::remove(path.c_str());
}

TEST(EdgeCaseTest, LoaderSurvivesGarbageInput) {
  // Fuzz-lite: random byte soup and near-miss formats must produce a
  // Status (never crash, never a malformed graph).
  const std::string path = ::testing::TempDir() + "/abcs_fuzz.txt";
  const char* payloads[] = {
      "",                                  // empty file
      "% only a comment\n",                // no edges
      "1 2 3 4 5 6 7 8\n",                 // extra columns (ok: ignored)
      "-5 2\n",                            // negative id (0-based mode)
      "1 notanumber\n",                    // malformed second field
      "999999999999999999999 1\n",         // overflowing id
      "\n\n\n",                            // blank lines
      "1\n",                               // missing second field
      "2 2 nan\n",                         // weird weight token
  };
  for (const char* payload : payloads) {
    {
      std::ofstream out(path);
      out << payload;
    }
    BipartiteGraph g;
    const Status st = LoadEdgeList(path, &g, /*zero_based=*/true);
    if (st.ok()) {
      // Whatever loaded must be internally consistent.
      uint64_t arcs = 0;
      for (VertexId v = 0; v < g.NumVertices(); ++v) arcs += g.Degree(v);
      EXPECT_EQ(arcs, 2ull * g.NumEdges());
    }
  }
  std::remove(path.c_str());
}

TEST(EdgeCaseTest, CompleteBipartiteEverythingIsOneCommunity) {
  std::vector<std::tuple<uint32_t, uint32_t, Weight>> t;
  for (uint32_t i = 0; i < 5; ++i) {
    for (uint32_t j = 0; j < 5; ++j) {
      t.push_back({i, j, static_cast<Weight>(1 + ((i * 5 + j) % 7))});
    }
  }
  BipartiteGraph g = MakeGraph(t);
  const DeltaIndex index = DeltaIndex::Build(g);
  EXPECT_EQ(index.delta(), 5u);
  const Subgraph c = index.QueryCommunity(0, 5, 5);
  EXPECT_EQ(c.Size(), 25u);
  // At (5,5) every vertex is needed, so R keeps all edges and f = min w.
  const ScsResult r = ScsPeel(g, c, 0, 5, 5);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.community.Size(), 25u);
  EXPECT_DOUBLE_EQ(r.significance, 1.0);
}

TEST(EdgeCaseTest, DuplicateEdgeWeightsAllBatchesAtOnce) {
  // Every weight identical except one heavier edge that cannot stand
  // alone: R must still be the whole community (max f is the common
  // weight, since dropping to only the heavy edge breaks the degrees).
  BipartiteGraph g = MakeGraph(
      {{0, 0, 2.0}, {0, 1, 2.0}, {1, 0, 2.0}, {1, 1, 9.0}});
  const DeltaIndex index = DeltaIndex::Build(g);
  const Subgraph c = index.QueryCommunity(0, 2, 2);
  ASSERT_EQ(c.Size(), 4u);
  const ScsResult r = ScsPeel(g, c, 0, 2, 2);
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.significance, 2.0);
  EXPECT_EQ(r.community.Size(), 4u);
}

}  // namespace
}  // namespace abcs
