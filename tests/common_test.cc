#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/dsu.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace abcs {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status st = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad alpha");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad alpha");

  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), Status::Code::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), Status::Code::kCorruption);
  EXPECT_EQ(Status::NotSupported("x").code(), Status::Code::kNotSupported);
}

Status Propagates(bool fail) {
  ABCS_RETURN_NOT_OK(fail ? Status::IOError("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(Propagates(false).ok());
  Status st = Propagates(true);
  EXPECT_EQ(st.code(), Status::Code::kIOError);
  EXPECT_EQ(st.message(), "inner");
}

// ------------------------------------------------------------------- Dsu --

TEST(DsuTest, SingletonsInitially) {
  Dsu dsu(5);
  EXPECT_EQ(dsu.num_sets(), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(dsu.Find(i), i);
    EXPECT_EQ(dsu.SizeOf(i), 1u);
  }
}

TEST(DsuTest, UnionMergesAndTracksSize) {
  Dsu dsu(6);
  dsu.Union(0, 1);
  dsu.Union(2, 3);
  EXPECT_EQ(dsu.num_sets(), 4u);
  EXPECT_TRUE(dsu.Same(0, 1));
  EXPECT_FALSE(dsu.Same(0, 2));
  dsu.Union(1, 3);
  EXPECT_TRUE(dsu.Same(0, 2));
  EXPECT_EQ(dsu.SizeOf(3), 4u);
  EXPECT_EQ(dsu.num_sets(), 3u);
}

TEST(DsuTest, UnionReturnsSurvivingRoot) {
  Dsu dsu(4);
  uint32_t r = dsu.Union(0, 1);
  EXPECT_EQ(dsu.Find(0), r);
  EXPECT_EQ(dsu.Find(1), r);
  // Union of already-merged elements returns the common root.
  EXPECT_EQ(dsu.Union(0, 1), r);
  EXPECT_EQ(dsu.num_sets(), 3u);
}

TEST(DsuTest, ResetRestoresSingletons) {
  Dsu dsu(4);
  dsu.Union(0, 1);
  dsu.Union(2, 3);
  dsu.Reset();
  EXPECT_EQ(dsu.num_sets(), 4u);
  EXPECT_FALSE(dsu.Same(0, 1));
}

TEST(DsuTest, LargeRandomUnionsMatchReference) {
  const uint32_t n = 2000;
  Dsu dsu(n);
  Rng rng(7);
  // Reference: naive label propagation.
  std::vector<uint32_t> label(n);
  std::iota(label.begin(), label.end(), 0u);
  for (int i = 0; i < 3000; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.NextBounded(n));
    uint32_t b = static_cast<uint32_t>(rng.NextBounded(n));
    dsu.Union(a, b);
    uint32_t la = label[a], lb = label[b];
    if (la != lb) {
      for (auto& l : label) {
        if (l == lb) l = la;
      }
    }
  }
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j : {i / 2, (i + 17) % n}) {
      EXPECT_EQ(dsu.Same(i, j), label[i] == label[j]);
    }
  }
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);  // within 10% relative
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(42);
  const int kDraws = 200000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < kDraws; ++i) {
    double x = rng.NextGaussian();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kDraws, 1.0, 0.03);
}

TEST(RngTest, SkewNormalIsPositivelySkewed) {
  Rng rng(43);
  const int kDraws = 100000;
  std::vector<double> xs(kDraws);
  double mean = 0;
  for (auto& x : xs) {
    x = rng.NextSkewNormal(5.0);
    mean += x;
  }
  mean /= kDraws;
  double m2 = 0, m3 = 0;
  for (double x : xs) {
    m2 += (x - mean) * (x - mean);
    m3 += (x - mean) * (x - mean) * (x - mean);
  }
  m2 /= kDraws;
  m3 /= kDraws;
  const double skewness = m3 / std::pow(m2, 1.5);
  EXPECT_GT(skewness, 0.5);  // theoretical ≈ 0.85 for alpha = 5
  EXPECT_LT(skewness, 1.1);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ----------------------------------------------------------------- Timer --

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), t.Seconds() * 1e3 * 0.5);  // same clock, scaled
  double before = t.Seconds();
  t.Reset();
  EXPECT_LE(t.Seconds(), before + 1.0);
}

}  // namespace
}  // namespace abcs
