#include <gtest/gtest.h>

#include <algorithm>

#include "core/delta_index.h"
#include "core/online_query.h"
#include "core/scs_baseline.h"
#include "core/scs_binary.h"
#include "core/scs_common.h"
#include "core/scs_expand.h"
#include "core/scs_peel.h"
#include "test_util.h"

namespace abcs {
namespace {

using ::abcs::testing::MakeGraph;
using ::abcs::testing::PaperFigure2Graph;
using ::abcs::testing::RandomWeightedGraph;

// ------------------------------------------------------------ LocalGraph --

TEST(LocalGraphTest, RenumbersDenselyAndPreservesEdges) {
  BipartiteGraph g = MakeGraph(
      {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 3.0}, {2, 2, 4.0}});
  LocalGraph lg(g, {0, 1, 2});  // exclude edge (u2, v2)
  EXPECT_EQ(lg.NumVertices(), 4u);  // u0, u1, v0, v1
  EXPECT_EQ(lg.NumEdges(), 3u);
  EXPECT_EQ(lg.LocalId(2), kInvalidVertex);  // u2 absent
  const uint32_t lu0 = lg.LocalId(0);
  ASSERT_NE(lu0, kInvalidVertex);
  EXPECT_TRUE(lg.IsUpperLocal(lu0));
  EXPECT_EQ(lg.GlobalId(lu0), 0u);
  EXPECT_EQ(lg.Neighbors(lu0).size(), 2u);
  // Edge payload round-trips.
  for (const LocalGraph::LocalEdge& le : lg.edges()) {
    const Edge& orig = g.GetEdge(le.global);
    EXPECT_EQ(lg.GlobalId(le.u), orig.u);
    EXPECT_EQ(lg.GlobalId(le.v), orig.v);
    EXPECT_DOUBLE_EQ(le.w, orig.w);
  }
}

// ---------------------------------------------------- Figure 2 (paper) ----

TEST(ScsTest, PaperFigure2SignificantCommunity) {
  BipartiteGraph g = PaperFigure2Graph();
  const DeltaIndex index = DeltaIndex::Build(g);
  const VertexId u3 = 2;  // 0-based
  const Subgraph c = index.QueryCommunity(u3, 2, 2);
  ASSERT_EQ(c.Size(), 16u);

  for (auto algo : {0, 1, 2}) {
    ScsResult r = (algo == 0)   ? ScsPeel(g, c, u3, 2, 2)
                  : (algo == 1) ? ScsExpand(g, c, u3, 2, 2)
                                : ScsBinary(g, c, u3, 2, 2);
    ASSERT_TRUE(r.found) << "algo=" << algo;
    EXPECT_DOUBLE_EQ(r.significance, 13.0) << "algo=" << algo;
    ASSERT_EQ(r.community.Size(), 4u) << "algo=" << algo;
    // Edges: (u3,v1), (u3,v2), (u4,v1), (u4,v2) — weights 14,13,19,18.
    std::vector<Weight> ws;
    for (EdgeId e : r.community.edges) ws.push_back(g.GetWeight(e));
    std::sort(ws.begin(), ws.end());
    EXPECT_EQ(ws, (std::vector<Weight>{13, 14, 18, 19})) << "algo=" << algo;
  }

  ScsResult rb = ScsBaseline(g, u3, 2, 2);
  ASSERT_TRUE(rb.found);
  EXPECT_DOUBLE_EQ(rb.significance, 13.0);
  EXPECT_EQ(rb.community.Size(), 4u);
}

// -------------------------------------------------- algorithm agreement ---

class ScsAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScsAgreementTest, AllAlgorithmsMatchBruteForce) {
  BipartiteGraph g = RandomWeightedGraph(22, 26, 200, GetParam());
  const DeltaIndex index = DeltaIndex::Build(g);
  Rng rng(GetParam() * 131 + 5);

  int nontrivial = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const VertexId q =
        static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const uint32_t alpha = 1 + static_cast<uint32_t>(rng.NextBounded(5));
    const uint32_t beta = 1 + static_cast<uint32_t>(rng.NextBounded(5));
    const Subgraph c = index.QueryCommunity(q, alpha, beta);

    const ScsResult ref = ScsBruteForce(g, q, alpha, beta);
    const ScsResult peel = ScsPeel(g, c, q, alpha, beta);
    const ScsResult expand = ScsExpand(g, c, q, alpha, beta);
    const ScsResult binary = ScsBinary(g, c, q, alpha, beta);
    const ScsResult baseline = ScsBaseline(g, q, alpha, beta);

    ASSERT_EQ(ref.found, !c.Empty());
    for (const ScsResult* r : {&peel, &expand, &binary, &baseline}) {
      ASSERT_EQ(r->found, ref.found)
          << "q=" << q << " a=" << alpha << " b=" << beta;
      if (ref.found) {
        EXPECT_DOUBLE_EQ(r->significance, ref.significance)
            << "q=" << q << " a=" << alpha << " b=" << beta;
        EXPECT_TRUE(SameEdgeSet(r->community, ref.community))
            << "q=" << q << " a=" << alpha << " b=" << beta;
      }
    }
    if (ref.found) ++nontrivial;
  }
  EXPECT_GT(nontrivial, 5) << "test instance too sparse to be meaningful";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScsAgreementTest,
                         ::testing::Values(201, 202, 203, 204, 205, 206, 207,
                                           208));

// ------------------------------------------------------ result invariants --

class ScsInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScsInvariantTest, ResultSatisfiesDefinition5) {
  BipartiteGraph g = RandomWeightedGraph(25, 25, 220, GetParam());
  const DeltaIndex index = DeltaIndex::Build(g);
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 30; ++trial) {
    const VertexId q =
        static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const uint32_t alpha = 1 + static_cast<uint32_t>(rng.NextBounded(4));
    const uint32_t beta = 1 + static_cast<uint32_t>(rng.NextBounded(4));
    const Subgraph c = index.QueryCommunity(q, alpha, beta);
    const ScsResult r = ScsPeel(g, c, q, alpha, beta);
    if (!r.found) continue;

    // Constraints 1)+2): connected, contains q, degree thresholds.
    std::string why;
    EXPECT_TRUE(VerifyCommunity(g, r.community, q, alpha, beta, &why)) << why;

    // R ⊆ C (Lemma 1).
    std::vector<EdgeId> ce = c.edges, re = r.community.edges;
    std::sort(ce.begin(), ce.end());
    std::sort(re.begin(), re.end());
    EXPECT_TRUE(std::includes(ce.begin(), ce.end(), re.begin(), re.end()));

    // f(R) equals the minimum edge weight of R and dominates f(C).
    const SubgraphStats rstats = ComputeStats(g, r.community);
    const SubgraphStats cstats = ComputeStats(g, c);
    EXPECT_DOUBLE_EQ(rstats.min_weight, r.significance);
    EXPECT_GE(r.significance, cstats.min_weight);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScsInvariantTest,
                         ::testing::Values(301, 302, 303, 304));

// ------------------------------------------------------------ edge cases --

TEST(ScsTest, AllWeightsEqualReturnsWholeCommunity) {
  // When every weight is equal, R = C_{α,β}(q) (paper §IV-A note).
  BipartiteGraph g = RandomWeightedGraph(20, 20, 150, 77, /*max_weight=*/1);
  const DeltaIndex index = DeltaIndex::Build(g);
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const VertexId q =
        static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const Subgraph c = index.QueryCommunity(q, 2, 2);
    if (c.Empty()) continue;
    for (auto algo : {0, 1, 2}) {
      ScsResult r = (algo == 0)   ? ScsPeel(g, c, q, 2, 2)
                    : (algo == 1) ? ScsExpand(g, c, q, 2, 2)
                                  : ScsBinary(g, c, q, 2, 2);
      ASSERT_TRUE(r.found);
      EXPECT_TRUE(SameEdgeSet(r.community, c)) << "algo=" << algo;
      EXPECT_DOUBLE_EQ(r.significance, 1.0);
    }
  }
}

TEST(ScsTest, EmptyCommunityYieldsNotFound) {
  BipartiteGraph g = MakeGraph({{0, 0, 1.0}});
  Subgraph empty;
  EXPECT_FALSE(ScsPeel(g, empty, 0, 1, 1).found);
  EXPECT_FALSE(ScsExpand(g, empty, 0, 1, 1).found);
  EXPECT_FALSE(ScsBinary(g, empty, 0, 1, 1).found);
  EXPECT_FALSE(ScsBaseline(g, 0, 5, 5).found);
}

TEST(ScsTest, QueryVertexOutsidePoolNotFound) {
  BipartiteGraph g = MakeGraph({{0, 0, 1.0}, {1, 1, 2.0}});
  Subgraph c{{0}};  // only edge (u0, v0)
  EXPECT_FALSE(ScsPeel(g, c, 1, 1, 1).found);  // u1 not in pool
  EXPECT_FALSE(ScsExpand(g, c, 1, 1, 1).found);
  EXPECT_FALSE(ScsBinary(g, c, 1, 1, 1).found);
}

TEST(ScsTest, ExpandEpsilonVariantsAgree) {
  BipartiteGraph g = RandomWeightedGraph(25, 25, 250, 88);
  const DeltaIndex index = DeltaIndex::Build(g);
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const VertexId q =
        static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const Subgraph c = index.QueryCommunity(q, 2, 2);
    if (c.Empty()) continue;
    ScsResult base = ScsExpand(g, c, q, 2, 2);
    for (double eps : {1.2, 1.5, 3.0, 8.0}) {
      ScsOptions options;
      options.epsilon = eps;
      ScsResult r = ScsExpand(g, c, q, 2, 2, options);
      ASSERT_EQ(r.found, base.found) << "eps=" << eps;
      if (base.found) {
        EXPECT_DOUBLE_EQ(r.significance, base.significance);
        EXPECT_TRUE(SameEdgeSet(r.community, base.community));
      }
    }
  }
}

TEST(ScsTest, StatsFollowUnifiedSemantics) {
  // One semantics across kernels: `validations` counts from-scratch
  // stabilisations, `incremental_probes` counts journal-seeded checks.
  BipartiteGraph g = RandomWeightedGraph(20, 20, 180, 91);
  const DeltaIndex index = DeltaIndex::Build(g);
  const Subgraph c = index.QueryCommunity(0, 2, 2);
  if (c.Empty()) GTEST_SKIP() << "seed produced empty community";
  ScsStats peel_stats, expand_stats, binary_stats;
  ScsResult rp = ScsPeel(g, c, 0, 2, 2, &peel_stats);
  ScsResult re = ScsExpand(g, c, 0, 2, 2, {}, &expand_stats);
  ScsResult rb = ScsBinary(g, c, 0, 2, 2, &binary_stats);
  ASSERT_EQ(rp.found, re.found);
  ASSERT_EQ(rp.found, rb.found);
  EXPECT_EQ(peel_stats.algo_used, ScsAlgo::kPeel);
  EXPECT_EQ(expand_stats.algo_used, ScsAlgo::kExpand);
  EXPECT_EQ(binary_stats.algo_used, ScsAlgo::kBinary);
  // Peel stabilises exactly once from scratch and never probes.
  EXPECT_EQ(peel_stats.validations, 1u);
  EXPECT_EQ(peel_stats.incremental_probes, 0u);
  if (rp.found) {
    EXPECT_GT(peel_stats.edges_processed, 0u);
    EXPECT_GT(expand_stats.edges_processed, 0u);
    // Expand validates only incrementally (seeded from expansion state).
    EXPECT_EQ(expand_stats.validations, 0u);
    EXPECT_GE(expand_stats.incremental_probes, 1u);
    // Binary opens with one full stabilisation, then probes incrementally.
    EXPECT_EQ(binary_stats.validations, 1u);
  }
}

// ------------------------------------------------------- weight ranks ----

TEST(LocalGraphTest, RankOrderAndDistinctPrefixes) {
  BipartiteGraph g = MakeGraph({{0, 0, 5.0},
                                {0, 1, 2.0},
                                {1, 0, 5.0},
                                {1, 1, 9.0},
                                {2, 1, 2.0},
                                {2, 2, 7.0}});
  LocalGraph lg(g, {0, 1, 2, 3, 4, 5});
  ASSERT_EQ(lg.NumEdges(), 6u);
  // Non-increasing weights; equal weights keep pool order (deterministic).
  for (uint32_t r = 1; r < lg.NumEdges(); ++r) {
    EXPECT_GE(lg.edges()[r - 1].w, lg.edges()[r].w);
    if (lg.edges()[r - 1].w == lg.edges()[r].w) {
      EXPECT_LT(lg.edges()[r - 1].global, lg.edges()[r].global);
    }
  }
  // Distinct table: weights 9, 7, 5, 2 with prefix ends 1, 2, 4, 6.
  ASSERT_EQ(lg.NumDistinctWeights(), 4u);
  const Weight want_w[] = {9.0, 7.0, 5.0, 2.0};
  const uint32_t want_end[] = {1, 2, 4, 6};
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(lg.DistinctWeight(i), want_w[i]) << i;
    EXPECT_EQ(lg.PrefixEnd(i), want_end[i]) << i;
    // Ranks [0, PrefixEnd(i)) are exactly the edges with w >= weight i.
    for (uint32_t r = 0; r < lg.PrefixEnd(i); ++r) {
      EXPECT_GE(lg.edges()[r].w, want_w[i]);
    }
  }
  // Per-vertex arc lists are sorted by ascending rank.
  for (uint32_t x = 0; x < lg.NumVertices(); ++x) {
    const auto arcs = lg.Neighbors(x);
    for (std::size_t k = 1; k < arcs.size(); ++k) {
      EXPECT_LT(arcs[k - 1].pos, arcs[k].pos);
    }
  }
}

TEST(LocalGraphTest, BuildFromReusesCapacityAndMatchesFreshBuild) {
  BipartiteGraph g = RandomWeightedGraph(15, 15, 120, 99, 8);
  std::vector<EdgeId> all(g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) all[e] = e;
  std::vector<EdgeId> half(all.begin(), all.begin() + all.size() / 2);

  LocalGraph pooled;
  pooled.BuildFrom(g, all);
  pooled.BuildFrom(g, half);  // shrink
  pooled.BuildFrom(g, all);   // regrow
  const LocalGraph fresh(g, all);
  ASSERT_EQ(pooled.NumEdges(), fresh.NumEdges());
  ASSERT_EQ(pooled.NumVertices(), fresh.NumVertices());
  ASSERT_EQ(pooled.NumDistinctWeights(), fresh.NumDistinctWeights());
  for (uint32_t r = 0; r < fresh.NumEdges(); ++r) {
    EXPECT_EQ(pooled.edges()[r].global, fresh.edges()[r].global) << r;
  }
  for (uint32_t i = 0; i < fresh.NumDistinctWeights(); ++i) {
    EXPECT_EQ(pooled.PrefixEnd(i), fresh.PrefixEnd(i));
  }
}

TEST(ScsTest, MaximalityNoSupergraphWithSameSignificance) {
  // Definition 5 constraint 3, second part: no strict supergraph of R in
  // C with f = f(R). Equivalent check: R must equal q's component of the
  // stable (α,β)-peel of {e ∈ G : w(e) ≥ f(R)} — which ScsBruteForce
  // computes; spot-check against independently recomputed membership.
  BipartiteGraph g = RandomWeightedGraph(20, 20, 170, 93);
  const DeltaIndex index = DeltaIndex::Build(g);
  const VertexId q = 3;
  const Subgraph c = index.QueryCommunity(q, 2, 2);
  if (c.Empty()) GTEST_SKIP();
  const ScsResult r = ScsPeel(g, c, q, 2, 2);
  ASSERT_TRUE(r.found);
  const ScsResult oracle = ScsBruteForce(g, q, 2, 2);
  EXPECT_TRUE(SameEdgeSet(r.community, oracle.community));
}

}  // namespace
}  // namespace abcs
