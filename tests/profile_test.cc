#include <gtest/gtest.h>

#include "core/profile.h"
#include "core/scs_common.h"
#include "test_util.h"

namespace abcs {
namespace {

using ::abcs::testing::PaperFigure2Graph;
using ::abcs::testing::RandomWeightedGraph;

TEST(ProfileTest, PaperFigure2Cell) {
  BipartiteGraph g = PaperFigure2Graph();
  const DeltaIndex index = DeltaIndex::Build(g);
  const SignificanceProfile profile =
      ComputeSignificanceProfile(g, index, /*q=u3*/ 2, 3, 3);
  ASSERT_TRUE(profile.ExistsAt(2, 2));
  EXPECT_DOUBLE_EQ(profile.At(2, 2), 13.0);
  // u3 has degree 4; a (3,3)-community exists inside the 4×4 block.
  ASSERT_TRUE(profile.ExistsAt(3, 3));
  EXPECT_TRUE(profile.ExistsAt(1, 1));
}

class ProfilePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProfilePropertyTest, MonotoneNonIncreasingAlongBothAxes) {
  BipartiteGraph g = RandomWeightedGraph(25, 25, 220, GetParam(), 20);
  const DeltaIndex index = DeltaIndex::Build(g);
  Rng rng(GetParam() + 9);
  for (int trial = 0; trial < 5; ++trial) {
    const VertexId q = static_cast<VertexId>(rng.NextBounded(50));
    const SignificanceProfile p =
        ComputeSignificanceProfile(g, index, q, 5, 5);
    for (uint32_t a = 1; a <= 5; ++a) {
      for (uint32_t b = 1; b <= 5; ++b) {
        if (!p.ExistsAt(a, b)) continue;
        // Existence and significance are monotone: relaxing a constraint
        // keeps the community and can only raise f.
        if (a > 1) {
          ASSERT_TRUE(p.ExistsAt(a - 1, b));
          EXPECT_GE(p.At(a - 1, b), p.At(a, b));
        }
        if (b > 1) {
          ASSERT_TRUE(p.ExistsAt(a, b - 1));
          EXPECT_GE(p.At(a, b - 1), p.At(a, b));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfilePropertyTest,
                         ::testing::Values(701, 702, 703));

TEST(ProfileTest, CellsMatchDirectScs) {
  BipartiteGraph g = RandomWeightedGraph(20, 20, 160, 44);
  const DeltaIndex index = DeltaIndex::Build(g);
  const VertexId q = 7;
  const SignificanceProfile p = ComputeSignificanceProfile(g, index, q, 4, 4);
  for (uint32_t a = 1; a <= 4; ++a) {
    for (uint32_t b = 1; b <= 4; ++b) {
      const ScsResult direct = ScsBruteForce(g, q, a, b);
      ASSERT_EQ(p.ExistsAt(a, b), direct.found) << a << "," << b;
      if (direct.found) {
        EXPECT_DOUBLE_EQ(p.At(a, b), direct.significance) << a << "," << b;
      }
    }
  }
}

TEST(ProfileTest, IsolatedVertexHasEmptyProfile) {
  BipartiteGraph g = RandomWeightedGraph(10, 10, 30, 45);
  const DeltaIndex index = DeltaIndex::Build(g);
  const SignificanceProfile p =
      ComputeSignificanceProfile(g, index, 0, 3, 3);
  // Degree bounds: no (α,β)-community beyond the vertex's own degree.
  const uint32_t deg = g.Degree(0);
  for (uint32_t a = deg + 1; a <= 3; ++a) {
    for (uint32_t b = 1; b <= 3; ++b) EXPECT_FALSE(p.ExistsAt(a, b));
  }
}

}  // namespace
}  // namespace abcs
