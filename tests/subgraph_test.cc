#include <gtest/gtest.h>

#include "core/query_scratch.h"
#include "core/subgraph.h"
#include "test_util.h"

namespace abcs {
namespace {

using ::abcs::testing::MakeGraph;

BipartiteGraph Square() {
  // u0—v0, u0—v1, u1—v0, u1—v1 (a 2×2 biclique), plus pendant u2—v2.
  return MakeGraph(
      {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 3.0}, {1, 1, 4.0}, {2, 2, 5.0}});
}

TEST(SubgraphTest, EmptySubgraph) {
  Subgraph s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Size(), 0u);
  BipartiteGraph g = Square();
  const SubgraphStats stats = ComputeStats(g, s);
  EXPECT_EQ(stats.num_upper, 0u);
  EXPECT_DOUBLE_EQ(stats.min_weight, 0.0);
  EXPECT_TRUE(SubgraphVertexSet(g, s).empty());
}

TEST(SubgraphTest, VertexSetIsSortedUnique) {
  BipartiteGraph g = Square();
  Subgraph s{{0, 1, 2, 3}};  // the biclique
  std::vector<VertexId> verts = SubgraphVertexSet(g, s);
  EXPECT_EQ(verts, (std::vector<VertexId>{0, 1, 3, 4}));
}

TEST(SubgraphTest, SameEdgeSetIsOrderInsensitive) {
  Subgraph a{{3, 1, 0}};
  Subgraph b{{0, 3, 1}};
  Subgraph c{{0, 1}};
  Subgraph d{{0, 1, 2}};
  EXPECT_TRUE(SameEdgeSet(a, b));
  EXPECT_FALSE(SameEdgeSet(a, c));
  EXPECT_FALSE(SameEdgeSet(c, d));
  EXPECT_TRUE(SameEdgeSet(Subgraph{}, Subgraph{}));
}

TEST(VerifyCommunityTest, AcceptsValidCommunity) {
  BipartiteGraph g = Square();
  Subgraph s{{0, 1, 2, 3}};
  std::string why;
  EXPECT_TRUE(VerifyCommunity(g, s, 0, 2, 2, &why)) << why;
}

TEST(VerifyCommunityTest, RejectsEmpty) {
  BipartiteGraph g = Square();
  std::string why;
  EXPECT_FALSE(VerifyCommunity(g, Subgraph{}, 0, 1, 1, &why));
  EXPECT_NE(why.find("empty"), std::string::npos);
}

TEST(VerifyCommunityTest, RejectsMissingQueryVertex) {
  BipartiteGraph g = Square();
  Subgraph s{{0, 1, 2, 3}};
  std::string why;
  EXPECT_FALSE(VerifyCommunity(g, s, 2, 1, 1, &why));  // u2 not in s
  EXPECT_NE(why.find("query vertex"), std::string::npos);
}

TEST(VerifyCommunityTest, RejectsDegreeViolation) {
  BipartiteGraph g = Square();
  Subgraph s{{0, 1, 2}};  // u1 has degree 1
  std::string why;
  EXPECT_FALSE(VerifyCommunity(g, s, 0, 2, 1, &why));
  EXPECT_NE(why.find("degree"), std::string::npos);
}

TEST(VerifyCommunityTest, RejectsDisconnected) {
  BipartiteGraph g = Square();
  Subgraph s{{0, 1, 2, 3, 4}};  // biclique + far-away pendant edge
  std::string why;
  EXPECT_FALSE(VerifyCommunity(g, s, 0, 1, 1, &why));
  EXPECT_NE(why.find("connected"), std::string::npos);
}

TEST(SubgraphTest, StatsOnSingleEdge) {
  BipartiteGraph g = Square();
  Subgraph s{{4}};
  const SubgraphStats stats = ComputeStats(g, s);
  EXPECT_EQ(stats.num_upper, 1u);
  EXPECT_EQ(stats.num_lower, 1u);
  EXPECT_DOUBLE_EQ(stats.min_weight, 5.0);
  EXPECT_DOUBLE_EQ(stats.max_weight, 5.0);
  EXPECT_DOUBLE_EQ(stats.avg_weight, 5.0);
}

TEST(SubgraphTest, ScratchStatsMatchFresh) {
  // The stamp-dedup'd path must agree with the sort/unique path on random
  // edge subsets, with one scratch reused across all of them.
  BipartiteGraph g = ::abcs::testing::RandomWeightedGraph(30, 30, 250, 3);
  Rng rng(17);
  QueryScratch scratch;
  for (int trial = 0; trial < 50; ++trial) {
    Subgraph s;
    const uint32_t count = 1 + static_cast<uint32_t>(rng.NextBounded(60));
    for (uint32_t i = 0; i < count; ++i) {
      s.edges.push_back(
          static_cast<EdgeId>(rng.NextBounded(g.NumEdges())));
    }
    const SubgraphStats fresh = ComputeStats(g, s);
    const SubgraphStats stamped = ComputeStats(g, s, &scratch);
    EXPECT_EQ(fresh.num_upper, stamped.num_upper);
    EXPECT_EQ(fresh.num_lower, stamped.num_lower);
    EXPECT_DOUBLE_EQ(fresh.min_weight, stamped.min_weight);
    EXPECT_DOUBLE_EQ(fresh.max_weight, stamped.max_weight);
    EXPECT_DOUBLE_EQ(fresh.avg_weight, stamped.avg_weight);
    EXPECT_EQ(SubgraphVertexSet(g, s), SubgraphVertexSet(g, s, &scratch));
  }
}

}  // namespace
}  // namespace abcs
