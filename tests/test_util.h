#ifndef ABCS_TESTS_TEST_UTIL_H_
#define ABCS_TESTS_TEST_UTIL_H_

#include <tuple>
#include <vector>

#include "common/rng.h"
#include "graph/bipartite_graph.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace abcs::testing {

/// Builds a graph from (upper, lower, weight) triples with layer-local ids.
inline BipartiteGraph MakeGraph(
    const std::vector<std::tuple<uint32_t, uint32_t, Weight>>& triples) {
  GraphBuilder builder;
  for (const auto& [u, v, w] : triples) builder.AddEdge(u, v, w);
  BipartiteGraph g;
  Status st = builder.Build(&g);
  if (!st.ok()) std::abort();
  return g;
}

/// Random bipartite graph whose weights are drawn from a *small* integer
/// set {1..max_weight} so that equal-weight batches (the tricky SCS code
/// path) occur frequently.
inline BipartiteGraph RandomWeightedGraph(uint32_t nu, uint32_t nl,
                                          uint32_t m, uint64_t seed,
                                          uint32_t max_weight = 5) {
  BipartiteGraph topo;
  Status st = GenErdosRenyiBipartite(nu, nl, m, seed, &topo);
  if (!st.ok()) std::abort();
  Rng rng(seed ^ 0x5ca1ab1eULL);
  std::vector<Weight> w(topo.NumEdges());
  for (auto& x : w) x = 1.0 + static_cast<double>(rng.NextBounded(max_weight));
  return topo.WithWeights(w);
}

/// The paper's running example (Figure 2): u1..u4 complete to v1..v4 with
/// w(u_i, v_j) = 5i − j, plus a long chain of degree-2 vertices that
/// unravels out of every (2,2)-core. The significant (2,2)-community of u3
/// is {(u3,v1), (u3,v2), (u4,v1), (u4,v2)} with f(R) = 13.
inline BipartiteGraph PaperFigure2Graph(uint32_t chain = 995) {
  GraphBuilder builder;
  for (uint32_t i = 1; i <= 4; ++i) {
    for (uint32_t j = 1; j <= 4; ++j) {
      builder.AddEdge(i - 1, j - 1, 5.0 * i - j);
    }
  }
  // Chain: u_k — v_k and u_k — v_{k+1} for k = 5..4+chain.
  for (uint32_t k = 5; k < 5 + chain; ++k) {
    builder.AddEdge(k - 1, k - 1, 1000.0 + k);
    builder.AddEdge(k - 1, k, 2000.0 + k);
  }
  BipartiteGraph g;
  Status st = builder.Build(&g);
  if (!st.ok()) std::abort();
  return g;
}

}  // namespace abcs::testing

#endif  // ABCS_TESTS_TEST_UTIL_H_
