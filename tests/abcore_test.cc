#include <gtest/gtest.h>

#include <algorithm>

#include "abcore/degeneracy.h"
#include "abcore/offsets.h"
#include "abcore/peeling.h"
#include "test_util.h"

namespace abcs {
namespace {

using ::abcs::testing::MakeGraph;
using ::abcs::testing::RandomWeightedGraph;

/// Independent fixpoint reference for the (α,β)-core: rescan all vertices
/// until nothing changes.
std::vector<uint8_t> NaiveCore(const BipartiteGraph& g, uint32_t alpha,
                               uint32_t beta) {
  const uint32_t n = g.NumVertices();
  std::vector<uint8_t> alive(n, 1);
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      uint32_t d = 0;
      for (const Arc& a : g.Neighbors(v)) d += alive[a.to];
      const uint32_t need = g.IsUpper(v) ? alpha : beta;
      if (d < need) {
        alive[v] = 0;
        changed = true;
      }
    }
  }
  return alive;
}

/// Naive unipartite core numbers: repeatedly strip min-degree vertices.
std::vector<uint32_t> NaiveKCore(const BipartiteGraph& g) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> core(n, 0);
  std::vector<uint8_t> alive(n, 1);
  for (uint32_t k = 1;; ++k) {
    // Peel everything below k; survivors have core >= k.
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId v = 0; v < n; ++v) {
        if (!alive[v]) continue;
        uint32_t d = 0;
        for (const Arc& a : g.Neighbors(v)) d += alive[a.to];
        if (d < k) {
          alive[v] = 0;
          changed = true;
        }
      }
    }
    bool any = false;
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v]) {
        core[v] = k;
        any = true;
      }
    }
    if (!any) break;
  }
  return core;
}

TEST(PeelingTest, SimpleTriangleLikeExample) {
  // u0 — {v0, v1}, u1 — {v0, v1}, u2 — {v2}.
  BipartiteGraph g =
      MakeGraph({{0, 0, 1}, {0, 1, 1}, {1, 0, 1}, {1, 1, 1}, {2, 2, 1}});
  CoreResult core = ComputeAlphaBetaCore(g, 2, 2);
  EXPECT_EQ(core.num_upper, 2u);
  EXPECT_EQ(core.num_lower, 2u);
  EXPECT_EQ(core.num_edges, 4u);
  EXPECT_TRUE(core.alive[0]);
  EXPECT_TRUE(core.alive[1]);
  EXPECT_FALSE(core.alive[2]);  // u2 has degree 1 < 2

  CoreResult empty = ComputeAlphaBetaCore(g, 3, 1);
  EXPECT_TRUE(empty.Empty());
}

class CoreGridTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(CoreGridTest, MatchesNaiveOverParameterGrid) {
  const auto [seed, m] = GetParam();
  BipartiteGraph g = RandomWeightedGraph(25, 25, m, seed);
  for (uint32_t alpha = 1; alpha <= 6; ++alpha) {
    for (uint32_t beta = 1; beta <= 6; ++beta) {
      CoreResult fast = ComputeAlphaBetaCore(g, alpha, beta);
      std::vector<uint8_t> slow = NaiveCore(g, alpha, beta);
      EXPECT_EQ(fast.alive, slow) << "alpha=" << alpha << " beta=" << beta;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CoreGridTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(60u, 120u, 200u)));

TEST(PeelingTest, CoreNesting) {
  BipartiteGraph g = RandomWeightedGraph(40, 40, 300, 9);
  for (uint32_t alpha = 1; alpha <= 4; ++alpha) {
    for (uint32_t beta = 1; beta <= 4; ++beta) {
      CoreResult outer = ComputeAlphaBetaCore(g, alpha, beta);
      CoreResult inner_a = ComputeAlphaBetaCore(g, alpha + 1, beta);
      CoreResult inner_b = ComputeAlphaBetaCore(g, alpha, beta + 1);
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        if (inner_a.alive[v]) {
          EXPECT_TRUE(outer.alive[v]);
        }
        if (inner_b.alive[v]) {
          EXPECT_TRUE(outer.alive[v]);
        }
      }
    }
  }
}

TEST(PeelingTest, PeelInPlaceReportsRemovedVertices) {
  BipartiteGraph g =
      MakeGraph({{0, 0, 1}, {0, 1, 1}, {1, 0, 1}, {1, 1, 1}, {2, 2, 1}});
  std::vector<uint32_t> deg(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) deg[v] = g.Degree(v);
  std::vector<uint8_t> alive(g.NumVertices(), 1);
  std::vector<VertexId> removed;
  PeelInPlace(g, 2, 2, deg, alive, &removed);
  // u2 and v2 are removed (in some order).
  std::sort(removed.begin(), removed.end());
  EXPECT_EQ(removed, (std::vector<VertexId>{2, 5}));
}

// --------------------------------------------------------------- Offsets --

class OffsetsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OffsetsPropertyTest, AlphaOffsetsCharacterizeCoreMembership) {
  BipartiteGraph g = RandomWeightedGraph(20, 25, 130, GetParam());
  const uint32_t amax = g.MaxUpperDegree();
  for (uint32_t alpha = 1; alpha <= amax; ++alpha) {
    std::vector<uint32_t> sa = ComputeAlphaOffsets(g, alpha);
    for (uint32_t beta = 1; beta <= g.MaxLowerDegree() + 1; ++beta) {
      CoreResult core = ComputeAlphaBetaCore(g, alpha, beta);
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        EXPECT_EQ(core.alive[v] != 0, sa[v] >= beta)
            << "v=" << v << " alpha=" << alpha << " beta=" << beta;
      }
    }
  }
}

TEST_P(OffsetsPropertyTest, BetaOffsetsSymmetricToAlphaOffsets) {
  BipartiteGraph g = RandomWeightedGraph(20, 25, 130, GetParam() + 100);
  for (uint32_t beta = 1; beta <= 5; ++beta) {
    std::vector<uint32_t> sb = ComputeBetaOffsets(g, beta);
    for (uint32_t alpha = 1; alpha <= 5; ++alpha) {
      std::vector<uint32_t> sa = ComputeAlphaOffsets(g, alpha);
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        EXPECT_EQ(sa[v] >= beta, sb[v] >= alpha)
            << "v=" << v << " alpha=" << alpha << " beta=" << beta;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OffsetsPropertyTest,
                         ::testing::Values(11, 12, 13, 14));

TEST(OffsetsTest, ScopedWithFullScopeMatchesUnscoped) {
  BipartiteGraph g = RandomWeightedGraph(30, 30, 200, 21);
  std::vector<uint8_t> full(g.NumVertices(), 1);
  for (uint32_t alpha = 1; alpha <= 4; ++alpha) {
    EXPECT_EQ(ComputeAlphaOffsetsScoped(g, alpha, full),
              ComputeAlphaOffsets(g, alpha));
  }
  for (uint32_t beta = 1; beta <= 4; ++beta) {
    EXPECT_EQ(ComputeBetaOffsetsScoped(g, beta, full),
              ComputeBetaOffsets(g, beta));
  }
}

TEST(OffsetsTest, WorkspaceOverloadsMatchByValueAcrossReuse) {
  // One OffsetWorkspace serves many peels (the maintenance pattern): every
  // result must match the allocating API no matter what the previous call
  // left in the buffers, including interleaved scoped/unscoped and
  // alpha/beta calls of different sizes.
  BipartiteGraph g = RandomWeightedGraph(30, 30, 200, 23);
  BipartiteGraph small = RandomWeightedGraph(8, 8, 30, 24);
  std::vector<uint8_t> scope(g.NumVertices(), 0);
  for (VertexId v = 0; v < g.NumVertices(); v += 2) scope[v] = 1;
  OffsetWorkspace ws;
  for (uint32_t k = 1; k <= 4; ++k) {
    EXPECT_EQ(ComputeAlphaOffsets(g, k, ws), ComputeAlphaOffsets(g, k));
    EXPECT_EQ(ComputeAlphaOffsetsScoped(g, k, scope, ws),
              ComputeAlphaOffsetsScoped(g, k, scope));
    EXPECT_EQ(ComputeBetaOffsets(small, k, ws),
              ComputeBetaOffsets(small, k));
    EXPECT_EQ(ComputeBetaOffsetsScoped(g, k, scope, ws),
              ComputeBetaOffsetsScoped(g, k, scope));
  }
}

TEST(OffsetsTest, ScopedRestrictsToInducedSubgraph) {
  // Scope = upper {0,1} and lower {v0,v1}; the induced subgraph is a
  // 2×2 biclique regardless of what u2/v2 do outside.
  BipartiteGraph g = MakeGraph({{0, 0, 1},
                                {0, 1, 1},
                                {1, 0, 1},
                                {1, 1, 1},
                                {2, 0, 1},
                                {2, 1, 1},
                                {2, 2, 1},
                                {0, 2, 1}});
  std::vector<uint8_t> scope(g.NumVertices(), 0);
  scope[0] = scope[1] = 1;           // u0, u1
  scope[g.LowerId(0)] = scope[g.LowerId(1)] = 1;
  std::vector<uint32_t> sa = ComputeAlphaOffsetsScoped(g, 2, scope);
  EXPECT_EQ(sa[0], 2u);
  EXPECT_EQ(sa[1], 2u);
  EXPECT_EQ(sa[2], 0u);              // out of scope
  EXPECT_EQ(sa[g.LowerId(0)], 2u);
  EXPECT_EQ(sa[g.LowerId(2)], 0u);
}

// ------------------------------------------------------------ Degeneracy --

TEST(DegeneracyTest, KCoreNumbersMatchNaive) {
  for (uint64_t seed : {31, 32, 33}) {
    BipartiteGraph g = RandomWeightedGraph(25, 25, 180, seed);
    EXPECT_EQ(KCoreNumbers(g), NaiveKCore(g)) << "seed=" << seed;
  }
}

TEST(DegeneracyTest, DeltaIsLargestNonEmptyTauTauCore) {
  BipartiteGraph g = RandomWeightedGraph(30, 30, 250, 41);
  const uint32_t delta = Degeneracy(g);
  EXPECT_FALSE(ComputeAlphaBetaCore(g, delta, delta).Empty());
  EXPECT_TRUE(ComputeAlphaBetaCore(g, delta + 1, delta + 1).Empty());
}

TEST(DegeneracyTest, CompleteBipartiteBlock) {
  // K_{4,4}: every vertex has degree 4, so δ = 4.
  std::vector<std::tuple<uint32_t, uint32_t, Weight>> triples;
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = 0; j < 4; ++j) triples.push_back({i, j, 1.0});
  }
  EXPECT_EQ(Degeneracy(MakeGraph(triples)), 4u);
}

TEST(DegeneracyTest, DecompositionConsistentWithPerLevelOffsets) {
  BipartiteGraph g = RandomWeightedGraph(25, 25, 220, 51);
  BicoreDecomposition d = ComputeBicoreDecomposition(g);
  EXPECT_EQ(d.delta, Degeneracy(g));
  EXPECT_EQ(d.NumVertices(), g.NumVertices());
  for (uint32_t tau = 1; tau <= d.delta; ++tau) {
    const std::vector<uint32_t> sa = ComputeAlphaOffsets(g, tau);
    const std::vector<uint32_t> sb = ComputeBetaOffsets(g, tau);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_EQ(d.sa(tau, v), sa[v]) << "tau=" << tau << " v=" << v;
      EXPECT_EQ(d.sb(tau, v), sb[v]) << "tau=" << tau << " v=" << v;
    }
  }
}

TEST(DegeneracyTest, ArenaSlicesEndAtLastNonzeroLevel) {
  // Compactness: vertex v's slice covers exactly the τ ≤ δ with
  // s(v, τ) ≥ 1, so the arena never stores a zero and MemoryBytes is
  // strictly below the dense 2δ·n table whenever any offset hits zero.
  BipartiteGraph g = RandomWeightedGraph(25, 25, 220, 52);
  const BicoreDecomposition d = ComputeBicoreDecomposition(g);
  for (uint32_t x : d.alpha.values) EXPECT_GE(x, 1u);
  for (uint32_t x : d.beta.values) EXPECT_GE(x, 1u);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const uint32_t levels = d.alpha.Levels(v);
    EXPECT_LE(levels, d.delta);
    if (levels < d.delta) {
      EXPECT_EQ(d.sa(levels + 1, v), 0u);
    }
    if (levels > 0) {
      EXPECT_GE(d.sa(levels, v), 1u);
    }
  }
  EXPECT_LE(d.MemoryBytes(),
            DenseDecompositionBytes(d.delta, g.NumVertices()) +
                2 * (g.NumVertices() + 1) * sizeof(uint32_t));
}

TEST(DegeneracyTest, ParallelDecompositionMatchesSerial) {
  for (uint64_t seed : {71, 72}) {
    BipartiteGraph g = RandomWeightedGraph(30, 30, 260, seed);
    const BicoreDecomposition serial = ComputeBicoreDecomposition(g);
    for (unsigned threads : {1u, 2u, 4u}) {
      const BicoreDecomposition parallel =
          ComputeBicoreDecompositionParallel(g, threads);
      EXPECT_EQ(parallel, serial) << "threads=" << threads;
    }
  }
}

TEST(DegeneracyTest, MinAlphaBetaBoundedByDelta) {
  // Lemma 4: any nonempty (α,β)-core has min(α,β) ≤ δ.
  BipartiteGraph g = RandomWeightedGraph(20, 20, 150, 61);
  const uint32_t delta = Degeneracy(g);
  const uint32_t hi = std::max(g.MaxUpperDegree(), g.MaxLowerDegree()) + 1;
  for (uint32_t alpha = delta + 1; alpha <= hi; ++alpha) {
    EXPECT_TRUE(ComputeAlphaBetaCore(g, alpha, delta + 1).Empty());
  }
}

}  // namespace
}  // namespace abcs
