// Concurrency stress for the serve daemon — the primary ThreadSanitizer
// target: many client threads hammering one server with mixed methods
// and pipelining while the memo is concurrently invalidated, then a
// shutdown racing live traffic. Assertions are about correctness
// (responses match fresh queries, nothing lost), TSan covers the rest.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "serve/client.h"
#include "serve/server.h"
#include "test_util.h"

namespace abcs::serve {
namespace {

using ::abcs::testing::RandomWeightedGraph;

TEST(ServeStressTest, ConcurrentMixedTrafficIsCorrectAndClean) {
  const BipartiteGraph g = RandomWeightedGraph(60, 60, 700, 4242);
  const DeltaIndex delta = DeltaIndex::Build(g);
  const BicoreIndex bicore = BicoreIndex::Build(g);
  ServerOptions options;
  options.num_threads = 4;
  Server server(g, &delta, &bicore, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr unsigned kClients = 8;
  constexpr int kCallsPerClient = 150;
  constexpr WireMethod kMethods[] = {
      WireMethod::kOnline, WireMethod::kBicore, WireMethod::kDelta,
      WireMethod::kScsAuto, WireMethod::kScsPeel};

  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (unsigned c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        errors.fetch_add(1);
        return;
      }
      Rng rng(1000 + c);
      for (int i = 0; i < kCallsPerClient; ++i) {
        const VertexId q =
            static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
        const uint32_t alpha = 1 + static_cast<uint32_t>(rng.NextBounded(4));
        const uint32_t beta = 1 + static_cast<uint32_t>(rng.NextBounded(4));
        WireRequest req;
        req.method = kMethods[rng.NextBounded(5)];
        req.lower_side = !g.IsUpper(q);
        req.q = req.lower_side ? q - g.NumUpper() : q;
        req.alpha = alpha;
        req.beta = beta;
        WireResponse resp;
        if (!client.Call(req, &resp).ok() ||
            resp.status != WireStatus::kOk) {
          errors.fetch_add(1);
          continue;
        }
        // |C| is method-independent and memo-independent: check it
        // against a fresh unshared query.
        const Subgraph expect = delta.QueryCommunity(q, alpha, beta);
        if (resp.num_edges != expect.edges.size()) mismatches.fetch_add(1);
      }
    });
  }
  // Concurrent epoch invalidations while traffic is in flight.
  std::thread invalidator([&] {
    for (int i = 0; i < 20; ++i) {
      server.memo().Invalidate();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (std::thread& t : clients) t.join();
  invalidator.join();

  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  const ServeStats stats = server.Stats();
  EXPECT_EQ(stats.responses_ok, kClients * kCallsPerClient);
  EXPECT_EQ(stats.protocol_errors, 0u);
  server.Shutdown();
}

// Shutdown racing live pipelined traffic: every admitted request is
// answered, late requests get a clean kShuttingDown, nothing hangs.
TEST(ServeStressTest, ShutdownRacesLiveTraffic) {
  const BipartiteGraph g = RandomWeightedGraph(60, 60, 700, 5353);
  const DeltaIndex delta = DeltaIndex::Build(g);
  ServerOptions options;
  options.num_threads = 2;
  Server server(g, &delta, nullptr, options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> hard_failures{0};
  std::vector<std::thread> clients;
  for (unsigned c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return;
      Rng rng(7000 + c);
      while (!stop.load(std::memory_order_relaxed)) {
        WireRequest req;
        req.q = static_cast<uint32_t>(rng.NextBounded(g.NumUpper()));
        req.alpha = 1 + static_cast<uint32_t>(rng.NextBounded(3));
        req.beta = 1 + static_cast<uint32_t>(rng.NextBounded(3));
        WireResponse resp;
        const Status st = client.Call(req, &resp);
        if (!st.ok()) break;  // connection torn down mid-drain: expected
        if (resp.status != WireStatus::kOk &&
            resp.status != WireStatus::kShuttingDown) {
          hard_failures.fetch_add(1);
        }
        if (resp.status == WireStatus::kShuttingDown) break;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Shutdown();  // races in-flight Calls
  stop.store(true);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(hard_failures.load(), 0u);
}

}  // namespace
}  // namespace abcs::serve
