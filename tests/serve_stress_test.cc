// Concurrency stress for the serve daemon — the primary ThreadSanitizer
// target: many client threads hammering one server with mixed methods
// and pipelining while the memo is concurrently invalidated, then a
// shutdown racing live traffic. Assertions are about correctness
// (responses match fresh queries, nothing lost), TSan covers the rest.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "io/fault_inject.h"
#include "serve/client.h"
#include "serve/server.h"
#include "test_util.h"

namespace abcs::serve {
namespace {

using ::abcs::testing::RandomWeightedGraph;

TEST(ServeStressTest, ConcurrentMixedTrafficIsCorrectAndClean) {
  const BipartiteGraph g = RandomWeightedGraph(60, 60, 700, 4242);
  const DeltaIndex delta = DeltaIndex::Build(g);
  const BicoreIndex bicore = BicoreIndex::Build(g);
  ServerOptions options;
  options.num_threads = 4;
  Server server(g, &delta, &bicore, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr unsigned kClients = 8;
  constexpr int kCallsPerClient = 150;
  constexpr WireMethod kMethods[] = {
      WireMethod::kOnline, WireMethod::kBicore, WireMethod::kDelta,
      WireMethod::kScsAuto, WireMethod::kScsPeel};

  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (unsigned c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        errors.fetch_add(1);
        return;
      }
      Rng rng(1000 + c);
      for (int i = 0; i < kCallsPerClient; ++i) {
        const VertexId q =
            static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
        const uint32_t alpha = 1 + static_cast<uint32_t>(rng.NextBounded(4));
        const uint32_t beta = 1 + static_cast<uint32_t>(rng.NextBounded(4));
        WireRequest req;
        req.method = kMethods[rng.NextBounded(5)];
        req.lower_side = !g.IsUpper(q);
        req.q = req.lower_side ? q - g.NumUpper() : q;
        req.alpha = alpha;
        req.beta = beta;
        WireResponse resp;
        if (!client.Call(req, &resp).ok() ||
            resp.status != WireStatus::kOk) {
          errors.fetch_add(1);
          continue;
        }
        // |C| is method-independent and memo-independent: check it
        // against a fresh unshared query.
        const Subgraph expect = delta.QueryCommunity(q, alpha, beta);
        if (resp.num_edges != expect.edges.size()) mismatches.fetch_add(1);
      }
    });
  }
  // Concurrent epoch invalidations while traffic is in flight.
  std::thread invalidator([&] {
    for (int i = 0; i < 20; ++i) {
      server.memo().Invalidate();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (std::thread& t : clients) t.join();
  invalidator.join();

  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  const ServeStats stats = server.Stats();
  EXPECT_EQ(stats.responses_ok, kClients * kCallsPerClient);
  EXPECT_EQ(stats.protocol_errors, 0u);
  server.Shutdown();
}

// Shutdown racing live pipelined traffic: every admitted request is
// answered, late requests get a clean kShuttingDown, nothing hangs.
TEST(ServeStressTest, ShutdownRacesLiveTraffic) {
  const BipartiteGraph g = RandomWeightedGraph(60, 60, 700, 5353);
  const DeltaIndex delta = DeltaIndex::Build(g);
  ServerOptions options;
  options.num_threads = 2;
  Server server(g, &delta, nullptr, options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> hard_failures{0};
  std::vector<std::thread> clients;
  for (unsigned c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return;
      Rng rng(7000 + c);
      while (!stop.load(std::memory_order_relaxed)) {
        WireRequest req;
        req.q = static_cast<uint32_t>(rng.NextBounded(g.NumUpper()));
        req.alpha = 1 + static_cast<uint32_t>(rng.NextBounded(3));
        req.beta = 1 + static_cast<uint32_t>(rng.NextBounded(3));
        WireResponse resp;
        const Status st = client.Call(req, &resp);
        if (!st.ok()) break;  // connection torn down mid-drain: expected
        if (resp.status != WireStatus::kOk &&
            resp.status != WireStatus::kShuttingDown) {
          hard_failures.fetch_add(1);
        }
        if (resp.status == WireStatus::kShuttingDown) break;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Shutdown();  // races in-flight Calls
  stop.store(true);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(hard_failures.load(), 0u);
}

// --------------------------------------------------------------- chaos --
// Socket-fault injection via the net.* seam (see io/fault_inject.h).
// The injector is process-global, so every chaos test disarms on exit.

struct NetFaultGuard {
  ~NetFaultGuard() { NetFaultInjector::Instance().Disarm(); }
};

// A hostile network — truncated server sends (split frames), EINTR
// storms on both recv paths, connection resets mid-stream in both
// directions — must stay invisible to a retrying client: every answer
// still matches a fresh direct query and no call errors out.
TEST(ServeChaosTest, InjectedSocketFaultsAreInvisibleToRetryingClient) {
  NetFaultGuard guard;
  const BipartiteGraph g = RandomWeightedGraph(60, 60, 700, 6464);
  const DeltaIndex delta = DeltaIndex::Build(g);
  ServerOptions options;
  options.num_threads = 2;
  Server server(g, &delta, nullptr, options);
  ASSERT_TRUE(server.Start().ok());

  NetFaultInjector& inj = NetFaultInjector::Instance();
  ASSERT_TRUE(inj.ArmSpec("net.server_send=short:5@7").ok());
  ASSERT_TRUE(inj.ArmSpec("net.server_send=reset@23").ok());
  ASSERT_TRUE(inj.ArmSpec("net.server_recv=eintr:3@11").ok());
  ASSERT_TRUE(inj.ArmSpec("net.client_recv=eintr:2@9").ok());
  ASSERT_TRUE(inj.ArmSpec("net.client_send=reset@31").ok());

  ClientOptions copts;
  copts.max_attempts = 6;
  copts.backoff_base_ms = 1;
  copts.backoff_max_ms = 5;
  Client client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  Rng rng(99);
  for (int i = 0; i < 150; ++i) {
    const VertexId q = static_cast<VertexId>(rng.NextBounded(g.NumUpper()));
    const uint32_t alpha = 1 + static_cast<uint32_t>(rng.NextBounded(4));
    const uint32_t beta = 1 + static_cast<uint32_t>(rng.NextBounded(4));
    WireRequest req;
    req.q = q;
    req.alpha = alpha;
    req.beta = beta;
    WireResponse resp;
    const Status st = client.Call(req, &resp);
    ASSERT_TRUE(st.ok()) << "call " << i << ": " << st.ToString();
    ASSERT_EQ(resp.status, WireStatus::kOk) << i;
    const Subgraph expect = delta.QueryCommunity(q, alpha, beta);
    ASSERT_EQ(resp.num_edges, expect.edges.size()) << i;
    ASSERT_EQ(resp.found, !expect.edges.empty()) << i;
  }
  // The injected resets really fired and the client really recovered.
  EXPECT_GT(inj.fired("net.server_send"), 0u);
  EXPECT_GT(client.stats().retries, 0u);
  EXPECT_GT(client.stats().reconnects, 0u);
  inj.Disarm();
  server.Shutdown();
}

// A server whose response writer is delayed past the client's I/O
// deadline yields a typed timeout (no hang, no torn frame) — and once
// the fault clears, the same client object recovers on the next call.
TEST(ServeChaosTest, DelayPastClientDeadlineIsTypedThenRecovers) {
  NetFaultGuard guard;
  const BipartiteGraph g = RandomWeightedGraph(40, 40, 400, 7575);
  const DeltaIndex delta = DeltaIndex::Build(g);
  ServerOptions options;
  // The injected delay sleeps inside the syscall wrapper, pinning one
  // worker mid-send; a second worker keeps the recovery call servable
  // even on a single-core machine.
  options.num_threads = 2;
  Server server(g, &delta, nullptr, options);
  ASSERT_TRUE(server.Start().ok());

  NetFaultInjector& inj = NetFaultInjector::Instance();
  ASSERT_TRUE(inj.ArmSpec("net.server_send=delay:400").ok());

  ClientOptions copts;
  copts.io_timeout_ms = 100;
  copts.max_attempts = 1;  // surface the timeout instead of retrying
  Client client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  WireRequest req;
  req.q = 0;
  req.alpha = 1;
  req.beta = 1;
  WireResponse resp;
  const Status st = client.Call(req, &resp);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("timed out"), std::string::npos)
      << st.ToString();
  EXPECT_GE(client.stats().timeouts, 1u);

  inj.Disarm();
  // Same client object: reconnects and completes normally.
  const Status recovered = client.Call(req, &resp);
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(resp.num_edges, delta.QueryCommunity(0, 1, 1).edges.size());
  server.Shutdown();
}

// A peer that floods requests and never reads must be shed (bounded
// output buffer + write deadline) without wedging a worker: a paired
// well-behaved client keeps completing calls throughout, and the slow
// connection's teardown is a typed error, not a hang.
TEST(ServeChaosTest, SlowClientIsShedWhileFastClientProgresses) {
  const BipartiteGraph g = RandomWeightedGraph(60, 60, 700, 8686);
  const DeltaIndex delta = DeltaIndex::Build(g);
  ServerOptions options;
  options.num_threads = 2;
  options.write_deadline_ms = 150;
  options.max_output_buffer = 32u << 10;
  options.so_sndbuf = 8u << 10;  // small kernel buffer: back-pressure fast
  options.max_queue = 16384;     // flood must hit the outbuf, not admission
  Server server(g, &delta, nullptr, options);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions slow_opts;
  slow_opts.so_rcvbuf = 4096;  // tiny receive window
  Client slow(slow_opts);
  ASSERT_TRUE(slow.Connect("127.0.0.1", server.port()).ok());
  // ~5000 responses (36 framed bytes each) dwarf the kernel windows plus
  // the 32 KiB buffer cap; the flusher must shed this connection.
  WireRequest req;
  req.q = 0;
  req.alpha = 1;
  req.beta = 1;
  const std::vector<WireRequest> flood(5000, req);
  ASSERT_TRUE(slow.SendAll(flood).ok());
  // Deliberately not reading.

  // A fast client makes steady progress while the slow peer is wedged.
  Client fast;
  ASSERT_TRUE(fast.Connect("127.0.0.1", server.port()).ok());
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    WireRequest r;
    r.q = static_cast<uint32_t>(rng.NextBounded(g.NumUpper()));
    r.alpha = 1 + static_cast<uint32_t>(rng.NextBounded(3));
    r.beta = 1 + static_cast<uint32_t>(rng.NextBounded(3));
    WireResponse resp;
    ASSERT_TRUE(fast.Call(r, &resp).ok()) << i;
    ASSERT_EQ(resp.status, WireStatus::kOk) << i;
  }

  // The shed is asynchronous (write deadline / buffer cap in the
  // flusher); wait bounded, not forever.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.Stats().slow_client_dropped == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server.Stats().slow_client_dropped, 1u);

  // The slow client's connection was torn down: draining now fails with
  // a typed error once the buffered prefix runs out — it cannot hang.
  std::vector<WireResponse> responses;
  EXPECT_FALSE(slow.ReceiveAll(flood.size(), &responses).ok());

  // The fast connection is still healthy.
  ASSERT_TRUE(fast.Ping().ok());
  server.Shutdown();
}

}  // namespace
}  // namespace abcs::serve
