#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/dsu.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/weights.h"

namespace abcs {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCountAndSimple) {
  BipartiteGraph g;
  ASSERT_TRUE(GenErdosRenyiBipartite(50, 60, 500, 1, &g).ok());
  EXPECT_EQ(g.NumUpper(), 50u);
  EXPECT_EQ(g.NumLower(), 60u);
  EXPECT_EQ(g.NumEdges(), 500u);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : g.Edges()) {
    EXPECT_LT(e.u, 50u);
    EXPECT_GE(e.v, 50u);
    EXPECT_TRUE(seen.insert({e.u, e.v}).second) << "duplicate edge";
  }
}

TEST(ErdosRenyiTest, Deterministic) {
  BipartiteGraph a, b;
  ASSERT_TRUE(GenErdosRenyiBipartite(20, 20, 100, 42, &a).ok());
  ASSERT_TRUE(GenErdosRenyiBipartite(20, 20, 100, 42, &b).ok());
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(ErdosRenyiTest, RejectsOverfullGraph) {
  BipartiteGraph g;
  EXPECT_FALSE(GenErdosRenyiBipartite(3, 3, 10, 1, &g).ok());
  EXPECT_FALSE(GenErdosRenyiBipartite(0, 3, 1, 1, &g).ok());
}

TEST(ChungLuTest, EdgeCountAndSkewOrdering) {
  BipartiteGraph g;
  ASSERT_TRUE(GenChungLuBipartite(500, 500, 4000, 2.0, 2.5, 7, &g).ok());
  EXPECT_EQ(g.NumEdges(), 4000u);
  // Lower-indexed vertices carry larger expected degree: the average degree
  // of the first decile must dominate the last decile on each layer.
  auto decile_avg = [&](VertexId base, uint32_t n, bool first) {
    uint64_t sum = 0;
    const uint32_t k = n / 10;
    for (uint32_t i = 0; i < k; ++i) {
      sum += g.Degree(base + (first ? i : n - 1 - i));
    }
    return static_cast<double>(sum) / k;
  };
  EXPECT_GT(decile_avg(0, 500, true), decile_avg(0, 500, false) + 1.0);
  EXPECT_GT(decile_avg(500, 500, true), decile_avg(500, 500, false) + 1.0);
  // Heavier skew (smaller exponent) on the upper layer ⇒ bigger hub.
  EXPECT_GT(g.MaxUpperDegree(), g.MaxLowerDegree());
}

TEST(ChungLuTest, InvalidParameters) {
  BipartiteGraph g;
  EXPECT_FALSE(GenChungLuBipartite(10, 10, 100, 1.0, 2.0, 1, &g).ok());
  EXPECT_FALSE(GenChungLuBipartite(10, 10, 90, 2.0, 2.0, 1, &g).ok());
}

// --------------------------------------------------------------- Planted --

PlantedSpec SmallPlanted() {
  PlantedSpec spec;
  spec.num_genres = 2;
  spec.blocks_per_genre = 2;
  spec.users_per_block = 30;
  spec.movies_per_block = 20;
  spec.intra_fraction = 0.8;
  spec.cross_block_ratings = 4;
  spec.binge_users_per_genre = 8;
  spec.binge_ratings = 25;
  spec.casual_users = 50;
  spec.casual_ratings = 4;
  spec.seed = 11;
  return spec;
}

TEST(PlantedTest, LabelsAndSizesConsistent) {
  PlantedGraph pg = MakePlantedCommunities(SmallPlanted());
  EXPECT_EQ(pg.user_block.size(), pg.graph.NumUpper());
  EXPECT_EQ(pg.movie_block.size(), pg.graph.NumLower());
  // 2 genres × 2 blocks × 30 fans + 2×8 binge + 50 casual users.
  EXPECT_EQ(pg.graph.NumUpper(), 2u * 2 * 30 + 2 * 8 + 50);
  EXPECT_EQ(pg.graph.NumLower(), 2u * 2 * 20);
  // Every movie is labeled; background users have block -1.
  for (int32_t b : pg.movie_block) EXPECT_GE(b, 0);
  int unlabeled = 0;
  for (int32_t b : pg.user_block) unlabeled += (b < 0);
  EXPECT_EQ(unlabeled, 2 * 8 + 50);
}

TEST(PlantedTest, RatingsAreHalfStarsInRange) {
  PlantedGraph pg = MakePlantedCommunities(SmallPlanted());
  for (const Edge& e : pg.graph.Edges()) {
    EXPECT_GE(e.w, 0.5);
    EXPECT_LE(e.w, 5.0);
    EXPECT_DOUBLE_EQ(e.w * 2.0, std::round(e.w * 2.0));
  }
}

TEST(PlantedTest, FansRateOwnBlockHighly) {
  PlantedGraph pg = MakePlantedCommunities(SmallPlanted());
  const BipartiteGraph& g = pg.graph;
  for (const Edge& e : g.Edges()) {
    const int32_t ub = pg.user_block[e.u];
    const int32_t mb = pg.movie_block[e.v - g.NumUpper()];
    if (ub >= 0 && ub == mb) {
      EXPECT_GE(e.w, 4.0);
    }
  }
}

TEST(PlantedTest, GenreSliceKeepsOnlyGenreMovies) {
  PlantedGraph pg = MakePlantedCommunities(SmallPlanted());
  PlantedGraph slice = ExtractGenreSlice(pg, 0);
  EXPECT_GT(slice.graph.NumEdges(), 0u);
  EXPECT_LT(slice.graph.NumEdges(), pg.graph.NumEdges());
  for (int32_t genre : slice.movie_genre) EXPECT_EQ(genre, 0);
  EXPECT_EQ(slice.user_block.size(), slice.graph.NumUpper());
  EXPECT_EQ(slice.movie_block.size(), slice.graph.NumLower());
  // Edge count equals the number of original edges on genre-0 movies.
  uint32_t expected = 0;
  for (const Edge& e : pg.graph.Edges()) {
    if (pg.movie_genre[e.v - pg.graph.NumUpper()] == 0) ++expected;
  }
  EXPECT_EQ(slice.graph.NumEdges(), expected);
}

// --------------------------------------------------------------- Weights --

TEST(WeightsTest, ModelNames) {
  EXPECT_EQ(WeightModelName(WeightModel::kAllEqual), "AE");
  EXPECT_EQ(WeightModelName(WeightModel::kUniform), "UF");
  EXPECT_EQ(WeightModelName(WeightModel::kSkewNormal), "SK");
  EXPECT_EQ(WeightModelName(WeightModel::kRandomWalk), "RW");
}

class WeightModelTest : public ::testing::TestWithParam<WeightModel> {};

TEST_P(WeightModelTest, PreservesTopologyAndPositiveWeights) {
  BipartiteGraph topo;
  ASSERT_TRUE(GenErdosRenyiBipartite(40, 40, 300, 5, &topo).ok());
  BipartiteGraph g = ApplyWeightModel(topo, GetParam(), 99);
  ASSERT_EQ(g.NumEdges(), topo.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(g.GetEdge(e).u, topo.GetEdge(e).u);
    EXPECT_EQ(g.GetEdge(e).v, topo.GetEdge(e).v);
    EXPECT_GT(g.GetWeight(e), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, WeightModelTest,
                         ::testing::Values(WeightModel::kAllEqual,
                                           WeightModel::kUniform,
                                           WeightModel::kSkewNormal,
                                           WeightModel::kRandomWalk));

TEST(WeightsTest, AllEqualIsConstantOne) {
  BipartiteGraph topo;
  ASSERT_TRUE(GenErdosRenyiBipartite(10, 10, 50, 5, &topo).ok());
  BipartiteGraph g = ApplyWeightModel(topo, WeightModel::kAllEqual, 1);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_DOUBLE_EQ(g.GetWeight(e), 1.0);
  }
}

TEST(WeightsTest, UniformInRange) {
  BipartiteGraph topo;
  ASSERT_TRUE(GenErdosRenyiBipartite(30, 30, 400, 5, &topo).ok());
  BipartiteGraph g = ApplyWeightModel(topo, WeightModel::kUniform, 1);
  Weight lo = 1e9, hi = -1e9;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    lo = std::min(lo, g.GetWeight(e));
    hi = std::max(hi, g.GetWeight(e));
  }
  EXPECT_GE(lo, 1.0);
  EXPECT_LE(hi, 100.0);
  EXPECT_GT(hi - lo, 50.0);  // actually spread out
}

TEST(WeightsTest, RandomWalkScoresSumToOne) {
  BipartiteGraph g;
  ASSERT_TRUE(GenErdosRenyiBipartite(25, 25, 200, 5, &g).ok());
  std::vector<double> scores = RandomWalkScores(g, 0.15, 30);
  double sum = 0;
  for (double s : scores) {
    EXPECT_GT(s, 0.0);
    sum += s;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(WeightsTest, RandomWalkFavorsHighDegreeVertices) {
  // A star: hub u0 with 20 leaves vs a single extra edge elsewhere.
  GraphBuilder b;
  for (uint32_t j = 0; j < 20; ++j) b.AddEdge(0, j, 1.0);
  b.AddEdge(1, 0, 1.0);
  BipartiteGraph g;
  ASSERT_TRUE(b.Build(&g).ok());
  std::vector<double> scores = RandomWalkScores(g, 0.15, 40);
  EXPECT_GT(scores[0], scores[1] * 3.0);
}

// -------------------------------------------------------------- Datasets --

TEST(DatasetsTest, RegistryHasElevenPaperNames) {
  const auto& all = AllDatasets();
  ASSERT_EQ(all.size(), 11u);
  const char* names[] = {"BS", "GH", "SO", "LS",  "DT", "AR",
                         "PA", "ML", "DUI", "EN", "DTI"};
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].name, names[i]);
  }
  EXPECT_NE(FindDataset("ML"), nullptr);
  EXPECT_EQ(FindDataset("nope"), nullptr);
}

TEST(DatasetsTest, EveryRegistryDatasetMaterializes) {
  // Regression guard for the whole Table-I registry: every spec generates
  // with its exact edge count and layer sizes, carries positive weights,
  // and is deterministic.
  for (const DatasetSpec& spec : AllDatasets()) {
    BipartiteGraph g;
    ASSERT_TRUE(MakeDataset(spec, &g).ok()) << spec.name;
    EXPECT_EQ(g.NumEdges(), spec.num_edges) << spec.name;
    EXPECT_EQ(g.NumUpper(), spec.num_upper) << spec.name;
    EXPECT_EQ(g.NumLower(), spec.num_lower) << spec.name;
    Weight lo = 1e300;
    for (const Edge& e : g.Edges()) lo = std::min(lo, e.w);
    EXPECT_GT(lo, 0.0) << spec.name;
    if (spec.name == "BS") {  // determinism spot check on one dataset
      BipartiteGraph g2;
      ASSERT_TRUE(MakeDataset(spec, &g2).ok());
      EXPECT_EQ(g.Edges(), g2.Edges());
    }
  }
}

TEST(DatasetsTest, SmallestDatasetMaterializes) {
  const DatasetSpec* spec = FindDataset("BS");
  ASSERT_NE(spec, nullptr);
  BipartiteGraph g;
  ASSERT_TRUE(MakeDataset(*spec, &g).ok());
  EXPECT_EQ(g.NumEdges(), spec->num_edges);
  EXPECT_EQ(g.NumUpper(), spec->num_upper);
}

}  // namespace
}  // namespace abcs
