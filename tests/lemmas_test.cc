// Direct verification of the paper's lemmas on randomized instances —
// these are the statements the algorithms' pruning and optimality rest on.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "abcore/degeneracy.h"
#include "abcore/peeling.h"
#include "core/delta_index.h"
#include "core/scs_peel.h"
#include "test_util.h"

namespace abcs {
namespace {

using ::abcs::testing::RandomWeightedGraph;

// Lemma 1: the significant (α,β)-community is unique and contained in the
// (α,β)-community. (Uniqueness = determinism across independent runs with
// permuted edge pools is covered by the cross-algorithm agreement tests;
// containment is re-verified here on its own.)
TEST(LemmaTest, Lemma1ContainmentInCommunity) {
  BipartiteGraph g = RandomWeightedGraph(30, 30, 260, 11);
  const DeltaIndex index = DeltaIndex::Build(g);
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const VertexId q = static_cast<VertexId>(rng.NextBounded(60));
    const uint32_t a = 1 + static_cast<uint32_t>(rng.NextBounded(4));
    const uint32_t b = 1 + static_cast<uint32_t>(rng.NextBounded(4));
    const Subgraph c = index.QueryCommunity(q, a, b);
    const ScsResult r = ScsPeel(g, c, q, a, b);
    if (!r.found) continue;
    std::set<EdgeId> ce(c.edges.begin(), c.edges.end());
    for (EdgeId e : r.community.edges) {
      EXPECT_TRUE(ce.count(e)) << "R must be a subgraph of C";
    }
  }
}

// Lemma 2: (α,β)-core ⊆ (α',β')-core whenever α ≥ α', β ≥ β'.
TEST(LemmaTest, Lemma2CoreHierarchy) {
  BipartiteGraph g = RandomWeightedGraph(25, 25, 200, 12);
  std::map<std::pair<uint32_t, uint32_t>, CoreResult> cores;
  for (uint32_t a = 1; a <= 5; ++a) {
    for (uint32_t b = 1; b <= 5; ++b) {
      cores[{a, b}] = ComputeAlphaBetaCore(g, a, b);
    }
  }
  for (uint32_t a = 1; a <= 5; ++a) {
    for (uint32_t b = 1; b <= 5; ++b) {
      const CoreResult& inner = cores[{a, b}];
      for (uint32_t a2 = 1; a2 <= a; ++a2) {
        for (uint32_t b2 = 1; b2 <= b; ++b2) {
          const CoreResult& outer = cores[{a2, b2}];
          for (VertexId v = 0; v < g.NumVertices(); ++v) {
            if (inner.alive[v]) {
              EXPECT_TRUE(outer.alive[v])
                  << "v=" << v << " (" << a << "," << b << ") not in (" << a2
                  << "," << b2 << ")";
            }
          }
        }
      }
    }
  }
}

// Lemma 4: every nonempty (α,β)-core has min(α,β) ≤ δ, and δ is tight.
TEST(LemmaTest, Lemma4DegeneracyBoundTight) {
  for (uint64_t seed : {13, 14, 15}) {
    BipartiteGraph g = RandomWeightedGraph(25, 25, 230, seed);
    const uint32_t delta = Degeneracy(g);
    EXPECT_FALSE(ComputeAlphaBetaCore(g, delta, delta).Empty());
    const uint32_t hi = std::max(g.MaxUpperDegree(), g.MaxLowerDegree()) + 1;
    for (uint32_t t = delta + 1; t <= hi; ++t) {
      EXPECT_TRUE(ComputeAlphaBetaCore(g, t, t).Empty());
    }
  }
}

// Lemma 7: if R ⊆ C*, then αβ − α − β ≤ |E(C*)| − |U(C*)| − |L(C*)|.
// We verify on every *final* significant community (R ⊆ R trivially), the
// tightest case the expansion algorithm ever tests.
TEST(LemmaTest, Lemma7HoldsForEveryResult) {
  BipartiteGraph g = RandomWeightedGraph(30, 30, 280, 16);
  const DeltaIndex index = DeltaIndex::Build(g);
  Rng rng(2);
  int checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const VertexId q = static_cast<VertexId>(rng.NextBounded(60));
    const uint32_t a = 1 + static_cast<uint32_t>(rng.NextBounded(5));
    const uint32_t b = 1 + static_cast<uint32_t>(rng.NextBounded(5));
    const Subgraph c = index.QueryCommunity(q, a, b);
    const ScsResult r = ScsPeel(g, c, q, a, b);
    if (!r.found) continue;
    const SubgraphStats stats = ComputeStats(g, r.community);
    const int64_t lhs = static_cast<int64_t>(a) * b - a - b;
    const int64_t rhs = static_cast<int64_t>(r.community.Size()) -
                        stats.num_upper - stats.num_lower;
    EXPECT_LE(lhs, rhs) << "a=" << a << " b=" << b;
    ++checked;
  }
  EXPECT_GT(checked, 5);
}

// Lemma 8: R contains ≥ α (lower) vertices of degree ≥ β and ≥ β (upper)
// vertices of degree ≥ α, with q among them.
TEST(LemmaTest, Lemma8DegreeCountsHoldForEveryResult) {
  BipartiteGraph g = RandomWeightedGraph(30, 30, 280, 17);
  const DeltaIndex index = DeltaIndex::Build(g);
  Rng rng(3);
  int checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const VertexId q = static_cast<VertexId>(rng.NextBounded(60));
    const uint32_t a = 1 + static_cast<uint32_t>(rng.NextBounded(5));
    const uint32_t b = 1 + static_cast<uint32_t>(rng.NextBounded(5));
    const Subgraph c = index.QueryCommunity(q, a, b);
    const ScsResult r = ScsPeel(g, c, q, a, b);
    if (!r.found) continue;
    std::map<VertexId, uint32_t> deg;
    for (EdgeId e : r.community.edges) {
      ++deg[g.GetEdge(e).u];
      ++deg[g.GetEdge(e).v];
    }
    uint32_t upper_ok = 0, lower_ok = 0;
    for (const auto& [v, d] : deg) {
      if (g.IsUpper(v) && d >= a) ++upper_ok;
      if (!g.IsUpper(v) && d >= b) ++lower_ok;
    }
    EXPECT_GE(lower_ok, a);
    EXPECT_GE(upper_ok, b);
    ASSERT_TRUE(deg.count(q));
    EXPECT_GE(deg[q], g.IsUpper(q) ? a : b);
    ++checked;
  }
  EXPECT_GT(checked, 5);
}

// Lemma 3 / §III-B optimality: Qopt touches at most one adjacency entry
// per community edge per endpoint plus one sentinel per visited vertex —
// for every (α,β), not just the Figure-2 instance.
TEST(LemmaTest, QoptTouchBoundAcrossParameters) {
  BipartiteGraph g = RandomWeightedGraph(40, 40, 420, 18);
  const DeltaIndex index = DeltaIndex::Build(g);
  Rng rng(4);
  for (int trial = 0; trial < 40; ++trial) {
    const VertexId q = static_cast<VertexId>(rng.NextBounded(80));
    const uint32_t a = 1 + static_cast<uint32_t>(rng.NextBounded(6));
    const uint32_t b = 1 + static_cast<uint32_t>(rng.NextBounded(6));
    QueryStats stats;
    const Subgraph c = index.QueryCommunity(q, a, b, &stats);
    if (c.Empty()) continue;
    const std::size_t vertices = SubgraphVertexSet(g, c).size();
    EXPECT_LE(stats.touched_arcs, 2 * c.Size() + vertices)
        << "a=" << a << " b=" << b;
  }
}

}  // namespace
}  // namespace abcs
