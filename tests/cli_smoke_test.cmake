# ctest-driven round trip over the abcs CLI:
#   gen → stats → index → query → scs (all algorithms) → profile.
# Invoked as:
#   cmake -DABCS_CLI=<path> -DWORK_DIR=<dir> -P cli_smoke_test.cmake

if(NOT ABCS_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DABCS_CLI=... -DWORK_DIR=... -P cli_smoke_test.cmake")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})
set(GRAPH ${WORK_DIR}/bs.txt)
set(INDEX ${WORK_DIR}/bs.idx)

function(run_abcs expect_pattern)
  list(JOIN ARGN " " pretty)
  execute_process(
    COMMAND ${ABCS_CLI} ${ARGN}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "abcs ${pretty} failed (rc=${rc}):\n${out}${err}")
  endif()
  if(expect_pattern AND NOT out MATCHES "${expect_pattern}")
    message(FATAL_ERROR
      "abcs ${pretty}: output does not match '${expect_pattern}':\n${out}")
  endif()
  message(STATUS "ok: abcs ${pretty}")
endfunction()

run_abcs("wrote .*: [0-9]+ edges" gen BS ${GRAPH})
run_abcs("delta=[1-9]" stats ${GRAPH})
run_abcs("built I_delta .*saved to" index ${GRAPH} ${INDEX})
run_abcs("community of u1" query ${GRAPH} 1 2 2 --index ${INDEX})
run_abcs("" query ${GRAPH} 0 1 1 --index ${INDEX} --side l)
foreach(algo peel expand binary baseline)
  run_abcs("\\(2,2\\)-community" scs ${GRAPH} 1 2 2 --index ${INDEX} --algo ${algo})
endforeach()
run_abcs("f\\(R\\) for u1" profile ${GRAPH} 1 3 3 --index ${INDEX})

# Determinism: a second gen of the same spec must be byte-identical.
run_abcs("" gen BS ${WORK_DIR}/bs2.txt)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${GRAPH} ${WORK_DIR}/bs2.txt
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "abcs gen is not deterministic")
endif()
message(STATUS "cli smoke test passed")
