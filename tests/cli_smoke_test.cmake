# ctest-driven round trip over the abcs CLI:
#   gen → stats → index → query → scs (all algorithms) → profile.
# Invoked as:
#   cmake -DABCS_CLI=<path> -DWORK_DIR=<dir> -P cli_smoke_test.cmake

if(NOT ABCS_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DABCS_CLI=... -DWORK_DIR=... -P cli_smoke_test.cmake")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})
set(GRAPH ${WORK_DIR}/bs.txt)
set(INDEX ${WORK_DIR}/bs.idx)

function(run_abcs expect_pattern)
  list(JOIN ARGN " " pretty)
  execute_process(
    COMMAND ${ABCS_CLI} ${ARGN}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "abcs ${pretty} failed (rc=${rc}):\n${out}${err}")
  endif()
  if(expect_pattern AND NOT out MATCHES "${expect_pattern}")
    message(FATAL_ERROR
      "abcs ${pretty}: output does not match '${expect_pattern}':\n${out}")
  endif()
  message(STATUS "ok: abcs ${pretty}")
endfunction()

run_abcs("wrote .*: [0-9]+ edges" gen BS ${GRAPH})
run_abcs("delta=[1-9]" stats ${GRAPH})
run_abcs("built I_delta .*saved to" index ${GRAPH} ${INDEX})
run_abcs("community of u1" query ${GRAPH} 1 2 2 --index ${INDEX})
run_abcs("" query ${GRAPH} 0 1 1 --index ${INDEX} --side l)
foreach(algo peel expand binary baseline)
  run_abcs("\\(2,2\\)-community" scs ${GRAPH} 1 2 2 --index ${INDEX} --algo ${algo})
endforeach()
run_abcs("f\\(R\\) for u1" profile ${GRAPH} 1 3 3 --index ${INDEX})

# Batched query engine: results on stdout must be byte-identical for any
# --threads value and any method must agree on community sizes.
set(BATCH ${WORK_DIR}/batch.txt)
file(WRITE ${BATCH} "1 2 2\n0 1 1 l\n2 3 3\n# comment line\n3 2 2 u\n")
foreach(threads 1 3)
  execute_process(
    COMMAND ${ABCS_CLI} query ${GRAPH} --batch ${BATCH} --threads ${threads}
      --index ${INDEX}
    OUTPUT_VARIABLE batch_out_${threads}
    ERROR_VARIABLE batch_err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "abcs query --batch --threads ${threads} failed "
      "(rc=${rc}):\n${batch_err}")
  endif()
endforeach()
if(NOT batch_out_1 STREQUAL batch_out_3)
  message(FATAL_ERROR "abcs query --batch is not deterministic across "
    "thread counts:\n--- threads=1\n${batch_out_1}\n--- threads=3\n"
    "${batch_out_3}")
endif()
if(NOT batch_out_1 MATCHES "# batch of 4 queries, method=delta")
  message(FATAL_ERROR "unexpected batch header:\n${batch_out_1}")
endif()
message(STATUS "ok: abcs query --batch deterministic across threads")
foreach(method online bicore)
  run_abcs("# batch of 4 queries, method=${method}"
    query ${GRAPH} --batch ${BATCH} --method ${method} --threads 2)
endforeach()

# Determinism: a second gen of the same spec must be byte-identical.
run_abcs("" gen BS ${WORK_DIR}/bs2.txt)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${GRAPH} ${WORK_DIR}/bs2.txt
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "abcs gen is not deterministic")
endif()
message(STATUS "cli smoke test passed")
