# ctest-driven round trip over the abcs CLI:
#   gen → stats → index (ABCSPAK1 bundle) → query (graph+--index and
#   self-contained --bundle) → scs (all algorithms) → profile → batches.
# Invoked as:
#   cmake -DABCS_CLI=<path> -DWORK_DIR=<dir> -P cli_smoke_test.cmake

if(NOT ABCS_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DABCS_CLI=... -DWORK_DIR=... -P cli_smoke_test.cmake")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})
set(GRAPH ${WORK_DIR}/bs.txt)
set(INDEX ${WORK_DIR}/bs.idx)

function(run_abcs expect_pattern)
  list(JOIN ARGN " " pretty)
  execute_process(
    COMMAND ${ABCS_CLI} ${ARGN}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "abcs ${pretty} failed (rc=${rc}):\n${out}${err}")
  endif()
  if(expect_pattern AND NOT out MATCHES "${expect_pattern}")
    message(FATAL_ERROR
      "abcs ${pretty}: output does not match '${expect_pattern}':\n${out}")
  endif()
  message(STATUS "ok: abcs ${pretty}")
endfunction()

run_abcs("wrote .*: [0-9]+ edges" gen BS ${GRAPH})
run_abcs("delta=[1-9]" stats ${GRAPH})
run_abcs("built I_delta .*saved to" index ${GRAPH} ${INDEX})
run_abcs("community of u1" query ${GRAPH} 1 2 2 --index ${INDEX})
run_abcs("" query ${GRAPH} 0 1 1 --index ${INDEX} --side l)

# Persistence round trip: the index file written above is an ABCSPAK1
# bundle; the same query served via graph+--index (auto-detected bundle,
# verified against the graph) and via the self-contained --bundle form must
# print byte-identical communities (only the timing figure may differ).
function(capture_query out_var)
  execute_process(
    COMMAND ${ABCS_CLI} ${ARGN}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    list(JOIN ARGN " " pretty)
    message(FATAL_ERROR "abcs ${pretty} failed (rc=${rc}):\n${out}${err}")
  endif()
  string(REGEX REPLACE "in [0-9.e+-]+ s" "in <t> s" out "${out}")
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()
capture_query(via_index query ${GRAPH} 2 2 2 --index ${INDEX})
capture_query(via_bundle query --bundle ${INDEX} 2 2 2)
if(NOT via_index STREQUAL via_bundle)
  message(FATAL_ERROR "bundle-served query differs from graph+index:\n"
    "--- via --index\n${via_index}\n--- via --bundle\n${via_bundle}")
endif()
message(STATUS "ok: --bundle query identical to graph + --index")

# A reweighted graph must be rejected against the stale bundle (the weight
# digest closes the topology checksum's blind spot).
file(READ ${GRAPH} graph_text)
string(REGEX REPLACE "\n([0-9]+ [0-9]+) [0-9.]+\n" "\n\\1 987654\n"
  reweighted_text "${graph_text}")
if(reweighted_text STREQUAL graph_text)
  message(FATAL_ERROR "reweighting patch did not change the edge list")
endif()
file(WRITE ${WORK_DIR}/bs_reweighted.txt "${reweighted_text}")
execute_process(
  COMMAND ${ABCS_CLI} query ${WORK_DIR}/bs_reweighted.txt 1 2 2 --index ${INDEX}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0 OR NOT err MATCHES "weights do not match")
  message(FATAL_ERROR "stale-weight bundle was not rejected (rc=${rc}):\n"
    "${out}${err}")
endif()
message(STATUS "ok: stale-weight bundle rejected")
foreach(algo auto peel expand binary baseline)
  run_abcs("\\(2,2\\)-community" scs ${GRAPH} 1 2 2 --index ${INDEX} --algo ${algo})
endforeach()
run_abcs("f\\(R\\) for u1" profile ${GRAPH} 1 3 3 --index ${INDEX})

# Batched query engine: results on stdout must be byte-identical for any
# --threads value and any method must agree on community sizes.
set(BATCH ${WORK_DIR}/batch.txt)
file(WRITE ${BATCH} "1 2 2\n0 1 1 l\n2 3 3\n# comment line\n3 2 2 u\n")
foreach(threads 1 3)
  execute_process(
    COMMAND ${ABCS_CLI} query ${GRAPH} --batch ${BATCH} --threads ${threads}
      --index ${INDEX}
    OUTPUT_VARIABLE batch_out_${threads}
    ERROR_VARIABLE batch_err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "abcs query --batch --threads ${threads} failed "
      "(rc=${rc}):\n${batch_err}")
  endif()
endforeach()
if(NOT batch_out_1 STREQUAL batch_out_3)
  message(FATAL_ERROR "abcs query --batch is not deterministic across "
    "thread counts:\n--- threads=1\n${batch_out_1}\n--- threads=3\n"
    "${batch_out_3}")
endif()
if(NOT batch_out_1 MATCHES "# batch of 4 queries, method=delta")
  message(FATAL_ERROR "unexpected batch header:\n${batch_out_1}")
endif()
message(STATUS "ok: abcs query --batch deterministic across threads")
foreach(method online bicore)
  run_abcs("# batch of 4 queries, method=${method}"
    query ${GRAPH} --batch ${BATCH} --method ${method} --threads 2)
endforeach()

# Batches served straight from the bundle (no graph file): every method,
# same deterministic stdout as the graph-backed delta run where comparable.
foreach(method delta bicore online)
  run_abcs("# batch of 4 queries, method=${method}"
    query --bundle ${INDEX} --batch ${BATCH} --method ${method} --threads 2)
endforeach()
execute_process(
  COMMAND ${ABCS_CLI} query --bundle ${INDEX} --batch ${BATCH} --threads 2
  OUTPUT_VARIABLE batch_bundle ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "abcs query --bundle --batch failed: ${err}")
endif()
if(NOT batch_bundle STREQUAL batch_out_1)
  message(FATAL_ERROR "bundle-served batch differs from graph-served batch:\n"
    "--- graph\n${batch_out_1}\n--- bundle\n${batch_bundle}")
endif()
message(STATUS "ok: bundle-served batch identical to graph-served batch")

# Compressed-bundle round trip: a --compress bundle (bare flag = max) must
# answer every batch byte-identically to the raw bundle across all methods,
# and `abcs inspect` must show the v2 TOC with at least one coded section.
set(CINDEX ${WORK_DIR}/bs_compressed.idx)
run_abcs("compression=max" index ${GRAPH} ${CINDEX} --compress)
run_abcs("compression=fast" index ${GRAPH} ${WORK_DIR}/bs_fast.idx
  --compress=fast)
run_abcs("ABCSPAK2" inspect ${CINDEX})
execute_process(
  COMMAND ${ABCS_CLI} inspect ${CINDEX}
  OUTPUT_VARIABLE inspect_out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "abcs inspect failed: ${err}")
endif()
if(NOT inspect_out MATCHES "delta-varint" AND NOT inspect_out MATCHES "bit-pack")
  message(FATAL_ERROR "max-compressed bundle has no coded sections:\n"
    "${inspect_out}")
endif()
message(STATUS "ok: abcs inspect shows coded sections")
foreach(method delta bicore online)
  execute_process(
    COMMAND ${ABCS_CLI} query --bundle ${CINDEX} --batch ${BATCH}
      --method ${method} --threads 2
    OUTPUT_VARIABLE compressed_out ERROR_VARIABLE err RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "abcs query --bundle (compressed) --method ${method} "
      "failed: ${err}")
  endif()
  execute_process(
    COMMAND ${ABCS_CLI} query --bundle ${INDEX} --batch ${BATCH}
      --method ${method} --threads 2
    OUTPUT_VARIABLE raw_out ERROR_VARIABLE err RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "abcs query --bundle (raw) --method ${method} "
      "failed: ${err}")
  endif()
  if(NOT compressed_out STREQUAL raw_out)
    message(FATAL_ERROR "compressed bundle answers differ from raw bundle "
      "(method=${method}):\n--- raw\n${raw_out}\n--- compressed\n"
      "${compressed_out}")
  endif()
endforeach()
message(STATUS "ok: compressed bundle batch-identical to raw across methods")
foreach(method scs-auto scs-peel scs-expand scs-binary)
  execute_process(
    COMMAND ${ABCS_CLI} query ${GRAPH} --batch ${BATCH} --method ${method}
      --threads 2 --index ${CINDEX}
    OUTPUT_VARIABLE compressed_out ERROR_VARIABLE err RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "abcs query --index (compressed) --method ${method} "
      "failed: ${err}")
  endif()
  execute_process(
    COMMAND ${ABCS_CLI} query ${GRAPH} --batch ${BATCH} --method ${method}
      --threads 2 --index ${INDEX}
    OUTPUT_VARIABLE raw_out ERROR_VARIABLE err RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "abcs query --index (raw) --method ${method} "
      "failed: ${err}")
  endif()
  if(NOT compressed_out STREQUAL raw_out)
    message(FATAL_ERROR "compressed index answers differ from raw index "
      "(method=${method}):\n--- raw\n${raw_out}\n--- compressed\n"
      "${compressed_out}")
  endif()
endforeach()
message(STATUS "ok: compressed scs batches identical to raw across kernels")

# SCS batches: the full two-step paradigm per query through the engine —
# stdout (planner decisions included) must be byte-identical for any
# --threads value, and every kernel must agree on the batch aggregates.
foreach(threads 1 3)
  execute_process(
    COMMAND ${ABCS_CLI} query ${GRAPH} --batch ${BATCH} --method scs-auto
      --threads ${threads} --index ${INDEX}
    OUTPUT_VARIABLE scs_out_${threads}
    ERROR_VARIABLE scs_err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "abcs query --batch --method scs-auto --threads "
      "${threads} failed (rc=${rc}):\n${scs_err}")
  endif()
endforeach()
if(NOT scs_out_1 STREQUAL scs_out_3)
  message(FATAL_ERROR "scs-auto batch is not deterministic across thread "
    "counts:\n--- threads=1\n${scs_out_1}\n--- threads=3\n${scs_out_3}")
endif()
if(NOT scs_out_1 MATCHES "# batch of 4 scs queries, algo=auto")
  message(FATAL_ERROR "unexpected scs batch header:\n${scs_out_1}")
endif()
string(REGEX MATCH "# found=[^\n]*" scs_totals_auto "${scs_out_1}")
foreach(method scs-peel scs-expand scs-binary)
  execute_process(
    COMMAND ${ABCS_CLI} query ${GRAPH} --batch ${BATCH} --method ${method}
      --threads 2 --index ${INDEX}
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "abcs query --batch --method ${method} failed: ${err}")
  endif()
  string(REGEX MATCH "# found=[^\n]*" scs_totals "${out}")
  if(NOT scs_totals STREQUAL scs_totals_auto)
    message(FATAL_ERROR "${method} batch aggregates differ from scs-auto:\n"
      "${scs_totals}\nvs\n${scs_totals_auto}")
  endif()
endforeach()
message(STATUS "ok: scs batches deterministic and kernel-agreeing")

# Determinism: a second gen of the same spec must be byte-identical.
run_abcs("" gen BS ${WORK_DIR}/bs2.txt)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${GRAPH} ${WORK_DIR}/bs2.txt
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "abcs gen is not deterministic")
endif()
message(STATUS "cli smoke test passed")
