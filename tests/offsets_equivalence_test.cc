// Property tests for the output-sensitive decomposition build: the
// incremental nested-core chains (serial and τ-chunked parallel) must be
// bit-identical to the naive per-level peel — same δ, same arena layout,
// same offset values — across random Chung–Lu graphs, weight models,
// thread counts, and the degenerate shapes that stress the chunking
// (δ = 0, stars, complete bipartite blocks).

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "abcore/degeneracy.h"
#include "abcore/offsets.h"
#include "graph/generators.h"
#include "graph/weights.h"
#include "test_util.h"

namespace abcs {
namespace {

using ::abcs::testing::MakeGraph;

void ExpectBitIdentical(const BipartiteGraph& g, const char* context) {
  const BicoreDecomposition naive = ComputeBicoreDecompositionNaive(g);
  const BicoreDecomposition serial = ComputeBicoreDecomposition(g);
  EXPECT_EQ(serial, naive) << context << ": serial incremental vs naive";
  for (unsigned threads : {1u, 2u, 4u}) {
    const BicoreDecomposition parallel =
        ComputeBicoreDecompositionParallel(g, threads);
    EXPECT_EQ(parallel, naive)
        << context << ": chunked parallel vs naive, threads=" << threads;
  }
  // The accessors must agree with the direct per-level peel everywhere,
  // including levels past a vertex's slice (0 by definition).
  for (uint32_t tau = 1; tau <= naive.delta; ++tau) {
    const std::vector<uint32_t> sa = ComputeAlphaOffsets(g, tau);
    const std::vector<uint32_t> sb = ComputeBetaOffsets(g, tau);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      ASSERT_EQ(naive.sa(tau, v), sa[v])
          << context << " tau=" << tau << " v=" << v;
      ASSERT_EQ(naive.sb(tau, v), sb[v])
          << context << " tau=" << tau << " v=" << v;
    }
  }
}

class ChungLuEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(ChungLuEquivalenceTest, IncrementalMatchesNaive) {
  const auto [seed, model_idx] = GetParam();
  const WeightModel model = static_cast<WeightModel>(model_idx);
  BipartiteGraph topo;
  ASSERT_TRUE(GenChungLuBipartite(120, 150, 900 + 37 * (seed % 5), 2.0, 2.2,
                                  seed, &topo)
                  .ok());
  const BipartiteGraph g = ApplyWeightModel(topo, model, seed + 1);
  ExpectBitIdentical(g, WeightModelName(model).c_str());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByWeightModel, ChungLuEquivalenceTest,
    ::testing::Combine(
        ::testing::Values(901, 902, 903, 904),
        ::testing::Values(static_cast<int>(WeightModel::kAllEqual),
                          static_cast<int>(WeightModel::kUniform),
                          static_cast<int>(WeightModel::kSkewNormal))));

TEST(OffsetsEquivalenceTest, EmptyGraphHasDeltaZero) {
  const BipartiteGraph g;  // no vertices, no edges
  ExpectBitIdentical(g, "empty");
  const BicoreDecomposition d = ComputeBicoreDecomposition(g);
  EXPECT_EQ(d.delta, 0u);
  EXPECT_EQ(d.NumVertices(), 0u);
  EXPECT_TRUE(d.alpha.values.empty());
  EXPECT_TRUE(d.beta.values.empty());
}

TEST(OffsetsEquivalenceTest, StarGraph) {
  // K_{1,6}: δ = 1, the chains have no τ ≥ 2 work at all.
  std::vector<std::tuple<uint32_t, uint32_t, Weight>> triples;
  for (uint32_t j = 0; j < 6; ++j) triples.push_back({0, j, 1.0});
  const BipartiteGraph g = MakeGraph(triples);
  ASSERT_EQ(Degeneracy(g), 1u);
  ExpectBitIdentical(g, "star");
  const BicoreDecomposition d = ComputeBicoreDecomposition(g);
  EXPECT_EQ(d.sb(1, 0), 6u);  // the hub survives to α = 6
  EXPECT_EQ(d.sa(1, 0), 1u);  // degree-1 leaves cap β at 1
  EXPECT_EQ(d.sb(1, 1), 6u);  // every leaf dies with the hub
}

TEST(OffsetsEquivalenceTest, CompleteBipartiteBlock) {
  // K_{5,5}: δ = 5 and no vertex ever leaves a core early, so every slice
  // has full length δ and the chunked chains degenerate to whole-graph
  // peels at every τ.
  std::vector<std::tuple<uint32_t, uint32_t, Weight>> triples;
  for (uint32_t i = 0; i < 5; ++i) {
    for (uint32_t j = 0; j < 5; ++j) triples.push_back({i, j, 1.0});
  }
  const BipartiteGraph g = MakeGraph(triples);
  ASSERT_EQ(Degeneracy(g), 5u);
  ExpectBitIdentical(g, "complete");
  const BicoreDecomposition d = ComputeBicoreDecomposition(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(d.alpha.Levels(v), 5u);
    for (uint32_t tau = 1; tau <= 5; ++tau) EXPECT_EQ(d.sa(tau, v), 5u);
  }
}

TEST(OffsetsEquivalenceTest, ChainPlusCliqueMixesSliceLengths) {
  // A dense biclique glued to a long degree-2 chain: chain vertices leave
  // the α-chain at τ = 2 (slice length 1-2) while biclique vertices keep
  // full slices — exercising uneven arena layouts under every chunking.
  const BipartiteGraph g = ::abcs::testing::PaperFigure2Graph(60);
  ExpectBitIdentical(g, "figure2");
}

TEST(OffsetsEquivalenceTest, ThreadCountBeyondDeltaClampsToChunks) {
  // More workers than τ-levels: chunking must clamp, not emit empty or
  // overlapping chunks.
  BipartiteGraph g = ::abcs::testing::RandomWeightedGraph(20, 20, 140, 77);
  const BicoreDecomposition naive = ComputeBicoreDecompositionNaive(g);
  for (unsigned threads : {8u, 16u, 64u}) {
    EXPECT_EQ(ComputeBicoreDecompositionParallel(g, threads), naive)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace abcs
