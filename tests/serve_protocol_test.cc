// Tests for the serve wire layer that needs no sockets: frame
// encode/decode under arbitrary chunking, strict request/response
// parsing, the warm (α,β) memo's sharing semantics, the lock-free
// work-stealing range partition, and the daemon task scheduler.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "core/delta_index.h"
#include "core/work_steal.h"
#include "serve/frame.h"
#include "serve/memo.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "test_util.h"

namespace abcs::serve {
namespace {

using ::abcs::testing::RandomWeightedGraph;

std::vector<std::byte> Frame(std::span<const std::byte> payload) {
  std::vector<std::byte> out;
  AppendFrame(payload, &out);
  return out;
}

std::vector<std::byte> Bytes(std::initializer_list<int> xs) {
  std::vector<std::byte> out;
  for (int x : xs) out.push_back(static_cast<std::byte>(x));
  return out;
}

// ------------------------------------------------------------- framing --

TEST(FrameTest, RoundTripSingleFrame) {
  const std::vector<std::byte> payload = Bytes({1, 2, 3, 4, 5});
  const std::vector<std::byte> framed = Frame(payload);
  ASSERT_EQ(framed.size(), payload.size() + 4);

  FrameReader reader;
  ASSERT_TRUE(reader.Append(framed).ok());
  std::span<const std::byte> got;
  ASSERT_TRUE(reader.Next(&got));
  EXPECT_TRUE(std::equal(got.begin(), got.end(), payload.begin(),
                         payload.end()));
  EXPECT_FALSE(reader.Next(&got));
  EXPECT_EQ(reader.PendingBytes(), 0u);
}

// A frame split at every possible byte boundary still reassembles.
TEST(FrameTest, ByteByByteDelivery) {
  const std::vector<std::byte> payload = Bytes({9, 8, 7, 6, 5, 4, 3});
  const std::vector<std::byte> framed = Frame(payload);
  FrameReader reader;
  std::span<const std::byte> got;
  for (std::size_t i = 0; i < framed.size(); ++i) {
    ASSERT_TRUE(reader.Append({&framed[i], 1}).ok());
    if (i + 1 < framed.size()) {
      ASSERT_FALSE(reader.Next(&got)) << "frame complete too early at " << i;
    }
  }
  ASSERT_TRUE(reader.Next(&got));
  EXPECT_EQ(got.size(), payload.size());
}

// Many frames in one chunk, then one frame spread across chunks.
TEST(FrameTest, MultipleFramesAndSplits) {
  std::vector<std::byte> stream;
  for (int k = 0; k < 5; ++k) {
    const std::vector<std::byte> payload =
        Bytes({k, k + 1, k + 2, k + 3});
    AppendFrame(payload, &stream);
  }
  FrameReader reader;
  // Feed in uneven chunks of 7.
  for (std::size_t off = 0; off < stream.size(); off += 7) {
    const std::size_t len = std::min<std::size_t>(7, stream.size() - off);
    ASSERT_TRUE(reader.Append({&stream[off], len}).ok());
  }
  std::span<const std::byte> got;
  int frames = 0;
  while (reader.Next(&got)) {
    EXPECT_EQ(got.size(), 4u);
    EXPECT_EQ(static_cast<int>(got[0]), frames);
    ++frames;
  }
  EXPECT_EQ(frames, 5);
  EXPECT_EQ(reader.PendingBytes(), 0u);
}

TEST(FrameTest, EmptyPayloadFrameIsValid) {
  FrameReader reader;
  ASSERT_TRUE(reader.Append(Frame({})).ok());
  std::span<const std::byte> got;
  ASSERT_TRUE(reader.Next(&got));
  EXPECT_EQ(got.size(), 0u);
}

TEST(FrameTest, OversizedLengthPrefixPoisons) {
  // Length prefix just above the cap, delivered up front.
  std::vector<std::byte> evil;
  const uint32_t len = kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i) {
    evil.push_back(static_cast<std::byte>((len >> (8 * i)) & 0xff));
  }
  FrameReader reader;
  EXPECT_FALSE(reader.Append(evil).ok());
  EXPECT_TRUE(reader.Poisoned());
  // Sticky: later appends keep failing, Next never yields.
  EXPECT_FALSE(reader.Append(Frame(Bytes({1}))).ok());
  std::span<const std::byte> got;
  EXPECT_FALSE(reader.Next(&got));
}

TEST(FrameTest, InteriorOversizedPrefixPoisons) {
  // A valid frame followed by a hostile prefix: the first frame drains,
  // then the stream dies.
  std::vector<std::byte> stream = Frame(Bytes({42}));
  const uint32_t len = 0xffffffffu;
  for (int i = 0; i < 4; ++i) {
    stream.push_back(static_cast<std::byte>((len >> (8 * i)) & 0xff));
  }
  FrameReader reader;
  (void)reader.Append(stream);
  std::span<const std::byte> got;
  int drained = 0;
  while (reader.Next(&got)) ++drained;
  EXPECT_EQ(drained, 1);
  EXPECT_TRUE(reader.Poisoned());
}

TEST(FrameTest, TruncatedFinalFrameLeavesPendingBytes) {
  const std::vector<std::byte> framed = Frame(Bytes({1, 2, 3, 4}));
  FrameReader reader;
  ASSERT_TRUE(
      reader.Append({framed.data(), framed.size() - 2}).ok());
  std::span<const std::byte> got;
  EXPECT_FALSE(reader.Next(&got));
  EXPECT_GT(reader.PendingBytes(), 0u);  // what EOF detection keys on
}

// ------------------------------------------------------------ protocol --

WireRequest SampleRequest() {
  WireRequest req;
  req.type = MessageType::kQuery;
  req.method = WireMethod::kScsExpand;
  req.lower_side = true;
  req.q = 12345;
  req.alpha = 3;
  req.beta = 7;
  req.deadline_ms = 250;
  return req;
}

TEST(ProtocolTest, RequestRoundTrip) {
  const WireRequest req = SampleRequest();
  std::vector<std::byte> payload;
  EncodeRequest(req, &payload);
  ASSERT_EQ(payload.size(), kRequestWireBytes);
  WireRequest got;
  ASSERT_TRUE(DecodeRequest(payload, &got).ok());
  EXPECT_EQ(got.type, req.type);
  EXPECT_EQ(got.method, req.method);
  EXPECT_EQ(got.lower_side, req.lower_side);
  EXPECT_EQ(got.q, req.q);
  EXPECT_EQ(got.alpha, req.alpha);
  EXPECT_EQ(got.beta, req.beta);
  EXPECT_EQ(got.deadline_ms, req.deadline_ms);
}

TEST(ProtocolTest, ResponseRoundTrip) {
  WireResponse resp;
  resp.status = WireStatus::kOk;
  resp.type = MessageType::kQuery;
  resp.kernel = 2;
  resp.found = true;
  resp.memo_hit = true;
  resp.num_edges = 777;
  resp.result_edges = 42;
  resp.significance = 96.0625;
  resp.epoch = 0x0102030405060708ull;
  std::vector<std::byte> payload;
  EncodeResponse(resp, &payload);
  ASSERT_EQ(payload.size(), kResponseWireBytes);
  WireResponse got;
  ASSERT_TRUE(DecodeResponse(payload, &got).ok());
  EXPECT_EQ(got.status, resp.status);
  EXPECT_EQ(got.kernel, resp.kernel);
  EXPECT_TRUE(got.found);
  EXPECT_TRUE(got.memo_hit);
  EXPECT_EQ(got.num_edges, resp.num_edges);
  EXPECT_EQ(got.result_edges, resp.result_edges);
  EXPECT_EQ(got.significance, resp.significance);  // exact IEEE bits
  EXPECT_EQ(got.epoch, resp.epoch);
}

TEST(ProtocolTest, RejectsEveryMalformedRequest) {
  std::vector<std::byte> good;
  EncodeRequest(SampleRequest(), &good);
  WireRequest out;

  // Wrong sizes.
  EXPECT_FALSE(DecodeRequest({good.data(), 0}, &out).ok());
  EXPECT_FALSE(DecodeRequest({good.data(), good.size() - 1}, &out).ok());
  std::vector<std::byte> big = good;
  big.push_back(std::byte{0});
  EXPECT_FALSE(DecodeRequest(big, &out).ok());

  // Single-field corruptions.
  auto corrupt = [&](std::size_t off, uint8_t value) {
    std::vector<std::byte> bad = good;
    bad[off] = static_cast<std::byte>(value);
    return DecodeRequest(bad, &out);
  };
  EXPECT_FALSE(corrupt(0, 0x00).ok());                 // magic lo
  EXPECT_FALSE(corrupt(1, 0x00).ok());                 // magic hi
  EXPECT_FALSE(corrupt(2, kWireVersion + 1).ok());     // version
  EXPECT_FALSE(corrupt(3, 0).ok());                    // type 0
  EXPECT_FALSE(corrupt(3, 99).ok());                   // type garbage
  EXPECT_FALSE(corrupt(4, kNumWireMethods).ok());      // method range
  EXPECT_FALSE(corrupt(5, 2).ok());                    // side byte
  EXPECT_FALSE(corrupt(6, 1).ok());                    // reserved
  EXPECT_FALSE(corrupt(7, 0x80).ok());                 // reserved

  // alpha = 0 and beta = 0 are invalid for queries...
  WireRequest zero = SampleRequest();
  zero.alpha = 0;
  std::vector<std::byte> payload;
  EncodeRequest(zero, &payload);
  EXPECT_FALSE(DecodeRequest(payload, &out).ok());
  zero = SampleRequest();
  zero.beta = 0;
  payload.clear();
  EncodeRequest(zero, &payload);
  EXPECT_FALSE(DecodeRequest(payload, &out).ok());
  // ...but fine for pings, which carry no parameters.
  WireRequest ping;
  ping.type = MessageType::kPing;
  ping.alpha = 0;
  ping.beta = 0;
  payload.clear();
  EncodeRequest(ping, &payload);
  EXPECT_TRUE(DecodeRequest(payload, &out).ok());
  EXPECT_EQ(out.type, MessageType::kPing);
}

TEST(ProtocolTest, RejectsMalformedResponse) {
  WireResponse resp;
  resp.found = true;
  std::vector<std::byte> good;
  EncodeResponse(resp, &good);
  WireResponse out;
  ASSERT_TRUE(DecodeResponse(good, &out).ok());

  EXPECT_FALSE(DecodeResponse({good.data(), good.size() - 1}, &out).ok());
  auto corrupt = [&](std::size_t off, uint8_t value) {
    std::vector<std::byte> bad = good;
    bad[off] = static_cast<std::byte>(value);
    return DecodeResponse(bad, &out);
  };
  EXPECT_FALSE(corrupt(0, 0x42).ok());   // magic
  EXPECT_FALSE(corrupt(2, 9).ok());      // version
  EXPECT_FALSE(corrupt(3, 200).ok());    // status range
  EXPECT_FALSE(corrupt(4, 0).ok());      // type
  EXPECT_FALSE(corrupt(6, 2).ok());  // found flag
  EXPECT_FALSE(corrupt(7, 7).ok());  // memo flag
  // Bytes 24-31 carry the epoch now: any value decodes.
  EXPECT_TRUE(corrupt(24, 1).ok());
  EXPECT_EQ(out.epoch, 1u);
  EXPECT_TRUE(corrupt(31, 0xff).ok());
  EXPECT_EQ(out.epoch, 0xff00000000000000ull);
}

// -------------------------------------------------------------- health --

WireHealth SampleHealth() {
  WireHealth h;
  h.state = HealthState::kDegraded;
  h.queue_depth = 1234;
  h.inflight = 7;
  h.connections = 12;
  h.slow_client_dropped = 3;
  h.epoch = 0x1112131415161718ull;
  h.memo_hits = 99999;
  h.requests = 0xfedcba9876543210ull;
  return h;
}

TEST(ProtocolTest, HealthRequestIsValidWithoutParameters) {
  // Like kPing, a kHealth request carries no query parameters.
  WireRequest req;
  req.type = MessageType::kHealth;
  req.alpha = 0;
  req.beta = 0;
  std::vector<std::byte> payload;
  EncodeRequest(req, &payload);
  WireRequest out;
  ASSERT_TRUE(DecodeRequest(payload, &out).ok());
  EXPECT_EQ(out.type, MessageType::kHealth);
}

TEST(ProtocolTest, HealthResponseRoundTrip) {
  const WireHealth h = SampleHealth();
  std::vector<std::byte> payload;
  EncodeHealthResponse(h, &payload);
  ASSERT_EQ(payload.size(), kHealthWireBytes);
  WireHealth got;
  ASSERT_TRUE(DecodeHealthResponse(payload, &got).ok());
  EXPECT_EQ(got.state, h.state);
  EXPECT_EQ(got.queue_depth, h.queue_depth);
  EXPECT_EQ(got.inflight, h.inflight);
  EXPECT_EQ(got.connections, h.connections);
  EXPECT_EQ(got.slow_client_dropped, h.slow_client_dropped);
  EXPECT_EQ(got.epoch, h.epoch);
  EXPECT_EQ(got.memo_hits, h.memo_hits);
  EXPECT_EQ(got.requests, h.requests);

  // Every state name resolves (the CLI prints them).
  EXPECT_STREQ(HealthStateName(HealthState::kLive), "live");
  EXPECT_STREQ(HealthStateName(HealthState::kDegraded), "degraded");
  EXPECT_STREQ(HealthStateName(HealthState::kDraining), "draining");
}

TEST(ProtocolTest, RejectsMalformedHealthResponse) {
  std::vector<std::byte> good;
  EncodeHealthResponse(SampleHealth(), &good);
  WireHealth out;
  ASSERT_TRUE(DecodeHealthResponse(good, &out).ok());

  // Wrong sizes — notably the 32-byte regular-response size, so a query
  // response can never be mistaken for a health frame.
  EXPECT_FALSE(DecodeHealthResponse({good.data(), 0}, &out).ok());
  EXPECT_FALSE(
      DecodeHealthResponse({good.data(), kResponseWireBytes}, &out).ok());
  EXPECT_FALSE(
      DecodeHealthResponse({good.data(), good.size() - 1}, &out).ok());
  std::vector<std::byte> big = good;
  big.push_back(std::byte{0});
  EXPECT_FALSE(DecodeHealthResponse(big, &out).ok());

  auto corrupt = [&](std::size_t off, uint8_t value) {
    std::vector<std::byte> bad = good;
    bad[off] = static_cast<std::byte>(value);
    return DecodeHealthResponse(bad, &out);
  };
  EXPECT_FALSE(corrupt(0, 0x42).ok());              // magic
  EXPECT_FALSE(corrupt(2, kWireVersion + 1).ok());  // version
  EXPECT_FALSE(corrupt(3, 1).ok());                 // status must be kOk
  EXPECT_FALSE(corrupt(4, 1).ok());                 // type must be kHealth
  EXPECT_FALSE(corrupt(5, 3).ok());                 // state range
  EXPECT_FALSE(corrupt(6, 1).ok());                 // reserved
  EXPECT_FALSE(corrupt(7, 0x80).ok());              // reserved
  // Counter bytes are unconstrained: any value decodes.
  EXPECT_TRUE(corrupt(8, 0xff).ok());
  EXPECT_TRUE(corrupt(47, 0xff).ok());
}

// A query/ping response decoder must not accept health frames and vice
// versa — the type byte and the size both disagree.
TEST(ProtocolTest, HealthAndResponseFramesDoNotCrossDecode) {
  std::vector<std::byte> health;
  EncodeHealthResponse(SampleHealth(), &health);
  WireResponse resp_out;
  EXPECT_FALSE(DecodeResponse(health, &resp_out).ok());

  WireResponse resp;
  std::vector<std::byte> regular;
  EncodeResponse(resp, &regular);
  WireHealth health_out;
  EXPECT_FALSE(DecodeHealthResponse(regular, &health_out).ok());
}

// ------------------------------------------------------------- updates --

WireRequest SampleUpdate(UpdateOp op) {
  WireRequest req;
  req.type = MessageType::kUpdate;
  req.op = op;
  if (op != UpdateOp::kCommit) {
    req.u = 17;
    req.v = 23;
  }
  if (op == UpdateOp::kInsertEdge || op == UpdateOp::kReweightEdge) {
    req.weight = 2.5;
  }
  return req;
}

TEST(ProtocolTest, UpdateRequestRoundTripEveryOp) {
  for (uint8_t o = 0; o < kNumUpdateOps; ++o) {
    const UpdateOp op = static_cast<UpdateOp>(o);
    const WireRequest req = SampleUpdate(op);
    std::vector<std::byte> payload;
    EncodeRequest(req, &payload);
    ASSERT_EQ(payload.size(), kRequestWireBytes);
    WireRequest got;
    ASSERT_TRUE(DecodeRequest(payload, &got).ok()) << UpdateOpName(op);
    EXPECT_EQ(got.type, MessageType::kUpdate);
    EXPECT_EQ(got.op, op);
    EXPECT_EQ(got.u, req.u);
    EXPECT_EQ(got.v, req.v);
    EXPECT_EQ(got.weight, req.weight);  // exact IEEE bits
  }
}

TEST(ProtocolTest, RejectsEveryMalformedUpdate) {
  std::vector<std::byte> good;
  EncodeRequest(SampleUpdate(UpdateOp::kInsertEdge), &good);
  WireRequest out;
  ASSERT_TRUE(DecodeRequest(good, &out).ok());
  auto corrupt = [&](std::size_t off, uint8_t value) {
    std::vector<std::byte> bad = good;
    bad[off] = static_cast<std::byte>(value);
    return DecodeRequest(bad, &out);
  };
  EXPECT_FALSE(corrupt(4, kNumUpdateOps).ok());  // op range
  EXPECT_FALSE(corrupt(4, 0xff).ok());
  EXPECT_FALSE(corrupt(5, 1).ok());  // reserved byte
  EXPECT_FALSE(corrupt(6, 1).ok());  // reserved u16
  EXPECT_FALSE(corrupt(7, 0x80).ok());

  // Non-finite weights never reach the writer.
  WireRequest nan = SampleUpdate(UpdateOp::kInsertEdge);
  nan.weight = std::numeric_limits<double>::quiet_NaN();
  std::vector<std::byte> payload;
  EncodeRequest(nan, &payload);
  EXPECT_FALSE(DecodeRequest(payload, &out).ok());
  nan.weight = std::numeric_limits<double>::infinity();
  payload.clear();
  EncodeRequest(nan, &payload);
  EXPECT_FALSE(DecodeRequest(payload, &out).ok());

  // Remove/commit must encode weight bits as zero.
  WireRequest bad_remove = SampleUpdate(UpdateOp::kRemoveEdge);
  bad_remove.weight = 1.0;
  payload.clear();
  EncodeRequest(bad_remove, &payload);
  EXPECT_FALSE(DecodeRequest(payload, &out).ok());

  // Commit carries no vertices.
  WireRequest bad_commit = SampleUpdate(UpdateOp::kCommit);
  bad_commit.u = 1;
  payload.clear();
  EncodeRequest(bad_commit, &payload);
  EXPECT_FALSE(DecodeRequest(payload, &out).ok());

  // A well-formed commit decodes.
  payload.clear();
  EncodeRequest(SampleUpdate(UpdateOp::kCommit), &payload);
  EXPECT_TRUE(DecodeRequest(payload, &out).ok());
  EXPECT_EQ(out.op, UpdateOp::kCommit);
}

TEST(ProtocolTest, MethodNamesRoundTrip) {
  for (uint8_t m = 0; m < kNumWireMethods; ++m) {
    const WireMethod method = static_cast<WireMethod>(m);
    WireMethod parsed;
    ASSERT_TRUE(ParseWireMethod(WireMethodName(method), &parsed));
    EXPECT_EQ(parsed, method);
  }
  WireMethod parsed;
  EXPECT_FALSE(ParseWireMethod("scs", &parsed));
  EXPECT_FALSE(ParseWireMethod("", &parsed));
}

// ---------------------------------------------------------------- memo --

TEST(MemoTest, CrossVertexSharingMatchesFreshQueries) {
  const BipartiteGraph g = RandomWeightedGraph(40, 40, 400, 31);
  const DeltaIndex delta = DeltaIndex::Build(g);
  QueryMemo memo;

  // Seed the memo with one representative query per (α,β).
  for (uint32_t ab = 1; ab <= 3; ++ab) {
    for (VertexId q = 0; q < g.NumVertices(); ++q) {
      MemoValue value;
      if (memo.Lookup(WireMethod::kDelta, ab, ab, q, &value)) {
        // A hit must agree exactly with a fresh query.
        const Subgraph fresh = delta.QueryCommunity(q, ab, ab);
        ASSERT_EQ(value.num_edges, fresh.edges.size()) << "q=" << q;
        ASSERT_EQ(value.found, !fresh.edges.empty());
        continue;
      }
      const Subgraph c = delta.QueryCommunity(q, ab, ab);
      MemoValue fresh_value;
      fresh_value.found = !c.edges.empty();
      fresh_value.num_edges = static_cast<uint32_t>(c.edges.size());
      memo.Insert(WireMethod::kDelta, ab, ab, q, g, c, fresh_value);
    }
  }
  // With whole-component registration, a second sweep over every vertex
  // must be all hits.
  uint64_t misses_before = memo.misses();
  for (uint32_t ab = 1; ab <= 3; ++ab) {
    for (VertexId q = 0; q < g.NumVertices(); ++q) {
      MemoValue value;
      if (!memo.Lookup(WireMethod::kDelta, ab, ab, q, &value)) {
        // Only vertices with empty communities may miss sharing — they
        // were registered individually, so even those hit.
        ADD_FAILURE() << "unexpected miss at q=" << q << " ab=" << ab;
      }
    }
  }
  EXPECT_EQ(memo.misses(), misses_before);
}

TEST(MemoTest, ScsEntriesAreExactKeyOnly) {
  const BipartiteGraph g = RandomWeightedGraph(20, 20, 150, 33);
  const DeltaIndex delta = DeltaIndex::Build(g);
  QueryMemo memo;
  // Find a nonempty community to exercise the sharing path.
  for (VertexId q = 0; q < g.NumVertices(); ++q) {
    const Subgraph c = delta.QueryCommunity(q, 2, 2);
    if (c.edges.empty()) continue;
    MemoValue value;
    value.found = true;
    value.num_edges = static_cast<uint32_t>(c.edges.size());
    memo.Insert(WireMethod::kScsAuto, 2, 2, q, g, c, value);
    MemoValue out;
    // Exact repeat hits.
    EXPECT_TRUE(memo.Lookup(WireMethod::kScsAuto, 2, 2, q, &out));
    // Another vertex of the same community must NOT hit: R depends on q.
    for (const EdgeId e : c.edges) {
      const Edge& ed = g.GetEdge(e);
      const VertexId other = ed.u != q ? ed.u : ed.v;
      if (other == q) continue;
      EXPECT_FALSE(memo.Lookup(WireMethod::kScsAuto, 2, 2, other, &out));
      break;
    }
    // And the retrieval method namespace is untouched.
    EXPECT_FALSE(memo.Lookup(WireMethod::kDelta, 2, 2, q, &out));
    return;
  }
  GTEST_SKIP() << "no nonempty (2,2)-community in the sample graph";
}

TEST(MemoTest, InvalidateDropsEverythingAndBumpsEpoch) {
  const BipartiteGraph g = RandomWeightedGraph(10, 10, 60, 35);
  QueryMemo memo;
  Subgraph empty;
  MemoValue value;
  value.found = false;
  memo.Insert(WireMethod::kDelta, 1, 1, 3, g, empty, value);
  MemoValue out;
  ASSERT_TRUE(memo.Lookup(WireMethod::kDelta, 1, 1, 3, &out));
  const uint64_t epoch = memo.epoch();
  memo.Invalidate();
  EXPECT_EQ(memo.epoch(), epoch + 1);
  EXPECT_FALSE(memo.Lookup(WireMethod::kDelta, 1, 1, 3, &out));
}

TEST(MemoTest, FlushOnPressureKeepsWorking) {
  const BipartiteGraph g = RandomWeightedGraph(10, 10, 60, 37);
  QueryMemo memo(/*max_entries=*/4);
  Subgraph empty;
  MemoValue value;
  for (uint32_t i = 0; i < 64; ++i) {
    memo.Insert(WireMethod::kDelta, i + 1, 1, 0, g, empty, value);
  }
  // The last insert always lands (flush happens before inserting).
  MemoValue out;
  EXPECT_TRUE(memo.Lookup(WireMethod::kDelta, 64, 1, 0, &out));
}

// Epoch alignment: a lookup or insert carrying a stale pinned epoch is
// ignored — the retired-worker poisoning guard.
TEST(MemoTest, EpochGatingBlocksStaleReadersAndWriters) {
  const BipartiteGraph g = RandomWeightedGraph(10, 10, 60, 39);
  QueryMemo memo;
  memo.SetEpoch(5);
  Subgraph empty;
  MemoValue value;
  value.found = false;
  MemoValue out;

  memo.Insert(WireMethod::kDelta, 1, 1, 3, g, empty, value, /*epoch=*/4);
  EXPECT_FALSE(memo.Lookup(WireMethod::kDelta, 1, 1, 3, &out, 5))
      << "stale-epoch insert must be dropped";

  memo.Insert(WireMethod::kDelta, 1, 1, 3, g, empty, value, /*epoch=*/5);
  EXPECT_TRUE(memo.Lookup(WireMethod::kDelta, 1, 1, 3, &out, 5));
  EXPECT_FALSE(memo.Lookup(WireMethod::kDelta, 1, 1, 3, &out, 4))
      << "stale-epoch lookup must miss";
}

// Selective invalidation: a topology publish drops exactly the entries
// with a registered member in the touched set (plus every SCS entry);
// untouched components stay warm across the epoch.
TEST(MemoTest, AdvanceEpochKeepsUntouchedComponentsWarm) {
  // Two disjoint communities: upper {0,1} x lower {0,1} and
  // upper {2,3} x lower {2,3} (unified lower ids offset by NumUpper = 4).
  std::vector<std::tuple<uint32_t, uint32_t, Weight>> triples;
  for (uint32_t u : {0u, 1u}) {
    for (uint32_t v : {0u, 1u}) triples.emplace_back(u, v, 1.0);
  }
  for (uint32_t u : {2u, 3u}) {
    for (uint32_t v : {2u, 3u}) triples.emplace_back(u, v, 1.0);
  }
  const BipartiteGraph g = ::abcs::testing::MakeGraph(triples);
  const DeltaIndex delta = DeltaIndex::Build(g);
  QueryMemo memo;
  memo.SetEpoch(1);

  auto insert_community = [&](VertexId q, uint64_t epoch) {
    const Subgraph c = delta.QueryCommunity(q, 2, 2);
    ASSERT_FALSE(c.edges.empty());
    MemoValue value;
    value.found = true;
    value.num_edges = static_cast<uint32_t>(c.edges.size());
    memo.Insert(WireMethod::kDelta, 2, 2, q, g, c, value, epoch);
  };
  insert_community(0, 1);  // first component
  insert_community(2, 1);  // second component
  MemoValue scs;
  scs.found = true;
  memo.Insert(WireMethod::kScsAuto, 2, 2, 0, g,
              delta.QueryCommunity(0, 2, 2), scs, 1);

  // Publish epoch 2 touching only the first component (upper 0).
  std::vector<uint8_t> touched(g.NumVertices(), 0);
  touched[0] = 1;
  memo.AdvanceEpoch(2, /*topology_changed=*/true, /*flush_all=*/false,
                    touched);

  MemoValue out;
  EXPECT_FALSE(memo.Lookup(WireMethod::kDelta, 2, 2, 0, &out, 2))
      << "touched component must be dropped";
  EXPECT_FALSE(memo.Lookup(WireMethod::kScsAuto, 2, 2, 0, &out, 2))
      << "SCS entries die on every publish";
  EXPECT_TRUE(memo.Lookup(WireMethod::kDelta, 2, 2, 2, &out, 2))
      << "untouched component must stay warm";
  EXPECT_TRUE(memo.Lookup(WireMethod::kDelta, 2, 2, 3, &out, 2))
      << "sharing of the warm entry survives too";

  // A weights-only publish keeps even previously-touched retrieval
  // entries that were re-inserted, and drops nothing shared.
  insert_community(0, 2);
  memo.AdvanceEpoch(3, /*topology_changed=*/false, /*flush_all=*/false,
                    touched);
  EXPECT_TRUE(memo.Lookup(WireMethod::kDelta, 2, 2, 0, &out, 3));
  EXPECT_TRUE(memo.Lookup(WireMethod::kDelta, 2, 2, 2, &out, 3));

  // flush_all (δ changed) drops everything.
  memo.AdvanceEpoch(4, true, /*flush_all=*/true, touched);
  EXPECT_FALSE(memo.Lookup(WireMethod::kDelta, 2, 2, 2, &out, 4));
}

// ---------------------------------------------------- work stealing ----

// Exactly-once delivery under concurrency: every index in [0, n) is seen
// once across all workers, for several n / worker-count shapes.
TEST(WorkStealingRangesTest, ExactlyOnceUnderConcurrency) {
  for (const unsigned workers : {1u, 2u, 3u, 8u}) {
    for (const std::size_t n : {0ul, 1ul, 7ul, 64ul, 10000ul}) {
      WorkStealingRanges ranges(n, workers);
      std::vector<std::atomic<uint32_t>> seen(n);
      for (auto& s : seen) s.store(0);
      std::vector<std::thread> pool;
      for (unsigned t = 0; t < workers; ++t) {
        pool.emplace_back([&, t] {
          for (std::size_t i = ranges.Next(t);
               i != WorkStealingRanges::kDone; i = ranges.Next(t)) {
            seen[i].fetch_add(1);
          }
        });
      }
      for (std::thread& th : pool) th.join();
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(seen[i].load(), 1u)
            << "index " << i << " n=" << n << " workers=" << workers;
      }
    }
  }
}

// Forced stealing: worker 0 never calls Next, so its whole chunk must be
// stolen by the others.
TEST(WorkStealingRangesTest, IdleWorkerChunkGetsStolen) {
  const std::size_t n = 1000;
  const unsigned workers = 4;
  WorkStealingRanges ranges(n, workers);
  std::vector<std::atomic<uint32_t>> seen(n);
  for (auto& s : seen) s.store(0);
  std::vector<std::thread> pool;
  for (unsigned t = 1; t < workers; ++t) {  // worker 0 sits out
    pool.emplace_back([&, t] {
      for (std::size_t i = ranges.Next(t); i != WorkStealingRanges::kDone;
           i = ranges.Next(t)) {
        seen[i].fetch_add(1);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(seen[i].load(), 1u) << "index " << i;
  }
}

// ----------------------------------------------------------- scheduler --

TEST(TaskSchedulerTest, DrainsEverythingAfterClose) {
  TaskScheduler<int> sched(3, 1000, StealMode::kWorkStealing);
  std::atomic<int> sum{0};
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < 3; ++t) {
    pool.emplace_back([&, t] {
      int task;
      while (sched.Pop(t, &task)) sum.fetch_add(task);
    });
  }
  int expect = 0;
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(sched.Push(i, static_cast<unsigned>(i)));
    expect += i;
  }
  sched.Close();
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(sum.load(), expect);  // drain guarantee: nothing dropped
  EXPECT_FALSE(sched.Push(1, 0));  // closed
}

TEST(TaskSchedulerTest, BoundedQueueRejectsWhenFull) {
  TaskScheduler<int> sched(2, 3, StealMode::kWorkStealing);
  EXPECT_TRUE(sched.Push(1, 0));
  EXPECT_TRUE(sched.Push(2, 0));
  EXPECT_TRUE(sched.Push(3, 1));
  EXPECT_FALSE(sched.Push(4, 1));  // admission control: kOverloaded
  EXPECT_EQ(sched.Pending(), 3u);
}

// In round-robin mode a worker never sees another worker's queue; in
// work-stealing mode it drains them.
TEST(TaskSchedulerTest, StealModeControlsCrossQueueVisibility) {
  {
    TaskScheduler<int> rr(2, 100, StealMode::kRoundRobin);
    rr.Push(7, 0);  // worker 0's queue
    rr.Close();
    int task;
    EXPECT_FALSE(rr.Pop(1, &task));  // worker 1 drains nothing
  }
  {
    TaskScheduler<int> ws(2, 100, StealMode::kWorkStealing);
    ws.Push(7, 0);
    ws.Close();
    int task;
    EXPECT_TRUE(ws.Pop(1, &task));  // stolen
    EXPECT_EQ(task, 7);
  }
}

}  // namespace
}  // namespace abcs::serve
