// Tests for the zero-allocation query engine: the QueryScratch arena (epoch
// stamping, wraparound, capacity reuse) and the batched multithreaded
// QueryEngine driver over the three retrieval paths.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

#include "common/rng.h"
#include "core/bicore_index.h"
#include "core/cancel.h"
#include "core/delta_index.h"
#include "core/online_query.h"
#include "core/query_engine.h"
#include "core/query_scratch.h"
#include "core/scs_auto.h"
#include "core/subgraph.h"
#include "test_util.h"

// --------------------------------------------------- counting allocator --
// Global operator new/delete with an allocation counter, so the
// zero-allocation guarantee is asserted directly rather than inferred from
// capacity snapshots alone.

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace abcs {
namespace {

using ::abcs::testing::RandomWeightedGraph;

// Mixed query load: random vertices, α/β spanning below, at and above the
// graph's interesting range (empty and non-empty communities both occur).
std::vector<QueryRequest> MixedRequests(const BipartiteGraph& g,
                                        std::size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<QueryRequest> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    requests.push_back(QueryRequest{
        static_cast<VertexId>(rng.NextBounded(g.NumVertices())),
        1 + static_cast<uint32_t>(rng.NextBounded(9)),
        1 + static_cast<uint32_t>(rng.NextBounded(9))});
  }
  return requests;
}

// (a) Reusing one scratch across 1000 mixed queries — interleaved over all
// three paths so stale state from one path would poison the next — is
// bit-identical to the fresh-allocation API.
TEST(QueryEngineTest, ScratchReuseBitIdenticalToFreshAllocation) {
  const BipartiteGraph g = RandomWeightedGraph(50, 50, 500, 11);
  const DeltaIndex delta = DeltaIndex::Build(g);
  const BicoreIndex bicore = BicoreIndex::Build(g);
  const std::vector<QueryRequest> requests = MixedRequests(g, 1000, 42);

  QueryScratch scratch;
  Subgraph out;
  for (const QueryRequest& r : requests) {
    delta.QueryCommunity(r.q, r.alpha, r.beta, scratch, &out);
    ASSERT_EQ(out.edges, delta.QueryCommunity(r.q, r.alpha, r.beta).edges);
    bicore.QueryCommunity(r.q, r.alpha, r.beta, scratch, &out);
    ASSERT_EQ(out.edges, bicore.QueryCommunity(r.q, r.alpha, r.beta).edges);
    QueryCommunityOnline(g, r.q, r.alpha, r.beta, scratch, &out);
    ASSERT_EQ(out.edges,
              QueryCommunityOnline(g, r.q, r.alpha, r.beta).edges);
  }
}

// (b) Epoch wraparound: stamps survive the uint32 epoch boundary.
TEST(QueryScratchTest, EpochWraparoundResetsStamps) {
  QueryScratch s;
  s.BeginQuery(8);
  s.EnsureInCore(8);
  EXPECT_TRUE(s.TryVisit(2));
  EXPECT_FALSE(s.TryVisit(2));
  s.MarkInCore(5);
  EXPECT_TRUE(s.InCore(5));

  s.SetEpochForTest(std::numeric_limits<uint32_t>::max());
  s.BeginQuery(8);
  s.EnsureInCore(8);
  EXPECT_EQ(s.epoch(), 1u);  // wrapped and restarted
  EXPECT_FALSE(s.Visited(2));
  EXPECT_FALSE(s.InCore(5));
  EXPECT_TRUE(s.TryVisit(2));
}

TEST(QueryScratchTest, QueriesAcrossWraparoundMatchFresh) {
  const BipartiteGraph g = RandomWeightedGraph(40, 40, 350, 13);
  const DeltaIndex delta = DeltaIndex::Build(g);
  const std::vector<QueryRequest> requests = MixedRequests(g, 16, 7);

  QueryScratch scratch;
  Subgraph out;
  // Dirty the stamps, then jump the epoch next to the boundary so the
  // request stream straddles the wraparound reset.
  delta.QueryCommunity(requests[0].q, 2, 2, scratch, &out);
  scratch.SetEpochForTest(std::numeric_limits<uint32_t>::max() - 4);
  for (const QueryRequest& r : requests) {
    delta.QueryCommunity(r.q, r.alpha, r.beta, scratch, &out);
    ASSERT_EQ(out.edges, delta.QueryCommunity(r.q, r.alpha, r.beta).edges);
  }
  EXPECT_LT(scratch.epoch(), 32u);  // the wrap happened
}

// (c) Batched multithreaded results equal serial results, per method.
TEST(QueryEngineTest, MultithreadedBatchEqualsSerial) {
  const BipartiteGraph g = RandomWeightedGraph(80, 80, 900, 17);
  const DeltaIndex delta = DeltaIndex::Build(g);
  const BicoreIndex bicore = BicoreIndex::Build(g);
  const std::vector<QueryRequest> requests = MixedRequests(g, 300, 99);

  for (const QueryMethod method :
       {QueryMethod::kDelta, QueryMethod::kBicore, QueryMethod::kOnline}) {
    const QueryEngine engine(g, method, &delta, &bicore);
    BatchOptions serial;
    serial.num_threads = 1;
    serial.keep_communities = true;
    BatchOptions parallel = serial;
    parallel.num_threads = 4;
    const BatchResult r1 = engine.RunBatch(requests, serial);
    const BatchResult r4 = engine.RunBatch(requests, parallel);
    ASSERT_EQ(r1.outcomes.size(), r4.outcomes.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      ASSERT_EQ(r1.outcomes[i].num_edges, r4.outcomes[i].num_edges)
          << QueryMethodName(method) << " i=" << i;
      ASSERT_EQ(r1.outcomes[i].touched_arcs, r4.outcomes[i].touched_arcs)
          << QueryMethodName(method) << " i=" << i;
      ASSERT_EQ(r1.communities[i].edges, r4.communities[i].edges)
          << QueryMethodName(method) << " i=" << i;
    }
    EXPECT_EQ(r1.stats.touched_arcs, r4.stats.touched_arcs);
    EXPECT_EQ(r1.stats.total_edges, r4.stats.total_edges);
  }
}

// The acceptance criterion: after warm-up, steady-state queries through a
// scratch perform zero heap allocations on every path — asserted with the
// counting global allocator AND a scratch-capacity snapshot.
TEST(QueryEngineTest, ZeroAllocationsSteadyState) {
  const BipartiteGraph g = RandomWeightedGraph(60, 60, 600, 21);
  const DeltaIndex delta = DeltaIndex::Build(g);
  const BicoreIndex bicore = BicoreIndex::Build(g);
  const std::vector<QueryRequest> requests = MixedRequests(g, 200, 5);

  for (const QueryMethod method :
       {QueryMethod::kDelta, QueryMethod::kBicore, QueryMethod::kOnline}) {
    const QueryEngine engine(g, method, &delta, &bicore);
    QueryScratch scratch;
    Subgraph out;
    for (const QueryRequest& r : requests) {  // warm-up pass
      engine.Query(r, scratch, &out);
    }
    const std::size_t capacity = scratch.CapacityBytes();
    const std::size_t out_capacity = out.edges.capacity();
    const uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed);
    for (const QueryRequest& r : requests) {  // steady state
      engine.Query(r, scratch, &out);
    }
    EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), allocs)
        << "method=" << QueryMethodName(method);
    EXPECT_EQ(scratch.CapacityBytes(), capacity)
        << "method=" << QueryMethodName(method);
    EXPECT_EQ(out.edges.capacity(), out_capacity)
        << "method=" << QueryMethodName(method);
  }
}

// Satellite: a bicore query rejected because q is outside the core returns
// before materialising any core state (no arcs touched), and still agrees
// with the fresh API on emptiness.
TEST(QueryEngineTest, BicoreRejectionIsEarlyOut) {
  const BipartiteGraph g = testing::PaperFigure2Graph();
  const BicoreIndex bicore = BicoreIndex::Build(g);
  QueryScratch scratch;
  Subgraph out;
  QueryStats stats;
  // Chain vertices are not in any (2,2)-core.
  bicore.QueryCommunity(10, 2, 2, scratch, &out, &stats);
  EXPECT_TRUE(out.edges.empty());
  EXPECT_EQ(stats.touched_arcs, 0u);
  // Accepted queries still count their work.
  bicore.QueryCommunity(2, 2, 2, scratch, &out, &stats);
  EXPECT_FALSE(out.edges.empty());
  EXPECT_GT(stats.touched_arcs, 0u);
}

// Work-stealing dispatch must be invisible in the results: for every
// method and thread count, outcomes (including per-query work counters
// and retained communities) are bit-identical to the legacy round-robin
// stripe — slot i is written by whichever worker executes i, exactly
// once, regardless of who stole what.
TEST(QueryEngineTest, WorkStealingBatchBitIdenticalToRoundRobin) {
  const BipartiteGraph g = RandomWeightedGraph(80, 80, 900, 23);
  const DeltaIndex delta = DeltaIndex::Build(g);
  const BicoreIndex bicore = BicoreIndex::Build(g);
  const std::vector<QueryRequest> requests = MixedRequests(g, 257, 71);

  for (const QueryMethod method :
       {QueryMethod::kDelta, QueryMethod::kBicore, QueryMethod::kOnline}) {
    const QueryEngine engine(g, method, &delta, &bicore);
    for (const unsigned threads : {2u, 3u, 4u, 8u}) {
      BatchOptions rr;
      rr.num_threads = threads;
      rr.keep_communities = true;
      rr.dispatch = Dispatch::kRoundRobin;
      BatchOptions ws = rr;
      ws.dispatch = Dispatch::kWorkStealing;
      const BatchResult a = engine.RunBatch(requests, rr);
      const BatchResult b = engine.RunBatch(requests, ws);
      ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
      for (std::size_t i = 0; i < requests.size(); ++i) {
        ASSERT_EQ(a.outcomes[i].num_edges, b.outcomes[i].num_edges)
            << QueryMethodName(method) << " t=" << threads << " i=" << i;
        ASSERT_EQ(a.outcomes[i].touched_arcs, b.outcomes[i].touched_arcs)
            << QueryMethodName(method) << " t=" << threads << " i=" << i;
        ASSERT_EQ(a.communities[i].edges, b.communities[i].edges)
            << QueryMethodName(method) << " t=" << threads << " i=" << i;
      }
      EXPECT_EQ(a.stats.touched_arcs, b.stats.touched_arcs);
      EXPECT_EQ(a.stats.total_edges, b.stats.total_edges);
    }
  }
}

TEST(QueryEngineTest, WorkStealingScsBatchBitIdenticalToRoundRobin) {
  const BipartiteGraph g = RandomWeightedGraph(60, 60, 700, 29);
  const DeltaIndex delta = DeltaIndex::Build(g);
  const std::vector<QueryRequest> requests = MixedRequests(g, 101, 77);

  const QueryEngine engine(g, QueryMethod::kDelta, &delta);
  for (const unsigned threads : {2u, 4u}) {
    ScsBatchOptions rr;
    rr.num_threads = threads;
    rr.keep_communities = true;
    rr.dispatch = Dispatch::kRoundRobin;
    ScsBatchOptions ws = rr;
    ws.dispatch = Dispatch::kWorkStealing;
    const ScsBatchResult a = engine.RunScsBatch(requests, rr);
    const ScsBatchResult b = engine.RunScsBatch(requests, ws);
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      ASSERT_EQ(a.outcomes[i].found, b.outcomes[i].found) << i;
      ASSERT_EQ(a.outcomes[i].community_edges, b.outcomes[i].community_edges)
          << i;
      ASSERT_EQ(a.outcomes[i].result_edges, b.outcomes[i].result_edges) << i;
      ASSERT_EQ(a.outcomes[i].significance, b.outcomes[i].significance) << i;
      ASSERT_EQ(a.outcomes[i].algo_used, b.outcomes[i].algo_used) << i;
      ASSERT_EQ(a.communities[i].edges, b.communities[i].edges) << i;
    }
    EXPECT_EQ(a.stats.num_found, b.stats.num_found);
    EXPECT_EQ(a.stats.total_result_edges, b.stats.total_result_edges);
  }
}

// ---------------------------------------------------------- cancellation --

// Picks the request whose fresh-API execution touches the most arcs — a
// pre-cancelled token is only guaranteed to fire once the kernel crosses
// CancelToken::kCheckInterval ops, so the test needs a genuinely big query.
QueryRequest HeaviestRequest(const QueryEngine& engine,
                             const std::vector<QueryRequest>& requests,
                             uint64_t min_arcs) {
  QueryScratch scratch;
  Subgraph out;
  QueryRequest best = requests.front();
  uint64_t best_arcs = 0;
  for (const QueryRequest& r : requests) {
    QueryStats stats;
    engine.Query(r, scratch, &out, &stats);
    if (stats.touched_arcs > best_arcs) {
      best_arcs = stats.touched_arcs;
      best = r;
    }
  }
  EXPECT_GE(best_arcs, min_arcs)
      << "test graph too small to cross the cancel check interval";
  return best;
}

// A query cancelled mid-kernel answers empty, and the same scratch then
// serves the rerun bit-identically to a fresh scratch — cancellation
// leaves no residue (the incomplete-undo failure mode).
TEST(QueryEngineTest, CancelledQueryAnswersEmptyAndScratchStaysReusable) {
  const BipartiteGraph g = RandomWeightedGraph(80, 80, 900, 17);
  const DeltaIndex delta = DeltaIndex::Build(g);
  const BicoreIndex bicore = BicoreIndex::Build(g);
  const std::vector<QueryRequest> requests = MixedRequests(g, 64, 3);

  for (const QueryMethod method :
       {QueryMethod::kDelta, QueryMethod::kBicore, QueryMethod::kOnline}) {
    const QueryEngine engine(g, method, &delta, &bicore);
    const QueryRequest heavy =
        HeaviestRequest(engine, requests, 2 * CancelToken::kCheckInterval);
    // Expected through the SAME path: edge order is traversal-dependent,
    // so cross-method comparison would only be set-equal, not bit-equal.
    Subgraph expect;
    {
      QueryScratch fresh;
      engine.Query(heavy, fresh, &expect);
    }

    QueryScratch scratch;
    Subgraph out;
    CancelToken token;
    scratch.set_cancel_token(&token);
    const uint64_t gen = token.Arm(/*deadline_ms=*/0);  // cancel-only
    token.CancelGeneration(gen);
    engine.Query(heavy, scratch, &out);
    EXPECT_TRUE(token.Stopped()) << QueryMethodName(method);
    EXPECT_EQ(token.reason(), CancelToken::StopReason::kCancelled);
    EXPECT_TRUE(out.edges.empty())
        << QueryMethodName(method) << ": cancelled query leaked a partial";
    token.Finish();
    scratch.set_cancel_token(nullptr);

    // Same scratch, rerun without cancellation: bit-identical to fresh.
    engine.Query(heavy, scratch, &out);
    EXPECT_EQ(out.edges, expect.edges) << QueryMethodName(method);

    // A stale cancel of a *finished* generation is a benign no-op.
    scratch.set_cancel_token(&token);
    token.Arm(0);
    token.CancelGeneration(gen);  // names the old generation
    engine.Query(heavy, scratch, &out);
    EXPECT_FALSE(token.Stopped());
    EXPECT_EQ(out.edges, expect.edges) << QueryMethodName(method);
    token.Finish();
    scratch.set_cancel_token(nullptr);
  }
}

// SCS cancel-mid-probe: abandoning a peel/expand/binary probe halfway
// must leave the pooled workspace reusable — the rerun through the same
// workspace equals a fresh-workspace run bit-for-bit.
TEST(QueryEngineTest, ScsCancelMidProbeLeavesWorkspaceReusable) {
  const BipartiteGraph g = RandomWeightedGraph(100, 100, 1600, 29);
  const DeltaIndex delta = DeltaIndex::Build(g);

  // A pre-cancelled run is only *observably* abandoned when the kernel's
  // termination path did not fire inside the same cascade that crossed
  // the check interval (cascades run to completion by design). Scan for a
  // query that demonstrably aborted — fresh run finds a community, the
  // cancelled run through the same kernel does not — and prove the torn
  // workspace then serves a bit-identical rerun.
  for (const ScsAlgo algo :
       {ScsAlgo::kPeel, ScsAlgo::kExpand, ScsAlgo::kBinary, ScsAlgo::kAuto}) {
    QueryScratch scratch;
    ScsWorkspace workspace;
    ScsResult out;
    CancelToken token;
    bool exercised = false;
    for (uint32_t ab = 1; ab <= 3 && !exercised; ++ab) {
      for (VertexId q = 0; q < g.NumVertices() && !exercised; ++q) {
        const Subgraph community = delta.QueryCommunity(q, ab, ab);
        if (community.edges.size() < CancelToken::kCheckInterval) continue;
        const ScsResult fresh = ScsQuery(g, community, q, ab, ab, algo);
        if (!fresh.found) continue;

        scratch.set_cancel_token(&token);
        const uint64_t gen = token.Arm(/*deadline_ms=*/0);
        token.CancelGeneration(gen);
        ScsQueryInto(g, community, q, ab, ab, algo, {}, &out, nullptr,
                     &scratch, &workspace);
        token.Finish();
        scratch.set_cancel_token(nullptr);
        if (out.found) continue;  // completed before observing the cancel
        exercised = true;

        // Rerun through the torn workspace: bit-identical to fresh.
        ScsQueryInto(g, community, q, ab, ab, algo, {}, &out, nullptr,
                     &scratch, &workspace);
        EXPECT_EQ(out.found, fresh.found) << static_cast<int>(algo);
        EXPECT_EQ(out.community.edges, fresh.community.edges)
            << static_cast<int>(algo);
        EXPECT_EQ(out.significance, fresh.significance)
            << static_cast<int>(algo);
      }
    }
    EXPECT_TRUE(exercised)
        << "no query abandoned mid-probe for algo " << static_cast<int>(algo);
  }
}

// Deadline matrix: a 1 ms budget over the whole batch API answers every
// request (empty on overrun, full otherwise), and the engine re-engaged
// without a deadline is bit-identical to a never-deadlined engine — the
// token leaves nothing armed behind.
TEST(QueryEngineTest, DeadlineMatrixAnswersEverythingAndReengagesClean) {
  const BipartiteGraph g = RandomWeightedGraph(80, 80, 900, 31);
  const DeltaIndex delta = DeltaIndex::Build(g);
  const BicoreIndex bicore = BicoreIndex::Build(g);
  const std::vector<QueryRequest> requests = MixedRequests(g, 200, 55);

  for (const QueryMethod method :
       {QueryMethod::kDelta, QueryMethod::kBicore, QueryMethod::kOnline}) {
    const QueryEngine engine(g, method, &delta, &bicore);
    BatchOptions hurried;
    hurried.num_threads = 2;
    hurried.deadline_ms = 1;
    const BatchResult rushed = engine.RunBatch(requests, hurried);
    ASSERT_EQ(rushed.outcomes.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (rushed.outcomes[i].deadline_exceeded) {
        EXPECT_EQ(rushed.outcomes[i].num_edges, 0u)
            << QueryMethodName(method) << " i=" << i;
      }
    }

    // The same engine without a deadline matches a fresh undeadlined run.
    BatchOptions relaxed;
    relaxed.num_threads = 2;
    const BatchResult a = engine.RunBatch(requests, relaxed);
    const QueryEngine fresh_engine(g, method, &delta, &bicore);
    const BatchResult b = fresh_engine.RunBatch(requests, relaxed);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      ASSERT_EQ(a.outcomes[i].num_edges, b.outcomes[i].num_edges)
          << QueryMethodName(method) << " i=" << i;
      ASSERT_EQ(a.outcomes[i].touched_arcs, b.outcomes[i].touched_arcs)
          << QueryMethodName(method) << " i=" << i;
      EXPECT_FALSE(a.outcomes[i].deadline_exceeded);
    }
  }

  // Same matrix over the SCS batch driver.
  const QueryEngine engine(g, QueryMethod::kDelta, &delta);
  ScsBatchOptions hurried;
  hurried.num_threads = 2;
  hurried.deadline_ms = 1;
  const ScsBatchResult rushed = engine.RunScsBatch(requests, hurried);
  ASSERT_EQ(rushed.outcomes.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (rushed.outcomes[i].deadline_exceeded) {
      EXPECT_FALSE(rushed.outcomes[i].found) << i;
      EXPECT_EQ(rushed.outcomes[i].result_edges, 0u) << i;
    }
  }
  ScsBatchOptions relaxed;
  relaxed.num_threads = 2;
  const ScsBatchResult a = engine.RunScsBatch(requests, relaxed);
  const ScsBatchResult b =
      QueryEngine(g, QueryMethod::kDelta, &delta).RunScsBatch(requests,
                                                              relaxed);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(a.outcomes[i].found, b.outcomes[i].found) << i;
    ASSERT_EQ(a.outcomes[i].result_edges, b.outcomes[i].result_edges) << i;
    ASSERT_EQ(a.outcomes[i].significance, b.outcomes[i].significance) << i;
    EXPECT_FALSE(a.outcomes[i].deadline_exceeded);
  }
}

}  // namespace
}  // namespace abcs
