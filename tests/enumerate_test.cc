#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "abcore/peeling.h"
#include "core/delta_index.h"
#include "core/enumerate.h"
#include "test_util.h"

namespace abcs {
namespace {

using ::abcs::testing::MakeGraph;
using ::abcs::testing::RandomWeightedGraph;

TEST(EnumerateTest, TwoDisjointBlocks) {
  // Two disjoint 2×2 bicliques plus a pendant edge.
  BipartiteGraph g = MakeGraph({{0, 0, 1},
                                {0, 1, 1},
                                {1, 0, 1},
                                {1, 1, 1},
                                {2, 2, 1},
                                {2, 3, 1},
                                {3, 2, 1},
                                {3, 3, 1},
                                {4, 4, 1}});
  std::vector<Subgraph> comms = EnumerateCommunities(g, 2, 2);
  ASSERT_EQ(comms.size(), 2u);
  EXPECT_EQ(comms[0].Size(), 4u);
  EXPECT_EQ(comms[1].Size(), 4u);
  EXPECT_TRUE(EnumerateCommunities(g, 3, 3).empty());
  // At (1,1) the pendant forms its own component.
  EXPECT_EQ(EnumerateCommunities(g, 1, 1).size(), 3u);
}

class EnumeratePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnumeratePropertyTest, ComponentsPartitionTheCoreAndMatchQueries) {
  BipartiteGraph g = RandomWeightedGraph(30, 30, 220, GetParam());
  const DeltaIndex index = DeltaIndex::Build(g);
  for (uint32_t alpha = 1; alpha <= 4; ++alpha) {
    for (uint32_t beta = 1; beta <= 4; ++beta) {
      std::vector<Subgraph> comms = EnumerateCommunities(g, alpha, beta);

      // Components are edge-disjoint and their union is the core's edges.
      std::set<EdgeId> seen;
      for (const Subgraph& c : comms) {
        for (EdgeId e : c.edges) {
          EXPECT_TRUE(seen.insert(e).second) << "edge in two components";
        }
      }
      const CoreResult core = ComputeAlphaBetaCore(g, alpha, beta);
      std::size_t core_edges = 0;
      for (const Edge& e : g.Edges()) {
        core_edges += (core.alive[e.u] && core.alive[e.v]);
      }
      EXPECT_EQ(seen.size(), core_edges);

      // Each component equals the query result of any member vertex.
      for (const Subgraph& c : comms) {
        const VertexId member = g.GetEdge(c.edges.front()).u;
        EXPECT_TRUE(
            SameEdgeSet(c, index.QueryCommunity(member, alpha, beta)));
        std::string why;
        EXPECT_TRUE(VerifyCommunity(g, c, member, alpha, beta, &why)) << why;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnumeratePropertyTest,
                         ::testing::Values(601, 602, 603));

TEST(EnumerateTest, EmptyGraphAndEmptyCore) {
  BipartiteGraph g = MakeGraph({{0, 0, 1}});
  EXPECT_EQ(EnumerateCommunities(g, 1, 1).size(), 1u);
  EXPECT_TRUE(EnumerateCommunities(g, 2, 1).empty());
}

}  // namespace
}  // namespace abcs
