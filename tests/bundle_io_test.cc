// Tests for the ABCSPAK1 index bundle: round-trip bit-identity of all
// three query paths (read and mmap opens), zero-copy span wiring,
// copy-on-write seeding of the dynamic index, graph/weight staleness
// detection, and a corruption battery (truncation, bad magic, wrong
// version, flipped bytes, TOC overrun) that must fail with a clean Status
// — never a crash or sanitizer report.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "core/index_io.h"
#include "core/maintenance.h"
#include "core/query_engine.h"
#include "io/index_bundle.h"
#include "test_util.h"

namespace abcs {
namespace {

using ::abcs::testing::RandomWeightedGraph;

// Same mixed load as query_engine_test.cc: random vertices, α/β spanning
// below, at and above the interesting range, so empty and non-empty
// communities both occur on every path.
std::vector<QueryRequest> MixedRequests(const BipartiteGraph& g,
                                        std::size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<QueryRequest> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    requests.push_back(QueryRequest{
        static_cast<VertexId>(rng.NextBounded(g.NumVertices())),
        1 + static_cast<uint32_t>(rng.NextBounded(9)),
        1 + static_cast<uint32_t>(rng.NextBounded(9))});
  }
  return requests;
}

// --- raw-layout helpers for crafting corrupt-but-self-consistent files --
// Layout (docs/bundle_format.md): magic[8] | header[48] | TOC of 40-byte
// records | payloads. Header: version@8 count@12 nU@16 nL@20 m@24 δ@28,
// meta checksum @48; record: name[16] offset@+16 length@+24 checksum@+32.

struct SectionLoc {
  std::size_t record_off = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  bool found = false;
};

SectionLoc FindSection(const std::string& bytes, const char* name) {
  uint32_t count = 0;
  std::memcpy(&count, bytes.data() + 12, sizeof(count));
  for (uint32_t i = 0; i < count; ++i) {
    const std::size_t rec = 56 + std::size_t{i} * 40;
    if (std::strncmp(bytes.data() + rec, name, 16) == 0) {
      SectionLoc loc;
      loc.record_off = rec;
      loc.found = true;
      std::memcpy(&loc.offset, bytes.data() + rec + 16, sizeof(loc.offset));
      std::memcpy(&loc.length, bytes.data() + rec + 24, sizeof(loc.length));
      return loc;
    }
  }
  return {};
}

/// Recomputes the header/TOC meta checksum after a deliberate metadata
/// patch, so tests exercise the *structural* guards behind it rather than
/// the checksum itself.
void FixMetaChecksum(std::string* bytes) {
  uint32_t section_count = 0;
  std::memcpy(&section_count, bytes->data() + 12, sizeof(section_count));
  const std::size_t toc_end = 8 + 48 + std::size_t{section_count} * 40;
  ASSERT_LE(toc_end, bytes->size());
  std::string meta = bytes->substr(8, toc_end - 8);
  std::memset(meta.data() + 40, 0, 8);  // zero the meta checksum field
  const uint64_t checksum = BundleChecksum(meta.data(), meta.size());
  std::memcpy(bytes->data() + 48, &checksum, sizeof(checksum));
}

/// Re-signs one section's content checksum (after patching its payload)
/// and the meta checksum — the strongest corruption an accidental writer
/// bug or a deliberate attacker could produce without knowing the
/// structural invariants.
void ResignSection(std::string* bytes, const char* name) {
  const SectionLoc loc = FindSection(*bytes, name);
  ASSERT_TRUE(loc.found) << name;
  const uint64_t checksum =
      BundleChecksum(bytes->data() + loc.offset, loc.length);
  std::memcpy(bytes->data() + loc.record_off + 32, &checksum,
              sizeof(checksum));
  FixMetaChecksum(bytes);
}

uint32_t ReadU32(const std::string& bytes, std::size_t offset) {
  uint32_t x = 0;
  std::memcpy(&x, bytes.data() + offset, sizeof(x));
  return x;
}

void WriteU32(std::string* bytes, std::size_t offset, uint32_t x) {
  std::memcpy(bytes->data() + offset, &x, sizeof(x));
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class BundleIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/abcs_bundle_io_test.abcs";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Builds everything from one graph and saves the bundle.
  void BuildAndSave(const BipartiteGraph& g) {
    decomp_ = ComputeBicoreDecomposition(g);
    delta_ = DeltaIndex::Build(g, &decomp_);
    bicore_ = BicoreIndex::Build(g, &decomp_);
    ASSERT_TRUE(SaveIndexBundle(g, decomp_, delta_, bicore_, path_).ok());
  }

  std::string path_;
  BicoreDecomposition decomp_;
  DeltaIndex delta_;
  BicoreIndex bicore_;
};

// ------------------------------------------------------------ round trip --

TEST_F(BundleIoTest, RoundTripBitIdenticalOnAllMethodsAndModes) {
  const BipartiteGraph g = RandomWeightedGraph(80, 80, 900, 23);
  BuildAndSave(g);
  const std::vector<QueryRequest> requests = MixedRequests(g, 1000, 42);

  for (const BundleOpenMode mode :
       {BundleOpenMode::kRead, BundleOpenMode::kMmap}) {
    std::unique_ptr<IndexBundle> bundle;
    BundleOpenOptions options;
    options.mode = mode;
    ASSERT_TRUE(OpenIndexBundle(path_, &bundle, options).ok());
    ASSERT_EQ(bundle->delta(), decomp_.delta);
    EXPECT_EQ(bundle->graph().Edges(), g.Edges());
    EXPECT_EQ(bundle->decomposition(), decomp_);

    for (const QueryMethod method :
         {QueryMethod::kDelta, QueryMethod::kBicore, QueryMethod::kOnline}) {
      const QueryEngine fresh(g, method, &delta_, &bicore_);
      const QueryEngine opened(bundle->graph(), method,
                               &bundle->delta_index(),
                               &bundle->bicore_index());
      BatchOptions opt;
      opt.keep_communities = true;
      const BatchResult want = fresh.RunBatch(requests, opt);
      const BatchResult got = opened.RunBatch(requests, opt);
      ASSERT_EQ(got.outcomes.size(), want.outcomes.size());
      for (std::size_t i = 0; i < requests.size(); ++i) {
        ASSERT_EQ(got.communities[i].edges, want.communities[i].edges)
            << QueryMethodName(method) << " i=" << i << " mode="
            << (mode == BundleOpenMode::kMmap ? "mmap" : "read");
        ASSERT_EQ(got.outcomes[i].touched_arcs, want.outcomes[i].touched_arcs)
            << QueryMethodName(method) << " i=" << i;
      }
    }
  }
}

TEST_F(BundleIoTest, MmapOpenIsZeroCopy) {
  const BipartiteGraph g = RandomWeightedGraph(50, 50, 400, 7);
  BuildAndSave(g);
  std::unique_ptr<IndexBundle> bundle;
  ASSERT_TRUE(OpenIndexBundle(path_, &bundle).ok());
  EXPECT_EQ(bundle->mode(), BundleOpenMode::kMmap);
  // Every array of every layer views the mapped region: no per-array copy.
  EXPECT_TRUE(bundle->ZeroCopy());
  EXPECT_GT(bundle->FileBytes(), 0u);

  // The read-into-memory path shares the wiring: one buffer, same spans.
  std::unique_ptr<IndexBundle> read_bundle;
  BundleOpenOptions options;
  options.mode = BundleOpenMode::kRead;
  ASSERT_TRUE(OpenIndexBundle(path_, &read_bundle, options).ok());
  EXPECT_TRUE(read_bundle->ZeroCopy());
}

TEST_F(BundleIoTest, UnverifiedOpenServesIdenticalQueries) {
  const BipartiteGraph g = RandomWeightedGraph(40, 40, 350, 11);
  BuildAndSave(g);
  std::unique_ptr<IndexBundle> bundle;
  BundleOpenOptions options;
  options.verify_checksums = false;  // trusted-restart fast path
  ASSERT_TRUE(OpenIndexBundle(path_, &bundle, options).ok());
  for (const QueryRequest& r : MixedRequests(g, 200, 3)) {
    EXPECT_EQ(bundle->delta_index().QueryCommunity(r.q, r.alpha, r.beta).edges,
              delta_.QueryCommunity(r.q, r.alpha, r.beta).edges);
  }
}

// Copy-on-write: the dynamic index seeds its mutable rows straight from
// the bundle's (possibly mmap'd) arenas — no offset peel — and then
// behaves exactly like one seeded by recomputation.
TEST_F(BundleIoTest, DynamicIndexSeedsCopyOnWriteFromBundle) {
  const BipartiteGraph g = RandomWeightedGraph(30, 30, 250, 19);
  BuildAndSave(g);
  std::unique_ptr<IndexBundle> bundle;
  ASSERT_TRUE(OpenIndexBundle(path_, &bundle).ok());

  DynamicDeltaIndex from_bundle(bundle->graph(), &bundle->decomposition());
  DynamicDeltaIndex recomputed(g);
  ASSERT_EQ(from_bundle.delta(), recomputed.delta());
  for (uint32_t tau = 1; tau <= recomputed.delta(); ++tau) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      ASSERT_EQ(from_bundle.OffsetAlpha(tau, v),
                recomputed.OffsetAlpha(tau, v));
      ASSERT_EQ(from_bundle.OffsetBeta(tau, v), recomputed.OffsetBeta(tau, v));
    }
  }
  // Mutating after the seed must not touch the mapped bundle (the rows are
  // owned copies); both instances keep agreeing through an update.
  ASSERT_TRUE(from_bundle.InsertEdge(0, g.NumUpper() + 1, 3.0).ok() ==
              recomputed.InsertEdge(0, g.NumUpper() + 1, 3.0).ok());
  EXPECT_EQ(from_bundle.QueryCommunity(0, 2, 2).edges,
            recomputed.QueryCommunity(0, 2, 2).edges);
  EXPECT_TRUE(bundle->ZeroCopy());  // bundle arenas untouched
}

TEST_F(BundleIoTest, EmptyGraphRoundTrips) {
  GraphBuilder builder;  // zero edges, zero vertices
  BipartiteGraph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  BuildAndSave(g);
  std::unique_ptr<IndexBundle> bundle;
  ASSERT_TRUE(OpenIndexBundle(path_, &bundle).ok());
  EXPECT_EQ(bundle->graph().NumVertices(), 0u);
  EXPECT_EQ(bundle->delta(), 0u);
  EXPECT_TRUE(bundle->delta_index().QueryCommunity(0, 1, 1).edges.empty());
}

// ------------------------------------------------- staleness detection --

TEST_F(BundleIoTest, StaleWeightsAreRejectedByWeightDigest) {
  const BipartiteGraph g = RandomWeightedGraph(30, 30, 250, 5);
  BuildAndSave(g);
  std::unique_ptr<IndexBundle> bundle;
  ASSERT_TRUE(OpenIndexBundle(path_, &bundle).ok());
  ASSERT_TRUE(VerifyBundleMatchesGraph(*bundle, g).ok());

  // Same topology, different significances: the topology checksum cannot
  // see this — the weight digest must.
  std::vector<Weight> w(g.NumEdges(), 42.0);
  const BipartiteGraph reweighted = g.WithWeights(w);
  ASSERT_EQ(GraphTopologyChecksum(reweighted), GraphTopologyChecksum(g));
  const Status st = VerifyBundleMatchesGraph(*bundle, reweighted);
  EXPECT_EQ(st.code(), Status::Code::kCorruption);

  // Different topology is still caught too.
  const BipartiteGraph other = RandomWeightedGraph(30, 30, 250, 6);
  EXPECT_EQ(VerifyBundleMatchesGraph(*bundle, other).code(),
            Status::Code::kCorruption);
}

// ---------------------------------------------------------- corruption --

class BundleCorruptionTest : public BundleIoTest {
 protected:
  void SetUp() override {
    BundleIoTest::SetUp();
    graph_ = RandomWeightedGraph(25, 25, 200, 13);
    BuildAndSave(graph_);
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), 96u);
  }

  /// Opens the (patched) file in both modes; every variant must produce
  /// `code` without crashing.
  void ExpectOpenFails(Status::Code code) {
    for (const BundleOpenMode mode :
         {BundleOpenMode::kRead, BundleOpenMode::kMmap}) {
      std::unique_ptr<IndexBundle> bundle;
      BundleOpenOptions options;
      options.mode = mode;
      const Status st = OpenIndexBundle(path_, &bundle, options);
      EXPECT_EQ(st.code(), code) << st.ToString();
      EXPECT_EQ(bundle, nullptr);
    }
  }

  BipartiteGraph graph_;
  std::string bytes_;
};

TEST_F(BundleCorruptionTest, MissingFileIsIOError) {
  std::remove(path_.c_str());
  ExpectOpenFails(Status::Code::kIOError);
}

TEST_F(BundleCorruptionTest, DirectoryPathIsIOError) {
  // ifstream "opens" a directory on some libstdc++ setups and tellg lies;
  // both modes must fail with a clean Status, not a bad_alloc abort.
  for (const BundleOpenMode mode :
       {BundleOpenMode::kRead, BundleOpenMode::kMmap}) {
    std::unique_ptr<IndexBundle> bundle;
    BundleOpenOptions options;
    options.mode = mode;
    const Status st = OpenIndexBundle(::testing::TempDir(), &bundle, options);
    EXPECT_EQ(st.code(), Status::Code::kIOError) << st.ToString();
  }
}

TEST_F(BundleCorruptionTest, TruncationAtEveryRegionIsCorruption) {
  // Mid-header, mid-TOC, and mid-payload cuts.
  for (const std::size_t keep :
       {std::size_t{4}, std::size_t{30}, std::size_t{70},
        bytes_.size() / 2, bytes_.size() - 1}) {
    WriteFileBytes(path_, bytes_.substr(0, keep));
    ExpectOpenFails(Status::Code::kCorruption);
  }
}

TEST_F(BundleCorruptionTest, BadMagicIsCorruption) {
  bytes_[0] = 'X';
  WriteFileBytes(path_, bytes_);
  ExpectOpenFails(Status::Code::kCorruption);
  // A legacy ABCSIDX dump is also "not a bundle", reported cleanly.
  const std::string legacy = ::testing::TempDir() + "/abcs_legacy_probe.idx";
  ASSERT_TRUE(SaveDeltaIndex(delta_, graph_, legacy).ok());
  std::unique_ptr<IndexBundle> bundle;
  EXPECT_EQ(OpenIndexBundle(legacy, &bundle).code(),
            Status::Code::kCorruption);
  std::remove(legacy.c_str());
}

TEST_F(BundleCorruptionTest, WrongFormatVersionIsCorruption) {
  uint32_t version = 99;
  std::memcpy(bytes_.data() + 8, &version, sizeof(version));
  WriteFileBytes(path_, bytes_);
  ExpectOpenFails(Status::Code::kCorruption);
}

TEST_F(BundleCorruptionTest, FlippedPayloadByteIsCorruption) {
  bytes_[bytes_.size() - 1] ^= 0x40;  // inside the last section's payload
  WriteFileBytes(path_, bytes_);
  ExpectOpenFails(Status::Code::kCorruption);
}

TEST_F(BundleCorruptionTest, FlippedTocByteIsCorruption) {
  bytes_[8 + 48 + 17] ^= 0x01;  // first record's offset field
  WriteFileBytes(path_, bytes_);
  ExpectOpenFails(Status::Code::kCorruption);
}

TEST_F(BundleCorruptionTest, SectionTocOverrunIsCorruption) {
  // Stretch section 0 past EOF and *re-sign* the metadata, so the range
  // check itself (not the meta checksum) must reject the file.
  uint64_t length = 0;
  std::memcpy(&length, bytes_.data() + 8 + 48 + 24, sizeof(length));
  length = bytes_.size() * 2 + 1024;
  std::memcpy(bytes_.data() + 8 + 48 + 24, &length, sizeof(length));
  FixMetaChecksum(&bytes_);
  WriteFileBytes(path_, bytes_);
  ExpectOpenFails(Status::Code::kCorruption);
}

TEST_F(BundleCorruptionTest, SectionOffsetOverflowIsCorruption) {
  // Offset near UINT64_MAX: offset + length must not wrap past the check.
  uint64_t offset = ~uint64_t{0} - 7;  // keeps 8-alignment
  std::memcpy(bytes_.data() + 8 + 48 + 16, &offset, sizeof(offset));
  FixMetaChecksum(&bytes_);
  WriteFileBytes(path_, bytes_);
  ExpectOpenFails(Status::Code::kCorruption);
}

// A fully re-signed bundle whose I_δ base table carries a zero-width
// vertex slot must be rejected: NumLevels would underflow and the
// self-offset lookup would read far outside the mapping.
TEST_F(BundleCorruptionTest, ZeroWidthTableBaseSlotIsCorruption) {
  const SectionLoc tbase = FindSection(bytes_, "id.a.tbase");
  ASSERT_TRUE(tbase.found);
  ASSERT_GE(tbase.length, 2 * sizeof(uint32_t));
  WriteU32(&bytes_, tbase.offset + 4, ReadU32(bytes_, tbase.offset));
  ResignSection(&bytes_, "id.a.tbase");
  WriteFileBytes(path_, bytes_);
  ExpectOpenFails(Status::Code::kCorruption);
}

// A re-signed decomposition whose start table gives one vertex a slice
// longer than δ must be rejected: consumers size dense per-τ tables by δ
// (DynamicDeltaIndex's seed rows) and would write past them otherwise.
TEST_F(BundleCorruptionTest, DecompositionSliceLongerThanDeltaIsCorruption) {
  const SectionLoc start = FindSection(bytes_, "dc.a.start");
  ASSERT_TRUE(start.found);
  const uint64_t count = start.length / sizeof(uint32_t);
  ASSERT_GE(count, 3u);
  const uint32_t delta = ReadU32(bytes_, 28);
  const uint32_t total =
      ReadU32(bytes_, start.offset + (std::size_t{count} - 1) * 4);
  ASSERT_GT(total, delta) << "fixture graph too small for this craft";
  // Zero every interior bound: still non-decreasing, same total, but the
  // last vertex now owns all Σ Levels values — far more than δ.
  for (uint64_t v = 1; v + 1 < count; ++v) {
    WriteU32(&bytes_, start.offset + std::size_t{v} * 4, 0);
  }
  ResignSection(&bytes_, "dc.a.start");
  WriteFileBytes(path_, bytes_);
  ExpectOpenFails(Status::Code::kCorruption);
}

// A re-signed entry that points a level-τ list at a vertex which does not
// own level τ must be rejected: the query BFS reads the target's level-τ
// slice unchecked, trusting exactly this invariant.
TEST(BundleCraftedEntryTest, EntryTargetWithoutLevelIsCorruption) {
  const std::string path =
      ::testing::TempDir() + "/abcs_bundle_crafted_entry.abcs";
  // Figure 2: the 4×4 complete core has vertices with ≥ 2 levels, the
  // chain vertices have exactly 1 — both populations guaranteed.
  const BipartiteGraph g = testing::PaperFigure2Graph(20);
  const BicoreDecomposition decomp = ComputeBicoreDecomposition(g);
  const DeltaIndex delta = DeltaIndex::Build(g, &decomp);
  const BicoreIndex bicore = BicoreIndex::Build(g, &decomp);
  ASSERT_TRUE(SaveIndexBundle(g, decomp, delta, bicore, path).ok());
  std::string bytes = ReadFileBytes(path);

  const SectionLoc tbase = FindSection(bytes, "id.a.tbase");
  const SectionLoc lstart = FindSection(bytes, "id.a.lstart");
  const SectionLoc entries = FindSection(bytes, "id.a.entries");
  ASSERT_TRUE(tbase.found && lstart.found && entries.found);
  const uint32_t n = ReadU32(bytes, 16) + ReadU32(bytes, 20);
  auto tb = [&](uint32_t v) {
    return ReadU32(bytes, tbase.offset + std::size_t{v} * 4);
  };
  auto levels = [&](uint32_t v) { return tb(v + 1) - tb(v) - 1; };
  // A victim vertex owning level 2 with a non-empty level-2 list, and a
  // target vertex that does not own level 2.
  uint32_t victim = n, target = n;
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t ls_lo =
        ReadU32(bytes, lstart.offset + (std::size_t{tb(v)} + 1) * 4);
    const uint32_t ls_hi =
        ReadU32(bytes, lstart.offset + (std::size_t{tb(v)} + 2) * 4);
    if (victim == n && levels(v) >= 2 && ls_hi > ls_lo) victim = v;
    if (target == n && levels(v) < 2) target = v;
  }
  ASSERT_LT(victim, n);
  ASSERT_LT(target, n);
  const uint32_t entry_idx =
      ReadU32(bytes, lstart.offset + (std::size_t{tb(victim)} + 1) * 4);
  // Entry layout: u32 to, u32 eid, u32 offset (12 bytes).
  WriteU32(&bytes, entries.offset + std::size_t{entry_idx} * 12, target);
  ResignSection(&bytes, "id.a.entries");
  WriteFileBytes(path, bytes);

  std::unique_ptr<IndexBundle> bundle;
  EXPECT_EQ(OpenIndexBundle(path, &bundle).code(),
            Status::Code::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace abcs
