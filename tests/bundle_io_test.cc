// Tests for the ABCSPAK2 index bundle: round-trip bit-identity of all
// three query paths (read and mmap opens, raw and compressed saves),
// zero-copy span wiring, copy-on-write seeding of the dynamic index,
// graph/weight staleness detection, v1-format compatibility, and a
// corruption battery — truncation, bad magic, wrong version, flipped
// bytes, TOC overrun, plus the encoded-section battery (truncated or
// tampered encoded payloads, wrong codec tags, decoded-length lies,
// varint overruns) — that must fail with a clean Status naming the
// offending section, never a crash or sanitizer report.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "core/index_io.h"
#include "core/maintenance.h"
#include "core/query_engine.h"
#include "io/index_bundle.h"
#include "test_util.h"

namespace abcs {
namespace {

using ::abcs::testing::RandomWeightedGraph;

// Same mixed load as query_engine_test.cc: random vertices, α/β spanning
// below, at and above the interesting range, so empty and non-empty
// communities both occur on every path.
std::vector<QueryRequest> MixedRequests(const BipartiteGraph& g,
                                        std::size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<QueryRequest> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    requests.push_back(QueryRequest{
        static_cast<VertexId>(rng.NextBounded(g.NumVertices())),
        1 + static_cast<uint32_t>(rng.NextBounded(9)),
        1 + static_cast<uint32_t>(rng.NextBounded(9))});
  }
  return requests;
}

// --- raw-layout helpers for crafting corrupt-but-self-consistent files --
// Layout (docs/bundle_format.md): magic[8] | header[48] | TOC of 56-byte
// v2 records | payloads. Header: version@8 count@12 nU@16 nL@20 m@24 δ@28,
// meta checksum @48; record: name[16] offset@+16 stored@+24 decoded@+32
// checksum@+40 codec@+48 reserved@+52.

constexpr std::size_t kRecordBytes = 56;
constexpr std::size_t kTocStart = 8 + 48;

struct SectionLoc {
  std::size_t record_off = 0;
  uint64_t offset = 0;
  uint64_t stored_length = 0;
  uint64_t decoded_length = 0;
  uint32_t codec = 0;
  bool found = false;
};

SectionLoc ReadRecord(const std::string& bytes, std::size_t rec) {
  SectionLoc loc;
  loc.record_off = rec;
  loc.found = true;
  std::memcpy(&loc.offset, bytes.data() + rec + 16, sizeof(loc.offset));
  std::memcpy(&loc.stored_length, bytes.data() + rec + 24,
              sizeof(loc.stored_length));
  std::memcpy(&loc.decoded_length, bytes.data() + rec + 32,
              sizeof(loc.decoded_length));
  std::memcpy(&loc.codec, bytes.data() + rec + 48, sizeof(loc.codec));
  return loc;
}

SectionLoc FindSection(const std::string& bytes, const char* name) {
  uint32_t count = 0;
  std::memcpy(&count, bytes.data() + 12, sizeof(count));
  for (uint32_t i = 0; i < count; ++i) {
    const std::size_t rec = kTocStart + std::size_t{i} * kRecordBytes;
    if (std::strncmp(bytes.data() + rec, name, 16) == 0) {
      return ReadRecord(bytes, rec);
    }
  }
  return {};
}

/// First section stored under a non-raw codec, for the encoded battery.
SectionLoc FindEncodedSection(const std::string& bytes) {
  uint32_t count = 0;
  std::memcpy(&count, bytes.data() + 12, sizeof(count));
  for (uint32_t i = 0; i < count; ++i) {
    const SectionLoc loc =
        ReadRecord(bytes, kTocStart + std::size_t{i} * kRecordBytes);
    if (loc.codec != 0) return loc;
  }
  return {};
}

std::string SectionNameAt(const std::string& bytes, std::size_t record_off) {
  const char* p = bytes.data() + record_off;
  return std::string(p, strnlen(p, 16));
}

/// Recomputes the header/TOC meta checksum after a deliberate metadata
/// patch, so tests exercise the *structural* guards behind it rather than
/// the checksum itself.
void FixMetaChecksum(std::string* bytes) {
  uint32_t section_count = 0;
  std::memcpy(&section_count, bytes->data() + 12, sizeof(section_count));
  const std::size_t toc_end =
      kTocStart + std::size_t{section_count} * kRecordBytes;
  ASSERT_LE(toc_end, bytes->size());
  std::string meta = bytes->substr(8, toc_end - 8);
  std::memset(meta.data() + 40, 0, 8);  // zero the meta checksum field
  const uint64_t checksum = BundleChecksum(meta.data(), meta.size());
  std::memcpy(bytes->data() + 48, &checksum, sizeof(checksum));
}

/// Re-signs one section's content checksum (after patching its payload)
/// and the meta checksum — the strongest corruption an accidental writer
/// bug or a deliberate attacker could produce without knowing the
/// structural invariants.
void ResignSection(std::string* bytes, const char* name) {
  const SectionLoc loc = FindSection(*bytes, name);
  ASSERT_TRUE(loc.found) << name;
  const uint64_t checksum =
      BundleChecksum(bytes->data() + loc.offset, loc.stored_length);
  std::memcpy(bytes->data() + loc.record_off + 40, &checksum,
              sizeof(checksum));
  FixMetaChecksum(bytes);
}

/// Re-signs the record at `record_off` from its (patched) stored payload.
void ResignRecord(std::string* bytes, std::size_t record_off) {
  const SectionLoc loc = ReadRecord(*bytes, record_off);
  const uint64_t checksum =
      BundleChecksum(bytes->data() + loc.offset, loc.stored_length);
  std::memcpy(bytes->data() + record_off + 40, &checksum, sizeof(checksum));
  FixMetaChecksum(bytes);
}

uint32_t ReadU32(const std::string& bytes, std::size_t offset) {
  uint32_t x = 0;
  std::memcpy(&x, bytes.data() + offset, sizeof(x));
  return x;
}

void WriteU32(std::string* bytes, std::size_t offset, uint32_t x) {
  std::memcpy(bytes->data() + offset, &x, sizeof(x));
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class BundleIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/abcs_bundle_io_test.abcs";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Builds everything from one graph and saves the bundle.
  void BuildAndSave(const BipartiteGraph& g,
                    const SaveBundleOptions& options = {}) {
    decomp_ = ComputeBicoreDecomposition(g);
    delta_ = DeltaIndex::Build(g, &decomp_);
    bicore_ = BicoreIndex::Build(g, &decomp_);
    ASSERT_TRUE(
        SaveIndexBundle(g, decomp_, delta_, bicore_, path_, options).ok());
  }

  std::string path_;
  BicoreDecomposition decomp_;
  DeltaIndex delta_;
  BicoreIndex bicore_;
};

// ------------------------------------------------------------ round trip --

TEST_F(BundleIoTest, RoundTripBitIdenticalOnAllMethodsAndModes) {
  const BipartiteGraph g = RandomWeightedGraph(80, 80, 900, 23);
  BuildAndSave(g);
  const std::vector<QueryRequest> requests = MixedRequests(g, 1000, 42);

  for (const BundleOpenMode mode :
       {BundleOpenMode::kRead, BundleOpenMode::kMmap}) {
    std::unique_ptr<IndexBundle> bundle;
    BundleOpenOptions options;
    options.mode = mode;
    ASSERT_TRUE(OpenIndexBundle(path_, &bundle, options).ok());
    ASSERT_EQ(bundle->delta(), decomp_.delta);
    EXPECT_EQ(bundle->graph().Edges(), g.Edges());
    EXPECT_EQ(bundle->decomposition(), decomp_);

    for (const QueryMethod method :
         {QueryMethod::kDelta, QueryMethod::kBicore, QueryMethod::kOnline}) {
      const QueryEngine fresh(g, method, &delta_, &bicore_);
      const QueryEngine opened(bundle->graph(), method,
                               &bundle->delta_index(),
                               &bundle->bicore_index());
      BatchOptions opt;
      opt.keep_communities = true;
      const BatchResult want = fresh.RunBatch(requests, opt);
      const BatchResult got = opened.RunBatch(requests, opt);
      ASSERT_EQ(got.outcomes.size(), want.outcomes.size());
      for (std::size_t i = 0; i < requests.size(); ++i) {
        ASSERT_EQ(got.communities[i].edges, want.communities[i].edges)
            << QueryMethodName(method) << " i=" << i << " mode="
            << (mode == BundleOpenMode::kMmap ? "mmap" : "read");
        ASSERT_EQ(got.outcomes[i].touched_arcs, want.outcomes[i].touched_arcs)
            << QueryMethodName(method) << " i=" << i;
      }
    }
  }
}

TEST_F(BundleIoTest, MmapOpenIsZeroCopy) {
  const BipartiteGraph g = RandomWeightedGraph(50, 50, 400, 7);
  BuildAndSave(g);
  std::unique_ptr<IndexBundle> bundle;
  ASSERT_TRUE(OpenIndexBundle(path_, &bundle).ok());
  EXPECT_EQ(bundle->mode(), BundleOpenMode::kMmap);
  // Every array of every layer views the mapped region: no per-array copy.
  EXPECT_TRUE(bundle->ZeroCopy());
  EXPECT_GT(bundle->FileBytes(), 0u);

  // The read-into-memory path shares the wiring: one buffer, same spans.
  std::unique_ptr<IndexBundle> read_bundle;
  BundleOpenOptions options;
  options.mode = BundleOpenMode::kRead;
  ASSERT_TRUE(OpenIndexBundle(path_, &read_bundle, options).ok());
  EXPECT_TRUE(read_bundle->ZeroCopy());
}

TEST_F(BundleIoTest, UnverifiedOpenServesIdenticalQueries) {
  const BipartiteGraph g = RandomWeightedGraph(40, 40, 350, 11);
  BuildAndSave(g);
  std::unique_ptr<IndexBundle> bundle;
  BundleOpenOptions options;
  options.verify_checksums = false;  // trusted-restart fast path
  ASSERT_TRUE(OpenIndexBundle(path_, &bundle, options).ok());
  for (const QueryRequest& r : MixedRequests(g, 200, 3)) {
    EXPECT_EQ(bundle->delta_index().QueryCommunity(r.q, r.alpha, r.beta).edges,
              delta_.QueryCommunity(r.q, r.alpha, r.beta).edges);
  }
}

// Copy-on-write: the dynamic index seeds its mutable rows straight from
// the bundle's (possibly mmap'd) arenas — no offset peel — and then
// behaves exactly like one seeded by recomputation.
TEST_F(BundleIoTest, DynamicIndexSeedsCopyOnWriteFromBundle) {
  const BipartiteGraph g = RandomWeightedGraph(30, 30, 250, 19);
  BuildAndSave(g);
  std::unique_ptr<IndexBundle> bundle;
  ASSERT_TRUE(OpenIndexBundle(path_, &bundle).ok());

  DynamicDeltaIndex from_bundle(bundle->graph(), &bundle->decomposition());
  DynamicDeltaIndex recomputed(g);
  ASSERT_EQ(from_bundle.delta(), recomputed.delta());
  for (uint32_t tau = 1; tau <= recomputed.delta(); ++tau) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      ASSERT_EQ(from_bundle.OffsetAlpha(tau, v),
                recomputed.OffsetAlpha(tau, v));
      ASSERT_EQ(from_bundle.OffsetBeta(tau, v), recomputed.OffsetBeta(tau, v));
    }
  }
  // Mutating after the seed must not touch the mapped bundle (the rows are
  // owned copies); both instances keep agreeing through an update.
  ASSERT_TRUE(from_bundle.InsertEdge(0, g.NumUpper() + 1, 3.0).ok() ==
              recomputed.InsertEdge(0, g.NumUpper() + 1, 3.0).ok());
  EXPECT_EQ(from_bundle.QueryCommunity(0, 2, 2).edges,
            recomputed.QueryCommunity(0, 2, 2).edges);
  EXPECT_TRUE(bundle->ZeroCopy());  // bundle arenas untouched
}

TEST_F(BundleIoTest, EmptyGraphRoundTrips) {
  GraphBuilder builder;  // zero edges, zero vertices
  BipartiteGraph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  BuildAndSave(g);
  std::unique_ptr<IndexBundle> bundle;
  ASSERT_TRUE(OpenIndexBundle(path_, &bundle).ok());
  EXPECT_EQ(bundle->graph().NumVertices(), 0u);
  EXPECT_EQ(bundle->delta(), 0u);
  EXPECT_TRUE(bundle->delta_index().QueryCommunity(0, 1, 1).edges.empty());
}

// ----------------------------------------------------------- compressed --

TEST_F(BundleIoTest, CompressedSaveRoundTripsBitIdentical) {
  const BipartiteGraph g = RandomWeightedGraph(80, 80, 900, 29);
  BuildAndSave(g);
  const uint64_t raw_bytes = ReadFileBytes(path_).size();
  const std::vector<QueryRequest> requests = MixedRequests(g, 600, 77);

  for (const BundleCompression level :
       {BundleCompression::kFast, BundleCompression::kMax}) {
    SaveBundleOptions save;
    save.compression = level;
    BuildAndSave(g, save);
    const uint64_t packed_bytes = ReadFileBytes(path_).size();
    // The policy only accepts codecs that pay for themselves, so the
    // compressed file is strictly smaller here (small ids pack hard) and
    // can never be larger on any input.
    EXPECT_LT(packed_bytes, raw_bytes) << BundleCompressionName(level);

    for (const BundleOpenMode mode :
         {BundleOpenMode::kRead, BundleOpenMode::kMmap}) {
      std::unique_ptr<IndexBundle> bundle;
      BundleOpenOptions options;
      options.mode = mode;
      ASSERT_TRUE(OpenIndexBundle(path_, &bundle, options).ok());
      EXPECT_EQ(bundle->FormatVersion(), 2u);
      EXPECT_EQ(bundle->decomposition(), decomp_);
      // At least one section actually took a codec, it decodes into the
      // owned pool (so the bundle is honestly not zero-copy), and the
      // per-section report matches.
      std::size_t encoded = 0;
      for (const BundleSectionInfo& info : bundle->Sections()) {
        if (info.codec != SectionCodec::kRaw) {
          ++encoded;
          EXPECT_LT(info.stored_bytes, info.decoded_bytes) << info.name;
        } else {
          EXPECT_EQ(info.stored_bytes, info.decoded_bytes) << info.name;
        }
      }
      EXPECT_GT(encoded, 0u);
      EXPECT_GT(bundle->DecodePoolBytes(), 0u);
      EXPECT_FALSE(bundle->ZeroCopy());

      for (const QueryMethod method :
           {QueryMethod::kDelta, QueryMethod::kBicore, QueryMethod::kOnline}) {
        const QueryEngine fresh(g, method, &delta_, &bicore_);
        const QueryEngine opened(bundle->graph(), method,
                                 &bundle->delta_index(),
                                 &bundle->bicore_index());
        BatchOptions opt;
        opt.keep_communities = true;
        const BatchResult want = fresh.RunBatch(requests, opt);
        const BatchResult got = opened.RunBatch(requests, opt);
        for (std::size_t i = 0; i < requests.size(); ++i) {
          ASSERT_EQ(got.communities[i].edges, want.communities[i].edges)
              << BundleCompressionName(level) << " "
              << QueryMethodName(method) << " i=" << i;
        }
      }
    }
  }
}

// ------------------------------------------------------ v1 compatibility --

/// Rewrites a v2 all-raw bundle into the byte-exact v1 layout (40-byte TOC
/// records, "ABCSPAK1" magic, version 1): the payloads shift up by the TOC
/// shrinkage but their bytes and checksums are unchanged.
std::string ConvertV2RawToV1(const std::string& v2) {
  uint32_t count = 0;
  std::memcpy(&count, v2.data() + 12, sizeof(count));
  const std::size_t v1_toc_end = kTocStart + std::size_t{count} * 40;
  std::string v1(v1_toc_end, '\0');
  std::memcpy(v1.data(), "ABCSPAK1", 8);
  std::memcpy(v1.data() + 8, v2.data() + 8, 48);
  uint32_t version = 1;
  std::memcpy(v1.data() + 8, &version, sizeof(version));

  uint64_t cursor = v1_toc_end;
  for (uint32_t i = 0; i < count; ++i) {
    const std::size_t v2_rec = kTocStart + std::size_t{i} * kRecordBytes;
    const SectionLoc loc = ReadRecord(v2, v2_rec);
    EXPECT_EQ(loc.codec, 0u) << "v1 conversion needs an all-raw source";
    const std::size_t v1_rec = kTocStart + std::size_t{i} * 40;
    std::memcpy(v1.data() + v1_rec, v2.data() + v2_rec, 16);  // name
    std::memcpy(v1.data() + v1_rec + 16, &cursor, 8);
    std::memcpy(v1.data() + v1_rec + 24, v2.data() + v2_rec + 24, 8);
    std::memcpy(v1.data() + v1_rec + 32, v2.data() + v2_rec + 40, 8);
    v1.append(v2, loc.offset, loc.stored_length);
    v1.resize((v1.size() + 7) & ~std::size_t{7}, '\0');
    cursor = v1.size();
  }
  // Re-sign the meta checksum over header (field zeroed) + 40-byte TOC.
  std::string meta = v1.substr(8, v1_toc_end - 8);
  std::memset(meta.data() + 40, 0, 8);
  const uint64_t checksum = BundleChecksum(meta.data(), meta.size());
  std::memcpy(v1.data() + 48, &checksum, sizeof(checksum));
  return v1;
}

TEST_F(BundleIoTest, V1BundleStillOpensOnTheVerifiedFastPath) {
  const BipartiteGraph g = RandomWeightedGraph(40, 40, 350, 31);
  BuildAndSave(g);
  const std::string v1 = ConvertV2RawToV1(ReadFileBytes(path_));
  WriteFileBytes(path_, v1);
  ASSERT_TRUE(LooksLikeIndexBundle(path_));

  std::unique_ptr<IndexBundle> bundle;
  ASSERT_TRUE(OpenIndexBundle(path_, &bundle).ok());
  EXPECT_EQ(bundle->FormatVersion(), 1u);
  // Every v1 section is raw: the legacy file keeps the zero-copy mmap
  // fast path, no decode pool is allocated, and queries are identical.
  EXPECT_TRUE(bundle->ZeroCopy());
  EXPECT_EQ(bundle->DecodePoolBytes(), 0u);
  EXPECT_EQ(bundle->decomposition(), decomp_);
  for (const QueryRequest& r : MixedRequests(g, 200, 9)) {
    EXPECT_EQ(bundle->delta_index().QueryCommunity(r.q, r.alpha, r.beta).edges,
              delta_.QueryCommunity(r.q, r.alpha, r.beta).edges);
  }
}

// ------------------------------------------------- staleness detection --

TEST_F(BundleIoTest, StaleWeightsAreRejectedByWeightDigest) {
  const BipartiteGraph g = RandomWeightedGraph(30, 30, 250, 5);
  BuildAndSave(g);
  std::unique_ptr<IndexBundle> bundle;
  ASSERT_TRUE(OpenIndexBundle(path_, &bundle).ok());
  ASSERT_TRUE(VerifyBundleMatchesGraph(*bundle, g).ok());

  // Same topology, different significances: the topology checksum cannot
  // see this — the weight digest must.
  std::vector<Weight> w(g.NumEdges(), 42.0);
  const BipartiteGraph reweighted = g.WithWeights(w);
  ASSERT_EQ(GraphTopologyChecksum(reweighted), GraphTopologyChecksum(g));
  const Status st = VerifyBundleMatchesGraph(*bundle, reweighted);
  EXPECT_EQ(st.code(), Status::Code::kCorruption);

  // Different topology is still caught too.
  const BipartiteGraph other = RandomWeightedGraph(30, 30, 250, 6);
  EXPECT_EQ(VerifyBundleMatchesGraph(*bundle, other).code(),
            Status::Code::kCorruption);
}

// ---------------------------------------------------------- corruption --

class BundleCorruptionTest : public BundleIoTest {
 protected:
  void SetUp() override {
    BundleIoTest::SetUp();
    graph_ = RandomWeightedGraph(25, 25, 200, 13);
    BuildAndSave(graph_);
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), 96u);
  }

  /// Opens the (patched) file in both modes; every variant must produce
  /// `code` without crashing.
  void ExpectOpenFails(Status::Code code) { ExpectOpenFailsNaming(code, ""); }

  /// Like ExpectOpenFails, but additionally requires the Status message to
  /// contain `name` — every section-level error must say *which* section
  /// was bad, or an operator staring at a 19-section bundle flies blind.
  void ExpectOpenFailsNaming(Status::Code code, const std::string& name) {
    for (const BundleOpenMode mode :
         {BundleOpenMode::kRead, BundleOpenMode::kMmap}) {
      std::unique_ptr<IndexBundle> bundle;
      BundleOpenOptions options;
      options.mode = mode;
      const Status st = OpenIndexBundle(path_, &bundle, options);
      EXPECT_EQ(st.code(), code) << st.ToString();
      EXPECT_EQ(bundle, nullptr);
      if (!name.empty()) {
        EXPECT_NE(st.message().find(name), std::string::npos)
            << "error does not name section " << name << ": " << st.ToString();
      }
    }
  }

  BipartiteGraph graph_;
  std::string bytes_;
};

TEST_F(BundleCorruptionTest, MissingFileIsIOError) {
  std::remove(path_.c_str());
  ExpectOpenFails(Status::Code::kIOError);
}

TEST_F(BundleCorruptionTest, DirectoryPathIsIOError) {
  // ifstream "opens" a directory on some libstdc++ setups and tellg lies;
  // both modes must fail with a clean Status, not a bad_alloc abort.
  for (const BundleOpenMode mode :
       {BundleOpenMode::kRead, BundleOpenMode::kMmap}) {
    std::unique_ptr<IndexBundle> bundle;
    BundleOpenOptions options;
    options.mode = mode;
    const Status st = OpenIndexBundle(::testing::TempDir(), &bundle, options);
    EXPECT_EQ(st.code(), Status::Code::kIOError) << st.ToString();
  }
}

TEST_F(BundleCorruptionTest, TruncationAtEveryRegionIsCorruption) {
  // Mid-header, mid-TOC, and mid-payload cuts.
  for (const std::size_t keep :
       {std::size_t{4}, std::size_t{30}, std::size_t{70},
        bytes_.size() / 2, bytes_.size() - 1}) {
    WriteFileBytes(path_, bytes_.substr(0, keep));
    ExpectOpenFails(Status::Code::kCorruption);
  }
}

TEST_F(BundleCorruptionTest, BadMagicIsCorruption) {
  bytes_[0] = 'X';
  WriteFileBytes(path_, bytes_);
  ExpectOpenFails(Status::Code::kCorruption);
  // A legacy ABCSIDX dump is also "not a bundle", reported cleanly.
  const std::string legacy = ::testing::TempDir() + "/abcs_legacy_probe.idx";
  ASSERT_TRUE(SaveDeltaIndex(delta_, graph_, legacy).ok());
  std::unique_ptr<IndexBundle> bundle;
  EXPECT_EQ(OpenIndexBundle(legacy, &bundle).code(),
            Status::Code::kCorruption);
  std::remove(legacy.c_str());
}

TEST_F(BundleCorruptionTest, WrongFormatVersionIsCorruption) {
  uint32_t version = 99;
  std::memcpy(bytes_.data() + 8, &version, sizeof(version));
  WriteFileBytes(path_, bytes_);
  ExpectOpenFails(Status::Code::kCorruption);
}

TEST_F(BundleCorruptionTest, FlippedPayloadByteIsCorruption) {
  bytes_[bytes_.size() - 1] ^= 0x40;  // inside the last section's payload
  WriteFileBytes(path_, bytes_);
  ExpectOpenFails(Status::Code::kCorruption);
}

TEST_F(BundleCorruptionTest, FlippedTocByteIsCorruption) {
  bytes_[kTocStart + 17] ^= 0x01;  // first record's offset field
  WriteFileBytes(path_, bytes_);
  ExpectOpenFails(Status::Code::kCorruption);
}

TEST_F(BundleCorruptionTest, SectionTocOverrunIsCorruption) {
  // Stretch section 0 past EOF (both lengths, so the raw stored==decoded
  // invariant holds) and *re-sign* the metadata, so the range check itself
  // (not the meta checksum) must reject the file — naming the section.
  uint64_t length = bytes_.size() * 2 + 1024;
  std::memcpy(bytes_.data() + kTocStart + 24, &length, sizeof(length));
  std::memcpy(bytes_.data() + kTocStart + 32, &length, sizeof(length));
  FixMetaChecksum(&bytes_);
  WriteFileBytes(path_, bytes_);
  ExpectOpenFailsNaming(Status::Code::kCorruption,
                        SectionNameAt(bytes_, kTocStart));
}

TEST_F(BundleCorruptionTest, SectionOffsetOverflowIsCorruption) {
  // Offset near UINT64_MAX: offset + length must not wrap past the check.
  uint64_t offset = ~uint64_t{0} - 7;  // keeps 8-alignment
  std::memcpy(bytes_.data() + kTocStart + 16, &offset, sizeof(offset));
  FixMetaChecksum(&bytes_);
  WriteFileBytes(path_, bytes_);
  ExpectOpenFails(Status::Code::kCorruption);
}

// A fully re-signed bundle whose I_δ base table carries a zero-width
// vertex slot must be rejected: NumLevels would underflow and the
// self-offset lookup would read far outside the mapping.
TEST_F(BundleCorruptionTest, ZeroWidthTableBaseSlotIsCorruption) {
  const SectionLoc tbase = FindSection(bytes_, "id.a.tbase");
  ASSERT_TRUE(tbase.found);
  ASSERT_GE(tbase.stored_length, 2 * sizeof(uint32_t));
  WriteU32(&bytes_, tbase.offset + 4, ReadU32(bytes_, tbase.offset));
  ResignSection(&bytes_, "id.a.tbase");
  WriteFileBytes(path_, bytes_);
  ExpectOpenFails(Status::Code::kCorruption);
}

// A re-signed decomposition whose start table gives one vertex a slice
// longer than δ must be rejected: consumers size dense per-τ tables by δ
// (DynamicDeltaIndex's seed rows) and would write past them otherwise.
TEST_F(BundleCorruptionTest, DecompositionSliceLongerThanDeltaIsCorruption) {
  const SectionLoc start = FindSection(bytes_, "dc.a.start");
  ASSERT_TRUE(start.found);
  const uint64_t count = start.stored_length / sizeof(uint32_t);
  ASSERT_GE(count, 3u);
  const uint32_t delta = ReadU32(bytes_, 28);
  const uint32_t total =
      ReadU32(bytes_, start.offset + (std::size_t{count} - 1) * 4);
  ASSERT_GT(total, delta) << "fixture graph too small for this craft";
  // Zero every interior bound: still non-decreasing, same total, but the
  // last vertex now owns all Σ Levels values — far more than δ.
  for (uint64_t v = 1; v + 1 < count; ++v) {
    WriteU32(&bytes_, start.offset + std::size_t{v} * 4, 0);
  }
  ResignSection(&bytes_, "dc.a.start");
  WriteFileBytes(path_, bytes_);
  ExpectOpenFails(Status::Code::kCorruption);
}

// ------------------------------------------- encoded-section corruption --

/// The corruption battery over *encoded* sections: the bundle is saved
/// with compression=max, then the stored streams, codec tags and length
/// fields are tampered with. Every case must fail with a clean Status
/// that names the offending section — never OOB (ASan/UBSan-checked in
/// CI) and never a silently wrong decode.
class CompressedBundleCorruptionTest : public BundleCorruptionTest {
 protected:
  void SetUp() override {
    BundleIoTest::SetUp();
    graph_ = RandomWeightedGraph(25, 25, 200, 13);
    SaveBundleOptions save;
    save.compression = BundleCompression::kMax;
    BuildAndSave(graph_, save);
    bytes_ = ReadFileBytes(path_);
    encoded_ = FindEncodedSection(bytes_);
    ASSERT_TRUE(encoded_.found) << "fixture graph compressed no section";
    name_ = SectionNameAt(bytes_, encoded_.record_off);
  }

  SectionLoc encoded_;
  std::string name_;
};

TEST_F(CompressedBundleCorruptionTest, TruncatedEncodedPayloadIsCorruption) {
  // Shorten the stored stream by a few bytes and re-sign everything: only
  // the decoder's own size/underrun accounting can reject this.
  ASSERT_GT(encoded_.stored_length, 8u);
  const uint64_t shortened = encoded_.stored_length - 5;
  std::memcpy(bytes_.data() + encoded_.record_off + 24, &shortened, 8);
  ResignRecord(&bytes_, encoded_.record_off);
  WriteFileBytes(path_, bytes_);
  ExpectOpenFailsNaming(Status::Code::kCorruption, name_);
}

TEST_F(CompressedBundleCorruptionTest, FlippedEncodedByteIsCorruption) {
  // A flipped byte inside the encoded stream must die on the stored-bytes
  // checksum, *before* the decoder ever parses the tampered stream.
  bytes_[encoded_.offset + encoded_.stored_length / 2] ^= 0x20;
  WriteFileBytes(path_, bytes_);
  ExpectOpenFailsNaming(Status::Code::kCorruption, name_);
}

TEST_F(CompressedBundleCorruptionTest, UnknownCodecTagIsCorruption) {
  const uint32_t bogus = 57;
  std::memcpy(bytes_.data() + encoded_.record_off + 48, &bogus, 4);
  FixMetaChecksum(&bytes_);
  WriteFileBytes(path_, bytes_);
  ExpectOpenFailsNaming(Status::Code::kCorruption, name_);
}

TEST_F(CompressedBundleCorruptionTest, WrongCodecTagIsCorruption) {
  // Swap the tag for the *other* valid codec (stream bytes untouched, all
  // checksums re-signed): the decoder parses a well-checksummed stream of
  // the wrong shape and must fail its own structural accounting.
  const uint32_t other = encoded_.codec == 1 ? 2 : 1;
  std::memcpy(bytes_.data() + encoded_.record_off + 48, &other, 4);
  FixMetaChecksum(&bytes_);
  WriteFileBytes(path_, bytes_);
  ExpectOpenFailsNaming(Status::Code::kCorruption, name_);
}

TEST_F(CompressedBundleCorruptionTest, DecodedLengthMismatchIsCorruption) {
  // Grow the claimed decoded length by one whole element (id entries are
  // 12 bytes): the element-count and codec accounting must catch the lie.
  const SectionLoc entries = FindSection(bytes_, "id.a.entries");
  ASSERT_TRUE(entries.found);
  ASSERT_NE(entries.codec, 0u) << "fixture entries section stayed raw";
  const uint64_t grown = entries.decoded_length + 12;
  std::memcpy(bytes_.data() + entries.record_off + 32, &grown, 8);
  FixMetaChecksum(&bytes_);
  WriteFileBytes(path_, bytes_);
  ExpectOpenFailsNaming(Status::Code::kCorruption, "id.a.entries");
}

TEST_F(CompressedBundleCorruptionTest, VarintOverrunPastSectionEndIsClean) {
  // Force the delta-varint decoder over a stream that runs out of bytes
  // mid-sequence: tag an encoded section as delta-varint and zero its
  // payload — every 0x00 byte is one whole varint, and the bit-packed
  // stream is far shorter than one byte per decoded value, so the decoder
  // exhausts the section before producing its values. It must stop at the
  // section end with a clean named Status, not read on.
  const SectionLoc entries = FindSection(bytes_, "id.a.entries");
  ASSERT_TRUE(entries.found);
  ASSERT_NE(entries.codec, 0u);
  ASSERT_LT(entries.stored_length, entries.decoded_length / 4)
      << "stream not shorter than one byte per value; craft impossible";
  const uint32_t delta_varint = 1;
  std::memcpy(bytes_.data() + entries.record_off + 48, &delta_varint, 4);
  std::memset(bytes_.data() + entries.offset, 0, entries.stored_length);
  ResignRecord(&bytes_, entries.record_off);
  WriteFileBytes(path_, bytes_);
  ExpectOpenFailsNaming(Status::Code::kCorruption, "id.a.entries");
}

TEST_F(CompressedBundleCorruptionTest, RawLengthDisagreementIsCorruption) {
  // A record claiming raw but with stored != decoded is structurally
  // impossible; find a raw record and bump only its decoded length.
  uint32_t count = 0;
  std::memcpy(&count, bytes_.data() + 12, sizeof(count));
  std::size_t raw_rec = 0;
  for (uint32_t i = 0; i < count; ++i) {
    const SectionLoc loc =
        ReadRecord(bytes_, kTocStart + std::size_t{i} * kRecordBytes);
    if (loc.codec == 0 && loc.stored_length > 0) {
      raw_rec = loc.record_off;
      break;
    }
  }
  ASSERT_NE(raw_rec, 0u);
  const SectionLoc loc = ReadRecord(bytes_, raw_rec);
  const uint64_t grown = loc.decoded_length + 8;
  std::memcpy(bytes_.data() + raw_rec + 32, &grown, 8);
  FixMetaChecksum(&bytes_);
  WriteFileBytes(path_, bytes_);
  ExpectOpenFailsNaming(Status::Code::kCorruption,
                        SectionNameAt(bytes_, raw_rec));
}

TEST_F(CompressedBundleCorruptionTest, ImplausibleDecodedLengthIsCorruption) {
  // A crafted TOC demanding a gigantic decode pool must be rejected by the
  // plausibility cap before any allocation is attempted.
  const uint64_t huge = uint64_t{1} << 40;
  std::memcpy(bytes_.data() + encoded_.record_off + 32, &huge, 8);
  FixMetaChecksum(&bytes_);
  WriteFileBytes(path_, bytes_);
  ExpectOpenFailsNaming(Status::Code::kCorruption, name_);
}

// A re-signed entry that points a level-τ list at a vertex which does not
// own level τ must be rejected: the query BFS reads the target's level-τ
// slice unchecked, trusting exactly this invariant.
TEST(BundleCraftedEntryTest, EntryTargetWithoutLevelIsCorruption) {
  const std::string path =
      ::testing::TempDir() + "/abcs_bundle_crafted_entry.abcs";
  // Figure 2: the 4×4 complete core has vertices with ≥ 2 levels, the
  // chain vertices have exactly 1 — both populations guaranteed.
  const BipartiteGraph g = testing::PaperFigure2Graph(20);
  const BicoreDecomposition decomp = ComputeBicoreDecomposition(g);
  const DeltaIndex delta = DeltaIndex::Build(g, &decomp);
  const BicoreIndex bicore = BicoreIndex::Build(g, &decomp);
  ASSERT_TRUE(SaveIndexBundle(g, decomp, delta, bicore, path).ok());
  std::string bytes = ReadFileBytes(path);

  const SectionLoc tbase = FindSection(bytes, "id.a.tbase");
  const SectionLoc lstart = FindSection(bytes, "id.a.lstart");
  const SectionLoc entries = FindSection(bytes, "id.a.entries");
  ASSERT_TRUE(tbase.found && lstart.found && entries.found);
  const uint32_t n = ReadU32(bytes, 16) + ReadU32(bytes, 20);
  auto tb = [&](uint32_t v) {
    return ReadU32(bytes, tbase.offset + std::size_t{v} * 4);
  };
  auto levels = [&](uint32_t v) { return tb(v + 1) - tb(v) - 1; };
  // A victim vertex owning level 2 with a non-empty level-2 list, and a
  // target vertex that does not own level 2.
  uint32_t victim = n, target = n;
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t ls_lo =
        ReadU32(bytes, lstart.offset + (std::size_t{tb(v)} + 1) * 4);
    const uint32_t ls_hi =
        ReadU32(bytes, lstart.offset + (std::size_t{tb(v)} + 2) * 4);
    if (victim == n && levels(v) >= 2 && ls_hi > ls_lo) victim = v;
    if (target == n && levels(v) < 2) target = v;
  }
  ASSERT_LT(victim, n);
  ASSERT_LT(target, n);
  const uint32_t entry_idx =
      ReadU32(bytes, lstart.offset + (std::size_t{tb(victim)} + 1) * 4);
  // Entry layout: u32 to, u32 eid, u32 offset (12 bytes).
  WriteU32(&bytes, entries.offset + std::size_t{entry_idx} * 12, target);
  ResignSection(&bytes, "id.a.entries");
  WriteFileBytes(path, bytes);

  std::unique_ptr<IndexBundle> bundle;
  EXPECT_EQ(OpenIndexBundle(path, &bundle).code(),
            Status::Code::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace abcs
