// Model-based test for GraphBuilder / BipartiteGraph: random build
// sequences are replayed against a simple std::map reference model, then
// every CSR accessor is checked against the model.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "graph/bipartite_graph.h"
#include "graph/graph_builder.h"

namespace abcs {
namespace {

class BuilderModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BuilderModelTest, CsrMatchesMapModel) {
  Rng rng(GetParam());
  const uint32_t nu = 1 + static_cast<uint32_t>(rng.NextBounded(30));
  const uint32_t nl = 1 + static_cast<uint32_t>(rng.NextBounded(30));
  const int ops = 1 + static_cast<int>(rng.NextBounded(400));

  GraphBuilder builder;
  std::map<std::pair<uint32_t, uint32_t>, Weight> model;  // kKeepMax
  for (int i = 0; i < ops; ++i) {
    const uint32_t u = static_cast<uint32_t>(rng.NextBounded(nu));
    const uint32_t v = static_cast<uint32_t>(rng.NextBounded(nl));
    const Weight w = 1.0 + static_cast<double>(rng.NextBounded(1000)) / 7.0;
    builder.AddEdge(u, v, w);
    auto [it, inserted] = model.emplace(std::make_pair(u, v), w);
    if (!inserted) it->second = std::max(it->second, w);
  }
  ASSERT_EQ(builder.NumPendingEdges(), static_cast<std::size_t>(ops));

  BipartiteGraph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  ASSERT_EQ(g.NumEdges(), model.size());

  // Edge set and weights match the model exactly.
  std::map<std::pair<uint32_t, uint32_t>, Weight> seen;
  for (const Edge& e : g.Edges()) {
    ASSERT_TRUE(g.IsUpper(e.u));
    ASSERT_FALSE(g.IsUpper(e.v));
    seen[{e.u, e.v - g.NumUpper()}] = e.w;
  }
  EXPECT_EQ(seen, model);

  // Degrees and adjacency agree with the model.
  std::map<VertexId, std::set<VertexId>> adj_model;
  for (const auto& [uv, w] : model) {
    (void)w;
    adj_model[uv.first].insert(g.NumUpper() + uv.second);
    adj_model[g.NumUpper() + uv.second].insert(uv.first);
  }
  uint64_t arc_count = 0;
  for (VertexId x = 0; x < g.NumVertices(); ++x) {
    const auto it = adj_model.find(x);
    const std::size_t expect = (it == adj_model.end()) ? 0 : it->second.size();
    ASSERT_EQ(g.Degree(x), expect) << "x=" << x;
    VertexId prev = 0;
    bool first = true;
    for (const Arc& a : g.Neighbors(x)) {
      ++arc_count;
      EXPECT_TRUE(it->second.count(a.to)) << "x=" << x << " to=" << a.to;
      // Sorted adjacency, and the eid round-trips through Edges().
      if (!first) {
        EXPECT_LT(prev, a.to);
      }
      prev = a.to;
      first = false;
      const Edge& e = g.GetEdge(a.eid);
      EXPECT_TRUE((e.u == x && e.v == a.to) || (e.v == x && e.u == a.to));
    }
  }
  EXPECT_EQ(arc_count, 2ull * g.NumEdges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuilderModelTest,
                         ::testing::Range<uint64_t>(900, 912));

}  // namespace
}  // namespace abcs
