#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/index_io.h"
#include "core/online_query.h"
#include "test_util.h"

namespace abcs {
namespace {

using ::abcs::testing::RandomWeightedGraph;

class IndexIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/abcs_index_io_test.idx";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(IndexIoTest, SaveLoadRoundTripAnswersIdentically) {
  BipartiteGraph g = RandomWeightedGraph(40, 40, 400, 17);
  const DeltaIndex built = DeltaIndex::Build(g);
  ASSERT_TRUE(SaveDeltaIndex(built, g, path_).ok());

  DeltaIndex loaded;
  ASSERT_TRUE(LoadDeltaIndex(path_, g, &loaded).ok());
  EXPECT_EQ(loaded.delta(), built.delta());
  EXPECT_EQ(loaded.MemoryBytes(), built.MemoryBytes());

  Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    const VertexId q = static_cast<VertexId>(rng.NextBounded(80));
    const uint32_t alpha = 1 + static_cast<uint32_t>(rng.NextBounded(6));
    const uint32_t beta = 1 + static_cast<uint32_t>(rng.NextBounded(6));
    EXPECT_TRUE(SameEdgeSet(built.QueryCommunity(q, alpha, beta),
                            loaded.QueryCommunity(q, alpha, beta)));
  }
}

TEST_F(IndexIoTest, RejectsIndexOfDifferentGraph) {
  BipartiteGraph g1 = RandomWeightedGraph(30, 30, 250, 5);
  BipartiteGraph g2 = RandomWeightedGraph(30, 30, 250, 6);  // same shape
  const DeltaIndex built = DeltaIndex::Build(g1);
  ASSERT_TRUE(SaveDeltaIndex(built, g1, path_).ok());
  DeltaIndex loaded;
  const Status st = LoadDeltaIndex(path_, g2, &loaded);
  EXPECT_EQ(st.code(), Status::Code::kCorruption);
}

TEST_F(IndexIoTest, RejectsBadMagic) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "NOTANIDXFILE and then some bytes";
  }
  BipartiteGraph g = RandomWeightedGraph(10, 10, 40, 7);
  DeltaIndex loaded;
  EXPECT_EQ(LoadDeltaIndex(path_, g, &loaded).code(),
            Status::Code::kCorruption);
}

TEST_F(IndexIoTest, RejectsTruncatedFile) {
  BipartiteGraph g = RandomWeightedGraph(20, 20, 120, 8);
  const DeltaIndex built = DeltaIndex::Build(g);
  ASSERT_TRUE(SaveDeltaIndex(built, g, path_).ok());
  // Truncate the payload.
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  DeltaIndex loaded;
  EXPECT_EQ(LoadDeltaIndex(path_, g, &loaded).code(),
            Status::Code::kCorruption);
}

TEST_F(IndexIoTest, MissingFileIsIOError) {
  BipartiteGraph g = RandomWeightedGraph(10, 10, 40, 9);
  DeltaIndex loaded;
  EXPECT_EQ(LoadDeltaIndex("/nonexistent/abc.idx", g, &loaded).code(),
            Status::Code::kIOError);
}

// The ABCSIDX family is deprecated (load-only) behind the ABCSPAK1 bundle;
// these pin the legacy path so previously saved indices keep working and
// keep failing *cleanly* on damage.

TEST_F(IndexIoTest, RejectsWrongFormatVersion) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "ABCSIDX9";  // right family, unknown version
    out << std::string(64, '\0');
  }
  BipartiteGraph g = RandomWeightedGraph(10, 10, 40, 12);
  DeltaIndex loaded;
  EXPECT_EQ(LoadDeltaIndex(path_, g, &loaded).code(),
            Status::Code::kCorruption);
}

TEST_F(IndexIoTest, RejectsFlippedChecksumByte) {
  BipartiteGraph g = RandomWeightedGraph(20, 20, 120, 14);
  const DeltaIndex built = DeltaIndex::Build(g);
  ASSERT_TRUE(SaveDeltaIndex(built, g, path_).ok());
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Layout: magic[8] delta[4] nU[4] nL[4] m[4] checksum[8] — flip one
  // checksum byte; the loader must call the file a mismatch, not crash.
  bytes[24] ^= 0x01;
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  DeltaIndex loaded;
  EXPECT_EQ(LoadDeltaIndex(path_, g, &loaded).code(),
            Status::Code::kCorruption);
}

TEST_F(IndexIoTest, RejectsImplausibleArraySize) {
  BipartiteGraph g = RandomWeightedGraph(20, 20, 120, 15);
  const DeltaIndex built = DeltaIndex::Build(g);
  ASSERT_TRUE(SaveDeltaIndex(built, g, path_).ok());
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // First array's u64 size field sits right after the 32-byte header;
  // blow it past the Lemma-5 cap so the loader rejects before resizing.
  const uint64_t huge = ~uint64_t{0} / 2;
  std::memcpy(bytes.data() + 32, &huge, sizeof(huge));
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  DeltaIndex loaded;
  EXPECT_EQ(LoadDeltaIndex(path_, g, &loaded).code(),
            Status::Code::kCorruption);
}

TEST(TopologyChecksumTest, SensitiveToTopologyNotWeights) {
  BipartiteGraph g = RandomWeightedGraph(20, 20, 150, 10);
  const uint64_t base = GraphTopologyChecksum(g);
  // Same topology, different weights: checksum unchanged (I_δ stores no
  // weights, so a reweighted graph may reuse the index).
  std::vector<Weight> w(g.NumEdges(), 42.0);
  EXPECT_EQ(GraphTopologyChecksum(g.WithWeights(w)), base);
  // Different topology: checksum changes.
  BipartiteGraph g2 = RandomWeightedGraph(20, 20, 150, 11);
  EXPECT_NE(GraphTopologyChecksum(g2), base);
}

TEST(WeightChecksumTest, SensitiveToWeightsExactly) {
  BipartiteGraph g = RandomWeightedGraph(20, 20, 150, 12);
  const uint64_t base = GraphWeightChecksum(g);
  // Deterministic rebuild of the same weights: digest unchanged.
  std::vector<Weight> same(g.Edges().size());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) same[e] = g.GetWeight(e);
  EXPECT_EQ(GraphWeightChecksum(g.WithWeights(same)), base);
  // One edge re-scored: digest changes — the topology checksum's blind
  // spot that the bundle header closes.
  same[0] += 0.5;
  EXPECT_NE(GraphWeightChecksum(g.WithWeights(same)), base);
  EXPECT_EQ(GraphTopologyChecksum(g.WithWeights(same)),
            GraphTopologyChecksum(g));
}

}  // namespace
}  // namespace abcs
