// End-to-end tests for the `abcs serve` daemon over real loopback
// sockets: correctness vs the direct engines, pipelined response
// ordering, the warm memo, deadlines, overload admission control,
// connection limits, protocol-error handling and graceful drain.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "abcore/offsets.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "io/index_bundle.h"
#include "serve/client.h"
#include "serve/server.h"
#include "test_util.h"

namespace abcs::serve {
namespace {

using ::abcs::testing::RandomWeightedGraph;

/// One graph + indexes + running server per fixture instantiation.
struct Harness {
  BipartiteGraph graph;
  DeltaIndex delta;
  BicoreIndex bicore;
  std::unique_ptr<Server> server;

  explicit Harness(ServerOptions options = {}, uint32_t nu = 60,
                   uint32_t nl = 60, uint32_t m = 700)
      : graph(RandomWeightedGraph(nu, nl, m, 1729)),
        delta(DeltaIndex::Build(graph)),
        bicore(BicoreIndex::Build(graph)) {
    server = std::make_unique<Server>(graph, &delta, &bicore, options);
    const Status st = server->Start();
    if (!st.ok()) {
      ADD_FAILURE() << "server start failed: " << st.ToString();
    }
  }

  ~Harness() {
    if (server != nullptr) server->Shutdown();
  }

  Client Connect() {
    Client client;
    const Status st = client.Connect("127.0.0.1", server->port());
    if (!st.ok()) ADD_FAILURE() << "connect failed: " << st.ToString();
    return client;
  }

  WireRequest Request(VertexId unified_q, uint32_t alpha, uint32_t beta,
                      WireMethod method = WireMethod::kDelta) const {
    WireRequest req;
    req.method = method;
    req.lower_side = !graph.IsUpper(unified_q);
    req.q = req.lower_side ? unified_q - graph.NumUpper() : unified_q;
    req.alpha = alpha;
    req.beta = beta;
    return req;
  }
};

TEST(ServeServerTest, AnswersMatchDirectQueriesForEveryMethod) {
  Harness h;
  Client client = h.Connect();
  for (VertexId q = 0; q < h.graph.NumVertices(); q += 7) {
    for (uint32_t ab = 1; ab <= 3; ++ab) {
      const Subgraph expect = h.delta.QueryCommunity(q, ab, ab);
      for (const WireMethod method :
           {WireMethod::kOnline, WireMethod::kBicore, WireMethod::kDelta}) {
        WireResponse resp;
        ASSERT_TRUE(client.Call(h.Request(q, ab, ab, method), &resp).ok());
        ASSERT_EQ(resp.status, WireStatus::kOk);
        ASSERT_EQ(resp.num_edges, expect.edges.size())
            << "q=" << q << " ab=" << ab
            << " method=" << WireMethodName(method);
        ASSERT_EQ(resp.found, !expect.edges.empty());
      }
    }
  }
}

TEST(ServeServerTest, PipelinedResponsesArriveInRequestOrder) {
  ServerOptions options;
  options.num_threads = 4;  // plenty of reordering opportunity
  options.enable_memo = false;
  Harness h(options);
  Client client = h.Connect();

  std::vector<WireRequest> requests;
  std::vector<uint32_t> expect_edges;
  for (VertexId q = 0; q < h.graph.NumVertices(); ++q) {
    const uint32_t ab = 1 + (q % 3);
    requests.push_back(h.Request(q, ab, ab));
    expect_edges.push_back(static_cast<uint32_t>(
        h.delta.QueryCommunity(q, ab, ab).edges.size()));
  }
  ASSERT_TRUE(client.SendAll(requests).ok());
  std::vector<WireResponse> responses;
  ASSERT_TRUE(client.ReceiveAll(requests.size(), &responses).ok());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(responses[i].status, WireStatus::kOk) << i;
    // Distinct expected sizes across neighbours make a reordering visible.
    ASSERT_EQ(responses[i].num_edges, expect_edges[i]) << "response " << i;
  }
}

TEST(ServeServerTest, MemoHitsAreBitIdenticalAndInvalidate) {
  Harness h;
  Client client = h.Connect();
  // Find a vertex with a nonempty community.
  WireRequest req;
  WireResponse first;
  bool found = false;
  for (VertexId q = 0; q < h.graph.NumVertices() && !found; ++q) {
    req = h.Request(q, 2, 2);
    ASSERT_TRUE(client.Call(req, &first).ok());
    found = first.found;
  }
  ASSERT_TRUE(found) << "no nonempty (2,2)-community in the test graph";
  EXPECT_FALSE(first.memo_hit);

  WireResponse second;
  ASSERT_TRUE(client.Call(req, &second).ok());
  EXPECT_TRUE(second.memo_hit);
  EXPECT_EQ(second.num_edges, first.num_edges);
  EXPECT_EQ(second.found, first.found);

  h.server->memo().Invalidate();
  WireResponse third;
  ASSERT_TRUE(client.Call(req, &third).ok());
  EXPECT_FALSE(third.memo_hit);
  EXPECT_EQ(third.num_edges, first.num_edges);
}

TEST(ServeServerTest, ScsMethodsServeAndMemoExactRepeats) {
  Harness h;
  Client client = h.Connect();
  for (VertexId q = 0; q < h.graph.NumVertices(); ++q) {
    WireRequest req = h.Request(q, 2, 2, WireMethod::kScsAuto);
    WireResponse resp;
    ASSERT_TRUE(client.Call(req, &resp).ok());
    ASSERT_EQ(resp.status, WireStatus::kOk);
    if (!resp.found) continue;
    EXPECT_GT(resp.result_edges, 0u);
    EXPECT_GT(resp.significance, 0.0);
    EXPECT_LE(resp.result_edges, resp.num_edges);
    WireResponse repeat;
    ASSERT_TRUE(client.Call(req, &repeat).ok());
    EXPECT_TRUE(repeat.memo_hit);
    EXPECT_EQ(repeat.significance, resp.significance);  // exact bits
    EXPECT_EQ(repeat.result_edges, resp.result_edges);
    EXPECT_EQ(repeat.kernel, resp.kernel);
    return;
  }
  GTEST_SKIP() << "no significant (2,2)-community in the test graph";
}

TEST(ServeServerTest, InvalidVertexAndBadPayloadAreRecoverable) {
  Harness h;
  Client client = h.Connect();
  // Out-of-range vertex: clean error, connection stays usable.
  WireRequest req = h.Request(0, 1, 1);
  req.q = h.graph.NumUpper() + 12345;
  WireResponse resp;
  ASSERT_TRUE(client.Call(req, &resp).ok());
  EXPECT_EQ(resp.status, WireStatus::kInvalidVertex);
  ASSERT_TRUE(client.Ping().ok());
}

TEST(ServeServerTest, QueueDeadlineExpiresUnderBacklog) {
  ServerOptions options;
  options.num_threads = 1;  // one worker: backlog forms deterministically
  options.enable_memo = false;
  Harness h(options, 120, 120, 2500);
  Client client = h.Connect();

  // Pipeline a pile of online queries (the slow method), then one request
  // whose queue deadline is 1 ms — it cannot reach the single worker in
  // time and must be answered kDeadlineExceeded without being executed.
  std::vector<WireRequest> requests;
  for (int i = 0; i < 2000; ++i) {
    requests.push_back(h.Request(static_cast<VertexId>(
                                     i % h.graph.NumVertices()),
                                 1, 1, WireMethod::kOnline));
  }
  WireRequest hurried = h.Request(0, 1, 1);
  hurried.deadline_ms = 1;
  requests.push_back(hurried);

  ASSERT_TRUE(client.SendAll(requests).ok());
  std::vector<WireResponse> responses;
  ASSERT_TRUE(client.ReceiveAll(requests.size(), &responses).ok());
  for (std::size_t i = 0; i + 1 < responses.size(); ++i) {
    ASSERT_EQ(responses[i].status, WireStatus::kOk) << i;
  }
  EXPECT_EQ(responses.back().status, WireStatus::kDeadlineExceeded);
  EXPECT_GE(h.server->Stats().deadline_expired, 1u);
}

TEST(ServeServerTest, TinyQueueAnswersOverloadedNotSilence) {
  ServerOptions options;
  options.num_threads = 1;
  options.max_queue = 1;  // admission control tripwire
  options.enable_memo = false;
  Harness h(options, 120, 120, 2500);
  Client client = h.Connect();

  std::vector<WireRequest> requests;
  for (int i = 0; i < 500; ++i) {
    requests.push_back(h.Request(static_cast<VertexId>(
                                     i % h.graph.NumVertices()),
                                 1, 1, WireMethod::kOnline));
  }
  ASSERT_TRUE(client.SendAll(requests).ok());
  std::vector<WireResponse> responses;
  // Every request gets exactly one response, ok or overloaded — overload
  // sheds load, it never drops a request on the floor.
  ASSERT_TRUE(client.ReceiveAll(requests.size(), &responses).ok());
  uint64_t ok = 0, overloaded = 0;
  for (const WireResponse& resp : responses) {
    ASSERT_TRUE(resp.status == WireStatus::kOk ||
                resp.status == WireStatus::kOverloaded);
    ++(resp.status == WireStatus::kOk ? ok : overloaded);
  }
  EXPECT_GT(ok, 0u);
  // The reader outruns a single worker on slow queries through a
  // one-slot queue; shedding is all but guaranteed.
  EXPECT_GT(overloaded, 0u);
  EXPECT_EQ(h.server->Stats().overloaded, overloaded);
}

TEST(ServeServerTest, ConnectionLimitRejectsExtraClients) {
  ServerOptions options;
  options.max_connections = 1;
  Harness h(options);
  Client first = h.Connect();
  ASSERT_TRUE(first.Ping().ok());

  Client second;
  ASSERT_TRUE(second.Connect("127.0.0.1", h.server->port()).ok());
  // The server accepts then immediately closes over-limit connections;
  // the ping fails with EOF (or a send error, depending on timing).
  EXPECT_FALSE(second.Ping().ok());
  EXPECT_GE(h.server->Stats().connections_rejected, 1u);
  // The first connection is unaffected.
  ASSERT_TRUE(first.Ping().ok());
}

TEST(ServeServerTest, PoisonedFramingKillsOnlyThatConnection) {
  Harness h;
  Client healthy = h.Connect();

  // Raw socket: a length prefix beyond kMaxFramePayload.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(h.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const uint32_t evil = 0x7fffffffu;
  ASSERT_EQ(::send(fd, &evil, sizeof(evil), 0),
            static_cast<ssize_t>(sizeof(evil)));
  // The server kills the connection: recv sees EOF.
  char buf[16];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);

  // Other connections are untouched.
  ASSERT_TRUE(healthy.Ping().ok());
}

TEST(ServeServerTest, GracefulShutdownDrainsAdmittedRequests) {
  ServerOptions options;
  options.num_threads = 2;
  options.enable_memo = false;
  Harness h(options, 120, 120, 2500);
  Client client = h.Connect();

  std::vector<WireRequest> requests;
  for (int i = 0; i < 300; ++i) {
    requests.push_back(h.Request(static_cast<VertexId>(
                                     i % h.graph.NumVertices()),
                                 1, 1, WireMethod::kOnline));
  }
  ASSERT_TRUE(client.SendAll(requests).ok());
  // Wait until every request is admitted (decoded and counted), so the
  // drain guarantee — not the reader — is what is under test.
  while (h.server->Stats().requests < requests.size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  h.server->Shutdown();

  std::vector<WireResponse> responses;
  ASSERT_TRUE(client.ReceiveAll(requests.size(), &responses).ok());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_EQ(responses[i].status, WireStatus::kOk) << i;
  }
  const ServeStats stats = h.server->Stats();
  EXPECT_EQ(stats.responses_ok, requests.size());
}

TEST(ServeServerTest, HealthProbeReportsLiveStateAndCounters) {
  Harness h;
  Client client = h.Connect();
  // Some traffic first so the counters have moved.
  WireResponse resp;
  ASSERT_TRUE(client.Call(h.Request(0, 1, 1), &resp).ok());

  WireHealth health;
  ASSERT_TRUE(client.Health(&health).ok());
  EXPECT_EQ(health.state, HealthState::kLive);
  EXPECT_EQ(health.connections, 1u);
  EXPECT_GE(health.requests, 1u);
  EXPECT_EQ(health.epoch, 1u);  // static serving publishes epoch 1
  EXPECT_EQ(health.slow_client_dropped, 0u);
  EXPECT_GE(h.server->Stats().health_probes, 1u);

  // Health interleaves with pipelined queries through the sequencer, and
  // the regular query stream keeps decoding around the bigger frame.
  ASSERT_TRUE(client.Call(h.Request(0, 1, 1), &resp).ok());
  EXPECT_EQ(resp.status, WireStatus::kOk);
  ASSERT_TRUE(client.Health(&health).ok());
  EXPECT_EQ(health.state, HealthState::kLive);
}

TEST(ServeServerTest, ConnectRefusedAndConnectTimeoutAreTyped) {
  // Refused: nothing listens on the reserved port 1 on loopback.
  ClientOptions copts;
  copts.connect_timeout_ms = 2000;
  copts.max_attempts = 1;
  Client client(copts);
  const Status st = client.Connect("127.0.0.1", 1);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(client.connected());
}

TEST(ServeServerTest, InFlightDeadlineBudgetAnswersEverythingAndWorkerLives) {
  ServerOptions options;
  options.num_threads = 1;  // one worker: the budget is what frees it
  options.enable_memo = false;
  Harness h(options, 120, 120, 2500);
  Client client = h.Connect();

  // Every request carries a 1 ms end-to-end budget over the slow method.
  // The head of the line blows it inside the kernel, the tail expires in
  // the queue — either way each request is answered, nothing hangs.
  std::vector<WireRequest> requests;
  for (int i = 0; i < 64; ++i) {
    WireRequest req = h.Request(
        static_cast<VertexId>(i % h.graph.NumVertices()), 1, 1,
        WireMethod::kOnline);
    req.deadline_ms = 1;
    requests.push_back(req);
  }
  ASSERT_TRUE(client.SendAll(requests).ok());
  std::vector<WireResponse> responses;
  ASSERT_TRUE(client.ReceiveAll(requests.size(), &responses).ok());
  uint64_t exceeded = 0;
  for (const WireResponse& resp : responses) {
    ASSERT_TRUE(resp.status == WireStatus::kOk ||
                resp.status == WireStatus::kDeadlineExceeded);
    if (resp.status == WireStatus::kDeadlineExceeded) {
      ++exceeded;
      EXPECT_EQ(resp.num_edges, 0u);  // budget-blown queries answer empty
      EXPECT_FALSE(resp.found);
    }
  }
  EXPECT_GE(exceeded, 1u);
  EXPECT_EQ(h.server->Stats().deadline_expired, exceeded);

  // The worker survived the unwinds: an undeadlined query on the same
  // connection answers bit-identically to the direct engine.
  const VertexId probe = 5;
  const Subgraph expect = h.delta.QueryCommunity(probe, 2, 2);
  WireResponse resp;
  ASSERT_TRUE(client.Call(h.Request(probe, 2, 2), &resp).ok());
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(resp.num_edges, expect.edges.size());
  EXPECT_EQ(h.server->Stats().stuck_cancelled, 0u);
}

TEST(ServeServerTest, FastDrainAnswersBacklogWithDeadlineExceeded) {
  ServerOptions options;
  options.num_threads = 1;
  options.enable_memo = false;
  options.fast_drain = true;
  // Big enough that 2000 online queries are several hundred ms of compute
  // for the single worker: the backlog cannot clear inside Shutdown's
  // pre-drain steps, so queued tasks remain when the fast-drain flag
  // flips.
  Harness h(options, 200, 200, 8000);
  Client client = h.Connect();
  std::vector<WireRequest> requests;
  for (int i = 0; i < 2000; ++i) {
    requests.push_back(h.Request(static_cast<VertexId>(
                                     i % h.graph.NumVertices()),
                                 1, 1, WireMethod::kOnline));
  }
  ASSERT_TRUE(client.SendAll(requests).ok());
  // Wait for full admission so the drain path — not the reader — decides
  // every fate.
  while (h.server->Stats().requests < requests.size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  h.server->Shutdown();

  // Fast drain keeps the every-admitted-request-gets-a-response
  // guarantee; the backlog is answered kDeadlineExceeded instead of
  // computed, so the drain completes in bounded time.
  std::vector<WireResponse> responses;
  ASSERT_TRUE(client.ReceiveAll(requests.size(), &responses).ok());
  uint64_t ok = 0, exceeded = 0;
  for (const WireResponse& resp : responses) {
    ASSERT_TRUE(resp.status == WireStatus::kOk ||
                resp.status == WireStatus::kDeadlineExceeded);
    ++(resp.status == WireStatus::kOk ? ok : exceeded);
  }
  EXPECT_EQ(ok + exceeded, requests.size());
  // A single worker cannot outrun the reader on 300 slow queries; the
  // bulk of the backlog must have been fast-drained.
  EXPECT_GE(exceeded, 1u);
  EXPECT_GE(h.server->Stats().deadline_expired, exceeded);
}

TEST(ServeServerTest, ScrubberQuarantinesCorruptBundleAndRecoversFromPrev) {
  const BipartiteGraph graph = RandomWeightedGraph(60, 60, 700, 1729);
  const BicoreDecomposition decomp = ComputeBicoreDecomposition(graph);
  const DeltaIndex delta = DeltaIndex::Build(graph, &decomp);
  const BicoreIndex bicore = BicoreIndex::Build(graph, &decomp);

  const std::string path = ::testing::TempDir() + "abcs_scrub_test.bundle";
  ::unlink(path.c_str());
  ::unlink((path + ".prev").c_str());
  ::unlink((path + ".quarantined").c_str());
  SaveBundleOptions save;
  ASSERT_TRUE(SaveIndexBundle(graph, decomp, delta, bicore, path, save).ok());
  save.keep_previous = true;  // second save rotates the first to .prev
  ASSERT_TRUE(SaveIndexBundle(graph, decomp, delta, bicore, path, save).ok());

  ServerOptions options;
  options.enable_memo = false;
  options.bundle_path = path;
  options.scrub_interval_ms = 10;
  Server server(graph, &delta, &bicore, options);
  ASSERT_TRUE(server.Start().ok());

  // At least one clean pass first: scrubbing a healthy bundle is silent.
  const auto wait_until = [&](auto pred) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!pred() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return pred();
  };
  ASSERT_TRUE(wait_until([&] { return server.Stats().scrub_passes >= 1; }));
  EXPECT_EQ(server.Stats().scrub_corruptions, 0u);

  // Flip one payload byte in the primary. The next pass must detect the
  // checksum mismatch, quarantine the file and re-open from .prev while
  // the pinned in-memory snapshot keeps serving.
  {
    struct stat st{};
    ASSERT_EQ(::stat(path.c_str(), &st), 0);
    const int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    const off_t target = st.st_size / 2;
    char byte = 0;
    ASSERT_EQ(::pread(fd, &byte, 1, target), 1);
    byte = static_cast<char>(byte ^ 0xff);
    ASSERT_EQ(::pwrite(fd, &byte, 1, target), 1);
    ::close(fd);
  }
  ASSERT_TRUE(wait_until([&] { return server.Stats().scrub_recoveries >= 1; }));
  const ServeStats stats = server.Stats();
  EXPECT_GE(stats.scrub_corruptions, 1u);
  EXPECT_EQ(server.snapshots().Epoch(), 2u);  // recovery published epoch 2
  struct stat st{};
  EXPECT_EQ(::stat((path + ".quarantined").c_str(), &st), 0)
      << "corrupt bundle was not quarantined";

  // Queries on the recovered snapshot match the direct engine, and the
  // probe reports live again (the corruption flag cleared on recovery).
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (VertexId q = 0; q < graph.NumVertices(); q += 11) {
    WireRequest req;
    req.method = WireMethod::kDelta;
    req.lower_side = !graph.IsUpper(q);
    req.q = req.lower_side ? q - graph.NumUpper() : q;
    req.alpha = 2;
    req.beta = 2;
    WireResponse resp;
    ASSERT_TRUE(client.Call(req, &resp).ok());
    ASSERT_EQ(resp.status, WireStatus::kOk);
    ASSERT_EQ(resp.num_edges, delta.QueryCommunity(q, 2, 2).edges.size())
        << "q=" << q;
    ASSERT_EQ(resp.epoch, 2u);
  }
  WireHealth health;
  ASSERT_TRUE(client.Health(&health).ok());
  EXPECT_EQ(health.state, HealthState::kLive);

  server.Shutdown();
  ::unlink(path.c_str());
  ::unlink((path + ".prev").c_str());
  ::unlink((path + ".quarantined").c_str());
}

TEST(ServeServerTest, ScrubberConfigIsValidatedAtStart) {
  const BipartiteGraph graph = RandomWeightedGraph(20, 20, 80, 7);
  const DeltaIndex delta = DeltaIndex::Build(graph);
  const BicoreIndex bicore = BicoreIndex::Build(graph);
  ServerOptions options;
  options.scrub_interval_ms = 10;  // no bundle_path: nothing to scrub
  Server server(graph, &delta, &bicore, options);
  const Status st = server.Start();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument) << st.ToString();
}

TEST(ServeServerTest, RequestShutdownFlagIsObservable) {
  Harness h;
  EXPECT_FALSE(h.server->ShutdownRequested());
  h.server->RequestShutdown();  // what the SIGTERM handler does
  EXPECT_TRUE(h.server->ShutdownRequested());
  h.server->WaitForShutdownRequest();  // returns immediately
  h.server->Shutdown();
}

}  // namespace
}  // namespace abcs::serve
