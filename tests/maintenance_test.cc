#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "abcore/offsets.h"
#include "core/maintenance.h"
#include "core/online_query.h"
#include "graph/generators.h"
#include "test_util.h"

namespace abcs {
namespace {

using ::abcs::testing::MakeGraph;
using ::abcs::testing::RandomWeightedGraph;

/// Checks the dynamic index's offset tables and δ against a full
/// recomputation on the exported snapshot.
void ExpectConsistentWithRebuild(const DynamicDeltaIndex& dyn,
                                 const std::string& context) {
  const BipartiteGraph snapshot = dyn.ExportGraph();
  const BicoreDecomposition ref = ComputeBicoreDecomposition(snapshot);
  ASSERT_EQ(dyn.delta(), ref.delta) << context;
  for (uint32_t tau = 1; tau <= ref.delta; ++tau) {
    for (VertexId v = 0; v < snapshot.NumVertices(); ++v) {
      ASSERT_EQ(dyn.OffsetAlpha(tau, v), ref.sa(tau, v))
          << context << " sa tau=" << tau << " v=" << v;
      ASSERT_EQ(dyn.OffsetBeta(tau, v), ref.sb(tau, v))
          << context << " sb tau=" << tau << " v=" << v;
    }
  }
}

TEST(MaintenanceTest, FreshIndexMatchesStaticDecomposition) {
  BipartiteGraph g = RandomWeightedGraph(20, 20, 150, 1);
  DynamicDeltaIndex dyn(g);
  ExpectConsistentWithRebuild(dyn, "fresh");
  EXPECT_EQ(dyn.NumAliveEdges(), g.NumEdges());
}

TEST(MaintenanceTest, InsertRejectsInvalidEndpoints) {
  BipartiteGraph g = MakeGraph({{0, 0, 1.0}, {1, 1, 1.0}});
  DynamicDeltaIndex dyn(g);
  // (lower, lower) and duplicate edges are rejected.
  EXPECT_FALSE(dyn.InsertEdge(2, 3, 1.0).ok());
  EXPECT_FALSE(dyn.InsertEdge(0, 2, 1.0).ok());  // already exists
  EXPECT_FALSE(dyn.InsertEdge(0, 99, 1.0).ok());
  EXPECT_FALSE(dyn.RemoveEdge(0, 3).ok());  // absent
  EXPECT_EQ(dyn.NumAliveEdges(), 2u);
}

TEST(MaintenanceTest, SingleInsertUpdatesOffsets) {
  // Start with a 2×2 biclique missing one edge; inserting it raises δ
  // from 1 to 2.
  BipartiteGraph g = MakeGraph({{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}});
  DynamicDeltaIndex dyn(g);
  EXPECT_EQ(dyn.delta(), 1u);
  ASSERT_TRUE(dyn.InsertEdge(1, g.LowerId(1), 1.0).ok());
  EXPECT_EQ(dyn.delta(), 2u);
  ExpectConsistentWithRebuild(dyn, "after insert");
}

TEST(MaintenanceTest, SingleRemoveUpdatesOffsetsAndDelta) {
  std::vector<std::tuple<uint32_t, uint32_t, Weight>> triples;
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = 0; j < 3; ++j) triples.push_back({i, j, 1.0});
  }
  BipartiteGraph g = MakeGraph(triples);  // K_{3,3}, δ = 3
  DynamicDeltaIndex dyn(g);
  EXPECT_EQ(dyn.delta(), 3u);
  ASSERT_TRUE(dyn.RemoveEdge(0, g.LowerId(0)).ok());
  EXPECT_EQ(dyn.delta(), 2u);
  ExpectConsistentWithRebuild(dyn, "after remove");
}

class MaintenanceStreamTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaintenanceStreamTest, RandomUpdateStreamStaysConsistent) {
  BipartiteGraph g = RandomWeightedGraph(14, 14, 70, GetParam());
  DynamicDeltaIndex dyn(g);
  Rng rng(GetParam() * 17 + 3);

  std::set<std::pair<VertexId, VertexId>> present;
  for (const Edge& e : g.Edges()) present.insert({e.u, e.v});

  for (int step = 0; step < 60; ++step) {
    const bool insert = present.empty() || rng.NextBounded(100) < 55;
    if (insert) {
      const VertexId u = static_cast<VertexId>(rng.NextBounded(14));
      const VertexId v =
          static_cast<VertexId>(14 + rng.NextBounded(14));
      if (present.count({u, v})) continue;
      ASSERT_TRUE(dyn.InsertEdge(u, v, 1.0 + rng.NextBounded(5)).ok());
      present.insert({u, v});
    } else {
      auto it = present.begin();
      std::advance(it, rng.NextBounded(present.size()));
      ASSERT_TRUE(dyn.RemoveEdge(it->first, it->second).ok());
      present.erase(it);
    }
    ExpectConsistentWithRebuild(dyn,
                                "step " + std::to_string(step) +
                                    (insert ? " (insert)" : " (remove)"));
  }
  EXPECT_EQ(dyn.NumAliveEdges(), present.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaintenanceStreamTest,
                         ::testing::Values(401, 402, 403, 404, 405));

TEST(MaintenanceTest, SkewedTopologyUpdateStream) {
  // Chung–Lu hubs give the fixed-side offsets room to jump several levels
  // per update — the regime that broke naive ±1 maintenance.
  BipartiteGraph topo;
  ASSERT_TRUE(GenChungLuBipartite(25, 25, 160, 1.9, 2.4, 7, &topo).ok());
  DynamicDeltaIndex dyn(topo);
  Rng rng(99);
  std::set<std::pair<VertexId, VertexId>> present;
  for (const Edge& e : topo.Edges()) present.insert({e.u, e.v});
  for (int step = 0; step < 40; ++step) {
    if (rng.NextBounded(2) == 0) {
      const VertexId u = static_cast<VertexId>(rng.NextBounded(25));
      const VertexId v = static_cast<VertexId>(25 + rng.NextBounded(25));
      if (present.count({u, v})) continue;
      ASSERT_TRUE(dyn.InsertEdge(u, v, 1.0).ok());
      present.insert({u, v});
    } else if (!present.empty()) {
      auto it = present.begin();
      std::advance(it, rng.NextBounded(present.size()));
      ASSERT_TRUE(dyn.RemoveEdge(it->first, it->second).ok());
      present.erase(it);
    }
    ExpectConsistentWithRebuild(dyn, "skewed step " + std::to_string(step));
  }
}

TEST(MaintenanceTest, QueryMatchesOnlineOnSnapshot) {
  BipartiteGraph g = RandomWeightedGraph(18, 18, 120, 11);
  DynamicDeltaIndex dyn(g);
  Rng rng(77);
  // Mutate a bit first.
  for (int i = 0; i < 15; ++i) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(18));
    const VertexId v = static_cast<VertexId>(18 + rng.NextBounded(18));
    (void)dyn.InsertEdge(u, v, 2.0);  // may fail if duplicate — fine
  }
  const BipartiteGraph snapshot = dyn.ExportGraph();
  for (int trial = 0; trial < 25; ++trial) {
    const VertexId q = static_cast<VertexId>(rng.NextBounded(36));
    const uint32_t alpha = 1 + static_cast<uint32_t>(rng.NextBounded(4));
    const uint32_t beta = 1 + static_cast<uint32_t>(rng.NextBounded(4));
    const Subgraph dyn_c = dyn.QueryCommunity(q, alpha, beta);
    const Subgraph ref_c = QueryCommunityOnline(snapshot, q, alpha, beta);
    // Edge ids differ between the dynamic table and the snapshot; compare
    // endpoint multisets.
    std::multiset<std::pair<VertexId, VertexId>> a, b;
    for (EdgeId e : dyn_c.edges) {
      a.insert({dyn.GetEdge(e).u, dyn.GetEdge(e).v});
    }
    for (EdgeId e : ref_c.edges) {
      b.insert({snapshot.GetEdge(e).u, snapshot.GetEdge(e).v});
    }
    EXPECT_EQ(a, b) << "q=" << q << " a=" << alpha << " b=" << beta;
  }
}

TEST(MaintenanceTest, InsertThenRemoveIsIdempotentOnOffsets) {
  BipartiteGraph g = RandomWeightedGraph(16, 16, 100, 13);
  DynamicDeltaIndex dyn(g);
  const BicoreDecomposition before = ComputeBicoreDecomposition(g);
  // Pick a non-edge.
  VertexId u = 0, v = 0;
  for (u = 0; u < 16 && v == 0; ++u) {
    for (uint32_t j = 0; j < 16; ++j) {
      bool exists = false;
      for (const Arc& a : g.Neighbors(u)) {
        if (a.to == g.LowerId(j)) exists = true;
      }
      if (!exists) {
        v = g.LowerId(j);
        break;
      }
    }
    if (v != 0) break;
  }
  ASSERT_NE(v, 0u);
  ASSERT_TRUE(dyn.InsertEdge(u, v, 3.0).ok());
  ASSERT_TRUE(dyn.RemoveEdge(u, v).ok());
  ASSERT_EQ(dyn.delta(), before.delta);
  for (uint32_t tau = 1; tau <= before.delta; ++tau) {
    for (VertexId x = 0; x < g.NumVertices(); ++x) {
      EXPECT_EQ(dyn.OffsetAlpha(tau, x), before.sa(tau, x));
      EXPECT_EQ(dyn.OffsetBeta(tau, x), before.sb(tau, x));
    }
  }
}

}  // namespace
}  // namespace abcs
