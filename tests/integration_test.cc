#include <gtest/gtest.h>

#include <algorithm>

#include "abcore/degeneracy.h"
#include "abcore/peeling.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "core/online_query.h"
#include "core/scs_expand.h"
#include "core/scs_peel.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "models/cstar.h"
#include "models/metrics.h"
#include "test_util.h"

namespace abcs {
namespace {

/// End-to-end pipeline on a registry dataset: generate → decompose →
/// index → query communities → extract significant communities, checking
/// the paper's invariants at every step.
TEST(IntegrationTest, EndToEndOnSmallDataset) {
  DatasetSpec spec = *FindDataset("BS");
  spec.num_edges = 8000;  // shrink for test runtime
  spec.num_upper = 1500;
  spec.num_lower = 3500;
  BipartiteGraph g;
  ASSERT_TRUE(MakeDataset(spec, &g).ok());

  const BicoreDecomposition decomp = ComputeBicoreDecomposition(g);
  ASSERT_GE(decomp.delta, 2u);
  const DeltaIndex index = DeltaIndex::Build(g, &decomp);
  const BicoreIndex iv = BicoreIndex::Build(g, &decomp);
  EXPECT_EQ(index.delta(), iv.delta());

  const uint32_t alpha = std::max<uint32_t>(2, decomp.delta / 2);
  const uint32_t beta = alpha;

  Rng rng(555);
  int found = 0;
  for (int trial = 0; trial < 50 && found < 10; ++trial) {
    const VertexId q =
        static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    QueryStats opt_stats, online_stats;
    const Subgraph c = index.QueryCommunity(q, alpha, beta, &opt_stats);
    const Subgraph c2 =
        QueryCommunityOnline(g, q, alpha, beta, &online_stats);
    ASSERT_TRUE(SameEdgeSet(c, c2));
    if (c.Empty()) continue;
    ++found;

    // Qopt must touch far fewer arcs than the online peel when the
    // community is small relative to the graph.
    EXPECT_LE(opt_stats.touched_arcs,
              2 * c.Size() + SubgraphVertexSet(g, c).size());
    EXPECT_GE(online_stats.touched_arcs, 2ull * g.NumEdges());

    const ScsResult peel = ScsPeel(g, c, q, alpha, beta);
    const ScsResult expand = ScsExpand(g, c, q, alpha, beta);
    ASSERT_TRUE(peel.found);
    ASSERT_TRUE(expand.found);
    EXPECT_DOUBLE_EQ(peel.significance, expand.significance);
    EXPECT_TRUE(SameEdgeSet(peel.community, expand.community));

    std::string why;
    EXPECT_TRUE(VerifyCommunity(g, peel.community, q, alpha, beta, &why))
        << why;
    EXPECT_LE(peel.community.Size(), c.Size());
  }
  EXPECT_GT(found, 0) << "no nonempty communities found — dataset too thin";
}

/// The effectiveness pipeline: planted communities → genre slice →
/// SC vs (α,β)-core comparison reproduces the paper's qualitative claims.
TEST(IntegrationTest, EffectivenessPipelineQualitativeClaims) {
  PlantedSpec spec;
  spec.num_genres = 2;
  spec.blocks_per_genre = 2;
  spec.users_per_block = 60;
  spec.movies_per_block = 40;
  spec.intra_fraction = 0.85;
  spec.cross_block_ratings = 8;
  spec.binge_users_per_genre = 20;
  spec.binge_ratings = 60;
  spec.casual_users = 300;
  spec.casual_ratings = 5;
  spec.seed = 4242;
  PlantedGraph pg = MakePlantedCommunities(spec);
  PlantedGraph slice = ExtractGenreSlice(pg, 0);
  const BipartiteGraph& g = slice.graph;

  // Query a fan of genre 0, block 0.
  VertexId q = kInvalidVertex;
  for (uint32_t u = 0; u < g.NumUpper(); ++u) {
    if (slice.user_block[u] == 0) {
      q = u;
      break;
    }
  }
  ASSERT_NE(q, kInvalidVertex);

  const uint32_t t = 20;  // α = β = t, well inside the block's core
  const DeltaIndex index = DeltaIndex::Build(g);
  const Subgraph core_c = index.QueryCommunity(q, t, t);
  ASSERT_FALSE(core_c.Empty());
  const ScsResult sc = ScsPeel(g, core_c, q, t, t);
  ASSERT_TRUE(sc.found);

  // SC has a higher minimum and average rating than the raw core.
  const SubgraphStats sc_stats = ComputeStats(g, sc.community);
  const SubgraphStats core_stats = ComputeStats(g, core_c);
  EXPECT_GT(sc_stats.min_weight, core_stats.min_weight);
  EXPECT_GT(sc_stats.avg_weight, core_stats.avg_weight);
  EXPECT_GE(sc_stats.avg_weight, 4.0);

  // SC contains no (or almost no) dislike users, the core contains many
  // (the binge population).
  const uint32_t sc_dislike = CountDislikeUsers(g, sc.community, t);
  const uint32_t core_dislike = CountDislikeUsers(g, core_c, t);
  EXPECT_LT(sc_dislike, core_dislike);

  // SC is far denser than the structure-free C4* community (paper
  // Fig. 6(a): cohesive models vs C4*).
  const Subgraph cstar = QueryCStarCommunity(g, q, 4.0);
  ASSERT_FALSE(cstar.Empty());
  EXPECT_GT(BipartiteDensity(g, sc.community), BipartiteDensity(g, cstar));
}

TEST(IntegrationTest, TableOneStatisticsAreComputable) {
  // δ, αmax, βmax and |R_{δ,δ}| for a small registry graph — the Table I
  // pipeline end to end.
  DatasetSpec spec = *FindDataset("GH");
  spec.num_edges = 6000;
  spec.num_upper = 800;
  spec.num_lower = 1700;
  BipartiteGraph g;
  ASSERT_TRUE(MakeDataset(spec, &g).ok());
  const uint32_t delta = Degeneracy(g);
  EXPECT_GE(delta, 1u);
  const CoreResult rdd = ComputeAlphaBetaCore(g, delta, delta);
  EXPECT_FALSE(rdd.Empty());
  EXPECT_GT(rdd.num_edges, 0u);
  EXPECT_GE(g.MaxUpperDegree(), delta);
  EXPECT_GE(g.MaxLowerDegree(), delta);
}

}  // namespace
}  // namespace abcs
