#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "models/biclique.h"
#include "models/bitruss.h"
#include "models/butterfly.h"
#include "models/cstar.h"
#include "models/metrics.h"
#include "test_util.h"

namespace abcs {
namespace {

using ::abcs::testing::MakeGraph;
using ::abcs::testing::RandomWeightedGraph;

/// O(n²·deg) butterfly reference: common-neighbour pairs.
uint64_t NaiveButterflies(const BipartiteGraph& g) {
  uint64_t total = 0;
  for (VertexId a = 0; a < g.NumUpper(); ++a) {
    for (VertexId b = a + 1; b < g.NumUpper(); ++b) {
      uint64_t common = 0;
      for (const Arc& x : g.Neighbors(a)) {
        for (const Arc& y : g.Neighbors(b)) {
          if (x.to == y.to) ++common;
        }
      }
      total += common * (common - 1) / 2;
    }
  }
  return total;
}

/// Naive per-edge butterfly count by quadruple enumeration.
std::vector<uint64_t> NaivePerEdge(const BipartiteGraph& g) {
  std::vector<uint64_t> bf(g.NumEdges(), 0);
  auto has_edge = [&](VertexId u, VertexId v) -> EdgeId {
    for (const Arc& a : g.Neighbors(u)) {
      if (a.to == v) return a.eid;
    }
    return kInvalidEdge;
  };
  for (VertexId u1 = 0; u1 < g.NumUpper(); ++u1) {
    for (VertexId u2 = u1 + 1; u2 < g.NumUpper(); ++u2) {
      std::vector<std::pair<EdgeId, EdgeId>> commons;
      for (const Arc& a : g.Neighbors(u1)) {
        const EdgeId other = has_edge(u2, a.to);
        if (other != kInvalidEdge) commons.push_back({a.eid, other});
      }
      for (std::size_t i = 0; i < commons.size(); ++i) {
        for (std::size_t j = i + 1; j < commons.size(); ++j) {
          ++bf[commons[i].first];
          ++bf[commons[i].second];
          ++bf[commons[j].first];
          ++bf[commons[j].second];
        }
      }
    }
  }
  return bf;
}

TEST(ButterflyTest, K22HasExactlyOneButterfly) {
  BipartiteGraph g =
      MakeGraph({{0, 0, 1}, {0, 1, 1}, {1, 0, 1}, {1, 1, 1}});
  EXPECT_EQ(CountButterflies(g), 1u);
  for (uint64_t c : CountButterfliesPerEdge(g)) EXPECT_EQ(c, 1u);
}

TEST(ButterflyTest, K33Has9Butterflies) {
  std::vector<std::tuple<uint32_t, uint32_t, Weight>> t;
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = 0; j < 3; ++j) t.push_back({i, j, 1.0});
  }
  BipartiteGraph g = MakeGraph(t);
  EXPECT_EQ(CountButterflies(g), 9u);  // C(3,2)² = 9
  for (uint64_t c : CountButterfliesPerEdge(g)) EXPECT_EQ(c, 4u);
}

TEST(ButterflyTest, MatchesNaiveOnRandomGraphs) {
  for (uint64_t seed : {1, 2, 3, 4}) {
    BipartiteGraph g = RandomWeightedGraph(12, 12, 50, seed);
    EXPECT_EQ(CountButterflies(g), NaiveButterflies(g)) << "seed=" << seed;
    EXPECT_EQ(CountButterfliesPerEdge(g), NaivePerEdge(g)) << "seed=" << seed;
  }
}

// ---------------------------------------------------------------- bitruss --

TEST(BitrussTest, K33BitrussNumbers) {
  std::vector<std::tuple<uint32_t, uint32_t, Weight>> t;
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = 0; j < 3; ++j) t.push_back({i, j, 1.0});
  }
  BipartiteGraph g = MakeGraph(t);
  for (uint64_t phi : BitrussNumbers(g)) EXPECT_EQ(phi, 4u);
}

TEST(BitrussTest, NumbersConsistentWithQuery) {
  // φ(e) ≥ k  ⇔  e survives the targeted k-peel.
  for (uint64_t seed : {5, 6}) {
    BipartiteGraph g = RandomWeightedGraph(12, 12, 60, seed);
    const std::vector<uint64_t> phi = BitrussNumbers(g);
    uint64_t max_phi = 0;
    for (uint64_t p : phi) max_phi = std::max(max_phi, p);
    for (uint64_t k = 1; k <= max_phi + 1; ++k) {
      // Survivors of the k-peel = edges with φ ≥ k: collect via any q and
      // union over components by scanning all vertices.
      std::set<EdgeId> surviving;
      for (VertexId q = 0; q < g.NumVertices(); ++q) {
        for (EdgeId e : QueryBitrussCommunity(g, q, k).edges) {
          surviving.insert(e);
        }
      }
      for (EdgeId e = 0; e < g.NumEdges(); ++e) {
        EXPECT_EQ(surviving.count(e) > 0, phi[e] >= k)
            << "seed=" << seed << " k=" << k << " e=" << e;
      }
    }
  }
}

TEST(BitrussTest, CommunityIsConnectedAndContainsQ) {
  BipartiteGraph g = RandomWeightedGraph(15, 15, 90, 7);
  const Subgraph sub = QueryBitrussCommunity(g, 0, 1);
  if (sub.Empty()) GTEST_SKIP();
  std::vector<VertexId> verts = SubgraphVertexSet(g, sub);
  EXPECT_TRUE(std::binary_search(verts.begin(), verts.end(), VertexId{0}));
}

// --------------------------------------------------------------- biclique --

TEST(BicliqueTest, FindsPlantedBiclique) {
  // A planted K_{5,5} plus noise pendants.
  std::vector<std::tuple<uint32_t, uint32_t, Weight>> t;
  for (uint32_t i = 0; i < 5; ++i) {
    for (uint32_t j = 0; j < 5; ++j) t.push_back({i, j, 1.0});
  }
  t.push_back({5, 0, 1.0});
  t.push_back({0, 5, 1.0});
  BipartiteGraph g = MakeGraph(t);
  const Subgraph sub = QueryBicliqueCommunity(g, 0, 5);
  ASSERT_FALSE(sub.Empty());
  const SubgraphStats stats = ComputeStats(g, sub);
  EXPECT_EQ(stats.num_upper, 5u);
  EXPECT_EQ(stats.num_lower, 5u);
  EXPECT_EQ(sub.Size(), 25u);
}

TEST(BicliqueTest, ResultIsCompleteBipartite) {
  BipartiteGraph g = RandomWeightedGraph(20, 20, 200, 8);
  const Subgraph sub = QueryBicliqueCommunity(g, 0, 1);
  ASSERT_FALSE(sub.Empty());
  const SubgraphStats stats = ComputeStats(g, sub);
  EXPECT_EQ(sub.Size(),
            static_cast<std::size_t>(stats.num_upper) * stats.num_lower);
  // Contains q.
  std::vector<VertexId> verts = SubgraphVertexSet(g, sub);
  EXPECT_TRUE(std::binary_search(verts.begin(), verts.end(), VertexId{0}));
}

TEST(BicliqueTest, MinSideUnsatisfiableReturnsEmpty) {
  BipartiteGraph g = MakeGraph({{0, 0, 1.0}, {0, 1, 1.0}});
  EXPECT_TRUE(QueryBicliqueCommunity(g, 0, 10).Empty());
}

TEST(BicliqueTest, ResultIsMaximal) {
  BipartiteGraph g = RandomWeightedGraph(15, 15, 140, 9);
  const Subgraph sub = QueryBicliqueCommunity(g, 2, 1);
  ASSERT_FALSE(sub.Empty());
  std::set<VertexId> a_side, b_side;
  for (EdgeId e : sub.edges) {
    const Edge& ed = g.GetEdge(e);
    const VertexId qside = g.IsUpper(2) ? ed.u : ed.v;
    const VertexId other = g.IsUpper(2) ? ed.v : ed.u;
    a_side.insert(qside);
    b_side.insert(other);
  }
  // No vertex outside can be added while keeping completeness.
  auto adjacent_to_all = [&](VertexId x, const std::set<VertexId>& set) {
    std::size_t hits = 0;
    for (const Arc& arc : g.Neighbors(x)) hits += set.count(arc.to);
    return hits == set.size();
  };
  for (VertexId x = 0; x < g.NumVertices(); ++x) {
    if (g.IsUpper(x) && !a_side.count(x)) {
      EXPECT_FALSE(adjacent_to_all(x, b_side)) << "x=" << x;
    }
    if (!g.IsUpper(x) && !b_side.count(x)) {
      EXPECT_FALSE(adjacent_to_all(x, a_side)) << "x=" << x;
    }
  }
}

// ------------------------------------------------------------------ cstar --

TEST(CStarTest, KeepsOnlyHighAverageMovies) {
  // v0 avg 4.5 (kept), v1 avg 2.0 (dropped).
  BipartiteGraph g = MakeGraph(
      {{0, 0, 4.0}, {1, 0, 5.0}, {0, 1, 2.0}, {1, 1, 2.0}});
  const Subgraph sub = QueryCStarCommunity(g, 0, 4.0);
  ASSERT_EQ(sub.Size(), 2u);
  for (EdgeId e : sub.edges) {
    EXPECT_EQ(g.GetEdge(e).v, g.LowerId(0));
  }
}

TEST(CStarTest, QueryOutsideReturnsEmpty) {
  BipartiteGraph g = MakeGraph({{0, 0, 1.0}});
  EXPECT_TRUE(QueryCStarCommunity(g, 0, 4.0).Empty());
}

TEST(CStarTest, ComponentOfQOnly) {
  // Two disjoint high-rated stars; q's component excludes the other.
  BipartiteGraph g = MakeGraph(
      {{0, 0, 5.0}, {1, 0, 5.0}, {2, 1, 5.0}, {3, 1, 5.0}});
  const Subgraph sub = QueryCStarCommunity(g, 0, 4.0);
  EXPECT_EQ(sub.Size(), 2u);
}

// ---------------------------------------------------------------- metrics --

TEST(MetricsTest, DensityOfBiclique) {
  std::vector<std::tuple<uint32_t, uint32_t, Weight>> t;
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = 0; j < 4; ++j) t.push_back({i, j, 1.0});
  }
  BipartiteGraph g = MakeGraph(t);
  Subgraph all;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) all.edges.push_back(e);
  EXPECT_DOUBLE_EQ(BipartiteDensity(g, all), 16.0 / 4.0);
  EXPECT_DOUBLE_EQ(AverageUpperDegree(g, all), 4.0);
  EXPECT_DOUBLE_EQ(BipartiteDensity(g, Subgraph{}), 0.0);
}

TEST(MetricsTest, DislikeUsers) {
  // alpha = 5 ⇒ need ≥ 3 good ratings. u0 has 4 good, u1 has 1 good.
  BipartiteGraph g = MakeGraph({{0, 0, 5.0},
                                {0, 1, 4.5},
                                {0, 2, 4.0},
                                {0, 3, 4.0},
                                {1, 0, 4.0},
                                {1, 1, 2.0},
                                {1, 2, 1.0},
                                {1, 3, 2.5}});
  Subgraph all;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) all.edges.push_back(e);
  EXPECT_EQ(CountDislikeUsers(g, all, 5), 1u);
  EXPECT_EQ(CountDislikeUsers(g, all, 1), 0u);  // need ≥ 0.6 good ratings
}

TEST(MetricsTest, JaccardSimilarity) {
  BipartiteGraph g =
      MakeGraph({{0, 0, 1.0}, {1, 1, 1.0}, {0, 1, 1.0}});
  // Edge ids after builder sorting: 0=(u0,v0), 1=(u0,v1), 2=(u1,v1).
  Subgraph a{{0}};        // vertices {u0, v0}
  Subgraph b{{0, 2}};     // vertices {u0, v0, u1, v1}
  EXPECT_DOUBLE_EQ(JaccardVertexSimilarity(g, a, a), 1.0);
  EXPECT_DOUBLE_EQ(JaccardVertexSimilarity(g, a, b), 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(JaccardVertexSimilarity(g, Subgraph{}, Subgraph{}), 1.0);
}

TEST(MetricsTest, ComputeStatsBasics) {
  BipartiteGraph g =
      MakeGraph({{0, 0, 2.0}, {0, 1, 4.0}, {1, 0, 6.0}});
  Subgraph all{{0, 1, 2}};
  const SubgraphStats stats = ComputeStats(g, all);
  EXPECT_EQ(stats.num_upper, 2u);
  EXPECT_EQ(stats.num_lower, 2u);
  EXPECT_DOUBLE_EQ(stats.min_weight, 2.0);
  EXPECT_DOUBLE_EQ(stats.max_weight, 6.0);
  EXPECT_DOUBLE_EQ(stats.avg_weight, 4.0);
}

}  // namespace
}  // namespace abcs
