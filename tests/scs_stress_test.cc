// Stress and scenario tests for the SCS algorithms: heavier graphs,
// skewed topologies, planted tiny-R scenarios and many-tie weight
// distributions — the regimes where the four algorithms take different
// code paths but must agree.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/delta_index.h"
#include "core/scs_baseline.h"
#include "core/scs_binary.h"
#include "core/scs_expand.h"
#include "core/scs_peel.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/weights.h"
#include "test_util.h"

namespace abcs {
namespace {

void ExpectAllAgree(const BipartiteGraph& g, const DeltaIndex& index,
                    VertexId q, uint32_t alpha, uint32_t beta,
                    const char* context) {
  const Subgraph c = index.QueryCommunity(q, alpha, beta);
  const ScsResult peel = ScsPeel(g, c, q, alpha, beta);
  const ScsResult expand = ScsExpand(g, c, q, alpha, beta);
  const ScsResult binary = ScsBinary(g, c, q, alpha, beta);
  ASSERT_EQ(peel.found, !c.Empty()) << context;
  ASSERT_EQ(expand.found, peel.found) << context;
  ASSERT_EQ(binary.found, peel.found) << context;
  if (!peel.found) return;
  EXPECT_DOUBLE_EQ(expand.significance, peel.significance) << context;
  EXPECT_DOUBLE_EQ(binary.significance, peel.significance) << context;
  EXPECT_TRUE(SameEdgeSet(expand.community, peel.community)) << context;
  EXPECT_TRUE(SameEdgeSet(binary.community, peel.community)) << context;
  std::string why;
  EXPECT_TRUE(VerifyCommunity(g, peel.community, q, alpha, beta, &why))
      << context << ": " << why;
}

TEST(ScsStressTest, ChungLuTopologyWithContinuousWeights) {
  BipartiteGraph topo;
  ASSERT_TRUE(GenChungLuBipartite(300, 300, 4000, 2.0, 2.2, 12, &topo).ok());
  const BipartiteGraph g =
      ApplyWeightModel(topo, WeightModel::kUniform, 900);
  const DeltaIndex index = DeltaIndex::Build(g);
  Rng rng(1);
  for (int trial = 0; trial < 25; ++trial) {
    const VertexId q =
        static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const uint32_t alpha = 1 + static_cast<uint32_t>(rng.NextBounded(6));
    const uint32_t beta = 1 + static_cast<uint32_t>(rng.NextBounded(6));
    ExpectAllAgree(g, index, q, alpha, beta, "chunglu-uniform");
  }
}

TEST(ScsStressTest, SkewNormalWeights) {
  BipartiteGraph topo;
  ASSERT_TRUE(GenChungLuBipartite(200, 200, 2500, 2.1, 2.1, 13, &topo).ok());
  const BipartiteGraph g =
      ApplyWeightModel(topo, WeightModel::kSkewNormal, 901);
  const DeltaIndex index = DeltaIndex::Build(g);
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const VertexId q =
        static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    ExpectAllAgree(g, index, q, 3, 3, "chunglu-skewnormal");
  }
}

TEST(ScsStressTest, ManyTiesTwoDistinctWeights) {
  // Only two weight values: the batching logic degenerates to at most two
  // batches; SCS-Binary needs a single probe.
  BipartiteGraph topo;
  ASSERT_TRUE(GenErdosRenyiBipartite(60, 60, 900, 14, &topo).ok());
  Rng wr(55);
  std::vector<Weight> w(topo.NumEdges());
  for (auto& x : w) x = (wr.NextBounded(2) == 0) ? 1.0 : 2.0;
  const BipartiteGraph g = topo.WithWeights(w);
  const DeltaIndex index = DeltaIndex::Build(g);
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const VertexId q = static_cast<VertexId>(rng.NextBounded(120));
    const uint32_t t = 2 + static_cast<uint32_t>(rng.NextBounded(4));
    ExpectAllAgree(g, index, q, t, t, "two-weights");
  }
}

TEST(ScsStressTest, PlantedTinyRInsideLargeCommunity) {
  // A large low-weight (3,3)-connected blob containing a small complete
  // 4×4 block of weight 100: R must be exactly the planted block. This is
  // the regime where SCS-Expand validates long before SCS-Peel finishes
  // peeling.
  GraphBuilder builder;
  Rng rng(77);
  const uint32_t kBlob = 200;
  for (uint32_t u = 0; u < kBlob; ++u) {
    for (int k = 0; k < 6; ++k) {
      builder.AddEdge(u, static_cast<uint32_t>(rng.NextBounded(kBlob)),
                      1.0 + rng.NextBounded(5));
    }
  }
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = 0; j < 4; ++j) {
      builder.AddEdge(i, j, 100.0);  // overwrites blob edges via kKeepMax
    }
  }
  BipartiteGraph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  const DeltaIndex index = DeltaIndex::Build(g);

  const VertexId q = 0;  // upper vertex of the planted block
  const Subgraph c = index.QueryCommunity(q, 3, 3);
  ASSERT_FALSE(c.Empty());
  ScsStats expand_stats;
  const ScsResult expand = ScsExpand(g, c, q, 3, 3, {}, &expand_stats);
  ASSERT_TRUE(expand.found);
  EXPECT_DOUBLE_EQ(expand.significance, 100.0);
  EXPECT_EQ(expand.community.Size(), 16u);
  // Expansion should have processed far fewer edges than the community.
  EXPECT_LT(expand_stats.edges_processed, c.Size());

  const ScsResult peel = ScsPeel(g, c, q, 3, 3);
  EXPECT_TRUE(SameEdgeSet(peel.community, expand.community));
}

TEST(ScsStressTest, BaselineAgreesOnMediumGraph) {
  BipartiteGraph g = testing::RandomWeightedGraph(80, 80, 1200, 15, 10);
  const DeltaIndex index = DeltaIndex::Build(g);
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const VertexId q = static_cast<VertexId>(rng.NextBounded(160));
    const uint32_t t = 2 + static_cast<uint32_t>(rng.NextBounded(3));
    const Subgraph c = index.QueryCommunity(q, t, t);
    const ScsResult peel = ScsPeel(g, c, q, t, t);
    const ScsResult baseline = ScsBaseline(g, q, t, t);
    ASSERT_EQ(baseline.found, peel.found);
    if (peel.found) {
      EXPECT_DOUBLE_EQ(baseline.significance, peel.significance);
      EXPECT_TRUE(SameEdgeSet(baseline.community, peel.community));
    }
  }
}

TEST(ScsStressTest, PeelIsIdempotentOnItsOwnResult) {
  // Running SCS-Peel on R returns R itself (R is already maximal).
  BipartiteGraph g = testing::RandomWeightedGraph(40, 40, 500, 16);
  const DeltaIndex index = DeltaIndex::Build(g);
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const VertexId q = static_cast<VertexId>(rng.NextBounded(80));
    const Subgraph c = index.QueryCommunity(q, 2, 2);
    const ScsResult first = ScsPeel(g, c, q, 2, 2);
    if (!first.found) continue;
    const ScsResult second = ScsPeel(g, first.community, q, 2, 2);
    ASSERT_TRUE(second.found);
    EXPECT_DOUBLE_EQ(second.significance, first.significance);
    EXPECT_TRUE(SameEdgeSet(second.community, first.community));
  }
}

TEST(ScsStressTest, ResultShrinksAsSignificanceRises) {
  // Monotonicity: for fixed (α,β), R is the q-component of the stable
  // subgraph at threshold f(R); raising α or β can only shrink or keep R's
  // significance (larger cores force more edges).
  BipartiteGraph g = testing::RandomWeightedGraph(50, 50, 800, 17, 20);
  const DeltaIndex index = DeltaIndex::Build(g);
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const VertexId q = static_cast<VertexId>(rng.NextBounded(100));
    const Subgraph c2 = index.QueryCommunity(q, 2, 2);
    const Subgraph c3 = index.QueryCommunity(q, 3, 3);
    const ScsResult r2 = ScsPeel(g, c2, q, 2, 2);
    const ScsResult r3 = ScsPeel(g, c3, q, 3, 3);
    if (r2.found && r3.found) {
      EXPECT_GE(r2.significance, r3.significance)
          << "looser constraints must allow at least as high significance";
    }
  }
}

}  // namespace
}  // namespace abcs
