// Unit tests for the per-section codec layer (io/codec.h): encode→decode
// round-trip identity over adversarial value patterns and every lane
// count used by the bundle sections, exact error reporting on malformed
// streams (the fuzz target's assertions, pinned deterministically), and
// the PackedU32Array bit-packed form the peel kernel consumes.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "io/codec.h"

namespace abcs {
namespace {

std::vector<std::byte> Encode(SectionCodec codec,
                              const std::vector<uint32_t>& values,
                              uint32_t lanes) {
  std::vector<std::byte> out;
  const Status st = EncodeU32Section(codec, values.data(),
                                     values.size() * 4, lanes, &out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

std::vector<uint32_t> Decode(SectionCodec codec,
                             const std::vector<std::byte>& enc,
                             uint32_t lanes, std::size_t count_u32) {
  std::vector<uint32_t> out(count_u32, 0xa5a5a5a5);
  const Status st = DecodeU32Section(codec, enc.data(), enc.size(), lanes,
                                     out.data(), count_u32 * 4);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

Status DecodeStatus(SectionCodec codec, const std::vector<std::byte>& enc,
                    uint32_t lanes, std::size_t count_u32) {
  std::vector<uint32_t> out(count_u32 + 1, 0);
  return DecodeU32Section(codec, enc.data(), enc.size(), lanes, out.data(),
                          count_u32 * 4);
}

// Value patterns that stress each codec's edges: sorted (best case for
// delta), reverse-sorted (negative deltas), constant, alternating
// 0/UINT32_MAX (widest zigzag + width-32 lanes), and uniform random.
std::vector<std::vector<uint32_t>> Patterns(std::size_t count) {
  Rng rng(99);
  std::vector<std::vector<uint32_t>> patterns(5,
                                              std::vector<uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    patterns[0][i] = static_cast<uint32_t>(3 * i);
    patterns[1][i] = static_cast<uint32_t>(7 * (count - i));
    patterns[2][i] = 42;
    patterns[3][i] = i % 2 == 0 ? 0 : std::numeric_limits<uint32_t>::max();
    patterns[4][i] = static_cast<uint32_t>(rng.Next());
  }
  return patterns;
}

TEST(SectionCodecTest, RoundTripIdentityAcrossLanesAndPatterns) {
  // Lane counts 1–4 cover every bundle section element type (u32, Arc,
  // DeltaIndex::Entry, Edge); counts cover empty, one element, and sizes
  // that exercise bit-stream tails at every alignment.
  for (const uint32_t lanes : {1u, 2u, 3u, 4u}) {
    for (const std::size_t elems : {std::size_t{0}, std::size_t{1},
                                    std::size_t{7}, std::size_t{64},
                                    std::size_t{513}}) {
      for (const auto& values : Patterns(elems * lanes)) {
        for (const SectionCodec codec :
             {SectionCodec::kDeltaVarint, SectionCodec::kBitPack}) {
          const std::vector<std::byte> enc = Encode(codec, values, lanes);
          EXPECT_EQ(Decode(codec, enc, lanes, values.size()), values)
              << SectionCodecName(codec) << " lanes=" << lanes
              << " elems=" << elems;
        }
      }
    }
  }
}

TEST(SectionCodecTest, PerLaneWidthsBeatOneSharedWidth) {
  // The point of the columnar view: a 2-lane array with one narrow and
  // one wide column must pack near the narrow column's width, not pay the
  // wide width twice.
  const std::size_t elems = 4096;
  std::vector<uint32_t> values(elems * 2);
  for (std::size_t i = 0; i < elems; ++i) {
    values[2 * i] = static_cast<uint32_t>(i % 8);     // 3-bit lane
    values[2 * i + 1] = 0x00ffffff;                   // 24-bit lane
  }
  const std::vector<std::byte> enc =
      Encode(SectionCodec::kBitPack, values, 2);
  // ~(3+24)/64 of raw, plus header; a shared 24-bit width would be 48/64.
  EXPECT_LT(enc.size(), values.size() * 4 * 30 / 64);
}

TEST(SectionCodecTest, SortedArraysShrinkUnderDeltaVarint) {
  std::vector<uint32_t> sorted(10000);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    sorted[i] = static_cast<uint32_t>(5 * i + i % 3);
  }
  const std::vector<std::byte> enc =
      Encode(SectionCodec::kDeltaVarint, sorted, 1);
  // Small deltas → 1 byte per value vs 4 raw.
  EXPECT_LT(enc.size(), sorted.size() * 4 / 3);
}

TEST(SectionCodecTest, RawDecodeRequiresMatchingLengths) {
  const std::vector<uint32_t> values = {1, 2, 3, 4};
  std::vector<std::byte> enc(values.size() * 4);
  std::memcpy(enc.data(), values.data(), enc.size());
  EXPECT_EQ(Decode(SectionCodec::kRaw, enc, 1, values.size()), values);
  enc.pop_back();
  const Status st = DecodeStatus(SectionCodec::kRaw, enc, 1, values.size());
  EXPECT_EQ(st.code(), Status::Code::kCorruption);
}

TEST(SectionCodecTest, EncodeRejectsBadShapes) {
  const std::vector<uint32_t> values = {1, 2, 3};
  std::vector<std::byte> out;
  // 3 u32s are not a whole number of 2-lane elements.
  EXPECT_EQ(EncodeU32Section(SectionCodec::kBitPack, values.data(), 12, 2,
                             &out)
                .code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(EncodeU32Section(SectionCodec::kBitPack, values.data(), 12, 0,
                             &out)
                .code(),
            Status::Code::kInvalidArgument);
  // kRaw has no encoder by design.
  EXPECT_EQ(EncodeU32Section(SectionCodec::kRaw, values.data(), 12, 1, &out)
                .code(),
            Status::Code::kInvalidArgument);
}

TEST(SectionCodecTest, TruncatedStreamsFailCleanly) {
  const std::vector<uint32_t> values = Patterns(300)[4];
  for (const SectionCodec codec :
       {SectionCodec::kDeltaVarint, SectionCodec::kBitPack}) {
    std::vector<std::byte> enc = Encode(codec, values, 3);
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{1}, enc.size() / 2, enc.size() - 1}) {
      std::vector<std::byte> cut(enc.begin(), enc.begin() + keep);
      const Status st = DecodeStatus(codec, cut, 3, values.size());
      EXPECT_EQ(st.code(), Status::Code::kCorruption)
          << SectionCodecName(codec) << " keep=" << keep;
    }
    // Trailing garbage is rejected too: the TOC's stored length is exact.
    enc.push_back(std::byte{0});
    const Status st = DecodeStatus(codec, enc, 3, values.size());
    EXPECT_EQ(st.code(), Status::Code::kCorruption) << SectionCodecName(codec);
  }
}

TEST(SectionCodecTest, OverlongVarintIsCorruption) {
  // Six continuation bytes: no u32 delta needs more than five.
  const std::vector<std::byte> enc(6, std::byte{0x80});
  const Status st = DecodeStatus(SectionCodec::kDeltaVarint, enc, 1, 1);
  EXPECT_EQ(st.code(), Status::Code::kCorruption);
  EXPECT_NE(st.message().find("varint"), std::string::npos) << st.ToString();
}

TEST(SectionCodecTest, DeltaOutsideU32RangeIsCorruption) {
  // Zigzag(1) is a delta of -1: from the implicit prev of 0 the first
  // element lands below zero, outside u32.
  const std::vector<std::byte> negative = {std::byte{0x01}};
  Status st = DecodeStatus(SectionCodec::kDeltaVarint, negative, 1, 1);
  EXPECT_EQ(st.code(), Status::Code::kCorruption);
  EXPECT_NE(st.message().find("outside u32"), std::string::npos)
      << st.ToString();
  // Zigzag(2^32) = 2^33: a +2^32 delta overflows u32 from prev = 0.
  const std::vector<std::byte> overflow = {std::byte{0x80}, std::byte{0x80},
                                           std::byte{0x80}, std::byte{0x80},
                                           std::byte{0x20}};
  st = DecodeStatus(SectionCodec::kDeltaVarint, overflow, 1, 1);
  EXPECT_EQ(st.code(), Status::Code::kCorruption);
  EXPECT_NE(st.message().find("outside u32"), std::string::npos)
      << st.ToString();
}

TEST(SectionCodecTest, BitPackWidthOver32IsCorruption) {
  std::vector<std::byte> enc = Encode(SectionCodec::kBitPack, {1, 2, 3, 4}, 1);
  enc[0] = std::byte{33};
  const Status st = DecodeStatus(SectionCodec::kBitPack, enc, 1, 4);
  EXPECT_EQ(st.code(), Status::Code::kCorruption);
  EXPECT_NE(st.message().find("width"), std::string::npos) << st.ToString();
}

TEST(SectionCodecTest, BitPackSizeMismatchIsCorruption) {
  // Claim a wider lane than the payload carries: the size accounting must
  // reject the stream before the reader runs.
  std::vector<std::byte> enc = Encode(SectionCodec::kBitPack, {1, 2, 3, 4}, 1);
  enc[0] = std::byte{31};
  const Status st = DecodeStatus(SectionCodec::kBitPack, enc, 1, 4);
  EXPECT_EQ(st.code(), Status::Code::kCorruption);
}

// ------------------------------------------------------- PackedU32Array --

TEST(PackedU32ArrayTest, GetSetDecrementMatchReference) {
  Rng rng(7);
  for (const uint32_t max : {0u, 1u, 5u, 200u, 70000u, 0xffffffffu}) {
    const std::size_t n = 500;
    std::vector<uint32_t> ref(n);
    for (std::size_t i = 0; i < n; ++i) {
      ref[i] = max == 0 ? 0 : static_cast<uint32_t>(rng.Next() % (max + 1ull));
    }
    ref[0] = max;  // pin the width
    PackedU32Array packed;
    packed.Assign(ref.data(), n);
    EXPECT_EQ(packed.size(), n);
    EXPECT_EQ(packed.width(), BitWidthFor(max));
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(packed.Get(i), ref[i]) << "max=" << max << " i=" << i;
    }
    // Interleaved decrements and reads stay exact (the peel cascade's
    // access pattern), including across word-straddling elements.
    for (std::size_t step = 0; step < 2000; ++step) {
      const std::size_t i = rng.Next() % n;
      if (ref[i] == 0) continue;
      --ref[i];
      ASSERT_EQ(packed.Decrement(i), ref[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(packed.Get(i), ref[i]);
    }
  }
}

TEST(PackedU32ArrayTest, GetBatchMatchesScalarGets) {
  Rng rng(11);
  const std::size_t n = 777;
  std::vector<uint32_t> ref(n);
  for (std::size_t i = 0; i < n; ++i) {
    ref[i] = static_cast<uint32_t>(rng.Next() % 100000);
  }
  PackedU32Array packed;
  packed.Assign(ref.data(), n);
  std::vector<uint32_t> out(n, 0);
  for (const std::size_t first : {std::size_t{0}, std::size_t{63},
                                  std::size_t{64}, std::size_t{100}}) {
    for (const std::size_t len :
         {std::size_t{0}, std::size_t{1}, std::size_t{65}, n - first}) {
      packed.GetBatch(first, len, out.data());
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(out[i], ref[first + i]) << "first=" << first << " i=" << i;
      }
    }
  }
}

TEST(PackedU32ArrayTest, PackedFootprintShrinksWithWidth) {
  const std::size_t n = 10000;
  std::vector<uint32_t> small(n, 3);
  PackedU32Array packed;
  packed.Assign(small.data(), n);
  EXPECT_EQ(packed.width(), 2u);
  // 2 bits per value vs 32: > 10× smaller even with the guard word.
  EXPECT_LT(packed.MemoryBytes(), n * 4 / 10);
}

}  // namespace
}  // namespace abcs
