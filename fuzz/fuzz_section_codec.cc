// libFuzzer harness for the bundle section codecs (io/codec.h). Two
// properties, both over fully attacker-controlled bytes:
//
//  1. Decode totality: DecodeU32Section over arbitrary input under every
//     codec tag, lane count and claimed decoded size either fills the
//     output exactly or fails with a clean Status — never an OOB read or
//     write (the output buffer is canary-guarded on both ends).
//  2. Round-trip identity: interpreting the input as element data,
//     encode→decode under each codec must reproduce it bit for bit.
//
// The first byte steers lane count and the decoded-size skew so one
// corpus explores all section shapes the bundle TOC can legally claim.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "io/codec.h"

namespace {

constexpr uint32_t kCanary = 0xdeadbeef;

void CheckedDecode(abcs::SectionCodec codec, const std::byte* data,
                   std::size_t size, uint32_t lanes,
                   std::size_t decoded_u32s) {
  std::vector<uint32_t> out(decoded_u32s + 2, kCanary);
  const abcs::Status st = abcs::DecodeU32Section(
      codec, data, size, lanes, out.data() + 1, decoded_u32s * 4);
  (void)st;
  if (out.front() != kCanary || out.back() != kCanary) std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const uint8_t steer = data[0];
  const std::byte* payload = reinterpret_cast<const std::byte*>(data + 1);
  const std::size_t payload_size = size - 1;

  const uint32_t lanes = 1 + steer % 4;
  // Decoded sizes from "empty" through "far larger than the input" probe
  // truncation, exact-fit and overrun paths of every decoder.
  const std::size_t skew[] = {0, payload_size / 4, payload_size,
                              payload_size * 3 + 8};
  for (const std::size_t u32s_raw : skew) {
    const std::size_t u32s = u32s_raw - u32s_raw % lanes;
    for (const abcs::SectionCodec codec :
         {abcs::SectionCodec::kRaw, abcs::SectionCodec::kDeltaVarint,
          abcs::SectionCodec::kBitPack}) {
      CheckedDecode(codec, payload, payload_size, lanes, u32s);
    }
  }

  // Round trip: the input bytes as element data.
  const std::size_t elem_u32s = (payload_size / 4 / lanes) * lanes;
  if (elem_u32s == 0) return 0;
  std::vector<uint32_t> values(elem_u32s);
  std::memcpy(values.data(), payload, elem_u32s * 4);
  for (const abcs::SectionCodec codec :
       {abcs::SectionCodec::kDeltaVarint, abcs::SectionCodec::kBitPack}) {
    std::vector<std::byte> enc;
    if (!abcs::EncodeU32Section(codec, values.data(), elem_u32s * 4, lanes,
                                &enc)
             .ok()) {
      std::abort();  // every whole-element shape must encode
    }
    std::vector<uint32_t> back(elem_u32s, 0);
    if (!abcs::DecodeU32Section(codec, enc.data(), enc.size(), lanes,
                                back.data(), elem_u32s * 4)
             .ok()) {
      std::abort();  // own output must decode
    }
    if (back != values) std::abort();  // and reproduce the input exactly
  }
  return 0;
}
