// libFuzzer harness for the serve daemon's network-facing parsers: the
// length-prefixed FrameReader and the strict request/response decoders.
// This is exactly the byte surface a hostile client controls, so the
// harness drives it the way the server does — including re-feeding the
// same input in arbitrary chunk sizes, which must decode identically to
// one whole-buffer feed (chunking invariance is what the reader's
// compaction logic could plausibly break).

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "serve/frame.h"
#include "serve/protocol.h"

namespace {

struct Decoded {
  std::vector<std::vector<std::byte>> frames;
  bool poisoned = false;
};

// Runs the full server-side path over `data` fed in `chunk`-sized pieces.
Decoded Drain(std::span<const std::byte> data, std::size_t chunk) {
  abcs::serve::FrameReader reader;
  Decoded out;
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    const std::size_t len = std::min(chunk, data.size() - off);
    if (!reader.Append(data.subspan(off, len)).ok()) break;
    std::span<const std::byte> payload;
    while (reader.Next(&payload)) {
      out.frames.emplace_back(payload.begin(), payload.end());
      // Decode as both message kinds, exactly like server and client.
      abcs::serve::WireRequest req;
      if (abcs::serve::DecodeRequest(payload, &req).ok()) {
        // Round-trip: re-encoding an accepted request must reproduce the
        // payload bit for bit (the decoder rejects all don't-care bytes).
        std::vector<std::byte> again;
        abcs::serve::EncodeRequest(req, &again);
        if (again.size() != payload.size() ||
            !std::equal(again.begin(), again.end(), payload.begin())) {
          std::abort();
        }
      }
      abcs::serve::WireResponse resp;
      if (abcs::serve::DecodeResponse(payload, &resp).ok()) {
        std::vector<std::byte> again;
        abcs::serve::EncodeResponse(resp, &again);
        if (again.size() != payload.size() ||
            !std::equal(again.begin(), again.end(), payload.begin())) {
          std::abort();
        }
      }
    }
    if (reader.Poisoned()) break;
  }
  out.poisoned = reader.Poisoned();
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::span<const std::byte> bytes(
      reinterpret_cast<const std::byte*>(data), size);
  const Decoded whole = Drain(bytes, size ? size : 1);
  // Chunking invariance: byte-by-byte and prime-sized feeds must yield
  // the same frames and the same poison verdict.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}}) {
    const Decoded pieces = Drain(bytes, chunk);
    if (pieces.poisoned != whole.poisoned) std::abort();
    if (pieces.frames != whole.frames) std::abort();
  }
  return 0;
}
