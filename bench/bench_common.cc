#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"

namespace abcs::bench {

PreparedDataset Prepare(const DatasetSpec& spec) {
  PreparedDataset ds;
  ds.spec = spec;
  Status st = MakeDataset(spec, &ds.graph);
  if (!st.ok()) {
    std::fprintf(stderr, "dataset %s: %s\n", spec.name.c_str(),
                 st.ToString().c_str());
    std::abort();
  }
  // Setup, not a measured quantity: use every core (identical result).
  ds.decomp = ComputeBicoreDecompositionParallel(ds.graph);
  return ds;
}

std::vector<VertexId> SampleCoreVertices(const PreparedDataset& ds,
                                         uint32_t alpha, uint32_t beta,
                                         uint32_t count, uint64_t seed) {
  const uint32_t tau = std::min(alpha, beta);
  std::vector<VertexId> members;
  if (tau == 0 || tau > ds.delta()) return members;
  const bool use_alpha = alpha <= beta;
  const uint32_t need = use_alpha ? beta : alpha;
  for (VertexId v = 0; v < ds.graph.NumVertices(); ++v) {
    const uint32_t value =
        use_alpha ? ds.decomp.sa(alpha, v) : ds.decomp.sb(beta, v);
    if (value >= need) members.push_back(v);
  }
  if (members.empty()) return members;
  Rng rng(seed);
  rng.Shuffle(members);
  if (members.size() > count) members.resize(count);
  return members;
}

uint32_t ScaledParam(uint32_t delta, double c) {
  return std::max<uint32_t>(
      1, static_cast<uint32_t>(std::lround(c * static_cast<double>(delta))));
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = Mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - mean) * (x - mean);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

uint32_t NumQueries() {
  if (const char* env = std::getenv("ABCS_BENCH_QUERIES")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<uint32_t>(n);
  }
  return 100;
}

}  // namespace abcs::bench
