// Figure 12: significant (α,β)-community search — SCS-Baseline vs SCS-Peel
// vs SCS-Expand on all datasets (α = β = 0.7δ, mean ± stddev over random
// queries). Peel and Expand retrieve C_{α,β}(q) with Qopt first (the
// two-step paradigm); Baseline expands over the whole graph.

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/delta_index.h"
#include "core/scs_baseline.h"
#include "core/scs_expand.h"
#include "core/scs_peel.h"

int main() {
  const uint32_t queries = abcs::bench::NumQueries();
  std::printf(
      "Figure 12: SCS query time, α=β=0.7δ, mean ± std over %u queries "
      "(seconds)\n",
      queries);
  std::printf("%-5s %6s   %-22s %-22s %-22s\n", "name", "a=b", "baseline",
              "peel", "expand");
  for (const abcs::DatasetSpec& spec : abcs::AllDatasets()) {
    const abcs::bench::PreparedDataset ds = abcs::bench::Prepare(spec);
    const uint32_t t = abcs::bench::ScaledParam(ds.delta(), 0.7);
    const abcs::DeltaIndex index =
        abcs::DeltaIndex::Build(ds.graph, &ds.decomp);
    const std::vector<abcs::VertexId> qs =
        abcs::bench::SampleCoreVertices(ds, t, t, queries, 4321);
    if (qs.empty()) {
      std::printf("%-5s %6u  (empty core)\n", spec.name.c_str(), t);
      continue;
    }

    std::vector<double> base_s, peel_s, expand_s;
    for (abcs::VertexId q : qs) {
      abcs::Timer timer;
      const abcs::ScsResult rb = abcs::ScsBaseline(ds.graph, q, t, t);
      base_s.push_back(timer.Seconds());

      timer.Reset();
      const abcs::Subgraph c1 = index.QueryCommunity(q, t, t);
      const abcs::ScsResult rp = abcs::ScsPeel(ds.graph, c1, q, t, t);
      peel_s.push_back(timer.Seconds());

      timer.Reset();
      const abcs::Subgraph c2 = index.QueryCommunity(q, t, t);
      const abcs::ScsResult re = abcs::ScsExpand(ds.graph, c2, q, t, t);
      expand_s.push_back(timer.Seconds());

      if (rb.significance != rp.significance ||
          rp.significance != re.significance) {
        std::fprintf(stderr, "MISMATCH on %s q=%u\n", spec.name.c_str(), q);
        return 1;
      }
    }
    char b[64], p[64], e[64];
    std::snprintf(b, sizeof(b), "%.3e ± %.1e", abcs::bench::Mean(base_s),
                  abcs::bench::StdDev(base_s));
    std::snprintf(p, sizeof(p), "%.3e ± %.1e", abcs::bench::Mean(peel_s),
                  abcs::bench::StdDev(peel_s));
    std::snprintf(e, sizeof(e), "%.3e ± %.1e", abcs::bench::Mean(expand_s),
                  abcs::bench::StdDev(expand_s));
    std::printf("%-5s %6u   %-22s %-22s %-22s\n", spec.name.c_str(), t, b,
                p, e);
  }
  return 0;
}
