// Ablation A4: incremental index maintenance (paper §III-B discussion —
// the paper sketches the S⁺/S⁻ approach but reports no numbers). We
// measure the amortised cost of DynamicDeltaIndex edge insertions and
// removals against rebuilding the decomposition from scratch.

#include <cstdio>
#include <set>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/maintenance.h"

int main() {
  const uint32_t updates = std::max(20u, abcs::bench::NumQueries());
  std::printf(
      "Ablation A4: incremental maintenance vs rebuild (%u updates per "
      "dataset)\n",
      updates);
  std::printf("%-5s %8s %14s %14s %12s %10s\n", "name", "delta",
              "insert(s/op)", "remove(s/op)", "rebuild(s)", "speedup");
  for (const char* name : {"BS", "GH", "AR", "PA"}) {
    const abcs::DatasetSpec& spec = *abcs::FindDataset(name);
    abcs::BipartiteGraph g;
    if (!abcs::MakeDataset(spec, &g).ok()) return 1;

    abcs::Timer timer;
    abcs::DynamicDeltaIndex dyn(g);
    const double build_s = timer.Seconds();

    abcs::Rng rng(777);
    std::set<std::pair<abcs::VertexId, abcs::VertexId>> present;
    for (const abcs::Edge& e : g.Edges()) present.insert({e.u, e.v});

    // Remove and re-insert random existing edges (keeps the graph's shape
    // stationary so per-op costs are comparable).
    std::vector<std::pair<abcs::VertexId, abcs::VertexId>> victims;
    {
      std::vector<std::pair<abcs::VertexId, abcs::VertexId>> all(
          present.begin(), present.end());
      rng.Shuffle(all);
      victims.assign(all.begin(), all.begin() + updates);
    }
    std::vector<abcs::Weight> weights;
    for (const auto& [u, v] : victims) {
      (void)u;
      (void)v;
      weights.push_back(1.0 + rng.NextBounded(50));
    }

    timer.Reset();
    for (const auto& [u, v] : victims) {
      if (!dyn.RemoveEdge(u, v).ok()) return 1;
    }
    const double remove_s = timer.Seconds() / updates;

    timer.Reset();
    for (std::size_t i = 0; i < victims.size(); ++i) {
      if (!dyn.InsertEdge(victims[i].first, victims[i].second, weights[i])
               .ok()) {
        return 1;
      }
    }
    const double insert_s = timer.Seconds() / updates;

    const double per_update = (insert_s + remove_s) / 2.0;
    std::printf("%-5s %8u %14.3e %14.3e %12.3f %9.1fx\n", name, dyn.delta(),
                insert_s, remove_s, build_s,
                build_s / (per_update > 0 ? per_update : 1e-12));
  }
  return 0;
}
