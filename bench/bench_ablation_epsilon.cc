// Ablation A2: the expansion parameter ε of SCS-Expand. The paper argues
// the total validation cost is ε/(ε−1)·size(R), minimised at ε = 2; this
// sweep shows time and validation counts across ε on two datasets.

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/delta_index.h"
#include "core/scs_expand.h"

int main() {
  const uint32_t queries = abcs::bench::NumQueries();
  std::printf(
      "Ablation A2: SCS-Expand ε sweep (α=β=0.4δ, avg over %u queries)\n",
      queries);
  // `checks` = incremental validations per query (expand validates only by
  // journal-seeded probes under the unified ScsStats semantics).
  std::printf("%-5s %6s %12s %14s %16s\n", "name", "eps", "time(s)",
              "checks", "edges_processed");
  for (const char* name : {"DT", "AR"}) {
    const abcs::bench::PreparedDataset ds =
        abcs::bench::Prepare(*abcs::FindDataset(name));
    const uint32_t t = abcs::bench::ScaledParam(ds.delta(), 0.4);
    const abcs::DeltaIndex index =
        abcs::DeltaIndex::Build(ds.graph, &ds.decomp);
    const std::vector<abcs::VertexId> qs =
        abcs::bench::SampleCoreVertices(ds, t, t, queries, 3333);
    abcs::QueryScratch scratch;
    abcs::ScsWorkspace ws;
    for (double eps : {1.2, 1.5, 2.0, 3.0, 4.0}) {
      abcs::ScsOptions options;
      options.epsilon = eps;
      double total_s = 0;
      abcs::ScsStats stats;
      for (abcs::VertexId q : qs) {
        const abcs::Subgraph c = index.QueryCommunity(q, t, t);
        abcs::Timer timer;
        (void)abcs::ScsExpand(ds.graph, c, q, t, t, options, &stats, &scratch,
                              &ws);
        total_s += timer.Seconds();
      }
      const double n = qs.empty() ? 1.0 : static_cast<double>(qs.size());
      std::printf("%-5s %6.1f %12.3e %14.1f %16.0f\n", name, eps, total_s / n,
                  static_cast<double>(stats.validations +
                                      stats.incremental_probes) /
                      n,
                  static_cast<double>(stats.edges_processed) / n);
    }
  }
  return 0;
}
