// Live-update throughput through the snapshot-versioned serving layer:
// the SnapshotManager's single-writer epoch chain, A/B-ing the two
// publish regimes at several commit batch sizes.
//
//   reweight — weights-only batches: every op retunes an existing edge's
//              significance. The publish reuses the predecessor's
//              BicoreDecomposition (offsets are topology-only), so the
//              epoch cost is the two index rebuilds alone.
//   churn    — topology batches: every op pair removes an existing edge
//              and reinserts it. The publish recomputes the
//              decomposition before rebuilding, the full
//              copy-on-write-at-commit price.
//
// Each cycle enqueues one batch plus a kCommit and waits for the commit
// callback, so the measured commit latency is exactly what a client sees
// between sending `update c` and receiving its new epoch. Ops/sec counts
// applied mutations over the whole wall clock (batching amortises the
// publish; the sweep shows by how much).
//
// Emits BENCH_update.json with one row per mode × batch size.
//
// Environment:
//   ABCS_BENCH_DATASET         registry dataset (default BS)
//   ABCS_BENCH_UPDATE_COMMITS  commit cycles per config (default 20)
//   argv[1]                    output JSON path (default BENCH_update.json)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/bicore_index.h"
#include "core/delta_index.h"
#include "serve/snapshot.h"

namespace {

using abcs::serve::SnapshotManager;
using abcs::serve::SnapshotManagerOptions;
using abcs::serve::UpdateOp;
using abcs::serve::WireStatus;

struct Row {
  const char* mode;
  uint32_t batch;  ///< mutations per commit
  double ops_per_s = 0;
  double commit_p50_us = 0;
  double commit_p99_us = 0;
  uint64_t epochs = 0;
};

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(i, xs.size() - 1)];
}

/// Enqueues one op and waits for its writer-side completion; aborts the
/// bench on any rejection (the queue never fills here — the enqueuer is
/// the only client and waits per commit).
void MustApply(SnapshotManager& mgr, UpdateOp op, uint32_t u, uint32_t v,
               double w) {
  std::promise<WireStatus> done;
  auto fut = done.get_future();
  if (!mgr.Enqueue(op, u, v, w, [&done](WireStatus ws, uint64_t) {
        done.set_value(ws);
      })) {
    std::fprintf(stderr, "update rejected at enqueue\n");
    std::exit(1);
  }
  const WireStatus ws = fut.get();
  if (ws != WireStatus::kOk) {
    std::fprintf(stderr, "update failed: %s\n",
                 abcs::serve::WireStatusName(ws));
    std::exit(1);
  }
}

Row RunConfig(const abcs::bench::PreparedDataset& ds,
              const abcs::DeltaIndex& delta, const abcs::BicoreIndex& bicore,
              bool weights_only, uint32_t batch, uint32_t commits) {
  SnapshotManagerOptions options;
  options.update_queue = static_cast<std::size_t>(batch) * 2 + 8;
  SnapshotManager mgr(ds.graph, &delta, &bicore, &ds.decomp, options);
  if (!mgr.Start().ok()) {
    std::fprintf(stderr, "writer failed to start\n");
    std::exit(1);
  }

  // Deterministic stream of existing edges to mutate.
  std::mt19937_64 rng(weights_only ? 11 : 22);
  std::uniform_int_distribution<abcs::EdgeId> pick(0,
                                                   ds.graph.NumEdges() - 1);
  const uint32_t num_upper = ds.graph.NumUpper();

  std::vector<double> commit_us;
  commit_us.reserve(commits);
  uint64_t applied = 0;
  abcs::Timer total;
  for (uint32_t c = 0; c < commits; ++c) {
    for (uint32_t i = 0; i < batch; ++i) {
      const abcs::Edge& e = ds.graph.GetEdge(pick(rng));
      const uint32_t v_lower = e.v - num_upper;
      if (weights_only) {
        MustApply(mgr, UpdateOp::kReweightEdge, e.u, v_lower,
                  e.w + 0.25 * static_cast<double>(c % 3));
        applied += 1;
      } else {
        // Remove + reinsert: topology-dirty batch, steady-state graph.
        MustApply(mgr, UpdateOp::kRemoveEdge, e.u, v_lower, 0);
        MustApply(mgr, UpdateOp::kInsertEdge, e.u, v_lower, e.w);
        applied += 2;
      }
    }
    abcs::Timer commit;
    std::promise<uint64_t> published;
    auto fut = published.get_future();
    if (!mgr.Enqueue(UpdateOp::kCommit, 0, 0, 0,
                     [&published](WireStatus, uint64_t epoch) {
                       published.set_value(epoch);
                     })) {
      std::fprintf(stderr, "commit rejected at enqueue\n");
      std::exit(1);
    }
    fut.get();
    commit_us.push_back(commit.Seconds() * 1e6);
  }
  const double secs = total.Seconds();
  mgr.Drain();

  Row row{weights_only ? "reweight" : "churn", batch};
  row.ops_per_s = secs > 0 ? static_cast<double>(applied) / secs : 0;
  row.commit_p50_us = Percentile(commit_us, 0.50);
  row.commit_p99_us = Percentile(commit_us, 0.99);
  row.epochs = mgr.Stats().commits;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const char* dataset_env = std::getenv("ABCS_BENCH_DATASET");
  const std::string dataset = dataset_env ? dataset_env : "BS";
  const char* commits_env = std::getenv("ABCS_BENCH_UPDATE_COMMITS");
  const uint32_t commits =
      commits_env ? static_cast<uint32_t>(std::atoi(commits_env)) : 20;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_update.json";

  const abcs::DatasetSpec* spec = abcs::FindDataset(dataset);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown dataset %s\n", dataset.c_str());
    return 2;
  }
  const abcs::bench::PreparedDataset ds = abcs::bench::Prepare(*spec);
  const abcs::DeltaIndex delta = abcs::DeltaIndex::Build(ds.graph, &ds.decomp);
  const abcs::BicoreIndex bicore =
      abcs::BicoreIndex::Build(ds.graph, &ds.decomp);

  std::printf(
      "update throughput on %s: n=%u |E|=%u δ=%u, %u commits/config\n",
      dataset.c_str(), ds.graph.NumVertices(), ds.graph.NumEdges(),
      ds.delta(), commits);
  std::printf("%-10s %6s %12s %14s %14s %8s\n", "mode", "batch", "ops/s",
              "commit_p50", "commit_p99", "epochs");

  std::vector<Row> rows;
  for (const bool weights_only : {true, false}) {
    for (const uint32_t batch : {1u, 16u, 64u, 256u}) {
      // Churn applies remove+insert maintenance per op (orders of
      // magnitude dearer than a reweight); cap its sweep so the bench
      // stays CI-sized.
      if (!weights_only && batch > 64) continue;
      const Row row = RunConfig(ds, delta, bicore, weights_only, batch,
                                commits);
      rows.push_back(row);
      std::printf("%-10s %6u %12.1f %12.1fus %12.1fus %8llu\n", row.mode,
                  row.batch, row.ops_per_s, row.commit_p50_us,
                  row.commit_p99_us,
                  static_cast<unsigned long long>(row.epochs));
    }
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"dataset\": \"%s\",\n  \"num_edges\": %u,\n"
               "  \"delta\": %u,\n  \"commits_per_config\": %u,\n"
               "  \"results\": [\n",
               dataset.c_str(), ds.graph.NumEdges(), ds.delta(), commits);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"batch\": %u, "
                 "\"ops_per_s\": %.1f, \"commit_p50_us\": %.1f, "
                 "\"commit_p99_us\": %.1f, \"epochs\": %llu}%s\n",
                 r.mode, r.batch, r.ops_per_s, r.commit_p50_us,
                 r.commit_p99_us, static_cast<unsigned long long>(r.epochs),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
